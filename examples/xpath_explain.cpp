// Command-line XPath runner with plan EXPLAIN: evaluates queries against an
// XML file, a directory of XML files (opened as a collection), or a
// generated XMark instance, and shows what the optimizer decided
// (staircase join, name-test pushdown, per-context fallback).
//
//   $ ./build/xpath_explain <file.xml|dir|xmark:SIZE_MB> <xpath> ...
//   $ ./build/xpath_explain xmark:1.1 "/descendant::education"
//
// With no arguments, runs a demonstration query set on xmark:1.1.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/database.h"

namespace {

sj::Result<std::unique_ptr<sj::Database>> OpenSource(const std::string& src) {
  if (src.rfind("xmark:", 0) == 0) {
    sj::xmlgen::XMarkOptions opt;
    opt.size_mb = std::atof(src.c_str() + 6);
    if (opt.size_mb <= 0) {
      return sj::Status::InvalidArgument("bad xmark size: " + src);
    }
    return sj::Database::FromXmark(opt);
  }
  return sj::Database::Open(src);
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = argc > 1 ? argv[1] : "xmark:1.1";
  std::vector<std::string> queries;
  for (int i = 2; i < argc; ++i) queries.emplace_back(argv[i]);
  if (queries.empty()) {
    queries = {sj::xmlgen::kQ1, sj::xmlgen::kQ2, sj::xmlgen::kQ2Rewrite,
               "/descendant::person/attribute::id",
               "/descendant::keyword/ancestor::description"};
  }

  auto db_result = OpenSource(source);
  if (!db_result.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", source.c_str(),
                 db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_result).value();
  const sj::DocTable& doc = db->doc();
  std::printf("database: %s (%zu nodes, height %u, %zu tags)\n\n",
              source.c_str(), doc.size(), doc.height(), doc.tags().size());

  auto session_result = db->CreateSession();
  if (!session_result.ok()) {
    std::fprintf(stderr, "%s\n", session_result.status().ToString().c_str());
    return 1;
  }
  sj::Session session = std::move(session_result).value();
  for (const std::string& query : queries) {
    auto result = session.Run(query);  // unions included
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n  error: %s\n\n", query.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    const sj::QueryResult& r = result.value();
    std::printf("%s\n  -> %zu nodes in %.2f ms\n", query.c_str(),
                r.nodes.size(), r.millis);
    std::printf("%s", r.Explain().c_str());
    // Show the first few result nodes.
    size_t shown = 0;
    for (sj::NodeId v : r.nodes) {
      if (shown++ == 3) {
        std::printf("  ...\n");
        break;
      }
      std::printf("  %s\n", doc.DebugString(v).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
