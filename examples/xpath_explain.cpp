// Command-line XPath runner with plan EXPLAIN: evaluates queries against an
// XML file (or a generated XMark instance) and shows what the optimizer
// decided (staircase join, name-test pushdown, per-context fallback).
//
//   $ ./build/examples/xpath_explain <file.xml|xmark:SIZE_MB> <xpath> ...
//   $ ./build/examples/xpath_explain xmark:1.1 "/descendant::education"
//
// With no arguments, runs a demonstration query set on xmark:1.1.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/tag_view.h"
#include "encoding/loader.h"
#include "util/timer.h"
#include "xmlgen/xmark.h"
#include "xpath/evaluator.h"

namespace {

sj::Result<std::unique_ptr<sj::DocTable>> LoadSource(const std::string& src) {
  if (src.rfind("xmark:", 0) == 0) {
    sj::xmlgen::XMarkOptions opt;
    opt.size_mb = std::atof(src.c_str() + 6);
    if (opt.size_mb <= 0) {
      return sj::Status::InvalidArgument("bad xmark size: " + src);
    }
    return sj::xmlgen::GenerateXMarkDocument(opt);
  }
  return sj::LoadDocumentFile(src);
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = argc > 1 ? argv[1] : "xmark:1.1";
  std::vector<std::string> queries;
  for (int i = 2; i < argc; ++i) queries.emplace_back(argv[i]);
  if (queries.empty()) {
    queries = {sj::xmlgen::kQ1, sj::xmlgen::kQ2, sj::xmlgen::kQ2Rewrite,
               "/descendant::person/attribute::id",
               "/descendant::keyword/ancestor::description"};
  }

  auto doc_result = LoadSource(source);
  if (!doc_result.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", source.c_str(),
                 doc_result.status().ToString().c_str());
    return 1;
  }
  auto doc = std::move(doc_result).value();
  sj::TagIndex index(*doc);
  std::printf("document: %s (%zu nodes, height %u, %zu tags)\n\n",
              source.c_str(), doc->size(), doc->height(),
              doc->tags().size());

  sj::xpath::EvalOptions options;
  options.tag_index = &index;
  sj::xpath::Evaluator evaluator(*doc, options);
  for (const std::string& query : queries) {
    sj::Timer timer;
    auto result = evaluator.EvaluateUnionString(query);  // unions included
    double ms = timer.ElapsedMillis();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n  error: %s\n\n", query.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n  -> %zu nodes in %.2f ms\n", query.c_str(),
                result.value().size(), ms);
    std::printf("%s", evaluator.ExplainLastQuery().c_str());
    // Show the first few result nodes.
    size_t shown = 0;
    for (sj::NodeId v : result.value()) {
      if (shown++ == 3) {
        std::printf("  ...\n");
        break;
      }
      std::printf("  %s\n", doc->DebugString(v).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
