// The paper's workload end-to-end: generate an XMark-style instance, run
// Q1 and Q2 with different execution strategies, and print intermediate
// result sizes (compare with paper Table 1) and timings.
//
//   $ ./build/examples/xmark_queries [size_mb]     (default 11)

#include <cstdio>
#include <cstdlib>

#include "api/database.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  double size_mb = argc > 1 ? std::atof(argv[1]) : 11.0;
  if (size_mb <= 0) {
    std::fprintf(stderr, "usage: %s [size_mb]\n", argv[0]);
    return 1;
  }

  sj::xmlgen::XMarkOptions gen;
  gen.size_mb = size_mb;
  gen.rich_text = false;  // join benches only need structure
  sj::DatabaseOptions open;
  open.build.store_values = false;
  open.build_paged = false;  // in-memory strategies only

  sj::Timer load_timer;
  auto db_result = sj::Database::FromXmark(gen, open);
  if (!db_result.ok()) {
    std::fprintf(stderr, "%s\n", db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_result).value();
  std::printf("opened %.1f MB-equivalent: %zu nodes (height %u) in %.0f ms "
              "(incl. tag fragments: %zu tags, %.1f MB)\n\n",
              size_mb, db->doc().size(), db->doc().height(),
              load_timer.ElapsedMillis(), db->doc().tags().size(),
              static_cast<double>(db->tag_index()->memory_bytes()) /
                  1048576.0);

  struct Strategy {
    const char* name;
    sj::SessionOptions options;
  };
  Strategy strategies[] = {
      {"staircase join", [] {
         sj::SessionOptions o;
         o.hints.pushdown = sj::PushdownMode::kNever;
         return o;
       }()},
      {"scj + name-test pushdown", [] {
         sj::SessionOptions o;
         o.hints.pushdown = sj::PushdownMode::kAlways;
         return o;
       }()},
      {"scj parallel (4 workers)", [] {
         sj::SessionOptions o;
         o.hints.pushdown = sj::PushdownMode::kNever;
         o.num_threads = 4;
         return o;
       }()},
      {"naive per-context", [] {
         sj::SessionOptions o;
         o.hints.engine = sj::EngineMode::kNaive;
         return o;
       }()},
  };

  for (const char* query : {sj::xmlgen::kQ1, sj::xmlgen::kQ2}) {
    std::printf("query: %s\n", query);
    sj::TablePrinter table({"strategy", "result", "time [ms]"});
    for (const Strategy& strategy : strategies) {
      auto session = db->CreateSession(strategy.options);
      if (!session.ok()) {
        std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
        return 1;
      }
      auto r = session.value().Run(query);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      table.AddRow({strategy.name,
                    sj::TablePrinter::Count(r.value().nodes.size()),
                    sj::TablePrinter::Fixed(r.value().millis, 2)});
    }
    table.Print();

    // Show the executed plan of the default strategy.
    auto session = db->CreateSession();
    auto r = session.value().Run(query);
    std::printf("%s\n", r.ok() ? r.value().Explain().c_str() : "");
  }
  return 0;
}
