// The paper's workload end-to-end: generate an XMark-style instance, run
// Q1 and Q2 with different execution strategies, and print intermediate
// result sizes (compare with paper Table 1) and timings.
//
//   $ ./build/examples/xmark_queries [size_mb]     (default 11)

#include <cstdio>
#include <cstdlib>

#include "core/tag_view.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "xmlgen/xmark.h"
#include "xpath/evaluator.h"

int main(int argc, char** argv) {
  double size_mb = argc > 1 ? std::atof(argv[1]) : 11.0;
  if (size_mb <= 0) {
    std::fprintf(stderr, "usage: %s [size_mb]\n", argv[0]);
    return 1;
  }

  sj::xmlgen::XMarkOptions gen;
  gen.size_mb = size_mb;
  gen.rich_text = false;  // join benches only need structure
  sj::BuildOptions build;
  build.store_values = false;

  sj::Timer load_timer;
  auto doc_result = sj::xmlgen::GenerateXMarkDocument(gen, build);
  if (!doc_result.ok()) {
    std::fprintf(stderr, "%s\n", doc_result.status().ToString().c_str());
    return 1;
  }
  auto doc = std::move(doc_result).value();
  std::printf("generated %.1f MB-equivalent: %zu nodes (height %u) in %.0f ms\n",
              size_mb, doc->size(), doc->height(), load_timer.ElapsedMillis());

  sj::Timer frag_timer;
  sj::TagIndex index(*doc);
  std::printf("fragmented by tag name: %zu tags, %.1f MB, %.0f ms\n\n",
              doc->tags().size(),
              static_cast<double>(index.memory_bytes()) / 1048576.0,
              frag_timer.ElapsedMillis());

  struct Strategy {
    const char* name;
    sj::xpath::EvalOptions options;
  };
  sj::xpath::EvalOptions base;
  base.tag_index = &index;
  Strategy strategies[] = {
      {"staircase join", [&] {
         auto o = base;
         o.pushdown = sj::xpath::PushdownMode::kNever;
         return o;
       }()},
      {"scj + name-test pushdown", [&] {
         auto o = base;
         o.pushdown = sj::xpath::PushdownMode::kAlways;
         return o;
       }()},
      {"scj parallel (4 workers)", [&] {
         auto o = base;
         o.pushdown = sj::xpath::PushdownMode::kNever;
         o.num_threads = 4;
         return o;
       }()},
      {"naive per-context", [&] {
         auto o = base;
         o.engine = sj::xpath::EngineMode::kNaive;
         return o;
       }()},
  };

  for (const char* query : {sj::xmlgen::kQ1, sj::xmlgen::kQ2}) {
    std::printf("query: %s\n", query);
    sj::TablePrinter table({"strategy", "result", "time [ms]"});
    for (const Strategy& strategy : strategies) {
      sj::xpath::Evaluator ev(*doc, strategy.options);
      sj::Timer t;
      auto r = ev.EvaluateString(query);
      double ms = t.ElapsedMillis();
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      table.AddRow({strategy.name, sj::TablePrinter::Count(r.value().size()),
                    sj::TablePrinter::Fixed(ms, 2)});
    }
    table.Print();

    // Show the executed plan of the default strategy.
    sj::xpath::Evaluator ev(*doc, base);
    (void)ev.EvaluateString(query);
    std::printf("%s\n", ev.ExplainLastQuery().c_str());
  }
  return 0;
}
