// A tour of the pre/post plane on the paper's Figure 1/2 document:
// prints the encoding table and evaluates every supported axis from
// context node f, reproducing the regions shown in the paper.
//
//   $ ./build/examples/axis_tour

#include <cstdio>
#include <string>

#include "api/database.h"
#include "core/staircase_join.h"
#include "util/table_printer.h"

namespace {

// Figure 1: a(b(c), d, e(f(g, h), i(j))); f is the paper's context node.
constexpr const char* kFigure1 =
    "<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>";

std::string NameList(const sj::DocTable& doc, const sj::NodeSequence& nodes) {
  std::string out = "(";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ", ";
    out += doc.tags().Name(doc.tag(nodes[i]));
  }
  return out + ")";
}

}  // namespace

int main() {
  sj::DatabaseOptions open;
  open.build_paged = false;
  auto db = sj::Database::FromXml(kFigure1, open).value();
  const sj::DocTable& doc = db->doc();

  std::printf("pre/post encoding (paper Fig. 2):\n");
  sj::TablePrinter encoding({"node", "pre", "post", "level", "subtree"});
  for (sj::NodeId v = 0; v < doc.size(); ++v) {
    encoding.AddRow({doc.tags().Name(doc.tag(v)), std::to_string(v),
                     std::to_string(doc.post(v)),
                     std::to_string(doc.level(v)),
                     std::to_string(doc.subtree_size(v))});
  }
  encoding.Print();

  const sj::NodeId f = 5;
  std::printf("\naxes from context node f = <pre %u, post %u>:\n", f,
              doc.post(f));
  sj::Session session = std::move(db->CreateSession()).value();
  sj::TablePrinter axes({"axis", "result"});
  for (const char* axis :
       {"preceding", "descendant", "ancestor", "following", "parent",
        "child", "self", "ancestor-or-self", "descendant-or-self",
        "following-sibling", "preceding-sibling"}) {
    std::string query = std::string(axis) + "::node()";
    auto result = session.Run(query, {f}).value().nodes;
    axes.AddRow({axis, NameList(doc, result)});
  }
  axes.Print();

  // The staircase of a multi-node context (paper Fig. 4/8): pruning the
  // ancestor-or-self context (d,e,f,h,i,j) down to (d,h,j).
  sj::NodeSequence context = {3, 4, 5, 7, 8, 9};
  sj::NodeSequence pruned =
      PruneContext(doc, context, sj::Axis::kAncestorOrSelf);
  std::printf("\npruning the ancestor-or-self context %s: staircase %s\n",
              NameList(doc, context).c_str(), NameList(doc, pruned).c_str());
  auto anc = StaircaseJoin(doc, context, sj::Axis::kAncestorOrSelf).value();
  std::printf("ancestor-or-self result: %s  (paper: (a,d,e,f,h,i,j))\n",
              NameList(doc, anc).c_str());
  return 0;
}
