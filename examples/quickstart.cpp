// Quickstart: load an XML document, run XPath queries through the
// staircase join, and inspect results.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/tag_view.h"
#include "encoding/loader.h"
#include "xpath/evaluator.h"

namespace {

constexpr const char* kCatalog = R"(<catalog>
  <book id="b1" year="1994"><title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price></book>
  <book id="b2" year="2003"><title>XQuery from the Experts</title>
    <author><last>Katz</last><first>Howard</first></author>
    <price>39.95</price></book>
  <book id="b3" year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <price>34.95</price></book>
</catalog>)";

}  // namespace

int main() {
  // 1. Parse and encode the document into the pre/post plane.
  auto doc_result = sj::LoadDocument(kCatalog);
  if (!doc_result.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 doc_result.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<sj::DocTable> doc = std::move(doc_result).value();
  std::printf("encoded %zu nodes, height %u, %llu attributes\n\n",
              doc->size(), doc->height(),
              static_cast<unsigned long long>(doc->attribute_count()));

  // 2. Build tag fragments once; they enable name-test pushdown.
  sj::TagIndex index(*doc);

  // 3. Evaluate XPath queries.
  sj::xpath::EvalOptions options;
  options.tag_index = &index;
  sj::xpath::Evaluator evaluator(*doc, options);

  const char* queries[] = {
      "/descendant::title",
      "/descendant::author/child::last",
      "/descendant::last/ancestor::book",
      "/descendant::book[descendant::last]/attribute::id",
      "//book/price",
  };
  for (const char* query : queries) {
    auto result = evaluator.EvaluateString(query);
    if (!result.ok()) {
      std::fprintf(stderr, "%s -> %s\n", query,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", query);
    for (sj::NodeId v : result.value()) {
      // Print the node plus its text content (first text child / value).
      std::string text;
      if (doc->kind(v) == sj::NodeKind::kAttribute) {
        text = std::string(doc->value(v));
      } else {
        for (sj::NodeId u = v + 1;
             u < doc->size() && doc->IsDescendant(u, v); ++u) {
          if (doc->kind(u) == sj::NodeKind::kText) {
            text = std::string(doc->value(u));
            break;
          }
        }
      }
      std::printf("  %-44s %s\n", doc->DebugString(v).c_str(), text.c_str());
    }
    std::printf("\n");
  }

  // 4. EXPLAIN the last query plan.
  std::printf("plan of the last query:\n%s",
              evaluator.ExplainLastQuery().c_str());
  return 0;
}
