// Quickstart: open a Database over an XML document, create a Session,
// run XPath queries, and inspect results and the executed plan.
//
//   $ ./build/quickstart
//
// Database/Session is the public API: the database owns every backend
// image (resident columns, tag fragments, paged image + buffer pool) and
// is immutable and thread-safe once open; a session is a cheap per-thread
// handle whose Run() returns a self-contained QueryResult.

#include <cstdio>
#include <string>

#include "api/database.h"

namespace {

constexpr const char* kCatalog = R"(<catalog>
  <book id="b1" year="1994"><title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price></book>
  <book id="b2" year="2003"><title>XQuery from the Experts</title>
    <author><last>Katz</last><first>Howard</first></author>
    <price>39.95</price></book>
  <book id="b3" year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <price>34.95</price></book>
</catalog>)";

}  // namespace

int main() {
  // 1. Open the database: parses + encodes the document, builds the tag
  //    fragments and the paged image, and validates their digests -- all
  //    up front, so queries never fail on stale wiring.
  auto db_result = sj::Database::FromXml(kCatalog);
  if (!db_result.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<sj::Database> db = std::move(db_result).value();
  const sj::DocTable& doc = db->doc();
  std::printf("encoded %zu nodes, height %u, %llu attributes\n\n",
              doc.size(), doc.height(),
              static_cast<unsigned long long>(doc.attribute_count()));

  // 2. Create a session. Any number of sessions (one per thread) may
  //    share the database; this one keeps the defaults (in-memory
  //    backend, cost-based operator choice -- SessionOptions::hints
  //    carries the PlanHints for pinning operators explicitly).
  auto session_result = db->CreateSession();
  if (!session_result.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 session_result.status().ToString().c_str());
    return 1;
  }
  sj::Session session = std::move(session_result).value();

  // 3. Run XPath queries.
  const char* queries[] = {
      "/descendant::title",
      "/descendant::author/child::last",
      "/descendant::last/ancestor::book",
      "/descendant::book[descendant::last]/attribute::id",
      "//book/price",
  };
  sj::QueryResult last;
  for (const char* query : queries) {
    auto result = session.Run(query);
    if (!result.ok()) {
      std::fprintf(stderr, "%s -> %s\n", query,
                   result.status().ToString().c_str());
      return 1;
    }
    last = std::move(result).value();
    std::printf("%s\n", query);
    for (sj::NodeId v : last.nodes) {
      // Print the node plus its text content (first text child / value).
      std::string text;
      if (doc.kind(v) == sj::NodeKind::kAttribute) {
        text = std::string(doc.value(v));
      } else {
        for (sj::NodeId u = v + 1; u < doc.size() && doc.IsDescendant(u, v);
             ++u) {
          if (doc.kind(u) == sj::NodeKind::kText) {
            text = std::string(doc.value(u));
            break;
          }
        }
      }
      std::printf("  %-44s %s\n", doc.DebugString(v).c_str(), text.c_str());
    }
    std::printf("\n");
  }

  // 4. EXPLAIN the last query plan. The trace travels inside the
  //    QueryResult -- nothing is read back from shared evaluator state.
  std::printf("plan of the last query:\n%s", last.Explain().c_str());

  // 5. The same plan, structurally: operator chosen per step plus the
  //    cost model's estimate vs the actual row count (and pool faults,
  //    zero here on the in-memory backend).
  std::printf("\nplan summary:\n");
  for (const sj::PlanStepSummary& s : last.PlanSummary()) {
    std::printf("  step %zu: %-12s est=%llu act=%llu faults=%llu\n", s.step,
                s.op.c_str(), static_cast<unsigned long long>(s.estimated_rows),
                static_cast<unsigned long long>(s.actual_rows),
                static_cast<unsigned long long>(s.faults));
  }
  return 0;
}
