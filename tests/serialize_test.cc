// Tests for re-serialization from the columnar encoding: subtree text must
// round-trip through parse -> encode -> serialize for arbitrary documents.

#include <gtest/gtest.h>

#include "api/database.h"
#include "encoding/loader.h"
#include "encoding/serialize.h"
#include "test_util.h"

namespace sj {
namespace {

/// Opens a query-only database (no paged image) over `xml`.
std::unique_ptr<Database> OpenXml(const std::string& xml) {
  DatabaseOptions open;
  open.build_paged = false;
  return Database::FromXml(xml, open).value();
}

TEST(SerializeTest, WholeDocumentRoundTrip) {
  const std::string xml =
      "<a x=\"1&amp;2\"><b>t&lt;u</b><c/><!--note--><?pi data?>tail</a>";
  auto doc = LoadDocument(xml).value();
  EXPECT_EQ(SerializeSubtree(*doc, doc->root()).value(), xml);
}

TEST(SerializeTest, InnerSubtree) {
  auto db = OpenXml("<a><b i=\"7\"><c>x</c></b><d/></a>");
  Session session = std::move(db->CreateSession()).value();
  NodeSequence b = session.Run("/descendant::b").value().nodes;
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(SerializeSubtree(db->doc(), b[0]).value(),
            "<b i=\"7\"><c>x</c></b>");
}

TEST(SerializeTest, TextAndCommentNodes) {
  auto doc = LoadDocument("<a>hi<!--c--></a>").value();
  // Text node (pre 1) serializes as its (escaped) content.
  EXPECT_EQ(SerializeSubtree(*doc, 1).value(), "hi");
  EXPECT_EQ(SerializeSubtree(*doc, 2).value(), "<!--c-->");
}

TEST(SerializeTest, SequenceConcatenatesInOrder) {
  auto db = OpenXml("<a><b>1</b><b>2</b><c v=\"9\"/></a>");
  Session session = std::move(db->CreateSession()).value();
  NodeSequence bs = session.Run("/descendant::b").value().nodes;
  EXPECT_EQ(SerializeSequence(db->doc(), bs).value(), "<b>1</b><b>2</b>");
  // Attribute in a sequence -> its string value.
  NodeSequence attr =
      session.Run("/descendant::c/attribute::v").value().nodes;
  EXPECT_EQ(SerializeSequence(db->doc(), attr).value(), "9");
}

TEST(SerializeTest, ErrorsAndEdgeCases) {
  auto doc = LoadDocument("<a x=\"1\"/>").value();
  EXPECT_FALSE(SerializeSubtree(*doc, 99).ok());
  EXPECT_FALSE(SerializeSubtree(*doc, 1).ok());  // attribute node
  EXPECT_FALSE(EmitSubtree(*doc, 0, nullptr).ok());
  BuildOptions no_values;
  no_values.store_values = false;
  auto bare = LoadDocument("<a>t</a>", no_values).value();
  EXPECT_FALSE(SerializeSubtree(*bare, 0).ok());
}

TEST(SerializeTest, RandomDocumentsRoundTrip) {
  // parse(serialize(parse(x))) must encode identically to parse(x).
  for (uint64_t seed : {91u, 92u, 93u, 94u}) {
    std::string xml = testing::RandomDocumentXml(seed, {});
    auto doc = LoadDocument(xml).value();
    std::string out = SerializeSubtree(*doc, doc->root()).value();
    auto doc2 = LoadDocument(out).value();
    ASSERT_EQ(doc->size(), doc2->size()) << "seed " << seed;
    for (NodeId v = 0; v < doc->size(); ++v) {
      ASSERT_EQ(doc->post(v), doc2->post(v)) << "seed " << seed;
      ASSERT_EQ(doc->kind(v), doc2->kind(v)) << "seed " << seed;
      ASSERT_EQ(doc->tag(v), doc2->tag(v)) << "seed " << seed;
      ASSERT_EQ(doc->value(v), doc2->value(v)) << "seed " << seed;
    }
  }
}

TEST(SerializeTest, QueryResultsFromXMarkParseBack) {
  auto db = OpenXml(testing::RandomDocumentXml(77, {.target_nodes = 400}));
  Session session = std::move(db->CreateSession()).value();
  NodeSequence nodes = session.Run("/descendant::t1").value().nodes;
  if (nodes.empty()) GTEST_SKIP() << "no t1 in this instance";
  for (NodeId v : nodes) {
    std::string text = SerializeSubtree(db->doc(), v).value();
    auto reparsed = LoadDocument(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(reparsed.value()->size(), db->doc().subtree_size(v) + 1);
  }
}

}  // namespace
}  // namespace sj
