// Tests for re-serialization from the columnar encoding: subtree text must
// round-trip through parse -> encode -> serialize for arbitrary documents.

#include <gtest/gtest.h>

#include "encoding/loader.h"
#include "encoding/serialize.h"
#include "test_util.h"
#include "xpath/evaluator.h"

namespace sj {
namespace {

TEST(SerializeTest, WholeDocumentRoundTrip) {
  const std::string xml =
      "<a x=\"1&amp;2\"><b>t&lt;u</b><c/><!--note--><?pi data?>tail</a>";
  auto doc = LoadDocument(xml).value();
  EXPECT_EQ(SerializeSubtree(*doc, doc->root()).value(), xml);
}

TEST(SerializeTest, InnerSubtree) {
  auto doc = LoadDocument("<a><b i=\"7\"><c>x</c></b><d/></a>").value();
  xpath::Evaluator ev(*doc);
  NodeSequence b = ev.EvaluateString("/descendant::b").value();
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(SerializeSubtree(*doc, b[0]).value(), "<b i=\"7\"><c>x</c></b>");
}

TEST(SerializeTest, TextAndCommentNodes) {
  auto doc = LoadDocument("<a>hi<!--c--></a>").value();
  // Text node (pre 1) serializes as its (escaped) content.
  EXPECT_EQ(SerializeSubtree(*doc, 1).value(), "hi");
  EXPECT_EQ(SerializeSubtree(*doc, 2).value(), "<!--c-->");
}

TEST(SerializeTest, SequenceConcatenatesInOrder) {
  auto doc = LoadDocument("<a><b>1</b><b>2</b><c v=\"9\"/></a>").value();
  xpath::Evaluator ev(*doc);
  NodeSequence bs = ev.EvaluateString("/descendant::b").value();
  EXPECT_EQ(SerializeSequence(*doc, bs).value(), "<b>1</b><b>2</b>");
  // Attribute in a sequence -> its string value.
  NodeSequence attr = ev.EvaluateString("/descendant::c/attribute::v")
                          .value();
  EXPECT_EQ(SerializeSequence(*doc, attr).value(), "9");
}

TEST(SerializeTest, ErrorsAndEdgeCases) {
  auto doc = LoadDocument("<a x=\"1\"/>").value();
  EXPECT_FALSE(SerializeSubtree(*doc, 99).ok());
  EXPECT_FALSE(SerializeSubtree(*doc, 1).ok());  // attribute node
  EXPECT_FALSE(EmitSubtree(*doc, 0, nullptr).ok());
  BuildOptions no_values;
  no_values.store_values = false;
  auto bare = LoadDocument("<a>t</a>", no_values).value();
  EXPECT_FALSE(SerializeSubtree(*bare, 0).ok());
}

TEST(SerializeTest, RandomDocumentsRoundTrip) {
  // parse(serialize(parse(x))) must encode identically to parse(x).
  for (uint64_t seed : {91u, 92u, 93u, 94u}) {
    std::string xml = testing::RandomDocumentXml(seed, {});
    auto doc = LoadDocument(xml).value();
    std::string out = SerializeSubtree(*doc, doc->root()).value();
    auto doc2 = LoadDocument(out).value();
    ASSERT_EQ(doc->size(), doc2->size()) << "seed " << seed;
    for (NodeId v = 0; v < doc->size(); ++v) {
      ASSERT_EQ(doc->post(v), doc2->post(v)) << "seed " << seed;
      ASSERT_EQ(doc->kind(v), doc2->kind(v)) << "seed " << seed;
      ASSERT_EQ(doc->tag(v), doc2->tag(v)) << "seed " << seed;
      ASSERT_EQ(doc->value(v), doc2->value(v)) << "seed " << seed;
    }
  }
}

TEST(SerializeTest, QueryResultsFromXMarkParseBack) {
  auto doc = LoadDocument(
      testing::RandomDocumentXml(77, {.target_nodes = 400})).value();
  xpath::Evaluator ev(*doc);
  NodeSequence nodes = ev.EvaluateString("/descendant::t1").value();
  if (nodes.empty()) GTEST_SKIP() << "no t1 in this instance";
  for (NodeId v : nodes) {
    std::string text = SerializeSubtree(*doc, v).value();
    auto reparsed = LoadDocument(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(reparsed.value()->size(), doc->subtree_size(v) + 1);
  }
}

}  // namespace
}  // namespace sj
