// Unit tests for Status/Result, the deterministic RNG, and TablePrinter.

#include <gtest/gtest.h>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace sj {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::NotFound("x");
  Status copy = s;
  EXPECT_EQ(copy.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  Status moved = std::move(s);
  EXPECT_EQ(moved.message(), "x");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 7; ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fn = [](bool fail) -> Status {
    SJ_RETURN_NOT_OK(fail ? Status::IoError("disk") : Status::OK());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(fn(true).code(), StatusCode::kIoError);
  EXPECT_EQ(fn(false).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("big"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("no value");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    SJ_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(outer(false).value(), 14);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Range(3, 5);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, PercentBounds) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Percent(0));
    EXPECT_TRUE(rng.Percent(100));
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(TablePrinterTest, CountFormatsThousands) {
  EXPECT_EQ(TablePrinter::Count(0), "0");
  EXPECT_EQ(TablePrinter::Count(999), "999");
  EXPECT_EQ(TablePrinter::Count(1000), "1,000");
  EXPECT_EQ(TablePrinter::Count(50844982), "50,844,982");
}

TEST(TablePrinterTest, FixedFormatsDecimals) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fixed(1.0, 0), "1");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  EXPECT_NE(t.ToString().find("| 1 |   |   |"), std::string::npos);
}

}  // namespace
}  // namespace sj
