// Tests for tag views (name-test pushdown / fragmentation): the view join
// must equal join-then-filter on every staircase axis and skip mode.

#include <gtest/gtest.h>

#include "core/staircase_join.h"
#include "core/tag_view.h"
#include "encoding/loader.h"
#include "test_util.h"
#include "util/rng.h"

namespace sj {
namespace {

using testing::RandomContext;
using testing::RandomDocument;

NodeSequence JoinThenFilter(const DocTable& doc, const NodeSequence& ctx,
                            Axis axis, TagId tag) {
  NodeSequence joined = StaircaseJoin(doc, ctx, axis).value();
  NodeSequence out;
  for (NodeId v : joined) {
    if (doc.kind(v) == NodeKind::kElement && doc.tag(v) == tag) {
      out.push_back(v);
    }
  }
  return out;
}

TEST(TagViewTest, BuildContainsExactlyTaggedElements) {
  auto doc = LoadDocument("<a><b/><a x=\"1\"><b/></a><c/></a>").value();
  TagId a = doc->tags().Lookup("a").value();
  TagView view = BuildTagView(*doc, a);
  EXPECT_EQ(view.pre, (std::vector<NodeId>{0, 2}));
  for (size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view.post[i], doc->post(view.pre[i]));
  }
  // Attribute tags never produce view entries.
  TagView xview = BuildTagView(*doc, doc->tags().Lookup("x").value());
  EXPECT_EQ(xview.size(), 0u);
}

TEST(TagIndexTest, FragmentsCoverAllElements) {
  auto doc = RandomDocument(55);
  TagIndex index(*doc);
  uint64_t total = 0;
  for (TagId t = 0; t < doc->tags().size(); ++t) {
    total += index.tag_count(t);
    const TagView& v = index.view(t);
    for (size_t i = 0; i < v.size(); ++i) {
      EXPECT_EQ(doc->tag(v.pre[i]), t);
      EXPECT_EQ(doc->kind(v.pre[i]), NodeKind::kElement);
    }
  }
  uint64_t elements = 0;
  for (NodeId v = 0; v < doc->size(); ++v) {
    elements += doc->kind(v) == NodeKind::kElement ? 1u : 0u;
  }
  EXPECT_EQ(total, elements);
  EXPECT_GT(index.memory_bytes(), 0u);
  EXPECT_EQ(index.view(kNoTag).size(), 0u);
  EXPECT_EQ(index.tag_count(9999), 0u);
}

using ViewParam = std::tuple<uint64_t, Axis, SkipMode>;

class TagViewPropertyTest : public ::testing::TestWithParam<ViewParam> {};

TEST_P(TagViewPropertyTest, ViewJoinEqualsJoinThenFilter) {
  auto [seed, axis, mode] = GetParam();
  auto doc = RandomDocument(seed);
  TagIndex index(*doc);
  Rng rng(seed ^ 0x5555);
  for (uint32_t percent : {5u, 40u}) {
    NodeSequence ctx = RandomContext(rng, *doc, percent);
    for (const char* tag_name : {"t0", "t3"}) {
      std::optional<TagId> tag = doc->tags().Lookup(tag_name);
      if (!tag.has_value()) continue;
      StaircaseOptions opt;
      opt.skip_mode = mode;
      JoinStats stats;
      auto got =
          StaircaseJoinView(*doc, index.view(*tag), ctx, axis, opt, &stats);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(got.value(), JoinThenFilter(*doc, ctx, axis, *tag))
          << AxisName(axis) << " tag " << tag_name << " seed " << seed;
      EXPECT_TRUE(IsDocumentOrder(got.value()));
      EXPECT_EQ(stats.result_size, got.value().size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AxesModes, TagViewPropertyTest,
    ::testing::Combine(
        ::testing::Values(61, 62, 63),
        ::testing::Values(Axis::kDescendant, Axis::kDescendantOrSelf,
                          Axis::kAncestor, Axis::kAncestorOrSelf,
                          Axis::kFollowing, Axis::kPreceding),
        ::testing::Values(SkipMode::kNone, SkipMode::kSkip,
                          SkipMode::kEstimated)));

TEST(TagViewTest, ViewJoinScansOnlyViewNodes) {
  auto doc = RandomDocument(71, {.target_nodes = 600});
  TagIndex index(*doc);
  // Pick the most frequent non-root element tag.
  TagId tag = doc->tag(doc->root());
  for (TagId t = 0; t < doc->tags().size(); ++t) {
    if (t != doc->tag(doc->root()) &&
        index.tag_count(t) > index.tag_count(tag)) {
      tag = t;
    }
  }
  ASSERT_GT(index.tag_count(tag), 0u);
  JoinStats view_stats, full_stats;
  NodeSequence ctx = {doc->root()};
  (void)StaircaseJoinView(*doc, index.view(tag), ctx, Axis::kDescendant, {},
                          &view_stats);
  (void)StaircaseJoin(*doc, ctx, Axis::kDescendant, {}, &full_stats);
  // The fragment join touches at most |fragment| nodes, the full join the
  // whole document.
  EXPECT_LE(view_stats.nodes_accessed(), index.tag_count(tag));
  EXPECT_GT(full_stats.nodes_accessed(), view_stats.nodes_accessed());
}

TEST(TagViewTest, EmptyViewAndEmptyContext) {
  auto doc = RandomDocument(81);
  TagView empty;
  empty.tag = 12345;
  EXPECT_TRUE(
      StaircaseJoinView(*doc, empty, {0}, Axis::kDescendant).value().empty());
  TagIndex index(*doc);
  EXPECT_TRUE(StaircaseJoinView(*doc, index.view(0), {}, Axis::kDescendant)
                  .value()
                  .empty());
}

TEST(TagViewTest, RejectsBadInput) {
  auto doc = RandomDocument(91);
  TagIndex index(*doc);
  EXPECT_FALSE(
      StaircaseJoinView(*doc, index.view(0), {5, 2}, Axis::kDescendant).ok());
  EXPECT_FALSE(
      StaircaseJoinView(*doc, index.view(0), {0}, Axis::kChild).ok());
}

}  // namespace
}  // namespace sj
