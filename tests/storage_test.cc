// Tests for the paged-storage substrate: simulated disk, LRU buffer pool
// semantics, and the paged staircase join (results identical to the
// in-memory join; skipping saves page faults).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/paged_doc.h"
#include "test_util.h"
#include "util/rng.h"

namespace sj::storage {
namespace {

using sj::testing::RandomContext;
using sj::testing::RandomDocument;

TEST(SimulatedDiskTest, AllocateReadWrite) {
  SimulatedDisk disk;
  PageId a = disk.Allocate();
  PageId b = disk.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  Page page;
  page.bytes[0] = 42;
  page.bytes[kPageSize - 1] = 7;
  ASSERT_TRUE(disk.Write(b, page).ok());
  Page out;
  ASSERT_TRUE(disk.Read(b, &out).ok());
  EXPECT_EQ(out.bytes[0], 42);
  EXPECT_EQ(out.bytes[kPageSize - 1], 7);
  EXPECT_EQ(disk.reads(), 1u);
  EXPECT_FALSE(disk.Read(9, &out).ok());
  EXPECT_FALSE(disk.Write(9, page).ok());
}

TEST(BufferPoolTest, HitAfterFault) {
  SimulatedDisk disk;
  PageId p = disk.Allocate();
  BufferPool pool(&disk, 4);
  ASSERT_TRUE(pool.Pin(p).ok());
  ASSERT_TRUE(pool.Unpin(p).ok());
  ASSERT_TRUE(pool.Pin(p).ok());
  ASSERT_TRUE(pool.Unpin(p).ok());
  EXPECT_EQ(pool.stats().pins, 2u);
  EXPECT_EQ(pool.stats().faults, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  SimulatedDisk disk;
  PageId p0 = disk.Allocate(), p1 = disk.Allocate(), p2 = disk.Allocate();
  BufferPool pool(&disk, 2);
  auto touch = [&](PageId p) {
    ASSERT_TRUE(pool.Pin(p).ok());
    ASSERT_TRUE(pool.Unpin(p).ok());
  };
  touch(p0);
  touch(p1);
  touch(p0);  // p1 is now LRU
  touch(p2);  // evicts p1
  EXPECT_EQ(pool.stats().evictions, 1u);
  touch(p0);  // still resident
  EXPECT_EQ(pool.stats().faults, 3u);  // p0, p1, p2
  touch(p1);  // was evicted: faults again
  EXPECT_EQ(pool.stats().faults, 4u);
}

TEST(BufferPoolTest, PinnedPagesSurviveEviction) {
  SimulatedDisk disk;
  PageId p0 = disk.Allocate(), p1 = disk.Allocate(), p2 = disk.Allocate();
  BufferPool pool(&disk, 2);
  auto pinned = pool.Pin(p0);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(pool.Pin(p1).ok());
  ASSERT_TRUE(pool.Unpin(p1).ok());
  // p1 is evictable, p0 is not.
  ASSERT_TRUE(pool.Pin(p2).ok());
  EXPECT_EQ(pool.stats().evictions, 1u);
  ASSERT_TRUE(pool.Unpin(p2).ok());
  // Re-pinning p0 is a hit (still resident, still pinned once).
  ASSERT_TRUE(pool.Pin(p0).ok());
  EXPECT_EQ(pool.stats().hits, 1u);
  ASSERT_TRUE(pool.Unpin(p0).ok());
  ASSERT_TRUE(pool.Unpin(p0).ok());
}

TEST(BufferPoolTest, AllFramesPinnedFails) {
  SimulatedDisk disk;
  PageId p0 = disk.Allocate(), p1 = disk.Allocate();
  BufferPool pool(&disk, 1);
  ASSERT_TRUE(pool.Pin(p0).ok());
  EXPECT_FALSE(pool.Pin(p1).ok());
  ASSERT_TRUE(pool.Unpin(p0).ok());
  EXPECT_TRUE(pool.Pin(p1).ok());
}

TEST(BufferPoolTest, UnpinWithoutPinRejected) {
  SimulatedDisk disk;
  PageId p = disk.Allocate();
  BufferPool pool(&disk, 2);
  EXPECT_FALSE(pool.Unpin(p).ok());
}

TEST(BufferPoolTest, FlushAllColdStart) {
  SimulatedDisk disk;
  PageId p = disk.Allocate();
  BufferPool pool(&disk, 2);
  ASSERT_TRUE(pool.Pin(p).ok());
  ASSERT_TRUE(pool.Unpin(p).ok());
  pool.FlushAll();
  EXPECT_EQ(pool.resident_pages(), 0u);
  ASSERT_TRUE(pool.Pin(p).ok());
  EXPECT_EQ(pool.stats().faults, 2u);
  ASSERT_TRUE(pool.Unpin(p).ok());
}

TEST(ShardedBufferPoolTest, ShardCountClampsToCapacity) {
  SimulatedDisk disk;
  EXPECT_EQ(BufferPool(&disk, 64, 8).shard_count(), 8u);
  EXPECT_EQ(BufferPool(&disk, 2, 8).shard_count(), 2u);   // >= 1 frame/shard
  EXPECT_EQ(BufferPool(&disk, 64).shard_count(), 1u);     // default: global
  EXPECT_EQ(BufferPool(&disk, 64, 0).shard_count(), 1u);
}

TEST(ShardedBufferPoolTest, CountersStayExactAcrossShards) {
  SimulatedDisk disk;
  std::vector<PageId> pages;
  for (int i = 0; i < 32; ++i) pages.push_back(disk.Allocate());
  BufferPool pool(&disk, 64, 8);
  for (PageId p : pages) {
    ASSERT_TRUE(pool.Pin(p).ok());
    ASSERT_TRUE(pool.Unpin(p).ok());
  }
  for (PageId p : pages) {
    ASSERT_TRUE(pool.Pin(p).ok());
    ASSERT_TRUE(pool.Unpin(p).ok());
  }
  const PoolStats ps = pool.stats();
  EXPECT_EQ(ps.pins, 64u);
  EXPECT_EQ(ps.faults, 32u);
  EXPECT_EQ(ps.hits, 32u);
  EXPECT_EQ(ps.evictions, 0u);
  EXPECT_EQ(pool.resident_pages(), 32u);
  pool.FlushAll();
  EXPECT_EQ(pool.resident_pages(), 0u);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().pins, 0u);
}

TEST(ShardedBufferPoolTest, EvictionIsPerShard) {
  // 4 shards x 1 frame: pages 0 and 4 share shard 0, page 1 lives on
  // shard 1. Re-pinning page 4 evicts page 0 (its shard's only frame)
  // but leaves page 1 resident.
  SimulatedDisk disk;
  for (int i = 0; i < 5; ++i) disk.Allocate();
  BufferPool pool(&disk, 4, 4);
  auto touch = [&](PageId p) {
    ASSERT_TRUE(pool.Pin(p).ok());
    ASSERT_TRUE(pool.Unpin(p).ok());
  };
  touch(0);
  touch(1);
  touch(4);  // evicts 0
  EXPECT_EQ(pool.stats().evictions, 1u);
  touch(1);  // still resident
  EXPECT_EQ(pool.stats().hits, 1u);
  touch(0);  // faults again
  EXPECT_EQ(pool.stats().faults, 4u);
}

TEST(ShardedBufferPoolTest, ConcurrentPinsKeepExactCounters) {
  SimulatedDisk disk;
  std::vector<PageId> pages;
  for (int i = 0; i < 64; ++i) pages.push_back(disk.Allocate());
  BufferPool pool(&disk, 128, 8);
  constexpr int kThreads = 8;
  constexpr int kIterations = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 977 + 11);
      for (int i = 0; i < kIterations; ++i) {
        PageId p = pages[rng.Below(pages.size())];
        auto pinned = pool.Pin(p);
        ASSERT_TRUE(pinned.ok()) << pinned.status();
        ASSERT_TRUE(pool.Unpin(p).ok());
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const PoolStats ps = pool.stats();
  // Exactness: every pin is either a hit or a fault, none lost.
  EXPECT_EQ(ps.pins, static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(ps.hits + ps.faults, ps.pins);
  // Capacity exceeds the page universe: faults == distinct pages touched,
  // and the disk saw exactly one read per fault.
  EXPECT_LE(ps.faults, pages.size());
  EXPECT_EQ(disk.reads(), ps.faults);
}

TEST(PagedDocTest, PostAtMatchesDocTable) {
  auto doc = RandomDocument(7, {.target_nodes = 5000});
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  BufferPool pool(&disk, 8);
  EXPECT_EQ(paged->size(), doc->size());
  EXPECT_EQ(paged->height(), doc->height());
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    NodeId v = static_cast<NodeId>(rng.Below(doc->size()));
    EXPECT_EQ(paged->PostAt(&pool, v).value(), doc->post(v));
  }
  EXPECT_FALSE(paged->PostAt(&pool, static_cast<NodeId>(doc->size())).ok());
}

using PagedParam = std::tuple<uint64_t, Axis, SkipMode, size_t>;

class PagedJoinPropertyTest : public ::testing::TestWithParam<PagedParam> {};

TEST_P(PagedJoinPropertyTest, MatchesInMemoryJoin) {
  auto [seed, axis, mode, pool_pages] = GetParam();
  auto doc = RandomDocument(seed, {.target_nodes = 4000});
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  BufferPool pool(&disk, pool_pages);
  Rng rng(seed ^ 0xBEEF);
  for (uint32_t percent : {5u, 30u}) {
    NodeSequence ctx = RandomContext(rng, *doc, percent);
    StaircaseOptions opt;
    opt.skip_mode = mode;
    JoinStats mem_stats, paged_stats;
    auto expected = StaircaseJoin(*doc, ctx, axis, opt, &mem_stats);
    auto got = PagedStaircaseJoin(*paged, &pool, ctx, axis, opt,
                                  &paged_stats);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got.value(), expected.value())
        << AxisName(axis) << " seed " << seed << " pool " << pool_pages;
    EXPECT_EQ(paged_stats.result_size, mem_stats.result_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PagedJoinPropertyTest,
    ::testing::Combine(
        ::testing::Values(11, 12),
        ::testing::Values(Axis::kDescendant, Axis::kDescendantOrSelf,
                          Axis::kAncestor, Axis::kAncestorOrSelf,
                          Axis::kFollowing, Axis::kPreceding),
        ::testing::Values(SkipMode::kNone, SkipMode::kSkip,
                          SkipMode::kEstimated),
        ::testing::Values(size_t{3}, size_t{64})));

TEST(PagedJoinTest, SkippingSavesPageFaults) {
  // A sparse context deep in a large document: without skipping the scan
  // pins every post page after the first context node; with estimation the
  // guaranteed-descendant copy phase reads no post pages at all.
  auto doc = RandomDocument(21, {.target_nodes = 60000});
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  NodeSequence ctx = {doc->root()};

  StaircaseOptions none, est;
  none.skip_mode = SkipMode::kNone;
  est.skip_mode = SkipMode::kEstimated;
  est.keep_attributes = true;  // pure copy: no kind pages either

  BufferPool cold_none(&disk, 4);
  (void)PagedStaircaseJoin(*paged, &cold_none, ctx, Axis::kDescendant, none);
  BufferPool cold_est(&disk, 4);
  (void)PagedStaircaseJoin(*paged, &cold_est, ctx, Axis::kDescendant, est);

  EXPECT_GT(cold_none.stats().faults, 0u);
  // (root)/descendant with estimation: only the root's own post page.
  EXPECT_LE(cold_est.stats().faults, 2u);
  EXPECT_LT(cold_est.stats().faults, cold_none.stats().faults);
}

TEST(PagedJoinTest, RejectsBadInput) {
  auto doc = RandomDocument(31);
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  BufferPool pool(&disk, 4);
  EXPECT_FALSE(
      PagedStaircaseJoin(*paged, &pool, {3, 1}, Axis::kDescendant).ok());
  // Non-staircase axes are rejected; following/preceding are supported
  // since the join runs through the backend-generic kernels.
  EXPECT_FALSE(PagedStaircaseJoin(*paged, &pool, {0}, Axis::kChild).ok());
  EXPECT_TRUE(PagedStaircaseJoin(*paged, &pool, {0}, Axis::kFollowing).ok());
  EXPECT_FALSE(
      PagedStaircaseJoin(*paged, nullptr, {0}, Axis::kDescendant).ok());
  EXPECT_FALSE(PagedDocTable::Create(*doc, nullptr).ok());
}

}  // namespace
}  // namespace sj::storage
