// The facade's thread-safety contract, tested: N threads x M queries
// over ONE shared Database -- both storage backends, pushdown on and off
// -- must produce exactly what a single-threaded session produces, node
// for node and trace for trace, while all sessions share one sharded
// buffer pool. Runs under the SJ_SANITIZE matrix (ASan/UBSan and TSan:
// the TSan job is what proves the pool's sharded latches and the
// database's immutability claims).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "xmlgen/xmark.h"

namespace sj {
namespace {

constexpr const char* kQueries[] = {
    "/descendant::open_auction/child::bidder/child::increase",
    "/descendant::person/attribute::id",
    "/descendant::profile/descendant::education",
    "/descendant::increase/ancestor::bidder",
    "/descendant::bidder/following-sibling::bidder",
    "/descendant::item[child::name] | /descendant::keyword",
};

/// The session configurations under test: all three storage backends,
/// pushdown on, off and cost-based. (Parallel intra-query workers are
/// exercised on the memory backend; on the pool-backed backends every
/// concurrent session already stresses the shared pool.)
std::vector<SessionOptions> Configs() {
  std::vector<SessionOptions> configs;
  for (StorageBackend backend :
       {StorageBackend::kMemory, StorageBackend::kPaged,
        StorageBackend::kCompressed}) {
    for (PushdownMode pushdown : {PushdownMode::kAuto, PushdownMode::kAlways,
                                  PushdownMode::kNever}) {
      SessionOptions o;
      o.backend = backend;
      o.hints.pushdown = pushdown;
      configs.push_back(o);
    }
  }
  SessionOptions parallel;
  parallel.num_threads = 2;
  parallel.hints.pushdown = PushdownMode::kNever;
  configs.push_back(parallel);
  return configs;
}

/// What must be bit-identical across threads: the nodes and the executed
/// plan (descriptions and the deterministic join counters; millis and
/// pool-level counters legitimately vary).
struct Oracle {
  NodeSequence nodes;
  std::vector<std::string> steps;
  std::vector<uint64_t> scanned;
  uint64_t result_size = 0;
};

Oracle MakeOracle(const QueryResult& r) {
  Oracle o;
  o.nodes = r.nodes;
  for (const StepTrace& t : r.trace) {
    o.steps.push_back(t.description);
    o.scanned.push_back(t.stats.nodes_scanned);
  }
  o.result_size = r.totals.result_size;
  return o;
}

class ApiConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    xmlgen::XMarkOptions gen;
    gen.size_mb = 0.5;
    gen.rich_text = false;
    DatabaseOptions open;
    open.build.store_values = false;
    open.pool_pages = 128;  // smaller than the doc image: evictions happen
    db_ = Database::FromXmark(gen, open).value().release();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
};

Database* ApiConcurrencyTest::db_ = nullptr;

TEST_F(ApiConcurrencyTest, ConcurrentSessionsMatchTheSingleThreadedOracle) {
  const std::vector<SessionOptions> configs = Configs();

  // Single-threaded oracle: one result per (config, query).
  std::vector<std::vector<Oracle>> oracles(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    Session session = std::move(db_->CreateSession(configs[c])).value();
    for (const char* q : kQueries) {
      auto r = session.Run(q);
      ASSERT_TRUE(r.ok()) << q << ": " << r.status();
      ASSERT_GT(r.value().nodes.size(), 0u)
          << q << " returned nothing; the oracle would be vacuous";
      oracles[c].push_back(MakeOracle(r.value()));
    }
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::atomic<int> failures{0};
  std::vector<std::string> messages(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stagger configs across threads so different backends and
      // pushdown modes genuinely overlap on the shared pool.
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < configs.size(); ++i) {
          size_t c = (i + static_cast<size_t>(t)) % configs.size();
          auto session = db_->CreateSession(configs[c]);
          if (!session.ok()) {
            messages[t] = session.status().ToString();
            ++failures;
            return;
          }
          for (size_t qi = 0; qi < std::size(kQueries); ++qi) {
            auto r = session.value().Run(kQueries[qi]);
            if (!r.ok()) {
              messages[t] = std::string(kQueries[qi]) + ": " +
                            r.status().ToString();
              ++failures;
              return;
            }
            const Oracle got = MakeOracle(r.value());
            const Oracle& want = oracles[c][qi];
            if (got.nodes != want.nodes || got.steps != want.steps ||
                got.scanned != want.scanned ||
                got.result_size != want.result_size) {
              messages[t] = std::string("diverged from oracle: ") +
                            kQueries[qi];
              ++failures;
              return;
            }
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  for (const std::string& m : messages) {
    EXPECT_TRUE(m.empty()) << m;
  }
  // The paged configurations really did share the pool.
  EXPECT_GT(db_->buffer_pool()->stats().pins, 0u);
}

TEST_F(ApiConcurrencyTest, SessionsWithPrivatePoolsStayIsolated) {
  // Private pools (cold-cache experiments) must neither disturb nor read
  // the shared pool -- even when other threads hammer it.
  SessionOptions shared_opt;
  shared_opt.backend = StorageBackend::kPaged;
  SessionOptions private_opt = shared_opt;
  private_opt.private_pool_pages = 16;

  std::thread background([&] {
    Session s = std::move(db_->CreateSession(shared_opt)).value();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(s.Run(kQueries[0]).ok());
    }
  });
  Session isolated = std::move(db_->CreateSession(private_opt)).value();
  ASSERT_NE(isolated.pool(), db_->buffer_pool());
  isolated.pool()->ResetStats();
  auto r = isolated.Run(kQueries[2]);
  ASSERT_TRUE(r.ok()) << r.status();
  // The private pool was cold: this session's faults are its own.
  EXPECT_GT(isolated.pool()->stats().faults, 0u);
  background.join();
}

TEST_F(ApiConcurrencyTest, TotalStatsCountConcurrentQueries) {
  // The database's lifetime counters (DatabaseStats, guarded by the
  // stats latch) must count exactly, even with every thread reporting
  // concurrently -- and a failed Run lands in queries_failed, never in
  // queries_run.
  const DatabaseStats before = db_->TotalStats();
  constexpr int kThreads = 8;
  constexpr int kRunsPerThread = 10;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> expected_nodes{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Session s = std::move(db_->CreateSession(SessionOptions{})).value();
      for (int i = 0; i < kRunsPerThread; ++i) {
        auto r = s.Run(kQueries[i % 3]);
        ASSERT_TRUE(r.ok()) << r.status();
        expected_nodes.fetch_add(r.value().nodes.size(),
                                 std::memory_order_relaxed);
      }
      ASSERT_FALSE(s.Run("/descendant::").ok());  // parse error
    });
  }
  for (auto& th : threads) th.join();
  const DatabaseStats after = db_->TotalStats();
  EXPECT_EQ(after.sessions_created - before.sessions_created,
            static_cast<uint64_t>(kThreads));
  EXPECT_EQ(after.queries_run - before.queries_run,
            static_cast<uint64_t>(kThreads * kRunsPerThread));
  EXPECT_EQ(after.queries_failed - before.queries_failed,
            static_cast<uint64_t>(kThreads));
  EXPECT_EQ(after.result_nodes - before.result_nodes,
            expected_nodes.load(std::memory_order_relaxed));
  // The MVCC counters: every session pinned the (pristine) snapshot at
  // creation, and a read-only workload never moves the edit counters.
  EXPECT_EQ(after.snapshots_pinned - before.snapshots_pinned,
            static_cast<uint64_t>(kThreads));
  EXPECT_EQ(after.edits_committed, 0u);
  EXPECT_EQ(after.delta_nodes, 0u);
  EXPECT_EQ(after.compactions, 0u);
}

TEST_F(ApiConcurrencyTest, ConcurrentPlanCacheHitsServeTheUncachedResult) {
  // 8 threads, fresh sessions every round, all asking the plan cache for
  // the same few plans across three backends: every served plan must
  // produce node-for-node the uncached oracle, and the TSan job proves
  // the cache latch and the shared_ptr plan handoff are clean. The
  // queries are unique to this test so the first run of each config is
  // genuinely uncached.
  constexpr const char* kCachedQueries[] = {
      "/descendant::bidder/child::increase",
      "/descendant::category/child::name",
  };
  std::vector<SessionOptions> configs;
  for (StorageBackend backend :
       {StorageBackend::kMemory, StorageBackend::kPaged,
        StorageBackend::kCompressed}) {
    SessionOptions o;
    o.backend = backend;
    configs.push_back(o);
  }

  const uint64_t hits_before = db_->TotalStats().plan_cache_hits;
  std::vector<std::vector<Oracle>> oracles(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    Session session = std::move(db_->CreateSession(configs[c])).value();
    for (const char* q : kCachedQueries) {
      auto r = session.Run(q);
      ASSERT_TRUE(r.ok()) << q << ": " << r.status();
      ASSERT_FALSE(r.value().plan_cached)
          << q << " was already cached; the oracle must be the uncached run";
      ASSERT_GT(r.value().nodes.size(), 0u) << q;
      oracles[c].push_back(MakeOracle(r.value()));
    }
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::atomic<int> failures{0};
  std::atomic<uint64_t> served{0};
  std::vector<std::string> messages(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < configs.size(); ++i) {
          const size_t c = (i + static_cast<size_t>(t)) % configs.size();
          // A fresh session per round: every first run goes through the
          // SHARED cache latch, not the session-local memo.
          auto session = db_->CreateSession(configs[c]);
          if (!session.ok()) {
            messages[t] = session.status().ToString();
            ++failures;
            return;
          }
          for (size_t qi = 0; qi < std::size(kCachedQueries); ++qi) {
            auto r = session.value().Run(kCachedQueries[qi]);
            if (!r.ok()) {
              messages[t] = std::string(kCachedQueries[qi]) + ": " +
                            r.status().ToString();
              ++failures;
              return;
            }
            if (!r.value().plan_cached) {
              messages[t] = std::string("expected a cache hit: ") +
                            kCachedQueries[qi];
              ++failures;
              return;
            }
            ++served;
            const Oracle got = MakeOracle(r.value());
            const Oracle& want = oracles[c][qi];
            if (got.nodes != want.nodes || got.steps != want.steps ||
                got.scanned != want.scanned ||
                got.result_size != want.result_size) {
              messages[t] = std::string("cached plan diverged: ") +
                            kCachedQueries[qi];
              ++failures;
              return;
            }
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  for (const std::string& m : messages) {
    EXPECT_TRUE(m.empty()) << m;
  }
  EXPECT_EQ(served.load(), static_cast<uint64_t>(kThreads * kRounds *
                                                 configs.size() *
                                                 std::size(kCachedQueries)));
  // Every one of those serves went through the shared cache (fresh
  // sessions have empty memos), so the lifetime hit counter moved.
  EXPECT_GE(db_->TotalStats().plan_cache_hits - hits_before, served.load());
}

TEST_F(ApiConcurrencyTest, SessionCreationIsCheap) {
  // The open-time digest work must not be repaid per session: creating a
  // session is O(1) in document size. The PAGED backend is the one that
  // historically paid O(doc) digest passes in the evaluator constructor
  // -- 10k creations on a ~23k-node document finish instantly unless
  // someone reintroduces that pass.
  SessionOptions paged;
  paged.backend = StorageBackend::kPaged;
  for (int i = 0; i < 10000; ++i) {
    auto session = db_->CreateSession(paged);
    ASSERT_TRUE(session.ok());
  }
  SUCCEED();
}

}  // namespace
}  // namespace sj
