// Cost-based planner tests: estimator sanity against exact tag counts,
// plan-choice boundaries (the estimates flip pushdown with context size
// and backend; pinned hints and cost_model kOff override them), the
// merged-dictionary bugfix on edited snapshots (fresh overlay tags get
// real counts), and positional set-at-a-time equivalence against the
// per-context oracle across axis x backend x predicate position.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "api/database.h"
#include "test_util.h"
#include "xpath/cost_model.h"

namespace sj {
namespace {

using xpath::CardinalityEstimator;
using xpath::ContextEstimate;
using xpath::DocStatistics;

/// A two-level tree whose planner arithmetic is checkable by hand:
/// 6000 <a> children of the root, each with one <b> child, plus three
/// selective <c> leaves. n = 1 + 6000 + 6000 + 3 = 12004.
std::unique_ptr<Database> MakePlannerDoc() {
  std::string xml = "<r>";
  for (int i = 0; i < 6000; ++i) xml += "<a><b/></a>";
  xml += "<c/><c/><c/>";
  xml += "</r>";
  auto db = Database::FromXml(xml);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

TagId TagOf(const Database& db, const std::string& name) {
  auto id = db.doc().tags().Lookup(name);
  EXPECT_TRUE(id.has_value()) << name;
  return id.value_or(kNoTag);
}

/// An estimator over the database's own statistics (memory unit; the
/// per-tag counts come straight from the collected statistics, as on a
/// pristine snapshot).
CardinalityEstimator MakeEstimator(const Database& db, double unit = 1.0) {
  const DocStatistics& stats = db.Statistics();
  return CardinalityEstimator(
      &stats, db.doc().size(), unit, [&stats](TagId t) {
        return t < stats.tag_counts.size() ? stats.tag_counts[t] : uint64_t{0};
      });
}

TEST(DocStatisticsTest, CollectMatchesDocument) {
  auto db = MakePlannerDoc();
  const DocStatistics& stats = db->Statistics();
  const DocTable& doc = db->doc();
  EXPECT_EQ(stats.doc_size, doc.size());
  // The histogram partitions the document.
  const uint64_t histogram_sum = std::accumulate(
      stats.level_histogram.begin(), stats.level_histogram.end(), uint64_t{0});
  EXPECT_EQ(histogram_sum, doc.size());
  EXPECT_EQ(stats.level_histogram[0], 1u);     // the root
  EXPECT_EQ(stats.level_histogram[1], 6003u);  // 6000 a + 3 c
  EXPECT_EQ(stats.level_histogram[2], 6000u);  // the b's
  EXPECT_EQ(stats.max_level, 2);
  // Per-tag counts and level spreads are exact.
  const TagId a = TagOf(*db, "a");
  const TagId b = TagOf(*db, "b");
  const TagId c = TagOf(*db, "c");
  EXPECT_EQ(stats.tag_counts[a], 6000u);
  EXPECT_EQ(stats.tag_counts[b], 6000u);
  EXPECT_EQ(stats.tag_counts[c], 3u);
  EXPECT_EQ(stats.tag_min_level[a], 1);
  EXPECT_EQ(stats.tag_max_level[a], 1);
  EXPECT_EQ(stats.tag_min_level[b], 2);
  EXPECT_EQ(stats.tag_max_level[b], 2);
}

TEST(DocStatisticsTest, CollectOnXmarkMatchesTagIndex) {
  xmlgen::XMarkOptions gen;
  gen.size_mb = 0.1;
  auto db = Database::FromXmark(gen).value();
  const DocStatistics& stats = db->Statistics();
  const DocTable& doc = db->doc();
  ASSERT_NE(db->tag_index(), nullptr);
  // The fragment sizes ARE the per-tag counts; Collect must agree with
  // the TagIndex for every interned element tag.
  for (TagId t = 0; t < doc.tags().size(); ++t) {
    uint64_t brute = 0;
    for (size_t i = 0; i < doc.size(); ++i) {
      if (doc.kind(i) == NodeKind::kElement && doc.tag(i) == t) ++brute;
    }
    ASSERT_LT(t, stats.tag_counts.size());
    // Attribute tags share the dictionary; Collect counts every tagged
    // node, so the stat is >= the element-only brute count and exact
    // when the name never appears as an attribute.
    EXPECT_GE(stats.tag_counts[t], brute) << doc.tags().Name(t);
  }
}

TEST(CardinalityEstimatorTest, DescendantFromRootIsExact) {
  auto db = MakePlannerDoc();
  CardinalityEstimator est = MakeEstimator(*db);
  // The root covers its whole level band, so a descendant name test
  // estimates to exactly the fragment size.
  EXPECT_DOUBLE_EQ(est.Root().rows, 1.0);
  EXPECT_DOUBLE_EQ(
      est.EstimateStep(est.Root(), Axis::kDescendant, TagOf(*db, "b")).rows,
      6000.0);
  EXPECT_DOUBLE_EQ(
      est.EstimateStep(est.Root(), Axis::kDescendant, TagOf(*db, "c")).rows,
      3.0);
}

TEST(CardinalityEstimatorTest, MonotoneInFragmentSize) {
  auto db = MakePlannerDoc();
  CardinalityEstimator est = MakeEstimator(*db);
  const double big =
      est.EstimateStep(est.Root(), Axis::kDescendant, TagOf(*db, "a")).rows;
  const double small =
      est.EstimateStep(est.Root(), Axis::kDescendant, TagOf(*db, "c")).rows;
  EXPECT_GT(big, small);
}

TEST(CardinalityEstimatorTest, LevelSpreadZeroesImpossibleSteps) {
  auto db = MakePlannerDoc();
  CardinalityEstimator est = MakeEstimator(*db);
  // child::r under the root: r only lives at level 0, the child band is
  // [1,1] -- the spread gate zeroes the estimate.
  EXPECT_DOUBLE_EQ(
      est.EstimateStep(est.Root(), Axis::kChild, TagOf(*db, "r")).rows, 0.0);
  // child::b two levels down ([3,3]) is equally impossible.
  const ContextEstimate deep{100.0, 3, 3};
  EXPECT_DOUBLE_EQ(est.EstimateStep(deep, Axis::kChild, TagOf(*db, "b")).rows,
                   0.0);
  // ...but from the a-band [1,1] it is nearly the full fragment (the
  // three c's dilute the band's coverage to 6000/6003).
  const ContextEstimate a_band{6000.0, 1, 1};
  EXPECT_NEAR(est.EstimateStep(a_band, Axis::kChild, TagOf(*db, "b")).rows,
              6000.0, 5.0);
}

TEST(CardinalityEstimatorTest, PredicateEstimates) {
  auto db = MakePlannerDoc();
  CardinalityEstimator est = MakeEstimator(*db);
  // Positional: at most one row per context node.
  EXPECT_DOUBLE_EQ(est.EstimatePredicate(10.0, 4.0, /*positional=*/true), 4.0);
  // Existence: the fixed selectivity guess.
  EXPECT_DOUBLE_EQ(est.EstimatePredicate(10.0, 4.0, /*positional=*/false),
                   10.0 * xpath::kExistsPredicateSelectivity);
}

/// The op token of step `step` (1-based) of `r`'s PlanSummary.
std::string OpOf(const QueryResult& r, size_t step) {
  const std::vector<PlanStepSummary> summary = r.PlanSummary();
  EXPECT_GE(summary.size(), step);
  if (summary.size() < step) return "";
  EXPECT_EQ(summary[step - 1].step, step);
  return summary[step - 1].op;
}

TEST(CostBasedPlannerTest, ContextSizeFlipsPushdown) {
  auto db = MakePlannerDoc();
  SessionOptions opt;
  opt.backend = StorageBackend::kPaged;
  opt.hints.twig = TwigMode::kNever;  // plan individual steps
  Session s = std::move(db->CreateSession(opt)).value();

  // Small context (the root): the fragment join reads ~3 u32 pages and
  // pays one probe; the doc-scan staircase join reads the whole 12k-node
  // region. Pushdown wins.
  auto selective = s.Run("/descendant::b");
  ASSERT_TRUE(selective.ok());
  EXPECT_EQ(OpOf(selective.value(), 1), "pushdown")
      << selective.value().Explain();

  // Large context (6000 a's): the per-context fence probes dominate and
  // the shared doc scan wins -- same tag, flipped by context size.
  auto wide = s.Run("/child::a/descendant::b");
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(OpOf(wide.value(), 1), "axis-cursor") << wide.value().Explain();
  EXPECT_EQ(OpOf(wide.value(), 2), "staircase") << wide.value().Explain();

  // The planner's choice always matches the cheaper estimate.
  CardinalityEstimator est = MakeEstimator(*db, xpath::kPagedPageCost);
  const TagId b = TagOf(*db, "b");
  EXPECT_LT(est.PushdownCost(est.Root(), b),
            est.StaircaseCost(est.Root(), Axis::kDescendant, true));
  const ContextEstimate a_band =
      est.EstimateStep(est.Root(), Axis::kChild, TagOf(*db, "a"));
  EXPECT_GT(est.PushdownCost(a_band, b),
            est.StaircaseCost(a_band, Axis::kDescendant, true));
}

TEST(CostBasedPlannerTest, ChoiceMatchesEstimatesOnEveryBackend) {
  auto db = MakePlannerDoc();
  const struct {
    StorageBackend backend;
    double unit;
  } backends[] = {{StorageBackend::kMemory, xpath::kMemoryPageCost},
                  {StorageBackend::kPaged, xpath::kPagedPageCost},
                  {StorageBackend::kCompressed, xpath::kCompressedPageCost}};
  const TagId a = TagOf(*db, "a");
  const TagId b = TagOf(*db, "b");
  NodeSequence reference;
  for (const auto& [backend, unit] : backends) {
    SessionOptions opt;
    opt.backend = backend;
    opt.hints.twig = TwigMode::kNever;
    Session s = std::move(db->CreateSession(opt)).value();
    auto r = s.Run("/child::a/descendant::b");
    ASSERT_TRUE(r.ok());
    // The planner's kAuto choice is exactly the cheaper estimate under
    // this backend's page-cost unit -- on every backend.
    CardinalityEstimator est = MakeEstimator(*db, unit);
    const ContextEstimate a_band =
        est.EstimateStep(est.Root(), Axis::kChild, a);
    const char* want = est.PushdownCost(a_band, b) <
                               est.StaircaseCost(a_band, Axis::kDescendant,
                                                 /*name_filter=*/true)
                           ? "pushdown"
                           : "staircase";
    EXPECT_EQ(OpOf(r.value(), 2), want)
        << "backend " << static_cast<int>(backend) << "\n"
        << r.value().Explain();
    // Node-identical across backends.
    if (reference.empty()) {
      reference = r.value().nodes;
    } else {
      EXPECT_EQ(r.value().nodes, reference);
    }
  }
}

TEST(CostBasedPlannerTest, HintsPinOverEstimates) {
  auto db = MakePlannerDoc();
  SessionOptions opt;
  opt.backend = StorageBackend::kPaged;
  opt.hints.twig = TwigMode::kNever;

  // kNever beats a pushdown-favoring estimate...
  SessionOptions never = opt;
  never.hints.pushdown = PushdownMode::kNever;
  Session sn = std::move(db->CreateSession(never)).value();
  auto rn = sn.Run("/descendant::b");
  ASSERT_TRUE(rn.ok());
  EXPECT_EQ(OpOf(rn.value(), 1), "staircase") << rn.value().Explain();

  // ...and kAlways beats a staircase-favoring one.
  SessionOptions always = opt;
  always.hints.pushdown = PushdownMode::kAlways;
  Session sa = std::move(db->CreateSession(always)).value();
  auto ra = sa.Run("/child::a/descendant::b");
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(OpOf(ra.value(), 2), "pushdown") << ra.value().Explain();
}

TEST(CostBasedPlannerTest, CostModelOffRestoresThreshold) {
  auto db = MakePlannerDoc();
  SessionOptions opt;
  opt.backend = StorageBackend::kPaged;
  opt.hints.twig = TwigMode::kNever;
  opt.hints.cost_model = CostModelMode::kOff;
  Session s = std::move(db->CreateSession(opt)).value();

  // Legacy static threshold: 6000 b's > 0.125 * 12004, so the doc scan
  // runs even though the estimates (see ContextSizeFlipsPushdown) would
  // push down.
  auto big = s.Run("/descendant::b");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(OpOf(big.value(), 1), "staircase") << big.value().Explain();

  // 3 c's are under the threshold, and the threshold ignores context
  // size -- pushdown either way.
  auto small = s.Run("/descendant::c");
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(OpOf(small.value(), 1), "pushdown") << small.value().Explain();
  auto wide = s.Run("/child::a/descendant::c");
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(OpOf(wide.value(), 2), "pushdown") << wide.value().Explain();
}

TEST(CostBasedPlannerTest, ExplainCarriesEstimateAndActual) {
  auto db = MakePlannerDoc();
  SessionOptions opt;
  opt.hints.twig = TwigMode::kNever;
  Session s = std::move(db->CreateSession(opt)).value();
  auto r = s.Run("/descendant::b");
  ASSERT_TRUE(r.ok());
  // The estimate is exact here, and EXPLAIN prints both numbers.
  const std::vector<PlanStepSummary> summary = r.value().PlanSummary();
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].estimated_rows, 6000u);
  EXPECT_EQ(summary[0].actual_rows, 6000u);
  EXPECT_NE(r.value().Explain().find(" est=6000 act=6000"), std::string::npos)
      << r.value().Explain();
}

TEST(CostBasedPlannerTest, CompiledAndFreshPlansAgree) {
  auto db = MakePlannerDoc();
  SessionOptions opt;
  opt.backend = StorageBackend::kPaged;
  Session s = std::move(db->CreateSession(opt)).value();
  auto first = s.Run("/child::a/descendant::b");
  auto second = s.Run("/child::a/descendant::b");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(first.value().plan_cached);
  EXPECT_TRUE(second.value().plan_cached);
  // The cached plan froze the same operators and estimates the fresh
  // plan derived (PlanPath is deterministic in statistics + options).
  const auto a = first.value().PlanSummary();
  const auto b = second.value().PlanSummary();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].estimated_rows, b[i].estimated_rows);
    EXPECT_EQ(a[i].actual_rows, b[i].actual_rows);
  }
}

TEST(CostBasedPlannerTest, EditedSnapshotUsesMergedTagCounts) {
  auto db = Database::FromXml("<r><a/><a/><a/></r>").value();
  EditTxn txn = db->BeginEdit();
  ASSERT_TRUE(txn.InsertLastChild(0, "<zzz/>").ok());
  ASSERT_TRUE(txn.InsertLastChild(0, "<zzz/>").ok());
  ASSERT_TRUE(txn.InsertLastChild(0, "<zzz/>").ok());
  ASSERT_TRUE(txn.Commit().ok());

  SessionOptions opt;
  opt.hints.twig = TwigMode::kNever;
  Session s = std::move(db->CreateSession(opt)).value();
  // zzz exists only in the delta: the base statistics never saw it, so a
  // stale read would estimate 0 (or fall back to document size). The
  // estimator reads the snapshot's MERGED fragment counts instead.
  auto r = s.Run("/descendant::zzz");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().snapshot_epoch, 0u);
  ASSERT_EQ(r.value().nodes.size(), 3u);
  const std::vector<PlanStepSummary> summary = r.value().PlanSummary();
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].estimated_rows, 3u) << r.value().Explain();
  EXPECT_EQ(summary[0].actual_rows, 3u);

  // An edited count of a base tag is merged too: delete one a.
  EditTxn txn2 = db->BeginEdit();
  ASSERT_TRUE(txn2.DeleteSubtree(1).ok());
  ASSERT_TRUE(txn2.Commit().ok());
  auto ra = s.Run("/descendant::a");
  ASSERT_TRUE(ra.ok());
  ASSERT_EQ(ra.value().nodes.size(), 2u);
  EXPECT_EQ(ra.value().PlanSummary()[0].estimated_rows, 2u)
      << ra.value().Explain();
}

// --- positional set-at-a-time equivalence ----------------------------------

constexpr const char* kPositionalQueries[] = {
    "/descendant::t0/child::t1[1]",
    "/descendant::t0/child::t1[2]",
    "/descendant::t0/child::node()[last()]",
    "/descendant::t1/following-sibling::node()[1]",
    "/descendant::t2/preceding-sibling::node()[last()]",
    "/descendant::t2/ancestor::t0[1]",
    "/descendant::t0/descendant::t1[2]",
    "/descendant::t0/attribute::node()[1]",
    "/child::node()/child::node()[2]/self::t1",
    "/descendant::t1/parent::node()[1]",
    "/descendant::t0/following::t1[3]",
    "/descendant::t2/preceding::node()[2]",
    "/descendant::t0/descendant-or-self::node()[2]",
    "/descendant::t1/ancestor-or-self::node()[1]",
};

TEST(PositionalRankJoinTest, MatchesPerContextOracleAcrossBackends) {
  auto doc_xml = sj::testing::RandomDocumentXml(1234, {});
  auto db = Database::FromXml(doc_xml).value();

  // The oracle: the naive engine's per-context evaluation.
  SessionOptions naive_opt;
  naive_opt.hints.engine = EngineMode::kNaive;
  Session oracle = std::move(db->CreateSession(naive_opt)).value();

  const StorageBackend backends[] = {StorageBackend::kMemory,
                                     StorageBackend::kPaged,
                                     StorageBackend::kCompressed};
  for (StorageBackend backend : backends) {
    SessionOptions opt;
    opt.backend = backend;
    Session s = std::move(db->CreateSession(opt)).value();
    for (const char* q : kPositionalQueries) {
      auto expected = oracle.Run(q);
      auto got = s.Run(q);
      ASSERT_TRUE(expected.ok()) << q << ": " << expected.status();
      ASSERT_TRUE(got.ok()) << q << ": " << got.status();
      EXPECT_EQ(got.value().nodes, expected.value().nodes)
          << q << " on backend " << static_cast<int>(backend) << "\n"
          << got.value().Explain();
    }
  }
}

TEST(PositionalRankJoinTest, ColdPoolChargesFaults) {
  auto doc_xml = sj::testing::RandomDocumentXml(99, {});
  auto db = Database::FromXml(doc_xml).value();
  SessionOptions opt;
  opt.backend = StorageBackend::kPaged;
  Session s = std::move(db->CreateSession(opt)).value();
  storage::BufferPool* pool = db->buffer_pool();
  ASSERT_NE(pool, nullptr);
  pool->FlushAll();
  pool->ResetStats();
  auto r = s.Run("/descendant::t0/child::t1[2]");
  ASSERT_TRUE(r.ok());
  // The positional rank join reads through the pool -- a cold pool
  // faults, and the per-step summaries account for them.
  EXPECT_GT(pool->stats().faults, 0u) << r.value().Explain();
  uint64_t summed = 0;
  for (const PlanStepSummary& step : r.value().PlanSummary()) {
    summed += step.faults;
  }
  EXPECT_GT(summed, 0u) << r.value().Explain();
}

}  // namespace
}  // namespace sj
