// Stress shapes for the join algorithms: degenerate trees (pure chains,
// flat stars, left/right combs) exercise the skip arithmetic at its
// extremes -- maximum level (chain: estimation error reaches h), zero
// level (star: estimation exact), alternating subtree sizes (combs).

#include <gtest/gtest.h>

#include <string>

#include "core/staircase_join.h"
#include "encoding/loader.h"
#include "test_util.h"

namespace sj {
namespace {

using testing::RegionOracle;

std::unique_ptr<DocTable> Chain(int depth) {
  std::string open, close;
  for (int i = 0; i < depth; ++i) {
    open += "<c>";
    close += "</c>";
  }
  return LoadDocument(open + close).value();
}

std::unique_ptr<DocTable> Star(int leaves) {
  std::string xml = "<r>";
  for (int i = 0; i < leaves; ++i) xml += "<l/>";
  xml += "</r>";
  return LoadDocument(xml).value();
}

/// Right comb: r(s(a, s(a, s(a, ...)))) -- every level one leaf + spine.
std::unique_ptr<DocTable> Comb(int depth) {
  std::string open, close;
  for (int i = 0; i < depth; ++i) {
    open += "<s><a/>";
    close += "</s>";
  }
  return LoadDocument("<r>" + open + close + "</r>").value();
}

class ShapeTest : public ::testing::TestWithParam<SkipMode> {};

TEST_P(ShapeTest, ChainAllAxes) {
  auto doc = Chain(120);
  StaircaseOptions opt;
  opt.skip_mode = GetParam();
  // Every node as context, every staircase axis, against the oracle.
  NodeSequence all;
  for (NodeId v = 0; v < doc->size(); ++v) all.push_back(v);
  for (Axis axis : {Axis::kDescendant, Axis::kAncestor, Axis::kFollowing,
                    Axis::kPreceding}) {
    EXPECT_EQ(StaircaseJoin(*doc, all, axis, opt).value(),
              RegionOracle(*doc, all, axis))
        << AxisName(axis);
  }
  // Single mid-chain context: descendant == suffix, ancestor == prefix.
  NodeId mid = 60;
  NodeSequence desc = StaircaseJoin(*doc, {mid}, Axis::kDescendant, opt)
                          .value();
  EXPECT_EQ(desc.size(), doc->size() - mid - 1);
  NodeSequence anc = StaircaseJoin(*doc, {mid}, Axis::kAncestor, opt)
                         .value();
  EXPECT_EQ(anc.size(), mid);
  // The chain has no following/preceding at all.
  EXPECT_TRUE(StaircaseJoin(*doc, {mid}, Axis::kFollowing, opt)
                  .value()
                  .empty());
}

TEST_P(ShapeTest, ChainEstimationErrorBoundedByHeight) {
  // In a chain the Eq. (1) lower bound post - pre underestimates the
  // subtree by exactly level(v); the scan phase must absorb it.
  auto doc = Chain(100);
  StaircaseOptions opt;
  opt.skip_mode = GetParam();
  JoinStats stats;
  NodeSequence r =
      StaircaseJoin(*doc, {0}, Axis::kDescendant, opt, &stats).value();
  EXPECT_EQ(r.size(), 99u);
  if (GetParam() == SkipMode::kEstimated) {
    // post(root) = 99, pre = 0: copy phase covers everything; 0 scans.
    EXPECT_EQ(stats.nodes_copied + stats.nodes_scanned, 99u);
  }
}

TEST_P(ShapeTest, StarShapes) {
  auto doc = Star(500);
  StaircaseOptions opt;
  opt.skip_mode = GetParam();
  // Leaves are mutually following/preceding.
  NodeId first_leaf = 1, last_leaf = 500;
  EXPECT_EQ(
      StaircaseJoin(*doc, {first_leaf}, Axis::kFollowing, opt).value().size(),
      499u);
  EXPECT_EQ(
      StaircaseJoin(*doc, {last_leaf}, Axis::kPreceding, opt).value().size(),
      499u);
  // All leaves as ancestor context prune to... nothing shared except root.
  NodeSequence leaves;
  for (NodeId v = 1; v < doc->size(); ++v) leaves.push_back(v);
  NodeSequence anc = StaircaseJoin(*doc, leaves, Axis::kAncestor, opt)
                         .value();
  EXPECT_EQ(anc, (NodeSequence{0}));
  JoinStats stats;
  (void)StaircaseJoin(*doc, leaves, Axis::kDescendant, opt, &stats);
  EXPECT_EQ(stats.pruned_context_size, leaves.size());  // nothing nested
}

TEST_P(ShapeTest, CombMatchesOracle) {
  auto doc = Comb(60);
  StaircaseOptions opt;
  opt.skip_mode = GetParam();
  // Context: all the leaf 'a' nodes (every other node on the spine).
  TagId a = doc->tags().Lookup("a").value();
  NodeSequence as;
  for (NodeId v = 0; v < doc->size(); ++v) {
    if (doc->tag(v) == a) as.push_back(v);
  }
  ASSERT_EQ(as.size(), 60u);
  for (Axis axis : {Axis::kDescendant, Axis::kAncestor, Axis::kFollowing,
                    Axis::kPreceding, Axis::kAncestorOrSelf}) {
    EXPECT_EQ(StaircaseJoin(*doc, as, axis, opt).value(),
              RegionOracle(*doc, as, axis))
        << AxisName(axis);
  }
  // Ancestor result: every spine node (and the root).
  EXPECT_EQ(StaircaseJoin(*doc, as, Axis::kAncestor, opt).value().size(),
            61u);
}

TEST_P(ShapeTest, TwoNodeAndSingleNodeDocuments) {
  auto single = LoadDocument("<a/>").value();
  StaircaseOptions opt;
  opt.skip_mode = GetParam();
  for (Axis axis : {Axis::kDescendant, Axis::kAncestor, Axis::kFollowing,
                    Axis::kPreceding}) {
    EXPECT_TRUE(StaircaseJoin(*single, {0}, axis, opt).value().empty());
  }
  EXPECT_EQ(
      StaircaseJoin(*single, {0}, Axis::kDescendantOrSelf, opt).value(),
      (NodeSequence{0}));

  auto pair = LoadDocument("<a><b/></a>").value();
  EXPECT_EQ(StaircaseJoin(*pair, {0}, Axis::kDescendant, opt).value(),
            (NodeSequence{1}));
  EXPECT_EQ(StaircaseJoin(*pair, {1}, Axis::kAncestor, opt).value(),
            (NodeSequence{0}));
}

INSTANTIATE_TEST_SUITE_P(SkipModes, ShapeTest,
                         ::testing::Values(SkipMode::kNone, SkipMode::kSkip,
                                           SkipMode::kEstimated));

TEST(ShapeTest2, WideAndDeepMixed) {
  // A tree that alternates wide fans (each fan item carrying a small
  // subtree) and deep spines, catching skip arithmetic that mixes small
  // and huge subtrees.
  std::string xml = "<r>";
  for (int i = 0; i < 20; ++i) {
    xml += "<f>";
    for (int j = 0; j < 30; ++j) xml += "<x><z/><z/><z/></x>";
    xml += "<d><d><d><d><y/></d></d></d></d>";
    xml += "</f>";
  }
  xml += "</r>";
  auto doc = LoadDocument(xml).value();
  TagId y = doc->tags().Lookup("y").value();
  NodeSequence ys;
  for (NodeId v = 0; v < doc->size(); ++v) {
    if (doc->tag(v) == y) ys.push_back(v);
  }
  ASSERT_EQ(ys.size(), 20u);
  for (Axis axis : {Axis::kDescendant, Axis::kAncestor, Axis::kFollowing,
                    Axis::kPreceding}) {
    EXPECT_EQ(StaircaseJoin(*doc, ys, axis).value(),
              testing::RegionOracle(*doc, ys, axis))
        << AxisName(axis);
  }
  // Footnote 5 in action: the h-bound estimate post - pre = size - level
  // shrinks for deep small subtrees (each <x> here: size 3, level 2 =>
  // skip width 1), while the exact-level variant leaps the full subtree.
  StaircaseOptions hbound, exact;
  hbound.skip_mode = SkipMode::kSkip;
  exact.skip_mode = SkipMode::kSkip;
  exact.use_exact_level = true;
  JoinStats hbound_stats, exact_stats;
  (void)StaircaseJoin(*doc, ys, Axis::kAncestor, hbound, &hbound_stats);
  (void)StaircaseJoin(*doc, ys, Axis::kAncestor, exact, &exact_stats);
  EXPECT_GT(hbound_stats.nodes_skipped, 0u);
  EXPECT_GT(exact_stats.nodes_skipped, hbound_stats.nodes_skipped);
  // Exact skipping touches one node per fan item; h-bound touches more
  // but both stay far below the full partition scan.
  JoinStats none_stats;
  StaircaseOptions none;
  none.skip_mode = SkipMode::kNone;
  (void)StaircaseJoin(*doc, ys, Axis::kAncestor, none, &none_stats);
  EXPECT_LT(exact_stats.nodes_scanned, none_stats.nodes_scanned / 2);
}

}  // namespace
}  // namespace sj
