// Backend equivalence for the unified staircase join: the ONE set of
// Section 3/4 kernels (core/staircase_impl.h), instantiated with the
// in-memory cursor, the buffer-pool cursor AND the compressed-block
// cursor, must return byte-identical NodeSequences for every staircase
// axis and skip mode -- and the pool-backed instantiations must turn
// skipping into page faults saved (the compressed one into strictly
// fewer of them). Also drives whole queries end-to-end over the paged
// and compressed backends through the Database/Session facade (which
// owns the backend wiring and validates image digests at open time).

#include <gtest/gtest.h>

#include <cstring>

#include "api/database.h"
#include "core/doc_accessor.h"
#include "storage/compressed_accessor.h"
#include "storage/compressed_doc.h"
#include "storage/paged_accessor.h"
#include "storage/paged_doc.h"
#include "test_util.h"
#include "util/rng.h"

namespace sj::storage {
namespace {

using sj::testing::RandomContext;
using sj::testing::RandomDocOptions;
using sj::testing::RandomDocument;

constexpr Axis kStaircaseAxes[] = {
    Axis::kDescendant, Axis::kDescendantOrSelf, Axis::kAncestor,
    Axis::kAncestorOrSelf, Axis::kFollowing, Axis::kPreceding,
};
constexpr SkipMode kSkipModes[] = {SkipMode::kNone, SkipMode::kSkip,
                                   SkipMode::kEstimated};

/// Bytewise equality: the acceptance bar is byte-identical sequences, not
/// just element-wise EXPECT_EQ.
bool BytesEqual(const NodeSequence& a, const NodeSequence& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(NodeId)) == 0);
}

TEST(DocAccessorTest, MemoryAndPagedCursorsReadTheSameColumns) {
  // Seeds are chosen so the generator actually produces multi-page
  // documents (its top-level fanout is seed-sensitive).
  auto doc = RandomDocument(11, {.target_nodes = 60000});
  ASSERT_GT(doc->size(), 10000u);
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  BufferPool pool(&disk, 8);
  MemoryDocAccessor mem(*doc);
  PagedDocAccessor io(*paged, &pool);
  ASSERT_EQ(mem.size(), io.size());
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    uint64_t pre = rng.Below(doc->size());
    EXPECT_EQ(mem.Post(pre), io.Post(pre)) << "pre " << pre;
    EXPECT_EQ(mem.Kind(pre), io.Kind(pre)) << "pre " << pre;
    EXPECT_EQ(mem.Level(pre), io.Level(pre)) << "pre " << pre;
    if (i % 7 == 0) io.SkipTo(rng.Below(doc->size() + 1));
  }
  EXPECT_TRUE(io.ok()) << io.status();
}

TEST(DocAccessorTest, CompressedCursorReadsAllFiveColumnsExactly) {
  auto doc = RandomDocument(11, {.target_nodes = 60000,
                                 .attribute_percent = 30});
  ASSERT_GT(doc->size(), 10000u);
  SimulatedDisk disk;
  auto compressed = CompressedDocTable::Create(*doc, &disk).value();
  // Decoding never alters the columns: the compressed image must be a
  // strict shrink of the raw one.
  ASSERT_LT(compressed->encoded_bytes(), doc->size() * 14);
  BufferPool pool(&disk, 8);
  MemoryDocAccessor mem(*doc);
  CompressedDocAccessor io(*compressed, &pool);
  ASSERT_EQ(mem.size(), io.size());
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    uint64_t pre = rng.Below(doc->size());
    EXPECT_EQ(mem.Post(pre), io.Post(pre)) << "pre " << pre;
    EXPECT_EQ(mem.Kind(pre), io.Kind(pre)) << "pre " << pre;
    EXPECT_EQ(mem.Level(pre), io.Level(pre)) << "pre " << pre;
    EXPECT_EQ(mem.Parent(pre), io.Parent(pre)) << "pre " << pre;
    EXPECT_EQ(mem.Tag(pre), io.Tag(pre)) << "pre " << pre;
    if (i % 7 == 0) io.SkipTo(rng.Below(doc->size() + 1));
  }
  EXPECT_TRUE(io.ok()) << io.status();
}

TEST(DocAccessorTest, CompressedCursorIsStickyOnPoolExhaustion) {
  auto doc = RandomDocument(78, {.target_nodes = 500});
  SimulatedDisk disk;
  auto compressed = CompressedDocTable::Create(*doc, &disk).value();
  BufferPool pool(&disk, 1);
  // Starve the accessor: an outside pin occupies the single frame.
  ASSERT_TRUE(pool.Pin(compressed->kind().pages.front()).ok());
  CompressedDocAccessor io(*compressed, &pool);
  (void)io.Post(0);
  EXPECT_FALSE(io.ok());
  (void)io.Post(1);  // still failed, no crash, no new pins
  EXPECT_FALSE(io.status().ok());
  // And the join surfaces the error instead of returning garbage.
  auto r = CompressedStaircaseJoin(*compressed, &pool, {0},
                                   Axis::kDescendant);
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(pool.Unpin(compressed->kind().pages.front()).ok());
}

TEST(DocAccessorTest, PagedCursorIsStickyOnPoolExhaustion) {
  auto doc = RandomDocument(78, {.target_nodes = 500});
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  BufferPool pool(&disk, 1);
  // Starve the accessor: an outside pin occupies the single frame.
  ASSERT_TRUE(pool.Pin(paged->KindPage(0)).ok());
  PagedDocAccessor io(*paged, &pool);
  (void)io.Post(0);
  EXPECT_FALSE(io.ok());
  (void)io.Post(1);  // still failed, no crash, no new pins
  EXPECT_FALSE(io.status().ok());
  // And the join surfaces the error instead of returning garbage.
  auto r = PagedStaircaseJoin(*paged, &pool, {0}, Axis::kDescendant);
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(pool.Unpin(paged->KindPage(0)).ok());
}

class BackendEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

/// The satellite acceptance matrix: all staircase axes x all skip modes x
/// both pruning flavors on randomized mixed-kind trees, serial and
/// parallel paged AND compressed joins all byte-identical to the
/// in-memory join, with identical node-touch counters.
TEST_P(BackendEquivalenceTest, PoolBackendJoinsAreByteIdenticalToMemory) {
  const uint64_t seed = GetParam();
  RandomDocOptions doc_opt;
  doc_opt.target_nodes = 60000;  // seeds below yield 11k-29k actual nodes
  auto doc = RandomDocument(seed, doc_opt);
  ASSERT_GT(doc->size(), 10000u) << "degenerate random doc for seed " << seed;
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  auto compressed = CompressedDocTable::Create(*doc, &disk).value();
  BufferPool pool(&disk, 16);
  Rng rng(seed * 31 + 7);
  for (uint32_t percent : {2u, 25u}) {
    NodeSequence ctx = RandomContext(rng, *doc, percent);
    for (Axis axis : kStaircaseAxes) {
      for (SkipMode mode : kSkipModes) {
        for (bool fused : {true, false}) {
          StaircaseOptions opt;
          opt.skip_mode = mode;
          opt.prune_on_the_fly = fused;
          JoinStats mem_stats, io_stats, zip_stats;
          auto expected = StaircaseJoin(*doc, ctx, axis, opt, &mem_stats);
          ASSERT_TRUE(expected.ok()) << expected.status();
          auto got = PagedStaircaseJoin(*paged, &pool, ctx, axis, opt,
                                        &io_stats);
          ASSERT_TRUE(got.ok()) << got.status();
          EXPECT_TRUE(BytesEqual(got.value(), expected.value()))
              << AxisName(axis) << " mode " << static_cast<int>(mode)
              << " fused " << fused << " seed " << seed;
          auto zip = CompressedStaircaseJoin(*compressed, &pool, ctx, axis,
                                             opt, &zip_stats);
          ASSERT_TRUE(zip.ok()) << zip.status();
          EXPECT_TRUE(BytesEqual(zip.value(), expected.value()))
              << "compressed " << AxisName(axis) << " mode "
              << static_cast<int>(mode) << " fused " << fused << " seed "
              << seed;
          // The unified kernels also touch the same number of nodes.
          EXPECT_EQ(io_stats.nodes_scanned, mem_stats.nodes_scanned);
          EXPECT_EQ(io_stats.nodes_copied, mem_stats.nodes_copied);
          EXPECT_EQ(io_stats.nodes_skipped, mem_stats.nodes_skipped);
          EXPECT_EQ(zip_stats.nodes_scanned, mem_stats.nodes_scanned);
          EXPECT_EQ(zip_stats.nodes_copied, mem_stats.nodes_copied);
          EXPECT_EQ(zip_stats.nodes_skipped, mem_stats.nodes_skipped);

          auto par = ParallelPagedStaircaseJoin(*paged, &pool, ctx, axis,
                                                opt, 4);
          ASSERT_TRUE(par.ok()) << par.status();
          EXPECT_TRUE(BytesEqual(par.value(), expected.value()))
              << "parallel " << AxisName(axis) << " seed " << seed;
          auto zpar = ParallelCompressedStaircaseJoin(*compressed, &pool,
                                                      ctx, axis, opt, 4);
          ASSERT_TRUE(zpar.ok()) << zpar.status();
          EXPECT_TRUE(BytesEqual(zpar.value(), expected.value()))
              << "parallel compressed " << AxisName(axis) << " seed " << seed;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalenceTest,
                         ::testing::Values(11, 13, 17, 21, 29));

TEST(BackendEquivalenceTest, KeepAttributesAndExactLevelMatchToo) {
  auto doc = RandomDocument(13, {.target_nodes = 20000,
                                 .attribute_percent = 60});
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  auto compressed = CompressedDocTable::Create(*doc, &disk).value();
  BufferPool pool(&disk, 16);
  Rng rng(17);
  NodeSequence ctx = RandomContext(rng, *doc, 10);
  for (Axis axis : kStaircaseAxes) {
    for (bool keep_attributes : {false, true}) {
      StaircaseOptions opt;
      opt.keep_attributes = keep_attributes;
      opt.use_exact_level = true;  // exercises the pool-backed level column
      auto expected = StaircaseJoin(*doc, ctx, axis, opt);
      auto got = PagedStaircaseJoin(*paged, &pool, ctx, axis, opt);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_TRUE(BytesEqual(got.value(), expected.value()))
          << AxisName(axis) << " keep_attributes " << keep_attributes;
      auto zip = CompressedStaircaseJoin(*compressed, &pool, ctx, axis, opt);
      ASSERT_TRUE(zip.ok()) << zip.status();
      EXPECT_TRUE(BytesEqual(zip.value(), expected.value()))
          << "compressed " << AxisName(axis) << " keep_attributes "
          << keep_attributes;
    }
  }
}

TEST(PagedEvaluatorTest, MultiStepPathsMatchMemoryBackend) {
  auto db = Database::FromTable(RandomDocument(13, {.target_nodes = 60000}))
                .value();
  SessionOptions io_opt;
  io_opt.backend = StorageBackend::kPaged;
  SessionOptions zip_opt;
  zip_opt.backend = StorageBackend::kCompressed;
  Session mem = std::move(db->CreateSession()).value();
  Session io = std::move(db->CreateSession(io_opt)).value();
  Session zip = std::move(db->CreateSession(zip_opt)).value();

  const char* queries[] = {
      "/descendant::t0/descendant::t1",
      "/descendant-or-self::node()/ancestor::t2",
      "/descendant::t1/following::t0",
      "/descendant::t3/preceding::node()",
      "/descendant::t0[descendant::t1]/descendant::node()",
  };
  for (const char* q : queries) {
    auto expected = mem.Run(q);
    auto got = io.Run(q);
    auto zipped = zip.Run(q);
    ASSERT_TRUE(expected.ok()) << q << ": " << expected.status();
    ASSERT_TRUE(got.ok()) << q << ": " << got.status();
    ASSERT_TRUE(zipped.ok()) << q << ": " << zipped.status();
    EXPECT_TRUE(BytesEqual(got.value().nodes, expected.value().nodes)) << q;
    EXPECT_TRUE(BytesEqual(zipped.value().nodes, expected.value().nodes))
        << q;
  }
  EXPECT_GT(db->buffer_pool()->stats().pins, 0u);
  // EXPLAIN names the compressed path.
  auto r = zip.Run("/descendant::t0/descendant::node()");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().Explain().find("via compressed staircase join"),
            std::string::npos)
      << r.value().Explain();
}

TEST(PagedEvaluatorTest, ParallelWorkersMatchOverSharedPool) {
  auto db = Database::FromTable(RandomDocument(17, {.target_nodes = 60000}))
                .value();
  SessionOptions io_opt;
  io_opt.backend = StorageBackend::kPaged;
  io_opt.num_threads = 4;
  Session mem = std::move(db->CreateSession()).value();
  Session io = std::move(db->CreateSession(io_opt)).value();
  auto expected = mem.Run("/descendant::t0/descendant::node()");
  auto got = io.Run("/descendant::t0/descendant::node()");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_TRUE(BytesEqual(got.value().nodes, expected.value().nodes));
}

TEST(DatabaseOpenTest, StalePagedImageRejectedAtOpenTime) {
  // The paged image of a *different* document must be rejected when the
  // database is opened -- with the failing column set named -- not on
  // some session's first paged query.
  auto doc = RandomDocument(9, {.target_nodes = 500});
  auto other = RandomDocument(10, {.target_nodes = 800});
  auto disk = std::make_unique<SimulatedDisk>();
  auto paged_other = PagedDocTable::Create(*other, disk.get()).value();
  auto db = Database::FromParts(std::move(doc), nullptr, std::move(disk),
                                std::move(paged_other), nullptr);
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().ToString().find("post/kind/level/parent/tag"),
            std::string::npos)
      << db.status();

  // Equal node counts are not enough: a chain and a flat tree of the
  // same size have different post columns, caught by the digest check.
  auto chain = sj::LoadDocument("<a><b><c/></b></a>").value();
  auto flat = sj::LoadDocument("<a><b/><c/></a>").value();
  ASSERT_EQ(chain->size(), flat->size());
  auto disk2 = std::make_unique<SimulatedDisk>();
  auto paged_chain = PagedDocTable::Create(*chain, disk2.get()).value();
  auto spoofed = Database::FromParts(std::move(flat), nullptr,
                                     std::move(disk2),
                                     std::move(paged_chain), nullptr);
  ASSERT_FALSE(spoofed.ok());
  EXPECT_NE(spoofed.status().ToString().find("stale paged image"),
            std::string::npos)
      << spoofed.status();

  // The genuine pairing passes validation and serves paged queries.
  auto chain2 = sj::LoadDocument("<a><b><c/></b></a>").value();
  auto disk3 = std::make_unique<SimulatedDisk>();
  auto paged_chain2 = PagedDocTable::Create(*chain2, disk3.get()).value();
  auto genuine = Database::FromParts(std::move(chain2), nullptr,
                                     std::move(disk3),
                                     std::move(paged_chain2), nullptr);
  ASSERT_TRUE(genuine.ok()) << genuine.status();
  SessionOptions paged_opt;
  paged_opt.backend = StorageBackend::kPaged;
  auto r = std::move(genuine.value()->CreateSession(paged_opt)).value()
               .Run("/descendant::b");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().nodes.size(), 1u);
}

TEST(DatabaseOpenTest, PagedImageWithoutDiskRejected) {
  auto doc = RandomDocument(9, {.target_nodes = 500});
  auto disk = std::make_unique<SimulatedDisk>();
  auto paged = PagedDocTable::Create(*doc, disk.get()).value();
  // Adopting the paged table while dropping its disk is incoherent.
  auto db = Database::FromParts(std::move(doc), nullptr, nullptr,
                                std::move(paged), nullptr);
  EXPECT_FALSE(db.ok());
}

TEST(PagedEvaluatorTest, SkippingSavesFaultsOnMultiStepQuery) {
  // The acceptance-criteria experiment in test form: a full location path
  // over the buffer-pool backend faults fewer pages under kEstimated than
  // under kNone. Private per-session pools keep the two runs cold and
  // independent.
  auto doc = RandomDocument(21, {.target_nodes = 60000});
  ASSERT_GT(doc->size(), 20000u);
  auto db = Database::FromTable(std::move(doc)).value();

  auto faults_with = [&](SkipMode mode) {
    SessionOptions opt;
    opt.backend = StorageBackend::kPaged;
    opt.hints.pushdown = PushdownMode::kNever;
    // Step-at-a-time on purpose: this experiment isolates the staircase
    // join's skip machinery; the twig join reads so few doc pages that
    // the two skip modes tie.
    opt.hints.twig = TwigMode::kNever;
    opt.staircase.skip_mode = mode;
    opt.private_pool_pages = 8;
    Session io = std::move(db->CreateSession(opt)).value();
    auto r = io.Run("/descendant::t0/descendant::t1");
    EXPECT_TRUE(r.ok()) << r.status();
    return io.pool()->stats().faults;
  };
  uint64_t faults_none = faults_with(SkipMode::kNone);
  uint64_t faults_est = faults_with(SkipMode::kEstimated);
  EXPECT_LT(faults_est, faults_none);
}

TEST(CompressedEvaluatorTest, FaultsStrictlyFewerPagesThanPagedBackend) {
  // The tentpole acceptance experiment in test form: the SAME query over
  // the SAME document at the SAME page and pool size faults strictly
  // fewer pages on the compressed backend, because the identical scan
  // touches blocks that occupy a fraction of the pages. Cold private
  // pools keep the runs independent.
  auto db = Database::FromTable(RandomDocument(21, {.target_nodes = 60000}))
                .value();
  ASSERT_GT(db->doc().size(), 20000u);
  auto faults_with = [&](StorageBackend backend) {
    SessionOptions opt;
    opt.backend = backend;
    opt.hints.pushdown = PushdownMode::kNever;
    opt.private_pool_pages = 64;
    Session s = std::move(db->CreateSession(opt)).value();
    auto r = s.Run("/descendant::t0/descendant::t1");
    EXPECT_TRUE(r.ok()) << r.status();
    return s.pool()->stats().faults;
  };
  uint64_t paged_faults = faults_with(StorageBackend::kPaged);
  uint64_t compressed_faults = faults_with(StorageBackend::kCompressed);
  EXPECT_GT(compressed_faults, 0u);
  EXPECT_LT(compressed_faults, paged_faults);
}

TEST(DatabaseOpenTest, StaleCompressedImageRejectedAtOpenTime) {
  // A compressed image of a *different* document must be rejected when
  // the database is opened, naming the failing column set.
  auto doc = RandomDocument(9, {.target_nodes = 500});
  auto other = RandomDocument(10, {.target_nodes = 800});
  auto disk = std::make_unique<SimulatedDisk>();
  auto compressed_other =
      CompressedDocTable::Create(*other, disk.get()).value();
  DatabaseOptions open;
  open.build_paged = false;
  open.build_compressed = false;
  auto db = Database::FromParts(std::move(doc), nullptr, std::move(disk),
                                nullptr, nullptr,
                                std::move(compressed_other), nullptr, open);
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().ToString().find("stale compressed image"),
            std::string::npos)
      << db.status();
  EXPECT_NE(db.status().ToString().find("post/kind/level/parent/tag"),
            std::string::npos)
      << db.status();
}

TEST(DatabaseOpenTest, BitFlippedCompressedBlockRejectedAtOpenTime) {
  // Digest coverage of the compressed image itself: flip ONE bit inside
  // an encoded post block on disk and the open must fail with a Status
  // naming the damaged column -- the corrupt block is never served.
  auto doc = RandomDocument(9, {.target_nodes = 5000});
  auto disk = std::make_unique<SimulatedDisk>();
  auto compressed = CompressedDocTable::Create(*doc, disk.get()).value();
  const CompressedBlockRef& block = compressed->post().blocks.front();
  Page page;
  ASSERT_TRUE(disk->Read(block.page, &page).ok());
  page.bytes[block.offset + encoding::kBlockHeaderBytes] ^= 0x04;
  ASSERT_TRUE(disk->Write(block.page, page).ok());

  DatabaseOptions open;
  open.build_paged = false;
  open.build_compressed = false;
  auto db = Database::FromParts(std::move(doc), nullptr, std::move(disk),
                                nullptr, nullptr, std::move(compressed),
                                nullptr, open);
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().ToString().find("corrupt compressed image"),
            std::string::npos)
      << db.status();
  EXPECT_NE(db.status().ToString().find("post column"), std::string::npos)
      << db.status();

  // The undamaged pairing passes validation and serves compressed
  // queries.
  auto doc2 = RandomDocument(9, {.target_nodes = 5000});
  auto disk2 = std::make_unique<SimulatedDisk>();
  auto compressed2 = CompressedDocTable::Create(*doc2, disk2.get()).value();
  auto tags2 = CompressedTagIndex::Create(*doc2, disk2.get()).value();
  auto genuine = Database::FromParts(std::move(doc2), nullptr,
                                     std::move(disk2), nullptr, nullptr,
                                     std::move(compressed2), std::move(tags2),
                                     open);
  ASSERT_TRUE(genuine.ok()) << genuine.status();
  EXPECT_FALSE(genuine.value()->has_paged_backend());
  SessionOptions opt;
  opt.backend = StorageBackend::kCompressed;
  auto r = std::move(genuine.value()->CreateSession(opt)).value()
               .Run("/descendant::t0");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r.value().nodes.size(), 0u);
}

TEST(DatabaseOpenTest, CompressedImageWithoutDiskRejected) {
  auto doc = RandomDocument(9, {.target_nodes = 500});
  auto disk = std::make_unique<SimulatedDisk>();
  auto compressed = CompressedDocTable::Create(*doc, disk.get()).value();
  DatabaseOptions open;
  open.build_paged = false;
  open.build_compressed = false;
  // Adopting the compressed table while dropping its disk is incoherent.
  auto db = Database::FromParts(std::move(doc), nullptr, nullptr, nullptr,
                                nullptr, std::move(compressed), nullptr,
                                open);
  EXPECT_FALSE(db.ok());
}

TEST(DatabaseOpenTest, SessionWithoutCompressedImageRejected) {
  DatabaseOptions open;
  open.build_compressed = false;
  auto db = Database::FromTable(RandomDocument(9, {.target_nodes = 500}),
                                open)
                .value();
  SessionOptions opt;
  opt.backend = StorageBackend::kCompressed;
  auto session = db->CreateSession(opt);
  ASSERT_FALSE(session.ok());
  EXPECT_NE(session.status().ToString().find("build_compressed"),
            std::string::npos)
      << session.status();
}

}  // namespace
}  // namespace sj::storage
