// Tests for the paper-faithful algebra surface (Section 4.4 vocabulary).

#include <gtest/gtest.h>

#include "core/algebra.h"
#include "test_util.h"
#include "xmlgen/xmark.h"

namespace sj::algebra {
namespace {

TEST(AlgebraTest, RootOfPaperExample) {
  auto doc = sj::testing::LoadPaperExample();
  EXPECT_EQ(root(*doc), (NodeSequence{0}));
}

TEST(AlgebraTest, NametestFiltersByTag) {
  auto doc = sj::testing::LoadPaperExample();
  NodeSequence all;
  for (NodeId v = 0; v < doc->size(); ++v) all.push_back(v);
  EXPECT_EQ(nametest(*doc, all, "e"), (NodeSequence{4}));
  EXPECT_TRUE(nametest(*doc, all, "nosuch").empty());
}

TEST(AlgebraTest, NametestOnDocBuildsView) {
  auto doc = sj::testing::LoadPaperExample();
  TagView view = nametest(*doc, "f");
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view.pre[0], 5u);
  EXPECT_TRUE(nametest(*doc, "nosuch").pre.empty());
}

TEST(AlgebraTest, PaperQ2Pipeline) {
  // The exact Section 4.4 evaluation:
  //   r  = root(doc)
  //   s1 = nametest(staircasejoin_desc(doc, r), "increase")
  //   s2 = nametest(staircasejoin_anc(doc, s1), "bidder")
  xmlgen::XMarkOptions opt;
  opt.size_mb = 0.5;
  auto doc = xmlgen::GenerateXMarkDocument(opt).value();

  NodeSequence r = root(*doc);
  NodeSequence s1 =
      nametest(*doc, staircasejoin_desc(*doc, r).value(), "increase");
  NodeSequence s2 =
      nametest(*doc, staircasejoin_anc(*doc, s1).value(), "bidder");
  EXPECT_GT(s1.size(), 0u);
  EXPECT_EQ(s2.size(), s1.size());  // one increase per bidder

  // ... and the pushdown-rewritten form gives the same result:
  //   staircasejoin_anc(nametest(doc, "bidder"), s1).
  TagView bidders = nametest(*doc, "bidder");
  EXPECT_EQ(staircasejoin_anc(*doc, bidders, s1).value(), s2);
}

TEST(AlgebraTest, FollowingPrecedingWrappers) {
  auto doc = sj::testing::LoadPaperExample();
  EXPECT_EQ(staircasejoin_foll(*doc, {2}).value(),
            (NodeSequence{3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(staircasejoin_prec(*doc, {5}).value(), (NodeSequence{1, 2, 3}));
}

TEST(AlgebraTest, StatsAreForwarded) {
  auto doc = sj::testing::LoadPaperExample();
  JoinStats stats;
  (void)staircasejoin_desc(*doc, root(*doc), {}, &stats);
  EXPECT_EQ(stats.result_size, 9u);
}

}  // namespace
}  // namespace sj::algebra
