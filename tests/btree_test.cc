// Tests for the B+-tree substrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "btree/bplus_tree.h"
#include "util/rng.h"

namespace sj::btree {
namespace {

std::vector<IndexKey> SequentialKeys(uint32_t n) {
  std::vector<IndexKey> keys;
  keys.reserve(n);
  for (uint32_t i = 0; i < n; ++i) keys.push_back({i, n - i, i % 7});
  return keys;
}

TEST(IndexKeyTest, LexicographicOrder) {
  EXPECT_LT((IndexKey{1, 9, 9}), (IndexKey{2, 0, 0}));
  EXPECT_LT((IndexKey{1, 2, 9}), (IndexKey{1, 3, 0}));
  EXPECT_LT((IndexKey{1, 2, 3}), (IndexKey{1, 2, 4}));
  EXPECT_EQ((IndexKey{1, 2, 3}), (IndexKey{1, 2, 3}));
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_FALSE(tree.Contains({1, 2, 3}));
  EXPECT_FALSE(tree.Seek({0, 0, 0}).Valid());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, InsertAndContains) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert({5, 1, 0}).ok());
  ASSERT_TRUE(tree.Insert({3, 2, 0}).ok());
  ASSERT_TRUE(tree.Insert({9, 3, 0}).ok());
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_TRUE(tree.Contains({5, 1, 0}));
  EXPECT_TRUE(tree.Contains({3, 2, 0}));
  EXPECT_FALSE(tree.Contains({5, 1, 1}));
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, DuplicateInsertRejected) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert({1, 1, 1}).ok());
  EXPECT_EQ(tree.Insert({1, 1, 1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, InsertManySplitsAndStaysSorted) {
  BPlusTree tree;
  Rng rng(99);
  std::vector<IndexKey> keys;
  for (uint32_t i = 0; i < 5000; ++i) {
    IndexKey k{static_cast<uint32_t>(rng.Below(100000)),
               static_cast<uint32_t>(rng.Below(100000)), 0};
    if (tree.Insert(k).ok()) keys.push_back(k);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  EXPECT_EQ(tree.size(), keys.size());
  EXPECT_GT(tree.height(), 1u);
  std::sort(keys.begin(), keys.end());
  // Full scan enumerates exactly the inserted keys, in order.
  size_t i = 0;
  for (auto it = tree.Seek({0, 0, 0}); it.Valid(); it.Next(), ++i) {
    ASSERT_LT(i, keys.size());
    EXPECT_EQ(it.key(), keys[i]);
  }
  EXPECT_EQ(i, keys.size());
}

TEST(BPlusTreeTest, BulkLoadMatchesInsert) {
  auto keys = SequentialKeys(10000);
  BPlusTree bulk;
  ASSERT_TRUE(bulk.BulkLoad(keys).ok());
  ASSERT_TRUE(bulk.CheckInvariants().ok()) << bulk.CheckInvariants();
  EXPECT_EQ(bulk.size(), keys.size());
  for (uint32_t probe : {0u, 1u, 4999u, 9999u}) {
    EXPECT_TRUE(bulk.Contains(keys[probe]));
  }
  EXPECT_FALSE(bulk.Contains({10000, 0, 0}));
}

TEST(BPlusTreeTest, BulkLoadRejectsUnsorted) {
  BPlusTree tree;
  EXPECT_FALSE(tree.BulkLoad({{2, 0, 0}, {1, 0, 0}}).ok());
  EXPECT_FALSE(tree.BulkLoad({{1, 0, 0}, {1, 0, 0}}).ok());
}

TEST(BPlusTreeTest, BulkLoadIntoNonEmptyRejected) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert({1, 1, 1}).ok());
  EXPECT_FALSE(tree.BulkLoad({{2, 0, 0}}).ok());
}

TEST(BPlusTreeTest, SeekFindsLowerBound) {
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad(SequentialKeys(1000)).ok());
  auto it = tree.Seek({500, 0, 0});
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().pre, 500u);
  // Seeking past the end yields an invalid iterator.
  EXPECT_FALSE(tree.Seek({1000, 0, 0}).Valid());
}

TEST(BPlusTreeTest, RangeScanCountsEntries) {
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad(SequentialKeys(1000)).ok());
  ScanStats stats;
  uint64_t seen = 0;
  for (auto it = tree.Seek({100, 0, 0}, &stats);
       it.Valid() && it.key().pre < 200; it.Next()) {
    ++seen;
  }
  EXPECT_EQ(seen, 100u);
  EXPECT_GE(stats.entries_scanned, 99u);  // the last Next is not counted
  EXPECT_GE(stats.leaves_visited, 100u / BPlusTree::kLeafCapacity);
}

TEST(BPlusTreeTest, MixedInsertAfterBulkLoad) {
  BPlusTree tree;
  std::vector<IndexKey> keys;
  for (uint32_t i = 0; i < 500; ++i) keys.push_back({i * 2, 0, 0});
  ASSERT_TRUE(tree.BulkLoad(keys).ok());
  for (uint32_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert({i * 2 + 1, 0, 0}).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  uint32_t expect = 0;
  for (auto it = tree.Seek({0, 0, 0}); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key().pre, expect++);
  }
  EXPECT_EQ(expect, 1000u);
}

}  // namespace
}  // namespace sj::btree
