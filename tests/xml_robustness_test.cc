// Robustness tests for the XML parser: randomly mutated well-formed
// documents and random byte garbage must never crash, hang, or report
// success for structurally broken input -- they either parse cleanly or
// return ParseError. A builder behind the parser must likewise only ever
// see balanced events.

#include <gtest/gtest.h>

#include <string>

#include "encoding/builder.h"
#include "test_util.h"
#include "util/rng.h"
#include "xml/dom.h"
#include "xml/parser.h"

namespace sj::xml {
namespace {

/// Parses into a DocTableBuilder (exercising the full pipeline) and
/// reports whether parsing succeeded.
bool TryParse(const std::string& input) {
  DocTableBuilder builder;
  Status st = Parse(input, &builder);
  if (!st.ok()) {
    EXPECT_EQ(st.code(), StatusCode::kParseError) << st;
    return false;
  }
  // A successful parse must leave a balanced builder.
  auto doc = builder.Finish();
  EXPECT_TRUE(doc.ok()) << doc.status();
  return true;
}

class MutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationTest, SingleByteMutationsNeverCrash) {
  std::string base = sj::testing::RandomDocumentXml(GetParam(), {});
  Rng rng(GetParam() ^ 0xFEED);
  int parsed = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    size_t pos = rng.Below(mutated.size());
    switch (rng.Below(3)) {
      case 0:  // flip to a random printable byte
        mutated[pos] = static_cast<char>(' ' + rng.Below(94));
        break;
      case 1:  // delete a byte
        mutated.erase(pos, 1);
        break;
      default:  // duplicate a byte
        mutated.insert(pos, 1, mutated[pos]);
        break;
    }
    parsed += TryParse(mutated) ? 1 : 0;
  }
  // Some mutations only touch text content and still parse; both outcomes
  // must occur across 300 trials (sanity of the test itself).
  EXPECT_GT(parsed, 0);
  EXPECT_LT(parsed, 300);
}

TEST_P(MutationTest, TruncationsNeverCrash) {
  std::string base = sj::testing::RandomDocumentXml(GetParam(), {});
  for (size_t len : {size_t{0}, size_t{1}, base.size() / 4, base.size() / 2,
                     base.size() - 1}) {
    (void)TryParse(base.substr(0, len));
  }
}

TEST_P(MutationTest, RandomGarbageNeverCrashes) {
  Rng rng(GetParam() * 977);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    size_t len = rng.Below(200);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Below(256)));
    }
    (void)TryParse(garbage);
  }
}

TEST_P(MutationTest, MarkupSoupNeverCrashes) {
  // Concatenations of markup fragments: worst case for the tokenizer.
  static const char* kFragments[] = {
      "<",    ">",    "</",   "/>",   "<!--", "-->",  "<![CDATA[",
      "]]>",  "<?",   "?>",   "&",    ";",    "\"",   "'",
      "=",    "a",    " ",    "&lt;", "<a",   "</a>", "x",
  };
  Rng rng(GetParam() * 31 + 3);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup;
    size_t pieces = 1 + rng.Below(40);
    for (size_t i = 0; i < pieces; ++i) {
      soup += kFragments[rng.Below(std::size(kFragments))];
    }
    (void)TryParse(soup);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationTest,
                         ::testing::Values(1001, 1002, 1003));

TEST(RobustnessTest, DeeplyNestedDocument) {
  // 200 levels: within the encoder's 255-level bound.
  std::string open, close;
  for (int i = 0; i < 200; ++i) {
    open += "<d>";
    close += "</d>";
  }
  EXPECT_TRUE(TryParse(open + close));
  // 300 levels: parses as XML but exceeds the level column's range; the
  // builder reports Unsupported rather than truncating.
  std::string deep_open, deep_close;
  for (int i = 0; i < 300; ++i) {
    deep_open += "<d>";
    deep_close += "</d>";
  }
  DocTableBuilder builder;
  Status st = Parse(deep_open + deep_close, &builder);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST(RobustnessTest, ManySiblings) {
  std::string xml = "<r>";
  for (int i = 0; i < 50000; ++i) xml += "<c/>";
  xml += "</r>";
  DocTableBuilder builder;
  ASSERT_TRUE(Parse(xml, &builder).ok());
  auto doc = builder.Finish().value();
  EXPECT_EQ(doc->size(), 50001u);
  EXPECT_EQ(doc->height(), 1u);
}

TEST(RobustnessTest, HugeAttributeAndTextValues) {
  std::string big(100000, 'x');
  EXPECT_TRUE(TryParse("<a v=\"" + big + "\">" + big + "</a>"));
}

}  // namespace
}  // namespace sj::xml
