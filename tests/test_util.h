// Shared test helpers: random documents, the paper's Fig. 1/2 example, and
// a region-definition oracle that computes axis results straight from the
// pre/post predicates (independent of both the staircase join and the
// naive baseline, so the three implementations cross-check each other).

#ifndef STAIRJOIN_TESTS_TEST_UTIL_H_
#define STAIRJOIN_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/axis.h"
#include "encoding/builder.h"
#include "encoding/doc_table.h"
#include "encoding/loader.h"
#include "util/rng.h"

namespace sj::testing {

/// The 10-node document of paper Fig. 1/2:
///   a(b(c), d, e(f(g, h), i(j)))
/// with pre/post ranks a(0,9) b(1,1) c(2,0) d(3,2) e(4,8) f(5,5) g(6,3)
/// h(7,4) i(8,7) j(9,6).
inline constexpr const char* kPaperExampleXml =
    "<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>";

/// Loads the paper example; aborts the test process on failure.
std::unique_ptr<DocTable> LoadPaperExample();

/// Random-document knobs.
struct RandomDocOptions {
  size_t target_nodes = 200;
  uint32_t max_children = 5;
  uint32_t attribute_percent = 20;  ///< chance an element gets an attribute
  uint32_t text_percent = 30;       ///< chance a leaf slot is a text node
  uint32_t comment_percent = 5;
  uint32_t pi_percent = 3;
  uint32_t tag_alphabet = 6;  ///< number of distinct element names
};

/// \brief Generates a random document (as XML text) with mixed node kinds.
std::string RandomDocumentXml(uint64_t seed, const RandomDocOptions& options);

/// \brief Generates and encodes a random document.
std::unique_ptr<DocTable> RandomDocument(uint64_t seed,
                                         const RandomDocOptions& options = {});

/// \brief Picks a random document-order, duplicate-free context sequence.
NodeSequence RandomContext(Rng& rng, const DocTable& doc,
                           uint32_t percent_of_doc);

/// \brief Axis results straight from the pre/post (and parent) predicates:
/// result = { v | exists c in context : v in axis-region(c) }, document
/// order, duplicate free. Attribute filtering follows the library default
/// (self nodes exempt); `keep_attributes` disables it.
NodeSequence RegionOracle(const DocTable& doc, const NodeSequence& context,
                          Axis axis, bool keep_attributes = false);

}  // namespace sj::testing

#endif  // STAIRJOIN_TESTS_TEST_UTIL_H_
