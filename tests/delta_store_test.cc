// Updatable documents, tested end to end: edits applied through the
// delta overlay must be NODE-IDENTICAL to rebuilding the database from
// the edited document -- per query, per backend (memory/paged/
// compressed), before and after Compact(). The logical rank space is
// dense, so "identical" is literal NodeSequence equality, never a
// remapping. Randomized edit scripts drive the segment surgery through
// arbitrary insert/delete/replace interleavings; a column-equivalence
// walk pins the merging accessor against the materialized fold; and a
// writers-vs-readers test (run under the SJ_SANITIZE TSan job) proves
// snapshot isolation: readers only ever observe committed states.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "core/doc_accessor.h"
#include "delta/delta_accessor.h"
#include "delta/overlay.h"
#include "test_util.h"
#include "util/rng.h"

namespace sj {
namespace {

/// The query mix every equivalence check runs: staircase axes, pushdown
/// candidates, twig runs, non-staircase cursors, predicates (existence
/// and positional -- the per-context merged-table path), and a union.
const char* const kQueries[] = {
    "/descendant::t0",
    "/descendant::t1",
    "/descendant::t0/child::t1",
    "/descendant::t1/child::t2/child::t3",
    "/descendant::t2/ancestor::t0",
    "/descendant::t3/following-sibling::t4",
    "/descendant::t4/preceding-sibling::node()",
    "/descendant::t0/attribute::*",
    "/child::node()/child::node()",
    "/descendant::t0[child::t1]",
    "/descendant::t1[2]",
    "/descendant::t5/parent::node()",
    "/descendant::t0 | /descendant::t5",
    "/descendant-or-self::node()",
};

struct Config {
  StorageBackend backend;
  PushdownMode pushdown;
};

std::vector<Config> Configs() {
  std::vector<Config> configs;
  for (StorageBackend backend :
       {StorageBackend::kMemory, StorageBackend::kPaged,
        StorageBackend::kCompressed}) {
    for (PushdownMode pushdown :
         {PushdownMode::kAuto, PushdownMode::kAlways, PushdownMode::kNever}) {
      configs.push_back({backend, pushdown});
    }
  }
  return configs;
}

/// Runs every query of kQueries under `config`; aborts the test on a
/// query failure.
std::vector<NodeSequence> RunAll(const Database& db, const Config& config) {
  SessionOptions options;
  options.backend = config.backend;
  options.hints.pushdown = config.pushdown;
  auto session = db.CreateSession(options);
  EXPECT_TRUE(session.ok()) << session.status();
  std::vector<NodeSequence> results;
  for (const char* q : kQueries) {
    auto r = session.value().Run(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status();
    results.push_back(r.ok() ? std::move(r.value().nodes) : NodeSequence{});
  }
  return results;
}

/// The reference: a database rebuilt from scratch over the materialized
/// merged table. Its pre ranks are the overlay's logical ranks by
/// construction, so result sequences must match element-wise.
std::unique_ptr<Database> RebuildReference(const Database& db) {
  auto snap = db.CurrentSnapshot();
  std::unique_ptr<DocTable> merged;
  if (snap->overlay() != nullptr) {
    auto folded = delta::MaterializeMerged(*snap->images().doc,
                                           *snap->overlay(), BuildOptions{});
    EXPECT_TRUE(folded.ok()) << folded.status();
    if (!folded.ok()) return nullptr;
    merged = std::move(folded).value();
  } else {
    // Pristine: re-encode the base document's XML-equivalent by folding
    // an empty overlay is pointless; reuse serialization-free copy via
    // an empty edit is not available, so tests only call this on edited
    // databases.
    ADD_FAILURE() << "RebuildReference called on a pristine database";
    return nullptr;
  }
  auto rebuilt = Database::FromTable(std::move(merged));
  EXPECT_TRUE(rebuilt.ok()) << rebuilt.status();
  return rebuilt.ok() ? std::move(rebuilt).value() : nullptr;
}

/// Node-identity across every backend/pushdown config: the edited
/// database answers exactly like the rebuilt one.
void ExpectEquivalent(const Database& edited, const Database& reference,
                      const std::string& label) {
  for (const Config& config : Configs()) {
    std::vector<NodeSequence> got = RunAll(edited, config);
    std::vector<NodeSequence> want = RunAll(reference, config);
    ASSERT_EQ(got.size(), want.size());
    for (size_t q = 0; q < got.size(); ++q) {
      EXPECT_EQ(got[q], want[q])
          << label << ": query '" << kQueries[q] << "' diverged on backend "
          << static_cast<int>(config.backend) << " pushdown "
          << static_cast<int>(config.pushdown);
    }
  }
}

/// Column-equivalence: the merging accessor must read, rank for rank,
/// the columns the rebuilt table stores. Tags compare by NAME (the two
/// dictionaries may assign different ids).
void ExpectColumnsEquivalent(const Database& edited, const Database& ref) {
  auto snap = edited.CurrentSnapshot();
  ASSERT_NE(snap->overlay(), nullptr);
  const delta::Overlay& overlay = *snap->overlay();
  const DocTable& base = *snap->images().doc;
  const DocTable& want = ref.doc();
  delta::DeltaDocAccessor<MemoryDocAccessor> acc(overlay, base);
  ASSERT_EQ(acc.size(), want.size());
  for (NodeId v = 0; v < want.size(); ++v) {
    EXPECT_EQ(acc.Post(v), want.post(v)) << "post(" << v << ")";
    EXPECT_EQ(acc.Kind(v), static_cast<uint8_t>(want.kind(v)))
        << "kind(" << v << ")";
    EXPECT_EQ(acc.Level(v), want.level(v)) << "level(" << v << ")";
    EXPECT_EQ(acc.Parent(v), want.parent(v)) << "parent(" << v << ")";
    const TagId got_tag = acc.Tag(v);
    const TagId want_tag = want.tag(v);
    ASSERT_EQ(got_tag == kNoTag, want_tag == kNoTag) << "tag(" << v << ")";
    if (got_tag != kNoTag) {
      EXPECT_EQ(overlay.TagName(base.tags(), got_tag),
                want.tags().Name(want_tag))
          << "tag name(" << v << ")";
    }
  }
}

std::unique_ptr<Database> OpenXml(const std::string& xml) {
  auto db = Database::FromXml(xml);
  EXPECT_TRUE(db.ok()) << db.status();
  return db.ok() ? std::move(db).value() : nullptr;
}

// ---------------------------------------------------------------------------
// Hand-crafted edits against the paper's Fig. 1/2 document.
// ---------------------------------------------------------------------------

TEST(DeltaStore, InsertLastChildMatchesRebuild) {
  auto db = OpenXml(sj::testing::kPaperExampleXml);
  ASSERT_NE(db, nullptr);
  // e is pre rank 4; append <k><l/></k> as its last child.
  EditTxn txn = db->BeginEdit();
  ASSERT_TRUE(txn.InsertLastChild(4, "<k><l/></k>").ok());
  ASSERT_TRUE(txn.Commit().ok());
  auto expected =
      OpenXml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i><k><l/></k>"
              "</e></a>");
  ASSERT_NE(expected, nullptr);
  ExpectEquivalent(*db, *expected, "insert k under e");
  ExpectColumnsEquivalent(*db, *expected);
  EXPECT_EQ(db->CurrentSnapshot()->epoch(), 1u);
  EXPECT_EQ(db->CurrentSnapshot()->delta_nodes(), 2u);
}

TEST(DeltaStore, DeleteSubtreeMatchesRebuild) {
  auto db = OpenXml(sj::testing::kPaperExampleXml);
  ASSERT_NE(db, nullptr);
  // Delete f's subtree (pre 5: f, g, h).
  EditTxn txn = db->BeginEdit();
  ASSERT_TRUE(txn.DeleteSubtree(5).ok());
  ASSERT_TRUE(txn.Commit().ok());
  auto expected = OpenXml("<a><b><c/></b><d/><e><i><j/></i></e></a>");
  ASSERT_NE(expected, nullptr);
  ExpectEquivalent(*db, *expected, "delete f");
  ExpectColumnsEquivalent(*db, *expected);
}

TEST(DeltaStore, ReplaceSubtreeMatchesRebuild) {
  auto db = OpenXml(sj::testing::kPaperExampleXml);
  ASSERT_NE(db, nullptr);
  // Replace b's subtree (pre 1) in place.
  EditTxn txn = db->BeginEdit();
  ASSERT_TRUE(txn.ReplaceSubtree(1, "<z><w/><w/></z>").ok());
  ASSERT_TRUE(txn.Commit().ok());
  auto expected =
      OpenXml("<a><z><w/><w/></z><d/><e><f><g/><h/></f><i><j/></i></e></a>");
  ASSERT_NE(expected, nullptr);
  ExpectEquivalent(*db, *expected, "replace b with z");
  ExpectColumnsEquivalent(*db, *expected);
}

TEST(DeltaStore, EditsComposeWithinAndAcrossTransactions) {
  auto db = OpenXml(sj::testing::kPaperExampleXml);
  ASSERT_NE(db, nullptr);
  {
    // One transaction, three composing ops: each op addresses the
    // document as left by the previous one.
    EditTxn txn = db->BeginEdit();
    ASSERT_TRUE(txn.InsertLastChild(0, "<p><q/></p>").ok());
    ASSERT_TRUE(txn.DeleteSubtree(3).ok());  // d (unshifted by the append)
    ASSERT_TRUE(txn.ReplaceSubtree(8, "<j2/>").ok());  // j moved 9 -> 8
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    // A second epoch edits the first's inserted subtree.
    EditTxn txn = db->BeginEdit();
    ASSERT_TRUE(txn.InsertLastChild(10, "<r/>").ok());  // q, inside the delta
    ASSERT_TRUE(txn.Commit().ok());
  }
  auto expected = OpenXml(
      "<a><b><c/></b><e><f><g/><h/></f><i><j2/></i></e><p><q><r/></q></p>"
      "</a>");
  ASSERT_NE(expected, nullptr);
  ExpectEquivalent(*db, *expected, "composed edits");
  ExpectColumnsEquivalent(*db, *expected);
  EXPECT_EQ(db->CurrentSnapshot()->epoch(), 2u);
}

TEST(DeltaStore, CompactionPreservesResultsAndResetsDelta) {
  auto db = OpenXml(sj::testing::kPaperExampleXml);
  ASSERT_NE(db, nullptr);
  EditTxn txn = db->BeginEdit();
  ASSERT_TRUE(txn.InsertLastChild(4, "<k/>").ok());
  ASSERT_TRUE(txn.DeleteSubtree(1).ok());
  ASSERT_TRUE(txn.Commit().ok());
  auto reference = RebuildReference(*db);
  ASSERT_NE(reference, nullptr);
  ExpectEquivalent(*db, *reference, "pre-compaction");

  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(db->CurrentSnapshot()->epoch(), 2u);
  EXPECT_EQ(db->CurrentSnapshot()->overlay(), nullptr);
  EXPECT_EQ(db->CurrentSnapshot()->delta_nodes(), 0u);
  ExpectEquivalent(*db, *reference, "post-compaction");

  // Idempotent: a second Compact over a clean snapshot is a free no-op.
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(db->CurrentSnapshot()->epoch(), 2u);

  const DatabaseStats stats = db->TotalStats();
  EXPECT_EQ(stats.edits_committed, 1u);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.delta_nodes, 0u);
}

TEST(DeltaStore, EditValidation) {
  auto db = OpenXml(sj::testing::kPaperExampleXml);
  ASSERT_NE(db, nullptr);
  EditTxn txn = db->BeginEdit();
  EXPECT_FALSE(txn.DeleteSubtree(0).ok());            // root undeletable
  EXPECT_FALSE(txn.ReplaceSubtree(0, "<x/>").ok());   // root irreplaceable
  EXPECT_FALSE(txn.DeleteSubtree(10).ok());           // out of range
  EXPECT_FALSE(txn.InsertLastChild(10, "<x/>").ok()); // out of range
  EXPECT_FALSE(txn.InsertLastChild(4, "").ok());      // not a fragment
  EXPECT_FALSE(txn.InsertLastChild(4, "<x><y/>").ok());  // unbalanced
  EXPECT_EQ(txn.ops_applied(), 0u);
  // A no-op transaction commits without publishing an epoch.
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(db->CurrentSnapshot()->epoch(), 0u);
  EXPECT_EQ(db->TotalStats().edits_committed, 0u);
}

TEST(DeltaStore, OptimisticConflictLosesToFirstCommitter) {
  auto db = OpenXml(sj::testing::kPaperExampleXml);
  ASSERT_NE(db, nullptr);
  EditTxn first = db->BeginEdit();
  EditTxn second = db->BeginEdit();
  ASSERT_TRUE(first.InsertLastChild(0, "<x/>").ok());
  ASSERT_TRUE(second.InsertLastChild(0, "<y/>").ok());
  ASSERT_TRUE(first.Commit().ok());
  Status conflict = second.Commit();
  ASSERT_FALSE(conflict.ok());
  EXPECT_NE(conflict.message().find("snapshot conflict"), std::string::npos)
      << conflict;
  // The loser's edits never became visible.
  auto session = db->CreateSession();
  ASSERT_TRUE(session.ok());
  auto x = session.value().Run("/descendant::x");
  auto y = session.value().Run("/descendant::y");
  ASSERT_TRUE(x.ok() && y.ok());
  EXPECT_EQ(x.value().nodes.size(), 1u);
  EXPECT_EQ(y.value().nodes.size(), 0u);
}

TEST(DeltaStore, ExplainNamesSnapshotEpochAndOverlayJoins) {
  auto db = OpenXml(sj::testing::kPaperExampleXml);
  ASSERT_NE(db, nullptr);
  auto session = db->CreateSession();
  ASSERT_TRUE(session.ok());
  auto pristine = session.value().Run("/descendant::e");
  ASSERT_TRUE(pristine.ok());
  EXPECT_EQ(pristine.value().snapshot_epoch, 0u);
  EXPECT_EQ(pristine.value().Explain().find("snapshot:"), std::string::npos);

  EditTxn txn = db->BeginEdit();
  ASSERT_TRUE(txn.InsertLastChild(4, "<k/>").ok());
  ASSERT_TRUE(txn.Commit().ok());
  auto edited = session.value().Run("/descendant::e");
  ASSERT_TRUE(edited.ok());
  EXPECT_EQ(edited.value().snapshot_epoch, 1u);
  EXPECT_EQ(edited.value().snapshot_delta_nodes, 1u);
  const std::string explain = edited.value().Explain();
  EXPECT_NE(explain.find("snapshot: epoch 1 (delta: 1 nodes)"),
            std::string::npos)
      << explain;
  EXPECT_NE(explain.find("overlay staircase join"), std::string::npos)
      << explain;

  // Overlay joins run serially on every backend: even a session asking
  // for intra-query parallelism must not report a parallel plan.
  SessionOptions wide;
  wide.num_threads = 4;
  auto parallel_session = db->CreateSession(wide);
  ASSERT_TRUE(parallel_session.ok());
  auto wide_run = parallel_session.value().Run("/descendant::e");
  ASSERT_TRUE(wide_run.ok());
  EXPECT_EQ(wide_run.value().Explain().find("parallel"), std::string::npos);
}

TEST(DeltaStore, StalePlansRetireAcrossCommits) {
  auto db = OpenXml(sj::testing::kPaperExampleXml);
  ASSERT_NE(db, nullptr);
  auto session = db->CreateSession();
  ASSERT_TRUE(session.ok());
  Session& s = session.value();

  auto first = s.Run("/descendant::k");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().plan_cached);
  EXPECT_EQ(first.value().nodes.size(), 0u);
  auto second = s.Run("/descendant::k");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().plan_cached);

  // The commit interns 'k' into the merged dictionary; the cached plan
  // resolved it to "unknown tag -> empty" and MUST not be served again.
  EditTxn txn = db->BeginEdit();
  ASSERT_TRUE(txn.InsertLastChild(4, "<k/>").ok());
  ASSERT_TRUE(txn.Commit().ok());
  auto after = s.Run("/descendant::k");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().plan_cached)
      << "a plan compiled at epoch 0 was served at epoch 1";
  EXPECT_EQ(after.value().nodes.size(), 1u);
  // The new epoch's plan caches normally from here on.
  auto again = s.Run("/descendant::k");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().plan_cached);
  EXPECT_EQ(again.value().nodes.size(), 1u);
}

TEST(DeltaStore, SnapshotPinsKeepOldEpochsAlive) {
  auto db = OpenXml(sj::testing::kPaperExampleXml);
  ASSERT_NE(db, nullptr);
  auto old_snap = db->CurrentSnapshot();
  EditTxn txn = db->BeginEdit();
  ASSERT_TRUE(txn.DeleteSubtree(5).ok());
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_TRUE(db->Compact().ok());
  // The pinned epoch-0 snapshot still answers from the ORIGINAL images
  // even though the database has compacted past it.
  EXPECT_EQ(old_snap->epoch(), 0u);
  EXPECT_EQ(old_snap->images().doc->size(), 10u);
  EXPECT_EQ(db->CurrentSnapshot()->images().doc->size(), 7u);

  const DatabaseStats stats = db->TotalStats();
  EXPECT_EQ(stats.edits_committed, 1u);
  EXPECT_EQ(stats.compactions, 1u);
}

TEST(DeltaStore, SessionsFollowTheSnapshotChain) {
  auto db = OpenXml(sj::testing::kPaperExampleXml);
  ASSERT_NE(db, nullptr);
  const uint64_t pins_before = db->TotalStats().snapshots_pinned;
  auto session = db->CreateSession();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(db->TotalStats().snapshots_pinned, pins_before + 1);
  ASSERT_TRUE(session.value().Run("/descendant::b").ok());
  // Same epoch: no rebind.
  ASSERT_TRUE(session.value().Run("/descendant::b").ok());
  EXPECT_EQ(db->TotalStats().snapshots_pinned, pins_before + 1);
  EditTxn txn = db->BeginEdit();
  ASSERT_TRUE(txn.InsertLastChild(0, "<b/>").ok());
  ASSERT_TRUE(txn.Commit().ok());
  auto rebound = session.value().Run("/descendant::b");
  ASSERT_TRUE(rebound.ok());
  EXPECT_EQ(rebound.value().nodes.size(), 2u);
  EXPECT_EQ(db->TotalStats().snapshots_pinned, pins_before + 2);
}

// ---------------------------------------------------------------------------
// Randomized edit scripts: overlay vs rebuilt, every backend, pre and
// post compaction.
// ---------------------------------------------------------------------------

/// A small random fragment: 1..4 elements (old and fresh tag names),
/// occasional attribute and text content.
std::string RandomFragmentXml(Rng& rng) {
  const uint64_t shape = rng.Below(5);
  std::string tag = "t" + std::to_string(rng.Below(8));  // t6/t7: fresh names
  std::string xml = "<" + tag;
  if (rng.Below(3) == 0) {
    xml += " a=\"" + std::to_string(rng.Below(100)) + "\"";
  }
  xml += ">";
  switch (shape) {
    case 0:
      break;
    case 1:
      xml += "text" + std::to_string(rng.Below(10));
      break;
    case 2:
      xml += "<t" + std::to_string(rng.Below(8)) + "/>";
      break;
    case 3:
      xml += "<t" + std::to_string(rng.Below(8)) + "><t" +
             std::to_string(rng.Below(8)) + "/></t" +
             std::to_string(rng.Below(8)) + ">";
      // Deliberately mismatched closers would be a parse error; repair:
      return "<" + tag + "><u1><u2/></u1></" + tag + ">";
    default:
      xml += "<u3/><u4/>";
      break;
  }
  xml += "</" + tag + ">";
  return xml;
}

TEST(DeltaStoreRandomized, EditScriptsMatchRebuildAcrossBackends) {
  for (uint64_t seed : {7u, 41u}) {
    sj::testing::RandomDocOptions doc_options;
    doc_options.target_nodes = 160;
    auto db = OpenXml(sj::testing::RandomDocumentXml(seed, doc_options));
    ASSERT_NE(db, nullptr);
    Rng rng(seed * 1000003);
    for (int commit = 0; commit < 5; ++commit) {
      auto merged = db->CurrentSnapshot()->MergedDoc();
      ASSERT_TRUE(merged.ok()) << merged.status();
      const DocTable& doc = *merged.value();
      // Element inventory of the working document (logical ranks).
      std::vector<NodeId> elements;
      for (NodeId v = 0; v < doc.size(); ++v) {
        if (doc.kind(v) == NodeKind::kElement) elements.push_back(v);
      }
      ASSERT_GT(elements.size(), 1u);

      EditTxn txn = db->BeginEdit();
      const uint64_t ops = 1 + rng.Below(4);
      for (uint64_t op = 0; op < ops; ++op) {
        const uint64_t kind = rng.Below(10);
        if (kind < 5) {
          const NodeId parent = elements[rng.Below(elements.size())];
          // The parent may have been deleted by an earlier op of this
          // txn; skip such picks (the script is random, not clever).
          if (parent >= txn.logical_size()) continue;
          Status st = txn.InsertLastChild(parent, RandomFragmentXml(rng));
          if (!st.ok()) continue;  // e.g. non-element after earlier edits
        } else if (kind < 8 && txn.logical_size() > 20) {
          const NodeId v =
              1 + static_cast<NodeId>(rng.Below(txn.logical_size() - 1));
          (void)txn.DeleteSubtree(v);
        } else {
          const NodeId v = elements[rng.Below(elements.size())];
          if (v == 0 || v >= txn.logical_size()) continue;
          (void)txn.ReplaceSubtree(v, RandomFragmentXml(rng));
        }
      }
      ASSERT_TRUE(txn.Commit().ok());
      if (db->CurrentSnapshot()->overlay() == nullptr) continue;  // no-op txn
      auto reference = RebuildReference(*db);
      ASSERT_NE(reference, nullptr);
      const std::string label =
          "seed " + std::to_string(seed) + " commit " + std::to_string(commit);
      ExpectEquivalent(*db, *reference, label);
      ExpectColumnsEquivalent(*db, *reference);
      if (::testing::Test::HasFailure()) return;  // don't cascade
    }
    // Fold everything and re-check against a fresh rebuild of the final
    // state: compaction must not change a single node id.
    auto reference = RebuildReference(*db);
    ASSERT_NE(reference, nullptr);
    ASSERT_TRUE(db->Compact().ok());
    ExpectEquivalent(*db, *reference,
                     "seed " + std::to_string(seed) + " post-compaction");
  }
}

// ---------------------------------------------------------------------------
// Snapshot isolation under concurrent writers (TSan-relevant).
// ---------------------------------------------------------------------------

TEST(DeltaStoreConcurrency, ReadersNeverObserveHalfACommit) {
  auto db = OpenXml("<r><m/><m/></r>");
  ASSERT_NE(db, nullptr);
  constexpr int kWriters = 2;
  constexpr int kCommitsPerWriter = 12;
  constexpr int kReaders = 8;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  // Writers append <m/> in PAIRS within one transaction; every published
  // snapshot therefore holds an even count of m elements. Optimistic
  // conflicts are expected (two writers race) and retried.
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db] {
      for (int k = 0; k < kCommitsPerWriter; ++k) {
        while (true) {
          EditTxn txn = db->BeginEdit();
          if (!txn.InsertLastChild(0, "<m/>").ok() ||
              !txn.InsertLastChild(0, "<m/>").ok()) {
            continue;
          }
          if (txn.Commit().ok()) break;
        }
      }
    });
  }
  // A compactor folds the delta while writers keep committing and
  // readers keep draining pinned snapshots.
  threads.emplace_back([&db, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(db->Compact().ok());
      std::this_thread::yield();
    }
  });
  for (int r = 0; r < kReaders; ++r) {
    const StorageBackend backend =
        r % 2 == 0 ? StorageBackend::kMemory : StorageBackend::kPaged;
    threads.emplace_back([&db, &stop, &violations, backend] {
      SessionOptions options;
      options.backend = backend;
      auto session = db->CreateSession(options);
      if (!session.ok()) {
        ++violations;
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = session.value().Run("/descendant::m");
        if (!result.ok() || result.value().nodes.size() % 2 != 0 ||
            result.value().nodes.size() < 2) {
          ++violations;
          return;
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(violations.load(), 0);
  auto session = db->CreateSession();
  ASSERT_TRUE(session.ok());
  auto final_count = session.value().Run("/descendant::m");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count.value().nodes.size(),
            2u + 2u * kWriters * kCommitsPerWriter);
  const DatabaseStats stats = db->TotalStats();
  EXPECT_EQ(stats.edits_committed,
            static_cast<uint64_t>(kWriters * kCommitsPerWriter));
}

}  // namespace
}  // namespace sj
