// Tests for the XPath evaluator: hand-checked queries on a small document,
// staircase engine == naive engine on random documents x random queries,
// pushdown equivalence, predicates, and the EXPLAIN trace.

#include <gtest/gtest.h>

#include <string>

#include "core/tag_view.h"
#include "encoding/loader.h"
#include "test_util.h"
#include "util/rng.h"
#include "xpath/evaluator.h"

namespace sj::xpath {
namespace {

// <site>
//   <people><person id="p0"><name>n</name><profile><education>e
//     </education></profile></person>
//            <person id="p1"><name>m</name></person></people>
//   <auctions><auction><bidder><increase>i</increase></bidder>
//             <bidder><increase>j</increase></bidder></auction></auctions>
// </site>
constexpr const char* kSmallDoc =
    "<site><people><person id=\"p0\"><name>n</name><profile><education>e"
    "</education></profile></person><person id=\"p1\"><name>m</name>"
    "</person></people><auctions><auction><bidder><increase>i</increase>"
    "</bidder><bidder><increase>j</increase></bidder></auction></auctions>"
    "</site>";

class XPathEvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = LoadDocument(kSmallDoc).value();
    index_ = std::make_unique<TagIndex>(*doc_);
  }

  NodeSequence Eval(const std::string& q, EvalOptions opts = {}) {
    if (opts.tag_index == nullptr) opts.tag_index = index_.get();
    Evaluator ev(*doc_, opts);
    auto r = ev.EvaluateString(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status();
    return r.ok() ? r.value() : NodeSequence{};
  }

  /// Names (tags / "#text" etc.) of the result nodes, for readable asserts.
  std::vector<std::string> Names(const NodeSequence& nodes) {
    std::vector<std::string> out;
    for (NodeId v : nodes) {
      switch (doc_->kind(v)) {
        case NodeKind::kElement:
          out.push_back(doc_->tags().Name(doc_->tag(v)));
          break;
        case NodeKind::kAttribute:
          out.push_back("@" + doc_->tags().Name(doc_->tag(v)));
          break;
        case NodeKind::kText:
          out.push_back("#text:" + std::string(doc_->value(v)));
          break;
        default:
          out.push_back("#other");
      }
    }
    return out;
  }

  std::unique_ptr<DocTable> doc_;
  std::unique_ptr<TagIndex> index_;
};

TEST_F(XPathEvaluatorTest, DescendantNameTest) {
  EXPECT_EQ(Names(Eval("/descendant::education")),
            (std::vector<std::string>{"education"}));
  EXPECT_EQ(Names(Eval("/descendant::person")),
            (std::vector<std::string>{"person", "person"}));
}

TEST_F(XPathEvaluatorTest, PaperQ2Shape) {
  NodeSequence bidders = Eval("/descendant::increase/ancestor::bidder");
  EXPECT_EQ(Names(bidders), (std::vector<std::string>{"bidder", "bidder"}));
}

TEST_F(XPathEvaluatorTest, Q2RewriteEquivalence) {
  EXPECT_EQ(Eval("/descendant::increase/ancestor::bidder"),
            Eval("/descendant::bidder[descendant::increase]"));
}

TEST_F(XPathEvaluatorTest, ChildStepsFollowDocumentStructure) {
  EXPECT_EQ(Names(Eval("/child::people/child::person/child::name")),
            (std::vector<std::string>{"name", "name"}));
  // Default axis is child.
  EXPECT_EQ(Eval("/people/person/name"),
            Eval("/child::people/child::person/child::name"));
}

TEST_F(XPathEvaluatorTest, AttributesOnlyViaAttributeAxis) {
  EXPECT_EQ(Names(Eval("/descendant::person/attribute::id")),
            (std::vector<std::string>{"@id", "@id"}));
  // descendant never returns attributes.
  for (NodeId v : Eval("/descendant::node()")) {
    EXPECT_NE(doc_->kind(v), NodeKind::kAttribute);
  }
}

TEST_F(XPathEvaluatorTest, TextNodes) {
  auto texts = Names(Eval("/descendant::education/child::text()"));
  ASSERT_EQ(texts.size(), 1u);
  EXPECT_EQ(texts[0], "#text:e");
}

TEST_F(XPathEvaluatorTest, ParentAndSelf) {
  EXPECT_EQ(Names(Eval("/descendant::profile/parent::*")),
            (std::vector<std::string>{"person"}));
  EXPECT_EQ(Names(Eval("/self::site")), (std::vector<std::string>{"site"}));
  EXPECT_TRUE(Eval("/self::nosuch").empty());
}

TEST_F(XPathEvaluatorTest, FollowingPreceding) {
  // people precedes auctions.
  NodeSequence foll = Eval("/child::people/following::auction");
  EXPECT_EQ(Names(foll), (std::vector<std::string>{"auction"}));
  NodeSequence prec = Eval("/child::auctions/preceding::name");
  EXPECT_EQ(prec.size(), 2u);
}

TEST_F(XPathEvaluatorTest, SiblingAxes) {
  EXPECT_EQ(Names(Eval("/child::people/following-sibling::*")),
            (std::vector<std::string>{"auctions"}));
  EXPECT_EQ(Names(Eval("/child::auctions/preceding-sibling::*")),
            (std::vector<std::string>{"people"}));
}

TEST_F(XPathEvaluatorTest, PredicateFiltersContext) {
  EXPECT_EQ(Names(Eval("/descendant::person[child::profile]")).size(), 1u);
  EXPECT_EQ(Names(Eval("/descendant::person[child::name]")).size(), 2u);
  EXPECT_TRUE(Eval("/descendant::person[child::nosuch]").empty());
}

TEST_F(XPathEvaluatorTest, UnknownTagYieldsEmpty) {
  EXPECT_TRUE(Eval("/descendant::doesnotexist").empty());
  EXPECT_TRUE(Eval("/descendant::doesnotexist/ancestor::person").empty());
}

TEST_F(XPathEvaluatorTest, DoubleSlash) {
  EXPECT_EQ(Eval("//education"), Eval("/descendant::education"));
  EXPECT_EQ(Eval("//person//increase").size(), 0u);
  EXPECT_EQ(Eval("//auction//increase").size(), 2u);
}

TEST_F(XPathEvaluatorTest, PushdownModesAgree) {
  for (const char* q :
       {"/descendant::education", "/descendant::increase/ancestor::bidder",
        "/descendant::person/descendant::name"}) {
    EvalOptions never, always;
    never.pushdown = PushdownMode::kNever;
    always.pushdown = PushdownMode::kAlways;
    EXPECT_EQ(Eval(q, never), Eval(q, always)) << q;
  }
}

TEST_F(XPathEvaluatorTest, TraceRecordsStrategy) {
  EvalOptions opts;
  opts.tag_index = index_.get();
  opts.pushdown = PushdownMode::kAlways;
  Evaluator ev(*doc_, opts);
  ASSERT_TRUE(ev.EvaluateString("/descendant::education").ok());
  ASSERT_EQ(ev.last_trace().size(), 1u);
  EXPECT_NE(ev.last_trace()[0].description.find("pushdown"),
            std::string::npos);
  EXPECT_NE(ev.ExplainLastQuery().find("step 1"), std::string::npos);
  opts.pushdown = PushdownMode::kNever;
  Evaluator ev2(*doc_, opts);
  ASSERT_TRUE(ev2.EvaluateString("/descendant::education").ok());
  EXPECT_EQ(ev2.last_trace()[0].description.find("pushdown"),
            std::string::npos);
}

TEST_F(XPathEvaluatorTest, RelativePathUsesGivenContext) {
  EvalOptions opts;
  opts.tag_index = index_.get();
  Evaluator ev(*doc_, opts);
  LocationPath rel = ParseXPath("descendant::increase").value();
  // From the first bidder only one increase is reachable.
  NodeSequence bidders =
      ev.EvaluateString("/descendant::bidder").value();
  ASSERT_EQ(bidders.size(), 2u);
  EXPECT_EQ(ev.Evaluate(rel, {bidders[0]}).value().size(), 1u);
  EXPECT_EQ(ev.Evaluate(rel, bidders).value().size(), 2u);
}

TEST_F(XPathEvaluatorTest, EngineModesAgreeOnSmallDoc) {
  for (const char* q :
       {"/descendant::name", "/descendant::increase/ancestor::bidder",
        "/descendant::person/following::increase",
        "/child::people/descendant-or-self::*"}) {
    EvalOptions naive;
    naive.engine = EngineMode::kNaive;
    EXPECT_EQ(Eval(q), Eval(q, naive)) << q;
  }
}

// --- Random cross-engine properties -----------------------------------------

/// Generates a random location path over the test tag alphabet.
LocationPath RandomQuery(Rng& rng) {
  static const char* kTags[] = {"t0", "t1", "t2", "t3", "t4", "t5"};
  static const Axis kAxes[] = {
      Axis::kDescendant, Axis::kDescendantOrSelf, Axis::kAncestor,
      Axis::kAncestorOrSelf, Axis::kFollowing,    Axis::kPreceding,
      Axis::kChild,      Axis::kParent,           Axis::kSelf,
      Axis::kFollowingSibling, Axis::kPrecedingSibling};
  LocationPath path;
  path.absolute = true;
  size_t steps = 1 + rng.Below(3);
  for (size_t i = 0; i < steps; ++i) {
    Step step;
    step.axis = kAxes[rng.Below(std::size(kAxes))];
    switch (rng.Below(4)) {
      case 0:
        step.test.kind = NodeTestKind::kAnyNode;
        break;
      case 1:
        step.test.kind = NodeTestKind::kAnyName;
        break;
      default:
        step.test.kind = NodeTestKind::kName;
        step.test.name = kTags[rng.Below(std::size(kTags))];
        break;
    }
    if (rng.Percent(20)) {
      auto pred_path = std::make_unique<LocationPath>();
      Step ps;
      ps.axis = rng.Percent(50) ? Axis::kChild : Axis::kDescendant;
      ps.test.kind = NodeTestKind::kName;
      ps.test.name = kTags[rng.Below(std::size(kTags))];
      pred_path->steps.push_back(ps);
      Predicate pred;
      pred.kind = Predicate::Kind::kExists;
      pred.path = std::move(pred_path);
      step.predicates.push_back(std::move(pred));
    }
    path.steps.push_back(step);
  }
  return path;
}

class XPathEnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XPathEnginePropertyTest, StaircaseEqualsNaiveEngine) {
  auto doc = sj::testing::RandomDocument(GetParam());
  TagIndex index(*doc);
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 25; ++trial) {
    LocationPath q = RandomQuery(rng);
    EvalOptions fast;
    fast.tag_index = &index;
    fast.pushdown =
        trial % 2 == 0 ? PushdownMode::kAlways : PushdownMode::kNever;
    EvalOptions naive;
    naive.engine = EngineMode::kNaive;
    Evaluator ev_fast(*doc, fast);
    Evaluator ev_naive(*doc, naive);
    auto a = ev_fast.Evaluate(q);
    auto b = ev_naive.Evaluate(q);
    ASSERT_TRUE(a.ok()) << ToString(q) << a.status();
    ASSERT_TRUE(b.ok()) << ToString(q) << b.status();
    EXPECT_EQ(a.value(), b.value()) << ToString(q) << " seed " << GetParam();
    EXPECT_TRUE(IsDocumentOrder(a.value()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XPathEnginePropertyTest,
                         ::testing::Values(301, 302, 303, 304, 305));

TEST(XPathEvaluatorErrorTest, BadInputs) {
  auto doc = LoadDocument(kSmallDoc).value();
  Evaluator ev(*doc);
  EXPECT_FALSE(ev.EvaluateString("///").ok());
  LocationPath rel = ParseXPath("child::a").value();
  EXPECT_FALSE(ev.Evaluate(rel, {5, 2}).ok());       // unsorted context
  EXPECT_FALSE(ev.Evaluate(rel, {9999}).ok());       // out of range
}

}  // namespace
}  // namespace sj::xpath
