// Tests for XPath evaluation through the public Database/Session facade:
// hand-checked queries on a small document, staircase engine == naive
// engine on random documents x random queries, pushdown equivalence,
// predicates, and the EXPLAIN trace carried inside QueryResult.

#include <gtest/gtest.h>

#include <string>

#include "api/database.h"
#include "core/tag_view.h"
#include "encoding/loader.h"
#include "test_util.h"
#include "util/rng.h"

namespace sj {
namespace {

// <site>
//   <people><person id="p0"><name>n</name><profile><education>e
//     </education></profile></person>
//            <person id="p1"><name>m</name></person></people>
//   <auctions><auction><bidder><increase>i</increase></bidder>
//             <bidder><increase>j</increase></bidder></auction></auctions>
// </site>
constexpr const char* kSmallDoc =
    "<site><people><person id=\"p0\"><name>n</name><profile><education>e"
    "</education></profile></person><person id=\"p1\"><name>m</name>"
    "</person></people><auctions><auction><bidder><increase>i</increase>"
    "</bidder><bidder><increase>j</increase></bidder></auction></auctions>"
    "</site>";

class XPathEvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions open;
    open.build_paged = false;  // backend equivalence lives in other suites
    db_ = Database::FromXml(kSmallDoc, open).value();
    doc_ = &db_->doc();
  }

  QueryResult RunQuery(const std::string& q, SessionOptions opts = {}) {
    auto session = db_->CreateSession(opts);
    EXPECT_TRUE(session.ok()) << session.status();
    auto r = session.value().Run(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  NodeSequence Eval(const std::string& q, SessionOptions opts = {}) {
    return RunQuery(q, opts).nodes;
  }

  /// Names (tags / "#text" etc.) of the result nodes, for readable asserts.
  std::vector<std::string> Names(const NodeSequence& nodes) {
    std::vector<std::string> out;
    for (NodeId v : nodes) {
      switch (doc_->kind(v)) {
        case NodeKind::kElement:
          out.push_back(doc_->tags().Name(doc_->tag(v)));
          break;
        case NodeKind::kAttribute:
          out.push_back("@" + doc_->tags().Name(doc_->tag(v)));
          break;
        case NodeKind::kText:
          out.push_back("#text:" + std::string(doc_->value(v)));
          break;
        default:
          out.push_back("#other");
      }
    }
    return out;
  }

  std::unique_ptr<Database> db_;
  const DocTable* doc_ = nullptr;
};

TEST_F(XPathEvaluatorTest, DescendantNameTest) {
  EXPECT_EQ(Names(Eval("/descendant::education")),
            (std::vector<std::string>{"education"}));
  EXPECT_EQ(Names(Eval("/descendant::person")),
            (std::vector<std::string>{"person", "person"}));
}

TEST_F(XPathEvaluatorTest, PaperQ2Shape) {
  NodeSequence bidders = Eval("/descendant::increase/ancestor::bidder");
  EXPECT_EQ(Names(bidders), (std::vector<std::string>{"bidder", "bidder"}));
}

TEST_F(XPathEvaluatorTest, Q2RewriteEquivalence) {
  EXPECT_EQ(Eval("/descendant::increase/ancestor::bidder"),
            Eval("/descendant::bidder[descendant::increase]"));
}

TEST_F(XPathEvaluatorTest, ChildStepsFollowDocumentStructure) {
  EXPECT_EQ(Names(Eval("/child::people/child::person/child::name")),
            (std::vector<std::string>{"name", "name"}));
  // Default axis is child.
  EXPECT_EQ(Eval("/people/person/name"),
            Eval("/child::people/child::person/child::name"));
}

TEST_F(XPathEvaluatorTest, AttributesOnlyViaAttributeAxis) {
  EXPECT_EQ(Names(Eval("/descendant::person/attribute::id")),
            (std::vector<std::string>{"@id", "@id"}));
  // descendant never returns attributes.
  for (NodeId v : Eval("/descendant::node()")) {
    EXPECT_NE(doc_->kind(v), NodeKind::kAttribute);
  }
}

TEST_F(XPathEvaluatorTest, TextNodes) {
  auto texts = Names(Eval("/descendant::education/child::text()"));
  ASSERT_EQ(texts.size(), 1u);
  EXPECT_EQ(texts[0], "#text:e");
}

TEST_F(XPathEvaluatorTest, ParentAndSelf) {
  EXPECT_EQ(Names(Eval("/descendant::profile/parent::*")),
            (std::vector<std::string>{"person"}));
  EXPECT_EQ(Names(Eval("/self::site")), (std::vector<std::string>{"site"}));
  EXPECT_TRUE(Eval("/self::nosuch").empty());
}

TEST_F(XPathEvaluatorTest, FollowingPreceding) {
  // people precedes auctions.
  NodeSequence foll = Eval("/child::people/following::auction");
  EXPECT_EQ(Names(foll), (std::vector<std::string>{"auction"}));
  NodeSequence prec = Eval("/child::auctions/preceding::name");
  EXPECT_EQ(prec.size(), 2u);
}

TEST_F(XPathEvaluatorTest, SiblingAxes) {
  EXPECT_EQ(Names(Eval("/child::people/following-sibling::*")),
            (std::vector<std::string>{"auctions"}));
  EXPECT_EQ(Names(Eval("/child::auctions/preceding-sibling::*")),
            (std::vector<std::string>{"people"}));
}

TEST_F(XPathEvaluatorTest, PredicateFiltersContext) {
  EXPECT_EQ(Names(Eval("/descendant::person[child::profile]")).size(), 1u);
  EXPECT_EQ(Names(Eval("/descendant::person[child::name]")).size(), 2u);
  EXPECT_TRUE(Eval("/descendant::person[child::nosuch]").empty());
}

TEST_F(XPathEvaluatorTest, UnknownTagYieldsEmpty) {
  EXPECT_TRUE(Eval("/descendant::doesnotexist").empty());
  EXPECT_TRUE(Eval("/descendant::doesnotexist/ancestor::person").empty());
}

TEST_F(XPathEvaluatorTest, DoubleSlash) {
  EXPECT_EQ(Eval("//education"), Eval("/descendant::education"));
  EXPECT_EQ(Eval("//person//increase").size(), 0u);
  EXPECT_EQ(Eval("//auction//increase").size(), 2u);
}

TEST_F(XPathEvaluatorTest, UnionMergesBranches) {
  EXPECT_EQ(Eval("/descendant::name | /descendant::increase").size(), 4u);
  // Branch traces are concatenated, not replaced.
  QueryResult r = RunQuery("/descendant::name | /descendant::increase");
  EXPECT_EQ(r.trace.size(), 2u);
}

TEST_F(XPathEvaluatorTest, PushdownModesAgree) {
  for (const char* q :
       {"/descendant::education", "/descendant::increase/ancestor::bidder",
        "/descendant::person/descendant::name"}) {
    SessionOptions never, always;
    never.hints.pushdown = PushdownMode::kNever;
    always.hints.pushdown = PushdownMode::kAlways;
    EXPECT_EQ(Eval(q, never), Eval(q, always)) << q;
  }
}

TEST_F(XPathEvaluatorTest, TraceRecordsStrategy) {
  SessionOptions opts;
  opts.hints.pushdown = PushdownMode::kAlways;
  QueryResult r = RunQuery("/descendant::education", opts);
  ASSERT_EQ(r.trace.size(), 1u);
  EXPECT_NE(r.trace[0].description.find("pushdown"), std::string::npos);
  EXPECT_NE(r.Explain().find("step 1"), std::string::npos);
  EXPECT_EQ(r.totals.result_size, r.nodes.size());
  opts.hints.pushdown = PushdownMode::kNever;
  QueryResult r2 = RunQuery("/descendant::education", opts);
  ASSERT_EQ(r2.trace.size(), 1u);
  EXPECT_EQ(r2.trace[0].description.find("pushdown"), std::string::npos);
}

TEST_F(XPathEvaluatorTest, RelativePathUsesGivenContext) {
  Session session = std::move(db_->CreateSession()).value();
  // From the first bidder only one increase is reachable.
  NodeSequence bidders =
      session.Run("/descendant::bidder").value().nodes;
  ASSERT_EQ(bidders.size(), 2u);
  EXPECT_EQ(session.Run("descendant::increase", {bidders[0]})
                .value().nodes.size(),
            1u);
  EXPECT_EQ(session.Run("descendant::increase", bidders).value().nodes.size(),
            2u);
}

TEST_F(XPathEvaluatorTest, EngineModesAgreeOnSmallDoc) {
  for (const char* q :
       {"/descendant::name", "/descendant::increase/ancestor::bidder",
        "/descendant::person/following::increase",
        "/child::people/descendant-or-self::*"}) {
    SessionOptions naive;
    naive.hints.engine = EngineMode::kNaive;
    EXPECT_EQ(Eval(q), Eval(q, naive)) << q;
  }
}

// --- Random cross-engine properties -----------------------------------------

/// Generates a random location path (as query text, so it runs through
/// the same parse + evaluate pipeline as a facade caller) over the test
/// tag alphabet.
std::string RandomQuery(Rng& rng) {
  static const char* kTags[] = {"t0", "t1", "t2", "t3", "t4", "t5"};
  static const char* kAxes[] = {
      "descendant", "descendant-or-self", "ancestor",
      "ancestor-or-self", "following", "preceding",
      "child", "parent", "self",
      "following-sibling", "preceding-sibling"};
  std::string q;
  size_t steps = 1 + rng.Below(3);
  for (size_t i = 0; i < steps; ++i) {
    q += "/";
    q += kAxes[rng.Below(std::size(kAxes))];
    q += "::";
    switch (rng.Below(4)) {
      case 0:
        q += "node()";
        break;
      case 1:
        q += "*";
        break;
      default:
        q += kTags[rng.Below(std::size(kTags))];
        break;
    }
    if (rng.Percent(20)) {
      q += std::string("[") + (rng.Percent(50) ? "child" : "descendant") +
           "::" + kTags[rng.Below(std::size(kTags))] + "]";
    }
  }
  return q;
}

class XPathEnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XPathEnginePropertyTest, StaircaseEqualsNaiveEngine) {
  DatabaseOptions open;
  open.build_paged = false;
  auto db = Database::FromTable(sj::testing::RandomDocument(GetParam()),
                                open).value();
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 25; ++trial) {
    std::string q = RandomQuery(rng);
    SessionOptions fast;
    fast.hints.pushdown =
        trial % 2 == 0 ? PushdownMode::kAlways : PushdownMode::kNever;
    SessionOptions naive;
    naive.hints.engine = EngineMode::kNaive;
    auto a = std::move(db->CreateSession(fast)).value().Run(q);
    auto b = std::move(db->CreateSession(naive)).value().Run(q);
    ASSERT_TRUE(a.ok()) << q << a.status();
    ASSERT_TRUE(b.ok()) << q << b.status();
    EXPECT_EQ(a.value().nodes, b.value().nodes)
        << q << " seed " << GetParam();
    EXPECT_TRUE(IsDocumentOrder(a.value().nodes));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XPathEnginePropertyTest,
                         ::testing::Values(301, 302, 303, 304, 305));

TEST(XPathEvaluatorErrorTest, BadInputs) {
  DatabaseOptions open;
  open.build_paged = false;
  auto db = Database::FromXml(kSmallDoc, open).value();
  Session session = std::move(db->CreateSession()).value();
  EXPECT_FALSE(session.Run("///").ok());
  EXPECT_FALSE(session.Run("child::a", {5, 2}).ok());   // unsorted context
  EXPECT_FALSE(session.Run("child::a", {9999}).ok());   // out of range
}

TEST(DatabaseOpenTest, PagedBackendRequiresPagedImage) {
  DatabaseOptions open;
  open.build_paged = false;
  auto db = Database::FromXml(kSmallDoc, open).value();
  SessionOptions paged;
  paged.backend = StorageBackend::kPaged;
  auto session = db->CreateSession(paged);
  EXPECT_FALSE(session.ok());
  EXPECT_NE(session.status().ToString().find("paged"), std::string::npos);
}

}  // namespace
}  // namespace sj
