// End-to-end integration tests: the full pipeline (generate -> serialize ->
// parse -> encode -> query) and the paper's workload queries evaluated by
// every engine/baseline combination on one XMark-style instance.

#include <gtest/gtest.h>

#include "api/database.h"
#include "baselines/mpmgjn.h"
#include "baselines/naive.h"
#include "baselines/sql_plan.h"
#include "core/parallel.h"
#include "core/staircase_join.h"
#include "core/tag_view.h"
#include "encoding/loader.h"
#include "xmlgen/xmark.h"

namespace sj {
namespace {

class XMarkPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    xmlgen::XMarkOptions opt;
    opt.size_mb = 1.1;
    db_ = Database::FromXmark(opt).value().release();
    doc_ = &db_->doc();
    index_ = db_->tag_index();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    doc_ = nullptr;
    index_ = nullptr;
  }

  /// Runs `query` in a fresh session; aborts the test on failure.
  static NodeSequence Run(const char* query, SessionOptions opts = {}) {
    auto session = db_->CreateSession(opts);
    EXPECT_TRUE(session.ok()) << session.status();
    auto r = session.value().Run(query);
    EXPECT_TRUE(r.ok()) << query << ": " << r.status();
    return r.ok() ? std::move(r).value().nodes : NodeSequence{};
  }

  static Database* db_;
  static const DocTable* doc_;
  static const TagIndex* index_;
};

Database* XMarkPipelineTest::db_ = nullptr;
const DocTable* XMarkPipelineTest::doc_ = nullptr;
const TagIndex* XMarkPipelineTest::index_ = nullptr;

TEST_F(XMarkPipelineTest, Q1AllStrategiesAgree) {
  SessionOptions pushdown;
  pushdown.hints.pushdown = PushdownMode::kAlways;
  SessionOptions no_pushdown;
  no_pushdown.hints.pushdown = PushdownMode::kNever;
  SessionOptions naive;
  naive.hints.engine = EngineMode::kNaive;
  SessionOptions parallel = no_pushdown;
  parallel.num_threads = 4;
  SessionOptions paged;
  paged.backend = StorageBackend::kPaged;

  NodeSequence expected = Run(xmlgen::kQ1, no_pushdown);
  EXPECT_GT(expected.size(), 0u);
  for (const SessionOptions& opts : {pushdown, naive, parallel, paged}) {
    EXPECT_EQ(Run(xmlgen::kQ1, opts), expected);
  }
}

TEST_F(XMarkPipelineTest, Q2AllStrategiesAgreeIncludingRewrite) {
  NodeSequence q2 = Run(xmlgen::kQ2);
  EXPECT_GT(q2.size(), 0u);
  EXPECT_EQ(Run(xmlgen::kQ2Rewrite), q2);
  SessionOptions naive;
  naive.hints.engine = EngineMode::kNaive;
  EXPECT_EQ(Run(xmlgen::kQ2, naive), q2);
  SessionOptions paged;
  paged.backend = StorageBackend::kPaged;
  EXPECT_EQ(Run(xmlgen::kQ2, paged), q2);
}

TEST_F(XMarkPipelineTest, Q2StepsMatchSqlPlanAndMpmgjn) {
  // Step 1: /descendant::increase.
  TagId increase = doc_->tags().Lookup("increase").value();
  TagId bidder = doc_->tags().Lookup("bidder").value();
  NodeSequence s1 =
      StaircaseJoinView(*doc_, index_->view(increase), {doc_->root()},
                        Axis::kDescendant)
          .value();
  SqlPlanEvaluator sql(*doc_);
  EXPECT_EQ(sql.AxisStep({doc_->root()}, Axis::kDescendant, increase).value(),
            s1);

  // Step 2: ancestor::bidder via view join, MPMGJN, and naive + filter.
  NodeSequence s2 =
      StaircaseJoinView(*doc_, index_->view(bidder), s1, Axis::kAncestor)
          .value();
  const TagView& bview = index_->view(bidder);
  JoinList blist;
  blist.pre = bview.pre;
  blist.post = bview.post;
  EXPECT_EQ(
      MpmgjnAncestors(blist, MakeJoinList(*doc_, s1), doc_->height()).value(),
      s2);
  NodeSequence naive_anc = NaiveAxisStep(*doc_, s1, Axis::kAncestor).value();
  NodeSequence filtered;
  for (NodeId v : naive_anc) {
    if (doc_->kind(v) == NodeKind::kElement && doc_->tag(v) == bidder) {
      filtered.push_back(v);
    }
  }
  EXPECT_EQ(filtered, s2);
}

TEST_F(XMarkPipelineTest, DuplicateRatioMatchesPaperExperiment1) {
  // Experiment 1: the naive ancestor step of Q2 produces ~70-75% duplicates
  // (increase nodes sit at level 4; many paths share open_auction etc.).
  TagId increase = doc_->tags().Lookup("increase").value();
  NodeSequence s1 =
      StaircaseJoinView(*doc_, index_->view(increase), {doc_->root()},
                        Axis::kDescendant)
          .value();
  JoinStats stats;
  (void)NaiveAxisStep(*doc_, s1, Axis::kAncestor, &stats).value();
  double dup_ratio = static_cast<double>(stats.duplicates_removed) /
                     static_cast<double>(stats.candidates_produced);
  EXPECT_GT(dup_ratio, 0.60);
  EXPECT_LT(dup_ratio, 0.85);
  // Every increase path has length 4 to the root.
  EXPECT_EQ(stats.candidates_produced, 4 * s1.size());
}

TEST_F(XMarkPipelineTest, SkippingBoundHoldsOnXMark) {
  // Section 3.3: |touched| <= |result| + |context| for the descendant step.
  TagId profile = doc_->tags().Lookup("profile").value();
  NodeSequence profiles = index_->view(profile).pre;
  StaircaseOptions opt;
  opt.skip_mode = SkipMode::kSkip;
  opt.keep_attributes = true;
  JoinStats stats;
  NodeSequence r =
      StaircaseJoin(*doc_, profiles, Axis::kDescendant, opt, &stats).value();
  EXPECT_LE(stats.nodes_accessed(), r.size() + profiles.size());
  // ... and without skipping the scan covers the tail of the plane.
  StaircaseOptions none;
  none.skip_mode = SkipMode::kNone;
  JoinStats nstats;
  (void)StaircaseJoin(*doc_, profiles, Axis::kDescendant, none, &nstats);
  // The skipping factor grows with document size (Fig. 11(c)); at this
  // small scale a >2x reduction already shows the mechanism.
  EXPECT_GT(nstats.nodes_accessed(), 2 * stats.nodes_accessed());
  EXPECT_EQ(stats.nodes_accessed() + stats.nodes_skipped,
            nstats.nodes_accessed());
}

TEST_F(XMarkPipelineTest, SerializeParseRoundTripPreservesQueries) {
  xmlgen::XMarkOptions opt;
  opt.size_mb = 0.3;
  std::string text = xmlgen::GenerateXMarkText(opt).value();
  auto direct = Database::FromXmark(opt).value();
  auto reparsed = Database::FromXml(text).value();
  Session s1 = std::move(direct->CreateSession()).value();
  Session s2 = std::move(reparsed->CreateSession()).value();
  for (const char* q : {xmlgen::kQ1, xmlgen::kQ2,
                        "/descendant::person/child::name",
                        "/descendant::item/attribute::id"}) {
    EXPECT_EQ(s1.Run(q).value().nodes, s2.Run(q).value().nodes) << q;
  }
}

TEST_F(XMarkPipelineTest, ParallelAgreesOnXMark) {
  TagId profile = doc_->tags().Lookup("profile").value();
  NodeSequence profiles = index_->view(profile).pre;
  NodeSequence serial =
      StaircaseJoin(*doc_, profiles, Axis::kDescendant).value();
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(ParallelStaircaseJoin(*doc_, profiles, Axis::kDescendant, {},
                                    threads)
                  .value(),
              serial);
  }
}

}  // namespace
}  // namespace sj
