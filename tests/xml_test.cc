// Tests for the XML parser, DOM, and text writer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace sj::xml {
namespace {

/// Records events as strings for easy comparison.
class Recorder : public EventHandler {
 public:
  Status StartElement(std::string_view name) override {
    events.push_back("<" + std::string(name));
    return Status::OK();
  }
  Status EndElement(std::string_view name) override {
    events.push_back(">" + std::string(name));
    return Status::OK();
  }
  Status Attribute(std::string_view name, std::string_view value) override {
    events.push_back("@" + std::string(name) + "=" + std::string(value));
    return Status::OK();
  }
  Status Text(std::string_view data) override {
    events.push_back("T" + std::string(data));
    return Status::OK();
  }
  Status Comment(std::string_view data) override {
    events.push_back("C" + std::string(data));
    return Status::OK();
  }
  Status ProcessingInstruction(std::string_view target,
                               std::string_view data) override {
    events.push_back("P" + std::string(target) + ":" + std::string(data));
    return Status::OK();
  }

  std::vector<std::string> events;
};

std::vector<std::string> ParseEvents(std::string_view xml,
                                     ParseOptions opts = {}) {
  Recorder r;
  Status st = Parse(xml, &r, opts);
  EXPECT_TRUE(st.ok()) << st;
  return r.events;
}

TEST(XmlParserTest, SimpleElement) {
  EXPECT_EQ(ParseEvents("<a/>"), (std::vector<std::string>{"<a", ">a"}));
}

TEST(XmlParserTest, NestedElementsWithText) {
  EXPECT_EQ(ParseEvents("<a><b>hi</b></a>"),
            (std::vector<std::string>{"<a", "<b", "Thi", ">b", ">a"}));
}

TEST(XmlParserTest, AttributesInOrder) {
  EXPECT_EQ(ParseEvents("<a x=\"1\" y='2'/>"),
            (std::vector<std::string>{"<a", "@x=1", "@y=2", ">a"}));
}

TEST(XmlParserTest, PredefinedEntities) {
  EXPECT_EQ(ParseEvents("<a>&lt;&gt;&amp;&quot;&apos;</a>"),
            (std::vector<std::string>{"<a", "T<>&\"'", ">a"}));
}

TEST(XmlParserTest, NumericCharacterReferences) {
  EXPECT_EQ(ParseEvents("<a>&#65;&#x42;</a>"),
            (std::vector<std::string>{"<a", "TAB", ">a"}));
}

TEST(XmlParserTest, Utf8FromCharRef) {
  auto ev = ParseEvents("<a>&#xE9;</a>");  // e-acute, U+00E9
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[1], std::string("T\xC3\xA9"));
}

TEST(XmlParserTest, EntityInAttribute) {
  EXPECT_EQ(ParseEvents("<a x=\"a&amp;b\"/>"),
            (std::vector<std::string>{"<a", "@x=a&b", ">a"}));
}

TEST(XmlParserTest, CdataIsVerbatimText) {
  EXPECT_EQ(ParseEvents("<a><![CDATA[<not&parsed>]]></a>"),
            (std::vector<std::string>{"<a", "T<not&parsed>", ">a"}));
}

TEST(XmlParserTest, CommentsAndPis) {
  EXPECT_EQ(ParseEvents("<a><!--note--><?go fast?></a>"),
            (std::vector<std::string>{"<a", "Cnote", "Pgo:fast", ">a"}));
}

TEST(XmlParserTest, CommentsCanBeDropped) {
  ParseOptions opts;
  opts.emit_comments = false;
  opts.emit_processing_instructions = false;
  EXPECT_EQ(ParseEvents("<a><!--note--><?go fast?></a>", opts),
            (std::vector<std::string>{"<a", ">a"}));
}

TEST(XmlParserTest, DeclarationAndDoctypeSkipped) {
  EXPECT_EQ(ParseEvents("<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a "
                        "EMPTY>]><a/>"),
            (std::vector<std::string>{"<a", ">a"}));
}

TEST(XmlParserTest, WhitespaceTextSkippedByDefault) {
  EXPECT_EQ(ParseEvents("<a>\n  <b/>\n</a>"),
            (std::vector<std::string>{"<a", "<b", ">b", ">a"}));
}

TEST(XmlParserTest, WhitespaceTextKeptOnRequest) {
  ParseOptions opts;
  opts.skip_whitespace_text = false;
  auto ev = ParseEvents("<a> <b/></a>", opts);
  EXPECT_EQ(ev, (std::vector<std::string>{"<a", "T ", "<b", ">b", ">a"}));
}

TEST(XmlParserTest, TrailingMiscAllowed) {
  EXPECT_EQ(ParseEvents("<a/><!--end-->\n"),
            (std::vector<std::string>{"<a", ">a", "Cend"}));
}

struct BadInput {
  const char* name;
  const char* xml;
};

class XmlParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(XmlParserErrorTest, RejectsMalformedInput) {
  Recorder r;
  Status st = Parse(GetParam().xml, &r);
  EXPECT_EQ(st.code(), StatusCode::kParseError) << GetParam().xml;
  // Error messages carry a line:column prefix.
  EXPECT_NE(st.message().find(':'), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserErrorTest,
    ::testing::Values(
        BadInput{"Unclosed", "<a>"}, BadInput{"Mismatched", "<a></b>"},
        BadInput{"TwoRoots", "<a/><b/>"}, BadInput{"NoRoot", "   "},
        BadInput{"BadEntity", "<a>&nope;</a>"},
        BadInput{"UnterminatedEntity", "<a>&amp</a>"},
        BadInput{"BadCharRef", "<a>&#xZZ;</a>"},
        BadInput{"HugeCharRef", "<a>&#x110000;</a>"},
        BadInput{"AttrNoValue", "<a x/>"},
        BadInput{"AttrUnquoted", "<a x=1/>"},
        BadInput{"AttrUnterminated", "<a x=\"1/>"},
        BadInput{"LtInAttr", "<a x=\"<\"/>"},
        BadInput{"UnterminatedComment", "<a><!--"},
        BadInput{"UnterminatedCdata", "<a><![CDATA[x"},
        BadInput{"UnterminatedPi", "<a><?pi"},
        BadInput{"TextAfterRoot", "<a/>text"},
        BadInput{"GarbageTag", "<1a/>"}),
    [](const ::testing::TestParamInfo<BadInput>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(XmlParserTest, NullHandlerRejected) {
  EXPECT_EQ(Parse("<a/>", nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(XmlParserTest, HandlerErrorPropagates) {
  class Failing : public Recorder {
    Status Text(std::string_view) override {
      return Status::Internal("stop");
    }
  } handler;
  EXPECT_EQ(Parse("<a>x</a>", &handler).code(), StatusCode::kInternal);
}

TEST(DomTest, BuildsTreeShape) {
  auto doc = ParseToDom("<a x=\"1\"><b>t</b><!--c--></a>").value();
  const DomNode* root = doc->document_element();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "a");
  ASSERT_EQ(root->attributes.size(), 1u);
  EXPECT_EQ(root->attributes[0]->name, "x");
  EXPECT_EQ(root->attributes[0]->value, "1");
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0]->name, "b");
  EXPECT_EQ(root->children[0]->children[0]->value, "t");
  EXPECT_EQ(root->children[1]->kind, DomKind::kComment);
  EXPECT_EQ(root->children[0]->parent, root);
}

TEST(DomTest, SerializeRoundTrip) {
  const std::string xml = "<a x=\"1&amp;2\"><b>t&lt;u</b><c/><?p d?></a>";
  auto doc = ParseToDom(xml).value();
  EXPECT_EQ(Serialize(*doc), xml);
}

TEST(DomTest, SerializeEscapesAttributesAndText) {
  auto doc = ParseToDom("<a x=\"&quot;\">&amp;</a>").value();
  std::string out = Serialize(*doc);
  EXPECT_EQ(out, "<a x=\"&quot;\">&amp;</a>");
}

TEST(TextWriterTest, RoundTripsThroughParser) {
  const std::string xml =
      "<site><x id=\"i0\" f=\"y\"><name>n</name>text</x><!--c--></site>";
  std::string out;
  TextWriter writer(&out);
  ASSERT_TRUE(Parse(xml, &writer).ok());
  EXPECT_EQ(out, xml);
}

TEST(TextWriterTest, AttributeAfterContentRejected) {
  std::string out;
  TextWriter w(&out);
  ASSERT_TRUE(w.StartElement("a").ok());
  ASSERT_TRUE(w.Text("t").ok());
  EXPECT_EQ(w.Attribute("x", "1").code(), StatusCode::kInvalidArgument);
}

TEST(TextWriterTest, EmptyElementUsesSelfClosingForm) {
  std::string out;
  TextWriter w(&out);
  ASSERT_TRUE(w.StartElement("a").ok());
  ASSERT_TRUE(w.EndElement("a").ok());
  EXPECT_EQ(out, "<a/>");
}

}  // namespace
}  // namespace sj::xml
