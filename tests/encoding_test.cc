// Tests for the pre/post document encoding (DocTable, builder, loader):
// the paper's Fig. 2 example table, Eq. (1), the region partition of
// Fig. 1, and the empty-region lemmas of Fig. 7 -- as properties over
// randomly generated documents.

#include <gtest/gtest.h>

#include <set>

#include "encoding/loader.h"
#include "test_util.h"
#include "util/rng.h"
#include "xml/dom.h"

namespace sj {
namespace {

using testing::LoadPaperExample;
using testing::RandomDocOptions;
using testing::RandomDocument;

TEST(TagDictionaryTest, InternAndLookup) {
  TagDictionary dict;
  TagId a = dict.Intern("site");
  TagId b = dict.Intern("item");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("site"), a);
  EXPECT_EQ(dict.Lookup("item"), b);
  // Never-interned names are std::nullopt, NOT kNoTag: kNoTag is the
  // legitimate tag column value of text/comment nodes.
  EXPECT_EQ(dict.Lookup("nope"), std::nullopt);
  EXPECT_EQ(dict.Name(a), "site");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(EncodingTest, PaperFigure2Table) {
  auto doc = LoadPaperExample();
  ASSERT_EQ(doc->size(), 10u);
  // Expected <pre, post> pairs from paper Fig. 2.
  const uint32_t expected_post[10] = {9, 1, 0, 2, 8, 5, 3, 4, 7, 6};
  const char* names = "abcdefghij";
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(doc->post(v), expected_post[v]) << "node " << names[v];
    EXPECT_EQ(doc->tags().Name(doc->tag(v)), std::string(1, names[v]));
  }
  EXPECT_EQ(doc->height(), 3u);  // a/e/f/g is the longest path
  EXPECT_EQ(doc->root(), 0u);
}

TEST(EncodingTest, PaperExampleRegions) {
  auto doc = LoadPaperExample();
  const NodeId f = 5, g = 6;
  // f/preceding = (b, c, d) = pre 1, 2, 3  (paper Section 2).
  NodeSequence prec;
  for (NodeId v = 0; v < doc->size(); ++v) {
    if (doc->IsPreceding(v, f)) prec.push_back(v);
  }
  EXPECT_EQ(prec, (NodeSequence{1, 2, 3}));
  // g/ancestor = (a, e, f) = pre 0, 4, 5.
  NodeSequence anc;
  for (NodeId v = 0; v < doc->size(); ++v) {
    if (doc->IsAncestor(v, g)) anc.push_back(v);
  }
  EXPECT_EQ(anc, (NodeSequence{0, 4, 5}));
}

TEST(EncodingTest, LevelsAndParents) {
  auto doc = LoadPaperExample();
  EXPECT_EQ(doc->level(0), 0u);                // a
  EXPECT_EQ(doc->parent(0), kNilNode);
  EXPECT_EQ(doc->level(1), 1u);                // b
  EXPECT_EQ(doc->parent(1), 0u);
  EXPECT_EQ(doc->level(6), 3u);                // g
  EXPECT_EQ(doc->parent(6), 5u);               // f
}

TEST(EncodingTest, AttributesRankedAfterOwner) {
  auto doc = LoadDocument("<a x=\"1\" y=\"2\"><b z=\"3\"/></a>").value();
  ASSERT_EQ(doc->size(), 5u);
  EXPECT_EQ(doc->kind(0), NodeKind::kElement);    // a
  EXPECT_EQ(doc->kind(1), NodeKind::kAttribute);  // @x
  EXPECT_EQ(doc->kind(2), NodeKind::kAttribute);  // @y
  EXPECT_EQ(doc->kind(3), NodeKind::kElement);    // b
  EXPECT_EQ(doc->kind(4), NodeKind::kAttribute);  // @z
  EXPECT_EQ(doc->parent(1), 0u);
  EXPECT_EQ(doc->parent(4), 3u);
  EXPECT_EQ(doc->attribute_count(), 3u);
  // Attributes are leaves: their subtrees are empty.
  EXPECT_EQ(doc->subtree_size(1), 0u);
}

TEST(EncodingTest, ValuesStoredWhenRequested) {
  auto doc = LoadDocument("<a x=\"v1\">hello<!--note--></a>").value();
  ASSERT_TRUE(doc->has_values());
  EXPECT_EQ(doc->value(1), "v1");
  EXPECT_EQ(doc->value(2), "hello");
  EXPECT_EQ(doc->value(3), "note");
  EXPECT_EQ(doc->value(0), "");  // elements carry no value
}

TEST(EncodingTest, ValuesSkippedWhenDisabled) {
  BuildOptions opts;
  opts.store_values = false;
  auto doc = LoadDocument("<a>hello</a>", opts).value();
  EXPECT_FALSE(doc->has_values());
  EXPECT_EQ(doc->value(1), "");
}

TEST(EncodingTest, EmptyDocumentRejected) {
  EXPECT_FALSE(LoadDocument("").ok());
  EXPECT_FALSE(LoadDocument("   ").ok());
}

TEST(EncodingTest, CheckNodeValidatesRange) {
  auto doc = LoadPaperExample();
  EXPECT_TRUE(doc->CheckNode(9).ok());
  EXPECT_EQ(doc->CheckNode(10).code(), StatusCode::kOutOfRange);
}

TEST(EncodingTest, DebugStringMentionsKindAndRanks) {
  auto doc = LoadDocument("<a x=\"1\">t</a>").value();
  EXPECT_NE(doc->DebugString(0).find("element a"), std::string::npos);
  EXPECT_NE(doc->DebugString(1).find("attribute @x"), std::string::npos);
  EXPECT_NE(doc->DebugString(2).find("text"), std::string::npos);
}

// --- Properties over random documents --------------------------------------

class EncodingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodingPropertyTest, PrePostAreDensePermutations) {
  auto doc = RandomDocument(GetParam());
  std::set<uint32_t> posts;
  for (NodeId v = 0; v < doc->size(); ++v) posts.insert(doc->post(v));
  EXPECT_EQ(posts.size(), doc->size());
  EXPECT_EQ(*posts.begin(), 0u);
  EXPECT_EQ(*posts.rbegin(), doc->size() - 1);
}

TEST_P(EncodingPropertyTest, EquationOneHolds) {
  // |(v)/descendant| = post(v) - pre(v) + level(v)   (paper Eq. (1)).
  auto doc = RandomDocument(GetParam());
  for (NodeId v = 0; v < doc->size(); ++v) {
    uint64_t count = 0;
    for (NodeId u = 0; u < doc->size(); ++u) {
      count += doc->IsDescendant(u, v) ? 1u : 0u;
    }
    EXPECT_EQ(count, static_cast<uint64_t>(doc->post(v)) - v + doc->level(v));
    EXPECT_EQ(count, doc->subtree_size(v));
    EXPECT_LE(doc->level(v), doc->height());
  }
}

TEST_P(EncodingPropertyTest, FourRegionsPartitionTheDocument) {
  // Fig. 1: context node + its four regions cover the document exactly.
  auto doc = RandomDocument(GetParam());
  Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    NodeId c = static_cast<NodeId>(rng.Below(doc->size()));
    for (NodeId v = 0; v < doc->size(); ++v) {
      int regions = (doc->IsDescendant(v, c) ? 1 : 0) +
                    (doc->IsAncestor(v, c) ? 1 : 0) +
                    (doc->IsFollowing(v, c) ? 1 : 0) +
                    (doc->IsPreceding(v, c) ? 1 : 0);
      EXPECT_EQ(regions, v == c ? 0 : 1)
          << "node " << v << " vs context " << c;
    }
  }
}

TEST_P(EncodingPropertyTest, ParentChainMatchesAncestorRegion) {
  auto doc = RandomDocument(GetParam());
  for (NodeId v = 0; v < doc->size(); ++v) {
    std::set<NodeId> chain;
    for (NodeId p = doc->parent(v); p != kNilNode; p = doc->parent(p)) {
      chain.insert(p);
    }
    EXPECT_EQ(chain.size(), doc->level(v));
    for (NodeId u = 0; u < doc->size(); ++u) {
      EXPECT_EQ(chain.count(u) > 0, doc->IsAncestor(u, v));
    }
  }
}

TEST_P(EncodingPropertyTest, Figure7EmptyRegionLemmas) {
  auto doc = RandomDocument(GetParam());
  Rng rng(GetParam() * 13 + 5);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId a = static_cast<NodeId>(rng.Below(doc->size()));
    NodeId b = static_cast<NodeId>(rng.Below(doc->size()));
    if (a >= b) continue;
    if (doc->IsDescendant(b, a)) {
      // Fig. 7(a): an ancestor of b can neither precede nor follow a.
      for (NodeId v = 0; v < doc->size(); ++v) {
        if (doc->IsAncestor(v, b)) {
          EXPECT_FALSE(doc->IsPreceding(v, a));
          EXPECT_FALSE(doc->IsFollowing(v, a));
        }
      }
    } else if (doc->IsFollowing(b, a)) {
      // Fig. 7(b): a and b have no common descendants (region Z empty).
      for (NodeId v = 0; v < doc->size(); ++v) {
        EXPECT_FALSE(doc->IsDescendant(v, a) && doc->IsDescendant(v, b));
      }
    }
  }
}

TEST_P(EncodingPropertyTest, RoundTripThroughSerializer) {
  // text -> DocTable == text -> DOM -> serialize -> DocTable.
  std::string xml = testing::RandomDocumentXml(GetParam(), {});
  auto direct = LoadDocument(xml).value();
  auto dom = xml::ParseToDom(xml).value();
  auto via_dom = LoadDocument(xml::Serialize(*dom)).value();
  ASSERT_EQ(direct->size(), via_dom->size());
  for (NodeId v = 0; v < direct->size(); ++v) {
    EXPECT_EQ(direct->post(v), via_dom->post(v));
    EXPECT_EQ(direct->level(v), via_dom->level(v));
    EXPECT_EQ(direct->kind(v), via_dom->kind(v));
    EXPECT_EQ(direct->parent(v), via_dom->parent(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 42, 1234));

}  // namespace
}  // namespace sj
