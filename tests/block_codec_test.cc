// Round-trip and edge-case property tests for the FOR/delta block codec
// (encoding/block_codec.h): every block the compressed backend can ever
// encode must decode bit-exactly, the encoder must pick encodings that
// actually compress the column shapes the backend stores (monotone
// fragment pre lists, near-constant kind/level runs, non-monotone parent
// deltas, kNilNode extremes), and malformed headers must be rejected
// rather than decoded into garbage.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "encoding/block_codec.h"
#include "encoding/doc_table.h"
#include "util/rng.h"

namespace sj::encoding {
namespace {

std::vector<uint32_t> RoundTrip(const std::vector<uint32_t>& values) {
  std::vector<uint8_t> buf(MaxEncodedBlockBytes(values.size()));
  const size_t bytes = EncodeBlock(values, buf.data());
  EXPECT_LE(bytes, buf.size());
  auto size = EncodedBlockSize(buf.data(), bytes);
  EXPECT_TRUE(size.ok()) << size.status();
  EXPECT_EQ(size.value(), bytes);
  std::vector<uint32_t> out(values.size());
  Status decoded = DecodeBlock(buf.data(), bytes, values.size(), out.data());
  EXPECT_TRUE(decoded.ok()) << decoded;
  return out;
}

TEST(BlockCodecTest, EmptyBlockRoundTrips) {
  std::vector<uint32_t> empty;
  EXPECT_EQ(RoundTrip(empty), empty);
  uint8_t buf[kBlockHeaderBytes + 8];
  EXPECT_EQ(EncodeBlock(empty, buf), kBlockHeaderBytes);
}

TEST(BlockCodecTest, SingleValueRoundTrips) {
  for (uint32_t v : {0u, 1u, 4096u, std::numeric_limits<uint32_t>::max()}) {
    std::vector<uint32_t> one{v};
    EXPECT_EQ(RoundTrip(one), one) << v;
    // A single value needs only the header: base carries it.
    uint8_t buf[kBlockHeaderBytes + sizeof(uint32_t)];
    EXPECT_EQ(EncodeBlock(one, buf), kBlockHeaderBytes) << v;
  }
}

TEST(BlockCodecTest, ConstantBlockEncodesToHeaderOnly) {
  std::vector<uint32_t> values(kBlockValues, 123456789u);
  EXPECT_EQ(RoundTrip(values), values);
  std::vector<uint8_t> buf(MaxEncodedBlockBytes(values.size()));
  EXPECT_EQ(EncodeBlock(values, buf.data()), kBlockHeaderBytes);
}

TEST(BlockCodecTest, MonotoneRunsCompressTightly) {
  // A fragment pre list: strictly increasing with small steps. Delta
  // encoding must land near 2 bits per value, far below the raw 32.
  std::vector<uint32_t> values;
  Rng rng(7);
  uint32_t v = 1000;
  for (size_t i = 0; i < kBlockValues; ++i) {
    v += static_cast<uint32_t>(rng.Range(1, 3));
    values.push_back(v);
  }
  EXPECT_EQ(RoundTrip(values), values);
  std::vector<uint8_t> buf(MaxEncodedBlockBytes(values.size()));
  const size_t bytes = EncodeBlock(values, buf.data());
  EXPECT_LE(bytes, kBlockHeaderBytes + kBlockValues * 3 / 8 + 1);
}

TEST(BlockCodecTest, MaxWidthValuesRoundTrip) {
  // Alternating extremes of the uint32 range, including kNilNode (the
  // parent column's root marker, 0xFFFFFFFF). Circular FOR wraps the
  // frame around the sentinel -- 0xFFFFFFFF becomes base + 0, 0 becomes
  // base + 1 -- so even this block packs to one bit per value.
  std::vector<uint32_t> values;
  for (size_t i = 0; i < kBlockValues; ++i) {
    values.push_back(i % 2 == 0 ? 0u : kNilNode);
  }
  EXPECT_EQ(RoundTrip(values), values);
  std::vector<uint8_t> buf(MaxEncodedBlockBytes(values.size()));
  const size_t bytes = EncodeBlock(values, buf.data());
  EXPECT_LE(bytes, kBlockHeaderBytes + kBlockValues / 8);
}

TEST(BlockCodecTest, TagColumnShapePacksSmall) {
  // The tag-column shape that motivates circular FOR: a handful of tiny
  // dictionary codes with kNoTag sentinels for text nodes interspersed.
  // Classic FOR would need 32 bits per value; circular FOR needs 5.
  std::vector<uint32_t> values;
  Rng rng(11);
  for (size_t i = 0; i < kBlockValues; ++i) {
    values.push_back(rng.Percent(40) ? kNoTag
                                     : static_cast<uint32_t>(rng.Below(20)));
  }
  EXPECT_EQ(RoundTrip(values), values);
  std::vector<uint8_t> buf(MaxEncodedBlockBytes(values.size()));
  const size_t bytes = EncodeBlock(values, buf.data());
  EXPECT_LE(bytes, kBlockHeaderBytes + kBlockValues);  // <= 8 bits/value
}

TEST(BlockCodecTest, NonMonotoneParentDeltasRoundTrip) {
  // A parent column shape: mostly "a few ranks back", with jumps back
  // to ancestors and the root's kNilNode up front -- signed deltas in
  // both directions.
  std::vector<uint32_t> values{kNilNode, 0, 0, 2, 2, 0, 5, 5, 6, 0};
  Rng rng(21);
  for (size_t i = 0; i < 900; ++i) {
    values.push_back(static_cast<uint32_t>(
        rng.Percent(20) ? rng.Below(10) : values.size() - rng.Range(1, 5)));
  }
  EXPECT_EQ(RoundTrip(values), values);
}

TEST(BlockCodecTest, RandomBlocksOfEveryShapeRoundTrip) {
  Rng rng(1234);
  for (int round = 0; round < 200; ++round) {
    const size_t count = 1 + rng.Below(kBlockValues);
    // Vary the value magnitude so every bit width 1..32 is exercised.
    const uint32_t mask =
        static_cast<uint32_t>((uint64_t{1} << rng.Range(1, 32)) - 1);
    std::vector<uint32_t> values;
    values.reserve(count);
    uint32_t walk = static_cast<uint32_t>(rng.Next());
    for (size_t i = 0; i < count; ++i) {
      if (rng.Percent(50)) {
        values.push_back(static_cast<uint32_t>(rng.Next()) & mask);
      } else {
        // Random-walk stretches favor the delta encoding.
        walk += static_cast<uint32_t>(rng.Range(0, 64)) - 32;
        values.push_back(walk);
      }
    }
    EXPECT_EQ(RoundTrip(values), values) << "round " << round;
  }
}

TEST(BlockCodecTest, MalformedHeadersAreRejected) {
  std::vector<uint32_t> values{1, 2, 3, 4, 5};
  std::vector<uint8_t> buf(MaxEncodedBlockBytes(values.size()));
  const size_t bytes = EncodeBlock(values, buf.data());
  std::vector<uint32_t> out(values.size());

  // Truncated header.
  EXPECT_FALSE(EncodedBlockSize(buf.data(), kBlockHeaderBytes - 1).ok());
  // Unknown mode.
  std::vector<uint8_t> bad = buf;
  bad[0] = 7;
  EXPECT_FALSE(DecodeBlock(bad.data(), bytes, values.size(), out.data()).ok());
  // Impossible bit width.
  bad = buf;
  bad[1] = 33;
  EXPECT_FALSE(DecodeBlock(bad.data(), bytes, values.size(), out.data()).ok());
  // Count beyond kBlockValues.
  bad = buf;
  bad[2] = 0xFF;
  bad[3] = 0xFF;
  EXPECT_FALSE(DecodeBlock(bad.data(), bytes, values.size(), out.data()).ok());
  // Count that disagrees with the directory's expectation.
  EXPECT_FALSE(
      DecodeBlock(buf.data(), bytes, values.size() + 1, out.data()).ok());
  // Payload truncated below what the header promises.
  std::vector<uint32_t> wide(64);
  for (size_t i = 0; i < wide.size(); ++i) {
    wide[i] = static_cast<uint32_t>(i * 92821u);
  }
  std::vector<uint8_t> wide_buf(MaxEncodedBlockBytes(wide.size()));
  const size_t wide_bytes = EncodeBlock(wide, wide_buf.data());
  std::vector<uint32_t> wide_out(wide.size());
  EXPECT_FALSE(DecodeBlock(wide_buf.data(), wide_bytes - 1, wide.size(),
                           wide_out.data())
                   .ok());
}

}  // namespace
}  // namespace sj::encoding
