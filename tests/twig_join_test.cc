// The holistic twig join (core/twig_impl.h): one k-way leapfrog merge
// over per-tag fragment cursors must return exactly what k materialized
// steps return -- byte-identical, duplicate-free, document-order -- on
// every backend, for every eligible path shape, including documents
// where a tag nests inside itself (the case that breaks naive
// stack-free intersections). Also pins the plan-extraction boundaries
// (what collapses, what falls back), the zero-intermediate / fewer-
// faults property on the paged backend, and the stats contract of the
// raw kernel.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "core/tag_view.h"
#include "core/twig_join.h"
#include "test_util.h"

namespace sj {
namespace {

using sj::testing::LoadPaperExample;
using sj::testing::RandomDocOptions;
using sj::testing::RandomDocument;

bool BytesEqual(const NodeSequence& a, const NodeSequence& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(NodeId)) == 0);
}

QueryResult MustRun(Session& session, const std::string& q) {
  auto r = session.Run(q);
  EXPECT_TRUE(r.ok()) << q << ": " << r.status();
  return std::move(r).value();
}

Session MakeSession(Database& db, StorageBackend backend, TwigMode twig,
                    EngineMode engine = EngineMode::kStaircase) {
  SessionOptions opt;
  opt.backend = backend;
  opt.hints.twig = twig;
  opt.hints.engine = engine;
  auto s = db.CreateSession(opt);
  EXPECT_TRUE(s.ok()) << s.status();
  return std::move(s).value();
}

/// Twig (kAuto) vs step-at-a-time (kNever) vs the tree-unaware naive
/// engine, across all three storage backends, for one query.
void ExpectTwigMatrix(Database& db, const std::string& q) {
  Session naive =
      MakeSession(db, StorageBackend::kMemory, TwigMode::kNever,
                  EngineMode::kNaive);
  const QueryResult oracle = MustRun(naive, q);
  constexpr StorageBackend kBackends[] = {StorageBackend::kMemory,
                                          StorageBackend::kPaged,
                                          StorageBackend::kCompressed};
  for (StorageBackend backend : kBackends) {
    Session twig = MakeSession(db, backend, TwigMode::kAuto);
    Session step = MakeSession(db, backend, TwigMode::kNever);
    const QueryResult via_twig = MustRun(twig, q);
    const QueryResult via_steps = MustRun(step, q);
    EXPECT_TRUE(BytesEqual(via_twig.nodes, oracle.nodes))
        << q << " backend=" << static_cast<int>(backend) << "\n"
        << via_twig.Explain();
    EXPECT_TRUE(BytesEqual(via_steps.nodes, oracle.nodes))
        << q << " backend=" << static_cast<int>(backend);
  }
}

/// A document whose tags nest inside themselves: the supporter stacks
/// must hold MULTIPLE live ancestors per level at once.
std::unique_ptr<DocTable> RecursiveDocument() {
  return LoadDocument(
             "<a><a><b><a><b><c/><b><c/></b></b><c/></a><a/></b>"
             "<b><a><c/></a></b></a><b><b><c/></b></b><c/></a>")
      .value();
}

TEST(TwigJoinTest, MatrixMatchesStepAtATimeAndNaive) {
  {
    auto db = Database::FromTable(LoadPaperExample()).value();
    for (const char* q : {
             "/descendant::e/child::f/child::g",
             "/descendant::a/descendant::e/descendant::j",
             "/descendant-or-self::a/descendant::f/child::h",
             "//e//f",
             "//a//i//j",
             "/descendant::e/child::i/child::j",
         }) {
      ExpectTwigMatrix(*db, q);
    }
  }
  {
    auto db = Database::FromTable(RecursiveDocument()).value();
    for (const char* q : {
             "/descendant::a/descendant::b/descendant::c",
             "/descendant::a/child::b/child::c",
             "//a//b//c",
             "/descendant::b/descendant::a/child::b",
             "/descendant-or-self::a/descendant-or-self::b/descendant::c",
             "/descendant::a/descendant::a/descendant::b",
         }) {
      ExpectTwigMatrix(*db, q);
    }
  }
  // Deep and bushy random documents with a small tag alphabet, so the
  // chains produce dense recursive nesting of every tag.
  for (uint64_t seed : {3u, 4u}) {
    auto db = Database::FromTable(
                  RandomDocument(seed, {.target_nodes = 4000,
                                        .max_children = seed == 3 ? 2u : 8u,
                                        .tag_alphabet = 3}))
                  .value();
    for (const char* q : {
             "/descendant::t0/descendant::t1/descendant::t2",
             "/descendant::t0/child::t1/child::t2",
             "//t1//t0//t2",
             "/descendant::t2/descendant::t2/child::t1",
             "/descendant-or-self::t0/descendant::t1/descendant::t0",
         }) {
      ExpectTwigMatrix(*db, q);
    }
  }
}

TEST(TwigJoinTest, ExplainShowsCollapseOnAllBackends) {
  auto db = Database::FromTable(RandomDocument(7, {.target_nodes = 5000}))
                .value();
  const std::string q = "/descendant::t0/descendant::t1/child::t2";
  struct Case {
    StorageBackend backend;
    const char* label;
  } cases[] = {
      {StorageBackend::kMemory, "via twig join over fragments"},
      {StorageBackend::kPaged, "via paged twig join over fragments"},
      {StorageBackend::kCompressed, "via compressed twig join over fragments"},
  };
  for (const Case& c : cases) {
    Session s = MakeSession(*db, c.backend, TwigMode::kAuto);
    const QueryResult r = MustRun(s, q);
    const std::string explain = r.Explain();
    EXPECT_NE(explain.find(c.label), std::string::npos) << explain;
    EXPECT_NE(explain.find("'t0'→'t1'→'t2', k=3"),
              std::string::npos)
        << explain;
    EXPECT_NE(explain.find("cursor skips:"), std::string::npos) << explain;
    // One EXPLAIN entry per query step: the twig entry plus one
    // "subsumed" marker per collapsed step -- no vanishing steps.
    ASSERT_EQ(r.trace.size(), 3u) << explain;
    EXPECT_NE(r.trace[1].description.find("subsumed by twig join (step 1)"),
              std::string::npos)
        << explain;
    EXPECT_NE(r.trace[2].description.find("subsumed by twig join (step 1)"),
              std::string::npos)
        << explain;
    // The collapse materializes no intermediate context sequences.
    EXPECT_EQ(r.trace[0].stats.nodes_copied, 0u);
  }
}

TEST(TwigJoinTest, IneligibleRunsFallBackToStepAtATime) {
  auto db = Database::FromTable(RandomDocument(11, {.target_nodes = 5000}))
                .value();
  Session s = MakeSession(*db, StorageBackend::kMemory, TwigMode::kAuto);
  // Each query is twig-ineligible for a different reason; all must run
  // step-at-a-time (no "twig join" in EXPLAIN) and still be correct.
  const char* ineligible[] = {
      "/descendant::t0",                         // single level
      "//t0",                                    // desugars to one level
      "/descendant::t0/child::node()",           // non-name test
      "/descendant::t0[child::t1]/descendant::t1",  // predicate splits
      "/descendant::t0/descendant::t1[1]",       // positional predicate
      "/descendant::t0/parent::t0",              // non-twig axis
      "/descendant::t0/ancestor::t1",            // non-twig axis
  };
  Session naive = MakeSession(*db, StorageBackend::kMemory, TwigMode::kNever,
                              EngineMode::kNaive);
  for (const char* q : ineligible) {
    const QueryResult r = MustRun(s, q);
    EXPECT_EQ(r.Explain().find("twig join"), std::string::npos)
        << q << "\n" << r.Explain();
    EXPECT_TRUE(BytesEqual(r.nodes, MustRun(naive, q).nodes)) << q;
  }
  // A predicate in the middle splits one long run into two collapses.
  const QueryResult split = MustRun(
      s, "/descendant::t0/descendant::t1[child::t2]/child::t2/child::t3");
  EXPECT_EQ(split.trace.size(), 4u) << split.Explain();
  EXPECT_NE(split.Explain().find("k=2"), std::string::npos)
      << split.Explain();
  // kNever disables the collapse wholesale.
  Session never = MakeSession(*db, StorageBackend::kMemory, TwigMode::kNever);
  const QueryResult r =
      MustRun(never, "/descendant::t0/descendant::t1/descendant::t2");
  EXPECT_EQ(r.Explain().find("twig join"), std::string::npos) << r.Explain();
  // Without the backend's fragment index there is nothing to leapfrog
  // over: silent fallback, same answer.
  DatabaseOptions open;
  open.build_tag_index = false;
  open.build_paged = false;
  open.build_compressed = false;
  auto bare = Database::FromTable(RandomDocument(11, {.target_nodes = 5000}),
                                  open)
                  .value();
  Session no_index =
      MakeSession(*bare, StorageBackend::kMemory, TwigMode::kAuto);
  const QueryResult fallback =
      MustRun(no_index, "/descendant::t0/descendant::t1/descendant::t2");
  EXPECT_EQ(fallback.Explain().find("twig join"), std::string::npos)
      << fallback.Explain();
  EXPECT_TRUE(BytesEqual(
      fallback.nodes,
      MustRun(naive, "/descendant::t0/descendant::t1/descendant::t2").nodes));
}

TEST(TwigJoinTest, UnknownTagIsAnEmptyFragmentNotAFallback) {
  auto db = Database::FromTable(LoadPaperExample()).value();
  Session s = MakeSession(*db, StorageBackend::kMemory, TwigMode::kAuto);
  const QueryResult r = MustRun(s, "/descendant::e/descendant::zzz");
  EXPECT_NE(r.Explain().find("twig join"), std::string::npos) << r.Explain();
  EXPECT_TRUE(r.nodes.empty());
}

TEST(TwigJoinTest, ColdPoolTwigFaultsAtMostStepAtATime) {
  // The Fig. 11-style property in test form: at equal (private) pool
  // size, the twig plan reads only the k fragments plus the doc columns
  // it probes, while step-at-a-time scans and materializes after every
  // step -- so the twig run must never fault more.
  auto db = Database::FromTable(RandomDocument(21, {.target_nodes = 60000}))
                .value();
  ASSERT_GT(db->doc().size(), 20000u);
  const char* chains[] = {
      "/descendant::t0/descendant::t1/descendant::t2",
      "/descendant::t1/child::t2/child::t3",
      "//t0//t1//t2//t3",
  };
  for (StorageBackend backend :
       {StorageBackend::kPaged, StorageBackend::kCompressed}) {
    for (const char* q : chains) {
      auto faults_with = [&](TwigMode twig) {
        SessionOptions opt;
        opt.backend = backend;
        opt.hints.twig = twig;
        opt.private_pool_pages = 64;
        Session io = std::move(db->CreateSession(opt)).value();
        auto r = io.Run(q);
        EXPECT_TRUE(r.ok()) << q << ": " << r.status();
        if (twig == TwigMode::kAuto) {
          EXPECT_NE(r.value().Explain().find("twig join"), std::string::npos)
              << r.value().Explain();
          EXPECT_EQ(r.value().totals.nodes_copied, 0u) << q;
        }
        return io.pool()->stats().faults;
      };
      const uint64_t twig_faults = faults_with(TwigMode::kAuto);
      const uint64_t step_faults = faults_with(TwigMode::kNever);
      EXPECT_LE(twig_faults, step_faults)
          << q << " backend=" << static_cast<int>(backend);
    }
  }
}

TEST(TwigJoinTest, KernelStatsAreSelfConsistent) {
  auto doc = RandomDocument(5, {.target_nodes = 8000, .tag_alphabet = 4});
  TagIndex tags(*doc);
  std::vector<TwigLevel> levels;
  for (const char* name : {"t0", "t1", "t2"}) {
    auto tag = doc->tags().Lookup(name);
    ASSERT_TRUE(tag.has_value()) << name;
    levels.push_back({Axis::kDescendant, *tag});
  }
  JoinStats stats;
  std::vector<TwigLevelStats> per_level;
  NodeSequence context{0};
  auto r = TwigJoin(*doc, tags, context, levels, {}, &stats, &per_level);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(stats.result_size, r.value().size());
  EXPECT_EQ(stats.nodes_copied, 0u);
  EXPECT_EQ(stats.context_size, 1u);
  ASSERT_EQ(per_level.size(), levels.size());
  uint64_t scanned = 0, skipped = 0;
  for (size_t i = 0; i < per_level.size(); ++i) {
    EXPECT_EQ(per_level[i].tag, levels[i].tag);
    EXPECT_EQ(per_level[i].fragment_size, tags.view(levels[i].tag).size());
    // A fragment slot is consumed at most once: scanned or skipped.
    EXPECT_LE(per_level[i].slots_scanned + per_level[i].slots_skipped,
              per_level[i].fragment_size);
    scanned += per_level[i].slots_scanned;
    skipped += per_level[i].slots_skipped;
  }
  EXPECT_EQ(stats.nodes_scanned, scanned);
  EXPECT_EQ(stats.nodes_skipped, skipped);
  // Seeks disabled: every slot up to exhaustion is scanned, none skipped.
  JoinStats no_skip;
  StaircaseOptions opts;
  opts.skip_mode = SkipMode::kNone;
  std::vector<TwigLevelStats> no_skip_levels;
  auto r2 = TwigJoin(*doc, tags, context, levels, opts, &no_skip,
                     &no_skip_levels);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_TRUE(BytesEqual(r2.value(), r.value()));
  EXPECT_EQ(no_skip.nodes_skipped, 0u);
  EXPECT_GE(no_skip.nodes_scanned, stats.nodes_scanned);
}

}  // namespace
}  // namespace sj
