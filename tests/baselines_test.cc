// Tests for the baselines: naive per-context evaluation, the SQL (DB2-
// style) plan, and MPMGJN -- each must agree with the staircase join /
// region oracle while exhibiting its characteristic cost profile
// (duplicates, index entries touched, re-scans).

#include <gtest/gtest.h>

#include "baselines/mpmgjn.h"
#include "baselines/naive.h"
#include "baselines/sql_plan.h"
#include "core/staircase_join.h"
#include "core/tag_view.h"
#include "encoding/loader.h"
#include "test_util.h"
#include "util/rng.h"

namespace sj {
namespace {

using testing::LoadPaperExample;
using testing::RandomContext;
using testing::RandomDocument;
using testing::RegionOracle;

// --- Naive ------------------------------------------------------------------

TEST(NaiveTest, MatchesOracleOnAllAxes) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto doc = RandomDocument(seed);
    Rng rng(seed + 1000);
    NodeSequence ctx = RandomContext(rng, *doc, 25);
    for (Axis axis :
         {Axis::kDescendant, Axis::kDescendantOrSelf, Axis::kAncestor,
          Axis::kAncestorOrSelf, Axis::kFollowing, Axis::kPreceding,
          Axis::kSelf, Axis::kParent, Axis::kChild, Axis::kAttribute,
          Axis::kFollowingSibling, Axis::kPrecedingSibling}) {
      auto result = NaiveAxisStep(*doc, ctx, axis);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result.value(), RegionOracle(*doc, ctx, axis))
          << "axis " << AxisName(axis) << " seed " << seed;
    }
  }
}

TEST(NaiveTest, CountsDuplicates) {
  auto doc = LoadPaperExample();
  // ancestor of (g, h): both have ancestors (a, e, f); naive produces six
  // candidates, four are duplicates.
  JoinStats stats;
  NodeSequence r = NaiveAxisStep(*doc, {6, 7}, Axis::kAncestor, &stats)
                       .value();
  EXPECT_EQ(r, (NodeSequence{0, 4, 5}));
  EXPECT_EQ(stats.candidates_produced, 6u);
  EXPECT_EQ(stats.duplicates_removed, 3u);
}

TEST(NaiveTest, CandidateCountMatchesMaterialization) {
  for (uint64_t seed : {5u, 6u}) {
    auto doc = RandomDocument(seed);
    Rng rng(seed);
    NodeSequence ctx = RandomContext(rng, *doc, 30);
    for (Axis axis : {Axis::kDescendant, Axis::kDescendantOrSelf,
                      Axis::kAncestor, Axis::kAncestorOrSelf,
                      Axis::kFollowing, Axis::kPreceding, Axis::kChild}) {
      JoinStats stats;
      (void)NaiveAxisStep(*doc, ctx, axis, &stats);
      EXPECT_EQ(NaiveCandidateCount(*doc, ctx, axis),
                stats.candidates_produced)
          << "axis " << AxisName(axis) << " seed " << seed;
    }
  }
}

TEST(NaiveTest, RejectsBadContext) {
  auto doc = LoadPaperExample();
  EXPECT_FALSE(NaiveAxisStep(*doc, {5, 2}, Axis::kDescendant).ok());
  EXPECT_FALSE(NaiveAxisStep(*doc, {77}, Axis::kDescendant).ok());
}

// --- SQL plan ----------------------------------------------------------------

TEST(SqlPlanTest, MatchesStaircaseOnStaircaseAxes) {
  for (uint64_t seed : {11u, 12u}) {
    auto doc = RandomDocument(seed);
    SqlPlanEvaluator sql(*doc);
    Rng rng(seed);
    NodeSequence ctx = RandomContext(rng, *doc, 20);
    for (Axis axis : {Axis::kDescendant, Axis::kAncestor, Axis::kFollowing,
                      Axis::kPreceding}) {
      auto expected = StaircaseJoin(*doc, ctx, axis).value();
      for (bool window : {true, false}) {
        SqlPlanOptions opt;
        opt.window_predicate = window;
        auto got = sql.AxisStep(ctx, axis, kNoTag, opt);
        ASSERT_TRUE(got.ok()) << got.status();
        EXPECT_EQ(got.value(), expected)
            << AxisName(axis) << " window=" << window;
      }
    }
  }
}

TEST(SqlPlanTest, EarlyNameTestMatchesLateFilter) {
  auto doc = RandomDocument(21);
  SqlPlanEvaluator sql(*doc);
  TagId tag = doc->tags().Lookup("t1").value();
  ASSERT_NE(tag, kNoTag);
  Rng rng(4);
  NodeSequence ctx = RandomContext(rng, *doc, 20);
  auto with_tag = sql.AxisStep(ctx, Axis::kDescendant, tag).value();
  // Late filter: full step then tag selection.
  NodeSequence late;
  NodeSequence unfiltered = sql.AxisStep(ctx, Axis::kDescendant, kNoTag)
                                .value();
  for (NodeId v : unfiltered) {
    if (doc->kind(v) == NodeKind::kElement && doc->tag(v) == tag) {
      late.push_back(v);
    }
  }
  EXPECT_EQ(with_tag, late);
}

TEST(SqlPlanTest, WindowPredicateReducesEntriesScanned) {
  auto doc = RandomDocument(31, {.target_nodes = 800});
  SqlPlanEvaluator sql(*doc);
  // A small subtree deep in the document: without the window predicate the
  // scan runs to the end of the table.
  NodeSequence ctx = {static_cast<NodeId>(doc->size() / 2)};
  JoinStats with_window, without_window;
  SqlPlanOptions on, off;
  off.window_predicate = false;
  (void)sql.AxisStep(ctx, Axis::kDescendant, kNoTag, on, &with_window);
  (void)sql.AxisStep(ctx, Axis::kDescendant, kNoTag, off, &without_window);
  EXPECT_LT(with_window.index_entries_scanned,
            without_window.index_entries_scanned);
}

TEST(SqlPlanTest, ProducesDuplicatesOnNestedContexts) {
  auto doc = LoadPaperExample();
  // e (pre 4) and f (pre 5): descendants overlap; the plan generates
  // duplicates, the unique operator removes them.
  JoinStats stats;
  NodeSequence r =
      sj::SqlPlanEvaluator(*doc).AxisStep({4, 5}, Axis::kDescendant, kNoTag,
                                          {}, &stats)
          .value();
  EXPECT_EQ(r, (NodeSequence{5, 6, 7, 8, 9}));
  EXPECT_GT(stats.duplicates_removed, 0u);
  // The staircase join produces none on the same input.
  JoinStats sc;
  (void)StaircaseJoin(*doc, {4, 5}, Axis::kDescendant, {}, &sc);
  EXPECT_EQ(sc.duplicates_removed, 0u);
}

TEST(SqlPlanTest, FilterHasDescendant) {
  auto doc = LoadPaperExample();
  SqlPlanEvaluator sql(*doc);
  TagId g = doc->tags().Lookup("g").value();
  // Nodes with a descendant named g: a (0), e (4), f (5).
  NodeSequence all_elements;
  for (NodeId v = 0; v < doc->size(); ++v) all_elements.push_back(v);
  EXPECT_EQ(sql.FilterHasDescendant(all_elements, g).value(),
            (NodeSequence{0, 4, 5}));
}

TEST(SqlPlanTest, SemijoinStepMatchesStaircasePlusFilter) {
  for (uint64_t seed : {51u, 52u}) {
    auto doc = RandomDocument(seed);
    SqlPlanEvaluator sql(*doc);
    TagIndex index(*doc);
    Rng rng(seed);
    NodeSequence ctx = RandomContext(rng, *doc, 20);
    for (Axis axis : {Axis::kDescendant, Axis::kDescendantOrSelf,
                      Axis::kAncestor, Axis::kAncestorOrSelf}) {
      for (const char* tag_name : {"t0", "t1"}) {
        std::optional<TagId> tag = doc->tags().Lookup(tag_name);
        if (!tag.has_value()) continue;
        JoinStats stats;
        auto got = sql.SemijoinStep(ctx, axis, *tag, &stats);
        ASSERT_TRUE(got.ok()) << got.status();
        auto expected =
            StaircaseJoinView(*doc, index.view(*tag), ctx, axis).value();
        EXPECT_EQ(got.value(), expected)
            << AxisName(axis) << " " << tag_name << " seed " << seed;
        // The semijoin never produces duplicates; the outer scan covers
        // the whole index.
        EXPECT_EQ(stats.duplicates_removed, 0u);
        EXPECT_GE(stats.index_entries_scanned + 1, sql.index().size());
      }
    }
  }
}

TEST(SqlPlanTest, SemijoinStepNoTagEqualsStaircase) {
  auto doc = RandomDocument(53);
  SqlPlanEvaluator sql(*doc);
  Rng rng(5);
  NodeSequence ctx = RandomContext(rng, *doc, 25);
  for (Axis axis : {Axis::kDescendant, Axis::kAncestor}) {
    EXPECT_EQ(sql.SemijoinStep(ctx, axis, kNoTag).value(),
              StaircaseJoin(*doc, ctx, axis).value())
        << AxisName(axis);
  }
}

TEST(SqlPlanTest, SemijoinRejectsUnsupportedAxis) {
  auto doc = LoadPaperExample();
  SqlPlanEvaluator sql(*doc);
  EXPECT_EQ(sql.SemijoinStep({0}, Axis::kFollowing, kNoTag).status().code(),
            StatusCode::kUnsupported);
}

TEST(SqlPlanTest, UnsupportedAxis) {
  auto doc = LoadPaperExample();
  SqlPlanEvaluator sql(*doc);
  EXPECT_EQ(sql.AxisStep({0}, Axis::kChild, kNoTag).status().code(),
            StatusCode::kUnsupported);
}

// --- MPMGJN ------------------------------------------------------------------

TEST(MpmgjnTest, MatchesStaircaseJoinSemantics) {
  for (uint64_t seed : {41u, 42u}) {
    auto doc = RandomDocument(seed);
    Rng rng(seed);
    NodeSequence ctx = RandomContext(rng, *doc, 20);
    // ctx/descendant over all element nodes with tag t0 as candidates.
    TagView view = BuildTagView(*doc, doc->tags().Lookup("t0").value());
    JoinList ancestors = MakeJoinList(*doc, ctx);
    JoinList candidates;
    candidates.pre = view.pre;
    candidates.post = view.post;
    auto mp = MpmgjnDescendants(ancestors, candidates, doc->height());
    ASSERT_TRUE(mp.ok());
    auto sc = StaircaseJoinView(*doc, view, ctx, Axis::kDescendant).value();
    EXPECT_EQ(mp.value(), sc) << "seed " << seed;

    auto mp_anc = MpmgjnAncestors(candidates, ancestors, doc->height());
    ASSERT_TRUE(mp_anc.ok());
    auto sc_anc = StaircaseJoinView(*doc, view, ctx, Axis::kAncestor).value();
    EXPECT_EQ(mp_anc.value(), sc_anc) << "seed " << seed;
  }
}

TEST(MpmgjnTest, TouchesMoreNodesThanStaircaseOnNestedInput) {
  // Deep nesting: each ancestor candidate re-scans its subtree's entries.
  auto doc = LoadDocument(
      "<t0><t0><t0><t0><t0><x/><x/><x/></t0></t0></t0></t0></t0>")
                 .value();
  NodeSequence all;
  for (NodeId v = 0; v < doc->size(); ++v) all.push_back(v);
  JoinList a = MakeJoinList(*doc, PruneContext(*doc, all, Axis::kDescendant));
  // Nested candidates deliberately NOT pruned: the tree-unaware algorithm
  // takes every t0 as an interval.
  TagView t0 = BuildTagView(*doc, doc->tags().Lookup("t0").value());
  JoinList nested;
  nested.pre = t0.pre;
  nested.post = t0.post;
  JoinStats mp_stats;
  (void)MpmgjnDescendants(nested, MakeJoinList(*doc, all), doc->height(),
                          &mp_stats);
  JoinStats sc_stats;
  (void)StaircaseJoin(*doc, t0.pre, Axis::kDescendant,
                      StaircaseOptions{.skip_mode = SkipMode::kEstimated},
                      &sc_stats);
  EXPECT_GT(mp_stats.nodes_scanned, sc_stats.nodes_accessed());
}

TEST(MpmgjnTest, RejectsUnsortedInput) {
  JoinList bad;
  bad.pre = {3, 1};
  bad.post = {0, 1};
  EXPECT_FALSE(MpmgjnDescendants(bad, bad, 4).ok());
  JoinList mismatched;
  mismatched.pre = {1};
  EXPECT_FALSE(MpmgjnDescendants(mismatched, mismatched, 4).ok());
}

TEST(MpmgjnTest, EmptyInputs) {
  JoinList empty;
  auto r = MpmgjnDescendants(empty, empty, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

}  // namespace
}  // namespace sj
