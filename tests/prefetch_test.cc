// Prefetch, tested bottom-up: SimulatedDisk::ReadBatch charges one
// request for many pages, BufferPool::Prefetch is strictly best-effort
// (wrong, duplicate, out-of-range or degenerate hints cost at most the
// absent pages named -- never an error, never a wrong result), and a
// Database opened with prefetch produces node-for-node the results of
// one without, on all three backends, while a cold pool faults no more
// pages than the synchronous baseline.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "api/database.h"
#include "storage/buffer_pool.h"
#include "xmlgen/xmark.h"

namespace sj {
namespace {

using storage::BufferPool;
using storage::Page;
using storage::PageId;
using storage::SimulatedDisk;

TEST(ReadBatchTest, OneRequestManyPages) {
  SimulatedDisk disk;
  PageId p0 = disk.Allocate(), p1 = disk.Allocate(), p2 = disk.Allocate();
  Page img;
  std::memset(img.bytes, 7, sizeof img.bytes);
  ASSERT_TRUE(disk.Write(p1, img).ok());

  Page a, b, c;
  const PageId ids[] = {p0, p1, p2};
  Page* outs[] = {&a, &b, &c};
  ASSERT_TRUE(disk.ReadBatch(ids, outs).ok());
  EXPECT_EQ(disk.reads(), 3u);        // every page is physical I/O
  EXPECT_EQ(disk.batch_reads(), 1u);  // ...but one device request
  EXPECT_EQ(b.bytes[0], 7);           // the right bytes land in the right out

  const PageId bad[] = {p0, 9999};
  Page* bad_outs[] = {&a, &b};
  EXPECT_FALSE(disk.ReadBatch(bad, bad_outs).ok());
  EXPECT_EQ(disk.reads(), 3u);  // a rejected batch reads nothing
}

TEST(PrefetchTest, DisabledPoolIgnoresHints) {
  SimulatedDisk disk;
  PageId p0 = disk.Allocate(), p1 = disk.Allocate();
  BufferPool pool(&disk, 4);  // prefetch defaults to off
  const PageId ids[] = {p0, p1};
  pool.Prefetch(ids);
  EXPECT_EQ(pool.stats().faults, 0u);
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_EQ(disk.reads(), 0u);
}

TEST(PrefetchTest, BatchedFaultsLandAsHits) {
  SimulatedDisk disk;
  PageId p0 = disk.Allocate(), p1 = disk.Allocate();
  BufferPool pool(&disk, 4);
  pool.set_prefetch_enabled(true);
  const PageId ids[] = {p0, p1};
  pool.Prefetch(ids);

  EXPECT_EQ(pool.stats().faults, 2u);
  EXPECT_EQ(pool.stats().prefetched, 2u);
  EXPECT_EQ(disk.batch_reads(), 1u);
  EXPECT_EQ(pool.resident_pages(), 2u);

  // The pins the cursor issues right after the hint are hits, not faults.
  ASSERT_TRUE(pool.Pin(p0).ok());
  ASSERT_TRUE(pool.Pin(p1).ok());
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(pool.stats().faults, 2u);
  ASSERT_TRUE(pool.Unpin(p0).ok());
  ASSERT_TRUE(pool.Unpin(p1).ok());
}

TEST(PrefetchTest, DegenerateSinglePageHintIsDropped) {
  SimulatedDisk disk;
  PageId p0 = disk.Allocate();
  disk.Allocate();
  BufferPool pool(&disk, 4);
  pool.set_prefetch_enabled(true);
  // A batch of one amortizes no seek: the hint is dropped and the page
  // faults on demand if and when the cursor actually reads it.
  const PageId ids[] = {p0};
  pool.Prefetch(ids);
  EXPECT_EQ(pool.stats().faults, 0u);
  EXPECT_EQ(disk.batch_reads(), 0u);
  EXPECT_EQ(pool.resident_pages(), 0u);
}

TEST(PrefetchTest, WrongHintsCostAtMostThePagesNamed) {
  SimulatedDisk disk;
  std::vector<PageId> pages;
  for (int i = 0; i < 6; ++i) pages.push_back(disk.Allocate());
  BufferPool pool(&disk, 8);
  pool.set_prefetch_enabled(true);

  // Make pages[0] resident (and pinned, so it could never be evicted).
  ASSERT_TRUE(pool.Pin(pages[0]).ok());
  ASSERT_EQ(pool.stats().faults, 1u);

  // A maximally wrong hint: a duplicate, an out-of-range id, a resident
  // page, and two genuinely absent pages the "cursor" never reads.
  const PageId ids[] = {pages[2], pages[2], 9999, pages[0], pages[3]};
  pool.Prefetch(ids);

  // Cost is exactly the absent pages named -- nothing else moved.
  EXPECT_EQ(pool.stats().faults, 3u);
  EXPECT_EQ(pool.stats().prefetched, 2u);
  EXPECT_EQ(pool.stats().evictions, 0u);
  EXPECT_EQ(disk.batch_reads(), 1u);

  // The pinned frame is untouched and correctness is unaffected: every
  // page still reads back fine.
  ASSERT_TRUE(pool.Unpin(pages[0]).ok());
  for (PageId p : pages) {
    auto frame = pool.Pin(p);
    ASSERT_TRUE(frame.ok()) << p;
    ASSERT_TRUE(pool.Unpin(p).ok());
  }
}

TEST(PrefetchTest, StaleHintsNeverEvictPinnedFrames) {
  SimulatedDisk disk;
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) pages.push_back(disk.Allocate());
  BufferPool pool(&disk, 2);  // tiny: hints contend with pinned frames
  pool.set_prefetch_enabled(true);
  ASSERT_TRUE(pool.Pin(pages[0]).ok());
  ASSERT_TRUE(pool.Pin(pages[1]).ok());

  // Every frame is pinned: the hint finds no replaceable frame and is
  // silently dropped rather than failing or evicting a pinned page.
  const PageId ids[] = {pages[4], pages[5]};
  pool.Prefetch(ids);
  EXPECT_EQ(pool.stats().prefetched, 0u);

  ASSERT_TRUE(pool.Unpin(pages[0]).ok());
  ASSERT_TRUE(pool.Unpin(pages[1]).ok());
}

class PrefetchDatabaseTest : public ::testing::Test {
 protected:
  static std::unique_ptr<Database> OpenDb(bool prefetch) {
    xmlgen::XMarkOptions gen;
    gen.size_mb = 0.5;
    gen.rich_text = false;
    DatabaseOptions open;
    open.build.store_values = false;
    open.prefetch = prefetch;
    // The generator is deterministic, so the prefetch-on and prefetch-off
    // databases hold the exact same document.
    return std::move(Database::FromXmark(gen, open)).value();
  }
};

constexpr const char* kEquivalenceQueries[] = {
    "/descendant::open_auction/child::bidder/child::increase",
    "/descendant::person/attribute::id",
    "/descendant::profile/descendant::education",
    "/descendant::increase/ancestor::bidder",
    "/descendant::item[child::name] | /descendant::keyword",
};

TEST_F(PrefetchDatabaseTest, ThreeBackendResultsMatchWithoutPrefetch) {
  auto off = OpenDb(false);
  auto on = OpenDb(true);
  ASSERT_TRUE(on->buffer_pool()->prefetch_enabled());
  for (StorageBackend backend :
       {StorageBackend::kMemory, StorageBackend::kPaged,
        StorageBackend::kCompressed}) {
    SessionOptions o;
    o.backend = backend;
    Session s_off = std::move(off->CreateSession(o)).value();
    Session s_on = std::move(on->CreateSession(o)).value();
    for (const char* q : kEquivalenceQueries) {
      auto r_off = s_off.Run(q);
      auto r_on = s_on.Run(q);
      ASSERT_TRUE(r_off.ok()) << q << ": " << r_off.status();
      ASSERT_TRUE(r_on.ok()) << q << ": " << r_on.status();
      ASSERT_GT(r_off.value().nodes.size(), 0u) << q;
      EXPECT_EQ(r_on.value().nodes, r_off.value().nodes) << q;
      EXPECT_EQ(r_on.value().totals.result_size,
                r_off.value().totals.result_size)
          << q;
    }
  }
}

TEST_F(PrefetchDatabaseTest, ColdPoolFaultsWithPrefetchNoWorse) {
  // What a cold run PAYS for is what must not grow: the demand faults it
  // waits on one seek at a time, and the total device requests (demand
  // faults + batched prefetch requests). Raw fault counts may exceed the
  // synchronous baseline by the readahead pages the hints name -- that is
  // the bounded cost Prefetch's contract allows -- so the assertions
  // below pin the requests, the waits, and that bound.
  auto off = OpenDb(false);
  auto on = OpenDb(true);
  bool anything_prefetched = false;
  uint64_t total_requests_on = 0, total_faults_off = 0;
  for (StorageBackend backend :
       {StorageBackend::kPaged, StorageBackend::kCompressed}) {
    for (const char* q : kEquivalenceQueries) {
      // Private pools give each run a genuinely cold cache.
      SessionOptions o;
      o.backend = backend;
      o.private_pool_pages = 64;
      Session s_off = std::move(off->CreateSession(o)).value();
      Session s_on = std::move(on->CreateSession(o)).value();
      const uint64_t batches_before = on->disk()->batch_reads();
      ASSERT_TRUE(s_off.Run(q).ok()) << q;
      ASSERT_TRUE(s_on.Run(q).ok()) << q;
      const storage::PoolStats cold_off = s_off.pool()->stats();
      const storage::PoolStats cold_on = s_on.pool()->stats();
      const uint64_t batches = on->disk()->batch_reads() - batches_before;
      const uint64_t demand = cold_on.faults - cold_on.prefetched;

      const char* label =
          backend == StorageBackend::kPaged ? "paged" : "compressed";
      // Demand faults -- the reads the query blocks on -- never grow.
      EXPECT_LE(demand, cold_off.faults) << label << " " << q;
      // The over-read is bounded by what the hints named: total faults
      // exceed the baseline by at most the prefetched pages.
      EXPECT_LE(cold_on.faults, cold_off.faults + cold_on.prefetched)
          << label << " " << q;
      anything_prefetched |= cold_on.prefetched > 0;
      total_requests_on += demand + batches;
      total_faults_off += cold_off.faults;
    }
  }
  // The workload exercised the hint path for real.
  EXPECT_TRUE(anything_prefetched);
  // Device requests shrink over the workload: a batch usually replaces
  // two or more synchronous faults. (Per query a batch may read a
  // readahead page the baseline never touched, so this claim -- like the
  // bench's wall-clock gate -- holds in aggregate, not row by row.)
  EXPECT_LT(total_requests_on, total_faults_off);
}

}  // namespace
}  // namespace sj
