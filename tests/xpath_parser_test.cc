// Tests for the XPath lexer/parser: grammar coverage, abbreviations,
// canonical unparsing, and error reporting.

#include <gtest/gtest.h>

#include "xpath/parser.h"

namespace sj::xpath {
namespace {

LocationPath MustParse(std::string_view s) {
  auto r = ParseXPath(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.status();
  return r.ok() ? r.value() : LocationPath{};
}

TEST(XPathParserTest, PaperQueryQ1) {
  LocationPath p = MustParse("/descendant::profile/descendant::education");
  EXPECT_TRUE(p.absolute);
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendant);
  EXPECT_EQ(p.steps[0].test.kind, NodeTestKind::kName);
  EXPECT_EQ(p.steps[0].test.name, "profile");
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendant);
  EXPECT_EQ(p.steps[1].test.name, "education");
}

TEST(XPathParserTest, PaperQueryQ2Rewrite) {
  LocationPath p = MustParse("/descendant::bidder[descendant::increase]");
  ASSERT_EQ(p.steps.size(), 1u);
  ASSERT_EQ(p.steps[0].predicates.size(), 1u);
  const Predicate& pred = p.steps[0].predicates[0];
  ASSERT_EQ(pred.kind, Predicate::Kind::kExists);
  ASSERT_NE(pred.path, nullptr);
  EXPECT_FALSE(pred.path->absolute);
  ASSERT_EQ(pred.path->steps.size(), 1u);
  EXPECT_EQ(pred.path->steps[0].axis, Axis::kDescendant);
  EXPECT_EQ(pred.path->steps[0].test.name, "increase");
}

TEST(XPathParserTest, AllAxesParse) {
  for (Axis axis :
       {Axis::kAncestor, Axis::kAncestorOrSelf, Axis::kAttribute,
        Axis::kChild, Axis::kDescendant, Axis::kDescendantOrSelf,
        Axis::kFollowing, Axis::kFollowingSibling, Axis::kParent,
        Axis::kPreceding, Axis::kPrecedingSibling, Axis::kSelf}) {
    std::string q = std::string(AxisName(axis)) + "::node()";
    LocationPath p = MustParse(q);
    ASSERT_EQ(p.steps.size(), 1u) << q;
    EXPECT_EQ(p.steps[0].axis, axis) << q;
  }
}

TEST(XPathParserTest, DefaultAxisIsChild) {
  LocationPath p = MustParse("site/people");
  EXPECT_FALSE(p.absolute);
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[1].axis, Axis::kChild);
}

TEST(XPathParserTest, AttributeAbbreviation) {
  LocationPath p = MustParse("item/@id");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].axis, Axis::kAttribute);
  EXPECT_EQ(p.steps[1].test.name, "id");
}

TEST(XPathParserTest, DotAndDotDot) {
  LocationPath p = MustParse("./..");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kSelf);
  EXPECT_EQ(p.steps[0].test.kind, NodeTestKind::kAnyNode);
  EXPECT_EQ(p.steps[1].axis, Axis::kParent);
}

TEST(XPathParserTest, DoubleSlashExpansion) {
  LocationPath p = MustParse("//person//name");
  ASSERT_EQ(p.steps.size(), 4u);
  EXPECT_TRUE(p.absolute);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(p.steps[0].test.kind, NodeTestKind::kAnyNode);
  EXPECT_EQ(p.steps[1].test.name, "person");
  EXPECT_EQ(p.steps[2].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(p.steps[3].test.name, "name");
}

TEST(XPathParserTest, KindTests) {
  EXPECT_EQ(MustParse("text()").steps[0].test.kind, NodeTestKind::kText);
  EXPECT_EQ(MustParse("comment()").steps[0].test.kind,
            NodeTestKind::kComment);
  EXPECT_EQ(MustParse("node()").steps[0].test.kind, NodeTestKind::kAnyNode);
  EXPECT_EQ(MustParse("*").steps[0].test.kind, NodeTestKind::kAnyName);
  Step pi = MustParse("processing-instruction()").steps[0];
  EXPECT_EQ(pi.test.kind, NodeTestKind::kPi);
  EXPECT_EQ(pi.test.name, "");
  Step pi2 = MustParse("processing-instruction(php)").steps[0];
  EXPECT_EQ(pi2.test.name, "php");
}

TEST(XPathParserTest, RootOnly) {
  LocationPath p = MustParse("/");
  EXPECT_TRUE(p.absolute);
  EXPECT_TRUE(p.steps.empty());
}

TEST(XPathParserTest, ChainedPredicates) {
  LocationPath p = MustParse("person[profile][address]");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].predicates.size(), 2u);
}

TEST(XPathParserTest, NestedPredicates) {
  LocationPath p = MustParse("a[b[c]]");
  ASSERT_EQ(p.steps[0].predicates.size(), 1u);
  ASSERT_EQ(p.steps[0].predicates[0].path->steps[0].predicates.size(), 1u);
}

TEST(XPathParserTest, AbsolutePredicate) {
  LocationPath p = MustParse("a[/site]");
  EXPECT_TRUE(p.steps[0].predicates[0].path->absolute);
}

TEST(XPathParserTest, WhitespaceAroundSeparators) {
  LocationPath p = MustParse(" /descendant::profile / child::* ");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].axis, Axis::kChild);
  // Whitespace inside an axis specifier is not part of the grammar.
  EXPECT_FALSE(ParseXPath("/descendant :: profile").ok());
}

TEST(XPathParserTest, NamespacePrefixKeptInName) {
  LocationPath p = MustParse("xs:element");
  EXPECT_EQ(p.steps[0].test.name, "xs:element");
}

TEST(XPathParserTest, RoundTripCanonicalForm) {
  for (const char* q :
       {"/descendant::profile/descendant::education",
        "/descendant::bidder[descendant::increase]",
        "child::site/child::people/attribute::id",
        "self::node()/parent::node()",
        "descendant-or-self::node()/child::name",
        "following::*", "preceding::text()",
        "child::a[child::b][descendant::c]"}) {
    LocationPath p1 = MustParse(q);
    std::string canonical = ToString(p1);
    LocationPath p2 = MustParse(canonical);
    EXPECT_EQ(ToString(p2), canonical) << q;
  }
}

TEST(XPathParserTest, AbbreviationsExpandToCanonical) {
  EXPECT_EQ(ToString(MustParse("//a/@b")),
            "/descendant-or-self::node()/child::a/attribute::b");
  EXPECT_EQ(ToString(MustParse(".")), "self::node()");
  EXPECT_EQ(ToString(MustParse("..")), "parent::node()");
}

TEST(XPathParserTest, Errors) {
  for (const char* q : {"", "/descendant::", "a/", "a[", "a[]", "a]",
                        "child::123", "a[b", "processing-instruction(",
                        "a b", "@", "descendant::profile extra"}) {
    auto r = ParseXPath(q);
    EXPECT_FALSE(r.ok()) << "should reject: '" << q << "'";
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError) << q;
    }
  }
}

}  // namespace
}  // namespace sj::xpath
