// Backend equivalence for the set-at-a-time axis cursors: the ONE set of
// non-staircase axis kernels (core/axis_impl.h), instantiated with the
// in-memory cursor and with the buffer-pool cursor, must return
// byte-identical duplicate-free document-order sequences for every
// cursor axis -- matching both the per-context naive baseline and the
// region-definition oracle -- and the paged instantiation must charge
// its parent/tag/kind reads to the BufferPool. Also drives whole queries
// that mix staircase and non-staircase steps end-to-end on the paged
// backend through the Database/Session facade.

#include <gtest/gtest.h>

#include <cstring>

#include "api/database.h"
#include "baselines/naive.h"
#include "bat/operators.h"
#include "core/axis_step.h"
#include "storage/compressed_doc.h"
#include "storage/paged_accessor.h"
#include "storage/paged_doc.h"
#include "test_util.h"
#include "util/rng.h"

namespace sj::storage {
namespace {

using sj::testing::LoadPaperExample;
using sj::testing::RandomContext;
using sj::testing::RandomDocOptions;
using sj::testing::RandomDocument;
using sj::testing::RegionOracle;

constexpr Axis kCursorAxes[] = {
    Axis::kChild,          Axis::kParent,           Axis::kAttribute,
    Axis::kFollowingSibling, Axis::kPrecedingSibling, Axis::kSelf,
};

bool BytesEqual(const NodeSequence& a, const NodeSequence& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(NodeId)) == 0);
}

/// Context union its ancestor closure: nested context nodes are the
/// stress case of the frame-merge kernels (sibling regions interleave).
NodeSequence WithAncestors(const DocTable& doc, const NodeSequence& ctx) {
  NodeSequence all = ctx;
  for (NodeId c : ctx) {
    for (NodeId p = doc.parent(c); p != kNilNode; p = doc.parent(p)) {
      all.push_back(p);
    }
  }
  return bat::SortUnique(std::move(all));
}

/// Independent filter oracle for the folded node test.
NodeSequence FilterOracle(const DocTable& doc, const NodeSequence& nodes,
                          const AxisNodeTest& test) {
  if (test.accept_all) return nodes;
  NodeSequence out;
  for (NodeId v : nodes) {
    if (static_cast<uint8_t>(doc.kind(v)) != test.kind) continue;
    if (test.match_tag && doc.tag(v) != test.tag) continue;
    out.push_back(v);
  }
  return out;
}

TEST(AxisCursorTest, MatchesBothOraclesOnPaperExample) {
  auto doc = LoadPaperExample();
  const NodeSequence contexts[] = {
      {0}, {0, 1, 2}, {1, 4}, {2, 6, 9}, {0, 4, 5, 8},
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
  };
  for (const NodeSequence& ctx : contexts) {
    for (Axis axis : kCursorAxes) {
      JoinStats stats;
      auto got = AxisCursorStep(*doc, ctx, axis, {}, &stats);
      ASSERT_TRUE(got.ok()) << AxisName(axis) << ": " << got.status();
      auto naive = NaiveAxisStep(*doc, ctx, axis);
      ASSERT_TRUE(naive.ok());
      EXPECT_TRUE(BytesEqual(got.value(), naive.value()))
          << AxisName(axis) << " ctx size " << ctx.size();
      EXPECT_TRUE(BytesEqual(got.value(), RegionOracle(*doc, ctx, axis)))
          << AxisName(axis);
      EXPECT_TRUE(IsDocumentOrder(got.value())) << AxisName(axis);
      EXPECT_EQ(stats.result_size, got.value().size());
    }
  }
}

/// Axis x tree shape x context pattern x backend: the satellite matrix.
/// Tree shapes vary fanout/attribute/text density; context patterns are
/// sparse, dense, and ancestor-closed (nested); both backends must be
/// byte-identical to each other and to the two independent oracles.
class AxisBackendEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(AxisBackendEquivalenceTest, CursorStepsAreByteIdenticalAcrossBackends) {
  const uint64_t seed = GetParam();
  const RandomDocOptions shapes[] = {
      {.target_nodes = 20000},                       // default mixed tree
      {.target_nodes = 20000, .max_children = 12},   // wide
      {.target_nodes = 20000, .attribute_percent = 60, .text_percent = 10},
  };  // the deep shape is deterministic: see DeepChainsStressTheFrameMerge
  size_t exercised = 0;
  for (size_t shape = 0; shape < std::size(shapes); ++shape) {
    auto doc = RandomDocument(seed, shapes[shape]);
    // The generator's top-level fanout is seed-sensitive; a degenerate
    // tree exercises nothing, so skip it (coverage asserted below).
    if (doc->size() < 500) continue;
    ++exercised;
    SimulatedDisk disk;
    auto paged = PagedDocTable::Create(*doc, &disk).value();
    auto compressed = CompressedDocTable::Create(*doc, &disk).value();
    BufferPool pool(&disk, 16);
    Rng rng(seed * 131 + shape);
    NodeSequence sparse = RandomContext(rng, *doc, 2);
    NodeSequence dense = RandomContext(rng, *doc, 25);
    NodeSequence nested = WithAncestors(*doc, sparse);
    for (const NodeSequence* ctx : {&sparse, &dense, &nested}) {
      if (ctx->empty()) continue;
      for (Axis axis : kCursorAxes) {
        JoinStats mem_stats, io_stats, zip_stats;
        auto expected = AxisCursorStep(*doc, *ctx, axis, {}, &mem_stats);
        ASSERT_TRUE(expected.ok()) << expected.status();
        auto got = PagedAxisCursorStep(*paged, &pool, *ctx, axis, {},
                                       &io_stats);
        ASSERT_TRUE(got.ok()) << got.status();
        EXPECT_TRUE(BytesEqual(got.value(), expected.value()))
            << AxisName(axis) << " seed " << seed << " shape " << shape;
        auto zip = CompressedAxisCursorStep(*compressed, &pool, *ctx, axis,
                                            {}, &zip_stats);
        ASSERT_TRUE(zip.ok()) << zip.status();
        EXPECT_TRUE(BytesEqual(zip.value(), expected.value()))
            << "compressed " << AxisName(axis) << " seed " << seed
            << " shape " << shape;
        // The unified kernels touch the same nodes on every backend.
        EXPECT_EQ(io_stats.nodes_scanned, mem_stats.nodes_scanned);
        EXPECT_EQ(io_stats.nodes_skipped, mem_stats.nodes_skipped);
        EXPECT_EQ(io_stats.pruned_context_size,
                  mem_stats.pruned_context_size);
        EXPECT_EQ(zip_stats.nodes_scanned, mem_stats.nodes_scanned);
        EXPECT_EQ(zip_stats.nodes_skipped, mem_stats.nodes_skipped);
        EXPECT_EQ(zip_stats.pruned_context_size,
                  mem_stats.pruned_context_size);
        // And both agree with the two independent oracles.
        auto naive = NaiveAxisStep(*doc, *ctx, axis);
        ASSERT_TRUE(naive.ok());
        EXPECT_TRUE(BytesEqual(expected.value(), naive.value()))
            << AxisName(axis) << " seed " << seed << " shape " << shape;
        EXPECT_TRUE(
            BytesEqual(expected.value(), RegionOracle(*doc, *ctx, axis)))
            << AxisName(axis) << " seed " << seed << " shape " << shape;
        EXPECT_TRUE(IsDocumentOrder(expected.value())) << AxisName(axis);
      }
    }
  }
  EXPECT_GE(exercised, 2u) << "seed " << seed << " produced only "
                           << "degenerate trees";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxisBackendEquivalenceTest,
                         ::testing::Values(5, 7, 17, 21, 37));

TEST(AxisCursorTest, DeepChainsStressTheFrameMerge) {
  // A deterministic deep tree: a 120-deep chain (the level column is a
  // uint8, bounding document height) where every chain node also has a
  // leaf sibling pair: sibling regions nest 120 deep, the worst case for
  // the frame-merge stack.
  std::string xml;
  const int depth = 120;
  for (int i = 0; i < depth; ++i) xml += "<d><l/>";
  xml += "<x/>";
  for (int i = 0; i < depth; ++i) xml += "<r/></d>";
  auto doc = LoadDocument(xml).value();
  ASSERT_GT(doc->size(), 2u * static_cast<unsigned>(depth));
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  BufferPool pool(&disk, 8);
  // Context: every chain node plus every third leaf (ancestor-nested by
  // construction).
  NodeSequence ctx;
  for (NodeId v = 0; v < doc->size(); v += (v % 3 == 0 ? 1 : 2)) {
    ctx.push_back(v);
  }
  ctx = bat::SortUnique(std::move(ctx));
  auto compressed = CompressedDocTable::Create(*doc, &disk).value();
  for (Axis axis : kCursorAxes) {
    auto expected = NaiveAxisStep(*doc, ctx, axis);
    ASSERT_TRUE(expected.ok());
    auto mem = AxisCursorStep(*doc, ctx, axis);
    ASSERT_TRUE(mem.ok()) << mem.status();
    auto io = PagedAxisCursorStep(*paged, &pool, ctx, axis);
    ASSERT_TRUE(io.ok()) << io.status();
    auto zip = CompressedAxisCursorStep(*compressed, &pool, ctx, axis);
    ASSERT_TRUE(zip.ok()) << zip.status();
    EXPECT_TRUE(BytesEqual(mem.value(), expected.value())) << AxisName(axis);
    EXPECT_TRUE(BytesEqual(io.value(), expected.value())) << AxisName(axis);
    EXPECT_TRUE(BytesEqual(zip.value(), expected.value())) << AxisName(axis);
    EXPECT_TRUE(BytesEqual(mem.value(), RegionOracle(*doc, ctx, axis)))
        << AxisName(axis);
  }
}

TEST(AxisCursorTest, FoldedNodeTestMatchesPostFiltering) {
  auto doc = RandomDocument(19, {.target_nodes = 6000,
                                 .attribute_percent = 40});
  Rng rng(7);
  NodeSequence ctx = RandomContext(rng, *doc, 20);
  ASSERT_FALSE(ctx.empty());
  std::optional<TagId> t1 = doc->tags().Lookup("t1");
  ASSERT_TRUE(t1.has_value());
  const AxisNodeTest tests[] = {
      AxisNodeTest{},
      AxisNodeTest::OfKind(NodeKind::kElement),
      AxisNodeTest::OfKind(NodeKind::kText),
      AxisNodeTest::OfKindAndTag(NodeKind::kElement, *t1),
      AxisNodeTest::OfKindAndTag(NodeKind::kAttribute, *t1),
  };
  for (Axis axis : kCursorAxes) {
    for (const AxisNodeTest& test : tests) {
      auto got = AxisCursorStep(*doc, ctx, axis, test);
      ASSERT_TRUE(got.ok()) << got.status();
      auto raw = NaiveAxisStep(*doc, ctx, axis);
      ASSERT_TRUE(raw.ok());
      EXPECT_TRUE(
          BytesEqual(got.value(), FilterOracle(*doc, raw.value(), test)))
          << AxisName(axis);
    }
  }
}

TEST(AxisCursorTest, StatsKeepNaiveParityAndAvoidDuplicates) {
  auto doc = RandomDocument(9, {.target_nodes = 8000});
  Rng rng(3);
  // A dense context maximizes same-parent overlap: the naive plan pays
  // duplicate elimination, the cursor kernels never produce duplicates.
  NodeSequence ctx = RandomContext(rng, *doc, 40);
  bool saw_sibling_duplicates = false;
  for (Axis axis : kCursorAxes) {
    JoinStats cursor, naive;
    auto got = AxisCursorStep(*doc, ctx, axis, {}, &cursor);
    auto base = NaiveAxisStep(*doc, ctx, axis, &naive);
    ASSERT_TRUE(got.ok() && base.ok()) << AxisName(axis);
    EXPECT_EQ(cursor.result_size, naive.result_size) << AxisName(axis);
    EXPECT_EQ(cursor.context_size, naive.context_size) << AxisName(axis);
    EXPECT_TRUE(IsDocumentOrder(got.value())) << AxisName(axis);
    // Covered-context pruning never scans more partitions than context
    // nodes.
    EXPECT_LE(cursor.pruned_context_size, cursor.context_size)
        << AxisName(axis);
    if ((axis == Axis::kFollowingSibling ||
         axis == Axis::kPrecedingSibling) &&
        naive.duplicates_removed > 0) {
      saw_sibling_duplicates = true;
    }
  }
  // The experiment is only meaningful if the naive plan actually paid
  // for duplicates somewhere.
  EXPECT_TRUE(saw_sibling_duplicates);
}

TEST(PagedAxisCursorTest, ColdPoolStepsChargeFaults) {
  auto doc = RandomDocument(7, {.target_nodes = 30000,
                                .attribute_percent = 40});
  ASSERT_GT(doc->size(), 10000u);
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  Rng rng(9);
  NodeSequence ctx = RandomContext(rng, *doc, 10);
  std::optional<TagId> t0 = doc->tags().Lookup("t0");
  ASSERT_TRUE(t0.has_value());
  for (Axis axis : kCursorAxes) {
    BufferPool pool(&disk, 16);
    // self with node() touches no column at all; fold a name test so
    // even that step must read kind/tag through the pool.
    AxisNodeTest test = AxisNodeTest::OfKindAndTag(
        axis == Axis::kAttribute ? NodeKind::kAttribute : NodeKind::kElement,
        *t0);
    auto r = PagedAxisCursorStep(*paged, &pool, ctx, axis, test);
    ASSERT_TRUE(r.ok()) << AxisName(axis) << ": " << r.status();
    EXPECT_GT(pool.stats().faults, 0u)
        << AxisName(axis) << " read no pages on a cold pool";
  }
}

TEST(CompressedAxisCursorTest, ColdPoolStepsChargeFaultsButFewerThanPaged) {
  auto doc = RandomDocument(7, {.target_nodes = 30000,
                                .attribute_percent = 40});
  ASSERT_GT(doc->size(), 10000u);
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  auto compressed = CompressedDocTable::Create(*doc, &disk).value();
  Rng rng(9);
  NodeSequence ctx = RandomContext(rng, *doc, 10);
  std::optional<TagId> t0 = doc->tags().Lookup("t0");
  ASSERT_TRUE(t0.has_value());
  for (Axis axis : kCursorAxes) {
    AxisNodeTest test = AxisNodeTest::OfKindAndTag(
        axis == Axis::kAttribute ? NodeKind::kAttribute : NodeKind::kElement,
        *t0);
    BufferPool paged_pool(&disk, 16);
    auto r = PagedAxisCursorStep(*paged, &paged_pool, ctx, axis, test);
    ASSERT_TRUE(r.ok()) << AxisName(axis) << ": " << r.status();
    BufferPool zip_pool(&disk, 16);
    auto z = CompressedAxisCursorStep(*compressed, &zip_pool, ctx, axis,
                                      test);
    ASSERT_TRUE(z.ok()) << AxisName(axis) << ": " << z.status();
    // Every step charges the pool -- and the compressed image never
    // needs more pages than the uncompressed one for the same reads.
    EXPECT_GT(zip_pool.stats().faults, 0u)
        << AxisName(axis) << " read no pages on a cold pool";
    EXPECT_LE(zip_pool.stats().faults, paged_pool.stats().faults)
        << AxisName(axis);
  }
}

TEST(PagedAxisCursorTest, SurfacesPoolExhaustion) {
  auto doc = RandomDocument(33, {.target_nodes = 500});
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  BufferPool pool(&disk, 1);
  ASSERT_TRUE(pool.Pin(paged->KindPage(0)).ok());  // starve the cursor
  auto r = PagedAxisCursorStep(*paged, &pool, {0}, Axis::kChild);
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(pool.Unpin(paged->KindPage(0)).ok());
}

TEST(PagedAxisCursorTest, TerminatesOnMidScanPoolExhaustion) {
  // The error contract: a failed backend returns 0 from every read and
  // the kernels must still terminate (the driver surfaces the sticky
  // status once). Pool of 3: the frame build holds post+level, the
  // merge scan pins kind, and the folded name test's tag pin is the
  // fourth -- it fails mid-scan, so subtree ends read as 0 and the
  // frame cursor must clamp forward instead of spinning.
  auto doc = LoadDocument("<a><b/><b/><b/><b/><b/><b/></a>").value();
  SimulatedDisk disk;
  auto paged = PagedDocTable::Create(*doc, &disk).value();
  BufferPool pool(&disk, 3);
  std::optional<TagId> b = doc->tags().Lookup("b");
  ASSERT_TRUE(b.has_value());
  auto r = PagedAxisCursorStep(
      *paged, &pool, {0}, Axis::kChild,
      AxisNodeTest::OfKindAndTag(NodeKind::kElement, *b));
  EXPECT_FALSE(r.ok());
}

TEST(PagedAxisCursorTest, StaleTagColumnPagesAreRejected) {
  // Identical structure (post/kind/level/parent), different tag column:
  // the extended DocColumnsDigest must tell the images apart, so a
  // paged table built from the wrong document is rejected when the
  // database adopts it (Database::FromParts) instead of silently serving
  // stale tag pages to the folded node tests.
  auto doc_b = LoadDocument("<a><b/><b/></a>").value();
  auto doc_c = LoadDocument("<a><c/><b/></a>").value();
  ASSERT_NE(DocColumnsDigest(*doc_b), DocColumnsDigest(*doc_c));
  auto disk = std::make_unique<SimulatedDisk>();
  auto paged_wrong = PagedDocTable::Create(*doc_c, disk.get()).value();
  auto spoofed = Database::FromParts(std::move(doc_b), nullptr,
                                     std::move(disk),
                                     std::move(paged_wrong), nullptr);
  EXPECT_FALSE(spoofed.ok());

  auto doc_b2 = LoadDocument("<a><b/><b/></a>").value();
  auto disk2 = std::make_unique<SimulatedDisk>();
  auto paged_right = PagedDocTable::Create(*doc_b2, disk2.get()).value();
  auto genuine = Database::FromParts(std::move(doc_b2), nullptr,
                                     std::move(disk2),
                                     std::move(paged_right), nullptr);
  ASSERT_TRUE(genuine.ok()) << genuine.status();
  SessionOptions paged_opt;
  paged_opt.backend = StorageBackend::kPaged;
  auto r = std::move(genuine.value()->CreateSession(paged_opt)).value()
               .Run("/child::b");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().nodes.size(), 2u);
}

TEST(PagedEvaluatorAxisTest, MixedAxisQueriesMatchMemoryAndChargeThePool) {
  auto db = Database::FromTable(RandomDocument(7, {.target_nodes = 60000,
                                                   .attribute_percent = 30}))
                .value();
  ASSERT_GT(db->doc().size(), 10000u);
  SessionOptions io_opt;
  io_opt.backend = StorageBackend::kPaged;
  io_opt.hints.pushdown = PushdownMode::kNever;  // faults come from the doc scan
  // This test pins the per-step axis-cursor paths; eligible name-test
  // runs would otherwise collapse into the twig join
  // (twig_join_test.cc covers that plan shape).
  io_opt.hints.twig = TwigMode::kNever;
  SessionOptions zip_opt = io_opt;
  zip_opt.backend = StorageBackend::kCompressed;
  Session mem = std::move(db->CreateSession()).value();
  Session io = std::move(db->CreateSession(io_opt)).value();
  Session zip = std::move(db->CreateSession(zip_opt)).value();
  storage::BufferPool* pool = db->buffer_pool();

  const char* queries[] = {
      "/descendant::t0/child::t1",
      "/descendant::t0/child::node()/parent::t0",
      "/descendant::t1/following-sibling::node()",
      "/descendant::t2/preceding-sibling::t1",
      "/descendant::t0/attribute::node()",
      "/descendant::t0/child::t1/descendant::t2",
      "/child::node()/child::node()/self::t1",
  };
  for (const char* q : queries) {
    auto expected = mem.Run(q);
    pool->FlushAll();
    pool->ResetStats();
    auto got = io.Run(q);
    ASSERT_TRUE(expected.ok()) << q << ": " << expected.status();
    ASSERT_TRUE(got.ok()) << q << ": " << got.status();
    EXPECT_TRUE(BytesEqual(got.value().nodes, expected.value().nodes)) << q;
    // Every step reads through the pool: a cold pool must fault for the
    // staircase steps AND the axis-cursor steps.
    EXPECT_GT(pool->stats().faults, 0u) << q;
    // No step of a staircase-engine plan runs per-context anymore.
    EXPECT_EQ(got.value().Explain().find("per-context"), std::string::npos)
        << got.value().Explain();
    // The compressed backend runs the same plan over compressed blocks.
    pool->FlushAll();
    pool->ResetStats();
    auto zipped = zip.Run(q);
    ASSERT_TRUE(zipped.ok()) << q << ": " << zipped.status();
    EXPECT_TRUE(BytesEqual(zipped.value().nodes, expected.value().nodes))
        << q;
    EXPECT_GT(pool->stats().faults, 0u) << q;
  }
  // EXPLAIN names the new paths.
  auto r = io.Run("/descendant::t0/child::t1");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().Explain().find("via paged child-axis cursor join"),
            std::string::npos)
      << r.value().Explain();
  auto rz = zip.Run("/descendant::t0/child::t1");
  ASSERT_TRUE(rz.ok());
  EXPECT_NE(rz.value().Explain().find("via compressed child-axis cursor join"),
            std::string::npos)
      << rz.value().Explain();
}

TEST(EvaluatorTraceTest, ShortCircuitedStepsStayInExplain) {
  DatabaseOptions open;
  open.build_paged = false;
  auto db = Database::FromTable(LoadPaperExample(), open).value();
  // Short-circuit tracing is a step-at-a-time behavior; under kAuto the
  // all-child query below would collapse into one twig join instead.
  SessionOptions opt;
  opt.hints.twig = TwigMode::kNever;
  Session session = std::move(db->CreateSession(opt)).value();
  // b(c) has no grandchildren: step 3 runs on an empty context and step
  // 4 onwards must still be listed.
  auto r = session.Run("/child::b/child::c/child::c/child::c");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().nodes.empty());
  const QueryResult& result = r.value();
  ASSERT_EQ(result.trace.size(), 4u) << result.Explain();
  EXPECT_NE(result.trace[3].description.find("short-circuited"),
            std::string::npos)
      << result.Explain();
  EXPECT_NE(result.Explain().find("step 4"), std::string::npos);
}

TEST(EvaluatorTraceTest, PositionalStepsRunSetAtATimeOnPagedBackend) {
  auto db = Database::FromTable(LoadPaperExample()).value();
  SessionOptions io_opt;
  io_opt.backend = StorageBackend::kPaged;
  Session io = std::move(db->CreateSession(io_opt)).value();
  auto r = io.Run("/child::e/child::f[1]");
  ASSERT_TRUE(r.ok());
  const std::string explain = r.value().Explain();
  // The positional rank join reads through the pool like every other
  // operator: no per-context evaluation, no memory-resident bypass.
  EXPECT_NE(explain.find("positional rank join"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("(buffer pool)"), std::string::npos) << explain;
  EXPECT_EQ(explain.find("bypasses buffer pool"), std::string::npos)
      << explain;
  EXPECT_EQ(explain.find("per-context evaluation"), std::string::npos)
      << explain;

  // And a cold pool actually faults for it.
  storage::BufferPool* pool = db->buffer_pool();
  pool->FlushAll();
  pool->ResetStats();
  auto rf = io.Run("/child::e/child::f[1]");
  ASSERT_TRUE(rf.ok());
  EXPECT_GT(pool->stats().faults, 0u) << rf.value().Explain();

  Session mem = std::move(db->CreateSession()).value();
  auto rm = mem.Run("/child::e/child::f[1]");
  ASSERT_TRUE(rm.ok());
  EXPECT_NE(rm.value().Explain().find("positional rank join"),
            std::string::npos)
      << rm.value().Explain();
  EXPECT_EQ(rm.value().Explain().find("bypasses buffer pool"),
            std::string::npos)
      << rm.value().Explain();
  // Node-identical across backends.
  EXPECT_EQ(rm.value().nodes, r.value().nodes);
}

}  // namespace
}  // namespace sj::storage
