// Tests for the parallel partitioned staircase join: identical results and
// consistent counters for any worker count.

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "test_util.h"
#include "util/rng.h"

namespace sj {
namespace {

using testing::RandomContext;
using testing::RandomDocument;

using ParallelParam = std::tuple<uint64_t, Axis, unsigned>;

class ParallelPropertyTest : public ::testing::TestWithParam<ParallelParam> {
};

TEST_P(ParallelPropertyTest, MatchesSerialJoin) {
  auto [seed, axis, threads] = GetParam();
  auto doc = RandomDocument(seed, {.target_nodes = 500});
  Rng rng(seed ^ 0xF00);
  for (uint32_t percent : {5u, 35u}) {
    NodeSequence ctx = RandomContext(rng, *doc, percent);
    JoinStats serial_stats, parallel_stats;
    auto serial = StaircaseJoin(*doc, ctx, axis, {}, &serial_stats);
    auto parallel =
        ParallelStaircaseJoin(*doc, ctx, axis, {}, threads, &parallel_stats);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(parallel.value(), serial.value())
        << AxisName(axis) << " threads=" << threads << " seed=" << seed;
    EXPECT_EQ(parallel_stats.result_size, serial_stats.result_size);
    EXPECT_EQ(parallel_stats.context_size, serial_stats.context_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadCounts, ParallelPropertyTest,
    ::testing::Combine(::testing::Values(7, 8),
                       ::testing::Values(Axis::kDescendant,
                                         Axis::kDescendantOrSelf,
                                         Axis::kAncestor,
                                         Axis::kAncestorOrSelf),
                       ::testing::Values(1u, 2u, 3u, 8u, 64u)));

TEST(ParallelTest, DegeneratesToSerialForRegionAxes) {
  auto doc = RandomDocument(9);
  Rng rng(1);
  NodeSequence ctx = RandomContext(rng, *doc, 20);
  for (Axis axis : {Axis::kFollowing, Axis::kPreceding}) {
    EXPECT_EQ(ParallelStaircaseJoin(*doc, ctx, axis, {}, 8).value(),
              StaircaseJoin(*doc, ctx, axis).value());
  }
}

TEST(ParallelTest, MoreWorkersThanPartitions) {
  auto doc = RandomDocument(10);
  NodeSequence ctx = {1};  // a single partition
  EXPECT_EQ(ParallelStaircaseJoin(*doc, ctx, Axis::kDescendant, {}, 16)
                .value(),
            StaircaseJoin(*doc, ctx, Axis::kDescendant).value());
}

TEST(ParallelTest, RejectsBadContext) {
  auto doc = RandomDocument(11);
  EXPECT_FALSE(
      ParallelStaircaseJoin(*doc, {4, 2}, Axis::kDescendant, {}, 4).ok());
}

}  // namespace
}  // namespace sj
