// The plan cache, tested at both layers: PlanCache as a data structure
// (strict LRU order, hit counting, replacement semantics) and the
// Database/Session serving contract built on it -- semantic options key
// the cache so backends never share a plan, EXPLAIN of a cached run is
// byte-identical to the uncached one apart from its leading cache line,
// and the lifetime counters in DatabaseStats fold the cache's numbers in
// exactly. (The 8-thread concurrent-hit test lives in
// api_concurrency_test.cc so the TSan CI job picks it up.)

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/database.h"
#include "api/plan_cache.h"
#include "xmlgen/xmark.h"
#include "xpath/explain_strings.h"
#include "xpath/plan.h"

namespace sj {
namespace {

std::shared_ptr<const xpath::CompiledPlan> DummyPlan() {
  return std::make_shared<const xpath::CompiledPlan>();
}

/// Blanks the per-step wall-clock milliseconds ("(0.0210 ms)") out of an
/// EXPLAIN report: they are the one legitimately nondeterministic part,
/// and the byte-identity contract is about everything else.
std::string StripMillis(const std::string& explain) {
  std::string out = explain;
  size_t ms;
  while ((ms = out.find(" ms)")) != std::string::npos) {
    const size_t open = out.rfind('(', ms);
    if (open == std::string::npos) break;
    out.erase(open, ms + 4 - open);
  }
  return out;
}

TEST(PlanCacheTest, HitCountingAndStats) {
  PlanCache cache(4);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  cache.Insert("a", DummyPlan());
  auto first = cache.Lookup("a");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->hits, 1u);
  auto second = cache.Lookup("a");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->hits, 2u);

  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, EvictsInStrictLruOrder) {
  PlanCache cache(2);
  cache.Insert("a", DummyPlan());
  cache.Insert("b", DummyPlan());
  // Touch "a": it becomes most-recently-used, so "b" is now the victim.
  ASSERT_TRUE(cache.Lookup("a").has_value());
  cache.Insert("c", DummyPlan());

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Lookup("b").has_value());  // the LRU entry went
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());

  // Recency is now [a, c] (the lookups above touched a, then c), so the
  // next insert displaces "a" -- eviction follows lookups, not inserts.
  cache.Insert("d", DummyPlan());
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_TRUE(cache.Lookup("d").has_value());
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(PlanCacheTest, ReinsertReplacesWithoutCountingAnEviction) {
  PlanCache cache(2);
  cache.Insert("a", DummyPlan());
  ASSERT_TRUE(cache.Lookup("a").has_value());
  ASSERT_TRUE(cache.Lookup("a").has_value());

  cache.Insert("a", DummyPlan());  // replacement, not displacement
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  auto hit = cache.Lookup("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->hits, 1u);  // the fresh plan starts its count over
}

TEST(PlanCacheTest, ZeroCapacityDisablesTheCache) {
  PlanCache cache(0);
  cache.Insert("a", DummyPlan());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
}

class PlanCacheDatabaseTest : public ::testing::Test {
 protected:
  static std::unique_ptr<Database> OpenDb(size_t plan_cache_entries) {
    xmlgen::XMarkOptions gen;
    gen.size_mb = 0.3;
    gen.rich_text = false;
    DatabaseOptions open;
    open.build.store_values = false;
    open.plan_cache_entries = plan_cache_entries;
    return std::move(Database::FromXmark(gen, open)).value();
  }
};

constexpr const char* kQuery =
    "/descendant::open_auction/child::bidder/child::increase";

TEST_F(PlanCacheDatabaseTest, BackendsNeverShareAPlan) {
  auto db = OpenDb(16);
  SessionOptions paged;
  paged.backend = StorageBackend::kPaged;
  SessionOptions compressed;
  compressed.backend = StorageBackend::kCompressed;

  // Same query text, different backend: the pushdown and twig decisions
  // frozen into a kPaged plan are meaningless for kCompressed, so the
  // second backend must MISS and compile its own entry.
  Session s1 = std::move(db->CreateSession(paged)).value();
  auto r1 = s1.Run(kQuery);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_FALSE(r1.value().plan_cached);

  Session s2 = std::move(db->CreateSession(compressed)).value();
  auto r2 = s2.Run(kQuery);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_FALSE(r2.value().plan_cached);

  EXPECT_EQ(db->plan_cache()->size(), 2u);
  EXPECT_EQ(db->plan_cache()->stats().misses, 2u);
  EXPECT_EQ(db->plan_cache()->stats().hits, 0u);

  // A fresh session with the SAME semantic options is served the plan.
  Session s3 = std::move(db->CreateSession(paged)).value();
  auto r3 = s3.Run(kQuery);
  ASSERT_TRUE(r3.ok()) << r3.status();
  EXPECT_TRUE(r3.value().plan_cached);
  EXPECT_EQ(r3.value().nodes, r1.value().nodes);
  EXPECT_EQ(db->plan_cache()->size(), 2u);
  EXPECT_EQ(db->plan_cache()->stats().hits, 1u);
}

TEST_F(PlanCacheDatabaseTest, ExecutionOnlyOptionsShareAPlan) {
  auto db = OpenDb(16);
  SessionOptions base;  // memory backend
  SessionOptions skewed = base;
  skewed.num_threads = 2;  // execution-only: not part of the key

  Session s1 = std::move(db->CreateSession(base)).value();
  ASSERT_TRUE(s1.Run(kQuery).ok());
  Session s2 = std::move(db->CreateSession(skewed)).value();
  auto r2 = s2.Run(kQuery);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_TRUE(r2.value().plan_cached);
  EXPECT_EQ(db->plan_cache()->size(), 1u);
}

TEST_F(PlanCacheDatabaseTest, CachedExplainIsByteIdenticalModuloCacheLine) {
  auto db = OpenDb(16);
  Session cold = std::move(db->CreateSession()).value();
  auto uncached = cold.Run(kQuery);
  ASSERT_TRUE(uncached.ok()) << uncached.status();
  ASSERT_FALSE(uncached.value().plan_cached);

  // A fresh session (empty local memo) is served from the shared cache.
  Session warm = std::move(db->CreateSession()).value();
  auto cached = warm.Run(kQuery);
  ASSERT_TRUE(cached.ok()) << cached.status();
  ASSERT_TRUE(cached.value().plan_cached);
  EXPECT_EQ(cached.value().nodes, uncached.value().nodes);
  EXPECT_GE(cached.value().plan_cache_hits, 1u);

  const std::string plain = uncached.value().Explain();
  const std::string served = cached.value().Explain();
  ASSERT_NE(served.find('\n'), std::string::npos);
  const std::string head = served.substr(0, served.find('\n'));
  EXPECT_EQ(head.rfind(xpath::explain::kPlanCachedOpen, 0), 0u)
      << "cached EXPLAIN must lead with the cache line, got: " << head;
  // Everything after the cache line is the uncached report, byte for byte
  // (modulo the wall-clock numbers, which no two runs share).
  EXPECT_EQ(StripMillis(served.substr(served.find('\n') + 1)),
            StripMillis(plain));
}

TEST_F(PlanCacheDatabaseTest, RepeatRunsInOneSessionCountServes) {
  auto db = OpenDb(16);
  Session s = std::move(db->CreateSession()).value();
  ASSERT_FALSE(s.Run(kQuery).value().plan_cached);
  // EXPLAIN's hit count keeps climbing across repeat serves, whether the
  // plan came from the shared cache or the session's local memo.
  uint64_t last = 0;
  for (int i = 0; i < 3; ++i) {
    auto r = s.Run(kQuery);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r.value().plan_cached);
    EXPECT_GT(r.value().plan_cache_hits, last);
    last = r.value().plan_cache_hits;
  }
}

TEST_F(PlanCacheDatabaseTest, TotalStatsFoldInPlanCacheCounters) {
  auto db = OpenDb(16);
  Session s1 = std::move(db->CreateSession()).value();
  ASSERT_TRUE(s1.Run(kQuery).ok());
  Session s2 = std::move(db->CreateSession()).value();
  ASSERT_TRUE(s2.Run(kQuery).ok());

  const DatabaseStats stats = db->TotalStats();
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.plan_cache_evictions, 0u);
  EXPECT_EQ(stats.queries_run, 2u);
}

TEST_F(PlanCacheDatabaseTest, DisabledCacheParsesEveryRun) {
  auto db = OpenDb(0);
  EXPECT_EQ(db->plan_cache(), nullptr);
  Session s = std::move(db->CreateSession()).value();
  for (int i = 0; i < 2; ++i) {
    auto r = s.Run(kQuery);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_FALSE(r.value().plan_cached);
    EXPECT_EQ(r.value().plan_cache_hits, 0u);
  }
  const DatabaseStats stats = db->TotalStats();
  EXPECT_EQ(stats.plan_cache_hits, 0u);
  EXPECT_EQ(stats.plan_cache_misses, 0u);
}

}  // namespace
}  // namespace sj
