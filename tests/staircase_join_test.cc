// Tests for pruning and the staircase join: the paper's running examples,
// the algorithmic guarantees of Sections 3.2/3.3/4.2 (single pass, no
// duplicates, document order, touch bounds), and equivalence with the
// region-definition oracle across axes x skip modes x pruning modes on
// random documents.

#include <gtest/gtest.h>

#include <tuple>

#include "core/staircase_join.h"
#include "encoding/loader.h"
#include "test_util.h"
#include "util/rng.h"

namespace sj {
namespace {

using testing::LoadPaperExample;
using testing::RandomContext;
using testing::RandomDocument;
using testing::RegionOracle;

// --- Pruning (Section 3.1 / Algorithm 1) ------------------------------------

TEST(PruneTest, PaperFigure4AncestorExample) {
  // Context (d,e,f,h,i,j) = pre (3,4,5,7,8,9); e, f, i lie on paths from
  // other context nodes to the root and are pruned; (d, h, j) remain.
  auto doc = LoadPaperExample();
  NodeSequence pruned =
      PruneContext(*doc, {3, 4, 5, 7, 8, 9}, Axis::kAncestorOrSelf);
  EXPECT_EQ(pruned, (NodeSequence{3, 7, 9}));
}

TEST(PruneTest, DescendantKeepsOutermost) {
  auto doc = LoadPaperExample();
  // e (pre 4) contains f,g,h,i,j; pruning keeps only e.
  EXPECT_EQ(PruneContext(*doc, {4, 5, 6, 8}, Axis::kDescendant),
            (NodeSequence{4}));
  // b and e are unrelated: both survive.
  EXPECT_EQ(PruneContext(*doc, {1, 2, 4}, Axis::kDescendant),
            (NodeSequence{1, 4}));
}

TEST(PruneTest, AncestorKeepsInnermost) {
  auto doc = LoadPaperExample();
  EXPECT_EQ(PruneContext(*doc, {4, 5, 6}, Axis::kAncestor),
            (NodeSequence{6}));
  EXPECT_EQ(PruneContext(*doc, {1, 2, 3}, Axis::kAncestor),
            (NodeSequence{2, 3}));
}

TEST(PruneTest, FollowingKeepsMinimumPost) {
  auto doc = LoadPaperExample();
  // posts: b=1 c=0 e=8 -> c has the minimum postorder rank.
  EXPECT_EQ(PruneContext(*doc, {1, 2, 4}, Axis::kFollowing),
            (NodeSequence{2}));
}

TEST(PruneTest, PrecedingKeepsMaximumPre) {
  auto doc = LoadPaperExample();
  EXPECT_EQ(PruneContext(*doc, {1, 4, 7}, Axis::kPreceding),
            (NodeSequence{7}));
}

TEST(PruneTest, EmptyAndSingleton) {
  auto doc = LoadPaperExample();
  EXPECT_TRUE(PruneContext(*doc, {}, Axis::kDescendant).empty());
  EXPECT_EQ(PruneContext(*doc, {5}, Axis::kAncestor), (NodeSequence{5}));
}

TEST(PruneTest, StaircasePropertyAfterPruning) {
  // After descendant/ancestor pruning all survivors pairwise relate on
  // preceding/following (a proper staircase, Section 3.1).
  for (uint64_t seed : {7u, 8u, 9u}) {
    auto doc = RandomDocument(seed);
    Rng rng(seed);
    NodeSequence ctx = RandomContext(rng, *doc, 30);
    for (Axis axis : {Axis::kDescendant, Axis::kAncestor}) {
      NodeSequence kept = PruneContext(*doc, ctx, axis);
      for (size_t i = 1; i < kept.size(); ++i) {
        EXPECT_TRUE(doc->IsFollowing(kept[i], kept[i - 1]))
            << "axis " << AxisName(axis) << " seed " << seed;
      }
    }
  }
}

TEST(PruneTest, PruningPreservesResultUnion) {
  // Pruned and unpruned contexts yield the same axis result (the point of
  // pruning: covered regions contribute nothing new).
  for (uint64_t seed : {11u, 12u}) {
    auto doc = RandomDocument(seed);
    Rng rng(seed);
    NodeSequence ctx = RandomContext(rng, *doc, 40);
    for (Axis axis : {Axis::kDescendant, Axis::kAncestor, Axis::kFollowing,
                      Axis::kPreceding}) {
      NodeSequence kept = PruneContext(*doc, ctx, axis);
      EXPECT_EQ(RegionOracle(*doc, kept, axis), RegionOracle(*doc, ctx, axis))
          << AxisName(axis);
    }
  }
}

// --- Basic staircase join on the paper example ------------------------------

TEST(StaircaseJoinTest, PaperSection21Example) {
  // Paper Section 2.1: (c)/following/descendant = (f, g, h, i, j).
  auto doc = LoadPaperExample();
  NodeSequence following =
      StaircaseJoin(*doc, {2}, Axis::kFollowing).value();
  EXPECT_EQ(following, (NodeSequence{3, 4, 5, 6, 7, 8, 9}));  // (d..j)
  NodeSequence desc =
      StaircaseJoin(*doc, following, Axis::kDescendant).value();
  EXPECT_EQ(desc, (NodeSequence{5, 6, 7, 8, 9}));  // (f, g, h, i, j)
}

TEST(StaircaseJoinTest, AncestorOrSelfFigure4) {
  auto doc = LoadPaperExample();
  NodeSequence result =
      StaircaseJoin(*doc, {3, 4, 5, 7, 8, 9}, Axis::kAncestorOrSelf).value();
  // (a, d, e, f, h, i, j) = pre (0, 3, 4, 5, 7, 8, 9).
  EXPECT_EQ(result, (NodeSequence{0, 3, 4, 5, 7, 8, 9}));
}

TEST(StaircaseJoinTest, RootDescendant) {
  auto doc = LoadPaperExample();
  NodeSequence result = StaircaseJoin(*doc, {0}, Axis::kDescendant).value();
  EXPECT_EQ(result.size(), 9u);  // every node except the root
  EXPECT_TRUE(IsDocumentOrder(result));
}

TEST(StaircaseJoinTest, EmptyContext) {
  auto doc = LoadPaperExample();
  JoinStats stats;
  NodeSequence result =
      StaircaseJoin(*doc, {}, Axis::kDescendant, {}, &stats).value();
  EXPECT_TRUE(result.empty());
  EXPECT_EQ(stats.result_size, 0u);
}

TEST(StaircaseJoinTest, LeafHasNoDescendants) {
  auto doc = LoadPaperExample();
  EXPECT_TRUE(StaircaseJoin(*doc, {2}, Axis::kDescendant).value().empty());
  EXPECT_TRUE(StaircaseJoin(*doc, {0}, Axis::kAncestor).value().empty());
  EXPECT_TRUE(StaircaseJoin(*doc, {9}, Axis::kFollowing).value().empty());
  EXPECT_TRUE(StaircaseJoin(*doc, {0}, Axis::kPreceding).value().empty());
}

// --- Error handling ----------------------------------------------------------

TEST(StaircaseJoinTest, RejectsUnsortedContext) {
  auto doc = LoadPaperExample();
  EXPECT_EQ(StaircaseJoin(*doc, {3, 1}, Axis::kDescendant).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StaircaseJoin(*doc, {3, 3}, Axis::kDescendant).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StaircaseJoinTest, RejectsOutOfRangeContext) {
  auto doc = LoadPaperExample();
  EXPECT_EQ(StaircaseJoin(*doc, {99}, Axis::kAncestor).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StaircaseJoinTest, RejectsNonStaircaseAxis) {
  auto doc = LoadPaperExample();
  EXPECT_EQ(StaircaseJoin(*doc, {0}, Axis::kChild).status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(StaircaseJoin(*doc, {0}, Axis::kParent).status().code(),
            StatusCode::kUnsupported);
}

// --- Algorithmic guarantees -------------------------------------------------

TEST(StaircaseJoinTest, DescendantTouchBound) {
  // Section 3.3: with skipping, no more than |result| + |context| nodes of
  // the plane are touched for a descendant step.
  for (uint64_t seed : {21u, 22u, 23u}) {
    auto doc = RandomDocument(seed, {.target_nodes = 500});
    Rng rng(seed);
    NodeSequence ctx = RandomContext(rng, *doc, 10);
    for (SkipMode mode : {SkipMode::kSkip, SkipMode::kEstimated}) {
      StaircaseOptions opt;
      opt.skip_mode = mode;
      opt.keep_attributes = true;  // count plane nodes like the paper
      JoinStats stats;
      NodeSequence result =
          StaircaseJoin(*doc, ctx, Axis::kDescendant, opt, &stats).value();
      EXPECT_LE(stats.nodes_accessed(), result.size() + ctx.size())
          << "seed " << seed;
    }
  }
}

TEST(StaircaseJoinTest, NoSkippingScansWholeTail) {
  // Without skipping the scan runs from the first context node to the end
  // of the document (minus the surviving context positions themselves).
  auto doc = LoadPaperExample();
  JoinStats stats;
  StaircaseOptions opt;
  opt.skip_mode = SkipMode::kNone;
  NodeSequence r =
      StaircaseJoin(*doc, {1, 4}, Axis::kDescendant, opt, &stats).value();
  EXPECT_EQ(r, (NodeSequence{2, 5, 6, 7, 8, 9}));
  // Nodes 2..9 except pre 4 (a surviving context node): 7 scanned.
  EXPECT_EQ(stats.nodes_scanned, 7u);
  EXPECT_EQ(stats.nodes_skipped, 0u);
}

TEST(StaircaseJoinTest, EstimatedCopiesGuaranteedDescendants) {
  // For (root)/descendant the whole scan is one comparison-free copy.
  auto doc = LoadPaperExample();
  JoinStats stats;
  StaircaseOptions opt;
  opt.skip_mode = SkipMode::kEstimated;
  opt.keep_attributes = true;
  NodeSequence r =
      StaircaseJoin(*doc, {0}, Axis::kDescendant, opt, &stats).value();
  EXPECT_EQ(r.size(), 9u);
  EXPECT_EQ(stats.nodes_copied, 9u);
  EXPECT_EQ(stats.nodes_scanned, 0u);
}

TEST(StaircaseJoinTest, StatsCountersConsistent) {
  for (uint64_t seed : {31u, 32u}) {
    auto doc = RandomDocument(seed);
    Rng rng(seed);
    NodeSequence ctx = RandomContext(rng, *doc, 20);
    for (Axis axis : {Axis::kDescendant, Axis::kAncestor}) {
      JoinStats stats;
      StaircaseOptions opt;
      opt.skip_mode = SkipMode::kEstimated;
      NodeSequence r = StaircaseJoin(*doc, ctx, axis, opt, &stats).value();
      EXPECT_EQ(stats.context_size, ctx.size());
      EXPECT_EQ(stats.result_size, r.size());
      EXPECT_LE(stats.pruned_context_size, stats.context_size);
      EXPECT_GE(stats.pruned_context_size, 1u);
    }
  }
}

// --- Equivalence properties: staircase == region oracle ---------------------

using PropertyParam = std::tuple<uint64_t, Axis, SkipMode, bool, bool>;

class StaircasePropertyTest
    : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(StaircasePropertyTest, MatchesRegionOracle) {
  auto [seed, axis, mode, on_the_fly, exact_level] = GetParam();
  auto doc = RandomDocument(seed);
  Rng rng(seed ^ 0xABCD);
  for (uint32_t percent : {3u, 25u, 80u}) {
    NodeSequence ctx = RandomContext(rng, *doc, percent);
    StaircaseOptions opt;
    opt.skip_mode = mode;
    opt.prune_on_the_fly = on_the_fly;
    opt.use_exact_level = exact_level;
    JoinStats stats;
    auto result = StaircaseJoin(*doc, ctx, axis, opt, &stats);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(IsDocumentOrder(result.value()));
    EXPECT_EQ(result.value(), RegionOracle(*doc, ctx, axis))
        << "axis=" << AxisName(axis) << " seed=" << seed
        << " percent=" << percent;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AxesModes, StaircasePropertyTest,
    ::testing::Combine(
        ::testing::Values(101, 202, 303),
        ::testing::Values(Axis::kDescendant, Axis::kDescendantOrSelf,
                          Axis::kAncestor, Axis::kAncestorOrSelf,
                          Axis::kFollowing, Axis::kPreceding),
        ::testing::Values(SkipMode::kNone, SkipMode::kSkip,
                          SkipMode::kEstimated),
        ::testing::Bool(),   // prune on the fly vs separate pass
        ::testing::Bool())); // exact level vs h-bounded estimation

TEST(StaircaseJoinTest, KeepAttributesReturnsPlaneNodes) {
  auto doc = LoadDocument("<a x=\"1\"><b y=\"2\"><c/></b></a>").value();
  StaircaseOptions opt;
  opt.keep_attributes = true;
  // Plane layout: a=0 @x=1 b=2 @y=3 c=4.
  EXPECT_EQ(StaircaseJoin(*doc, {0}, Axis::kDescendant, opt).value(),
            (NodeSequence{1, 2, 3, 4}));
  opt.keep_attributes = false;
  EXPECT_EQ(StaircaseJoin(*doc, {0}, Axis::kDescendant, opt).value(),
            (NodeSequence{2, 4}));
}

TEST(StaircaseJoinTest, AttributeContextNodes) {
  auto doc = LoadDocument("<a x=\"1\"><b y=\"2\"><c/></b></a>").value();
  // @y (pre 3) has no descendants, its ancestors are b and a.
  EXPECT_TRUE(StaircaseJoin(*doc, {3}, Axis::kDescendant).value().empty());
  EXPECT_EQ(StaircaseJoin(*doc, {3}, Axis::kAncestor).value(),
            (NodeSequence{0, 2}));
  // descendant-or-self on an attribute yields the attribute itself.
  EXPECT_EQ(StaircaseJoin(*doc, {3}, Axis::kDescendantOrSelf).value(),
            (NodeSequence{3}));
  // ... also when the attribute is nested inside another context node's
  // subtree (the pruned-self merge path).
  EXPECT_EQ(StaircaseJoin(*doc, {0, 3}, Axis::kDescendantOrSelf).value(),
            (NodeSequence{0, 2, 3, 4}));
}

TEST(StaircaseJoinTest, SkipModesAgreeOnRandomDocs) {
  for (uint64_t seed : {71u, 72u, 73u, 74u}) {
    auto doc = RandomDocument(seed, {.target_nodes = 300});
    Rng rng(seed);
    NodeSequence ctx = RandomContext(rng, *doc, 15);
    for (Axis axis :
         {Axis::kDescendant, Axis::kAncestor, Axis::kFollowing}) {
      StaircaseOptions a, b, c;
      a.skip_mode = SkipMode::kNone;
      b.skip_mode = SkipMode::kSkip;
      c.skip_mode = SkipMode::kEstimated;
      auto ra = StaircaseJoin(*doc, ctx, axis, a).value();
      auto rb = StaircaseJoin(*doc, ctx, axis, b).value();
      auto rc = StaircaseJoin(*doc, ctx, axis, c).value();
      EXPECT_EQ(ra, rb) << AxisName(axis) << " seed " << seed;
      EXPECT_EQ(rb, rc) << AxisName(axis) << " seed " << seed;
    }
  }
}

TEST(StaircaseJoinTest, SkippingNeverScansMoreThanBasic) {
  for (uint64_t seed : {81u, 82u}) {
    auto doc = RandomDocument(seed, {.target_nodes = 400});
    Rng rng(seed);
    NodeSequence ctx = RandomContext(rng, *doc, 10);
    for (Axis axis : {Axis::kDescendant, Axis::kAncestor}) {
      JoinStats none, skip;
      StaircaseOptions a, b;
      a.skip_mode = SkipMode::kNone;
      b.skip_mode = SkipMode::kSkip;
      (void)StaircaseJoin(*doc, ctx, axis, a, &none);
      (void)StaircaseJoin(*doc, ctx, axis, b, &skip);
      EXPECT_LE(skip.nodes_accessed(), none.nodes_accessed());
      EXPECT_EQ(skip.nodes_accessed() + skip.nodes_skipped,
                none.nodes_accessed());
    }
  }
}

TEST(StaircaseJoinTest, DeepLeafSingleContextDescendant) {
  // Regression: for a leaf at level >= 2, post(v) < pre(v); the
  // single-context result reservation must use the full Eq. (1)
  // (post - pre + level), not post - pre, or it wraps and requests
  // gigabytes. Node d here has pre=3, post=0.
  auto doc = LoadDocument("<a><b><c><d/></c></b></a>").value();
  for (SkipMode mode :
       {SkipMode::kNone, SkipMode::kSkip, SkipMode::kEstimated}) {
    StaircaseOptions opt;
    opt.skip_mode = mode;
    auto r = StaircaseJoin(*doc, {3}, Axis::kDescendant, opt);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r.value().empty());
    EXPECT_LT(r.value().capacity(), 16u);  // no runaway reservation
    auto or_self = StaircaseJoin(*doc, {3}, Axis::kDescendantOrSelf, opt);
    ASSERT_TRUE(or_self.ok()) << or_self.status();
    EXPECT_EQ(or_self.value(), NodeSequence{3});
  }
}

}  // namespace
}  // namespace sj
