// Unit tests for the BAT substrate (void columns, positional operators).

#include <gtest/gtest.h>

#include "bat/bat.h"
#include "bat/operators.h"

namespace sj::bat {
namespace {

TEST(BatTest, VoidHeadIsImplicit) {
  Bat<int> b(/*seqbase=*/100);
  b.Append(7);
  b.Append(8);
  b.Append(9);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.seqbase(), 100u);
  EXPECT_EQ(b.HeadAt(0), 100u);
  EXPECT_EQ(b.HeadAt(2), 102u);
}

TEST(BatTest, PositionalAndOidAccessAgree) {
  Bat<int> b(10, {5, 6, 7});
  EXPECT_EQ(b[0], 5);
  EXPECT_EQ(b.AtOid(10), 5);
  EXPECT_EQ(b.AtOid(12), 7);
  b.AtOid(11) = 60;
  EXPECT_EQ(b[1], 60);
}

TEST(BatTest, ContainsOid) {
  Bat<int> b(5, {1, 2});
  EXPECT_TRUE(b.ContainsOid(5));
  EXPECT_TRUE(b.ContainsOid(6));
  EXPECT_FALSE(b.ContainsOid(4));
  EXPECT_FALSE(b.ContainsOid(7));
}

TEST(BatTest, TailSpanViewsStorage) {
  Bat<int> b(0, {1, 2, 3});
  auto tail = b.tail();
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[1], 2);
  EXPECT_EQ(b.tail_data(), tail.data());
}

TEST(OperatorsTest, SelectEq) {
  Bat<int> b(10, {3, 1, 3, 2});
  EXPECT_EQ(SelectEq(b, 3), (std::vector<Oid>{10, 12}));
  EXPECT_TRUE(SelectEq(b, 9).empty());
}

TEST(OperatorsTest, SelectRangeInclusive) {
  Bat<int> b(0, {5, 1, 3, 9, 4});
  EXPECT_EQ(SelectRange(b, 3, 5), (std::vector<Oid>{0, 2, 4}));
}

TEST(OperatorsTest, GatherFetchesByOid) {
  Bat<int> b(100, {7, 8, 9});
  EXPECT_EQ(Gather(b, {102, 100}), (std::vector<int>{9, 7}));
}

TEST(OperatorsTest, FilterEq) {
  Bat<int> b(0, {1, 2, 1, 2});
  EXPECT_EQ(FilterEq(b, {0, 1, 2, 3}, 2), (std::vector<Oid>{1, 3}));
}

TEST(OperatorsTest, TailSorted) {
  EXPECT_TRUE(TailSorted(Bat<int>(0, {1, 2, 2, 3})));
  EXPECT_FALSE(TailSorted(Bat<int>(0, {2, 1})));
  EXPECT_TRUE(TailSorted(Bat<int>(0, {})));
}

TEST(OperatorsTest, UniqueSortedRemovesAdjacentDuplicates) {
  EXPECT_EQ(UniqueSorted({1, 1, 2, 3, 3, 3}), (std::vector<Oid>{1, 2, 3}));
  EXPECT_TRUE(UniqueSorted({}).empty());
}

TEST(OperatorsTest, SortUnique) {
  EXPECT_EQ(SortUnique({3, 1, 3, 2, 1}), (std::vector<Oid>{1, 2, 3}));
}

}  // namespace
}  // namespace sj::bat
