#include "test_util.h"

#include <algorithm>
#include <cstdlib>

#include "xml/writer.h"

namespace sj::testing {

std::unique_ptr<DocTable> LoadPaperExample() {
  auto result = LoadDocument(kPaperExampleXml);
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

namespace {

/// Emits a random subtree of roughly `budget` nodes; returns nodes used.
size_t EmitSubtree(Rng& rng, const RandomDocOptions& opt, size_t budget,
                   uint32_t depth, std::string* out) {
  std::string tag = "t";
  tag += std::to_string(rng.Below(opt.tag_alphabet));
  out->push_back('<');
  out->append(tag);
  size_t used = 1;
  if (rng.Percent(opt.attribute_percent)) {
    out->append(" a");
    out->append(std::to_string(rng.Below(3)));
    out->append("=\"v");
    out->append(std::to_string(rng.Below(100)));
    out->append("\"");
    ++used;
    if (rng.Percent(30)) {  // occasionally a second attribute
      out->append(" b0=\"w");
      out->append(std::to_string(rng.Below(100)));
      out->append("\"");
      ++used;
    }
  }
  if (budget <= used || depth > 40) {
    out->append("/>");
    return used;
  }
  out->push_back('>');
  size_t remaining = budget - used;
  uint32_t children = static_cast<uint32_t>(rng.Range(1, opt.max_children));
  for (uint32_t c = 0; c < children && remaining > 0; ++c) {
    if (rng.Percent(opt.text_percent)) {
      out->append("x");
      out->append(std::to_string(rng.Below(1000)));
      --remaining;
      ++used;
    } else if (rng.Percent(opt.comment_percent)) {
      out->append("<!--c-->");
      --remaining;
      ++used;
    } else if (rng.Percent(opt.pi_percent)) {
      out->append("<?pi data?>");
      --remaining;
      ++used;
    } else {
      size_t sub =
          EmitSubtree(rng, opt, 1 + rng.Below(remaining), depth + 1, out);
      remaining -= std::min(remaining, sub);
      used += sub;
    }
  }
  out->append("</");
  out->append(tag);
  out->push_back('>');
  return used;
}

}  // namespace

std::string RandomDocumentXml(uint64_t seed, const RandomDocOptions& options) {
  Rng rng(seed);
  std::string out;
  EmitSubtree(rng, options, std::max<size_t>(options.target_nodes, 2), 0,
              &out);
  return out;
}

std::unique_ptr<DocTable> RandomDocument(uint64_t seed,
                                         const RandomDocOptions& options) {
  auto result = LoadDocument(RandomDocumentXml(seed, options));
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

NodeSequence RandomContext(Rng& rng, const DocTable& doc,
                           uint32_t percent_of_doc) {
  NodeSequence context;
  for (NodeId v = 0; v < doc.size(); ++v) {
    if (rng.Percent(percent_of_doc)) context.push_back(v);
  }
  if (context.empty()) context.push_back(static_cast<NodeId>(
      rng.Below(doc.size())));
  return context;
}

NodeSequence RegionOracle(const DocTable& doc, const NodeSequence& context,
                          Axis axis, bool keep_attributes) {
  NodeSequence result;
  auto attr = [&](NodeId v) { return doc.kind(v) == NodeKind::kAttribute; };
  for (NodeId v = 0; v < doc.size(); ++v) {
    bool in_result = false;
    bool as_self = false;
    for (NodeId c : context) {
      bool match = false;
      switch (axis) {
        case Axis::kDescendant:
          match = doc.IsDescendant(v, c);
          break;
        case Axis::kDescendantOrSelf:
          match = doc.IsDescendant(v, c) || v == c;
          break;
        case Axis::kAncestor:
          match = doc.IsAncestor(v, c);
          break;
        case Axis::kAncestorOrSelf:
          match = doc.IsAncestor(v, c) || v == c;
          break;
        case Axis::kFollowing:
          match = doc.IsFollowing(v, c);
          break;
        case Axis::kPreceding:
          match = doc.IsPreceding(v, c);
          break;
        case Axis::kSelf:
          match = v == c;
          break;
        case Axis::kParent:
          match = doc.parent(c) == v;
          break;
        case Axis::kChild:
          match = doc.parent(v) == c && !attr(v);
          break;
        case Axis::kAttribute:
          match = doc.parent(v) == c && attr(v);
          break;
        case Axis::kFollowingSibling:
          match = !attr(v) && !attr(c) && doc.parent(v) == doc.parent(c) &&
                  doc.parent(c) != kNilNode && v > c;
          break;
        case Axis::kPrecedingSibling:
          match = !attr(v) && !attr(c) && doc.parent(v) == doc.parent(c) &&
                  doc.parent(c) != kNilNode && v < c;
          break;
      }
      if (match) {
        in_result = true;
        if (v == c &&
            (axis == Axis::kDescendantOrSelf ||
             axis == Axis::kAncestorOrSelf || axis == Axis::kSelf)) {
          as_self = true;
        }
      }
    }
    if (!in_result) continue;
    // Axis results exclude attribute nodes (except the attribute axis and
    // self references).
    if (!keep_attributes && attr(v) && axis != Axis::kAttribute && !as_self) {
      continue;
    }
    result.push_back(v);
  }
  return result;
}

}  // namespace sj::testing
