// Tests for the XPath extensions beyond the paper's fragment: positional
// predicates (forward and reverse axes), union expressions, and the
// multi-document collection (paper footnote 1).

#include <gtest/gtest.h>

#include "core/tag_view.h"
#include "encoding/collection.h"
#include "encoding/loader.h"
#include "test_util.h"
#include "xmlgen/xmark.h"
#include "xpath/evaluator.h"

namespace sj::xpath {
namespace {

constexpr const char* kListDoc =
    "<list><item>a</item><item>b</item><item>c</item>"
    "<group><item>d</item><item>e</item></group></list>";

class PositionalTest : public ::testing::Test {
 protected:
  void SetUp() override { doc_ = LoadDocument(kListDoc).value(); }

  std::vector<std::string> Texts(const NodeSequence& nodes) {
    std::vector<std::string> out;
    for (NodeId v : nodes) {
      for (NodeId u = v + 1; u < doc_->size() && doc_->IsDescendant(u, v);
           ++u) {
        if (doc_->kind(u) == NodeKind::kText) {
          out.emplace_back(doc_->value(u));
          break;
        }
      }
    }
    return out;
  }

  NodeSequence Eval(const std::string& q) {
    Evaluator ev(*doc_);
    auto r = ev.EvaluateString(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status();
    return r.ok() ? r.value() : NodeSequence{};
  }

  std::unique_ptr<DocTable> doc_;
};

TEST_F(PositionalTest, ChildPosition) {
  EXPECT_EQ(Texts(Eval("/child::item[1]")),
            (std::vector<std::string>{"a"}));
  EXPECT_EQ(Texts(Eval("/child::item[3]")),
            (std::vector<std::string>{"c"}));
  EXPECT_TRUE(Eval("/child::item[4]").empty());  // only 3 direct items
}

TEST_F(PositionalTest, LastFunction) {
  EXPECT_EQ(Texts(Eval("/child::item[last()]")),
            (std::vector<std::string>{"c"}));
  EXPECT_EQ(Texts(Eval("/descendant::item[last()]")),
            (std::vector<std::string>{"e"}));
}

TEST_F(PositionalTest, PositionIsPerContextNode) {
  // child::item[1] from (list, group): the first item of EACH context.
  EXPECT_EQ(Texts(Eval("/descendant-or-self::*/child::item[1]")),
            (std::vector<std::string>{"a", "d"}));
}

TEST_F(PositionalTest, ReverseAxisCountsOutward) {
  // ancestor::*[1] of the nested items is the nearest ancestor (group).
  auto doc = LoadDocument(kListDoc).value();
  Evaluator ev(*doc);
  NodeSequence nested = ev.EvaluateString("/child::group/child::item").value();
  ASSERT_EQ(nested.size(), 2u);
  LocationPath first_anc = ParseXPath("ancestor::*[1]").value();
  NodeSequence r = ev.Evaluate(first_anc, {nested[0]}).value();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(doc->tags().Name(doc->tag(r[0])), "group");
  LocationPath second_anc = ParseXPath("ancestor::*[2]").value();
  r = ev.Evaluate(second_anc, {nested[0]}).value();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(doc->tags().Name(doc->tag(r[0])), "list");
}

TEST_F(PositionalTest, PositionalCombinesWithExists) {
  // Second item that has a text child == "b".
  EXPECT_EQ(Texts(Eval("/child::item[child::text()][2]")),
            (std::vector<std::string>{"b"}));
  // Positional then existence.
  EXPECT_EQ(Texts(Eval("/child::item[2][child::text()]")),
            (std::vector<std::string>{"b"}));
}

TEST_F(PositionalTest, ParserRejectsPositionZero) {
  EXPECT_FALSE(ParseXPath("item[0]").ok());
  EXPECT_TRUE(ParseXPath("item[1]").ok());
  EXPECT_TRUE(ParseXPath("item[last()]").ok());
}

TEST_F(PositionalTest, ToStringRoundTrip) {
  for (const char* q : {"child::item[2]", "child::item[last()]",
                        "descendant::item[1][child::text()]"}) {
    LocationPath p = ParseXPath(q).value();
    EXPECT_EQ(ToString(p), q);
  }
}

TEST(UnionTest, MergesBranchesInDocumentOrder) {
  auto doc = LoadDocument(kListDoc).value();
  Evaluator ev(*doc);
  NodeSequence u =
      ev.EvaluateUnionString("/child::group | /child::item").value();
  // items (pre 1,3,5) come before group (pre 7) in document order.
  ASSERT_EQ(u.size(), 4u);
  EXPECT_TRUE(IsDocumentOrder(u));
  EXPECT_EQ(doc->tags().Name(doc->tag(u[3])), "group");
}

TEST(UnionTest, DeduplicatesOverlappingBranches) {
  auto doc = LoadDocument(kListDoc).value();
  Evaluator ev(*doc);
  NodeSequence a = ev.EvaluateUnionString("//item | //item").value();
  NodeSequence b = ev.EvaluateString("//item").value();
  EXPECT_EQ(a, b);
}

TEST(UnionTest, SingleBranchEqualsPlainPath) {
  auto doc = LoadDocument(kListDoc).value();
  Evaluator ev(*doc);
  EXPECT_EQ(ev.EvaluateUnionString("/descendant::item").value(),
            ev.EvaluateString("/descendant::item").value());
}

TEST(UnionTest, ParseErrors) {
  EXPECT_FALSE(ParseXPathUnion("a |").ok());
  EXPECT_FALSE(ParseXPathUnion("| a").ok());
  EXPECT_FALSE(ParseXPathUnion("a | b |").ok());
}

TEST(UnionTest, ExplainCoversEveryBranch) {
  auto doc = LoadDocument(kListDoc).value();
  Evaluator ev(*doc);
  ASSERT_TRUE(
      ev.EvaluateUnionString("/child::group/child::item | /child::item").ok());
  // Two steps from the first branch + one from the second: clearing the
  // trace per branch used to leave only the final branch visible.
  ASSERT_EQ(ev.last_trace().size(), 3u);
  EXPECT_NE(ev.last_trace()[0].description.find("group"), std::string::npos);
  EXPECT_NE(ev.ExplainLastQuery().find("step 3"), std::string::npos);
  // A following plain Evaluate starts a fresh trace again.
  ASSERT_TRUE(ev.EvaluateString("/child::item").ok());
  EXPECT_EQ(ev.last_trace().size(), 1u);
}

TEST(PredicateTest, AbsolutePredicatePathsAreContextInvariant) {
  auto doc = LoadDocument(kListDoc).value();
  Evaluator ev(*doc);
  // The verdict comes from the document root, not the context node: all
  // nodes survive a true absolute predicate, none survive a false one
  // (evaluated once per step, reused for every context node).
  EXPECT_EQ(ev.EvaluateString("//item[/child::group]").value(),
            ev.EvaluateString("//item").value());
  EXPECT_TRUE(ev.EvaluateString("//item[/child::nope]").value().empty());
  // Same on the positional (per-context) fallback path.
  Evaluator ev2(*doc);
  EXPECT_EQ(ev2.EvaluateString("/child::item[2][/child::group]").value(),
            ev2.EvaluateString("/child::item[2]").value());
  EXPECT_TRUE(
      ev2.EvaluateString("/child::item[2][/child::nope]").value().empty());
}

// --- Collections (paper footnote 1) -----------------------------------------

TEST(CollectionTest, GathersDocumentsUnderVirtualRoot) {
  CollectionBuilder builder;
  ASSERT_TRUE(builder.AddDocumentText("<a><b/></a>").ok());
  ASSERT_TRUE(builder.AddDocumentText("<a><b/><b/></a>").ok());
  ASSERT_TRUE(builder.AddDocumentText("<c/>").ok());
  EXPECT_EQ(builder.document_count(), 3u);
  auto doc = builder.Finish().value();
  NodeSequence roots = builder.document_roots();
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_EQ(doc->tags().Name(doc->tag(doc->root())), "collection");
  EXPECT_EQ(doc->level(roots[0]), 1u);

  // Queries span all documents.
  Evaluator ev(*doc);
  EXPECT_EQ(ev.EvaluateString("/descendant::b").value().size(), 3u);
  EXPECT_EQ(ev.EvaluateString("/child::a").value().size(), 2u);
}

TEST(CollectionTest, DocumentOfAttributesResults) {
  CollectionBuilder builder;
  ASSERT_TRUE(builder.AddDocumentText("<a><b/></a>").ok());
  ASSERT_TRUE(builder.AddDocumentText("<a><b x=\"1\"/></a>").ok());
  auto doc = builder.Finish().value();
  NodeSequence roots = builder.document_roots();

  Evaluator ev(*doc);
  NodeSequence bs = ev.EvaluateString("/descendant::b").value();
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(DocumentOf(roots, *doc, bs[0]), 0u);
  EXPECT_EQ(DocumentOf(roots, *doc, bs[1]), 1u);
  EXPECT_EQ(DocumentOf(roots, *doc, roots[1]), 1u);
  // The virtual root belongs to no document.
  EXPECT_EQ(DocumentOf(roots, *doc, doc->root()), roots.size());
}

TEST(CollectionTest, MixesParsedAndGeneratedDocuments) {
  CollectionBuilder builder;
  ASSERT_TRUE(builder.AddDocumentText("<site><x/></site>").ok());
  xmlgen::XMarkOptions opt;
  opt.size_mb = 0.2;
  ASSERT_TRUE(builder
                  .AddDocumentEvents([&](xml::EventHandler* h) {
                    return xmlgen::GenerateXMark(opt, h);
                  })
                  .ok());
  auto doc = builder.Finish().value();
  EXPECT_EQ(builder.document_roots().size(), 2u);
  Evaluator ev(*doc);
  // Both site elements, one per document.
  EXPECT_EQ(ev.EvaluateString("/child::site").value().size(), 2u);
  // The XMark content is reachable through the virtual root.
  EXPECT_GT(ev.EvaluateString("/descendant::bidder").value().size(), 0u);
}

TEST(CollectionTest, Errors) {
  CollectionBuilder empty;
  EXPECT_FALSE(empty.Finish().ok());
  CollectionBuilder builder;
  ASSERT_TRUE(builder.AddDocumentText("<a/>").ok());
  EXPECT_FALSE(builder.AddDocumentText("not xml").ok());
  auto doc = builder.Finish();
  // The failed document's prefix was absorbed; the collection still
  // finishes with the successfully added document... unless the parse
  // failure left an unbalanced element, which Finish reports.
  (void)doc;
  CollectionBuilder done;
  ASSERT_TRUE(done.AddDocumentText("<a/>").ok());
  ASSERT_TRUE(done.Finish().ok());
  EXPECT_FALSE(done.Finish().ok());
  EXPECT_FALSE(done.AddDocumentText("<b/>").ok());
}

}  // namespace
}  // namespace sj::xpath
