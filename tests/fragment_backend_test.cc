// Backend equivalence for the unified *fragment* staircase join: the ONE
// set of Section 4.4 pushdown drivers (core/fragment_impl.h),
// instantiated with the in-memory TagView cursor and with the
// buffer-pool fragment cursor, must return byte-identical NodeSequences
// -- equal to FilterByTest(StaircaseJoin(...)) -- for every staircase
// axis x skip mode x random tree shape, with JoinStats meaning the same
// thing as the kernels.h stats. Also drives the paged name-test pushdown
// end-to-end through the Database/Session facade: faults are charged to
// the pool, EXPLAIN names the paged fragment path, and digest mismatches
// are rejected when the database is opened.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "api/database.h"
#include "core/fragment_cursor.h"
#include "core/staircase_join.h"
#include "core/tag_view.h"
#include "encoding/loader.h"
#include "storage/compressed_tags.h"
#include "storage/paged_tags.h"
#include "test_util.h"
#include "util/rng.h"

namespace sj::storage {
namespace {

using sj::testing::RandomContext;
using sj::testing::RandomDocument;

constexpr Axis kStaircaseAxes[] = {
    Axis::kDescendant, Axis::kDescendantOrSelf, Axis::kAncestor,
    Axis::kAncestorOrSelf, Axis::kFollowing, Axis::kPreceding,
};
constexpr SkipMode kSkipModes[] = {SkipMode::kNone, SkipMode::kSkip,
                                   SkipMode::kEstimated};

bool BytesEqual(const NodeSequence& a, const NodeSequence& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(NodeId)) == 0);
}

bool StatsEqual(const JoinStats& a, const JoinStats& b) {
  return a.context_size == b.context_size &&
         a.pruned_context_size == b.pruned_context_size &&
         a.nodes_scanned == b.nodes_scanned &&
         a.nodes_copied == b.nodes_copied &&
         a.nodes_skipped == b.nodes_skipped && a.result_size == b.result_size;
}

/// The pushdown-equivalence oracle: join over the document, filter the
/// name test afterwards (elements of `tag` only).
NodeSequence JoinThenFilter(const DocTable& doc, const NodeSequence& ctx,
                            Axis axis, TagId tag, const StaircaseOptions& opt) {
  NodeSequence joined = StaircaseJoin(doc, ctx, axis, opt).value();
  NodeSequence out;
  for (NodeId v : joined) {
    if (doc.kind(v) == NodeKind::kElement && doc.tag(v) == tag) {
      out.push_back(v);
    }
  }
  return out;
}

/// A context guaranteed to contain fragment members (so the -or-self
/// axes exercise matching selves), mixed with other random nodes.
NodeSequence SelfMatchingContext(Rng& rng, const DocTable& doc,
                                 const TagView& view) {
  NodeSequence ctx = RandomContext(rng, doc, 10);
  for (size_t i = 0; i < view.size(); i += 3) {
    ctx.push_back(view.pre[i]);
  }
  std::sort(ctx.begin(), ctx.end());
  ctx.erase(std::unique(ctx.begin(), ctx.end()), ctx.end());
  return ctx;
}

class FragmentBackendTest : public ::testing::TestWithParam<uint64_t> {};

/// The satellite acceptance matrix: both fragment backends equal the
/// join-then-filter oracle for every staircase axis x skip mode on
/// randomized mixed-kind trees, with byte-identical results, identical
/// JoinStats between the backends, and kernels-consistent stats
/// semantics (scanned = compared, copied = appended without comparison,
/// skipped = never touched; kNone touches everything it looks at).
TEST_P(FragmentBackendTest, BothBackendsEqualJoinThenFilter) {
  const uint64_t seed = GetParam();
  auto doc = RandomDocument(seed, {.target_nodes = 20000,
                                   .attribute_percent = 30});
  ASSERT_GT(doc->size(), 500u) << "degenerate random doc for seed " << seed;
  TagIndex index(*doc);
  SimulatedDisk disk;
  auto paged_doc = PagedDocTable::Create(*doc, &disk).value();
  auto paged_tags = PagedTagIndex::Create(*doc, &disk).value();
  auto compressed_doc = CompressedDocTable::Create(*doc, &disk).value();
  auto compressed_tags = CompressedTagIndex::Create(*doc, &disk).value();
  BufferPool pool(&disk, 16);
  Rng rng(seed * 17 + 3);

  // t0/t3: populated fragments; a0: attribute-only tag (empty fragment);
  // 999999: never-interned tag id (empty fragment).
  std::vector<TagId> tags;
  for (const char* name : {"t0", "t3", "a0"}) {
    std::optional<TagId> tag = doc->tags().Lookup(name);
    if (tag.has_value()) tags.push_back(*tag);
  }
  tags.push_back(999999);

  for (TagId tag : tags) {
    const TagView& view = index.view(tag);
    NodeSequence contexts[] = {RandomContext(rng, *doc, 5),
                               RandomContext(rng, *doc, 30),
                               SelfMatchingContext(rng, *doc, view)};
    for (const NodeSequence& ctx : contexts) {
      for (Axis axis : kStaircaseAxes) {
        for (SkipMode mode : kSkipModes) {
          StaircaseOptions opt;
          opt.skip_mode = mode;
          JoinStats mem_stats, io_stats, zip_stats;
          auto mem = StaircaseJoinView(*doc, view, ctx, axis, opt, &mem_stats);
          ASSERT_TRUE(mem.ok()) << mem.status();
          auto io = PagedStaircaseJoinView(*paged_tags, tag, *paged_doc,
                                           &pool, ctx, axis, opt, &io_stats);
          ASSERT_TRUE(io.ok()) << io.status();
          auto zip = CompressedStaircaseJoinView(*compressed_tags, tag,
                                                 *compressed_doc, &pool, ctx,
                                                 axis, opt, &zip_stats);
          ASSERT_TRUE(zip.ok()) << zip.status();

          NodeSequence oracle = JoinThenFilter(*doc, ctx, axis, tag, opt);
          EXPECT_EQ(mem.value(), oracle)
              << AxisName(axis) << " mode " << static_cast<int>(mode)
              << " tag " << tag << " seed " << seed;
          EXPECT_TRUE(BytesEqual(io.value(), mem.value()))
              << AxisName(axis) << " mode " << static_cast<int>(mode)
              << " tag " << tag << " seed " << seed;
          EXPECT_TRUE(StatsEqual(io_stats, mem_stats)) << AxisName(axis);
          EXPECT_TRUE(BytesEqual(zip.value(), mem.value()))
              << "compressed " << AxisName(axis) << " mode "
              << static_cast<int>(mode) << " tag " << tag << " seed " << seed;
          EXPECT_TRUE(StatsEqual(zip_stats, mem_stats))
              << "compressed " << AxisName(axis);

          // Kernels-consistent stats semantics, fragment slots being the
          // unit: every slot is scanned, copied, or skipped at most once.
          EXPECT_LE(mem_stats.nodes_scanned + mem_stats.nodes_copied +
                        mem_stats.nodes_skipped,
                    view.size())
              << AxisName(axis) << " mode " << static_cast<int>(mode);
          if (mode == SkipMode::kNone) {
            EXPECT_EQ(mem_stats.nodes_copied, 0u);
            EXPECT_EQ(mem_stats.nodes_skipped, 0u);
          }
        }
      }
    }
  }
}

// Seeds are chosen so the generator produces non-degenerate documents
// (its top-level fanout is seed-sensitive).
INSTANTIATE_TEST_SUITE_P(Seeds, FragmentBackendTest,
                         ::testing::Values(41, 42, 43, 45));

/// On a document whose elements all carry ONE tag, the fragment is the
/// document, so the view join's JoinStats must match the document
/// kernels field-for-field -- the sharpest form of "view-join stats mean
/// the same thing as kernels.h stats". (Sole sanctioned divergence:
/// kEstimated preceding, where the fragment join has a guaranteed-
/// descendant copy phase the document kernel lacks; its scanned+copied
/// must equal the kernel's scanned.)
TEST(FragmentStatsTest, StatsMatchDocKernelsOnSingleTagDocument) {
  std::string xml = "<t>";
  for (int i = 0; i < 400; ++i) {
    xml += (i % 3 == 0) ? "<t><t/><t/></t>" : "<t/>";
  }
  xml += "</t>";
  auto doc = LoadDocument(xml).value();
  TagIndex index(*doc);
  TagId t = doc->tags().Lookup("t").value();
  ASSERT_EQ(index.tag_count(t), doc->size());

  Rng rng(7);
  NodeSequence ctx = RandomContext(rng, *doc, 15);
  for (Axis axis : kStaircaseAxes) {
    for (SkipMode mode : kSkipModes) {
      StaircaseOptions opt;
      opt.skip_mode = mode;
      JoinStats view_stats, doc_stats;
      auto via_view =
          StaircaseJoinView(*doc, index.view(t), ctx, axis, opt, &view_stats);
      auto via_doc = StaircaseJoin(*doc, ctx, axis, opt, &doc_stats);
      ASSERT_TRUE(via_view.ok() && via_doc.ok());
      EXPECT_EQ(via_view.value(), via_doc.value()) << AxisName(axis);
      if (axis == Axis::kPreceding && mode == SkipMode::kEstimated) {
        EXPECT_EQ(view_stats.nodes_scanned + view_stats.nodes_copied,
                  doc_stats.nodes_scanned);
        EXPECT_GT(view_stats.nodes_copied, 0u);
        continue;
      }
      EXPECT_EQ(view_stats.nodes_scanned, doc_stats.nodes_scanned)
          << AxisName(axis) << " mode " << static_cast<int>(mode);
      EXPECT_EQ(view_stats.nodes_copied, doc_stats.nodes_copied)
          << AxisName(axis) << " mode " << static_cast<int>(mode);
      EXPECT_EQ(view_stats.nodes_skipped, doc_stats.nodes_skipped)
          << AxisName(axis) << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(PagedFragmentCursorTest, MultiPageLowerBoundMatchesMemory) {
  // 5000 single-tag elements: the pre/post columns span multiple pages.
  std::string xml = "<t>";
  for (int i = 0; i < 4999; ++i) xml += "<t/>";
  xml += "</t>";
  auto doc = LoadDocument(xml).value();
  TagIndex index(*doc);
  TagId t = doc->tags().Lookup("t").value();
  const TagView& view = index.view(t);
  ASSERT_GT(view.size(), kRanksPerPage);

  SimulatedDisk disk;
  auto paged_tags = PagedTagIndex::Create(*doc, &disk).value();
  ASSERT_GT(paged_tags->fragment(t).pre_pages.size(), 1u);
  BufferPool pool(&disk, 4);
  MemoryFragmentCursor mem(view);
  PagedFragmentCursor io(paged_tags->fragment(t), &pool);
  ASSERT_EQ(mem.size(), io.size());
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    uint64_t pre = rng.Below(doc->size() + 2);
    EXPECT_EQ(mem.LowerBound(pre), io.LowerBound(pre)) << "pre " << pre;
    size_t slot = rng.Below(view.size());
    EXPECT_EQ(mem.Pre(slot), io.Pre(slot)) << "slot " << slot;
    EXPECT_EQ(mem.Post(slot), io.Post(slot)) << "slot " << slot;
    if (i % 9 == 0) io.SkipTo(rng.Below(view.size() + 1));
  }
  EXPECT_TRUE(io.ok()) << io.status();
}

TEST(CompressedFragmentCursorTest, MultiBlockLowerBoundMatchesMemory) {
  // 5000 single-tag elements: the fragment spans multiple blocks, so
  // LowerBound exercises the resident fence keys + in-block search.
  std::string xml = "<t>";
  for (int i = 0; i < 4999; ++i) xml += "<t/>";
  xml += "</t>";
  auto doc = LoadDocument(xml).value();
  TagIndex index(*doc);
  TagId t = doc->tags().Lookup("t").value();
  const TagView& view = index.view(t);

  SimulatedDisk disk;
  auto compressed_tags = CompressedTagIndex::Create(*doc, &disk).value();
  ASSERT_GT(compressed_tags->fragment(t).pre.blocks.size(), 1u);
  ASSERT_EQ(compressed_tags->fragment(t).fence_pre.size(),
            compressed_tags->fragment(t).pre.blocks.size());
  BufferPool pool(&disk, 4);
  MemoryFragmentCursor mem(view);
  CompressedFragmentCursor zip(compressed_tags->fragment(t), &pool);
  ASSERT_EQ(mem.size(), zip.size());
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    uint64_t pre = rng.Below(doc->size() + 2);
    EXPECT_EQ(mem.LowerBound(pre), zip.LowerBound(pre)) << "pre " << pre;
    size_t slot = rng.Below(view.size());
    EXPECT_EQ(mem.Pre(slot), zip.Pre(slot)) << "slot " << slot;
    EXPECT_EQ(mem.Post(slot), zip.Post(slot)) << "slot " << slot;
    if (i % 9 == 0) zip.SkipTo(rng.Below(view.size() + 1));
  }
  EXPECT_TRUE(zip.ok()) << zip.status();
}

TEST(PagedFragmentCursorTest, StickyErrorOnPoolExhaustion) {
  auto doc = RandomDocument(51, {.target_nodes = 3000});
  SimulatedDisk disk;
  auto paged_doc = PagedDocTable::Create(*doc, &disk).value();
  auto paged_tags = PagedTagIndex::Create(*doc, &disk).value();
  TagId t = doc->tags().Lookup("t0").value();
  ASSERT_GT(paged_tags->tag_count(t), 0u);
  BufferPool pool(&disk, 1);
  // Starve the cursor: an outside pin occupies the single frame.
  ASSERT_TRUE(pool.Pin(paged_doc->KindPage(0)).ok());
  PagedFragmentCursor io(paged_tags->fragment(t), &pool);
  (void)io.Pre(0);
  EXPECT_FALSE(io.ok());
  EXPECT_EQ(io.LowerBound(0), io.size());  // terminates joins quickly
  // And the join surfaces the error instead of returning garbage.
  auto r = PagedStaircaseJoinView(*paged_tags, t, *paged_doc, &pool, {0},
                                  Axis::kDescendant);
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(pool.Unpin(paged_doc->KindPage(0)).ok());
}

/// The ISSUE's acceptance experiment: with StorageBackend::kPaged and
/// PushdownMode::kAlways, a name-test step must charge pool faults on a
/// cold pool (the memory-resident TagIndex is NOT consulted), EXPLAIN
/// must name the paged fragment path, and results must be byte-identical
/// to the in-memory engine.
TEST(PagedPushdownTest, PushdownChargesThePoolAndMatchesMemory) {
  auto db = Database::FromTable(RandomDocument(13, {.target_nodes = 60000}))
                .value();
  ASSERT_GT(db->doc().size(), 10000u);
  BufferPool* pool = db->buffer_pool();

  // The resident TagIndex stays built: faults prove the paged path does
  // not fall back to (or silently prefer) the resident fragments.
  ASSERT_NE(db->tag_index(), nullptr);
  SessionOptions mem_opt;
  mem_opt.hints.pushdown = PushdownMode::kAlways;
  // Pins the per-step fragment-pushdown path; the twig join would
  // otherwise collapse the descendant chains (twig_join_test.cc).
  mem_opt.hints.twig = TwigMode::kNever;
  Session mem = std::move(db->CreateSession(mem_opt)).value();

  SessionOptions io_opt = mem_opt;
  io_opt.backend = StorageBackend::kPaged;
  Session io = std::move(db->CreateSession(io_opt)).value();

  const char* queries[] = {
      "/descendant::t0",
      "/descendant::t0/descendant::t1",
      "/descendant-or-self::t2/ancestor::t0",
      "/descendant::t1/following::t3",
      "/descendant::t3/preceding::t1",
  };
  std::string last_explain;
  for (const char* q : queries) {
    pool->FlushAll();
    pool->ResetStats();
    auto expected = mem.Run(q);
    auto got = io.Run(q);
    ASSERT_TRUE(expected.ok()) << q << ": " << expected.status();
    ASSERT_TRUE(got.ok()) << q << ": " << got.status();
    EXPECT_TRUE(BytesEqual(got.value().nodes, expected.value().nodes)) << q;
    EXPECT_GT(pool->stats().faults, 0u) << q;
    last_explain = got.value().Explain();
    EXPECT_NE(last_explain.find("via paged staircase join over tag fragment"),
              std::string::npos)
        << last_explain;
  }
  EXPECT_NE(last_explain.find("tag fragment 't3'"), std::string::npos);

  // The compressed backend: same contract, compressed fragment images,
  // EXPLAIN names the compressed fragment path.
  SessionOptions zip_opt = mem_opt;
  zip_opt.backend = StorageBackend::kCompressed;
  Session zip = std::move(db->CreateSession(zip_opt)).value();
  for (const char* q : queries) {
    pool->FlushAll();
    pool->ResetStats();
    auto expected = mem.Run(q);
    auto got = zip.Run(q);
    ASSERT_TRUE(got.ok()) << q << ": " << got.status();
    EXPECT_TRUE(BytesEqual(got.value().nodes, expected.value().nodes)) << q;
    EXPECT_GT(pool->stats().faults, 0u) << q;
    EXPECT_NE(got.value().Explain().find(
                  "via compressed staircase join over tag fragment"),
              std::string::npos)
        << got.value().Explain();
  }
}

TEST(CompressedPushdownTest, BitFlippedFragmentBlockRejectedAtOpenTime) {
  // The fragment images are digest-covered too: flip one byte inside an
  // encoded fragment block and the open must fail naming the fragment
  // column, not serve the damaged fragment to a pushed-down step.
  auto doc = RandomDocument(13, {.target_nodes = 5000});
  auto disk = std::make_unique<SimulatedDisk>();
  auto compressed_doc = CompressedDocTable::Create(*doc, disk.get()).value();
  auto compressed_tags =
      CompressedTagIndex::Create(*doc, disk.get()).value();
  TagId t0 = doc->tags().Lookup("t0").value();
  const CompressedFragment& frag = compressed_tags->fragment(t0);
  ASSERT_GT(frag.pre.blocks.size(), 0u);
  const CompressedBlockRef& block = frag.pre.blocks.front();
  Page page;
  ASSERT_TRUE(disk->Read(block.page, &page).ok());
  page.bytes[block.offset + encoding::kBlockHeaderBytes / 2] ^= 0x10;
  ASSERT_TRUE(disk->Write(block.page, page).ok());

  DatabaseOptions open;
  open.build_paged = false;
  open.build_compressed = false;
  auto db = Database::FromParts(std::move(doc), nullptr, std::move(disk),
                                nullptr, nullptr, std::move(compressed_doc),
                                std::move(compressed_tags), open);
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().ToString().find("corrupt compressed image"),
            std::string::npos)
      << db.status();
  EXPECT_NE(db.status().ToString().find("fragment pre column"),
            std::string::npos)
      << db.status();
}

/// Regression for the headline bug: on a database adopted without paged
/// tag fragments, pushdown must NOT engage on the paged backend (the
/// resident TagIndex would bypass the pool) -- the step runs the paged
/// document join instead.
TEST(PagedPushdownTest, MemoryTagIndexDoesNotBypassThePool) {
  auto doc = RandomDocument(17, {.target_nodes = 20000});
  auto index = std::make_unique<TagIndex>(*doc);
  auto disk = std::make_unique<SimulatedDisk>();
  auto paged_doc = PagedDocTable::Create(*doc, disk.get()).value();
  auto db = Database::FromParts(std::move(doc), std::move(index),
                                std::move(disk), std::move(paged_doc),
                                /*paged_tags=*/nullptr)
                .value();

  SessionOptions io_opt;
  io_opt.backend = StorageBackend::kPaged;
  io_opt.hints.pushdown = PushdownMode::kAlways;
  Session io = std::move(db->CreateSession(io_opt)).value();
  auto r = io.Run("/descendant::t0");
  ASSERT_TRUE(r.ok()) << r.status();
  std::string explain = r.value().Explain();
  EXPECT_EQ(explain.find("tag fragment"), std::string::npos) << explain;
  EXPECT_NE(explain.find("via paged staircase join (buffer pool)"),
            std::string::npos)
      << explain;
  EXPECT_GT(db->buffer_pool()->stats().faults, 0u);
}

TEST(PagedPushdownTest, DigestMismatchIsRejectedAtOpenTime) {
  // Same post/kind/level columns, different tag column: both the doc
  // digest (which covers parent/tag since the axis cursors page them)
  // and the fragment digest must tell these apart -- and the database
  // must reject the stale fragment image when it is adopted, naming the
  // fragment column set, not on the first pushed-down query.
  auto doc_b = LoadDocument("<a><b/><b/></a>").value();
  auto doc_c = LoadDocument("<a><c/><b/></a>").value();
  auto disk = std::make_unique<SimulatedDisk>();
  auto paged_doc = PagedDocTable::Create(*doc_b, disk.get()).value();
  auto wrong_tags = PagedTagIndex::Create(*doc_c, disk.get()).value();
  ASSERT_NE(paged_doc->source_digest(), DocColumnsDigest(*doc_c));
  ASSERT_NE(wrong_tags->source_digest(), FragmentColumnsDigest(*doc_b));

  auto spoofed = Database::FromParts(std::move(doc_b), nullptr,
                                     std::move(disk), std::move(paged_doc),
                                     std::move(wrong_tags));
  ASSERT_FALSE(spoofed.ok());
  EXPECT_NE(spoofed.status().ToString().find("tag fragment column set"),
            std::string::npos)
      << spoofed.status();

  auto doc_b2 = LoadDocument("<a><b/><b/></a>").value();
  auto disk2 = std::make_unique<SimulatedDisk>();
  auto paged_doc2 = PagedDocTable::Create(*doc_b2, disk2.get()).value();
  auto right_tags = PagedTagIndex::Create(*doc_b2, disk2.get()).value();
  auto genuine = Database::FromParts(std::move(doc_b2), nullptr,
                                     std::move(disk2), std::move(paged_doc2),
                                     std::move(right_tags));
  ASSERT_TRUE(genuine.ok()) << genuine.status();
  SessionOptions opt;
  opt.backend = StorageBackend::kPaged;
  opt.hints.pushdown = PushdownMode::kAlways;
  auto r = std::move(genuine.value()->CreateSession(opt)).value()
               .Run("/descendant::b");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().nodes.size(), 2u);
}

}  // namespace
}  // namespace sj::storage
