// Tests for the XMark-style generator: determinism, structural invariants
// the experiments rely on (height 11, level(increase) = 4, one increase per
// bidder), scaling, and calibration against the paper's Table 1 ratios.

#include <gtest/gtest.h>

#include "core/staircase_join.h"
#include "core/tag_view.h"
#include "encoding/loader.h"
#include "xmlgen/xmark.h"

namespace sj::xmlgen {
namespace {

XMarkOptions Small() {
  XMarkOptions opt;
  opt.size_mb = 1.1;
  return opt;
}

TEST(XMarkTest, DeterministicForSeed) {
  std::string a = GenerateXMarkText(Small()).value();
  std::string b = GenerateXMarkText(Small()).value();
  EXPECT_EQ(a, b);
  XMarkOptions other = Small();
  other.seed = 43;
  EXPECT_NE(a, GenerateXMarkText(other).value());
}

TEST(XMarkTest, TextParsesBackToSameTable) {
  auto direct = GenerateXMarkDocument(Small()).value();
  auto via_text = LoadDocument(GenerateXMarkText(Small()).value()).value();
  ASSERT_EQ(direct->size(), via_text->size());
  for (NodeId v = 0; v < direct->size(); v += 37) {  // sampled comparison
    EXPECT_EQ(direct->post(v), via_text->post(v));
    EXPECT_EQ(direct->kind(v), via_text->kind(v));
    EXPECT_EQ(direct->level(v), via_text->level(v));
  }
}

TEST(XMarkTest, HeightIsEleven) {
  for (double mb : {0.5, 1.1, 4.0}) {
    XMarkOptions opt;
    opt.size_mb = mb;
    auto doc = GenerateXMarkDocument(opt).value();
    EXPECT_EQ(doc->height(), 11u) << "size " << mb;
  }
}

TEST(XMarkTest, RichTextOffPreservesStructure) {
  XMarkOptions rich = Small();
  XMarkOptions plain = Small();
  plain.rich_text = false;
  auto a = GenerateXMarkDocument(rich).value();
  auto b = GenerateXMarkDocument(plain).value();
  ASSERT_EQ(a->size(), b->size());
  for (NodeId v = 0; v < a->size(); ++v) {
    ASSERT_EQ(a->post(v), b->post(v)) << "node " << v;
    ASSERT_EQ(a->kind(v), b->kind(v)) << "node " << v;
    ASSERT_EQ(a->tag(v), b->tag(v)) << "node " << v;
  }
}

TEST(XMarkTest, NodeCountScalesLinearly) {
  XMarkOptions s1 = Small();
  XMarkOptions s10 = Small();
  s10.size_mb = 11.0;
  auto d1 = GenerateXMarkDocument(s1).value();
  auto d10 = GenerateXMarkDocument(s10).value();
  double ratio = static_cast<double>(d10->size()) /
                 static_cast<double>(d1->size());
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(XMarkTest, IncreaseSitsAtLevelFourUnderBidder) {
  auto doc = GenerateXMarkDocument(Small()).value();
  TagId increase = doc->tags().Lookup("increase").value();
  TagId bidder = doc->tags().Lookup("bidder").value();
  ASSERT_NE(increase, kNoTag);
  ASSERT_NE(bidder, kNoTag);
  uint64_t increases = 0, bidders = 0;
  for (NodeId v = 0; v < doc->size(); ++v) {
    if (doc->kind(v) != NodeKind::kElement) continue;
    if (doc->tag(v) == increase) {
      ++increases;
      EXPECT_EQ(doc->level(v), 4u);
      EXPECT_EQ(doc->tag(doc->parent(v)), bidder);
    } else if (doc->tag(v) == bidder) {
      ++bidders;
    }
  }
  // Exactly one increase per bidder (Table 1: both count 597,777).
  EXPECT_EQ(increases, bidders);
  EXPECT_GT(increases, 0u);
}

TEST(XMarkTest, Table1RatiosApproximatelyHold) {
  // Targets per MB from Table 1 at 1111 MB (see xmark.h): the synthetic
  // generator must land in the right regime, not to the last node.
  XMarkOptions opt;
  opt.size_mb = 4.0;
  auto doc = GenerateXMarkDocument(opt).value();
  TagIndex index(*doc);
  auto count = [&](const char* tag) {
    return static_cast<double>(
        index.tag_count(doc->tags().Lookup(tag).value()));
  };
  const double mb = opt.size_mb;

  double nodes_per_mb = static_cast<double>(doc->size()) / mb;
  EXPECT_GT(nodes_per_mb, 45765 * 0.7);
  EXPECT_LT(nodes_per_mb, 45765 * 1.3);

  double profiles_per_mb = count("profile") / mb;
  EXPECT_GT(profiles_per_mb, 115.2 * 0.7);
  EXPECT_LT(profiles_per_mb, 115.2 * 1.3);

  // ~49.8% of profiles carry an education child.
  double education_ratio = count("education") / count("profile");
  EXPECT_GT(education_ratio, 0.35);
  EXPECT_LT(education_ratio, 0.65);

  double increases_per_mb = count("increase") / mb;
  EXPECT_GT(increases_per_mb, 538 * 0.7);
  EXPECT_LT(increases_per_mb, 538 * 1.3);

  // Attribute share: paper 7.5%; accept 5-12%.
  double attr_share = static_cast<double>(doc->attribute_count()) /
                      static_cast<double>(doc->size());
  EXPECT_GT(attr_share, 0.05);
  EXPECT_LT(attr_share, 0.12);
}

TEST(XMarkTest, Q1IntermediateShapeMatchesTable1) {
  // Q1 second step: descendants of profile nodes; Table 1 ratio is
  // 1,849,360 / 127,984 = 14.5 non-attribute descendants per profile.
  auto doc = GenerateXMarkDocument(Small()).value();
  TagIndex index(*doc);
  NodeSequence profiles = index.view(doc->tags().Lookup("profile").value()).pre;
  JoinStats stats;
  NodeSequence desc =
      StaircaseJoin(*doc, profiles, Axis::kDescendant, {}, &stats).value();
  double per_profile = static_cast<double>(desc.size()) /
                       static_cast<double>(profiles.size());
  EXPECT_GT(per_profile, 14.45 * 0.6);
  EXPECT_LT(per_profile, 14.45 * 1.4);
}

TEST(XMarkTest, GeneratedTextSizeRoughlyMatchesLabel) {
  std::string text = GenerateXMarkText(Small()).value();
  double actual_mb = static_cast<double>(text.size()) / (1024.0 * 1024.0);
  EXPECT_GT(actual_mb, 1.1 * 0.5);
  EXPECT_LT(actual_mb, 1.1 * 2.0);
}

TEST(XMarkTest, RejectsBadOptions) {
  XMarkOptions opt;
  opt.size_mb = 0.0;
  EXPECT_FALSE(GenerateXMarkText(opt).ok());
  opt.size_mb = -3;
  EXPECT_FALSE(GenerateXMarkText(opt).ok());
  EXPECT_EQ(GenerateXMark(Small(), nullptr).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sj::xmlgen
