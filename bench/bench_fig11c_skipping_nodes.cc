// F11c -- Paper Fig. 11(c): effectiveness of skipping, measured in nodes
// accessed during the second (descendant) step of Q1. With skipping the
// number of accessed nodes is bounded by |result| + |context| and thus
// independent of the document size; without skipping the scan covers the
// tail of the plane. Paper: ~92% of the nodes were skipped.

#include "bench_util.h"

namespace sj::bench {
namespace {

void Run() {
  PrintHeader("F11c (Fig. 11c)",
              "nodes accessed in Q1's descendant step: no skipping vs "
              "skipping vs result size");
  TablePrinter t({"doc size", "context", "no skipping", "skipping",
                  "result size", "skipped"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb);
    const NodeSequence& profiles = w.Nodes("profile");

    StaircaseOptions none, skip;
    none.skip_mode = SkipMode::kNone;
    skip.skip_mode = SkipMode::kSkip;
    JoinStats none_stats, skip_stats;
    NodeSequence result =
        StaircaseJoin(*w.doc, profiles, Axis::kDescendant, none, &none_stats)
            .value();
    (void)StaircaseJoin(*w.doc, profiles, Axis::kDescendant, skip,
                        &skip_stats);

    double skipped_pct =
        100.0 *
        static_cast<double>(none_stats.nodes_accessed() -
                            skip_stats.nodes_accessed()) /
        static_cast<double>(none_stats.nodes_accessed());
    t.AddRow({SizeLabel(mb), TablePrinter::Count(profiles.size()),
              TablePrinter::Count(none_stats.nodes_accessed()),
              TablePrinter::Count(skip_stats.nodes_accessed()),
              TablePrinter::Count(result.size()),
              TablePrinter::Fixed(skipped_pct, 1) + " %"});
  }
  t.Print();
  std::printf(
      "paper: ~92%% skipped; 'skipping' stays within |result|+|context| "
      "and becomes independent of document size\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
