// S42 -- Paper Section 4.2 micro benchmarks (google-benchmark): per-node
// cost of the scan and copy loops, branch-prediction friendliness, pruning
// throughput, and B+-tree seek cost. The paper's numbers: ~17 cycles per
// scan iteration, ~5 cycles per copy iteration on a 2.2 GHz P4.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iterator>

#include "baselines/sql_plan.h"
#include "bench_util.h"
#include "core/doc_accessor.h"
#include "core/kernels.h"

namespace sj::bench {
namespace {

/// One cached 11 MB-equivalent workload for all micro benches.
const Workload& SharedWorkload() {
  static Workload w = MakeWorkload(11.0);
  return w;
}

void BM_ScanPartitionDescBasic(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  const DocTable& doc = *w.doc;
  NodeSequence result;
  result.reserve(doc.size());
  MemoryDocAccessor acc(doc);
  for (auto _ : state) {
    result.clear();
    internal::Scan<MemoryDocAccessor> s{acc, false, false, &result,
                                        JoinStats{}};
    internal::ScanPartitionDescBasic(s, 1, doc.size() - 1,
                                     doc.post(doc.root()));
    benchmark::DoNotOptimize(result.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ScanPartitionDescBasic);

void BM_ScanPartitionDescCopyPhase(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  const DocTable& doc = *w.doc;
  NodeSequence result;
  result.reserve(doc.size());
  MemoryDocAccessor acc(doc);
  for (auto _ : state) {
    result.clear();
    internal::Scan<MemoryDocAccessor> s{acc, false, false, &result,
                                        JoinStats{}};
    internal::ScanPartitionDescEstimated(s, 1, doc.size() - 1,
                                         doc.post(doc.root()));
    benchmark::DoNotOptimize(result.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ScanPartitionDescCopyPhase);

void BM_ScanPartitionDescWithAttributeFilter(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  const DocTable& doc = *w.doc;
  NodeSequence result;
  result.reserve(doc.size());
  MemoryDocAccessor acc(doc);
  for (auto _ : state) {
    result.clear();
    internal::Scan<MemoryDocAccessor> s{acc, true, false, &result,
                                        JoinStats{}};
    internal::ScanPartitionDescEstimated(s, 1, doc.size() - 1,
                                         doc.post(doc.root()));
    benchmark::DoNotOptimize(result.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ScanPartitionDescWithAttributeFilter);

void BM_PruneContextDescendant(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  // Everything under open_auctions: heavily nested context.
  NodeSequence ctx;
  const NodeSequence& auctions = w.Nodes("open_auction");
  const NodeSequence& bidders = w.Nodes("bidder");
  std::merge(auctions.begin(), auctions.end(), bidders.begin(), bidders.end(),
             std::back_inserter(ctx));
  for (auto _ : state) {
    NodeSequence kept = PruneContext(*w.doc, ctx, Axis::kDescendant);
    benchmark::DoNotOptimize(kept.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ctx.size()));
}
BENCHMARK(BM_PruneContextDescendant);

void BM_StaircaseJoinAncIncrease(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  const NodeSequence& increases = w.Nodes("increase");
  for (auto _ : state) {
    auto r = StaircaseJoin(*w.doc, increases, Axis::kAncestor);
    benchmark::DoNotOptimize(r.value().data());
  }
}
BENCHMARK(BM_StaircaseJoinAncIncrease);

void BM_BPlusTreeSeek(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  static SqlPlanEvaluator* sql = new SqlPlanEvaluator(*w.doc);
  uint32_t pre = 0;
  const uint32_t n = static_cast<uint32_t>(w.doc->size());
  for (auto _ : state) {
    auto it = sql->index().Seek({pre, 0, 0});
    benchmark::DoNotOptimize(it.Valid());
    pre = (pre + 7919) % n;
  }
}
BENCHMARK(BM_BPlusTreeSeek);

}  // namespace
}  // namespace sj::bench

BENCHMARK_MAIN();
