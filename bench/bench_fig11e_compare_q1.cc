// F11e -- Paper Fig. 11(e): Q1 execution time comparison of
//   * staircase join (name tests evaluated after each join),
//   * staircase join with early name test (pushdown onto tag fragments),
//   * the tree-unaware SQL plan ("IBM DB2" substitute: B+-tree index range
//     scans per context node + duplicate elimination; the index also
//     carries the tag for the early name test, as DB2's did).
// Paper: pushdown wins by ~3x; the SQL plan is orders of magnitude slower.

#include "baselines/sql_plan.h"
#include "bench_util.h"

namespace sj::bench {
namespace {

double StaircaseLate(const Workload& w) {
  return BestOfMillis(BenchReps(), [&] {
    const DocTable& doc = *w.doc;
    NodeSequence s1 =
        StaircaseJoin(doc, {doc.root()}, Axis::kDescendant).value();
    NodeSequence profiles;
    TagId profile = w.Tag("profile");
    for (NodeId v : s1) {
      if (doc.tag(v) == profile && doc.kind(v) == NodeKind::kElement) {
        profiles.push_back(v);
      }
    }
    NodeSequence s2 = StaircaseJoin(doc, profiles, Axis::kDescendant).value();
    NodeSequence educations;
    TagId education = w.Tag("education");
    for (NodeId v : s2) {
      if (doc.tag(v) == education && doc.kind(v) == NodeKind::kElement) {
        educations.push_back(v);
      }
    }
    if (educations.empty()) std::abort();
  });
}

double StaircaseEarly(const Workload& w) {
  return BestOfMillis(BenchReps(), [&] {
    const DocTable& doc = *w.doc;
    NodeSequence profiles =
        StaircaseJoinView(doc, w.index->view(w.Tag("profile")), {doc.root()},
                          Axis::kDescendant)
            .value();
    NodeSequence educations =
        StaircaseJoinView(doc, w.index->view(w.Tag("education")), profiles,
                          Axis::kDescendant)
            .value();
    if (educations.empty()) std::abort();
  });
}

double SqlPlanMs(const Workload& w, const SqlPlanEvaluator& sql,
                 JoinStats* stats) {
  // The Fig. 3 plan shape: one outer index scan per step with the name
  // test on the concatenated key, a context-witness semijoin probe per
  // candidate, and no Eq. (1) tree knowledge anywhere.
  return BestOfMillis(BenchReps(), [&] {
    NodeSequence profiles =
        sql.SemijoinStep({w.doc->root()}, Axis::kDescendant, w.Tag("profile"),
                         stats)
            .value();
    NodeSequence educations =
        sql.SemijoinStep(profiles, Axis::kDescendant, w.Tag("education"),
                         stats)
            .value();
    if (educations.empty()) std::abort();
  });
}

void Run() {
  PrintHeader("F11e (Fig. 11e)",
              "Q1 comparison: staircase join / early name test / SQL plan");
  TablePrinter t({"doc size", "scj [ms]", "scj early nametest [ms]",
                  "SQL plan (DB2-style) [ms]", "early speedup",
                  "SQL / scj"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb);
    double late = StaircaseLate(w);
    double early = StaircaseEarly(w);
    Timer index_build;
    SqlPlanEvaluator sql(*w.doc);
    std::fprintf(stderr, "[index] B+-tree over %llu keys in %.0f ms\n",
                 static_cast<unsigned long long>(sql.index().size()),
                 index_build.ElapsedMillis());
    JoinStats sql_stats;
    double sql_ms = SqlPlanMs(w, sql, &sql_stats);
    t.AddRow({SizeLabel(mb), TablePrinter::Fixed(late, 2),
              TablePrinter::Fixed(early, 2), TablePrinter::Fixed(sql_ms, 2),
              TablePrinter::Fixed(late / early, 1) + "x",
              TablePrinter::Fixed(sql_ms / late, 1) + "x"});
  }
  t.Print();
  std::printf("paper: early name test ~3x faster; DB2 SQL far above both "
              "series on the log plot\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
