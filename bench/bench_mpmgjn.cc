// AB3 -- Comparator: MPMGJN [17] vs staircase join (paper Section 5).
// Both evaluate the structural join bidder//increase (ancestor side x
// descendant side); MPMGJN exploits interval containment but lacks pruning
// and skipping, so it tests more nodes and produces duplicates that a
// final unique pass removes.

#include <algorithm>
#include <iterator>

#include "baselines/mpmgjn.h"
#include "bench_util.h"

namespace sj::bench {
namespace {

void Run() {
  PrintHeader("AB3 (Section 5)",
              "MPMGJN vs staircase join on the structural join "
              "(site > open_auctions > open_auction > bidder)//increase");
  TablePrinter t({"doc size", "algorithm", "nodes tested", "candidates",
                  "result", "time [ms]"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb);
    const DocTable& doc = *w.doc;
    // Ancestor side: the *nested* element list site > open_auctions >
    // open_auction > bidder (each level contains the next). MPMGJN takes
    // every interval at face value and re-scans the contained increase
    // entries per nesting level; the staircase join prunes the covered
    // levels away (Section 3.1) and touches each node once.
    NodeSequence nested;
    for (const char* tag : {"site", "open_auctions", "open_auction",
                            "bidder"}) {
      const NodeSequence& nodes = w.Nodes(tag);
      NodeSequence merged;
      merged.reserve(nested.size() + nodes.size());
      std::merge(nested.begin(), nested.end(), nodes.begin(), nodes.end(),
                 std::back_inserter(merged));
      nested = std::move(merged);
    }
    const TagView& dview = w.index->view(w.Tag("increase"));
    JoinList alist = MakeJoinList(doc, nested);
    JoinList dlist;
    dlist.pre = dview.pre;
    dlist.post = dview.post;

    JoinStats mp_stats;
    double mp_ms = BestOfMillis(BenchReps(), [&] {
      auto r = MpmgjnDescendants(alist, dlist, doc.height(), &mp_stats);
      if (!r.ok()) std::abort();
    });

    JoinStats sc_stats;
    double sc_ms = BestOfMillis(BenchReps(), [&] {
      auto r = StaircaseJoinView(doc, dview, nested, Axis::kDescendant,
                                 {}, &sc_stats);
      if (!r.ok()) std::abort();
    });

    t.AddRow({SizeLabel(mb), "MPMGJN",
              TablePrinter::Count(mp_stats.nodes_scanned),
              TablePrinter::Count(mp_stats.candidates_produced),
              TablePrinter::Count(mp_stats.result_size),
              TablePrinter::Fixed(mp_ms, 3)});
    t.AddRow({SizeLabel(mb), "staircase (view join)",
              TablePrinter::Count(sc_stats.nodes_accessed()),
              TablePrinter::Count(sc_stats.result_size),
              TablePrinter::Count(sc_stats.result_size),
              TablePrinter::Fixed(sc_ms, 3)});
  }
  t.Print();
  std::printf("paper: 'due to pruning and skipping, staircase join touches "
              "and tests less nodes than MPMGJN'\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
