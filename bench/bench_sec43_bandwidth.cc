// S43 -- Paper Section 4.3: memory bandwidth of the copy phase. The
// experiment evaluates the full XPath query /descendant::node() through
// xpath::Evaluator (not a hand-called join): with estimation the step
// consists almost entirely of the branch-free copy loop, and we report
//   (bytes read + bytes written) / execution time.
// Paper (Dual-P4 Xeon 2.2 GHz): 719 MB/s, 805 MB/s with prefetch+unrolling;
// absolute numbers are machine-specific, the *ordering*
// (copy phase >> comparison scan) is the reproduced shape.

#include "bench_util.h"

namespace sj::bench {
namespace {

double BandwidthMbs(uint64_t nodes_touched, uint64_t result_size,
                    double millis) {
  double bytes = static_cast<double>(nodes_touched + result_size) * 4.0;
  return bytes / (millis / 1000.0) / (1024.0 * 1024.0);
}

/// Best-of-reps evaluation of /descendant::node(); returns the step's
/// JoinStats through `stats`.
double RunQuery(const Database& db, SkipMode mode, JoinStats* stats) {
  SessionOptions opt;
  // keep_attributes=true exercises the pure branch-free bulk copy (and
  // matches the region-query semantics of the paper's experiment).
  opt.staircase.skip_mode = mode;
  opt.staircase.keep_attributes = true;
  auto session = db.CreateSession(opt);
  if (!session.ok()) std::abort();
  double best = BestOfMillis(BenchReps(), [&] {
    auto r = session.value().Run("/descendant::node()");
    if (!r.ok()) std::abort();
    *stats = r.value().trace.front().stats;
  });
  return best;
}

void Run() {
  PrintHeader("S43 (Section 4.3)",
              "/descendant::node() copy-phase bandwidth: estimation-based "
              "copy vs comparison scan (full query through the evaluator)");
  TablePrinter t({"doc size", "result", "copy loop [ms]", "copy [MB/s]",
                  "scan loop [ms]", "scan [MB/s]"});
  for (double mb : BenchSizes()) {
    DatabaseOptions open;
    open.build_tag_index = false;  // node() test: fragments never consulted
    open.build_paged = false;      // a pure memory-bandwidth experiment
    auto db = MakeDatabase(mb, open);

    JoinStats copy_stats, scan_stats;
    double copy_ms = RunQuery(*db, SkipMode::kEstimated, &copy_stats);
    double scan_ms = RunQuery(*db, SkipMode::kNone, &scan_stats);

    t.AddRow({SizeLabel(mb), TablePrinter::Count(copy_stats.result_size),
              TablePrinter::Fixed(copy_ms, 2),
              TablePrinter::Count(static_cast<uint64_t>(BandwidthMbs(
                  copy_stats.nodes_accessed(), copy_stats.result_size,
                  copy_ms))),
              TablePrinter::Fixed(scan_ms, 2),
              TablePrinter::Count(static_cast<uint64_t>(BandwidthMbs(
                  scan_stats.nodes_accessed(), scan_stats.result_size,
                  scan_ms)))});
  }
  t.Print();
  std::printf("paper: 719 MB/s (805 MB/s unrolled+prefetch) on 2002-era "
              "hardware; expect higher absolute numbers here, with copy "
              "bandwidth exceeding scan bandwidth\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
