// CM1 -- cost-based planning vs pinned hints: the estimate-driven
// planner (PlanHints::cost_model = kAuto) against every pushdown hint
// pinning (kAlways / kNever under the legacy static threshold) on XMark
// queries over a cold private pool. Two properties are enforced in-bench
// (abort on violation): every configuration returns node-identical
// results, and kAuto's cold faults stay within 1.1x of the best pinned
// configuration -- the cost model must find (or beat) the best hint, per
// query, without being told. Results land in BENCH_cost_model.json as
//   {"query", "backend", "size_mb", "faults", "skipped", "result", "ms"}
// records; faults/skipped/result are deterministic and gated by the CI
// perf-regression job against bench/baselines/.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"

namespace sj::bench {
namespace {

/// The acceptance set: a selective single step, a chain whose inner
/// steps see wide contexts (where pushdown's per-context probes lose),
/// and a deep chain over small fragments (where pushdown wins).
constexpr const char* kQueries[] = {
    "/descendant::person",
    "/descendant::open_auctions/descendant::open_auction"
    "/descendant::seller",
    "/descendant::regions/descendant::item/descendant::mailbox"
    "/descendant::date",
};

constexpr size_t kPoolPages = 64;
/// kAuto must stay within this factor of the best pinned configuration.
constexpr double kAutoFaultBudget = 1.1;

struct ColdRun {
  uint64_t faults = 0;
  uint64_t skipped = 0;
  size_t result = 0;
  double ms = -1;
  NodeSequence nodes;
};

ColdRun RunCold(Session& session, const char* query) {
  ColdRun out;
  for (int rep = 0; rep < BenchReps(); ++rep) {
    session.pool()->FlushAll();
    session.pool()->ResetStats();
    auto r = session.Run(query);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
    out.faults = session.pool()->stats().faults;
    out.skipped = r.value().totals.nodes_skipped;
    out.result = r.value().nodes.size();
    out.nodes = std::move(r.value().nodes);
    if (out.ms < 0 || r.value().millis < out.ms) out.ms = r.value().millis;
  }
  return out;
}

void Run() {
  PrintHeader("CM1 (cost model)",
              "estimate-driven planning (cost_model=kAuto) vs pinned "
              "pushdown hints on a cold pool: kAuto must match the best "
              "hint per query, node-identically");
  std::vector<JsonRecord> json;
  TablePrinter t({"doc size", "query", "auto faults", "always faults",
                  "never faults", "best hint", "auto vs best", "result"});
  for (double mb : BenchSizes()) {
    auto db = MakeDatabase(mb);

    // One cold private pool per planning configuration; twig collapse is
    // disabled so the per-step operator choice is what's measured.
    SessionOptions auto_opt;
    auto_opt.backend = StorageBackend::kPaged;
    auto_opt.private_pool_pages = kPoolPages;
    auto_opt.hints.twig = TwigMode::kNever;
    SessionOptions always_opt = auto_opt;
    always_opt.hints.pushdown = PushdownMode::kAlways;
    always_opt.hints.cost_model = CostModelMode::kOff;
    SessionOptions never_opt = auto_opt;
    never_opt.hints.pushdown = PushdownMode::kNever;
    never_opt.hints.cost_model = CostModelMode::kOff;

    auto auto_s = db->CreateSession(auto_opt);
    auto always_s = db->CreateSession(always_opt);
    auto never_s = db->CreateSession(never_opt);
    if (!auto_s.ok() || !always_s.ok() || !never_s.ok()) {
      std::fprintf(stderr, "session failed\n");
      std::abort();
    }

    for (const char* query : kQueries) {
      ColdRun a = RunCold(auto_s.value(), query);
      ColdRun hint_always = RunCold(always_s.value(), query);
      ColdRun hint_never = RunCold(never_s.value(), query);
      if (a.nodes != hint_always.nodes || a.nodes != hint_never.nodes) {
        // Operator choice is a performance knob, never a semantic one.
        std::fprintf(stderr, "results diverged across hints on %s\n", query);
        std::abort();
      }
      const uint64_t best = std::min(hint_always.faults, hint_never.faults);
      const uint64_t worst = std::max(hint_always.faults, hint_never.faults);
      // +1 absolute slack: a one-page difference on a tiny plan is page
      // rounding, not a planning mistake.
      if (static_cast<double>(a.faults) >
          kAutoFaultBudget * static_cast<double>(best) + 1.0) {
        std::fprintf(stderr,
                     "cost model lost to the best hint on %s: "
                     "auto=%llu best=%llu worst=%llu\n",
                     query, static_cast<unsigned long long>(a.faults),
                     static_cast<unsigned long long>(best),
                     static_cast<unsigned long long>(worst));
        std::abort();
      }
      t.AddRow({SizeLabel(mb), query, TablePrinter::Count(a.faults),
                TablePrinter::Count(hint_always.faults),
                TablePrinter::Count(hint_never.faults),
                hint_always.faults <= hint_never.faults ? "always" : "never",
                TablePrinter::Fixed(
                    best > 0 ? static_cast<double>(a.faults) /
                                   static_cast<double>(best)
                             : 1.0,
                    2) + "x",
                TablePrinter::Count(a.result)});
      json.push_back({query, "auto-paged-cold", mb, a.faults, a.ms, a.skipped,
                      a.result, 0, 0, 0});
      json.push_back({query, "hint-always-paged-cold", mb, hint_always.faults,
                      hint_always.ms, hint_always.skipped, hint_always.result,
                      0, 0, 0});
      json.push_back({query, "hint-never-paged-cold", mb, hint_never.faults,
                      hint_never.ms, hint_never.skipped, hint_never.result,
                      0, 0, 0});
    }
  }
  t.Print();
  std::printf("same queries, same cold pool (%zu pages): the estimate-driven "
              "planner picks per step what the best global hint can only pin "
              "globally -- within %.1fx of the best hint everywhere, "
              "node-identical everywhere\n",
              kPoolPages, kAutoFaultBudget);
  WriteJson(json, "BENCH_cost_model.json");
}

}  // namespace
}  // namespace sj::bench

int main() { sj::bench::Run(); }
