// SV1 -- the serving hot path under load: plan cache + SkipTo-driven
// prefetch.
//
// Two phases over one XMark instance:
//
// Phase A (prefetch, single-threaded, deterministic): the skip-heavy
// query mix runs cold (pool flushed per query) on the paged AND the
// compressed backend with a 50us-per-read disk, prefetch off vs on.
// With prefetch on, a cursor's SkipTo/LowerBound announces the landing
// pages and the pool faults them as ONE batched disk request (one seek
// plus cheap per-page transfers) instead of N synchronous seeks; the
// bench asserts identical result nodes and a lower cold wall-clock.
// faults/skipped/result are deterministic and gated by
// tools/check_bench_regression.py.
//
// Phase B (saturation, concurrent): N client threads drive one shared
// Database in a closed loop, each drawing queries from a deterministic
// zipf(1.1) schedule over a parse-heavy mix -- the arrival rate is
// whatever the backend sustains (saturation). Plan cache on vs off:
// with the cache, a hot query's parse + planning collapses into one LRU
// lookup shared across every session. Reported per regime: completed
// arrival rate (queries/s) and client-observed p50/p95/p99 latency; the
// bench asserts cache-on beats cache-off at 8 threads with identical
// per-query results. skipped/result sums are schedule-deterministic and
// gated; the percentile fields ride in the JSON rows (never gated).
//
// Results land in BENCH_serving_saturation.json.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "util/rng.h"

namespace sj::bench {
namespace {

/// Phase A mix: staircase skips, twig leapfrog cascades (LowerBound
/// seeks), and an ancestor axis -- every query jumps columns around.
/// `asserted` excludes the ancestor query from the wall-clock
/// assertion: ancestor scans walk the post column BACKWARD, where the
/// forward readahead window cannot help, and the query is the most
/// CPU-heavy of the mix -- it contributes only timing noise to the
/// aggregate. It still runs in both regimes, its results are
/// equality-checked, and its deterministic counters are reported and
/// gated like every other row.
struct SkipQuery {
  const char* query;
  bool asserted;
};
constexpr SkipQuery kSkipMix[] = {
    {"/descendant::open_auctions/descendant::open_auction"
     "/descendant::bidder/descendant::date",
     true},
    {"/descendant::regions/descendant::item/descendant::mailbox"
     "/descendant::date",
     true},
    {"/descendant::open_auction/child::bidder/child::increase", true},
    {"/descendant::increase/ancestor::bidder", false},
};

/// Phase B mix: parse-heavy union queries (the workload a plan cache
/// exists for), ordered hottest-first for the zipf draw. The hot head
/// is the serving classic -- navigational lookups whose parse + plan
/// cost rivals their evaluation -- with the analytical scans in the
/// zipf tail.
constexpr const char* kServingMix[] = {
    "/descendant::open_auctions | /descendant::closed_auctions"
    " | /descendant::people | /descendant::catgraph",
    "/descendant::open_auction/child::bidder/child::increase"
    " | /descendant::closed_auction/child::price",
    "/descendant::person/child::profile/child::education"
    " | /descendant::person/attribute::id",
    "/descendant::open_auctions/descendant::open_auction"
    "/descendant::bidder/descendant::date",
    "/descendant::profile/descendant::education"
    " | /descendant::increase/ancestor::bidder",
    "/descendant::regions/descendant::item/descendant::mailbox"
    "/descendant::date",
    "/descendant::people/child::person/child::profile",
};

/// Simulated disk read latency for phase A (fast NVMe-class device):
/// large enough that cold runs are seek-dominated, small enough that the
/// smoke run stays quick.
constexpr uint32_t kReadLatencyMicros = 50;

/// Phase B: queries each client issues per run.
constexpr int kQueriesPerThread = 192;

/// Phase B: client threads at saturation (the asserted regime).
constexpr unsigned kSaturationThreads = 8;

/// Seed of the per-thread zipf schedules; identical for the cache-on and
/// cache-off runs, so both serve the exact same query sequence.
constexpr uint64_t kScheduleSeed = 0x5e201f08;

/// Timing floor for both phases: even SJ_BENCH_REPS=1 smoke runs take
/// the best of this many repetitions. The asserted margins are
/// wall-clock over a sleeping "disk" and a saturated thread pool, and a
/// single rep's scheduler jitter can exceed them.
constexpr int kMinTimedReps = 3;

int TimedReps() { return std::max(BenchReps(), kMinTimedReps); }

Session MustCreateSession(const Database& db, const SessionOptions& opt) {
  auto session = db.CreateSession(opt);
  if (!session.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 session.status().ToString().c_str());
    std::abort();
  }
  return std::move(session).value();
}

QueryResult MustRun(Session& session, const char* query) {
  auto r = session.Run(query);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n", query,
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

// --- phase A: cold prefetch ------------------------------------------------

struct ColdRun {
  double ms = -1;  ///< best-of-reps wall time
  uint64_t faults = 0;
  uint64_t prefetched = 0;
  uint64_t batch_reads = 0;
  uint64_t skipped = 0;
  uint64_t result = 0;
  NodeSequence nodes;
};

ColdRun RunCold(const Database& db, Session& session, const char* query,
                bool prefetch) {
  ColdRun out;
  for (int rep = 0; rep < TimedReps(); ++rep) {
    db.buffer_pool()->set_prefetch_enabled(prefetch);
    db.buffer_pool()->FlushAll();
    db.buffer_pool()->ResetStats();
    const uint64_t batch_before = db.disk()->batch_reads();
    Timer timer;
    QueryResult r = MustRun(session, query);
    const double ms = timer.ElapsedMillis();
    if (out.ms < 0 || ms < out.ms) out.ms = ms;
    const storage::PoolStats ps = db.buffer_pool()->stats();
    out.faults = ps.faults;
    out.prefetched = ps.prefetched;
    out.batch_reads = db.disk()->batch_reads() - batch_before;
    out.skipped = r.totals.nodes_skipped;
    out.result = r.nodes.size();
    out.nodes = std::move(r.nodes);
  }
  db.buffer_pool()->set_prefetch_enabled(false);
  return out;
}

void PhasePrefetch(std::vector<JsonRecord>* json) {
  // A fixed instance size at EVERY scale (so the gated rows never move):
  // on the 1.1 MB document a fragment is a page or two and a skip rarely
  // crosses one, leaving a prefetcher nothing to batch; at 33 MB the hot
  // fragments span dozens of pages and the leapfrog genuinely jumps.
  const double mb = 33.0;
  DatabaseOptions open;
  open.pool_pages = 256;
  auto db = MakeDatabase(mb, open);
  db->disk()->set_read_latency_micros(kReadLatencyMicros);

  TablePrinter t({"backend", "query", "faults off/on", "prefetched",
                  "batched", "cold ms off", "cold ms on", "speedup"});
  struct Backend {
    StorageBackend backend;
    const char* label;
  };
  const Backend backends[] = {{StorageBackend::kPaged, "paged"},
                              {StorageBackend::kCompressed, "compressed"}};
  // The wall-clock claim is asserted over the grand total of both
  // backends: the paged image's margin is page-sized, the compressed
  // image packs many blocks per page so its disk time (and hence its
  // margin) is a fraction of its decode CPU -- per-backend totals would
  // gate on scheduler noise. The per-query, per-backend IO claim is
  // asserted exactly below via the deterministic seek counts.
  double total_off = 0;
  double total_on = 0;
  for (const Backend& b : backends) {
    SessionOptions opt;
    opt.backend = b.backend;
    Session session = MustCreateSession(*db, opt);
    for (const SkipQuery& sq : kSkipMix) {
      const char* query = sq.query;
      ColdRun off = RunCold(*db, session, query, /*prefetch=*/false);
      ColdRun on = RunCold(*db, session, query, /*prefetch=*/true);
      if (off.nodes != on.nodes) {
        std::fprintf(stderr, "prefetch changed the result of %s\n", query);
        std::abort();
      }
      // The deterministic IO claim: with prefetch on, the device serves
      // strictly fewer synchronous requests -- each batch replaces its
      // prefetched pages' individual seeks with one -- and the readahead
      // window never turns that into MORE requests than faulting on
      // demand would issue.
      const uint64_t seeks_on = on.faults - on.prefetched + on.batch_reads;
      if (seeks_on >= off.faults) {
        std::fprintf(stderr,
                     "prefetch did not reduce device requests on %s %s: "
                     "%llu synchronous seeks on vs %llu off\n",
                     b.label, query, static_cast<unsigned long long>(seeks_on),
                     static_cast<unsigned long long>(off.faults));
        std::abort();
      }
      if (sq.asserted) {
        total_off += off.ms;
        total_on += on.ms;
      }
      t.AddRow({b.label, query,
                TablePrinter::Count(off.faults) + "/" +
                    TablePrinter::Count(on.faults),
                TablePrinter::Count(on.prefetched),
                TablePrinter::Count(on.batch_reads),
                TablePrinter::Fixed(off.ms, 2), TablePrinter::Fixed(on.ms, 2),
                TablePrinter::Fixed(off.ms / on.ms, 2) + "x"});
      JsonRecord rec_off;
      rec_off.query = query;
      rec_off.backend = std::string(b.label) + "/prefetch-off";
      rec_off.size_mb = mb;
      rec_off.faults = off.faults;
      rec_off.ms = off.ms;
      rec_off.skipped = off.skipped;
      rec_off.result = off.result;
      json->push_back(std::move(rec_off));
      JsonRecord rec_on;
      rec_on.query = query;
      rec_on.backend = std::string(b.label) + "/prefetch-on";
      rec_on.size_mb = mb;
      rec_on.faults = on.faults;
      rec_on.ms = on.ms;
      rec_on.skipped = on.skipped;
      rec_on.result = on.result;
      json->push_back(std::move(rec_on));
    }
  }
  if (total_on >= total_off) {
    t.Print();
    std::fprintf(stderr,
                 "prefetch did not beat synchronous faulting: "
                 "%.2f ms on vs %.2f ms off\n",
                 total_on, total_off);
    std::abort();
  }
  t.Print();
  std::printf("a SkipTo/LowerBound landing is faulted as one batched read "
              "(1 seek + %u/%u us per extra page) instead of one %u us seek "
              "per column page\n",
              kReadLatencyMicros / storage::kBatchTransferDivisor,
              storage::kBatchTransferDivisor, kReadLatencyMicros);
}

// --- phase B: saturation ---------------------------------------------------

/// Cumulative zipf(s) distribution over `n` ranks.
std::vector<double> ZipfCdf(size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

size_t DrawZipf(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.NextDouble();
  return static_cast<size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

struct ServeRun {
  double ms = 0;   ///< wall time of the best rep
  double qps = 0;  ///< completed arrival rate of the best rep
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  uint64_t skipped = 0;  ///< schedule-deterministic sum over every query
  uint64_t result = 0;   ///< schedule-deterministic sum over every query
};

ServeRun Serve(const Database& db, unsigned threads) {
  SessionOptions opt;  // memory backend: phase B isolates the CPU path
  std::vector<Session> sessions;
  sessions.reserve(threads);
  for (unsigned s = 0; s < threads; ++s) {
    sessions.push_back(MustCreateSession(db, opt));
  }
  const std::vector<double> cdf = ZipfCdf(std::size(kServingMix), 1.1);

  ServeRun best;
  for (int rep = 0; rep < TimedReps(); ++rep) {
    std::vector<std::vector<double>> latencies(threads);
    std::atomic<uint64_t> total_skipped{0};
    std::atomic<uint64_t> total_result{0};
    Timer wall;
    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (unsigned s = 0; s < threads; ++s) {
      clients.emplace_back([&, s] {
        // The schedule depends on the thread index only: the cache-on
        // and cache-off runs (and every rep) serve identical sequences.
        Rng rng(kScheduleSeed + s);
        latencies[s].reserve(kQueriesPerThread);
        for (int q = 0; q < kQueriesPerThread; ++q) {
          const char* query = kServingMix[DrawZipf(cdf, rng)];
          Timer timer;
          QueryResult r = MustRun(sessions[s], query);
          latencies[s].push_back(timer.ElapsedMillis());
          total_skipped.fetch_add(r.totals.nodes_skipped,
                                  std::memory_order_relaxed);
          total_result.fetch_add(r.nodes.size(), std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& c : clients) c.join();
    const double ms = wall.ElapsedMillis();
    const double qps =
        1000.0 * static_cast<double>(kQueriesPerThread) *
        static_cast<double>(threads) / ms;
    if (qps > best.qps) {
      std::vector<double> all;
      for (const std::vector<double>& per_thread : latencies) {
        all.insert(all.end(), per_thread.begin(), per_thread.end());
      }
      std::sort(all.begin(), all.end());
      auto pct = [&all](double q) {
        return all[std::min(all.size() - 1,
                            static_cast<size_t>(q * all.size()))];
      };
      best.ms = ms;
      best.qps = qps;
      best.p50 = pct(0.50);
      best.p95 = pct(0.95);
      best.p99 = pct(0.99);
      best.skipped = total_skipped.load(std::memory_order_relaxed);
      best.result = total_result.load(std::memory_order_relaxed);
    }
  }
  return best;
}

void PhaseSaturation(std::vector<JsonRecord>* json, double mb) {
  // Two databases over the same generated instance (the generator is
  // deterministic): the plan-cached serving configuration vs planning
  // every query afresh. Memory-only images: phase B measures the CPU
  // hot path, not the disk.
  DatabaseOptions cached_open;
  cached_open.build_paged = false;
  cached_open.build_compressed = false;
  auto cached_db = MakeDatabase(mb, cached_open);
  DatabaseOptions uncached_open = cached_open;
  uncached_open.plan_cache_entries = 0;
  auto uncached_db = MakeDatabase(mb, uncached_open);

  TablePrinter t({"plan cache", "clients", "queries/s", "p50 [ms]",
                  "p95 [ms]", "p99 [ms]", "speedup"});
  double cached_qps_at_saturation = 0;
  double uncached_qps_at_saturation = 0;
  uint64_t cached_result = 0;
  uint64_t uncached_result = 0;
  for (unsigned threads : {1u, kSaturationThreads}) {
    ServeRun uncached = Serve(*uncached_db, threads);
    ServeRun cached = Serve(*cached_db, threads);
    if (cached.skipped != uncached.skipped ||
        cached.result != uncached.result) {
      std::fprintf(stderr,
                   "plan cache changed query results: skipped %llu vs %llu, "
                   "result %llu vs %llu\n",
                   static_cast<unsigned long long>(cached.skipped),
                   static_cast<unsigned long long>(uncached.skipped),
                   static_cast<unsigned long long>(cached.result),
                   static_cast<unsigned long long>(uncached.result));
      std::abort();
    }
    if (threads == kSaturationThreads) {
      cached_qps_at_saturation = cached.qps;
      uncached_qps_at_saturation = uncached.qps;
      cached_result = cached.result;
      uncached_result = uncached.result;
    }
    const char* labels[] = {"off", "on"};
    const ServeRun* runs[] = {&uncached, &cached};
    for (int i = 0; i < 2; ++i) {
      t.AddRow({labels[i], std::to_string(threads),
                TablePrinter::Count(static_cast<uint64_t>(runs[i]->qps)),
                TablePrinter::Fixed(runs[i]->p50, 3),
                TablePrinter::Fixed(runs[i]->p95, 3),
                TablePrinter::Fixed(runs[i]->p99, 3),
                TablePrinter::Fixed(runs[i]->qps / uncached.qps, 2) + "x"});
      JsonRecord rec;
      rec.query = "zipf-mix/" + std::to_string(threads) + "clients";
      rec.backend = std::string("plan-cache-") + labels[i];
      rec.size_mb = mb;
      rec.ms = runs[i]->ms;
      rec.skipped = runs[i]->skipped;
      rec.result = runs[i]->result;
      rec.p50_ms = runs[i]->p50;
      rec.p95_ms = runs[i]->p95;
      rec.p99_ms = runs[i]->p99;
      json->push_back(std::move(rec));
    }
  }
  t.Print();
  (void)uncached_result;
  (void)cached_result;

  const DatabaseStats stats = cached_db->TotalStats();
  std::printf("plan cache at %u clients: %llu hits / %llu misses / %llu "
              "evictions; a hot query's parse + planning collapses into "
              "one LRU lookup shared by every session\n",
              kSaturationThreads,
              static_cast<unsigned long long>(stats.plan_cache_hits),
              static_cast<unsigned long long>(stats.plan_cache_misses),
              static_cast<unsigned long long>(stats.plan_cache_evictions));
  if (stats.plan_cache_hits == 0) {
    std::fprintf(stderr, "plan cache never hit under the zipf mix\n");
    std::abort();
  }
  if (cached_qps_at_saturation <= uncached_qps_at_saturation) {
    std::fprintf(stderr,
                 "plan cache did not pay at %u clients: %.0f qps cached vs "
                 "%.0f qps uncached\n",
                 kSaturationThreads, cached_qps_at_saturation,
                 uncached_qps_at_saturation);
    std::abort();
  }
}

void Run() {
  PrintHeader("SV1 (serving hot path)",
              "plan cache + SkipTo-driven prefetch under load: cold "
              "batched faulting, then zipf saturation at 8 clients");
  std::vector<JsonRecord> json;
  PhasePrefetch(&json);
  PhaseSaturation(&json, BenchSizes().front());
  WriteJson(json, "BENCH_serving_saturation.json");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
