// FW2 -- whole queries through the buffer pool: XMark-style location
// paths that interleave staircase steps (descendant) with the
// non-staircase axis cursors (child / attribute / sibling). Before this
// repo's axis cursors, every non-staircase step of a paged query ran
// memory-resident -- zero faults charged, the accounting bug class the
// ROADMAP flags ("non-staircase-axis steps ... still run
// memory-resident; measure whether that matters on XMark"). This bench
// answers that question: cold-pool faults and wall time per query on
// the paged backend, next to the in-memory engine, with the fault share
// now covering every step. Results land in BENCH_mixed_axes.json as
//   {"query", "backend", "size_mb", "faults", "ms"}
// records so the perf trajectory is machine-readable.

#include <vector>

#include "bench_util.h"

namespace sj::bench {
namespace {

/// Queries mixing staircase and non-staircase steps over the XMark
/// schema (site/open_auctions/open_auction/bidder/increase,
/// site/people/person/profile/education, @id on person/open_auction).
constexpr const char* kQueries[] = {
    "/descendant::open_auction/child::bidder/child::increase",
    "/child::people/child::person/child::profile/child::education",
    "/descendant::person/attribute::id",
    "/descendant::bidder/following-sibling::bidder",
    "/descendant::increase/parent::bidder/preceding-sibling::bidder",
};

void Run() {
  PrintHeader("FW2 (axis cursors)",
              "mixed staircase + child/attribute/sibling queries: every "
              "step IO-charged on the paged backend");
  std::vector<JsonRecord> json;

  TablePrinter t({"doc size", "query", "memory [ms]", "paged cold [ms]",
                  "faults", "pins", "result"});
  for (double mb : BenchSizes()) {
    DatabaseOptions open;
    open.build_tag_index = false;  // both backends join over the document
    auto db = MakeDatabase(mb, open);

    SessionOptions mem_opt;
    mem_opt.hints.pushdown = PushdownMode::kNever;
    // Step-at-a-time on purpose: this bench measures the per-step axis
    // kernels through the pool; the twig join would collapse the child
    // chains (bench_twig_paths.cc measures that effect).
    mem_opt.hints.twig = TwigMode::kNever;
    auto mem = db->CreateSession(mem_opt).value();

    SessionOptions io_opt = mem_opt;
    io_opt.backend = StorageBackend::kPaged;
    io_opt.private_pool_pages = 64;
    auto io = db->CreateSession(io_opt).value();

    for (const char* q : kQueries) {
      size_t result_size = 0;
      uint64_t mem_skipped = 0;
      double mem_ms = BestOfMillis(BenchReps(), [&] {
        auto r = mem.Run(q);
        if (!r.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       r.status().ToString().c_str());
          std::abort();
        }
        result_size = r.value().nodes.size();
        mem_skipped = r.value().totals.nodes_skipped;
      });

      // Cold pool each repetition: faults are deterministic and the
      // time includes the paging.
      double io_ms = -1;
      uint64_t io_skipped = 0;
      for (int rep = 0; rep < BenchReps(); ++rep) {
        io.pool()->FlushAll();
        io.pool()->ResetStats();
        auto r = io.Run(q);
        if (!r.ok() || r.value().nodes.size() != result_size) {
          std::fprintf(stderr, "paged query diverged: %s\n", q);
          std::abort();
        }
        io_skipped = r.value().totals.nodes_skipped;
        if (io_ms < 0 || r.value().millis < io_ms) io_ms = r.value().millis;
      }
      const storage::PoolStats ps = io.pool()->stats();

      t.AddRow({SizeLabel(mb), q, TablePrinter::Fixed(mem_ms, 2),
                TablePrinter::Fixed(io_ms, 2), TablePrinter::Count(ps.faults),
                TablePrinter::Count(ps.pins),
                TablePrinter::Count(result_size)});
      json.push_back(
          {q, "memory", mb, 0, mem_ms, mem_skipped, result_size, 0, 0, 0});
      json.push_back({q, "paged-cold", mb, ps.faults, io_ms, io_skipped,
                      result_size, 0, 0, 0});
    }
  }
  t.Print();
  std::printf("every step -- descendant joins, child/attribute/sibling "
              "cursors, and the folded node tests -- charges its "
              "post/kind/level/parent/tag reads to the pool; nothing runs "
              "memory-resident\n");
  WriteJson(json, "BENCH_mixed_axes.json");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
