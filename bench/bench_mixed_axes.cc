// FW2 -- whole queries through the buffer pool: XMark-style location
// paths that interleave staircase steps (descendant) with the
// non-staircase axis cursors (child / attribute / sibling). Before this
// repo's axis cursors, every non-staircase step of a paged query ran
// memory-resident -- zero faults charged, the accounting bug class the
// ROADMAP flags ("non-staircase-axis steps ... still run
// memory-resident; measure whether that matters on XMark"). This bench
// answers that question: cold-pool faults and wall time per query on
// the paged backend, next to the in-memory engine, with the fault share
// now covering every step. Results land in BENCH_mixed_axes.json as
//   {"query", "backend", "size_mb", "faults", "ms"}
// records so the perf trajectory is machine-readable.

#include <vector>

#include "bench_util.h"
#include "storage/paged_doc.h"
#include "xpath/evaluator.h"

namespace sj::bench {
namespace {

using storage::BufferPool;
using storage::PagedDocTable;
using storage::SimulatedDisk;

/// Queries mixing staircase and non-staircase steps over the XMark
/// schema (site/open_auctions/open_auction/bidder/increase,
/// site/people/person/profile/education, @id on person/open_auction).
constexpr const char* kQueries[] = {
    "/descendant::open_auction/child::bidder/child::increase",
    "/child::people/child::person/child::profile/child::education",
    "/descendant::person/attribute::id",
    "/descendant::bidder/following-sibling::bidder",
    "/descendant::increase/parent::bidder/preceding-sibling::bidder",
};

void Run() {
  PrintHeader("FW2 (axis cursors)",
              "mixed staircase + child/attribute/sibling queries: every "
              "step IO-charged on the paged backend");
  std::vector<JsonRecord> json;

  TablePrinter t({"doc size", "query", "memory [ms]", "paged cold [ms]",
                  "faults", "pins", "result"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb, /*with_index=*/false);
    SimulatedDisk disk;
    auto paged = PagedDocTable::Create(*w.doc, &disk).value();
    BufferPool pool(&disk, 64);

    for (const char* q : kQueries) {
      xpath::Evaluator mem(*w.doc);
      size_t result_size = 0;
      double mem_ms = BestOfMillis(BenchReps(), [&] {
        auto r = mem.EvaluateString(q);
        if (!r.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       r.status().ToString().c_str());
          std::abort();
        }
        result_size = r.value().size();
      });

      xpath::EvalOptions opt;
      opt.backend = xpath::StorageBackend::kPaged;
      opt.paged_doc = paged.get();
      opt.pool = &pool;
      xpath::Evaluator io(*w.doc, opt);
      // Cold pool each repetition: faults are deterministic and the
      // time includes the paging.
      double io_ms = -1;
      for (int rep = 0; rep < BenchReps(); ++rep) {
        pool.FlushAll();
        pool.ResetStats();
        Timer timer;
        auto r = io.EvaluateString(q);
        double ms = timer.ElapsedMillis();
        if (!r.ok() || r.value().size() != result_size) {
          std::fprintf(stderr, "paged query diverged: %s\n", q);
          std::abort();
        }
        if (io_ms < 0 || ms < io_ms) io_ms = ms;
      }
      const storage::PoolStats ps = pool.stats();

      t.AddRow({SizeLabel(mb), q, TablePrinter::Fixed(mem_ms, 2),
                TablePrinter::Fixed(io_ms, 2), TablePrinter::Count(ps.faults),
                TablePrinter::Count(ps.pins),
                TablePrinter::Count(result_size)});
      json.push_back({q, "memory", mb, 0, mem_ms});
      json.push_back({q, "paged-cold", mb, ps.faults, io_ms});
    }
  }
  t.Print();
  std::printf("every step -- descendant joins, child/attribute/sibling "
              "cursors, and the folded node tests -- charges its "
              "post/kind/level/parent/tag reads to the pool; nothing runs "
              "memory-resident\n");
  WriteJson(json, "BENCH_mixed_axes.json");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
