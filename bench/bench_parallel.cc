// AB2 -- Ablation: parallel partitioned staircase join (Section 3.2's
// observation that the staircase partitions "naturally lead to a parallel
// XPath execution strategy"). Sweeps worker counts on the largest
// workload's descendant and ancestor steps.

#include <thread>

#include "bench_util.h"
#include "core/parallel.h"

namespace sj::bench {
namespace {

void Run() {
  PrintHeader("AB2 (ablation)",
              "parallel partitioned staircase join, worker sweep");
  double mb = BenchSizes().back();
  Workload w = MakeWorkload(mb);
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  struct StepSpec {
    const char* name;
    const NodeSequence* ctx;
    Axis axis;
  };
  const NodeSequence& profiles = w.Nodes("profile");
  const NodeSequence& increases = w.Nodes("increase");
  StepSpec steps[] = {
      {"desc(profile)", &profiles, Axis::kDescendant},
      {"anc(increase)", &increases, Axis::kAncestor},
  };

  TablePrinter t({"step", "workers", "time [ms]", "speedup"});
  for (const StepSpec& step : steps) {
    double base_ms = 0;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      double ms = BestOfMillis(BenchReps(), [&] {
        auto r = ParallelStaircaseJoin(*w.doc, *step.ctx, step.axis, {},
                                       workers);
        if (!r.ok()) std::abort();
      });
      if (workers == 1) base_ms = ms;
      t.AddRow({step.name, std::to_string(workers),
                TablePrinter::Fixed(ms, 3),
                TablePrinter::Fixed(base_ms / ms, 2) + "x"});
    }
  }
  t.Print();
  std::printf("note: with estimation-based skipping these steps are memory-"
              "bound; speedups saturate at the machine's bandwidth\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
