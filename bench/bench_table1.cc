// T1 -- Paper Table 1: number of nodes in intermediary results for
//   Q1: /descendant::profile/descendant::education
//   Q2: /descendant::increase/ancestor::bidder
// Paper values at 1111 MB (50,844,982 nodes):
//   Q1: 47,015,212 | 127,984 | 1,849,360 |  63,793
//   Q2: 47,015,212 | 597,777 | 706,193   | 597,777
// The harness prints measured counts next to the paper's values scaled by
// document size (the generator is calibrated, not identical; see DESIGN.md).

#include "bench_util.h"

namespace sj::bench {
namespace {

struct PaperRow {
  double per_mb[4];  // paper value / 1111 for each of the four columns
};

// Paper values divided by 1111 MB.
const PaperRow kPaperQ1 = {{42318.0, 115.2, 1664.6, 57.4}};
const PaperRow kPaperQ2 = {{42318.0, 538.1, 635.6, 538.1}};

void Run() {
  PrintHeader("T1 (Table 1)", "intermediary result sizes for Q1 and Q2");
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb);
    const DocTable& doc = *w.doc;

    // Step s1: /descendant from the root (attributes filtered, fn. 6).
    JoinStats s1_stats;
    NodeSequence s1 =
        StaircaseJoin(doc, {doc.root()}, Axis::kDescendant, {}, &s1_stats)
            .value();

    // Q1: name test profile, then descendant step, then education test.
    const NodeSequence& profiles = w.Nodes("profile");
    NodeSequence q1_s2 =
        StaircaseJoin(doc, profiles, Axis::kDescendant).value();
    NodeSequence educations = StaircaseJoinView(
        doc, w.index->view(w.Tag("education")), profiles, Axis::kDescendant)
                                  .value();

    // Q2: increase context, ancestor step, bidder test.
    const NodeSequence& increases = w.Nodes("increase");
    NodeSequence q2_s2 =
        StaircaseJoin(doc, increases, Axis::kAncestor).value();
    NodeSequence bidders = StaircaseJoinView(
        doc, w.index->view(w.Tag("bidder")), increases, Axis::kAncestor)
                               .value();

    std::printf("\ndocument %s: %s nodes (paper @1111 MB: 50,844,982)\n",
                SizeLabel(mb).c_str(),
                TablePrinter::Count(doc.size()).c_str());
    TablePrinter t({"query", "step", "measured", "paper (scaled)"});
    auto row = [&](const char* q, const char* step, uint64_t measured,
                   double paper_per_mb) {
      t.AddRow({q, step, TablePrinter::Count(measured),
                TablePrinter::Count(
                    static_cast<uint64_t>(paper_per_mb * mb))});
    };
    row("Q1", "/descendant", s1.size(), kPaperQ1.per_mb[0]);
    row("Q1", "::profile", profiles.size(), kPaperQ1.per_mb[1]);
    row("Q1", "/descendant (from profile)", q1_s2.size(), kPaperQ1.per_mb[2]);
    row("Q1", "::education", educations.size(), kPaperQ1.per_mb[3]);
    row("Q2", "/descendant", s1.size(), kPaperQ2.per_mb[0]);
    row("Q2", "::increase", increases.size(), kPaperQ2.per_mb[1]);
    row("Q2", "/ancestor (from increase)", q2_s2.size(), kPaperQ2.per_mb[2]);
    row("Q2", "::bidder", bidders.size(), kPaperQ2.per_mb[3]);
    t.Print();
  }
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
