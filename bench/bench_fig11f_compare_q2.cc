// F11f -- Paper Fig. 11(f): Q2 execution time comparison. The tree-unaware
// optimizer mis-plans the raw Q2 (an unbounded ancestor scan per context
// node), so the paper ran DB2 on the manual rewrite
// /descendant::bidder[descendant::increase]; this bench does the same.

#include "baselines/sql_plan.h"
#include "bench_util.h"

namespace sj::bench {
namespace {

double StaircaseLate(const Workload& w) {
  return BestOfMillis(BenchReps(), [&] {
    const DocTable& doc = *w.doc;
    NodeSequence s1 =
        StaircaseJoin(doc, {doc.root()}, Axis::kDescendant).value();
    NodeSequence increases;
    TagId increase = w.Tag("increase");
    for (NodeId v : s1) {
      if (doc.tag(v) == increase && doc.kind(v) == NodeKind::kElement) {
        increases.push_back(v);
      }
    }
    NodeSequence s2 = StaircaseJoin(doc, increases, Axis::kAncestor).value();
    NodeSequence bidders;
    TagId bidder = w.Tag("bidder");
    for (NodeId v : s2) {
      if (doc.tag(v) == bidder && doc.kind(v) == NodeKind::kElement) {
        bidders.push_back(v);
      }
    }
    if (bidders.empty()) std::abort();
  });
}

double StaircaseEarly(const Workload& w) {
  return BestOfMillis(BenchReps(), [&] {
    const DocTable& doc = *w.doc;
    NodeSequence increases =
        StaircaseJoinView(doc, w.index->view(w.Tag("increase")), {doc.root()},
                          Axis::kDescendant)
            .value();
    NodeSequence bidders =
        StaircaseJoinView(doc, w.index->view(w.Tag("bidder")), increases,
                          Axis::kAncestor)
            .value();
    if (bidders.empty()) std::abort();
  });
}

/// The paper's manual rewrite on the SQL plan:
/// /descendant::bidder[descendant::increase].
double SqlRewriteMs(const Workload& w, const SqlPlanEvaluator& sql) {
  SqlPlanOptions no_window;  // the tree-unaware plan has no Eq. (1)
  no_window.window_predicate = false;
  return BestOfMillis(BenchReps(), [&] {
    NodeSequence bidders =
        sql.SemijoinStep({w.doc->root()}, Axis::kDescendant, w.Tag("bidder"))
            .value();
    NodeSequence filtered =
        sql.FilterHasDescendant(bidders, w.Tag("increase"), no_window)
            .value();
    if (filtered.empty()) std::abort();
  });
}

void Run() {
  PrintHeader("F11f (Fig. 11f)",
              "Q2 comparison: staircase join / early name test / SQL plan "
              "(manual rewrite)");
  TablePrinter t({"doc size", "scj [ms]", "scj early nametest [ms]",
                  "SQL rewrite (DB2-style) [ms]", "early speedup",
                  "SQL / scj"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb);
    double late = StaircaseLate(w);
    double early = StaircaseEarly(w);
    SqlPlanEvaluator sql(*w.doc);
    double sql_ms = SqlRewriteMs(w, sql);
    t.AddRow({SizeLabel(mb), TablePrinter::Fixed(late, 2),
              TablePrinter::Fixed(early, 2), TablePrinter::Fixed(sql_ms, 2),
              TablePrinter::Fixed(late / early, 1) + "x",
              TablePrinter::Fixed(sql_ms / late, 1) + "x"});
  }
  t.Print();
  std::printf("paper: same ordering as Fig. 11(e); the rewrite keeps DB2 "
              "competitive but still above both staircase series\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
