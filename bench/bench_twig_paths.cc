// TW1 -- Holistic twig join vs step-at-a-time vs MPMGJN on XMark path
// chains (the Fig. 11-style comparison for whole paths instead of single
// steps): k materialized steps copy every intermediate context sequence
// and re-scan the doc columns per step, while the twig join leapfrogs k
// fragment cursors once and materializes ONLY the final answer -- zero
// intermediate contexts, and on a cold pool of equal size strictly fewer
// page faults. Both properties are enforced in-bench (abort on
// violation). Results land in BENCH_twig_paths.json as
//   {"query", "backend", "size_mb", "faults", "skipped", "result", "ms"}
// records; faults/skipped/result are deterministic and gated by the CI
// perf-regression job against bench/baselines/.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/mpmgjn.h"
#include "bench_util.h"
#include "util/timer.h"

namespace sj::bench {
namespace {

/// XMark descendant chains, k >= 3 (the acceptance set: on every one the
/// twig plan must materialize zero intermediates and fault fewer pages).
struct Chain {
  const char* query;
  std::vector<const char*> tags;  ///< chain levels, outermost first
};

// The inner tags occur in OTHER sections of the document too (date under
// mail and bidder, seller under both auction lists), so the leapfrog
// cascade genuinely skips fragment pages instead of merely saving the
// intermediate copies.
const Chain kChains[] = {
    {"/descendant::open_auctions/descendant::open_auction"
     "/descendant::bidder/descendant::date",
     {"open_auctions", "open_auction", "bidder", "date"}},
    {"/descendant::open_auctions/descendant::open_auction"
     "/descendant::seller",
     {"open_auctions", "open_auction", "seller"}},
    {"/descendant::regions/descendant::item/descendant::mailbox"
     "/descendant::date",
     {"regions", "item", "mailbox", "date"}},
};

constexpr size_t kPoolPages = 64;

struct ColdRun {
  uint64_t faults = 0;
  uint64_t skipped = 0;
  uint64_t intermediates = 0;  ///< context nodes materialized between steps
  size_t result = 0;
  double ms = -1;
};

ColdRun RunCold(Session& session, const char* query, bool expect_twig) {
  ColdRun out;
  for (int rep = 0; rep < BenchReps(); ++rep) {
    session.pool()->FlushAll();
    session.pool()->ResetStats();
    auto r = session.Run(query);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
    if (expect_twig &&
        r.value().Explain().find("twig join") == std::string::npos) {
      std::fprintf(stderr, "twig plan did not collapse: %s\n%s\n", query,
                   r.value().Explain().c_str());
      std::abort();
    }
    out.faults = session.pool()->stats().faults;
    out.skipped = r.value().totals.nodes_skipped;
    out.result = r.value().nodes.size();
    // Everything a step handed to the next step; the final answer is not
    // an intermediate. Twig plans must drive this to zero.
    uint64_t produced = 0;
    for (const auto& step : r.value().trace) produced += step.stats.result_size;
    out.intermediates = produced - out.result;
    if (out.ms < 0 || r.value().millis < out.ms) out.ms = r.value().millis;
  }
  return out;
}

/// The related-work comparator: the same chain as k-1 MPMGJN merge
/// joins over pre-sorted tag lists, every step fully materialized.
ColdRun RunMpmgjn(const Database& db, const Chain& chain) {
  ColdRun out;
  const DocTable& doc = db.doc();
  const TagIndex& tags = *db.tag_index();
  for (int rep = 0; rep < BenchReps(); ++rep) {
    Timer timer;
    NodeSequence current =
        doc.empty() ? NodeSequence{} : NodeSequence{doc.root()};
    uint64_t intermediates = 0;
    for (const char* tag : chain.tags) {
      JoinList alist = MakeJoinList(doc, current);
      JoinList dlist = MakeJoinList(
          doc, tags.view(doc.tags().Lookup(tag).value_or(kNoTag)).pre);
      auto r = MpmgjnDescendants(alist, dlist, doc.height());
      if (!r.ok()) {
        std::fprintf(stderr, "mpmgjn failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
      current = std::move(r).value();
      intermediates += current.size();
    }
    out.result = current.size();
    out.intermediates = intermediates - current.size();
    const double ms = timer.ElapsedMillis();
    if (out.ms < 0 || ms < out.ms) out.ms = ms;
  }
  return out;
}

void Run() {
  PrintHeader("TW1 (twig paths)",
              "holistic twig join vs step-at-a-time vs MPMGJN on XMark "
              "chains: intermediate context nodes and cold page faults at "
              "equal pool size");
  std::vector<JsonRecord> json;
  TablePrinter t({"doc size", "query", "step intermediates",
                  "mpmgjn intermediates", "twig intermediates", "step faults",
                  "twig faults", "savings", "result"});
  for (double mb : BenchSizes()) {
    auto db = MakeDatabase(mb);

    SessionOptions twig_opt;
    twig_opt.backend = StorageBackend::kPaged;
    twig_opt.private_pool_pages = kPoolPages;  // cold pool per plan shape
    SessionOptions step_opt = twig_opt;
    step_opt.hints.twig = TwigMode::kNever;
    auto twig = db->CreateSession(twig_opt);
    auto step = db->CreateSession(step_opt);
    if (!twig.ok() || !step.ok()) {
      std::fprintf(stderr, "session failed\n");
      std::abort();
    }

    for (const Chain& chain : kChains) {
      ColdRun w = RunCold(twig.value(), chain.query, /*expect_twig=*/true);
      ColdRun s = RunCold(step.value(), chain.query, /*expect_twig=*/false);
      ColdRun m = RunMpmgjn(*db, chain);
      if (w.result != s.result || w.result != m.result) {
        std::fprintf(stderr, "twig result diverged on %s: %zu vs %zu vs %zu\n",
                     chain.query, w.result, s.result, m.result);
        std::abort();
      }
      if (w.intermediates != 0) {
        // The tentpole claim: the twig join materializes nothing between
        // levels. Any nonzero count is a planner or driver regression.
        std::fprintf(stderr,
                     "twig materialized %llu intermediate nodes on %s\n",
                     static_cast<unsigned long long>(w.intermediates),
                     chain.query);
        std::abort();
      }
      if (w.faults >= s.faults) {
        // The IO half of the claim: one pass over k fragments plus the
        // probed doc pages must beat k full step scans on a cold pool.
        std::fprintf(stderr,
                     "twig faulted %llu pages vs step-at-a-time %llu on %s\n",
                     static_cast<unsigned long long>(w.faults),
                     static_cast<unsigned long long>(s.faults), chain.query);
        std::abort();
      }
      t.AddRow({SizeLabel(mb), chain.query, TablePrinter::Count(s.intermediates),
                TablePrinter::Count(m.intermediates),
                TablePrinter::Count(w.intermediates),
                TablePrinter::Count(s.faults), TablePrinter::Count(w.faults),
                TablePrinter::Fixed(static_cast<double>(s.faults) /
                                        static_cast<double>(w.faults),
                                    1) +
                    "x",
                TablePrinter::Count(w.result)});
      json.push_back({chain.query, "twig-paged-cold", mb, w.faults, w.ms,
                      w.skipped, w.result, 0, 0, 0});
      json.push_back({chain.query, "step-paged-cold", mb, s.faults, s.ms,
                      s.skipped, s.result, 0, 0, 0});
      json.push_back({chain.query, "mpmgjn-memory", mb, 0, m.ms,
                      0, m.result, 0, 0, 0});
    }
  }
  t.Print();
  std::printf("same chains, same pool (%zu pages): the twig join hands zero "
              "nodes between levels and faults fewer cold pages; "
              "step-at-a-time and MPMGJN materialize every level\n",
              kPoolPages);
  WriteJson(json, "BENCH_twig_paths.json");
}

}  // namespace
}  // namespace sj::bench

int main() { sj::bench::Run(); }
