// FR1 -- Paper Section 6 (Future Research): fragmentation by tag name.
// "...the execution time of Q1 could be brought down from 345 ms to 39 ms."
// TagIndex materializes one pre/post fragment per element tag at load
// time; both Q1 steps then run over fragments only.
//
// The paged section runs the same Q1 IO-consciously: the whole document
// scanned through the buffer pool (cold) vs. the paged tag fragments
// (cold), reporting page faults next to wall time. Results additionally
// land in BENCH_frag_tagname.json as
//   {"query", "backend", "size_mb", "faults", "ms"}
// records so the perf trajectory is machine-readable.

#include <vector>

#include "bench_util.h"
#include "storage/paged_tags.h"

namespace sj::bench {
namespace {

using storage::BufferPool;
using storage::PagedDocTable;
using storage::PagedStaircaseJoinView;
using storage::PagedTagIndex;
using storage::SimulatedDisk;

/// Q1 = /site//profile//education (two descendant steps + name tests).
NodeSequence FilterTag(const DocTable& doc, const NodeSequence& nodes,
                       TagId tag) {
  NodeSequence out;
  for (NodeId v : nodes) {
    if (doc.tag(v) == tag && doc.kind(v) == NodeKind::kElement) {
      out.push_back(v);
    }
  }
  return out;
}

double Q1FullDoc(const Workload& w, size_t* result) {
  return BestOfMillis(BenchReps(), [&] {
    const DocTable& doc = *w.doc;
    NodeSequence s1 =
        StaircaseJoin(doc, {doc.root()}, Axis::kDescendant).value();
    NodeSequence profiles = FilterTag(doc, s1, w.Tag("profile"));
    NodeSequence s2 = StaircaseJoin(doc, profiles, Axis::kDescendant).value();
    NodeSequence educations = FilterTag(doc, s2, w.Tag("education"));
    if (educations.empty()) std::abort();
    *result = educations.size();
  });
}

double Q1Fragments(const Workload& w, size_t* result) {
  return BestOfMillis(BenchReps(), [&] {
    const DocTable& doc = *w.doc;
    NodeSequence profiles =
        StaircaseJoinView(doc, w.index->view(w.Tag("profile")), {doc.root()},
                          Axis::kDescendant)
            .value();
    NodeSequence educations =
        StaircaseJoinView(doc, w.index->view(w.Tag("education")), profiles,
                          Axis::kDescendant)
            .value();
    if (educations.empty()) std::abort();
    *result = educations.size();
  });
}

/// Cold-pool timing: every repetition starts from an empty pool, so the
/// faults of one run are deterministic and `ms` includes the paging.
template <typename F>
double ColdBestOfMillis(BufferPool* pool, F&& f) {
  double best = -1;
  for (int rep = 0; rep < BenchReps(); ++rep) {
    pool->FlushAll();
    pool->ResetStats();
    Timer t;
    f();
    double ms = t.ElapsedMillis();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

size_t Q1PagedFullDoc(const Workload& w, const PagedDocTable& paged,
                      BufferPool* pool) {
  const DocTable& doc = *w.doc;
  NodeSequence s1 =
      storage::PagedStaircaseJoin(paged, pool, {doc.root()}, Axis::kDescendant)
          .value();
  NodeSequence profiles = FilterTag(doc, s1, w.Tag("profile"));
  NodeSequence s2 =
      storage::PagedStaircaseJoin(paged, pool, profiles, Axis::kDescendant)
          .value();
  NodeSequence educations = FilterTag(doc, s2, w.Tag("education"));
  if (educations.empty()) std::abort();
  return educations.size();
}

size_t Q1PagedFragments(const Workload& w, const PagedDocTable& paged,
                        const PagedTagIndex& tags, BufferPool* pool) {
  const DocTable& doc = *w.doc;
  NodeSequence profiles =
      PagedStaircaseJoinView(tags, w.Tag("profile"), paged, pool,
                             {doc.root()}, Axis::kDescendant)
          .value();
  NodeSequence educations =
      PagedStaircaseJoinView(tags, w.Tag("education"), paged, pool, profiles,
                             Axis::kDescendant)
          .value();
  if (educations.empty()) std::abort();
  return educations.size();
}

void Run() {
  PrintHeader("FR1 (Section 6)",
              "fragmentation by tag name: Q1 over the full plane vs over "
              "per-tag fragments, in memory and through the buffer pool");
  std::vector<JsonRecord> json;

  TablePrinter t({"doc size", "Q1 full doc [ms]", "Q1 fragments [ms]",
                  "speedup", "fragment build [ms]", "fragment mem [MB]"});
  TablePrinter p({"doc size", "paged full doc [ms]", "faults",
                  "paged fragments [ms]", "faults", "fault savings"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb, /*with_index=*/false);
    size_t q1_result = 0;
    double full = Q1FullDoc(w, &q1_result);

    Timer build;
    w.index = std::make_unique<TagIndex>(*w.doc);
    double build_ms = build.ElapsedMillis();
    double frag = Q1Fragments(w, &q1_result);

    t.AddRow({SizeLabel(mb), TablePrinter::Fixed(full, 2),
              TablePrinter::Fixed(frag, 2),
              TablePrinter::Fixed(full / frag, 1) + "x",
              TablePrinter::Fixed(build_ms, 0),
              TablePrinter::Fixed(
                  static_cast<double>(w.index->memory_bytes()) / 1048576.0,
                  1)});
    json.push_back(
        {"Q1", "memory/full-doc", mb, 0, full, 0, q1_result, 0, 0, 0});
    json.push_back(
        {"Q1", "memory/fragments", mb, 0, frag, 0, q1_result, 0, 0, 0});

    // The IO-conscious rerun: same Q1, columns behind the buffer pool.
    SimulatedDisk disk;
    auto paged = PagedDocTable::Create(*w.doc, &disk).value();
    auto tags = PagedTagIndex::Create(*w.doc, &disk).value();
    BufferPool pool(&disk, 64);

    double paged_full_ms = ColdBestOfMillis(
        &pool, [&] { q1_result = Q1PagedFullDoc(w, *paged, &pool); });
    uint64_t paged_full_faults = pool.stats().faults;
    double paged_frag_ms = ColdBestOfMillis(
        &pool, [&] { q1_result = Q1PagedFragments(w, *paged, *tags, &pool); });
    uint64_t paged_frag_faults = pool.stats().faults;

    p.AddRow({SizeLabel(mb), TablePrinter::Fixed(paged_full_ms, 2),
              std::to_string(paged_full_faults),
              TablePrinter::Fixed(paged_frag_ms, 2),
              std::to_string(paged_frag_faults),
              TablePrinter::Fixed(static_cast<double>(paged_full_faults) /
                                      static_cast<double>(
                                          paged_frag_faults > 0
                                              ? paged_frag_faults
                                              : 1),
                                  1) +
                  "x"});
    json.push_back({"Q1", "paged/full-doc-cold", mb, paged_full_faults,
                    paged_full_ms, 0, q1_result, 0, 0, 0});
    json.push_back({"Q1", "paged/fragments-cold", mb, paged_frag_faults,
                    paged_frag_ms, 0, q1_result, 0, 0, 0});
  }
  t.Print();
  std::printf("paper: 345 ms -> 39 ms for Q1 on the 1 GB instance (~9x); "
              "the one-off fragmentation cost amortizes at load time\n\n");
  p.Print();
  std::printf("pushdown on the paged backend reads fragment pages instead of "
              "document pages: \"nodes never touched\" becomes pages never "
              "faulted\n");
  WriteJson(json, "BENCH_frag_tagname.json");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
