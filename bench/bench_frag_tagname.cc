// FR1 -- Paper Section 6 (Future Research): fragmentation by tag name.
// "...the execution time of Q1 could be brought down from 345 ms to 39 ms."
// TagIndex materializes one pre/post fragment per element tag at load
// time; both Q1 steps then run over fragments only.

#include "bench_util.h"

namespace sj::bench {
namespace {

double Q1FullDoc(const Workload& w) {
  return BestOfMillis(BenchReps(), [&] {
    const DocTable& doc = *w.doc;
    NodeSequence s1 =
        StaircaseJoin(doc, {doc.root()}, Axis::kDescendant).value();
    NodeSequence profiles;
    TagId profile = w.Tag("profile");
    for (NodeId v : s1) {
      if (doc.tag(v) == profile && doc.kind(v) == NodeKind::kElement) {
        profiles.push_back(v);
      }
    }
    NodeSequence s2 = StaircaseJoin(doc, profiles, Axis::kDescendant).value();
    NodeSequence educations;
    TagId education = w.Tag("education");
    for (NodeId v : s2) {
      if (doc.tag(v) == education && doc.kind(v) == NodeKind::kElement) {
        educations.push_back(v);
      }
    }
    if (educations.empty()) std::abort();
  });
}

double Q1Fragments(const Workload& w) {
  return BestOfMillis(BenchReps(), [&] {
    const DocTable& doc = *w.doc;
    NodeSequence profiles =
        StaircaseJoinView(doc, w.index->view(w.Tag("profile")), {doc.root()},
                          Axis::kDescendant)
            .value();
    NodeSequence educations =
        StaircaseJoinView(doc, w.index->view(w.Tag("education")), profiles,
                          Axis::kDescendant)
            .value();
    if (educations.empty()) std::abort();
  });
}

void Run() {
  PrintHeader("FR1 (Section 6)",
              "fragmentation by tag name: Q1 over the full plane vs over "
              "per-tag fragments");
  TablePrinter t({"doc size", "Q1 full doc [ms]", "Q1 fragments [ms]",
                  "speedup", "fragment build [ms]", "fragment mem [MB]"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb, /*with_index=*/false);
    double full = Q1FullDoc(w);

    Timer build;
    w.index = std::make_unique<TagIndex>(*w.doc);
    double build_ms = build.ElapsedMillis();
    double frag = Q1Fragments(w);

    t.AddRow({SizeLabel(mb), TablePrinter::Fixed(full, 2),
              TablePrinter::Fixed(frag, 2),
              TablePrinter::Fixed(full / frag, 1) + "x",
              TablePrinter::Fixed(build_ms, 0),
              TablePrinter::Fixed(
                  static_cast<double>(w.index->memory_bytes()) / 1048576.0,
                  1)});
  }
  t.Print();
  std::printf("paper: 345 ms -> 39 ms for Q1 on the 1 GB instance (~9x); "
              "the one-off fragmentation cost amortizes at load time\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
