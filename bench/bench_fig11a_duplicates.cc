// F11a -- Paper Fig. 11(a): duplicates avoided by the staircase join on
// the ancestor step of Q2. The naive plan evaluates the step per context
// node (producing level(c) candidates each); the staircase join emits the
// duplicate-free union directly. Paper: ~75% of the naive candidates are
// duplicates (increase paths of length 4 sharing ancestors).

#include "baselines/naive.h"
#include "bench_util.h"

namespace sj::bench {
namespace {

void Run() {
  PrintHeader("F11a (Fig. 11a)",
              "duplicates avoided on Q2's ancestor step (naive vs staircase)");
  TablePrinter t({"doc size", "context", "naive candidates",
                  "staircase result", "duplicates avoided", "dup ratio"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb);
    const NodeSequence& increases = w.Nodes("increase");

    // Naive candidate count (exact, analytic) + staircase result.
    uint64_t naive = NaiveCandidateCount(*w.doc, increases, Axis::kAncestor);
    JoinStats stats;
    NodeSequence result =
        StaircaseJoin(*w.doc, increases, Axis::kAncestor, {}, &stats).value();

    uint64_t avoided = naive - result.size();
    t.AddRow({SizeLabel(mb), TablePrinter::Count(increases.size()),
              TablePrinter::Count(naive), TablePrinter::Count(result.size()),
              TablePrinter::Count(avoided),
              TablePrinter::Fixed(
                  100.0 * static_cast<double>(avoided) /
                      static_cast<double>(naive),
                  1) + " %"});
  }
  t.Print();
  std::printf("paper: ~75%% duplicates at every size "
              "(level(increase)=4, paths intersect near the root)\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
