// AB1 -- Ablation: context pruning. Three aspects of Section 3.1/3.2:
//   (1) how much of a real context pruning removes (Q2's ancestor step and
//       a deliberately nested descendant context),
//   (2) fused (on-the-fly) pruning vs a separate pruning pass,
//   (3) the footnote-5 variant: exact subtree sizes (stored level) vs the
//       paper's 0<=level<=h estimate for ancestor-axis skip distances.

#include <algorithm>
#include <iterator>
#include <tuple>

#include "bench_util.h"

namespace sj::bench {
namespace {

double JoinMs(const Workload& w, const NodeSequence& ctx, Axis axis,
              const StaircaseOptions& opt) {
  return BestOfMillis(BenchReps(), [&] {
    auto r = StaircaseJoin(*w.doc, ctx, axis, opt);
    if (!r.ok()) std::abort();
  });
}

void Run() {
  PrintHeader("AB1 (ablation)", "pruning variants and skip estimators");
  TablePrinter prune({"doc size", "step", "context", "after pruning",
                      "pruned away"});
  TablePrinter timing({"doc size", "step", "fused pruning [ms]",
                       "separate pass [ms]", "anc skip h-bound [ms]",
                       "anc skip exact level [ms]"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb);
    const DocTable& doc = *w.doc;

    // Q2 ancestor step: increase contexts are disjoint leaves (nothing to
    // prune); a descendant-or-self-heavy context shows the other extreme.
    const NodeSequence& increases = w.Nodes("increase");
    NodeSequence nested;  // open_auction plus everything below: ~9 levels
    {
      const NodeSequence& auctions = w.Nodes("open_auction");
      const NodeSequence& bidders = w.Nodes("bidder");
      const NodeSequence& incs = w.Nodes("increase");
      nested.reserve(auctions.size() + bidders.size() + incs.size());
      std::merge(auctions.begin(), auctions.end(), bidders.begin(),
                 bidders.end(), std::back_inserter(nested));
      NodeSequence tmp;
      std::merge(nested.begin(), nested.end(), incs.begin(), incs.end(),
                 std::back_inserter(tmp));
      nested = std::move(tmp);
    }

    for (auto& [name, ctx, axis] :
         {std::tuple<const char*, const NodeSequence*, Axis>{
              "anc(increase)", &increases, Axis::kAncestor},
          {"desc(nested auction ctx)", &nested, Axis::kDescendant}}) {
      NodeSequence kept = PruneContext(doc, *ctx, axis);
      prune.AddRow({SizeLabel(mb), name, TablePrinter::Count(ctx->size()),
                    TablePrinter::Count(kept.size()),
                    TablePrinter::Fixed(
                        100.0 * static_cast<double>(ctx->size() -
                                                    kept.size()) /
                            static_cast<double>(ctx->size()),
                        1) + " %"});

      StaircaseOptions fused, separate, hbound, exact;
      separate.prune_on_the_fly = false;
      hbound.use_exact_level = false;
      exact.use_exact_level = true;
      timing.AddRow(
          {SizeLabel(mb), name,
           TablePrinter::Fixed(JoinMs(w, *ctx, axis, fused), 3),
           TablePrinter::Fixed(JoinMs(w, *ctx, axis, separate), 3),
           axis == Axis::kAncestor
               ? TablePrinter::Fixed(JoinMs(w, *ctx, axis, hbound), 3)
               : std::string("-"),
           axis == Axis::kAncestor
               ? TablePrinter::Fixed(JoinMs(w, *ctx, axis, exact), 3)
               : std::string("-")});
    }
  }
  std::printf("\npruning effectiveness:\n");
  prune.Print();
  std::printf("\ntiming:\n");
  timing.Print();
  std::printf("paper: pruning turns nested contexts into proper staircases "
              "(Fig. 6); fusing saves the separate context scan; exact "
              "sizes change skip distances by at most h\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
