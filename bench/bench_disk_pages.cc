// FW1 -- Future work (paper Section 6): staircase join in a disk-based
// RDBMS. The paged staircase join runs against an LRU buffer pool over a
// simulated disk; the experiment reports page faults for Q1's descendant
// step under the three skip modes and several buffer sizes. Skipping turns
// "nodes never touched" into pages never read -- the disk-based payoff the
// paper anticipates.

#include "bench_util.h"
#include "storage/paged_doc.h"

namespace sj::bench {
namespace {

void Run() {
  PrintHeader("FW1 (Section 6, future work)",
              "paged staircase join: page faults for Q1's descendant step");
  double mb = BenchSizes().size() > 2 ? BenchSizes()[2] : BenchSizes().back();
  Workload w = MakeWorkload(mb);
  storage::SimulatedDisk disk;
  auto paged = storage::PagedDocTable::Create(*w.doc, &disk).value();
  std::printf("document %s: %zu nodes, %zu post pages of %zu bytes\n\n",
              SizeLabel(mb).c_str(), w.doc->size(),
              paged->post_page_count(), storage::kPageSize);

  const NodeSequence& profiles = w.Nodes("profile");
  TablePrinter t({"buffer [pages]", "skip mode", "page faults", "page pins",
                  "hit rate", "time [ms]"});
  for (size_t pool_pages : {size_t{8}, size_t{64}, size_t{1024}}) {
    struct ModeRow {
      const char* name;
      SkipMode mode;
    };
    for (ModeRow m : {ModeRow{"none", SkipMode::kNone},
                      ModeRow{"skip", SkipMode::kSkip},
                      ModeRow{"estimated", SkipMode::kEstimated}}) {
      storage::BufferPool pool(&disk, pool_pages);
      StaircaseOptions opt;
      opt.skip_mode = m.mode;
      Timer timer;
      auto r = storage::PagedStaircaseJoin(*paged, &pool, profiles,
                                           Axis::kDescendant, opt);
      double ms = timer.ElapsedMillis();
      if (!r.ok()) std::abort();
      const storage::PoolStats& ps = pool.stats();
      t.AddRow({std::to_string(pool_pages), m.name,
                TablePrinter::Count(ps.faults), TablePrinter::Count(ps.pins),
                TablePrinter::Fixed(
                    100.0 * static_cast<double>(ps.hits) /
                        static_cast<double>(ps.pins),
                    1) + " %",
                TablePrinter::Fixed(ms, 2)});
    }
  }
  t.Print();
  std::printf("shape: 'none' faults every post page right of the first "
              "context node regardless of buffer size; skipping touches "
              "only result pages\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
