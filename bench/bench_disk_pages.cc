// FW1 -- Future work (paper Section 6): staircase join in a disk-based
// RDBMS. A full multi-step XPath query runs through a Session over the
// paged/BufferPool backend -- every staircase step reads its columns
// through an LRU buffer pool over a simulated disk -- and the experiment
// reports page faults under the three skip modes and several buffer
// sizes. Skipping turns "nodes never touched" into pages never read: the
// disk-based payoff the paper anticipates, now for whole location paths
// rather than a single join. Each configuration gets a private cold pool
// (SessionOptions::private_pool_pages), so runs never warm each other.

#include "bench_util.h"

namespace sj::bench {
namespace {

constexpr const char* kQuery =
    "/descendant::people/descendant::profile/descendant::interest";

void Run() {
  PrintHeader("FW1 (Section 6, future work)",
              "paged XPath evaluation: page faults for "
              "//people//profile//interest");
  double mb = BenchSizes().size() > 2 ? BenchSizes()[2] : BenchSizes().back();
  DatabaseOptions open;
  open.build_tag_index = false;  // this experiment joins over the document
  auto db = MakeDatabase(mb, open);
  std::printf("document %s: %zu nodes, %zu post pages of %zu bytes\n\n",
              SizeLabel(mb).c_str(), db->doc().size(),
              db->paged_doc()->post_page_count(), storage::kPageSize);

  TablePrinter t({"buffer [pages]", "skip mode", "page faults", "page pins",
                  "hit rate", "result", "time [ms]"});
  for (size_t pool_pages : {size_t{8}, size_t{64}, size_t{1024}}) {
    struct ModeRow {
      const char* name;
      SkipMode mode;
    };
    for (ModeRow m : {ModeRow{"none", SkipMode::kNone},
                      ModeRow{"skip", SkipMode::kSkip},
                      ModeRow{"estimated", SkipMode::kEstimated}}) {
      SessionOptions opt;
      opt.backend = StorageBackend::kPaged;
      opt.hints.pushdown = PushdownMode::kNever;  // measure the document scan
      // Step-at-a-time on purpose: this bench contrasts the staircase
      // join's skip modes; the twig join would collapse the chain and
      // equalize the rows (bench_twig_paths.cc measures the twig).
      opt.hints.twig = TwigMode::kNever;
      opt.staircase.skip_mode = m.mode;
      opt.private_pool_pages = pool_pages;  // cold pool per configuration
      auto session = db->CreateSession(opt);
      if (!session.ok()) {
        std::fprintf(stderr, "session failed: %s\n",
                     session.status().ToString().c_str());
        std::abort();
      }
      auto r = session.value().Run(kQuery);
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
      const storage::PoolStats ps = session.value().pool()->stats();
      t.AddRow({std::to_string(pool_pages), m.name,
                TablePrinter::Count(ps.faults), TablePrinter::Count(ps.pins),
                TablePrinter::Fixed(
                    100.0 * static_cast<double>(ps.hits) /
                        static_cast<double>(ps.pins),
                    1) + " %",
                TablePrinter::Count(r.value().nodes.size()),
                TablePrinter::Fixed(r.value().millis, 2)});
    }
  }
  t.Print();
  std::printf("shape: 'none' faults every post page right of the first "
              "context node on every step regardless of buffer size; "
              "skipping touches only result pages\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
