// S21 -- Paper Section 2.1: the Eq. (1) window predicate ("line 7")
// delimits the inner descendant index range scan by the actual subtree
// size instead of the document size. The XPath accelerator paper [8]
// reports speedups of up to three orders of magnitude from this predicate;
// this bench reproduces the effect on the B+-tree SQL plan.

#include "baselines/sql_plan.h"
#include "bench_util.h"

namespace sj::bench {
namespace {

void Run() {
  PrintHeader("S21 (Section 2.1)",
              "SQL plan descendant step with/without the Eq. (1) window "
              "predicate (context: profile nodes)");
  TablePrinter t({"doc size", "context", "entries scanned (no window)",
                  "entries scanned (window)", "time no window [ms]",
                  "time window [ms]", "speedup"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb);
    SqlPlanEvaluator sql(*w.doc);
    // Without the window predicate every per-context scan runs to the end
    // of the index (that is the point); sample the context so the bench
    // terminates. Entries-scanned ratios are unaffected by the sample.
    NodeSequence profiles = w.Nodes("profile");
    if (profiles.size() > 20) profiles.resize(20);

    SqlPlanOptions window, no_window;
    no_window.window_predicate = false;
    JoinStats with_stats, without_stats;
    double with_ms = BestOfMillis(BenchReps(), [&] {
      (void)sql.AxisStep(profiles, Axis::kDescendant, kNoTag, window,
                         &with_stats);
    });
    double without_ms = BestOfMillis(BenchReps(), [&] {
      (void)sql.AxisStep(profiles, Axis::kDescendant, kNoTag, no_window,
                         &without_stats);
    });
    t.AddRow({SizeLabel(mb), TablePrinter::Count(profiles.size()),
              TablePrinter::Count(without_stats.index_entries_scanned),
              TablePrinter::Count(with_stats.index_entries_scanned),
              TablePrinter::Fixed(without_ms, 2),
              TablePrinter::Fixed(with_ms, 2),
              TablePrinter::Fixed(without_ms / with_ms, 1) + "x"});
  }
  t.Print();
  std::printf("paper ([8] via Section 2.1): up to three orders of magnitude; "
              "the gap widens with document size because the windowed scan "
              "is result-sized\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
