// CS1 -- concurrent sessions over one shared Database: query throughput
// vs session count (1/2/4/8) on an XMark instance over the paged
// backend, with the shared BufferPool latched by ONE global mutex vs the
// per-bucket sharded latch (DatabaseOptions::pool_shards). The disk is
// given a realistic per-read latency and every query starts cold (the
// pool is flushed before each query, modeling a served hot set that is
// evicted between arrivals), so the runs are fault-dominated -- and a
// fault sleeps while the faulting page's latch is held. With one global
// latch every session therefore queues behind every disk read (the
// ROADMAP's "one global mutex ... serializing" open item); the sharded
// latch overlaps faults on different buckets, so total wall time for a
// fixed amount of work drops as sessions are added even on a single
// core. Results land in BENCH_concurrent_sessions.json as
//   {"query": "mix/<S>sessions", "backend": "pool-<N>-shards",
//    "size_mb", "faults", "skipped", "result", "ms"}
// records (skipped/result are the deterministic per-query sums over the
// run); throughput scaling beyond 1 session on the sharded pool is the
// acceptance signal.

#include <atomic>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace sj::bench {
namespace {

/// A mix touching every column family: staircase steps (post/kind),
/// child/attribute cursors (parent/tag), and a pushdown-eligible name
/// test (fragment pages).
constexpr const char* kMix[] = {
    "/descendant::open_auction/child::bidder/child::increase",
    "/descendant::person/attribute::id",
    "/descendant::profile/descendant::education",
    "/descendant::increase/ancestor::bidder",
};

/// Total query rounds, split across the sessions of a run (perfect
/// scaling halves the wall time per session-count doubling).
constexpr int kTotalRounds = 16;

/// Simulated disk read latency. 50us is a fast NVMe-class device; large
/// enough that faults dominate the runs, small enough that the bench
/// stays quick.
constexpr uint32_t kReadLatencyMicros = 50;

struct RunResult {
  double ms = 0;
  double qps = 0;
  uint64_t faults = 0;
  uint64_t skipped = 0;  ///< JoinStats::nodes_skipped summed over every query
  uint64_t result = 0;   ///< result cardinality summed over every query
};

RunResult RunSessions(const Database& db, unsigned session_count) {
  SessionOptions opt;
  opt.backend = StorageBackend::kPaged;
  std::vector<Session> sessions;
  sessions.reserve(session_count);
  for (unsigned s = 0; s < session_count; ++s) {
    auto session = db.CreateSession(opt);
    if (!session.ok()) {
      std::fprintf(stderr, "session failed: %s\n",
                   session.status().ToString().c_str());
      std::abort();
    }
    sessions.push_back(std::move(session).value());
  }
  db.buffer_pool()->FlushAll();
  db.buffer_pool()->ResetStats();

  const int rounds_per_session =
      kTotalRounds / static_cast<int>(session_count);
  // Per-query skipped/result are deterministic; their order-independent
  // sums stay deterministic under concurrency (unlike ms, and unlike
  // faults once sessions race on the shared pool).
  std::atomic<uint64_t> total_skipped{0};
  std::atomic<uint64_t> total_result{0};
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(session_count);
  for (unsigned s = 0; s < session_count; ++s) {
    threads.emplace_back([&, s] {
      for (int round = 0; round < rounds_per_session; ++round) {
        for (const char* q : kMix) {
          // Cold arrival: whatever an earlier query left resident is
          // dropped (pinned frames of in-flight queries survive), so
          // every query pays its faults -- the disk-bound regime.
          db.buffer_pool()->FlushAll();
          auto r = sessions[s].Run(q);
          if (!r.ok() || r.value().nodes.empty()) {
            std::fprintf(stderr, "query failed under concurrency: %s\n", q);
            std::abort();
          }
          total_skipped.fetch_add(r.value().totals.nodes_skipped,
                                  std::memory_order_relaxed);
          total_result.fetch_add(r.value().nodes.size(),
                                 std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  RunResult result;
  result.ms = timer.ElapsedMillis();
  result.skipped = total_skipped.load(std::memory_order_relaxed);
  result.result = total_result.load(std::memory_order_relaxed);
  result.qps = 1000.0 *
               static_cast<double>(rounds_per_session) *
               static_cast<double>(session_count) *
               static_cast<double>(std::size(kMix)) /
               result.ms;
  result.faults = db.buffer_pool()->stats().faults;
  return result;
}

void Run() {
  PrintHeader("CS1 (facade concurrency)",
              "query throughput vs session count on the paged backend: "
              "one global pool latch vs the per-bucket sharded latch");
  const double mb = BenchSizes().front();
  std::vector<JsonRecord> json;

  TablePrinter t({"pool latch", "sessions", "total queries", "time [ms]",
                  "queries/s", "speedup", "faults"});
  for (size_t shards : {size_t{1}, size_t{8}}) {
    DatabaseOptions open;
    open.pool_shards = shards;
    // Ample frames per shard (32 with 8 shards), so concurrent pins
    // never exhaust a bucket; the per-query flush supplies the faults.
    open.pool_pages = 256;
    auto db = MakeDatabase(mb, open);
    db->disk()->set_read_latency_micros(kReadLatencyMicros);
    const size_t actual_shards = db->buffer_pool()->shard_count();
    std::string label = "pool-" + std::to_string(actual_shards) +
                        (actual_shards == 1 ? "-shard" : "-shards");

    double base_qps = 0;
    for (unsigned sessions : {1u, 2u, 4u, 8u}) {
      RunResult r = RunSessions(*db, sessions);
      if (sessions == 1) base_qps = r.qps;
      t.AddRow({label, std::to_string(sessions),
                std::to_string(kTotalRounds * std::size(kMix)),
                TablePrinter::Fixed(r.ms, 1),
                TablePrinter::Count(static_cast<uint64_t>(r.qps)),
                TablePrinter::Fixed(r.qps / base_qps, 2) + "x",
                TablePrinter::Count(r.faults)});
      JsonRecord rec;
      rec.query = "mix/" + std::to_string(sessions) + "sessions";
      rec.backend = label;
      rec.size_mb = mb;
      rec.faults = r.faults;
      rec.ms = r.ms;
      rec.skipped = r.skipped;
      rec.result = r.result;
      json.push_back(std::move(rec));
    }
  }
  t.Print();
  std::printf("a fault sleeps %u us holding its page's latch: the single "
              "latch queues every session behind every disk read, the "
              "sharded latch overlaps faults on different buckets -- so "
              "only the sharded pool converts added sessions into "
              "throughput\n",
              kReadLatencyMicros);
  WriteJson(json, "BENCH_concurrent_sessions.json");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
