// F11b -- Paper Fig. 11(b): staircase join performance for Q2 as a
// function of document size. The single sequential pass per step makes
// execution time linear in the document size; early name tests improve the
// constant. The table reports ms and ms-per-MB (flat == linear).

#include "bench_util.h"

namespace sj::bench {
namespace {

/// Q2 with the name tests applied after each join (late).
double Q2Late(const Workload& w) {
  return BestOfMillis(BenchReps(), [&] {
    const DocTable& doc = *w.doc;
    NodeSequence s1 =
        StaircaseJoin(doc, {doc.root()}, Axis::kDescendant).value();
    // name test ::increase
    NodeSequence increases;
    TagId increase = w.Tag("increase");
    for (NodeId v : s1) {
      if (doc.tag(v) == increase && doc.kind(v) == NodeKind::kElement) {
        increases.push_back(v);
      }
    }
    NodeSequence s2 = StaircaseJoin(doc, increases, Axis::kAncestor).value();
    NodeSequence bidders;
    TagId bidder = w.Tag("bidder");
    for (NodeId v : s2) {
      if (doc.tag(v) == bidder && doc.kind(v) == NodeKind::kElement) {
        bidders.push_back(v);
      }
    }
    if (bidders.empty()) std::abort();  // keep the work observable
  });
}

/// Q2 with name tests pushed into the joins (early, over tag fragments).
double Q2Early(const Workload& w) {
  return BestOfMillis(BenchReps(), [&] {
    const DocTable& doc = *w.doc;
    NodeSequence increases =
        StaircaseJoinView(doc, w.index->view(w.Tag("increase")),
                          {doc.root()}, Axis::kDescendant)
            .value();
    NodeSequence bidders =
        StaircaseJoinView(doc, w.index->view(w.Tag("bidder")), increases,
                          Axis::kAncestor)
            .value();
    if (bidders.empty()) std::abort();
  });
}

void Run() {
  PrintHeader("F11b (Fig. 11b)",
              "Q2 staircase join execution time vs document size (linear)");
  TablePrinter t({"doc size", "nodes", "scj [ms]", "scj [ms/MB]",
                  "scj early nametest [ms]", "early [ms/MB]"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb);
    double late = Q2Late(w);
    double early = Q2Early(w);
    t.AddRow({SizeLabel(mb), TablePrinter::Count(w.doc->size()),
              TablePrinter::Fixed(late, 2), TablePrinter::Fixed(late / mb, 3),
              TablePrinter::Fixed(early, 2),
              TablePrinter::Fixed(early / mb, 3)});
  }
  t.Print();
  std::printf("paper: both series are straight lines on the log-log plot "
              "(time linear in document size)\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
