// UM1 -- serving an updatable document: the overlay's read overhead and
// snapshot isolation under a concurrent writer.
//
// Two phases over one XMark instance (fixed 1.1 MB at every scale, so
// the gated rows never move):
//
// Phase A (overlay vs compacted, single-threaded, deterministic): a
// deterministic edit script (inserts, deletes, replacements; seeded RNG)
// commits through the delta store, then the read mix runs on all three
// backends twice -- over the live overlay, and again after
// Database::Compact folded the delta into fresh images. The bench
// asserts the two regimes answer node-identically (the delta store's
// core claim) and reports the overlay's read overhead.
// faults/skipped/result are deterministic (cold pool per query) and
// gated by tools/check_bench_regression.py.
//
// Phase B (writer vs readers, concurrent): 4 client threads draw a
// zipf(1.1) schedule over the read mix while a writer commits edit
// bursts of fresh-tag subtrees (and periodically compacts). The writer's
// edits are disjoint from the read mix's tags, so snapshot isolation
// makes every reader's answer independent of the writer: the bench
// asserts the summed result cardinality with the writer equals the
// no-writer run's, and reports client-observed p50/p95/p99 both ways
// (percentiles ride in the JSON rows, never gated).
//
// Results land in BENCH_update_mix.json.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "util/rng.h"

namespace sj::bench {
namespace {

/// The read mix of both phases: staircase scans, a twig cascade, an
/// ancestor walk, an attribute step -- plus one query over a tag that
/// only exists in the delta (the overlay's merged dictionary at work).
constexpr const char* kReadMix[] = {
    "/descendant::open_auction/child::bidder/child::increase",
    "/descendant::person/attribute::id",
    "/descendant::regions/descendant::item/descendant::mailbox"
    "/descendant::date",
    "/descendant::increase/ancestor::bidder",
    "/descendant::upd/child::rec",
};

/// Phase A edit script: commits x ops-per-commit, seeded.
constexpr int kEditCommits = 6;
constexpr int kOpsPerCommit = 4;
constexpr uint64_t kEditSeed = 0x10fe23a9;

/// Phase B: queries each client issues, clients, writer burst size.
constexpr int kQueriesPerThread = 96;
constexpr unsigned kClientThreads = 4;
constexpr int kWriterBurst = 4;
constexpr uint64_t kScheduleSeed = 0x7a11c0de;

/// Timing floor: the asserted phase B comparison runs over a saturated
/// thread pool; a single rep's scheduler jitter is real.
constexpr int kMinTimedReps = 2;

int TimedReps() { return std::max(BenchReps(), kMinTimedReps); }

Session MustCreateSession(const Database& db, const SessionOptions& opt) {
  auto session = db.CreateSession(opt);
  if (!session.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 session.status().ToString().c_str());
    std::abort();
  }
  return std::move(session).value();
}

QueryResult MustRun(Session& session, const char* query) {
  auto r = session.Run(query);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n", query,
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

// --- phase A: overlay vs compacted -----------------------------------------

/// Applies the deterministic edit script: inserts of <upd><rec/></upd>
/// fragments under random element parents, small-subtree deletions and
/// replacements. Every op addresses the working document's logical
/// ranks; the script is a function of the seed and the generated
/// instance only.
void ApplyEditScript(Database* db) {
  Rng rng(kEditSeed);
  for (int commit = 0; commit < kEditCommits; ++commit) {
    auto merged = db->CurrentSnapshot()->MergedDoc();
    if (!merged.ok()) {
      std::fprintf(stderr, "merge failed: %s\n",
                   merged.status().ToString().c_str());
      std::abort();
    }
    const DocTable& doc = *merged.value();
    std::vector<NodeId> elements;
    for (NodeId v = 0; v < doc.size(); ++v) {
      if (doc.kind(v) == NodeKind::kElement) elements.push_back(v);
    }
    EditTxn txn = db->BeginEdit();
    for (int op = 0; op < kOpsPerCommit; ++op) {
      const uint64_t kind = rng.Below(10);
      const NodeId v = elements[rng.Below(elements.size())];
      if (kind < 6) {
        (void)txn.InsertLastChild(v, "<upd><rec/></upd>");
      } else if (kind < 8) {
        if (v != 0 && doc.subtree_size(v) <= 32) (void)txn.DeleteSubtree(v);
      } else {
        if (v != 0 && doc.subtree_size(v) <= 32) {
          (void)txn.ReplaceSubtree(v, "<upd><rec/><rec/></upd>");
        }
      }
    }
    if (!txn.Commit().ok()) {
      std::fprintf(stderr, "edit commit %d failed\n", commit);
      std::abort();
    }
  }
}

struct MixRun {
  double ms = -1;  ///< best-of-reps wall time over the whole mix
  uint64_t faults = 0;
  uint64_t skipped = 0;
  uint64_t result = 0;
  std::vector<NodeSequence> nodes;
};

MixRun RunMix(const Database& db, Session& session) {
  const bool pooled = session.pool() != nullptr;
  MixRun out;
  for (int rep = 0; rep < TimedReps(); ++rep) {
    if (pooled) {
      db.buffer_pool()->FlushAll();
      db.buffer_pool()->ResetStats();
    }
    uint64_t skipped = 0;
    uint64_t result = 0;
    std::vector<NodeSequence> nodes;
    Timer timer;
    for (const char* query : kReadMix) {
      QueryResult r = MustRun(session, query);
      skipped += r.totals.nodes_skipped;
      result += r.nodes.size();
      nodes.push_back(std::move(r.nodes));
    }
    const double ms = timer.ElapsedMillis();
    if (out.ms < 0 || ms < out.ms) out.ms = ms;
    out.faults = pooled ? db.buffer_pool()->stats().faults : 0;
    out.skipped = skipped;
    out.result = result;
    out.nodes = std::move(nodes);
  }
  return out;
}

void PhaseOverlayVsCompacted(std::vector<JsonRecord>* json, double mb) {
  auto db = MakeDatabase(mb);
  ApplyEditScript(db.get());
  const uint64_t delta_nodes = db->CurrentSnapshot()->delta_nodes();

  struct Backend {
    StorageBackend backend;
    const char* label;
  };
  const Backend backends[] = {{StorageBackend::kMemory, "memory"},
                              {StorageBackend::kPaged, "paged"},
                              {StorageBackend::kCompressed, "compressed"}};

  TablePrinter t({"backend", "regime", "faults", "skipped", "result",
                  "mix ms", "overhead"});
  // Overlay first, then fold; the same Session objects rebind to the
  // compacted snapshot on their next Run (the session-follows-epoch
  // path this bench exists to price).
  std::vector<MixRun> overlay_runs;
  std::vector<Session> sessions;
  for (const Backend& b : backends) {
    SessionOptions opt;
    opt.backend = b.backend;
    sessions.push_back(MustCreateSession(*db, opt));
    overlay_runs.push_back(RunMix(*db, sessions.back()));
  }
  if (!db->Compact().ok()) {
    std::fprintf(stderr, "Compact failed\n");
    std::abort();
  }
  for (size_t i = 0; i < std::size(backends); ++i) {
    const Backend& b = backends[i];
    const MixRun& overlay = overlay_runs[i];
    const MixRun compacted = RunMix(*db, sessions[i]);
    // The core claim: folding the delta into fresh images changes not
    // one node of one answer.
    if (overlay.nodes != compacted.nodes) {
      std::fprintf(stderr, "compaction changed results on %s\n", b.label);
      std::abort();
    }
    const char* regimes[] = {"overlay", "compacted"};
    const MixRun* runs[] = {&overlay, &compacted};
    for (int r = 0; r < 2; ++r) {
      t.AddRow({b.label, regimes[r], TablePrinter::Count(runs[r]->faults),
                TablePrinter::Count(runs[r]->skipped),
                TablePrinter::Count(runs[r]->result),
                TablePrinter::Fixed(runs[r]->ms, 2),
                r == 0 ? TablePrinter::Fixed(overlay.ms / compacted.ms, 2) +
                             "x"
                       : "1.00x"});
      JsonRecord rec;
      rec.query = "update-mix";
      rec.backend = std::string(b.label) + "/" + regimes[r];
      rec.size_mb = mb;
      rec.faults = runs[r]->faults;
      rec.ms = runs[r]->ms;
      rec.skipped = runs[r]->skipped;
      rec.result = runs[r]->result;
      json->push_back(std::move(rec));
    }
  }
  t.Print();
  std::printf("%d commits left %llu resident delta nodes; reads merged "
              "them in rank order until Compact rebuilt the images\n",
              kEditCommits, static_cast<unsigned long long>(delta_nodes));
}

// --- phase B: readers vs a writer ------------------------------------------

std::vector<double> ZipfCdf(size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

size_t DrawZipf(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.NextDouble();
  return static_cast<size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

struct ServeRun {
  double ms = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  uint64_t result = 0;  ///< schedule-deterministic sum over every query
  uint64_t commits = 0;
  uint64_t compactions = 0;
};

/// Runs the closed-loop zipf schedule, optionally against a concurrent
/// writer committing <wpatch/> bursts (a tag the read mix never
/// touches, so isolation keeps every answer's cardinality fixed).
ServeRun Serve(Database* db, bool with_writer) {
  const std::vector<double> cdf = ZipfCdf(std::size(kReadMix), 1.1);
  ServeRun best;
  bool first = true;
  for (int rep = 0; rep < TimedReps(); ++rep) {
    std::vector<Session> sessions;
    sessions.reserve(kClientThreads);
    for (unsigned s = 0; s < kClientThreads; ++s) {
      sessions.push_back(MustCreateSession(*db, SessionOptions{}));
    }
    std::vector<std::vector<double>> latencies(kClientThreads);
    std::atomic<uint64_t> total_result{0};
    std::atomic<bool> stop{false};
    uint64_t commits = 0;
    uint64_t compactions = 0;
    std::thread writer;
    if (with_writer) {
      writer = std::thread([db, &stop, &commits, &compactions] {
        while (!stop.load(std::memory_order_relaxed)) {
          EditTxn txn = db->BeginEdit();
          bool ok = true;
          for (int i = 0; i < kWriterBurst && ok; ++i) {
            ok = txn.InsertLastChild(0, "<wpatch/>").ok();
          }
          if (ok && txn.Commit().ok()) ++commits;
          if (commits % 8 == 7) {
            if (db->Compact().ok()) ++compactions;
          }
        }
      });
    }
    Timer wall;
    std::vector<std::thread> clients;
    clients.reserve(kClientThreads);
    for (unsigned s = 0; s < kClientThreads; ++s) {
      clients.emplace_back([&, s] {
        Rng rng(kScheduleSeed + s);
        latencies[s].reserve(kQueriesPerThread);
        for (int q = 0; q < kQueriesPerThread; ++q) {
          const char* query = kReadMix[DrawZipf(cdf, rng)];
          Timer timer;
          QueryResult r = MustRun(sessions[s], query);
          latencies[s].push_back(timer.ElapsedMillis());
          total_result.fetch_add(r.nodes.size(), std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& c : clients) c.join();
    const double ms = wall.ElapsedMillis();
    stop.store(true, std::memory_order_relaxed);
    if (writer.joinable()) writer.join();
    if (first || ms < best.ms) {
      first = false;
      std::vector<double> all;
      for (const std::vector<double>& per_thread : latencies) {
        all.insert(all.end(), per_thread.begin(), per_thread.end());
      }
      std::sort(all.begin(), all.end());
      auto pct = [&all](double q) {
        return all[std::min(all.size() - 1,
                            static_cast<size_t>(q * all.size()))];
      };
      best.ms = ms;
      best.p50 = pct(0.50);
      best.p95 = pct(0.95);
      best.p99 = pct(0.99);
      best.result = total_result.load(std::memory_order_relaxed);
      best.commits = commits;
      best.compactions = compactions;
    }
  }
  return best;
}

void PhaseWriterVsReaders(std::vector<JsonRecord>* json, double mb) {
  // Memory-only images: phase B prices snapshot churn on the CPU path,
  // not the disk. A fresh instance, so phase A's edits don't leak in.
  DatabaseOptions open;
  open.build_paged = false;
  open.build_compressed = false;
  auto db = MakeDatabase(mb, open);

  ServeRun quiet = Serve(db.get(), /*with_writer=*/false);
  ServeRun busy = Serve(db.get(), /*with_writer=*/true);
  // Snapshot isolation, priced and asserted: the writer's commits and
  // compactions moved the epoch under every reader, yet no answer
  // changed -- the summed cardinality is schedule-deterministic.
  if (busy.result != quiet.result) {
    std::fprintf(stderr,
                 "concurrent writer changed reader results: %llu vs %llu\n",
                 static_cast<unsigned long long>(busy.result),
                 static_cast<unsigned long long>(quiet.result));
    std::abort();
  }

  TablePrinter t({"writer", "clients", "p50 [ms]", "p95 [ms]", "p99 [ms]",
                  "commits", "compactions"});
  const char* labels[] = {"no-writer", "with-writer"};
  const ServeRun* runs[] = {&quiet, &busy};
  for (int i = 0; i < 2; ++i) {
    t.AddRow({labels[i], std::to_string(kClientThreads),
              TablePrinter::Fixed(runs[i]->p50, 3),
              TablePrinter::Fixed(runs[i]->p95, 3),
              TablePrinter::Fixed(runs[i]->p99, 3),
              TablePrinter::Count(runs[i]->commits),
              TablePrinter::Count(runs[i]->compactions)});
    JsonRecord rec;
    rec.query = "zipf-read-mix/" + std::to_string(kClientThreads) + "clients";
    rec.backend = labels[i];
    rec.size_mb = mb;
    rec.ms = runs[i]->ms;
    rec.result = runs[i]->result;
    rec.p50_ms = runs[i]->p50;
    rec.p95_ms = runs[i]->p95;
    rec.p99_ms = runs[i]->p99;
    json->push_back(std::move(rec));
  }
  t.Print();
  std::printf("readers rebind to each published epoch between queries; "
              "the writer's %llu commits (+%llu compactions) never touched "
              "a result\n",
              static_cast<unsigned long long>(busy.commits),
              static_cast<unsigned long long>(busy.compactions));
}

void Run() {
  PrintHeader("UM1 (update mix)",
              "MVCC delta store under a read mix: overlay vs compacted "
              "read cost, and reader latency against a concurrent writer");
  const double mb = 1.1;  // fixed at every scale: the gated rows never move
  std::vector<JsonRecord> json;
  PhaseOverlayVsCompacted(&json, mb);
  PhaseWriterVsReaders(&json, mb);
  WriteJson(json, "BENCH_update_mix.json");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
