// CC1 -- Compressed (FOR/delta) columns behind the buffer pool: the same
// XMark queries over the paged and the compressed backend at EQUAL page
// size and EQUAL pool size, cold, through the Database/Session facade.
// The compressed image packs the same ranks into a fraction of the
// pages, so the identical staircase scan faults strictly fewer of them
// -- the Leapfrog-style "touch less data per seek" payoff the ISSUE
// names. Results land in BENCH_compressed_columns.json as
//   {"query", "backend", "size_mb", "faults", "skipped", "result", "ms"}
// records; faults/skipped/result are deterministic and gated by the CI
// perf-regression job against bench/baselines/.

#include <vector>

#include "bench_util.h"

namespace sj::bench {
namespace {

/// Descendant scans and a following region query over the XMark schema;
/// the acceptance bar is strictly fewer compressed faults on at least
/// two of them (this bench enforces it on all three).
constexpr const char* kQueries[] = {
    "/descendant::people/descendant::profile/descendant::interest",
    "/descendant::open_auction/descendant::bidder",
    "/descendant::person/following::open_auction",
};

constexpr size_t kPoolPages = 64;

struct ColdRun {
  uint64_t faults = 0;
  uint64_t skipped = 0;
  size_t result = 0;
  double ms = -1;
};

ColdRun RunCold(Session& session, const char* query) {
  ColdRun out;
  for (int rep = 0; rep < BenchReps(); ++rep) {
    session.pool()->FlushAll();
    session.pool()->ResetStats();
    auto r = session.Run(query);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
    out.faults = session.pool()->stats().faults;
    out.skipped = r.value().totals.nodes_skipped;
    out.result = r.value().nodes.size();
    if (out.ms < 0 || r.value().millis < out.ms) out.ms = r.value().millis;
  }
  return out;
}

void Run() {
  PrintHeader("CC1 (compressed columns)",
              "FOR/delta block-compressed columns vs uncompressed pages: "
              "faults per query at equal page and pool size");
  std::vector<JsonRecord> json;

  TablePrinter sizes({"doc size", "nodes", "paged pages", "compressed pages",
                      "compressed bytes", "shrink"});
  TablePrinter t({"doc size", "query", "paged faults", "compressed faults",
                  "savings", "paged [ms]", "compressed [ms]", "result"});
  for (double mb : BenchSizes()) {
    DatabaseOptions open;
    open.build_tag_index = false;  // both backends join over the document
    auto db = MakeDatabase(mb, open);
    const size_t n = db->doc().size();
    const size_t paged_pages =
        3 * ((n + storage::kRanksPerPage - 1) / storage::kRanksPerPage) +
        2 * ((n + storage::kPageSize - 1) / storage::kPageSize);
    const size_t compressed_pages = db->compressed_doc()->page_count();
    sizes.AddRow(
        {SizeLabel(mb), TablePrinter::Count(n),
         TablePrinter::Count(paged_pages),
         TablePrinter::Count(compressed_pages),
         TablePrinter::Count(db->compressed_doc()->encoded_bytes()),
         TablePrinter::Fixed(static_cast<double>(paged_pages) /
                                 static_cast<double>(compressed_pages),
                             1) +
             "x"});

    SessionOptions paged_opt;
    paged_opt.backend = StorageBackend::kPaged;
    paged_opt.hints.pushdown = PushdownMode::kNever;
    // Step-at-a-time on purpose: this bench compares the raw column scans
    // of the two storage formats; the twig join would collapse the chain
    // queries to a handful of fragment pages on both backends
    // (bench_twig_paths.cc measures that effect).
    paged_opt.hints.twig = TwigMode::kNever;
    paged_opt.private_pool_pages = kPoolPages;  // cold pool per backend
    SessionOptions zip_opt = paged_opt;
    zip_opt.backend = StorageBackend::kCompressed;
    auto paged = db->CreateSession(paged_opt);
    auto zip = db->CreateSession(zip_opt);
    if (!paged.ok() || !zip.ok()) {
      std::fprintf(stderr, "session failed\n");
      std::abort();
    }

    for (const char* q : kQueries) {
      ColdRun p = RunCold(paged.value(), q);
      ColdRun z = RunCold(zip.value(), q);
      if (z.result != p.result || z.skipped != p.skipped) {
        std::fprintf(stderr, "compressed query diverged: %s\n", q);
        std::abort();
      }
      if (z.faults >= p.faults) {
        // The acceptance bar of the compressed backend; a violation is a
        // codec or layout regression and must fail the smoke run.
        std::fprintf(stderr,
                     "compressed backend faulted %llu pages vs paged %llu "
                     "on %s\n",
                     static_cast<unsigned long long>(z.faults),
                     static_cast<unsigned long long>(p.faults), q);
        std::abort();
      }
      t.AddRow({SizeLabel(mb), q, TablePrinter::Count(p.faults),
                TablePrinter::Count(z.faults),
                TablePrinter::Fixed(static_cast<double>(p.faults) /
                                        static_cast<double>(z.faults),
                                    1) +
                    "x",
                TablePrinter::Fixed(p.ms, 2), TablePrinter::Fixed(z.ms, 2),
                TablePrinter::Count(p.result)});
      json.push_back({q, "paged-cold", mb, p.faults, p.ms, p.skipped,
                      p.result, 0, 0, 0});
      json.push_back({q, "compressed-cold", mb, z.faults, z.ms, z.skipped,
                      z.result, 0, 0, 0});
    }
  }
  sizes.Print();
  std::printf("the compressed image is the same five columns in a fraction "
              "of the pages; fence keys stay resident so SkipTo seeks "
              "block-granularly\n\n");
  t.Print();
  std::printf("equal page size (%zu B), equal pool (%zu pages), same "
              "queries: every scan faults strictly fewer compressed pages; "
              "skipped nodes and results are byte-identical\n",
              storage::kPageSize, kPoolPages);
  WriteJson(json, "BENCH_compressed_columns.json");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
