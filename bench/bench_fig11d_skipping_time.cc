// F11d -- Paper Fig. 11(d): effectiveness of skipping, measured in
// execution time for Q1's descendant step. Paper: skipping roughly halves
// the time at larger sizes; estimation-based skipping (the branch-free
// copy phase of Section 4.2) gains another ~20%.

#include "bench_util.h"

namespace sj::bench {
namespace {

double StepMs(const Workload& w, const NodeSequence& ctx, SkipMode mode) {
  StaircaseOptions opt;
  opt.skip_mode = mode;
  return BestOfMillis(BenchReps(), [&] {
    auto r = StaircaseJoin(*w.doc, ctx, Axis::kDescendant, opt);
    if (!r.ok()) std::abort();
  });
}

void Run() {
  PrintHeader("F11d (Fig. 11d)",
              "execution time of Q1's descendant step: no skipping vs "
              "skipping vs estimation-based skipping");
  TablePrinter t({"doc size", "no skipping [ms]", "skipping [ms]",
                  "skipping (estimated) [ms]", "skip/none", "est/skip"});
  for (double mb : BenchSizes()) {
    Workload w = MakeWorkload(mb);
    const NodeSequence& profiles = w.Nodes("profile");
    double none = StepMs(w, profiles, SkipMode::kNone);
    double skip = StepMs(w, profiles, SkipMode::kSkip);
    double est = StepMs(w, profiles, SkipMode::kEstimated);
    t.AddRow({SizeLabel(mb), TablePrinter::Fixed(none, 3),
              TablePrinter::Fixed(skip, 3), TablePrinter::Fixed(est, 3),
              TablePrinter::Fixed(skip / none, 2),
              TablePrinter::Fixed(est / skip, 2)});
  }
  t.Print();
  std::printf("paper: skipping cuts time roughly in half at the larger "
              "sizes; estimation-based skipping ~20%% on top\n");
}

}  // namespace
}  // namespace sj::bench

int main() {
  sj::bench::Run();
  return 0;
}
