// Shared benchmark harness: document-size sweeps matching the paper's
// x-axis (1.1 / 11 / 111 / 1111 MB), cached workload construction, and
// paper-vs-measured table output.
//
// Environment:
//   SJ_BENCH_SCALE=small  -> sizes {1.1, 11}
//   (default)             -> sizes {1.1, 11, 111}
//   SJ_BENCH_SCALE=xl     -> sizes {1.1, 11, 111, 1111}  (the paper's full
//                            sweep; needs ~2 GB RAM)
//   SJ_BENCH_REPS=N       -> timing repetitions (default 3, best-of)

#ifndef STAIRJOIN_BENCH_BENCH_UTIL_H_
#define STAIRJOIN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "core/staircase_join.h"
#include "core/tag_view.h"
#include "encoding/doc_table.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "xmlgen/xmark.h"

namespace sj::bench {

/// One generated workload instance.
struct Workload {
  double size_mb = 0;
  std::unique_ptr<DocTable> doc;
  std::unique_ptr<TagIndex> index;

  /// Dictionary code of `name`; kNoTag (empty TagIndex view) if the
  /// generated document happens not to contain it.
  TagId Tag(const char* name) const {
    return doc->tags().Lookup(name).value_or(kNoTag);
  }

  /// All element nodes with the given tag, in document order.
  const NodeSequence& Nodes(const char* name) const {
    return index->view(Tag(name)).pre;
  }
};

/// Document sizes for the sweep (see header comment).
inline std::vector<double> BenchSizes() {
  const char* scale = std::getenv("SJ_BENCH_SCALE");
  if (scale != nullptr && std::string(scale) == "small") return {1.1, 11.0};
  if (scale != nullptr && std::string(scale) == "xl") {
    return {1.1, 11.0, 111.0, 1111.0};
  }
  return {1.1, 11.0, 111.0};
}

/// Timing repetitions (best-of-N).
inline int BenchReps() {
  const char* reps = std::getenv("SJ_BENCH_REPS");
  int n = reps != nullptr ? std::atoi(reps) : 3;
  return n > 0 ? n : 3;
}

/// Generates (and fragments) one workload instance; prints progress.
inline Workload MakeWorkload(double size_mb, bool with_index = true) {
  Workload w;
  w.size_mb = size_mb;
  xmlgen::XMarkOptions gen;
  gen.size_mb = size_mb;
  gen.rich_text = false;
  BuildOptions build;
  build.store_values = false;
  Timer t;
  auto doc = xmlgen::GenerateXMarkDocument(gen, build);
  if (!doc.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 doc.status().ToString().c_str());
    std::abort();
  }
  w.doc = std::move(doc).value();
  if (with_index) w.index = std::make_unique<TagIndex>(*w.doc);
  std::fprintf(stderr, "[workload] %.1f MB-equivalent: %zu nodes (%.0f ms)\n",
               size_mb, w.doc->size(), t.ElapsedMillis());
  return w;
}

/// Opens a Database over a generated XMark instance (structure only, no
/// stored values): the facade twin of MakeWorkload for benches that query
/// through Sessions rather than calling joins directly. `options.build`
/// is forced to store_values=false; everything else is honored.
inline std::unique_ptr<Database> MakeDatabase(double size_mb,
                                              DatabaseOptions options = {}) {
  xmlgen::XMarkOptions gen;
  gen.size_mb = size_mb;
  gen.rich_text = false;
  options.build.store_values = false;
  Timer t;
  auto db = Database::FromXmark(gen, options);
  if (!db.ok()) {
    std::fprintf(stderr, "database open failed: %s\n",
                 db.status().ToString().c_str());
    std::abort();
  }
  std::fprintf(stderr, "[workload] %.1f MB-equivalent: %zu nodes (%.0f ms)\n",
               size_mb, db.value()->doc().size(), t.ElapsedMillis());
  return std::move(db).value();
}

/// Formats a document size like the paper's x-axis labels.
inline std::string SizeLabel(double mb) {
  return TablePrinter::Fixed(mb, 1) + " MB";
}

/// Prints the standard bench header.
inline void PrintHeader(const char* experiment_id, const char* description) {
  std::printf(
      "==============================================================\n");
  std::printf("%s\n%s\n", experiment_id, description);
  std::printf(
      "==============================================================\n");
}

/// One machine-readable benchmark record (the shared BENCH_*.json row
/// format of the IO-conscious benches). `faults`, `skipped` and `result`
/// are deterministic for single-threaded cold-pool runs -- the CI
/// perf-regression gate (tools/check_bench_regression.py) compares them
/// against committed baselines; `ms` is wall time and never gated.
struct JsonRecord {
  std::string query;
  std::string backend;
  double size_mb = 0;
  uint64_t faults = 0;
  double ms = 0;
  uint64_t skipped = 0;  ///< JoinStats::nodes_skipped summed over the plan
  uint64_t result = 0;   ///< join-result cardinality
  /// Client-observed latency percentiles, milliseconds (serving benches;
  /// single-query benches leave them 0). Wall time, never gated.
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

/// Writes records as a JSON array to `path` (logs to stderr).
inline void WriteJson(const std::vector<JsonRecord>& records,
                      const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    std::fprintf(f,
                 "  {\"query\": \"%s\", \"backend\": \"%s\", "
                 "\"size_mb\": %.1f, \"faults\": %llu, \"skipped\": %llu, "
                 "\"result\": %llu, \"ms\": %.3f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 r.query.c_str(), r.backend.c_str(), r.size_mb,
                 static_cast<unsigned long long>(r.faults),
                 static_cast<unsigned long long>(r.skipped),
                 static_cast<unsigned long long>(r.result), r.ms, r.p50_ms,
                 r.p95_ms, r.p99_ms,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "[json] wrote %zu records to %s\n", records.size(),
               path);
}

}  // namespace sj::bench

#endif  // STAIRJOIN_BENCH_BENCH_UTIL_H_
