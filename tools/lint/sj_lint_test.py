#!/usr/bin/env python3
"""Self-test for sj-lint: the clean tree passes, every seeded-violation
fixture fails its intended rule (and only fires where its rule says).

Run directly or via ctest (test name: sj_lint_selftest). Exit 0 on
success, 1 with a report on any miss -- a fixture that stops failing
means the lint rule has rotted and guards nothing.
"""

import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
LINT = HERE / "sj_lint.py"
FIXTURES = HERE / "fixtures"

# fixture file -> (treat-as path, rule that must fire)
CASES = {
    "pool_bypass.cc": ("src/xpath/evil.cc", "pool-bypass"),
    "rogue_backend_switch.cc": ("src/api/evil.cc", "backend-dispatch"),
    "drifted_explain_literal.cc": ("src/xpath/evil.cc", "explain-literal"),
    "stats_free_kernel.h": ("src/core/kernels.h", "stats-on-advance"),
    "bench_missing_fields.cc": ("bench/bench_evil.cc", "bench-json"),
    "bench_missing_percentiles.cc": ("bench/bench_evil.cc", "bench-json"),
    "rogue_image_mutation.cc": ("src/api/evil.cc", "delta-mutation"),
    "rogue_cost_constant.cc": ("src/xpath/evil.cc", "cost-literal"),
}

# The same fixtures linted at exempt locations must be clean: the rules
# scope to the IO-conscious core, not the whole world.
EXEMPT = {
    "pool_bypass.cc": "src/storage/evil.cc",
    "rogue_backend_switch.cc": "src/xpath/backend_dispatch.h",
    "drifted_explain_literal.cc": "src/xpath/explain_strings.h",
    "stats_free_kernel.h": "src/core/doc_accessor.h",
    "bench_missing_fields.cc": "tests/evil_test.cc",
    "bench_missing_percentiles.cc": "tests/evil_test.cc",
    "rogue_image_mutation.cc": "src/delta/evil.cc",
    "rogue_cost_constant.cc": "src/xpath/cost_model.h",
}


def run_lint(args):
    proc = subprocess.run([sys.executable, str(LINT)] + args,
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []

    code, out = run_lint([])
    if code != 0:
        failures.append(f"clean tree should pass but exited {code}:\n{out}")

    for name, (treat_as, rule) in CASES.items():
        path = FIXTURES / name
        code, out = run_lint(["--treat-as", treat_as, str(path)])
        if code != 1:
            failures.append(
                f"{name} (as {treat_as}) should fail, exited {code}:\n{out}")
        elif f"[{rule}]" not in out:
            failures.append(
                f"{name} (as {treat_as}) should trip [{rule}], got:\n{out}")

    for name, treat_as in EXEMPT.items():
        path = FIXTURES / name
        code, out = run_lint(["--treat-as", treat_as, str(path)])
        if code != 0:
            failures.append(
                f"{name} at exempt location {treat_as} should pass, "
                f"exited {code}:\n{out}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        print(f"sj_lint_test: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    total = len(CASES) + len(EXEMPT) + 1
    print(f"sj_lint_test: {total} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
