#!/usr/bin/env bash
# Runs the curated .clang-tidy profile over every src/**/*.cc
# translation unit using the compile_commands.json that every CMake
# configure exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
#
# Usage: tools/lint/run_clang_tidy.sh [BUILD_DIR] [JOBS]
#   BUILD_DIR  directory holding compile_commands.json (default: build)
#   JOBS       parallel clang-tidy processes (default: nproc)
#
# Exit status: 0 clean, 1 findings, 3 skipped (no clang-tidy on PATH --
# a developer convenience; the static-analysis CI job pins
# clang-tidy-18 and treats findings as failures).

set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
JOBS="${2:-$(nproc 2>/dev/null || echo 4)}"

TIDY=""
for candidate in clang-tidy-18 clang-tidy; do
  if command -v "$candidate" >/dev/null 2>&1; then
    TIDY="$candidate"
    break
  fi
done
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: no clang-tidy on PATH; skipping (CI runs it)" >&2
  exit 3
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json not found;" \
       "configure first: cmake -B $BUILD_DIR -S $ROOT" >&2
  exit 2
fi

echo "run_clang_tidy: $($TIDY --version | head -n1)"

# Only first-party translation units; headers are covered through
# HeaderFilterRegex in .clang-tidy.
mapfile -t FILES < <(cd "$ROOT" && find src -name '*.cc' | sort)
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no sources found under $ROOT/src" >&2
  exit 2
fi

echo "run_clang_tidy: ${#FILES[@]} translation units, $JOBS jobs"
FAILED=0
printf '%s\n' "${FILES[@]}" |
  (cd "$ROOT" && xargs -P "$JOBS" -n 1 \
      "$TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*') || FAILED=1

if [ "$FAILED" -ne 0 ]; then
  echo "run_clang_tidy: findings above are errors (curated profile in" \
       ".clang-tidy)" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
