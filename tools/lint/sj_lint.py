#!/usr/bin/env python3
"""sj-lint: project-specific invariants the compiler cannot see.

The IO-conscious core survives on conventions that no C++ diagnostic
enforces. This pass makes them hard failures in CI:

  pool-bypass       BufferPool::Pin/Unpin are the storage cursors'
                    private protocol. A call anywhere else under src/ or
                    examples/ (outside src/storage/) reads pages without
                    charging faults -- the silent bug every IO experiment
                    in the paper is about.
  backend-dispatch  src/xpath/backend_dispatch.h is the ONE place that
                    may compare or switch on StorageBackend. A rogue
                    comparison elsewhere re-creates the per-backend
                    if/else soup the dispatch class retired and dodges
                    its -Wswitch exhaustiveness net.
  explain-literal   EXPLAIN trace fragments live in
                    src/xpath/explain_strings.h and nowhere else; tests
                    pin traces byte-for-byte, so an inline trace literal
                    in another src/xpath/ file is drift waiting to
                    happen.
  stats-on-advance  Every kernel function that advances a cursor via
                    SkipTo must account for it in its JoinStats (the
                    paper's skipped/scanned counters are the acceptance
                    evidence). Scope: the join kernels in src/core/.
  bench-json        Bench JsonRecord rows feed the CI perf-regression
                    gate; an aggregate initializer that omits the
                    trailing skipped/result fields silently gates on
                    zeros. Records must set all seven fields (or assign
                    .skipped/.result by name).
  cost-literal      The planner's cost constants (k...Cost...) live in
                    src/xpath/cost_model.h and nowhere else. A constant
                    defined in another src/xpath/ file forks the
                    planner's arithmetic: compiled plans, EXPLAIN's
                    est= numbers and the bench_cost_model gate all pin
                    the one table.
  delta-mutation    Column images are immutable once published: updates
                    go through the delta overlay (src/delta/) and are
                    folded by Database::Compact. Constructing a
                    DocTableBuilder -- or const_cast-ing a DocTable --
                    outside the encoding layer, src/delta/ and the
                    generators mutates (or rebuilds) an image behind the
                    snapshots' backs, breaking snapshot isolation.

Suppress a finding with a trailing or preceding comment carrying a
justification:  // sj-lint: allow(rule-id) -- <why>

Usage:
  sj_lint.py                      lint the repository tree
  sj_lint.py --root DIR           lint a different tree
  sj_lint.py --treat-as REL FILE  lint FILE as if it lived at REL
                                  (the fixture self-test hook)

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import pathlib
import re
import sys

# ---------------------------------------------------------------------------
# C++-aware text preparation
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
      //[^\n]*                                  # line comment
    | /\*.*?\*/                                 # block comment
    | R"([^ ()\\\t\n]*)\((?:.|\n)*?\)\1"        # raw string literal
    | "(?:[^"\\\n]|\\.)*"                       # string literal
    | '(?:[^'\\\n]|\\.)*'                       # char literal
    """,
    re.VERBOSE | re.DOTALL,
)


def _blank_keep_newlines(text):
    return re.sub(r"[^\n]", " ", text)


def strip_comments_and_strings(src):
    """Returns (code, literals): `code` is the source with comments and
    string/char literals blanked (newlines kept, so offsets and line
    numbers survive); `literals` is a list of (line, content) for every
    ordinary string literal."""
    out = []
    literals = []
    pos = 0
    for m in _TOKEN_RE.finditer(src):
        out.append(src[pos:m.start()])
        tok = m.group(0)
        if tok.startswith('"') and tok.endswith('"'):
            line = src.count("\n", 0, m.start()) + 1
            literals.append((line, tok[1:-1]))
        out.append(_blank_keep_newlines(tok))
        pos = m.end()
    out.append(src[pos:])
    return "".join(out), literals


_ALLOW_RE = re.compile(r"sj-lint:\s*allow\(([a-z-]+)\)")


def allowed_lines(src):
    """Maps rule-id -> set of line numbers where that rule is suppressed
    (the comment's own line and the next line)."""
    allows = {}
    for i, line in enumerate(src.splitlines(), start=1):
        for m in _ALLOW_RE.finditer(line):
            allows.setdefault(m.group(1), set()).update({i, i + 1})
    return allows


def line_of(code, offset):
    return code.count("\n", 0, offset) + 1


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _report(findings, allows, path, line, rule, message):
    if line in allows.get(rule, set()):
        return
    findings.append(Finding(path, line, rule, message))


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

_PIN_RE = re.compile(r"(?:\.|->)\s*(?:Pin|Unpin)\s*\(")


def check_pool_bypass(rel, code, _literals, allows, findings):
    inside = rel.startswith("src/") or rel.startswith("examples/")
    if not inside or rel.startswith("src/storage/"):
        return
    for m in _PIN_RE.finditer(code):
        _report(findings, allows, rel, line_of(code, m.start()),
                "pool-bypass",
                "BufferPool::Pin/Unpin outside src/storage/ reads pages "
                "without charging faults; go through a storage cursor")


_BACKEND_CMP_RE = re.compile(
    r"(?:[=!]=\s*StorageBackend::\w+|StorageBackend::\w+\s*[=!]=)")
_BACKEND_SWITCH_RE = re.compile(r"switch\s*\(([^()]|\([^()]*\))*backend")

_DISPATCH_FILE = "src/xpath/backend_dispatch.h"


def check_backend_dispatch(rel, code, _literals, allows, findings):
    if not rel.startswith("src/") or rel == _DISPATCH_FILE:
        return
    for m in _BACKEND_CMP_RE.finditer(code):
        _report(findings, allows, rel, line_of(code, m.start()),
                "backend-dispatch",
                "StorageBackend comparison outside " + _DISPATCH_FILE +
                "; add or use a BackendDispatch method")
    for m in _BACKEND_SWITCH_RE.finditer(code):
        _report(findings, allows, rel, line_of(code, m.start()),
                "backend-dispatch",
                "switch on a storage backend outside " + _DISPATCH_FILE +
                "; add or use a BackendDispatch method")


# Phrases that only occur in EXPLAIN trace output. Deliberately NOT the
# whole table: Status messages legitimately mention e.g. "pool".
_EXPLAIN_PHRASES = (
    "staircase join",
    "-axis cursor join",
    "twig join",
    "per-context evaluation",
    "buffer pool",
    "name-test pushdown",
    "cursor skips",
    "-> empty",
    " workers)",
    " via ",
    "plan: cached",
    "snapshot: epoch",
    "positional rank join",
    " est=",
    " act=",
)

_STRINGS_FILE = "src/xpath/explain_strings.h"


def check_explain_literal(rel, _code, literals, allows, findings):
    if not rel.startswith("src/xpath/") or rel == _STRINGS_FILE:
        return
    for line, content in literals:
        for phrase in _EXPLAIN_PHRASES:
            if phrase in content:
                _report(findings, allows, rel, line, "explain-literal",
                        f'EXPLAIN fragment "{content}" typed inline; use '
                        f"the constants in {_STRINGS_FILE}")
                break


# The join kernels whose SkipTo calls must be accounted in JoinStats /
# TwigLevelStats. Cursor *definitions* of SkipTo (src/storage/,
# core/doc_accessor.h, core/fragment_cursor.h) are the mechanism, not
# the policy, and are out of scope.
_KERNEL_FILES = (
    "src/core/kernels.h",
    "src/core/staircase_impl.h",
    "src/core/axis_impl.h",
    "src/core/twig_impl.h",
    "src/core/fragment_impl.h",
)

_SKIPTO_RE = re.compile(r"(?:\.|->)\s*SkipTo\s*\(")


def _enclosing_function(code, offset):
    """Returns (start, end) of the function whose body encloses `offset`:
    the innermost brace block whose opening `{` is preceded (modulo
    whitespace and trailing qualifiers) by a `)`. `start` points at the
    beginning of the statement introducing the function (after the
    previous `;`, `{` or `}`), so the signature is included. Returns
    None when no such block exists."""
    # Innermost-to-outermost enclosing open braces.
    stack = []
    enclosing = []
    for i, ch in enumerate(code):
        if ch == "{":
            stack.append(i)
        elif ch == "}":
            if not stack:
                return None  # unbalanced; bail out
            open_i = stack.pop()
            if open_i < offset < i:
                enclosing.append((open_i, i))
    enclosing.extend((i, len(code)) for i in reversed(stack) if i < offset)
    for open_i, close_i in enclosing:
        before = code[:open_i].rstrip()
        for qual in ("const", "noexcept", "override", "final"):
            if before.endswith(qual):
                before = before[: -len(qual)].rstrip()
        if not before.endswith(")"):
            continue
        # Walk back over the parameter list to the introducing word; a
        # control-flow block (if/for/while/...) is not a function body --
        # keep looking outward.
        depth = 0
        i = len(before) - 1
        while i >= 0:
            if before[i] == ")":
                depth += 1
            elif before[i] == "(":
                depth -= 1
                if depth == 0:
                    break
            i -= 1
        head = before[:i].rstrip()
        word = re.search(r"(\w+)\s*$", head)
        if word and word.group(1) in ("if", "for", "while", "switch",
                                      "catch"):
            continue
        stmt_start = max(before.rfind(";", 0, i), before.rfind("{", 0, i),
                         before.rfind("}", 0, i)) + 1
        return stmt_start, close_i
    return None


def check_stats_on_advance(rel, code, _literals, allows, findings):
    if rel not in _KERNEL_FILES:
        return
    for m in _SKIPTO_RE.finditer(code):
        span = _enclosing_function(code, m.start())
        if span is None:
            continue
        func = code[span[0]:span[1]]
        if not re.search(r"[Ss]tats", func):
            _report(findings, allows, rel, line_of(code, m.start()),
                    "stats-on-advance",
                    "kernel advances a cursor (SkipTo) but its function "
                    "never touches JoinStats; skipped work must be counted")


_JSON_FIELDS = 10  # query, backend, size_mb, faults, ms, skipped, result,
                   # p50_ms, p95_ms, p99_ms
_PUSH_RE = re.compile(r"(?:push_back|emplace_back)\s*\(\s*\{|JsonRecord\s*\{")


def _brace_args(code, open_brace):
    """Counts top-level comma-separated items of the brace initializer
    starting at `open_brace` (string literals are already blanked)."""
    depth = 0
    args = 0
    saw_token = False
    i = open_brace
    while i < len(code):
        ch = code[i]
        if ch in "{([":
            depth += 1
        elif ch in "})]":
            depth -= 1
            if depth == 0:
                return args + 1 if saw_token else 0
        elif depth == 1:
            if ch == ",":
                args += 1
            elif not ch.isspace():
                saw_token = True
        i += 1
    return None


def check_bench_json(rel, code, _literals, allows, findings):
    if not (rel.startswith("bench/") and rel.endswith(".cc")):
        return
    if "JsonRecord" not in code:
        return
    for m in _PUSH_RE.finditer(code):
        open_brace = code.index("{", m.start())
        count = _brace_args(code, open_brace)
        if count is None or count == 0:
            continue
        if count < _JSON_FIELDS:
            _report(findings, allows, rel, line_of(code, m.start()),
                    "bench-json",
                    f"JsonRecord initializer sets {count} of "
                    f"{_JSON_FIELDS} fields; skipped/result would gate "
                    "on silent zeros -- set every field (or assign "
                    ".skipped/.result by name)")


# A cost-constant *definition*: an identifier whose name carries the
# cost-model naming convention (k...Cost...) initialized with a numeric
# literal. Usage sites (kPushdownProbeCost * rows) carry no "=" and are
# fine anywhere; knobs like pushdown_selectivity = 0.125 don't match the
# name shape and stay a session-option concern.
_COST_CONST_RE = re.compile(
    r"\bk\w*Cost\w*\s*=\s*[-+]?(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][-+]?\d+)?")

_COST_FILE = "src/xpath/cost_model.h"


def check_cost_literal(rel, code, _literals, allows, findings):
    if not rel.startswith("src/xpath/") or rel == _COST_FILE:
        return
    for m in _COST_CONST_RE.finditer(code):
        _report(findings, allows, rel, line_of(code, m.start()),
                "cost-literal",
                "cost constant defined outside " + _COST_FILE + "; the "
                "planner's arithmetic must not fork -- move the constant "
                "there (plans and EXPLAIN estimates are pinned to it)")


_MUTATION_RE = re.compile(r"\bDocTableBuilder\b|const_cast\s*<\s*DocTable\b")

# The layers that legitimately build or rework column images: the
# encoding layer (builders, loaders, collections), the delta store
# (overlay materialization / compaction), and the document generators.
_MUTATION_ALLOWED = ("src/encoding/", "src/delta/", "src/xmlgen/")


def check_delta_mutation(rel, code, _literals, allows, findings):
    if not rel.startswith("src/"):
        return
    if rel.startswith(_MUTATION_ALLOWED):
        return
    for m in _MUTATION_RE.finditer(code):
        _report(findings, allows, rel, line_of(code, m.start()),
                "delta-mutation",
                "column images are immutable behind published snapshots; "
                "route updates through the delta overlay (src/delta/) and "
                "Database::Compact instead of rebuilding or casting away "
                "const here")


_RULES = (
    check_pool_bypass,
    check_backend_dispatch,
    check_explain_literal,
    check_stats_on_advance,
    check_bench_json,
    check_cost_literal,
    check_delta_mutation,
)

# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

_LINT_DIRS = ("src", "examples", "bench")
_EXTENSIONS = (".h", ".cc", ".cpp")


def lint_file(path, rel, findings):
    src = path.read_text(encoding="utf-8")
    code, literals = strip_comments_and_strings(src)
    allows = allowed_lines(src)
    for rule in _RULES:
        rule(rel, code, literals, allows, findings)


def tree_files(root):
    for d in _LINT_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in _EXTENSIONS and path.is_file():
                yield path, path.relative_to(root).as_posix()


def main(argv):
    parser = argparse.ArgumentParser(
        description="project-specific lint for the stairjoin tree")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2],
                        help="repository root (default: this script's repo)")
    parser.add_argument("--treat-as", metavar="RELPATH",
                        help="lint the given FILEs as if they lived at "
                             "RELPATH inside the tree")
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="specific files to lint (default: whole tree)")
    args = parser.parse_args(argv)

    if args.treat_as and not args.files:
        parser.error("--treat-as requires explicit FILE arguments")

    findings = []
    if args.files:
        for path in args.files:
            rel = args.treat_as or path.resolve().relative_to(
                args.root.resolve()).as_posix()
            lint_file(path, rel, findings)
    else:
        for path, rel in tree_files(args.root):
            lint_file(path, rel, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"sj-lint: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
