// sj-lint fixture: MUST fail rule explain-literal when linted as a
// src/xpath/ file other than explain_strings.h (see sj_lint_test.py).
// The literal below drifts from the table's "staircase join" spelling
// by one word -- exactly the byte-level drift the trace-pinning tests
// would catch a release too late.

#include <string>

namespace sj::xpath {

std::string DriftedDescription(const std::string& step) {
  return step + " via the staircase join (buffered pool)";  // violation
}

}  // namespace sj::xpath
