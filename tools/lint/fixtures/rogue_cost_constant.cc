// Seeded violation for sj-lint rule cost-literal: planner cost
// constants defined outside src/xpath/cost_model.h. Linted via
// --treat-as src/xpath/evil.cc by sj_lint_test.py; the same file
// treated as cost_model.h itself must pass.

namespace sj::xpath {

// A "local recalibration" forking the planner's arithmetic -- both the
// conventional double knob and an integer page-math constant.
inline constexpr double kRogueProbeCost = 0.0078125;
inline constexpr unsigned kCostRanksPerPageLocal = 1024;

// Not cost constants: selectivity knobs and plain locals don't carry
// the k...Cost... name shape and may live with the options they tune.
inline constexpr double kDefaultPushdownSelectivity = 0.125;
inline constexpr int kMaxLevel = 255;

double Use() { return kRogueProbeCost * kCostRanksPerPageLocal; }

}  // namespace sj::xpath
