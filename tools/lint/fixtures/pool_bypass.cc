// sj-lint fixture: MUST fail rule pool-bypass when linted as a file
// under src/ outside src/storage/ (see sj_lint_test.py). A step that
// pins pages itself reads the image without charging faults, so every
// IO experiment would silently under-count.

#include "storage/buffer_pool.h"

namespace sj {

uint32_t ReadPostDirectly(storage::BufferPool* pool,
                          storage::PageId page) {
  auto frame = pool->Pin(page);  // the violation: Pin outside storage/
  uint32_t post = frame.value()->data[0];
  pool->Unpin(page);
  return post;
}

}  // namespace sj
