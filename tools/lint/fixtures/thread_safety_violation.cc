// Thread-safety-analysis fixture: MUST FAIL to compile under
//   clang++ -fsyntax-only -Isrc -Wthread-safety -Werror=thread-safety
// (the static-analysis CI job runs exactly that). It reproduces the
// dropped-lock_guard bug class the annotations exist to catch: the
// writer below touches a SJ_GUARDED_BY member without holding its
// mutex. Under gcc the annotations are no-ops and this file is inert --
// it is never part of the build.

#include <cstdint>

#include "util/thread_annotations.h"

namespace sj {

struct Counter {
  Mutex mu;
  uint64_t value SJ_GUARDED_BY(mu) = 0;
};

uint64_t IncrementWithoutTheLock(Counter* counter) {
  // MutexLock lock(counter->mu);  <-- the dropped guard
  ++counter->value;  // clang TSA: writing variable requires holding mu
  return counter->value;
}

}  // namespace sj
