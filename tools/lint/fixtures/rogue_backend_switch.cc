// sj-lint fixture: MUST fail rule backend-dispatch when linted as a
// file under src/ other than src/xpath/backend_dispatch.h (see
// sj_lint_test.py). Re-creating per-backend branches outside the
// dispatch class dodges its -Wswitch exhaustiveness net: the next
// backend added to the enum silently falls through here.

#include "xpath/evaluator.h"

namespace sj::xpath {

const char* RogueLabel(const EvalOptions& opt) {
  if (opt.backend == StorageBackend::kPaged) {  // violation: comparison
    return "paged";
  }
  switch (opt.backend) {  // violation: switch outside the dispatch
    case StorageBackend::kCompressed:
      return "compressed";
    default:
      return "memory";
  }
}

}  // namespace sj::xpath
