// sj-lint fixture: MUST fail rule delta-mutation when linted as a file
// under src/ outside the encoding layer, src/delta/ and src/xmlgen/
// (see sj_lint_test.py). Rebuilding a DocTable -- or casting away its
// const -- behind published snapshots breaks snapshot isolation: a
// pinned reader would observe the half-rewritten image.

#include "encoding/builder.h"
#include "encoding/doc_table.h"

namespace sj {

DocTable RogueRebuild(const DocTable& doc) {
  DocTableBuilder builder;  // violation: image construction outside the
                            // encoding/delta layers
  (void)doc;
  return std::move(builder).Finish().value();
}

void RoguePatch(const DocTable& doc) {
  auto* mutable_doc = const_cast<DocTable*>(&doc);  // violation
  (void)mutable_doc;
}

}  // namespace sj
