// sj-lint fixture: MUST fail rule bench-json when linted as a
// bench/bench_*.cc file (see sj_lint_test.py). The five-field
// initializer leaves skipped/result at zero, so the CI perf-regression
// gate would "verify" counters the bench never measured.

#include <vector>

#include "bench_util.h"

namespace sj::bench {

void EmitTruncatedRecords(double mb, uint64_t faults, double ms) {
  std::vector<JsonRecord> json;
  json.push_back({"q1", "paged-cold", mb, faults, ms});  // violation
  WriteJson(json, "BENCH_fixture.json");
}

}  // namespace sj::bench
