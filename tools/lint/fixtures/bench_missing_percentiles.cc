// sj-lint fixture: MUST fail rule bench-json when linted as a
// bench/bench_*.cc file (see sj_lint_test.py). The seven-field
// initializer predates the serving-latency percentiles: p50/p95/p99
// stay silently zero, so a JSON consumer would read "no latency" where
// the bench simply never set the fields. Brace initializers must name
// every field of the row format; benches that do not measure
// percentiles assign the scalar fields by name instead.

#include <vector>

#include "bench_util.h"

namespace sj::bench {

void EmitPrePercentileRecords(double mb, uint64_t faults, double ms,
                              uint64_t skipped, uint64_t result) {
  std::vector<JsonRecord> json;
  json.push_back(
      {"q1", "paged-cold", mb, faults, ms, skipped, result});  // violation
  WriteJson(json, "BENCH_fixture.json");
}

}  // namespace sj::bench
