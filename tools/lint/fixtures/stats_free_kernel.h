// sj-lint fixture: MUST fail rule stats-on-advance when linted as
// src/core/kernels.h (see sj_lint_test.py). The loop below seeks the
// cursor past a subtree but never counts the skipped slots, so the
// paper's skipped/scanned acceptance evidence would read zero while the
// kernel quietly does the right thing -- or quietly stops doing it.

#ifndef STAIRJOIN_TOOLS_LINT_FIXTURES_STATS_FREE_KERNEL_H_
#define STAIRJOIN_TOOLS_LINT_FIXTURES_STATS_FREE_KERNEL_H_

#include <cstdint>

namespace sj {

template <typename Cursor>
uint64_t CountMatchesForgettingTheCounters(Cursor& cursor, uint32_t bound) {
  uint64_t matches = 0;
  for (uint64_t i = 0; i < cursor.size(); ++i) {
    if (cursor.Post(i) > bound) {
      ++matches;
    } else {
      cursor.SkipTo(cursor.LowerBound(bound));  // violation: uncounted
    }
  }
  return matches;
}

}  // namespace sj

#endif  // STAIRJOIN_TOOLS_LINT_FIXTURES_STATS_FREE_KERNEL_H_
