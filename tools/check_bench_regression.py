#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json benchmark records.

Compares the deterministic metrics of freshly produced bench JSON files
against committed baselines (bench/baselines/). Rows are keyed by
(query, backend, size_mb); three metrics are gated:

  faults   pages faulted on a cold pool -- a regression when the current
           value exceeds baseline * (1 + threshold) + slack;
  skipped  nodes never touched thanks to skipping -- a regression when
           the current value drops below baseline * (1 - threshold) -
           slack (the join stopped skipping);
  result   join-result cardinality -- must match the baseline exactly
           (a drifting cardinality is a correctness bug, not a perf
           question).

Wall-time (`ms`) is never gated: it is the one nondeterministic field.
Every baseline file must have a current counterpart, and every baseline
row must still be produced -- a silently vanished bench or query is
itself a regression. Rows can be exempted with --allow
"FILE:QUERY:BACKEND:METRIC" (fnmatch patterns per component).

Exit status: 0 when clean, 1 on any regression, 2 on usage errors.
Improvements beyond the threshold are reported as notes; refresh the
baselines (copy the current JSON over bench/baselines/) to lock them in.
"""

import argparse
import fnmatch
import json
import pathlib
import sys


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    keyed = {}
    for row in rows:
        key = (row["query"], row["backend"], row["size_mb"])
        if key in keyed:
            raise SystemExit(f"{path}: duplicate row key {key}")
        keyed[key] = row
    return keyed


def allowed(allow_patterns, file_name, key, metric):
    probe = (file_name, key[0], key[1], metric)
    for pattern in allow_patterns:
        parts = pattern.split(":")
        if len(parts) != 4:
            raise SystemExit(f"bad --allow entry (want FILE:QUERY:BACKEND:"
                             f"METRIC): {pattern}")
        if all(fnmatch.fnmatch(str(v), p) for v, p in zip(probe, parts)):
            return True
    return False


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--current", default=".",
                        help="directory holding the freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative tolerance on faults/skipped")
    parser.add_argument("--slack", type=int, default=2,
                        help="absolute tolerance on faults/skipped")
    parser.add_argument("--allow", action="append", default=[],
                        metavar="FILE:QUERY:BACKEND:METRIC",
                        help="fnmatch pattern exempting rows from the gate")
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baselines)
    current_dir = pathlib.Path(args.current)
    baseline_files = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"no BENCH_*.json baselines under {baseline_dir}",
              file=sys.stderr)
        return 2

    regressions = []
    notes = []
    checked = 0
    for baseline_path in baseline_files:
        name = baseline_path.name
        current_path = current_dir / name
        if not current_path.exists():
            regressions.append(f"{name}: current run produced no file "
                               f"(bench deleted or smoke list drifted?)")
            continue
        baseline = load_rows(baseline_path)
        current = load_rows(current_path)
        for key, base_row in baseline.items():
            label = f"{name} [{key[0]} | {key[1]} | {key[2]} MB]"
            if key in current:
                cur_row = current[key]
            elif allowed(args.allow, name, key, "*"):
                continue
            else:
                regressions.append(f"{label}: row vanished from the "
                                   f"current run")
                continue
            for metric in ("faults", "skipped", "result"):
                base = base_row.get(metric, 0)
                cur = cur_row.get(metric, 0)
                if allowed(args.allow, name, key, metric):
                    continue
                checked += 1
                if metric == "result":
                    if cur != base:
                        regressions.append(
                            f"{label}: result cardinality changed "
                            f"{base} -> {cur}")
                    continue
                if metric == "faults":
                    limit = base * (1 + args.threshold) + args.slack
                    if cur > limit:
                        regressions.append(
                            f"{label}: faults regressed {base} -> {cur} "
                            f"(limit {limit:.1f})")
                    elif base > cur * (1 + args.threshold) + args.slack:
                        notes.append(
                            f"{label}: faults improved {base} -> {cur}; "
                            f"consider refreshing the baseline")
                    continue
                # skipped: fewer nodes skipped means skipping got worse.
                floor = base * (1 - args.threshold) - args.slack
                if cur < floor:
                    regressions.append(
                        f"{label}: skipped nodes regressed {base} -> {cur} "
                        f"(floor {floor:.1f})")
                elif cur * (1 - args.threshold) - args.slack > base:
                    notes.append(
                        f"{label}: skipped nodes improved {base} -> {cur}; "
                        f"consider refreshing the baseline")
        for key in current.keys() - baseline.keys():
            notes.append(f"{name}: new row {key} has no baseline yet; add "
                         f"it when refreshing baselines")

    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(f"\n{len(regressions)} perf regression(s) against "
              f"{baseline_dir}:", file=sys.stderr)
        for regression in regressions:
            print(f"  REGRESSION: {regression}", file=sys.stderr)
        return 1
    print(f"bench regression gate: {checked} metrics across "
          f"{len(baseline_files)} files within threshold "
          f"{args.threshold:.0%} (+{args.slack})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
