// Result<T>: value-or-Status, the return type of fallible producers.

#ifndef STAIRJOIN_UTIL_RESULT_H_
#define STAIRJOIN_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace sj {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Accessing the value of an errored Result is a programming error (checked
/// by assert in debug builds). Use `ok()` / `status()` before `value()`.
template <typename T>
class Result {
 public:
  /// Constructs a successful result (implicit, so `return value;` works).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status (implicit, so
  /// `return Status::ParseError(...);` works).
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() && "Result from OK status");
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Borrows the contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  /// Moves the contained value out; requires ok().
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates the error of a Result expression, else assigns its value.
#define SJ_ASSIGN_OR_RETURN(lhs, expr)            \
  auto SJ_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!SJ_CONCAT_(_res_, __LINE__).ok())          \
    return SJ_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(SJ_CONCAT_(_res_, __LINE__)).value()

#define SJ_CONCAT_INNER_(a, b) a##b
#define SJ_CONCAT_(a, b) SJ_CONCAT_INNER_(a, b)

}  // namespace sj

#endif  // STAIRJOIN_UTIL_RESULT_H_
