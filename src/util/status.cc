#include "util/status.h"

namespace sj {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace sj
