#include "util/table_printer.h"

#include <cstdio>
#include <sstream>

namespace sj {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };

  emit_row(headers_);
  out << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::Count(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string TablePrinter::Fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace sj
