// Fixed-width table output used by the benchmark harness so every bench
// prints paper-style rows (and EXPERIMENTS.md can be filled from the output).

#ifndef STAIRJOIN_UTIL_TABLE_PRINTER_H_
#define STAIRJOIN_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sj {

/// \brief Collects rows of string cells and prints an aligned ASCII table.
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; missing cells print empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to a string.
  std::string ToString() const;

  /// Prints the table to stdout.
  void Print() const;

  /// Formats a count with thousands separators, e.g. 50844982 -> "50,844,982".
  static std::string Count(uint64_t n);

  /// Formats a double with the given number of decimals.
  static std::string Fixed(double v, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sj

#endif  // STAIRJOIN_UTIL_TABLE_PRINTER_H_
