// Clang Thread Safety Analysis annotations, plus the annotated mutex
// types the engine locks with.
//
// The concurrency invariants of this library -- every BufferPool shard's
// frame table is touched only under that shard's latch, the parallel
// join's work queue hands out chunks only under its mutex, the Database
// query counters are read consistently -- were previously defended by
// tests and TSan alone. These macros make them *compile-time* checkable:
// a clang build with -DSJ_THREAD_SAFETY=ON (CMake) turns on
// -Wthread-safety -Werror=thread-safety, and a lock-discipline violation
// (a guarded field touched without its mutex, a forgotten MutexLock)
// becomes a build error. Under GCC, or clang without the option, every
// macro expands to nothing and the wrappers are plain std::mutex.
//
// libstdc++'s std::mutex carries no capability attributes, so the
// analysis cannot see through std::lock_guard<std::mutex>. The engine
// therefore locks through sj::Mutex (an annotated CAPABILITY wrapper)
// and sj::MutexLock (an annotated SCOPED_CAPABILITY guard); both compile
// to the std:: primitives with zero overhead.
//
// Suppressing a finding: prefer restructuring so the analysis can follow
// the lock; when that is genuinely impossible (e.g. a lock handed across
// a C callback), annotate the function SJ_NO_THREAD_SAFETY_ANALYSIS and
// leave a comment justifying WHY the discipline still holds.

#ifndef STAIRJOIN_UTIL_THREAD_ANNOTATIONS_H_
#define STAIRJOIN_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define SJ_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SJ_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define SJ_CAPABILITY(x) SJ_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define SJ_SCOPED_CAPABILITY SJ_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The annotated field may only be accessed while holding `x`.
#define SJ_GUARDED_BY(x) SJ_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// The data *pointed to* by the annotated field may only be accessed
/// while holding `x` (the pointer itself is unguarded).
#define SJ_PT_GUARDED_BY(x) SJ_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities.
#define SJ_REQUIRES(...) \
  SJ_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Shared (reader) variant of SJ_REQUIRES.
#define SJ_REQUIRES_SHARED(...) \
  SJ_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define SJ_ACQUIRE(...) \
  SJ_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define SJ_RELEASE(...) \
  SJ_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define SJ_TRY_ACQUIRE(b, ...) \
  SJ_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))

/// The function may only be called while NOT holding the listed
/// capabilities (it acquires them itself; calling with them held would
/// deadlock).
#define SJ_EXCLUDES(...) \
  SJ_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (for code reached only
/// under a lock the analysis cannot see).
#define SJ_ASSERT_CAPABILITY(x) \
  SJ_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// The function returns a reference to the named capability.
#define SJ_RETURN_CAPABILITY(x) SJ_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the lock discipline still holds.
#define SJ_NO_THREAD_SAFETY_ANALYSIS \
  SJ_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace sj {

/// \brief std::mutex with thread-safety-analysis capability attributes.
///
/// Zero overhead: the methods are inline forwards. Lock through
/// MutexLock wherever possible; the raw Lock/Unlock pair exists for the
/// rare site whose critical section cannot be a scope.
class SJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SJ_ACQUIRE() { mu_.lock(); }
  void Unlock() SJ_RELEASE() { mu_.unlock(); }
  bool TryLock() SJ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// \brief Scoped lock over sj::Mutex (the annotated lock_guard).
class SJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SJ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SJ_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace sj

#endif  // STAIRJOIN_UTIL_THREAD_ANNOTATIONS_H_
