// Status-based error handling for the stairjoin library.
//
// Library code does not throw exceptions (see DESIGN.md); fallible operations
// return Status or Result<T>. The design follows the Arrow/RocksDB idiom: a
// cheap, movable value carrying an error code and a human-readable message.

#ifndef STAIRJOIN_UTIL_STATUS_H_
#define STAIRJOIN_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace sj {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,       ///< malformed XML or XPath input
  kOutOfRange = 3,       ///< rank/index outside the document
  kNotFound = 4,         ///< missing tag, file, ...
  kUnsupported = 5,      ///< valid input requesting an unimplemented feature
  kIoError = 6,          ///< file system failure
  kInternal = 7,         ///< invariant violation (a bug)
};

/// \brief Returns a short stable name for a status code (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a message.
///
/// The OK status is represented without allocation; error states carry a
/// heap-allocated message. Statuses are cheap to move and to test.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given error code and message.
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return rep_ == nullptr; }

  /// The error code (kOk for success).
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message ("" for success).
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code())) + ": " + message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }

  std::unique_ptr<Rep> rep_;  // null <=> OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status out of the current function.
#define SJ_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::sj::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace sj

#endif  // STAIRJOIN_UTIL_STATUS_H_
