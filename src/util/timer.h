// Wall-clock timing helpers for the benchmark harness.

#ifndef STAIRJOIN_UTIL_TIMER_H_
#define STAIRJOIN_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sj {

/// \brief Monotonic wall-clock stopwatch with millisecond/microsecond reads.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in fractional milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  /// Elapsed time in fractional seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Runs `fn` `repetitions` times and returns the best wall time in
/// milliseconds (best-of-N is robust against scheduler noise for the short,
/// CPU-bound kernels the paper measures).
template <typename Fn>
double BestOfMillis(int repetitions, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < repetitions; ++i) {
    Timer t;
    fn();
    best = best < t.ElapsedMillis() ? best : t.ElapsedMillis();
  }
  return best;
}

}  // namespace sj

#endif  // STAIRJOIN_UTIL_TIMER_H_
