// Deterministic pseudo-random number generation.
//
// Both the XMark-style generator and the property tests must be reproducible
// across platforms and standard-library versions, so we implement a small,
// well-known generator (xoshiro256**) instead of relying on std::mt19937
// distribution details.

#ifndef STAIRJOIN_UTIL_RNG_H_
#define STAIRJOIN_UTIL_RNG_H_

#include <cstdint>

namespace sj {

/// \brief Deterministic 64-bit PRNG (xoshiro256**), seedable and portable.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  /// Bernoulli draw with probability `percent`/100.
  bool Percent(uint32_t percent) { return Below(100) < percent; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace sj

#endif  // STAIRJOIN_UTIL_RNG_H_
