// Relational operators over BATs.
//
// Only the operators the reproduced query plans actually use are provided;
// all of them exploit the void head (results are oid lists or positional
// slices, never materialized pairs).

#ifndef STAIRJOIN_BAT_OPERATORS_H_
#define STAIRJOIN_BAT_OPERATORS_H_

#include <algorithm>
#include <vector>

#include "bat/bat.h"

namespace sj::bat {

/// \brief Head oids of all BUNs whose tail equals `value`.
template <typename T>
std::vector<Oid> SelectEq(const Bat<T>& b, const T& value) {
  std::vector<Oid> out;
  for (size_t i = 0; i < b.size(); ++i) {
    if (b[i] == value) out.push_back(b.HeadAt(i));
  }
  return out;
}

/// \brief Head oids of all BUNs whose tail lies in [lo, hi] (inclusive).
template <typename T>
std::vector<Oid> SelectRange(const Bat<T>& b, const T& lo, const T& hi) {
  std::vector<Oid> out;
  for (size_t i = 0; i < b.size(); ++i) {
    if (!(b[i] < lo) && !(hi < b[i])) out.push_back(b.HeadAt(i));
  }
  return out;
}

/// \brief Tail values at the given head oids (positional fetch join).
template <typename T>
std::vector<T> Gather(const Bat<T>& b, const std::vector<Oid>& oids) {
  std::vector<T> out;
  out.reserve(oids.size());
  for (Oid o : oids) out.push_back(b.AtOid(o));
  return out;
}

/// \brief Restricts an oid list to those whose tail in `b` equals `value`
/// (the positional variant of a semijoin with a selection).
template <typename T>
std::vector<Oid> FilterEq(const Bat<T>& b, const std::vector<Oid>& oids,
                          const T& value) {
  std::vector<Oid> out;
  for (Oid o : oids) {
    if (b.AtOid(o) == value) out.push_back(o);
  }
  return out;
}

/// \brief True iff the tail is non-decreasing.
template <typename T>
bool TailSorted(const Bat<T>& b) {
  return std::is_sorted(b.tail().begin(), b.tail().end());
}

/// \brief Removes adjacent duplicates from a sorted oid list (the `unique`
/// operator of the Fig. 3 plan; input must be sorted).
inline std::vector<Oid> UniqueSorted(std::vector<Oid> oids) {
  oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
  return oids;
}

/// \brief Sorts an oid list ascending (document order for pre ranks).
inline std::vector<Oid> Sort(std::vector<Oid> oids) {
  std::sort(oids.begin(), oids.end());
  return oids;
}

/// \brief Sorts and deduplicates (the naive plan's post-processing).
inline std::vector<Oid> SortUnique(std::vector<Oid> oids) {
  return UniqueSorted(Sort(std::move(oids)));
}

}  // namespace sj::bat

#endif  // STAIRJOIN_BAT_OPERATORS_H_
