// Monet-style binary tables (BATs) with virtual-oid (void) heads.
//
// The paper (Section 4.1) stores the pre/post document encoding in Monet
// BATs whose head column has the special type `void`: a contiguous sequence
// of object identifiers o, o+1, o+2, ... for which only the offset o (the
// "seqbase") is stored. All lookups against such a column are positional.
// This module reproduces that storage layer: a Bat<T> is a void head plus a
// dense, typed tail array. The staircase join kernels scan tails directly;
// the relational operators the query plans need live in bat/operators.h.

#ifndef STAIRJOIN_BAT_BAT_H_
#define STAIRJOIN_BAT_BAT_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace sj::bat {

/// Object identifier: the value domain of void head columns.
using Oid = uint32_t;

/// Nil oid, used e.g. for the parent of the document root.
inline constexpr Oid kNilOid = 0xFFFFFFFFu;

/// \brief Binary table with a void (virtual oid) head and a typed tail.
///
/// The head column is the contiguous oid sequence
/// `seqbase, seqbase+1, ..., seqbase+size()-1`; nothing but `seqbase` is
/// stored for it. The tail is a dense array of T. BUN i associates head oid
/// `seqbase+i` with tail value `tail()[i]`.
template <typename T>
class Bat {
 public:
  /// Creates an empty BAT whose head sequence starts at `seqbase`.
  explicit Bat(Oid seqbase = 0) : seqbase_(seqbase) {}

  /// Creates a BAT adopting `tail` as its tail column.
  Bat(Oid seqbase, std::vector<T> tail)
      : seqbase_(seqbase), tail_(std::move(tail)) {}

  /// Pre-allocates capacity for `n` BUNs.
  void Reserve(size_t n) { tail_.reserve(n); }

  /// Appends one BUN; its head oid is implicit (seqbase + old size).
  void Append(T value) { tail_.push_back(std::move(value)); }

  /// Number of BUNs.
  size_t size() const { return tail_.size(); }
  bool empty() const { return tail_.empty(); }

  /// First head oid of the void column.
  Oid seqbase() const { return seqbase_; }

  /// Head oid of BUN `pos`.
  Oid HeadAt(size_t pos) const {
    assert(pos < size());
    return seqbase_ + static_cast<Oid>(pos);
  }

  /// Positional tail access (BUN position, not oid).
  const T& operator[](size_t pos) const {
    assert(pos < size());
    return tail_[pos];
  }
  T& operator[](size_t pos) {
    assert(pos < size());
    return tail_[pos];
  }

  /// Tail access via head oid; the positional lookup void heads enable.
  const T& AtOid(Oid oid) const {
    assert(oid >= seqbase_ && oid - seqbase_ < size());
    return tail_[oid - seqbase_];
  }
  T& AtOid(Oid oid) {
    assert(oid >= seqbase_ && oid - seqbase_ < size());
    return tail_[oid - seqbase_];
  }

  /// True iff `oid` falls into the head sequence.
  bool ContainsOid(Oid oid) const {
    return oid >= seqbase_ && oid - seqbase_ < size();
  }

  /// The whole tail as a contiguous read-only view.
  std::span<const T> tail() const { return tail_; }

  /// Raw tail pointer (the scan kernels iterate this directly).
  const T* tail_data() const { return tail_.data(); }

 private:
  Oid seqbase_;
  std::vector<T> tail_;
};

}  // namespace sj::bat

#endif  // STAIRJOIN_BAT_BAT_H_
