// XPath evaluation on top of the staircase join.
//
// A location path s1/s2/.../sn is evaluated as a series of axis steps; the
// node sequence output by step si is the context sequence of step si+1
// (paper Section 2.1). Staircase axes run through the staircase join (with
// optional name-test pushdown onto tag fragments, Section 4.4 Experiment 3
// + Section 6 fragmentation); the remaining axes run through the
// set-at-a-time axis cursor kernels (core/axis_step.h) over the same
// DocAccessor backends, with the step's node test folded into the scan --
// so on the paged backend *every* step of a query charges its column
// reads to the buffer pool -- including positional predicates, which
// run as a set-at-a-time rank join within per-context groups. Operator
// choice (pushdown vs staircase vs axis cursor) is estimate-driven via
// xpath/cost_model.h unless a hint pins it. A fully naive engine is
// provided as the tree-unaware comparator and as an independent
// correctness oracle.

#ifndef STAIRJOIN_XPATH_EVALUATOR_H_
#define STAIRJOIN_XPATH_EVALUATOR_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/parallel.h"
#include "core/staircase_join.h"
#include "core/tag_view.h"
#include "core/twig_join.h"
#include "delta/overlay.h"
#include "encoding/doc_table.h"
#include "storage/compressed_doc.h"
#include "storage/compressed_tags.h"
#include "storage/paged_doc.h"
#include "storage/paged_tags.h"
#include "util/result.h"
#include "xpath/ast.h"
#include "xpath/cost_model.h"
#include "xpath/parser.h"
#include "xpath/plan.h"

namespace sj::xpath {

/// Which join engine evaluates the staircase axes.
enum class EngineMode : uint8_t {
  kStaircase,  ///< staircase join (the paper's operator)
  kNaive,      ///< per-context evaluation + duplicate elimination
};

/// Which storage backend the staircase joins read the doc columns from.
enum class StorageBackend : uint8_t {
  kMemory,      ///< in-memory DocTable BATs
  kPaged,       ///< paged columns behind a BufferPool (IO-conscious)
  kCompressed,  ///< block-compressed (FOR/delta) columns behind a BufferPool
};

/// Whether name tests are pushed through the staircase join.
enum class PushdownMode : uint8_t {
  kAuto,    ///< cost model decides (selective tags only)
  kAlways,  ///< always evaluate over the tag fragment
  kNever,   ///< join over the document, name test afterwards
};

/// Whether runs of consecutive name-test descendant/child steps collapse
/// into the holistic twig join (core/twig_join.h).
enum class TwigMode : uint8_t {
  kAuto,   ///< collapse every eligible run of >= 2 levels
  kNever,  ///< strict step-at-a-time evaluation
};

/// Evaluator configuration.
struct EvalOptions {
  EngineMode engine = EngineMode::kStaircase;
  StaircaseOptions staircase;
  PushdownMode pushdown = PushdownMode::kAuto;
  /// Whether eligible step runs (consecutive predicate-free name-test
  /// child/descendant(-or-self) steps) are evaluated as one holistic
  /// twig join instead of step-at-a-time. Requires the active backend's
  /// fragment index (tag_index / paged_tags / compressed_tags);
  /// ineligible runs and missing indexes silently fall back to
  /// step-at-a-time. EXPLAIN shows the collapse.
  TwigMode twig = TwigMode::kAuto;
  /// Tag fragments for pushdown on the memory backend (pass null to
  /// disable). Never consulted on the paged backend -- a memory-resident
  /// fragment would silently bypass the buffer pool; see `paged_tags`.
  const TagIndex* tag_index = nullptr;
  /// kAuto pushes a name test down iff the tag's node count is below this
  /// fraction of the document size ("selective name tests only"). Only
  /// consulted when `cost_model` is kOff -- under kAuto the estimator's
  /// page-cost comparison replaces the static threshold.
  double pushdown_selectivity = 0.125;
  /// Estimate-driven operator choice (xpath/cost_model.h). kAuto lets
  /// the CardinalityEstimator pick pushdown-vs-staircase by comparing
  /// page costs; kOff restores the static pushdown_selectivity
  /// threshold. Either way EXPLAIN prints est=N act=M per step.
  CostModelMode cost_model = CostModelMode::kAuto;
  /// Level histogram + per-tag level spread of the bound document,
  /// collected at Database open (null: the estimator falls back to
  /// coarse document-size bounds; decisions stay deterministic).
  const DocStatistics* doc_stats = nullptr;
  /// >1 runs the partitioned parallel staircase join with this many workers.
  unsigned num_threads = 1;
  /// Storage backend for the axis-step joins. With kPaged, every step --
  /// staircase joins, the non-staircase axis cursors, positional rank
  /// joins AND the node-test filters -- reads post/kind/level/parent/tag
  /// through `pool`; `paged_doc` and `pool` are then required and must
  /// image the same document the evaluator is bound to.
  StorageBackend backend = StorageBackend::kMemory;
  const storage::PagedDocTable* paged_doc = nullptr;
  storage::BufferPool* pool = nullptr;
  /// Paged tag fragments for pushdown on the paged backend (pass null to
  /// disable pushdown there). Must image the same document as the
  /// evaluator (digest-checked) and share `pool`'s disk. Pushed-down
  /// steps then charge their fragment page reads to `pool` instead of
  /// diving into the memory-resident TagIndex.
  const storage::PagedTagIndex* paged_tags = nullptr;
  /// With kCompressed, every step reads the block-compressed columns
  /// through `pool`; `compressed_doc` and `pool` are then required and
  /// must image the same document the evaluator is bound to
  /// (digest-checked, like the paged pair).
  const storage::CompressedDocTable* compressed_doc = nullptr;
  /// Compressed tag fragments for pushdown on the compressed backend
  /// (pass null to disable pushdown there); same contract as
  /// `paged_tags`.
  const storage::CompressedTagIndex* compressed_tags = nullptr;
  /// Facade wiring (sj::Database): the DocColumnsDigest /
  /// FragmentColumnsDigest of the bound document, already computed and
  /// verified against the paged images at Database open time. When set,
  /// the evaluator trusts them instead of running its own O(doc) digest
  /// passes, so creating a session stays cheap.
  std::optional<uint64_t> doc_digest;
  std::optional<uint64_t> frag_digest;
  /// Snapshot overlay (updatable documents). When set and non-empty,
  /// every join runs over the merged (base + delta) document in dense
  /// logical pre ranks: base reads keep charging the backend's pool,
  /// delta reads are resident (`delta/delta_accessor.h`). Null or empty
  /// means the pristine document -- plans and traces are byte-identical
  /// to a database that was never edited.
  const delta::Overlay* overlay = nullptr;
  /// Lazily materializes the merged document as a resident DocTable for
  /// the per-context paths (naive engine, positional predicates, name
  /// filtering on the naive path). Required when `overlay` is set.
  std::function<Result<const DocTable*>()> overlay_doc;
  /// Snapshot identity for EXPLAIN ("snapshot: epoch N (delta: M
  /// nodes)"); epoch 0 = pristine, no line emitted.
  uint64_t snapshot_epoch = 0;
};

/// Per-step diagnostics (an EXPLAIN of the executed plan).
struct StepTrace {
  std::string description;
  JoinStats stats;
  double millis = 0.0;
  /// The operator the planner chose (sj::QueryResult::PlanSummary()).
  StepOperator op = StepOperator::kStaircase;
  /// The cost model's output-cardinality estimate; EXPLAIN prints it as
  /// "est=N" next to the actual row count ("act=M").
  uint64_t estimated_rows = 0;
  /// Buffer-pool faults charged while this step ran (0 on the memory
  /// backend). Measured as the pool's fault-counter delta around the
  /// step, so nested predicate evaluation and concurrent sessions on a
  /// shared pool can inflate a step's number -- exact per-step
  /// attribution needs a session-private pool.
  uint64_t pool_faults = 0;
};

/// Renders a step trace as a readable multi-line EXPLAIN (the formatting
/// behind Evaluator::ExplainLastQuery and sj::QueryResult::Explain).
std::string ExplainTrace(const std::vector<StepTrace>& trace);

/// \brief Evaluates parsed location paths over one document.
class Evaluator {
 public:
  /// Binds the evaluator to `doc` (borrowed; must outlive the evaluator).
  explicit Evaluator(const DocTable& doc, EvalOptions options = {});

  /// Evaluates `path` with an explicit context sequence (document order,
  /// duplicate free). Absolute paths ignore `context` and start at the
  /// document element, as in the paper's usage root(doc).
  Result<NodeSequence> Evaluate(const LocationPath& path,
                                const NodeSequence& context);

  /// Evaluates `path` from the document element.
  Result<NodeSequence> Evaluate(const LocationPath& path);

  /// Parses and evaluates an XPath string from the document element.
  Result<NodeSequence> EvaluateString(std::string_view xpath);

  /// Evaluates a union expression (document-order merge of the branches).
  Result<NodeSequence> Evaluate(const UnionExpr& expr,
                                const NodeSequence& context);

  /// Parses and evaluates a union expression from the document element.
  Result<NodeSequence> EvaluateUnionString(std::string_view xpath);

  /// Analyzes `expr` into an immutable CompiledPlan: twig-run collapse,
  /// positional detection, tag interning and the pushdown decision are
  /// settled HERE, once, instead of on every run. The decisions depend
  /// only on the document and the semantic options (engine, backend,
  /// pushdown, twig, pushdown_selectivity), so a plan compiled by one
  /// evaluator is valid for any evaluator over the same document with
  /// equal semantic options -- the sharing contract of the Database
  /// plan cache, whose key is exactly those fields.
  CompiledPlan Compile(UnionExpr expr) const;

  /// Evaluates a compiled plan (document-order merge of the branches).
  /// Takes the same code paths as Evaluate(UnionExpr) with the planning
  /// work pre-done; EXPLAIN traces are byte-identical.
  Result<NodeSequence> Evaluate(const CompiledPlan& plan,
                                const NodeSequence& context);

  /// Plan diagnostics of the most recent top-level Evaluate call.
  const std::vector<StepTrace>& last_trace() const { return trace_; }

  /// Renders last_trace() as a readable multi-line EXPLAIN.
  std::string ExplainLastQuery() const;

 private:
  /// Evaluate() minus the trace reset: union branches share one trace.
  /// `planned` carries the branch's compiled decisions; null re-derives
  /// them per step (the uncached path -- same decisions, same traces).
  Result<NodeSequence> EvaluateKeepTrace(const LocationPath& path,
                                         const NodeSequence& context,
                                         const PlannedPath* planned = nullptr);
  /// Shared body of the two union Evaluate overloads.
  Result<NodeSequence> EvaluateUnion(const UnionExpr& expr,
                                     const std::vector<PlannedPath>* planned,
                                     const NodeSequence& context);
  /// Shared identity check of the pool-backed backends: the bound image
  /// (and, when present, its fragment index) must carry this document's
  /// column digests. `image_frag_digest` is nullopt when the backend
  /// has no fragment index configured.
  Status CheckImageDigests(size_t image_size, uint64_t image_doc_digest,
                           std::optional<uint64_t> image_frag_digest,
                           const char* backend_name);
  Result<NodeSequence> EvalSteps(const std::vector<Step>& steps, size_t first,
                                 NodeSequence context, bool top_level,
                                 const PlannedPath* planned = nullptr);
  Result<NodeSequence> EvalStep(const Step& step, const NodeSequence& context,
                                bool top_level, const PlannedStep& plan);
  /// Longest eligible twig run starting at steps[first] (>= 2 levels, no
  /// predicates, name tests only, twig axes only): twig_consumed > 0 and
  /// one TwigLevel per chain level (a folded `descendant-or-self::node()`
  /// + `child::name` pair -- the parse of `//name` -- consumes two steps
  /// for one kDescendant level). twig_consumed == 0 when the
  /// engine/backend gates or the steps disqualify a collapse.
  PlannedStep MatchTwigRun(const std::vector<Step>& steps, size_t first) const;
  /// The cost model instance of this evaluator's statistics wiring:
  /// DocStatistics (when the facade collected them), the merged logical
  /// size, the backend's page-cost unit, and per-tag counts read through
  /// BackendDispatch::TagCount -- on an edited snapshot that is the
  /// overlay's MERGED dictionary, so fresh delta tags estimate from
  /// their real fragment sizes.
  CardinalityEstimator MakeEstimator() const;
  /// Plans a whole location path: the same walk Compile freezes per
  /// branch, chaining ContextEstimates from the root so every step
  /// carries estimated_rows and a cost-chosen operator. EvalSteps calls
  /// this when handed no compiled plan -- one shared derivation, so
  /// cached and uncached runs decide (and trace) identically.
  PlannedPath PlanPath(const std::vector<Step>& steps) const;
  /// The per-step planning decisions of one non-twig step (positional
  /// detection, tag interning, operator choice by cost); advances `ctx`
  /// to the step's output estimate.
  PlannedStep PlanStep(const Step& step, const CardinalityEstimator& est,
                       ContextEstimate* ctx) const;
  /// Evaluates a matched run as one twig join and records its trace:
  /// one twig entry plus a "subsumed" marker per remaining step, so
  /// EXPLAIN still lists one entry per query step.
  Result<NodeSequence> EvalTwigRun(const std::vector<Step>& steps,
                                   size_t first, const PlannedStep& plan,
                                   const NodeSequence& context,
                                   bool top_level);
  /// Naive-engine fallback: per-context evaluation over the resident
  /// (merged) table. The staircase engine routes positional steps
  /// through the set-at-a-time rank join instead (EvalStep).
  Result<NodeSequence> EvalStepPositional(const Step& step,
                                          const NodeSequence& context);
  /// Applies a positional step's predicate chain to one context node's
  /// axis output (already reversed for reverse axes): positions index
  /// the list surviving the previous predicates. `absolute_verdict`
  /// memoizes context-invariant absolute predicate paths per step.
  Result<NodeSequence> RankWithinGroup(
      const Step& step, NodeSequence axis_nodes,
      std::vector<std::optional<bool>>* absolute_verdict);
  Result<NodeSequence> ApplyPredicates(const Step& step, NodeSequence nodes);
  Result<bool> PredicateHolds(const Predicate& pred, NodeId node);
  /// `doc` is EffectiveDoc(): the bound table, or the materialized merged
  /// table when a delta overlay is active.
  NodeSequence FilterByTest(const DocTable& doc, const Step& step,
                            const NodeSequence& nodes) const;
  /// The pushdown decision: hint pins (kAlways/kNever) win; kAuto defers
  /// to the estimator's page-cost comparison (cost_model kAuto) or the
  /// legacy static selectivity threshold (cost_model kOff).
  bool ShouldPushdown(const Step& step, TagId tag,
                      const CardinalityEstimator& est,
                      const ContextEstimate& in) const;
  /// True when options_ carry a non-empty delta overlay.
  bool Overlaid() const;
  /// Merged document size (doc_.size() when pristine).
  size_t LogicalSize() const;
  /// Tag lookup against the merged dictionary (base dictionary when
  /// pristine); nullopt for never-interned names, as before.
  std::optional<TagId> LookupTag(std::string_view name) const;
  /// The table the per-context paths (naive engine, positional
  /// predicates) read: doc_ when pristine, the overlay's lazily
  /// materialized merged table otherwise.
  Result<const DocTable*> EffectiveDoc();

  const DocTable& doc_;
  EvalOptions options_;
  std::vector<StepTrace> trace_;
  /// Lazily computed DocColumnsDigest of doc_, used to check that a
  /// paged backend images the same document (computed on first paged
  /// query).
  std::optional<uint64_t> doc_digest_;
  /// Lazily computed FragmentColumnsDigest of doc_, the matching check
  /// for EvalOptions::paged_tags.
  std::optional<uint64_t> frag_digest_;
};

}  // namespace sj::xpath

#endif  // STAIRJOIN_XPATH_EVALUATOR_H_
