// The ONE table of EXPLAIN format fragments.
//
// Several test suites pin the evaluator's trace output byte-for-byte
// (the concurrency suite compares traces across threads, the twig suite
// asserts the collapse markers, examples grep for "-> N nodes"), and the
// bench baselines key on plan descriptions staying stable. A step
// description literal typed inline in evaluator code is therefore a
// drift hazard: two sites spelling "buffer pool" slightly differently
// break byte-identical traces in ways no compiler notices. Every trace
// fragment lives HERE and nowhere else; sj-lint (tools/lint/sj_lint.py,
// rule explain-literal) fails the build when an EXPLAIN-looking string
// literal appears in another src/xpath/ file.

#ifndef STAIRJOIN_XPATH_EXPLAIN_STRINGS_H_
#define STAIRJOIN_XPATH_EXPLAIN_STRINGS_H_

namespace sj::xpath::explain {

// --- backend labels (BackendDispatch::Label) --------------------------------
inline constexpr const char kLabelMemory[] = "";
inline constexpr const char kLabelPaged[] = "paged ";
inline constexpr const char kLabelCompressed[] = "compressed ";

// --- step connectors --------------------------------------------------------
/// Joins a step's text with its operator description.
inline constexpr const char kVia[] = " via ";

// --- staircase join ---------------------------------------------------------
inline constexpr const char kStaircaseJoin[] = "staircase join";
inline constexpr const char kParallelPrefix[] = "parallel ";
inline constexpr const char kBufferPoolSuffix[] = " (buffer pool)";
inline constexpr const char kWorkersOpen[] = " (";
inline constexpr const char kWorkersClose[] = " workers)";

// --- name-test pushdown -----------------------------------------------------
inline constexpr const char kPushdownOpen[] =
    "staircase join over tag fragment '";
inline constexpr const char kPushdownClose[] = "' (name-test pushdown)";

// --- axis cursors -----------------------------------------------------------
/// Suffix after the axis name: "<axis>-axis cursor join".
inline constexpr const char kAxisCursorJoin[] = "-axis cursor join";
/// Suffix after the axis name of the set-at-a-time positional step:
/// "<axis>-axis positional rank join". Replaced the per-context
/// positional-predicate fallback (which bypassed the buffer pool).
inline constexpr const char kPositionalRankJoin[] =
    "-axis positional rank join";

// --- twig join --------------------------------------------------------------
inline constexpr const char kTwigJoinOverFragments[] =
    "twig join over fragments ";
inline constexpr const char kTwigLevelSep[] = "→";
inline constexpr const char kTwigQuote[] = "'";
inline constexpr const char kTwigK[] = ", k=";
inline constexpr const char kTwigSkipsOpen[] = " (cursor skips:";
inline constexpr const char kTwigSkipsFirst[] = " '";
inline constexpr const char kTwigSkipsNext[] = ", '";
inline constexpr const char kTwigSkipsEq[] = "'=";
inline constexpr const char kCloseParen[] = ")";
inline constexpr const char kStepSep[] = "/";
inline constexpr const char kSubsumedByTwigOpen[] =
    " -> subsumed by twig join (step ";

// --- snapshot overlay (updatable documents) ---------------------------------
/// Backend labels of joins running over a delta overlay (the merged
/// base + delta document; base reads still charge the pool).
inline constexpr const char kLabelOverlayMemory[] = "overlay ";
inline constexpr const char kLabelOverlayPaged[] = "overlay paged ";
inline constexpr const char kLabelOverlayCompressed[] = "overlay compressed ";
/// Leading line of an edited snapshot's EXPLAIN:
/// "snapshot: epoch N (delta: M nodes)". Pristine databases (epoch 0)
/// emit no line, keeping their traces byte-identical to pre-delta runs.
inline constexpr const char kSnapshotOpen[] = "snapshot: epoch ";
inline constexpr const char kSnapshotDeltaOpen[] = " (delta: ";
inline constexpr const char kSnapshotDeltaClose[] = " nodes)";

// --- plan cache (sj::QueryResult::Explain) ----------------------------------
/// Leading line of a cache-served query's EXPLAIN; closed by kCloseParen.
/// The rest of the report stays byte-identical to the uncached run.
inline constexpr const char kPlanCachedOpen[] = "plan: cached (hits=";

// --- per-context fallbacks --------------------------------------------------
inline constexpr const char kPerContext[] = " via per-context evaluation";
inline constexpr const char kPositionalSuffix[] =
    " via per-context evaluation (positional predicate)";
inline constexpr const char kBypassesPoolSuffix[] =
    " (memory-resident -- bypasses buffer pool)";

// --- empty short-circuits ---------------------------------------------------
inline constexpr const char kEmptyShortCircuited[] =
    " -> empty (short-circuited)";
inline constexpr const char kEmptyUnknownTag[] = " -> empty (unknown tag)";

// --- ExplainTrace rendering -------------------------------------------------
inline constexpr const char kStepPrefix[] = "step ";
inline constexpr const char kStepColon[] = ": ";
inline constexpr const char kStatContext[] = "  context=";
inline constexpr const char kStatPruned[] = " pruned=";
inline constexpr const char kStatScanned[] = " scanned=";
inline constexpr const char kStatCopied[] = " copied=";
inline constexpr const char kStatSkipped[] = " skipped=";
inline constexpr const char kStatResult[] = " result=";
/// Planner estimate vs actual rows: " est=N act=M" after the result
/// count. Estimates are deterministic in (statistics, options), so
/// cached and uncached traces stay byte-identical.
inline constexpr const char kStatEst[] = " est=";
inline constexpr const char kStatAct[] = " act=";
inline constexpr const char kStatMillisOpen[] = "  (";
inline constexpr const char kStatMillisClose[] = " ms)";

}  // namespace sj::xpath::explain

#endif  // STAIRJOIN_XPATH_EXPLAIN_STRINGS_H_
