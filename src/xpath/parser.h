// Recursive-descent parser for the XPath location-path fragment.

#ifndef STAIRJOIN_XPATH_PARSER_H_
#define STAIRJOIN_XPATH_PARSER_H_

#include <string_view>

#include "util/result.h"
#include "xpath/ast.h"

namespace sj::xpath {

/// \brief Parses an XPath location path.
///
/// Grammar (abbreviations expanded during parsing):
///   path      := '/'? relative | '//' relative
///   relative  := step (('/' | '//') step)*
///   step      := axis '::' nodetest pred* | '@' nodetest pred*
///              | nodetest pred* | '.' | '..'
///   nodetest  := NAME | '*' | 'node()' | 'text()' | 'comment()'
///              | 'processing-instruction(' NAME? ')'
///   pred      := '[' relative-or-absolute path ']'
///
/// `//` expands to `/descendant-or-self::node()/`. Predicates may also be
/// positional: `[N]` (1-based, in axis order) or `[last()]`. Returns
/// ParseError with a position for malformed input.
Result<LocationPath> ParseXPath(std::string_view input);

/// \brief Parses a union of location paths: `p1 | p2 | ...`.
Result<UnionExpr> ParseXPathUnion(std::string_view input);

}  // namespace sj::xpath

#endif  // STAIRJOIN_XPATH_PARSER_H_
