// The ONE backend-selection point of the engine (internal header).
//
// Every per-backend shim family a step can run through -- staircase
// join, name-test pushdown join, axis cursor, node-test filter, twig
// join, fragment statistics, wiring validation -- dispatches here as an
// exhaustive switch over StorageBackend with no default case, so a new
// backend (or a new operation) that misses a site is a -Wswitch warning
// at compile time instead of a silent fall-through to the memory path.
//
// This file is the only place allowed to compare or switch on
// StorageBackend: sj-lint (tools/lint/sj_lint.py, rule backend-dispatch)
// fails on a comparison or switch anywhere else under src/, which is
// what keeps the dispatch exhaustive-by-construction promise honest as
// the ROADMAP's mmap and sharded-collection backends land.

#ifndef STAIRJOIN_XPATH_BACKEND_DISPATCH_H_
#define STAIRJOIN_XPATH_BACKEND_DISPATCH_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/axis_impl.h"
#include "core/axis_step.h"
#include "core/fragment_impl.h"
#include "core/staircase_impl.h"
#include "core/twig_impl.h"
#include "delta/delta_accessor.h"
#include "storage/compressed_accessor.h"
#include "storage/paged_accessor.h"
#include "xpath/evaluator.h"
#include "xpath/explain_strings.h"

namespace sj::xpath {

class BackendDispatch {
 public:
  /// `doc` and `opt` are borrowed; the EvalOptions wiring (which
  /// tables/pools/fragment images serve a query) must have been
  /// validated via ValidateWiring before the join methods run.
  BackendDispatch(const DocTable& doc, const EvalOptions& opt)
      : doc_(doc), opt_(opt) {}

  /// True when sessions of backend `b` charge reads to a buffer pool.
  static bool UsesPool(StorageBackend b) {
    switch (b) {
      case StorageBackend::kMemory:
        return false;
      case StorageBackend::kPaged:
      case StorageBackend::kCompressed:
        return true;
    }
    return false;
  }

  /// Facade wiring (sj::Database::CreateSession): points `eval` at the
  /// backend images its chosen backend reads, or fails when the database
  /// holds no such image. The pool is wired by the caller (shared vs
  /// session-private), guarded by UsesPool.
  static Status WireBackend(EvalOptions* eval,
                            const storage::PagedDocTable* paged_doc,
                            const storage::PagedTagIndex* paged_tags,
                            const storage::CompressedDocTable* compressed_doc,
                            const storage::CompressedTagIndex* compressed_tags) {
    switch (eval->backend) {
      case StorageBackend::kMemory:
        return Status::OK();
      case StorageBackend::kPaged:
        if (paged_doc == nullptr) {
          return Status::InvalidArgument(
              "session requests the paged backend but the database was "
              "opened without a paged image (DatabaseOptions::build_paged)");
        }
        eval->paged_doc = paged_doc;
        eval->paged_tags = paged_tags;
        return Status::OK();
      case StorageBackend::kCompressed:
        if (compressed_doc == nullptr) {
          return Status::InvalidArgument(
              "session requests the compressed backend but the database was "
              "opened without a compressed image "
              "(DatabaseOptions::build_compressed)");
        }
        eval->compressed_doc = compressed_doc;
        eval->compressed_tags = compressed_tags;
        return Status::OK();
    }
    return Status::Internal("unreachable");
  }

  /// True when the session's snapshot carries a non-empty delta overlay:
  /// every join then runs over the merged document via the delta cursors
  /// (base reads still charge the pool; delta reads are resident).
  bool Overlaid() const {
    return opt_.overlay != nullptr && !opt_.overlay->empty();
  }

  /// EXPLAIN label prefix of the backend ("", "paged ", "compressed ";
  /// overlay variants when a delta overlay is active).
  const char* Label() const {
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return Overlaid() ? explain::kLabelOverlayMemory
                          : explain::kLabelMemory;
      case StorageBackend::kPaged:
        return Overlaid() ? explain::kLabelOverlayPaged : explain::kLabelPaged;
      case StorageBackend::kCompressed:
        return Overlaid() ? explain::kLabelOverlayCompressed
                          : explain::kLabelCompressed;
    }
    return explain::kLabelMemory;
  }

  /// Whether steps charge their reads to a buffer pool (EXPLAIN suffix).
  bool Pooled() const { return UsesPool(opt_.backend); }

  /// The pool-backed backend's name for digest-mismatch Statuses.
  const char* DigestName() const {
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return "memory";
      case StorageBackend::kPaged:
        return "paged";
      case StorageBackend::kCompressed:
        return "compressed";
    }
    return "memory";
  }

  /// Fails when the options name a backend whose tables or pool are not
  /// wired. The join methods below assume this passed.
  Status ValidateWiring() const {
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return Status::OK();
      case StorageBackend::kPaged:
        if (opt_.paged_doc == nullptr || opt_.pool == nullptr) {
          return Status::InvalidArgument(
              "paged backend requires EvalOptions::paged_doc and pool");
        }
        return Status::OK();
      case StorageBackend::kCompressed:
        if (opt_.compressed_doc == nullptr || opt_.pool == nullptr) {
          return Status::InvalidArgument(
              "compressed backend requires EvalOptions::compressed_doc and "
              "pool");
        }
        return Status::OK();
    }
    return Status::Internal("unreachable");
  }

  /// Node count of the pool-backed image (0 on the memory backend);
  /// requires ValidateWiring().
  size_t ImageSize() const {
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return doc_.size();
      case StorageBackend::kPaged:
        return opt_.paged_doc->size();
      case StorageBackend::kCompressed:
        return opt_.compressed_doc->size();
    }
    return 0;
  }

  /// DocColumnsDigest the pool-backed image was built from; requires
  /// ValidateWiring() and Pooled().
  uint64_t ImageDocDigest() const {
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return 0;
      case StorageBackend::kPaged:
        return opt_.paged_doc->source_digest();
      case StorageBackend::kCompressed:
        return opt_.compressed_doc->source_digest();
    }
    return 0;
  }

  /// FragmentColumnsDigest of the backend's fragment index; nullopt when
  /// the backend has none wired.
  std::optional<uint64_t> ImageFragDigest() const {
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return std::nullopt;
      case StorageBackend::kPaged:
        return opt_.paged_tags != nullptr
                   ? std::optional<uint64_t>(opt_.paged_tags->source_digest())
                   : std::nullopt;
      case StorageBackend::kCompressed:
        return opt_.compressed_tags != nullptr
                   ? std::optional<uint64_t>(
                         opt_.compressed_tags->source_digest())
                   : std::nullopt;
    }
    return std::nullopt;
  }

  /// Whether the active backend has a fragment index wired. Pushdown and
  /// twig both require it; each pool-backed backend only qualifies with
  /// its own fragment image -- a memory-resident TagIndex would silently
  /// bypass the buffer pool and charge no faults.
  bool HasFragments() const {
    // Under an overlay the merged per-tag fragments must exist too (they
    // are built from the resident TagIndex at commit time).
    if (Overlaid() && !opt_.overlay->has_fragments()) return false;
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return opt_.tag_index != nullptr;
      case StorageBackend::kPaged:
        return opt_.paged_tags != nullptr;
      case StorageBackend::kCompressed:
        return opt_.compressed_tags != nullptr;
    }
    return false;
  }

  /// Fragment size of `tag` (the pushdown cost model's selectivity);
  /// requires HasFragments().
  uint64_t TagCount(TagId tag) const {
    // Merged count: base survivors plus delta elements of the tag.
    if (Overlaid()) return opt_.overlay->tag_count(tag);
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return opt_.tag_index->tag_count(tag);
      case StorageBackend::kPaged:
        return opt_.paged_tags->tag_count(tag);
      case StorageBackend::kCompressed:
        return opt_.compressed_tags->tag_count(tag);
    }
    return 0;
  }

  /// Staircase join over the whole document (parallel when configured).
  /// Overlaid snapshots run the same generic kernels over the merging
  /// accessors -- serially: the partitioned parallel driver's chunk math
  /// is pristine-image-specific, and the delta is expected to be small
  /// until compaction folds it (EXPLAIN drops the parallel prefix).
  Result<NodeSequence> Staircase(const NodeSequence& context, Axis axis,
                                 JoinStats* stats) const {
    if (Overlaid()) {
      switch (opt_.backend) {
        case StorageBackend::kMemory: {
          delta::DeltaDocAccessor<MemoryDocAccessor> acc(*opt_.overlay, doc_);
          return internal::StaircaseJoinOver(acc, context, axis,
                                             opt_.staircase, stats);
        }
        case StorageBackend::kPaged: {
          delta::DeltaDocAccessor<storage::PagedDocAccessor> acc(
              *opt_.overlay, *opt_.paged_doc, opt_.pool);
          return internal::StaircaseJoinOver(acc, context, axis,
                                             opt_.staircase, stats);
        }
        case StorageBackend::kCompressed: {
          delta::DeltaDocAccessor<storage::CompressedDocAccessor> acc(
              *opt_.overlay, *opt_.compressed_doc, opt_.pool);
          return internal::StaircaseJoinOver(acc, context, axis,
                                             opt_.staircase, stats);
        }
      }
      return Status::Internal("unreachable");
    }
    const bool parallel = opt_.num_threads > 1;
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return parallel ? ParallelStaircaseJoin(doc_, context, axis,
                                                opt_.staircase,
                                                opt_.num_threads, stats)
                        : StaircaseJoin(doc_, context, axis, opt_.staircase,
                                        stats);
      case StorageBackend::kPaged:
        return parallel ? storage::ParallelPagedStaircaseJoin(
                              *opt_.paged_doc, opt_.pool, context, axis,
                              opt_.staircase, opt_.num_threads, stats)
                        : storage::PagedStaircaseJoin(*opt_.paged_doc,
                                                      opt_.pool, context, axis,
                                                      opt_.staircase, stats);
      case StorageBackend::kCompressed:
        return parallel ? storage::ParallelCompressedStaircaseJoin(
                              *opt_.compressed_doc, opt_.pool, context, axis,
                              opt_.staircase, opt_.num_threads, stats)
                        : storage::CompressedStaircaseJoin(
                              *opt_.compressed_doc, opt_.pool, context, axis,
                              opt_.staircase, stats);
    }
    return Status::Internal("unreachable");
  }

  /// Name-test pushdown: staircase join over one tag fragment.
  Result<NodeSequence> PushdownView(TagId tag, const NodeSequence& context,
                                    Axis axis, JoinStats* stats) const {
    if (Overlaid()) {
      switch (opt_.backend) {
        case StorageBackend::kMemory: {
          delta::DeltaFragmentCursor<MemoryFragmentCursor> frag(
              *opt_.overlay, tag, opt_.tag_index->view(tag));
          delta::DeltaDocAccessor<MemoryDocAccessor> acc(*opt_.overlay, doc_);
          return internal::FragmentStaircaseJoinOver(frag, acc, context, axis,
                                                     opt_.staircase, stats);
        }
        case StorageBackend::kPaged: {
          delta::DeltaFragmentCursor<storage::PagedFragmentCursor> frag(
              *opt_.overlay, tag, opt_.paged_tags->fragment(tag), opt_.pool);
          delta::DeltaDocAccessor<storage::PagedDocAccessor> acc(
              *opt_.overlay, *opt_.paged_doc, opt_.pool);
          return internal::FragmentStaircaseJoinOver(frag, acc, context, axis,
                                                     opt_.staircase, stats);
        }
        case StorageBackend::kCompressed: {
          delta::DeltaFragmentCursor<storage::CompressedFragmentCursor> frag(
              *opt_.overlay, tag, opt_.compressed_tags->fragment(tag),
              opt_.pool);
          delta::DeltaDocAccessor<storage::CompressedDocAccessor> acc(
              *opt_.overlay, *opt_.compressed_doc, opt_.pool);
          return internal::FragmentStaircaseJoinOver(frag, acc, context, axis,
                                                     opt_.staircase, stats);
        }
      }
      return Status::Internal("unreachable");
    }
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return StaircaseJoinView(doc_, opt_.tag_index->view(tag), context,
                                 axis, opt_.staircase, stats);
      case StorageBackend::kPaged:
        return storage::PagedStaircaseJoinView(*opt_.paged_tags, tag,
                                               *opt_.paged_doc, opt_.pool,
                                               context, axis, opt_.staircase,
                                               stats);
      case StorageBackend::kCompressed:
        return storage::CompressedStaircaseJoinView(
            *opt_.compressed_tags, tag, *opt_.compressed_doc, opt_.pool,
            context, axis, opt_.staircase, stats);
    }
    return Status::Internal("unreachable");
  }

  /// Non-staircase axis step with the node test folded into the scan.
  Result<NodeSequence> AxisCursor(const NodeSequence& context, Axis axis,
                                  const AxisNodeTest& test,
                                  JoinStats* stats) const {
    if (Overlaid()) {
      switch (opt_.backend) {
        case StorageBackend::kMemory: {
          delta::DeltaDocAccessor<MemoryDocAccessor> acc(*opt_.overlay, doc_);
          return internal::AxisStepOver(acc, context, axis, test, stats);
        }
        case StorageBackend::kPaged: {
          delta::DeltaDocAccessor<storage::PagedDocAccessor> acc(
              *opt_.overlay, *opt_.paged_doc, opt_.pool);
          return internal::AxisStepOver(acc, context, axis, test, stats);
        }
        case StorageBackend::kCompressed: {
          delta::DeltaDocAccessor<storage::CompressedDocAccessor> acc(
              *opt_.overlay, *opt_.compressed_doc, opt_.pool);
          return internal::AxisStepOver(acc, context, axis, test, stats);
        }
      }
      return Status::Internal("unreachable");
    }
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return AxisCursorStep(doc_, context, axis, test, stats);
      case StorageBackend::kPaged:
        return storage::PagedAxisCursorStep(*opt_.paged_doc, opt_.pool,
                                            context, axis, test, stats);
      case StorageBackend::kCompressed:
        return storage::CompressedAxisCursorStep(*opt_.compressed_doc,
                                                 opt_.pool, context, axis,
                                                 test, stats);
    }
    return Status::Internal("unreachable");
  }

  /// Set-at-a-time positional axis step: per-context groups for rank
  /// predicates, every read charged to the backend (the replacement for
  /// the per-context fallback that bypassed the pool).
  Result<internal::PositionalGroups> PositionalAxis(
      const NodeSequence& context, Axis axis, const AxisNodeTest& test,
      JoinStats* stats) const {
    if (Overlaid()) {
      switch (opt_.backend) {
        case StorageBackend::kMemory: {
          delta::DeltaDocAccessor<MemoryDocAccessor> acc(*opt_.overlay, doc_);
          return internal::PositionalAxisStepOver(acc, context, axis, test,
                                                  stats);
        }
        case StorageBackend::kPaged: {
          delta::DeltaDocAccessor<storage::PagedDocAccessor> acc(
              *opt_.overlay, *opt_.paged_doc, opt_.pool);
          return internal::PositionalAxisStepOver(acc, context, axis, test,
                                                  stats);
        }
        case StorageBackend::kCompressed: {
          delta::DeltaDocAccessor<storage::CompressedDocAccessor> acc(
              *opt_.overlay, *opt_.compressed_doc, opt_.pool);
          return internal::PositionalAxisStepOver(acc, context, axis, test,
                                                  stats);
        }
      }
      return Status::Internal("unreachable");
    }
    switch (opt_.backend) {
      case StorageBackend::kMemory: {
        MemoryDocAccessor acc(doc_);
        return internal::PositionalAxisStepOver(acc, context, axis, test,
                                                stats);
      }
      case StorageBackend::kPaged: {
        storage::PagedDocAccessor acc(*opt_.paged_doc, opt_.pool);
        return internal::PositionalAxisStepOver(acc, context, axis, test,
                                                stats);
      }
      case StorageBackend::kCompressed: {
        storage::CompressedDocAccessor acc(*opt_.compressed_doc, opt_.pool);
        return internal::PositionalAxisStepOver(acc, context, axis, test,
                                                stats);
      }
    }
    return Status::Internal("unreachable");
  }

  /// The cost model's per-page unit of the active backend (cost_model.h
  /// constants; the backend switch lives here, not in the estimator).
  double PageCostUnit() const {
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return kMemoryPageCost;
      case StorageBackend::kPaged:
        return kPagedPageCost;
      case StorageBackend::kCompressed:
        return kCompressedPageCost;
    }
    return kPagedPageCost;
  }

  /// Node-test filter pass over a join result (kind/tag reads are
  /// charged to the step's backend, like every other read).
  Result<NodeSequence> Filter(const NodeSequence& nodes,
                              const AxisNodeTest& test) const {
    if (Overlaid()) {
      switch (opt_.backend) {
        case StorageBackend::kMemory: {
          delta::DeltaDocAccessor<MemoryDocAccessor> acc(*opt_.overlay, doc_);
          NodeSequence out = internal::FilterSequenceOver(acc, nodes, test);
          if (!acc.ok()) return acc.status();
          return out;
        }
        case StorageBackend::kPaged: {
          delta::DeltaDocAccessor<storage::PagedDocAccessor> acc(
              *opt_.overlay, *opt_.paged_doc, opt_.pool);
          NodeSequence out = internal::FilterSequenceOver(acc, nodes, test);
          if (!acc.ok()) return acc.status();
          return out;
        }
        case StorageBackend::kCompressed: {
          delta::DeltaDocAccessor<storage::CompressedDocAccessor> acc(
              *opt_.overlay, *opt_.compressed_doc, opt_.pool);
          NodeSequence out = internal::FilterSequenceOver(acc, nodes, test);
          if (!acc.ok()) return acc.status();
          return out;
        }
      }
      return Status::Internal("unreachable");
    }
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return FilterByTestSequence(doc_, nodes, test);
      case StorageBackend::kPaged:
        return storage::PagedFilterByTest(*opt_.paged_doc, opt_.pool, nodes,
                                          test);
      case StorageBackend::kCompressed:
        return storage::CompressedFilterByTest(*opt_.compressed_doc,
                                               opt_.pool, nodes, test);
    }
    return Status::Internal("unreachable");
  }

  /// Holistic twig join over the backend's fragment cursors; requires
  /// HasFragments().
  Result<NodeSequence> Twig(const NodeSequence& context,
                            const std::vector<TwigLevel>& levels,
                            JoinStats* stats,
                            std::vector<TwigLevelStats>* level_stats) const {
    if (Overlaid()) {
      switch (opt_.backend) {
        case StorageBackend::kMemory: {
          delta::DeltaDocAccessor<MemoryDocAccessor> acc(*opt_.overlay, doc_);
          return OverlayTwig<MemoryFragmentCursor>(
              acc, context, levels, stats, level_stats, [this](TagId tag) {
                return std::make_unique<
                    delta::DeltaFragmentCursor<MemoryFragmentCursor>>(
                    *opt_.overlay, tag, opt_.tag_index->view(tag));
              });
        }
        case StorageBackend::kPaged: {
          delta::DeltaDocAccessor<storage::PagedDocAccessor> acc(
              *opt_.overlay, *opt_.paged_doc, opt_.pool);
          return OverlayTwig<storage::PagedFragmentCursor>(
              acc, context, levels, stats, level_stats, [this](TagId tag) {
                return std::make_unique<
                    delta::DeltaFragmentCursor<storage::PagedFragmentCursor>>(
                    *opt_.overlay, tag, opt_.paged_tags->fragment(tag),
                    opt_.pool);
              });
        }
        case StorageBackend::kCompressed: {
          delta::DeltaDocAccessor<storage::CompressedDocAccessor> acc(
              *opt_.overlay, *opt_.compressed_doc, opt_.pool);
          return OverlayTwig<storage::CompressedFragmentCursor>(
              acc, context, levels, stats, level_stats, [this](TagId tag) {
                return std::make_unique<delta::DeltaFragmentCursor<
                    storage::CompressedFragmentCursor>>(
                    *opt_.overlay, tag, opt_.compressed_tags->fragment(tag),
                    opt_.pool);
              });
        }
      }
      return Status::Internal("unreachable");
    }
    switch (opt_.backend) {
      case StorageBackend::kMemory:
        return TwigJoin(doc_, *opt_.tag_index, context, levels,
                        opt_.staircase, stats, level_stats);
      case StorageBackend::kPaged:
        return storage::PagedTwigJoin(*opt_.paged_tags, *opt_.paged_doc,
                                      opt_.pool, context, levels,
                                      opt_.staircase, stats, level_stats);
      case StorageBackend::kCompressed:
        return storage::CompressedTwigJoin(*opt_.compressed_tags,
                                           *opt_.compressed_doc, opt_.pool,
                                           context, levels, opt_.staircase,
                                           stats, level_stats);
    }
    return Status::Internal("unreachable");
  }

 private:
  /// Twig body shared by the three overlay branches: builds one delta
  /// fragment cursor per level (heap-allocated -- paged cursors own
  /// non-movable PageGuards) and runs the generic k-way join.
  template <typename BaseCursor, typename Acc, typename MakeCursor>
  Result<NodeSequence> OverlayTwig(
      Acc& acc, const NodeSequence& context,
      const std::vector<TwigLevel>& levels, JoinStats* stats,
      std::vector<TwigLevelStats>* level_stats, MakeCursor make_cursor) const {
    using Cursor = delta::DeltaFragmentCursor<BaseCursor>;
    std::vector<std::unique_ptr<Cursor>> owned;
    std::vector<Cursor*> cursors;
    owned.reserve(levels.size());
    cursors.reserve(levels.size());
    for (const TwigLevel& level : levels) {
      owned.push_back(make_cursor(level.tag));
      cursors.push_back(owned.back().get());
    }
    return internal::TwigJoinOver(cursors, acc, context, levels,
                                  opt_.staircase, stats, level_stats);
  }

  const DocTable& doc_;
  const EvalOptions& opt_;
};

}  // namespace sj::xpath

#endif  // STAIRJOIN_XPATH_BACKEND_DISPATCH_H_
