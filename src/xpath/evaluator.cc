#include "xpath/evaluator.h"

#include <algorithm>
#include <iterator>

#include "baselines/naive.h"
#include "core/axis_step.h"
#include "util/timer.h"
#include "xpath/backend_dispatch.h"
#include "xpath/explain_strings.h"

namespace sj::xpath {
namespace {

/// The axis' principal node kind (XPath: attribute for the attribute axis,
/// element everywhere else; we have no namespace axis).
NodeKind PrincipalKind(Axis axis) {
  return axis == Axis::kAttribute ? NodeKind::kAttribute : NodeKind::kElement;
}

/// Lowers a step's node test into the kernel-foldable AxisNodeTest.
/// `tag` must carry the interned code when the test names a tag (kName,
/// or kPi with a target); never-interned names short-circuit to the
/// empty sequence before this is called.
AxisNodeTest MakeAxisNodeTest(const Step& step,
                              const std::optional<TagId>& tag) {
  switch (step.test.kind) {
    case NodeTestKind::kAnyNode:
      return {};
    case NodeTestKind::kAnyName:
      return AxisNodeTest::OfKind(PrincipalKind(step.axis));
    case NodeTestKind::kName:
      return AxisNodeTest::OfKindAndTag(PrincipalKind(step.axis), *tag);
    case NodeTestKind::kText:
      return AxisNodeTest::OfKind(NodeKind::kText);
    case NodeTestKind::kComment:
      return AxisNodeTest::OfKind(NodeKind::kComment);
    case NodeTestKind::kPi:
      return step.test.name.empty()
                 ? AxisNodeTest::OfKind(NodeKind::kProcessingInstruction)
                 : AxisNodeTest::OfKindAndTag(
                       NodeKind::kProcessingInstruction, *tag);
  }
  return {};
}

}  // namespace

Evaluator::Evaluator(const DocTable& doc, EvalOptions options)
    : doc_(doc),
      options_(options),
      doc_digest_(options.doc_digest),
      frag_digest_(options.frag_digest) {
  // Paid up front so the O(doc) digest passes never land inside a timed
  // query (Evaluate would otherwise compute them lazily). A facade that
  // already validated the images at open time passes the digests in via
  // EvalOptions and skips the passes entirely.
  const BackendDispatch dispatch(doc_, options_);
  if (dispatch.Pooled()) {
    if (!doc_digest_.has_value()) {
      doc_digest_ = storage::DocColumnsDigest(doc_);
    }
    if (dispatch.HasFragments() && !frag_digest_.has_value()) {
      frag_digest_ = storage::FragmentColumnsDigest(doc_, *doc_digest_);
    }
  }
}

Result<NodeSequence> Evaluator::Evaluate(const LocationPath& path,
                                         const NodeSequence& context) {
  trace_.clear();
  return EvaluateKeepTrace(path, context);
}

bool Evaluator::Overlaid() const {
  return options_.overlay != nullptr && !options_.overlay->empty();
}

size_t Evaluator::LogicalSize() const {
  return Overlaid() ? options_.overlay->logical_size() : doc_.size();
}

std::optional<TagId> Evaluator::LookupTag(std::string_view name) const {
  if (Overlaid()) return options_.overlay->LookupTag(doc_.tags(), name);
  return doc_.tags().Lookup(name);
}

Result<const DocTable*> Evaluator::EffectiveDoc() {
  if (!Overlaid()) return &doc_;
  if (!options_.overlay_doc) {
    return Status::InvalidArgument(
        "overlay evaluation requires EvalOptions::overlay_doc");
  }
  return options_.overlay_doc();
}

Status Evaluator::CheckImageDigests(size_t image_size,
                                    uint64_t image_doc_digest,
                                    std::optional<uint64_t> image_frag_digest,
                                    const char* backend_name) {
  // Size alone cannot identify the document (two documents can share a
  // node count); compare column digests, computed once per evaluator.
  if (!doc_digest_.has_value()) {
    doc_digest_ = storage::DocColumnsDigest(doc_);
  }
  if (image_size != doc_.size() || image_doc_digest != *doc_digest_) {
    return Status::InvalidArgument(
        std::string(backend_name) +
        " table does not image the evaluator's document");
  }
  if (image_frag_digest.has_value()) {
    if (!frag_digest_.has_value()) {
      frag_digest_ = storage::FragmentColumnsDigest(doc_, *doc_digest_);
    }
    if (*image_frag_digest != *frag_digest_) {
      return Status::InvalidArgument(
          std::string(backend_name) +
          " tag index does not image the evaluator's document");
    }
  }
  return Status::OK();
}

Result<NodeSequence> Evaluator::EvaluateKeepTrace(const LocationPath& path,
                                                  const NodeSequence& context,
                                                  const PlannedPath* planned) {
  const BackendDispatch dispatch(doc_, options_);
  if (dispatch.Pooled()) {
    SJ_RETURN_NOT_OK(dispatch.ValidateWiring());
    SJ_RETURN_NOT_OK(CheckImageDigests(
        dispatch.ImageSize(), dispatch.ImageDocDigest(),
        dispatch.ImageFragDigest(), dispatch.DigestName()));
  }
  NodeSequence start = context;
  if (path.absolute) {
    start = doc_.empty() ? NodeSequence{} : NodeSequence{doc_.root()};
  }
  if (!IsDocumentOrder(start)) {
    return Status::InvalidArgument(
        "context must be duplicate-free and in document order");
  }
  // Logical size: under a delta overlay the context addresses the merged
  // document's dense logical pre ranks. (The logical root is always 0 --
  // base nodes are never reordered and the root is undeletable -- so the
  // absolute-path start above needs no mapping.)
  if (!start.empty() && start.back() >= LogicalSize()) {
    return Status::InvalidArgument("context node out of range");
  }
  return EvalSteps(path.steps, 0, std::move(start), /*top_level=*/true,
                   planned);
}

Result<NodeSequence> Evaluator::Evaluate(const LocationPath& path) {
  return Evaluate(path, doc_.empty() ? NodeSequence{}
                                     : NodeSequence{doc_.root()});
}

Result<NodeSequence> Evaluator::EvaluateString(std::string_view xpath) {
  SJ_ASSIGN_OR_RETURN(LocationPath path, ParseXPath(xpath));
  return Evaluate(path);
}

Result<NodeSequence> Evaluator::EvaluateUnion(
    const UnionExpr& expr, const std::vector<PlannedPath>* planned,
    const NodeSequence& context) {
  // One trace for the whole union: clearing per branch would leave
  // ExplainLastQuery reporting only the final branch's steps.
  trace_.clear();
  NodeSequence merged;
  for (size_t b = 0; b < expr.branches.size(); ++b) {
    SJ_ASSIGN_OR_RETURN(
        NodeSequence r,
        EvaluateKeepTrace(expr.branches[b], context,
                          planned != nullptr ? &(*planned)[b] : nullptr));
    NodeSequence next;
    next.reserve(merged.size() + r.size());
    std::merge(merged.begin(), merged.end(), r.begin(), r.end(),
               std::back_inserter(next));
    next.erase(std::unique(next.begin(), next.end()), next.end());
    merged = std::move(next);
  }
  return merged;
}

Result<NodeSequence> Evaluator::Evaluate(const UnionExpr& expr,
                                         const NodeSequence& context) {
  return EvaluateUnion(expr, /*planned=*/nullptr, context);
}

Result<NodeSequence> Evaluator::Evaluate(const CompiledPlan& plan,
                                         const NodeSequence& context) {
  if (plan.branches.size() != plan.expr.branches.size()) {
    return Status::InvalidArgument(
        "compiled plan does not match its expression");
  }
  return EvaluateUnion(plan.expr, &plan.branches, context);
}

CompiledPlan Evaluator::Compile(UnionExpr expr) const {
  CompiledPlan plan;
  plan.expr = std::move(expr);
  plan.branches.reserve(plan.expr.branches.size());
  for (const LocationPath& branch : plan.expr.branches) {
    plan.branches.push_back(PlanPath(branch.steps));
  }
  return plan;
}

CardinalityEstimator Evaluator::MakeEstimator() const {
  const BackendDispatch dispatch(doc_, options_);
  const bool has_fragments = dispatch.HasFragments();
  const DocStatistics* stats = options_.doc_stats;
  const uint64_t logical = LogicalSize();
  auto tag_count = [this, has_fragments, stats, logical](TagId tag) {
    if (tag == kNoTag) return uint64_t{0};
    if (has_fragments) {
      // The active fragment index's count -- under an overlay this is
      // the MERGED count (base survivors + delta nodes), which is what
      // gives tags first introduced by an edit their real sizes.
      return BackendDispatch(doc_, options_).TagCount(tag);
    }
    if (stats != nullptr && tag < stats->tag_counts.size() && !Overlaid()) {
      return stats->tag_counts[tag];
    }
    return logical;  // unknown selectivity: assume non-selective
  };
  return CardinalityEstimator(stats, logical, dispatch.PageCostUnit(),
                              std::move(tag_count));
}

PlannedPath Evaluator::PlanPath(const std::vector<Step>& steps) const {
  // The same walk EvalSteps performs at execution time: a twig match
  // consumes its whole run, every other step is planned individually.
  // ContextEstimates chain from the root -- like Compile-time planning,
  // per-run context sizes must not influence decisions, or cached and
  // uncached plans (and their traces) would diverge.
  PlannedPath planned;
  planned.steps.resize(steps.size());
  const CardinalityEstimator est = MakeEstimator();
  ContextEstimate ctx = est.Root();
  for (size_t i = 0; i < steps.size();) {
    PlannedStep step = MatchTwigRun(steps, i);
    if (step.twig_consumed > 0) {
      step.op = StepOperator::kTwig;
      for (const TwigLevel& level : step.twig_levels) {
        ctx = est.EstimateStep(ctx, level.axis, level.tag);
      }
      step.estimated_rows = RoundedEstimate(ctx.rows);
      const size_t consumed = step.twig_consumed;
      planned.steps[i] = std::move(step);
      for (size_t s = 1; s < consumed; ++s) {
        planned.steps[i + s].op = StepOperator::kTwigSubsumed;
      }
      i += consumed;
      continue;
    }
    planned.steps[i] = PlanStep(steps[i], est, &ctx);
    ++i;
  }
  return planned;
}

Result<NodeSequence> Evaluator::EvaluateUnionString(std::string_view xpath) {
  SJ_ASSIGN_OR_RETURN(UnionExpr expr, ParseXPathUnion(xpath));
  return Evaluate(expr, doc_.empty() ? NodeSequence{}
                                     : NodeSequence{doc_.root()});
}

Result<NodeSequence> Evaluator::EvalSteps(const std::vector<Step>& steps,
                                          size_t first, NodeSequence context,
                                          bool top_level,
                                          const PlannedPath* planned) {
  NodeSequence current = std::move(context);
  // Planned and unplanned execution share every line below this one: a
  // compiled plan supplies the PlannedPath; otherwise PlanPath derives
  // it here, exactly as Compile would have -- same decisions, same
  // estimates, same traces.
  PlannedPath local;
  if (planned == nullptr) {
    local = PlanPath(steps);
    planned = &local;
  }
  for (size_t i = first; i < steps.size();) {
    if (current.empty()) {
      // The remaining steps cannot produce anything, but EXPLAIN must
      // still list one entry per step of the query -- a trace shorter
      // than the path would misreport the executed plan.
      if (top_level) {
        for (size_t k = i; k < steps.size(); ++k) {
          StepTrace skipped;
          skipped.description =
              ToString(steps[k]) + explain::kEmptyShortCircuited;
          skipped.op = planned->steps[k].op;
          skipped.estimated_rows = planned->steps[k].estimated_rows;
          trace_.push_back(std::move(skipped));
        }
      }
      return NodeSequence{};
    }
    const PlannedStep* plan = &planned->steps[i];
    if (plan->twig_consumed > 0) {
      SJ_ASSIGN_OR_RETURN(current,
                          EvalTwigRun(steps, i, *plan, current, top_level));
      i += plan->twig_consumed;
    } else {
      SJ_ASSIGN_OR_RETURN(current,
                          EvalStep(steps[i], current, top_level, *plan));
      ++i;
    }
  }
  return current;
}

/// True for a predicate-free step the twig join can carry as one level.
static bool IsTwigLevelStep(const Step& step) {
  return step.predicates.empty() && step.test.kind == NodeTestKind::kName &&
         IsTwigAxis(step.axis);
}

/// True for the `descendant-or-self::node()` half of the parser's `//`
/// desugaring; folded with a following `child::name` into one
/// kDescendant level (descendant-or-self::node()/child::n == descendant::n).
static bool IsDescendantOrSelfNode(const Step& step) {
  return step.predicates.empty() && step.axis == Axis::kDescendantOrSelf &&
         step.test.kind == NodeTestKind::kAnyNode;
}

PlannedStep Evaluator::MatchTwigRun(const std::vector<Step>& steps,
                                    size_t first) const {
  PlannedStep plan;
  if (options_.engine != EngineMode::kStaircase ||
      options_.twig == TwigMode::kNever) {
    return plan;
  }
  if (!BackendDispatch(doc_, options_).HasFragments()) return plan;
  size_t i = first;
  while (i < steps.size()) {
    TwigLevel level;
    size_t used = 0;
    if (IsTwigLevelStep(steps[i])) {
      level.axis = steps[i].axis;
      plan.twig_names.push_back(steps[i].test.name);
      used = 1;
    } else if (i + 1 < steps.size() && IsDescendantOrSelfNode(steps[i]) &&
               IsTwigLevelStep(steps[i + 1]) &&
               steps[i + 1].axis == Axis::kChild) {
      level.axis = Axis::kDescendant;
      plan.twig_names.push_back(steps[i + 1].test.name);
      used = 2;
    } else {
      break;
    }
    // A never-interned name keeps its level: the empty kNoTag fragment
    // makes the whole twig empty in O(k), matching the single-step
    // unknown-tag short-circuit.
    level.tag = LookupTag(plan.twig_names.back()).value_or(kNoTag);
    plan.twig_levels.push_back(level);
    i += used;
  }
  // One level is just an ordinary step (pushdown already covers it); a
  // twig needs a chain.
  if (plan.twig_levels.size() < 2) return PlannedStep{};
  plan.twig_consumed = i - first;
  return plan;
}

PlannedStep Evaluator::PlanStep(const Step& step,
                                const CardinalityEstimator& est,
                                ContextEstimate* ctx) const {
  PlannedStep plan;
  for (const Predicate& pred : step.predicates) {
    plan.positional = plan.positional || pred.kind != Predicate::Kind::kExists;
  }
  // std::nullopt tag: the step's name test (or PI target) references a
  // never-interned name and can only produce the empty sequence.
  // Distinct from a text/comment node's kNoTag column value, which
  // Lookup can never return.
  plan.needs_tag = step.test.kind == NodeTestKind::kName ||
                   (step.test.kind == NodeTestKind::kPi &&
                    !step.test.name.empty());
  if (plan.needs_tag) plan.tag = LookupTag(step.test.name);
  plan.pushdown = !plan.positional && step.test.kind == NodeTestKind::kName &&
                  plan.tag.has_value() &&
                  ShouldPushdown(step, *plan.tag, est, *ctx);

  // Cardinality: chain the context estimate through the step, then the
  // predicate chain (positional predicates clamp to one row per context
  // node; existence predicates halve).
  ContextEstimate out =
      est.EstimateStep(*ctx, step.axis,
                       plan.needs_tag ? plan.tag.value_or(kNoTag) : kNoTag);
  if (plan.needs_tag && !plan.tag.has_value()) out.rows = 0.0;
  for (const Predicate& pred : step.predicates) {
    out.rows = est.EstimatePredicate(
        out.rows, ctx->rows, pred.kind != Predicate::Kind::kExists);
  }
  plan.estimated_rows = RoundedEstimate(out.rows);
  *ctx = out;

  // The operator EvalStep will route this plan through.
  if (options_.engine != EngineMode::kStaircase) {
    plan.op = StepOperator::kPerContext;
  } else if (plan.needs_tag && !plan.tag.has_value()) {
    plan.op = StepOperator::kEmpty;
  } else if (plan.positional) {
    plan.op = StepOperator::kPositional;
  } else if (IsStaircaseAxis(step.axis)) {
    plan.op = plan.pushdown ? StepOperator::kPushdown
                            : StepOperator::kStaircase;
  } else {
    plan.op = StepOperator::kAxisCursor;
  }
  return plan;
}

Result<NodeSequence> Evaluator::EvalTwigRun(const std::vector<Step>& steps,
                                            size_t first,
                                            const PlannedStep& plan,
                                            const NodeSequence& context,
                                            bool top_level) {
  Timer timer;
  JoinStats stats;
  std::vector<TwigLevelStats> level_stats;
  const BackendDispatch dispatch(doc_, options_);
  const bool count_faults = dispatch.Pooled() && options_.pool != nullptr;
  const uint64_t faults_before =
      count_faults ? options_.pool->stats().faults : 0;
  SJ_ASSIGN_OR_RETURN(NodeSequence result,
                      dispatch.Twig(context, plan.twig_levels, &stats,
                                    &level_stats));
  if (top_level) {
    // One twig entry carrying the collapsed plan, then one "subsumed"
    // marker per remaining step: EXPLAIN keeps listing exactly one entry
    // per step of the query, and no step text silently vanishes.
    const size_t twig_entry = trace_.size() + 1;  // 1-based, as printed
    std::string desc;
    for (size_t s = 0; s < plan.twig_consumed; ++s) {
      if (s > 0) desc += explain::kStepSep;
      desc += ToString(steps[first + s]);
    }
    desc += explain::kVia;
    desc += dispatch.Label();
    desc += explain::kTwigJoinOverFragments;
    for (size_t l = 0; l < plan.twig_names.size(); ++l) {
      if (l > 0) desc += explain::kTwigLevelSep;
      desc += explain::kTwigQuote + plan.twig_names[l] + explain::kTwigQuote;
    }
    desc += explain::kTwigK + std::to_string(plan.twig_levels.size());
    desc += explain::kTwigSkipsOpen;
    for (size_t l = 0; l < level_stats.size(); ++l) {
      desc += (l > 0 ? explain::kTwigSkipsNext : explain::kTwigSkipsFirst) +
              plan.twig_names[l] + explain::kTwigSkipsEq +
              std::to_string(level_stats[l].slots_skipped);
    }
    desc += explain::kCloseParen;
    StepTrace trace;
    trace.description = std::move(desc);
    stats.result_size = result.size();
    trace.stats = stats;
    trace.millis = timer.ElapsedMillis();
    trace.op = StepOperator::kTwig;
    trace.estimated_rows = plan.estimated_rows;
    if (count_faults) {
      trace.pool_faults = options_.pool->stats().faults - faults_before;
    }
    trace_.push_back(std::move(trace));
    for (size_t s = 1; s < plan.twig_consumed; ++s) {
      StepTrace subsumed;
      subsumed.description = ToString(steps[first + s]) +
                             explain::kSubsumedByTwigOpen +
                             std::to_string(twig_entry) +
                             explain::kCloseParen;
      subsumed.op = StepOperator::kTwigSubsumed;
      trace_.push_back(std::move(subsumed));
    }
  }
  return result;
}

bool Evaluator::ShouldPushdown(const Step& step, TagId tag,
                               const CardinalityEstimator& est,
                               const ContextEstimate& in) const {
  if (options_.engine != EngineMode::kStaircase) return false;
  const BackendDispatch dispatch(doc_, options_);
  if (!dispatch.HasFragments()) return false;
  if (step.test.kind != NodeTestKind::kName) return false;
  if (!IsStaircaseAxis(step.axis)) return false;
  switch (options_.pushdown) {
    case PushdownMode::kNever:
      return false;
    case PushdownMode::kAlways:
      return true;
    case PushdownMode::kAuto:
      if (options_.cost_model == CostModelMode::kOff) {
        // Legacy static threshold: "...obviously makes sense for
        // selective name tests only" (Section 4.4). The fragment size is
        // the exact selectivity; every index keeps it resident.
        return static_cast<double>(dispatch.TagCount(tag)) <=
               options_.pushdown_selectivity *
                   static_cast<double>(LogicalSize());
      }
      // Estimate-driven: the fragment join reads far fewer pages but
      // pays a fence probe per context node; the doc-scan staircase
      // join amortizes one pass across the whole context. Strict less:
      // ties keep the doc scan.
      return est.PushdownCost(in, tag) <
             est.StaircaseCost(in, step.axis, /*name_filter=*/true);
  }
  return false;
}

NodeSequence Evaluator::FilterByTest(const DocTable& doc, const Step& step,
                                     const NodeSequence& nodes) const {
  NodeSequence out;
  out.reserve(nodes.size());
  const NodeKind principal = PrincipalKind(step.axis);
  for (NodeId v : nodes) {
    const NodeKind kind = doc.kind(v);
    bool keep = false;
    switch (step.test.kind) {
      case NodeTestKind::kAnyNode:
        keep = true;
        break;
      case NodeTestKind::kAnyName:
        keep = kind == principal;
        break;
      case NodeTestKind::kName:
        keep = kind == principal &&
               doc.tag(v) != kNoTag &&
               doc.tags().Name(doc.tag(v)) == step.test.name;
        break;
      case NodeTestKind::kText:
        keep = kind == NodeKind::kText;
        break;
      case NodeTestKind::kComment:
        keep = kind == NodeKind::kComment;
        break;
      case NodeTestKind::kPi:
        keep = kind == NodeKind::kProcessingInstruction &&
               (step.test.name.empty() ||
                doc.tags().Name(doc.tag(v)) == step.test.name);
        break;
    }
    if (keep) out.push_back(v);
  }
  return out;
}

Result<bool> Evaluator::PredicateHolds(const Predicate& pred, NodeId node) {
  if (pred.kind != Predicate::Kind::kExists || pred.path == nullptr) {
    return Status::Internal("positional predicate on the set-at-a-time path");
  }
  if (pred.path->absolute) {
    SJ_ASSIGN_OR_RETURN(
        NodeSequence r,
        EvalSteps(pred.path->steps, 0,
                  doc_.empty() ? NodeSequence{} : NodeSequence{doc_.root()},
                  /*top_level=*/false));
    return !r.empty();
  }
  SJ_ASSIGN_OR_RETURN(NodeSequence r, EvalSteps(pred.path->steps, 0, {node},
                                                /*top_level=*/false));
  return !r.empty();
}

Result<NodeSequence> Evaluator::ApplyPredicates(const Step& step,
                                                NodeSequence nodes) {
  for (const Predicate& pred : step.predicates) {
    if (nodes.empty()) break;
    if (pred.path != nullptr && pred.path->absolute) {
      // An absolute predicate path is context-invariant: one evaluation
      // settles the verdict for every node of the step.
      SJ_ASSIGN_OR_RETURN(bool holds, PredicateHolds(pred, nodes.front()));
      if (!holds) nodes.clear();
      continue;
    }
    NodeSequence kept;
    kept.reserve(nodes.size());
    for (NodeId v : nodes) {
      SJ_ASSIGN_OR_RETURN(bool holds, PredicateHolds(pred, v));
      if (holds) kept.push_back(v);
    }
    nodes = std::move(kept);
  }
  return nodes;
}

/// True for the axes whose position counts against document order
/// (XPath reverse axes).
static bool IsReverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kParent:
    case Axis::kPreceding:
    case Axis::kPrecedingSibling:
      return true;
    default:
      return false;
  }
}

/// Positional predicates rank within ONE context node's axis output:
/// [2] means "the second node this step selects *from one context
/// node*, in axis order". RankWithinGroup applies a step's predicate
/// chain to one such group (already reversed for reverse axes);
/// predicates apply in order, each positional predicate indexing the
/// list surviving the previous ones.
Result<NodeSequence> Evaluator::RankWithinGroup(
    const Step& step, NodeSequence axis_nodes,
    std::vector<std::optional<bool>>* absolute_verdict) {
  for (size_t p = 0; p < step.predicates.size(); ++p) {
    const Predicate& pred = step.predicates[p];
    if (axis_nodes.empty()) break;
    NodeSequence kept;
    switch (pred.kind) {
      case Predicate::Kind::kPosition:
        if (pred.position <= axis_nodes.size()) {
          kept.push_back(axis_nodes[pred.position - 1]);
        }
        break;
      case Predicate::Kind::kLast:
        kept.push_back(axis_nodes.back());
        break;
      case Predicate::Kind::kExists:
        if (pred.path != nullptr && pred.path->absolute) {
          // Context-invariant: memoized once per step.
          if (!(*absolute_verdict)[p].has_value()) {
            SJ_ASSIGN_OR_RETURN(bool holds,
                                PredicateHolds(pred, axis_nodes.front()));
            (*absolute_verdict)[p] = holds;
          }
          if (*(*absolute_verdict)[p]) kept = std::move(axis_nodes);
          break;
        }
        for (NodeId v : axis_nodes) {
          SJ_ASSIGN_OR_RETURN(bool holds, PredicateHolds(pred, v));
          if (holds) kept.push_back(v);
        }
        break;
    }
    axis_nodes = std::move(kept);
  }
  return axis_nodes;
}

/// Naive-engine fallback: per-context evaluation over the resident
/// (merged) table. The staircase engine routes positional steps through
/// the set-at-a-time rank join in EvalStep instead.
Result<NodeSequence> Evaluator::EvalStepPositional(
    const Step& step, const NodeSequence& context) {
  NodeSequence collected;
  // Per-context evaluation reads whole nodes, not columns: under an
  // overlay it runs on the materialized merged table (resident, like the
  // pristine per-context path).
  SJ_ASSIGN_OR_RETURN(const DocTable* edoc, EffectiveDoc());
  std::vector<std::optional<bool>> absolute_verdict(step.predicates.size());
  for (NodeId c : context) {
    JoinStats ignored;
    SJ_ASSIGN_OR_RETURN(NodeSequence axis_nodes,
                        NaiveAxisStep(*edoc, {c}, step.axis, &ignored));
    axis_nodes = FilterByTest(*edoc, step, axis_nodes);
    if (IsReverseAxis(step.axis)) {
      std::reverse(axis_nodes.begin(), axis_nodes.end());
    }
    SJ_ASSIGN_OR_RETURN(
        axis_nodes,
        RankWithinGroup(step, std::move(axis_nodes), &absolute_verdict));
    collected.insert(collected.end(), axis_nodes.begin(), axis_nodes.end());
  }
  std::sort(collected.begin(), collected.end());
  collected.erase(std::unique(collected.begin(), collected.end()),
                  collected.end());
  return collected;
}

Result<NodeSequence> Evaluator::EvalStep(const Step& step,
                                         const NodeSequence& context,
                                         bool top_level,
                                         const PlannedStep& plan) {
  Timer timer;
  StepTrace trace;
  JoinStats stats;
  NodeSequence result;

  const BackendDispatch dispatch(doc_, options_);
  const bool count_faults = dispatch.Pooled() && options_.pool != nullptr;
  const uint64_t faults_before =
      count_faults ? options_.pool->stats().faults : 0;

  if (plan.positional && options_.engine != EngineMode::kStaircase) {
    // Naive engine: the per-context oracle path, whole-node reads over
    // the resident (merged) table.
    SJ_ASSIGN_OR_RETURN(result, EvalStepPositional(step, context));
    if (top_level) {
      trace.description = ToString(step) + explain::kPositionalSuffix;
      if (dispatch.Pooled()) {
        // The naive engine reads resident columns; disk experiments
        // must not mistake its steps for IO-charged ones.
        trace.description += explain::kBypassesPoolSuffix;
      }
      trace.stats.context_size = context.size();
      trace.stats.result_size = result.size();
      trace.millis = timer.ElapsedMillis();
      trace.op = plan.op;
      trace.estimated_rows = plan.estimated_rows;
      trace_.push_back(std::move(trace));
    }
    return result;
  }

  const bool staircase_axis = IsStaircaseAxis(step.axis);
  const std::optional<TagId>& tag = plan.tag;

  if (options_.engine != EngineMode::kStaircase) {
    // Naive engine: per-context evaluation with sort + unique (the
    // "standard RDBMS join algorithms" route of [8]), per-node filter.
    SJ_ASSIGN_OR_RETURN(const DocTable* edoc, EffectiveDoc());
    SJ_ASSIGN_OR_RETURN(result, NaiveAxisStep(*edoc, context, step.axis,
                                              &stats));
    trace.description = ToString(step) + explain::kPerContext;
    if (step.test.kind != NodeTestKind::kAnyNode) {
      result = FilterByTest(*edoc, step, result);
    }
  } else if (plan.needs_tag && !tag.has_value()) {
    // Before any evaluation, positional or not: a never-interned name
    // is statically empty.
    trace.description = ToString(step) + explain::kEmptyUnknownTag;
    result.clear();
  } else if (plan.positional) {
    // Set-at-a-time positional rank join: one backend cursor pass
    // builds every context node's group (core/axis_impl.h), predicates
    // rank within each group. Every candidate read is charged to the
    // backend -- this retired the per-context bypass.
    SJ_ASSIGN_OR_RETURN(
        internal::PositionalGroups groups,
        dispatch.PositionalAxis(context, step.axis,
                                MakeAxisNodeTest(step, tag), &stats));
    std::vector<std::optional<bool>> absolute_verdict(step.predicates.size());
    NodeSequence collected;
    for (size_t g = 0; g + 1 < groups.offsets.size(); ++g) {
      NodeSequence axis_nodes(groups.nodes.begin() + groups.offsets[g],
                              groups.nodes.begin() + groups.offsets[g + 1]);
      if (IsReverseAxis(step.axis)) {
        std::reverse(axis_nodes.begin(), axis_nodes.end());
      }
      SJ_ASSIGN_OR_RETURN(
          axis_nodes,
          RankWithinGroup(step, std::move(axis_nodes), &absolute_verdict));
      collected.insert(collected.end(), axis_nodes.begin(), axis_nodes.end());
    }
    std::sort(collected.begin(), collected.end());
    collected.erase(std::unique(collected.begin(), collected.end()),
                    collected.end());
    result = std::move(collected);
    trace.description = ToString(step) + explain::kVia + dispatch.Label() +
                        std::string(AxisName(step.axis)) +
                        explain::kPositionalRankJoin +
                        (dispatch.Pooled() ? explain::kBufferPoolSuffix : "");
    stats.result_size = result.size();
    if (top_level) {
      trace.stats = stats;
      trace.millis = timer.ElapsedMillis();
      trace.op = plan.op;
      trace.estimated_rows = plan.estimated_rows;
      if (count_faults) {
        trace.pool_faults = options_.pool->stats().faults - faults_before;
      }
      trace_.push_back(std::move(trace));
    }
    return result;
  } else if (staircase_axis) {
    if (plan.pushdown) {
      // The unified fragment join over the backend's cursor: the
      // pushed-down step's fragment reads AND its context postorder
      // reads are charged to the step's backend (options_.pool when
      // pool-backed). The fragment already applies the name test.
      SJ_ASSIGN_OR_RETURN(
          result, dispatch.PushdownView(*tag, context, step.axis, &stats));
      trace.description = ToString(step) + explain::kVia + dispatch.Label() +
                          explain::kPushdownOpen + step.test.name +
                          explain::kPushdownClose;
    } else {
      // The unified kernels over the backend's cursor: the same join,
      // IO-conscious when pool-backed. stats.workers reports what
      // actually ran -- the parallel driver falls back to the serial
      // join for small contexts, degenerate axes, or undersized pools.
      SJ_ASSIGN_OR_RETURN(result,
                          dispatch.Staircase(context, step.axis, &stats));
      trace.description =
          ToString(step) + explain::kVia +
          (stats.workers > 1 ? std::string(explain::kParallelPrefix)
                             : std::string()) +
          dispatch.Label() + explain::kStaircaseJoin +
          (stats.workers > 1
               ? explain::kWorkersOpen + std::to_string(stats.workers) +
                     explain::kWorkersClose
               : (dispatch.Pooled() ? std::string(explain::kBufferPoolSuffix)
                                    : std::string()));
      if (step.test.kind != NodeTestKind::kAnyNode) {
        // The node-test pass reads kind/tag through the step's backend
        // cursor, so even the filter is charged to the pool on the
        // pool-backed backends.
        SJ_ASSIGN_OR_RETURN(
            result, dispatch.Filter(result, MakeAxisNodeTest(step, tag)));
      }
    }
  } else {
    // Non-staircase axis: the set-at-a-time cursor kernels with the
    // node test folded into the scan -- the per-context NaiveAxisStep
    // is a baseline only (positional predicates excepted).
    SJ_ASSIGN_OR_RETURN(
        result, dispatch.AxisCursor(context, step.axis,
                                    MakeAxisNodeTest(step, tag), &stats));
    trace.description = ToString(step) + explain::kVia + dispatch.Label() +
                        std::string(AxisName(step.axis)) +
                        explain::kAxisCursorJoin +
                        (dispatch.Pooled() ? explain::kBufferPoolSuffix : "");
  }

  SJ_ASSIGN_OR_RETURN(result, ApplyPredicates(step, std::move(result)));

  if (top_level) {
    stats.result_size = result.size();
    trace.stats = stats;
    trace.millis = timer.ElapsedMillis();
    trace.op = plan.op;
    trace.estimated_rows = plan.estimated_rows;
    if (count_faults) {
      trace.pool_faults = options_.pool->stats().faults - faults_before;
    }
    trace_.push_back(std::move(trace));
  }
  return result;
}

std::string ExplainTrace(const std::vector<StepTrace>& trace) {
  std::string out;
  for (size_t i = 0; i < trace.size(); ++i) {
    const StepTrace& t = trace[i];
    out += explain::kStepPrefix + std::to_string(i + 1) + explain::kStepColon +
           t.description + "\n";
    out += explain::kStatContext + std::to_string(t.stats.context_size) +
           explain::kStatPruned + std::to_string(t.stats.pruned_context_size) +
           explain::kStatScanned + std::to_string(t.stats.nodes_scanned) +
           explain::kStatCopied + std::to_string(t.stats.nodes_copied) +
           explain::kStatSkipped + std::to_string(t.stats.nodes_skipped) +
           explain::kStatResult + std::to_string(t.stats.result_size) +
           explain::kStatEst + std::to_string(t.estimated_rows) +
           explain::kStatAct + std::to_string(t.stats.result_size) +
           explain::kStatMillisOpen + std::to_string(t.millis) +
           explain::kStatMillisClose + "\n";
  }
  return out;
}

std::string Evaluator::ExplainLastQuery() const { return ExplainTrace(trace_); }

}  // namespace sj::xpath
