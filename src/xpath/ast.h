// XPath AST for the location-path fragment the accelerator evaluates.
//
// Supported: absolute/relative location paths, all axes of core/axis.h,
// name tests (incl. '*'), kind tests (node(), text(), comment(),
// processing-instruction([target])), existence predicates `[rel-path]`,
// and the abbreviations `@`, `.`, `..`, `//`.

#ifndef STAIRJOIN_XPATH_AST_H_
#define STAIRJOIN_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "core/axis.h"

namespace sj::xpath {

/// What a step's node test accepts.
enum class NodeTestKind : uint8_t {
  kName,     ///< element/attribute/PI name, e.g. `bidder` or `@id`
  kAnyName,  ///< `*`: any node of the axis' principal node kind
  kAnyNode,  ///< `node()`
  kText,     ///< `text()`
  kComment,  ///< `comment()`
  kPi,       ///< `processing-instruction()` with optional target
};

/// A step's node test.
struct NodeTest {
  NodeTestKind kind = NodeTestKind::kAnyNode;
  /// Name for kName, optional target for kPi; empty otherwise.
  std::string name;
};

struct LocationPath;

/// A step predicate: `[rel-path]` (existence), `[N]` (position within the
/// step's axis order, 1-based), or `[last()]`.
struct Predicate {
  enum class Kind : uint8_t { kExists, kPosition, kLast };
  Kind kind = Kind::kExists;
  /// The predicate path (kExists only).
  std::unique_ptr<LocationPath> path;
  /// 1-based position (kPosition only).
  uint32_t position = 0;

  Predicate();
  ~Predicate();
  Predicate(Predicate&&) noexcept;
  Predicate& operator=(Predicate&&) noexcept;
  Predicate(const Predicate& other);
  Predicate& operator=(const Predicate& other);
};

/// One location step: axis :: node-test predicate*.
struct Step {
  Axis axis = Axis::kChild;
  NodeTest test;
  /// Predicates, applied in order. Positional predicates follow the axis
  /// direction (reverse axes count from the context node outward).
  std::vector<Predicate> predicates;
};

/// A location path; absolute paths start at the document element.
struct LocationPath {
  bool absolute = false;
  std::vector<Step> steps;
};

/// A union of location paths: `p1 | p2 | ...`.
struct UnionExpr {
  std::vector<LocationPath> branches;
};

/// Unparses a path into canonical (unabbreviated) XPath syntax.
std::string ToString(const LocationPath& path);

/// Unparses one step.
std::string ToString(const Step& step);

/// Unparses one predicate (including the brackets).
std::string ToString(const Predicate& pred);

/// Unparses a union expression.
std::string ToString(const UnionExpr& expr);

}  // namespace sj::xpath

#endif  // STAIRJOIN_XPATH_AST_H_
