// The cost model behind the planner: cardinality estimates from
// statistics the build already has, and page-cost formulas for every
// operator the evaluator can choose between.
//
// The estimator is fed three inputs, none of which require a statistics
// pass of their own:
//   * the document size (node count of the bound / merged document),
//   * the per-tag fragment sizes -- the TagIndex keeps one pre/post
//     fragment per element tag, so |fragment(t)| IS the exact number of
//     t-tagged nodes. On an edited snapshot the counts are read through
//     the overlay's merged dictionary (BackendDispatch::TagCount), so
//     tags first introduced by a delta get their real counts instead of
//     a fallback to document size,
//   * DocStatistics: the 1-byte level column folded into a level
//     histogram plus a per-tag level spread, collected in one O(doc)
//     pass at Database open (api/database.cc BuildImages).
//
// Costs are expressed in estimated page-fault equivalents of the paged
// image layout (storage/paged_doc.h: u32 columns pack kCostRanksPerPage
// ranks per page, byte columns pack kCostBytesPerPage), scaled by a
// per-backend unit -- resident reads are cheap relative to the
// per-context probe work, compressed pages amortize more ranks, paged
// pages are the reference. Every cost constant lives in THIS header and
// nowhere else: sj-lint (tools/lint/sj_lint.py, rule cost-literal) fails
// the build when a cost-constant definition appears in another
// src/xpath/ file, so the planner's arithmetic cannot fork silently.
//
// All estimates are deterministic in (statistics, options): compiled
// plans and the dynamic per-step path derive identical numbers, which is
// what keeps cached and uncached EXPLAIN traces byte-identical.

#ifndef STAIRJOIN_XPATH_COST_MODEL_H_
#define STAIRJOIN_XPATH_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/axis.h"
#include "encoding/doc_table.h"

namespace sj::xpath {

/// Whether the planner's estimate-driven operator choice is active.
enum class CostModelMode : uint8_t {
  kAuto,  ///< estimates pick the operators (PlanHints default)
  kOff,   ///< legacy behavior: the static pushdown_selectivity threshold
};

/// Document-level statistics, collected once per image build (one O(doc)
/// pass over the level/tag columns) and shared read-only by every
/// session over those images.
struct DocStatistics {
  /// Node count of the document the statistics were collected from.
  uint64_t doc_size = 0;
  /// level_histogram[l] = nodes at depth l. The level column is one
  /// byte, so 256 buckets cover its whole range.
  std::array<uint64_t, 256> level_histogram{};
  /// Deepest populated level.
  uint8_t max_level = 0;
  /// Per-tag node counts, indexed by TagId of the base dictionary.
  std::vector<uint64_t> tag_counts;
  /// Per-tag level spread: the depth band [tag_min_level[t],
  /// tag_max_level[t]] every t-tagged node lives in. Lets the estimator
  /// zero out steps whose axis level band cannot intersect the tag's
  /// (e.g. child::site below the root's children).
  std::vector<uint8_t> tag_min_level;
  std::vector<uint8_t> tag_max_level;

  /// One pass over the level/kind/tag columns.
  static DocStatistics Collect(const DocTable& doc);
};

/// Page math of the paged image layout (storage/paged_doc.h): u32
/// columns (post/parent/tag, fragment pre/post) pack this many ranks per
/// page; byte columns (kind/level) pack kCostBytesPerPage.
inline constexpr uint64_t kCostRanksPerPage = 2048;
inline constexpr uint64_t kCostBytesPerPage = 8192;

// --- cost constants (sj-lint rule cost-literal fences them to this file) ----

/// Per-backend cost of touching one page-equivalent of column data.
/// Paged is the reference unit (one page == one potential fault).
inline constexpr double kPagedPageCost = 1.0;
/// Resident column reads never fault; the unit prices the scan's CPU
/// relative to the per-context probe work, which does not shrink.
inline constexpr double kMemoryPageCost = 0.1;
/// Block-compressed columns amortize ~4x more ranks per faulted page
/// (bench_compressed_columns: 3.4-7.1x fewer faults at equal pool size).
inline constexpr double kCompressedPageCost = 0.25;
/// CPU charged per pruned context node by the fragment pushdown join's
/// fence search: a ~log2(|fragment|) binary search over (mostly
/// pool-resident) fragment pages, priced in page-equivalents of scan
/// work (~16 of the 2048 ranks a u32 page holds). Deliberately NOT
/// scaled by the backend unit -- probes are compute, not faults. This
/// is the term that makes pushdown LOSE on large contexts: the doc-scan
/// staircase join shares one pass across the whole context, the
/// fragment join probes per context node.
inline constexpr double kPushdownProbeCost = 0.0078125;  // 1/128
/// Cursor-open cost per context frame of the non-staircase axis kernels
/// (subtree-end read + first candidate pin).
inline constexpr double kAxisCursorProbeCost = 1.0;
/// Per-level open cost of the holistic twig join's fragment cursors.
inline constexpr double kTwigLevelOpenCost = 2.0;
/// Selectivity guess of one existence predicate ([pred] halves the
/// step's estimate; positional predicates clamp to one row per context).
inline constexpr double kExistsPredicateSelectivity = 0.5;

/// A chained per-step estimate: output cardinality plus the level band
/// the output rows live in (the band is what makes child steps sharp --
/// a tag whose spread misses the band estimates to zero).
struct ContextEstimate {
  double rows = 1.0;
  int level_lo = 0;
  int level_hi = 0;
};

/// \brief Estimates per-step output cardinality and per-operator page
/// cost. Cheap to construct (borrows the statistics); one instance
/// lives for the duration of one PlanPath walk.
class CardinalityEstimator {
 public:
  /// `stats` may be null (a raw Evaluator without a Database): the
  /// estimator then falls back to coarse document-size bounds. The
  /// per-tag counts always come through `tag_count` -- on an edited
  /// snapshot that callback reads the overlay's MERGED fragment sizes,
  /// never the stale base statistics.
  CardinalityEstimator(const DocStatistics* stats, uint64_t logical_size,
                       double page_cost_unit,
                       std::function<uint64_t(TagId)> tag_count)
      : stats_(stats),
        n_(logical_size),
        unit_(page_cost_unit),
        tag_count_(std::move(tag_count)) {}

  /// The absolute-path starting point: one row (the document element)
  /// at level 0.
  ContextEstimate Root() const { return ContextEstimate{1.0, 0, 0}; }

  /// Estimated output of one axis step over `in` context rows.
  /// `tag` carries the interned tag when the step's node test names one
  /// (kNoTag = no name test / test not tag-shaped).
  ContextEstimate EstimateStep(const ContextEstimate& in, Axis axis,
                               TagId tag) const;

  /// Estimate after one predicate: positional predicates keep at most
  /// one row per context node; existence predicates apply
  /// kExistsPredicateSelectivity.
  double EstimatePredicate(double rows, double context_rows,
                           bool positional) const;

  // --- per-operator page costs (same unit across operators) -----------------

  /// Full staircase join over the doc columns + node-test filter pass:
  /// post+level over the covered region, kind+tag over the axis output.
  double StaircaseCost(const ContextEstimate& in, Axis axis,
                       bool name_filter) const;

  /// Staircase join over the tag fragment: the fragment pre+post pages
  /// the context regions overlap (scatter-bounded, at most the whole
  /// fragment) plus one fence probe per context node.
  double PushdownCost(const ContextEstimate& in, TagId tag) const;

  /// Non-staircase axis cursor: one frame per context node, candidate
  /// kind reads over the estimated axis output.
  double AxisCursorCost(const ContextEstimate& in, Axis axis) const;

  /// Holistic twig collapse over k fragment levels.
  double TwigCost(const std::vector<TagId>& level_tags) const;

  /// Positional rank join: the axis-cursor scan without covered-context
  /// pruning (positions are per-context-node, so every frame scans).
  double PositionalCost(const ContextEstimate& in, Axis axis) const;

  /// Number of t-tagged nodes (merged count under an overlay).
  uint64_t TagCount(TagId tag) const {
    return tag == kNoTag ? 0 : tag_count_(tag);
  }

  uint64_t doc_size() const { return n_; }
  double page_cost_unit() const { return unit_; }

 private:
  /// Nodes strictly deeper than `level` (histogram; n-1 without stats).
  double NodesBelow(int level) const;
  /// Nodes within levels [lo, hi] (histogram; coarse without stats).
  double NodesAt(int lo, int hi) const;
  /// Fraction of the level band's population the context covers.
  double Coverage(const ContextEstimate& in) const;
  /// Whether tag `t`'s level spread can intersect [lo, hi]. Tags the
  /// statistics never saw (fresh overlay tags, null stats) are assumed
  /// to intersect -- unknown spread must widen estimates, not zero them.
  bool SpreadIntersects(TagId t, int lo, int hi) const;
  /// Pages of a u32 column slice of `ranks` entries.
  static double PagesU32(double ranks);
  /// Pages of a byte column slice of `ranks` entries.
  static double PagesU8(double ranks);

  const DocStatistics* stats_;
  uint64_t n_;
  double unit_;
  std::function<uint64_t(TagId)> tag_count_;
};

/// Rounds an estimate for display (EXPLAIN est=N, PlannedStep).
inline uint64_t RoundedEstimate(double rows) {
  if (rows <= 0.0) return 0;
  return static_cast<uint64_t>(rows + 0.5);
}

}  // namespace sj::xpath

#endif  // STAIRJOIN_XPATH_COST_MODEL_H_
