#include "xpath/cost_model.h"

#include <algorithm>
#include <cmath>

namespace sj::xpath {

DocStatistics DocStatistics::Collect(const DocTable& doc) {
  DocStatistics s;
  s.doc_size = doc.size();
  const size_t dict = doc.tags().size();
  s.tag_counts.assign(dict, 0);
  s.tag_min_level.assign(dict, 255);
  s.tag_max_level.assign(dict, 0);
  const auto levels = doc.levels();
  const auto tags = doc.tags_column();
  for (size_t i = 0; i < levels.size(); ++i) {
    const uint8_t lvl = levels[i];
    ++s.level_histogram[lvl];
    s.max_level = std::max(s.max_level, lvl);
    const TagId t = tags[i];
    if (t != kNoTag && t < dict) {
      ++s.tag_counts[t];
      s.tag_min_level[t] = std::min(s.tag_min_level[t], lvl);
      s.tag_max_level[t] = std::max(s.tag_max_level[t], lvl);
    }
  }
  return s;
}

double CardinalityEstimator::PagesU32(double ranks) {
  if (ranks <= 0.0) return 0.0;
  return std::ceil(ranks / static_cast<double>(kCostRanksPerPage));
}

double CardinalityEstimator::PagesU8(double ranks) {
  if (ranks <= 0.0) return 0.0;
  return std::ceil(ranks / static_cast<double>(kCostBytesPerPage));
}

double CardinalityEstimator::NodesBelow(int level) const {
  if (stats_ == nullptr) {
    return std::max(0.0, static_cast<double>(n_) - 1.0);
  }
  double sum = 0.0;
  for (int l = level + 1; l <= stats_->max_level; ++l) {
    sum += static_cast<double>(stats_->level_histogram[static_cast<size_t>(l)]);
  }
  return sum;
}

double CardinalityEstimator::NodesAt(int lo, int hi) const {
  if (lo > hi) return 0.0;
  if (stats_ == nullptr) return static_cast<double>(n_);
  lo = std::max(lo, 0);
  hi = std::min(hi, static_cast<int>(stats_->max_level));
  double sum = 0.0;
  for (int l = lo; l <= hi; ++l) {
    sum += static_cast<double>(stats_->level_histogram[static_cast<size_t>(l)]);
  }
  return sum;
}

double CardinalityEstimator::Coverage(const ContextEstimate& in) const {
  const double band = NodesAt(in.level_lo, in.level_hi);
  if (band <= 0.0) return in.rows > 0.0 ? 1.0 : 0.0;
  return std::min(1.0, in.rows / band);
}

bool CardinalityEstimator::SpreadIntersects(TagId t, int lo, int hi) const {
  if (stats_ == nullptr || t == kNoTag ||
      static_cast<size_t>(t) >= stats_->tag_min_level.size()) {
    // Unknown spread (no statistics, or a tag the base dictionary never
    // saw -- e.g. introduced by an overlay edit): assume it intersects.
    return true;
  }
  if (stats_->tag_counts[t] == 0) return true;  // dict entry, no nodes seen
  const int t_lo = stats_->tag_min_level[t];
  const int t_hi = stats_->tag_max_level[t];
  return t_lo <= hi && lo <= t_hi;
}

ContextEstimate CardinalityEstimator::EstimateStep(const ContextEstimate& in,
                                                   Axis axis, TagId tag) const {
  const int max_lvl =
      stats_ != nullptr ? static_cast<int>(stats_->max_level) : 255;
  const double cov = Coverage(in);
  // Every output row of a name-tested step carries the tag, so the
  // output band narrows to the tag's level spread -- this is what keeps
  // Coverage meaningful down a chain of steps (a band as wide as the
  // document would dilute the next step's coverage to ~1/n).
  const auto narrow_to_spread = [this, tag](ContextEstimate* e) {
    if (stats_ == nullptr || tag == kNoTag ||
        static_cast<size_t>(tag) >= stats_->tag_min_level.size() ||
        stats_->tag_counts[tag] == 0) {
      return;
    }
    e->level_lo = std::max(e->level_lo,
                           static_cast<int>(stats_->tag_min_level[tag]));
    e->level_hi = std::min(e->level_hi,
                           static_cast<int>(stats_->tag_max_level[tag]));
  };
  ContextEstimate out;
  switch (axis) {
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      out.level_lo =
          axis == Axis::kDescendantOrSelf ? in.level_lo : in.level_lo + 1;
      out.level_hi = max_lvl;
      if (tag != kNoTag) {
        out.rows = SpreadIntersects(tag, out.level_lo, out.level_hi)
                       ? static_cast<double>(TagCount(tag)) * cov
                       : 0.0;
      } else {
        out.rows = NodesBelow(in.level_lo) * cov;
        if (axis == Axis::kDescendantOrSelf) out.rows += in.rows;
      }
      break;
    }
    case Axis::kChild: {
      out.level_lo = in.level_lo + 1;
      out.level_hi = in.level_hi + 1;
      const double band = NodesAt(out.level_lo, out.level_hi);
      if (tag != kNoTag) {
        out.rows = SpreadIntersects(tag, out.level_lo, out.level_hi)
                       ? static_cast<double>(TagCount(tag)) * cov
                       : 0.0;
        out.rows = std::min(out.rows, band);
      } else {
        out.rows = band * cov;
      }
      break;
    }
    case Axis::kAttribute: {
      out.level_lo = in.level_lo + 1;
      out.level_hi = in.level_hi + 1;
      // No attribute-count statistic; assume about one attribute per
      // context element.
      out.rows = in.rows;
      break;
    }
    case Axis::kParent: {
      out.level_lo = std::max(0, in.level_lo - 1);
      out.level_hi = std::max(0, in.level_hi - 1);
      out.rows = std::min(in.rows, NodesAt(out.level_lo, out.level_hi));
      break;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      out.level_lo = 0;
      out.level_hi =
          axis == Axis::kAncestorOrSelf ? in.level_hi : in.level_hi - 1;
      out.level_hi = std::max(0, out.level_hi);
      // Ancestor chains dedupe heavily: bounded by every node above the
      // context band and by depth x context size.
      double chain = in.rows * std::max(1, in.level_hi);
      if (axis == Axis::kAncestorOrSelf) chain += in.rows;
      out.rows = std::min(chain, NodesAt(out.level_lo, out.level_hi));
      break;
    }
    case Axis::kFollowing:
    case Axis::kPreceding: {
      out.level_lo = 0;
      out.level_hi = max_lvl;
      const double rest =
          std::max(0.0, static_cast<double>(n_) - in.rows) * 0.5;
      out.rows = tag != kNoTag
                     ? std::min(static_cast<double>(TagCount(tag)), rest)
                     : rest;
      break;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      out.level_lo = in.level_lo;
      out.level_hi = in.level_hi;
      const double band = NodesAt(out.level_lo, out.level_hi);
      double base = std::min(std::max(0.0, band - in.rows), in.rows * 4.0);
      if (tag != kNoTag) {
        base = SpreadIntersects(tag, out.level_lo, out.level_hi)
                   ? std::min(base, static_cast<double>(TagCount(tag)))
                   : 0.0;
      }
      out.rows = base;
      break;
    }
    case Axis::kSelf: {
      out.level_lo = in.level_lo;
      out.level_hi = in.level_hi;
      if (tag != kNoTag) {
        out.rows = SpreadIntersects(tag, out.level_lo, out.level_hi)
                       ? std::min(in.rows,
                                  static_cast<double>(TagCount(tag)) * cov)
                       : 0.0;
      } else {
        out.rows = in.rows;
      }
      break;
    }
  }
  narrow_to_spread(&out);
  out.rows = std::max(0.0, std::min(out.rows, static_cast<double>(n_)));
  out.level_lo = std::clamp(out.level_lo, 0, 255);
  out.level_hi = std::clamp(out.level_hi, out.level_lo, 255);
  return out;
}

double CardinalityEstimator::EstimatePredicate(double rows, double context_rows,
                                               bool positional) const {
  if (positional) return std::min(rows, context_rows);
  return rows * kExistsPredicateSelectivity;
}

double CardinalityEstimator::StaircaseCost(const ContextEstimate& in, Axis axis,
                                           bool name_filter) const {
  // The join scans post + level over the covered region (estimated by the
  // untagged axis output); the name-test filter re-reads kind + tag over
  // the same rows. The region pages assume contiguity, so scattered
  // contexts add up to one page per segment the SkipTo scan reopens --
  // bounded by the whole column, which a staircase join never scans more
  // than once (paper Alg. 3/4 pruning).
  const double region = EstimateStep(in, axis, kNoTag).rows;
  const double n = static_cast<double>(n_);
  const double u32 = std::min(PagesU32(n), PagesU32(region) + in.rows);
  const double u8 = std::min(PagesU8(n), PagesU8(region) + in.rows);
  double cost = unit_ * (u32 + u8);
  if (name_filter) cost += unit_ * (u32 + u8);
  return cost;
}

double CardinalityEstimator::PushdownCost(const ContextEstimate& in,
                                          TagId tag) const {
  // Fragment pre + post columns, plus a fence probe per context node.
  // The fence-skipping join touches only the fragment pages overlapping
  // the context regions (estimated by the step's own output), scattered
  // like the staircase scan -- and never more than the whole fragment.
  const double f = static_cast<double>(TagCount(tag));
  const double hits = EstimateStep(in, Axis::kDescendant, tag).rows;
  const double full = 2.0 * PagesU32(f);
  const double touched = std::min(full, 2.0 * (PagesU32(hits) + in.rows));
  return unit_ * touched + kPushdownProbeCost * in.rows;
}

double CardinalityEstimator::AxisCursorCost(const ContextEstimate& in,
                                            Axis axis) const {
  const double out = EstimateStep(in, axis, kNoTag).rows;
  return kAxisCursorProbeCost * in.rows +
         unit_ * (PagesU32(out) + PagesU8(out));
}

double CardinalityEstimator::TwigCost(
    const std::vector<TagId>& level_tags) const {
  double cost = kTwigLevelOpenCost * static_cast<double>(level_tags.size());
  for (TagId t : level_tags) {
    cost += unit_ * 2.0 * PagesU32(static_cast<double>(TagCount(t)));
  }
  return cost;
}

double CardinalityEstimator::PositionalCost(const ContextEstimate& in,
                                            Axis axis) const {
  // Same scan as the axis cursor, but covered-context pruning cannot
  // apply (ranks are per context node), so every frame pays its probe.
  const double out = EstimateStep(in, axis, kNoTag).rows;
  return kAxisCursorProbeCost * in.rows +
         unit_ * (PagesU32(out) + PagesU8(out));
}

}  // namespace sj::xpath
