#include "xpath/parser.h"

#include <cctype>
#include <string>

namespace sj::xpath {
namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

struct AxisSpelling {
  std::string_view name;
  Axis axis;
};

// Longest spellings first so that "ancestor-or-self" wins over "ancestor".
constexpr AxisSpelling kAxes[] = {
    {"ancestor-or-self", Axis::kAncestorOrSelf},
    {"descendant-or-self", Axis::kDescendantOrSelf},
    {"following-sibling", Axis::kFollowingSibling},
    {"preceding-sibling", Axis::kPrecedingSibling},
    {"ancestor", Axis::kAncestor},
    {"descendant", Axis::kDescendant},
    {"following", Axis::kFollowing},
    {"preceding", Axis::kPreceding},
    {"attribute", Axis::kAttribute},
    {"parent", Axis::kParent},
    {"child", Axis::kChild},
    {"self", Axis::kSelf},
};

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<LocationPath> Parse() {
    SJ_ASSIGN_OR_RETURN(LocationPath path, ParsePath());
    SkipSpace();
    if (!AtEnd()) return Error("trailing characters after path");
    return path;
  }

  Result<UnionExpr> ParseUnion() {
    UnionExpr expr;
    for (;;) {
      SJ_ASSIGN_OR_RETURN(LocationPath path, ParsePath());
      expr.branches.push_back(std::move(path));
      SkipSpace();
      if (!Consume("|")) break;
    }
    SkipSpace();
    if (!AtEnd()) return Error("trailing characters after union");
    return expr;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return AtEnd() ? '\0' : input_[pos_]; }

  bool Consume(std::string_view token) {
    if (!input_.substr(pos_).starts_with(token)) return false;
    pos_ += token.size();
    return true;
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  Status Error(std::string msg) const {
    return Status::ParseError("XPath, offset " + std::to_string(pos_) + ": " +
                              std::move(msg));
  }

  Result<std::string> ParseName() {
    SkipSpace();
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    // Allow one namespace-prefix colon (kept as part of the name).
    if (!AtEnd() && Peek() == ':' && pos_ + 1 < input_.size() &&
        input_[pos_ + 1] != ':' && IsNameStart(input_[pos_ + 1])) {
      ++pos_;
      while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  /// descendant-or-self::node() -- what '//' abbreviates.
  static Step DescendantOrSelfNode() {
    Step step;
    step.axis = Axis::kDescendantOrSelf;
    step.test.kind = NodeTestKind::kAnyNode;
    return step;
  }

  Result<LocationPath> ParsePath() {
    LocationPath path;
    SkipSpace();
    if (Consume("//")) {
      path.absolute = true;
      path.steps.push_back(DescendantOrSelfNode());
    } else if (Consume("/")) {
      path.absolute = true;
      SkipSpace();
      if (AtEnd()) return path;  // "/" alone: the document element
    }
    SJ_RETURN_NOT_OK(ParseRelative(&path));
    return path;
  }

  Status ParseRelative(LocationPath* path) {
    for (;;) {
      SJ_ASSIGN_OR_RETURN(Step step, ParseStep());
      path->steps.push_back(std::move(step));
      SkipSpace();
      if (Consume("//")) {
        path->steps.push_back(DescendantOrSelfNode());
        continue;
      }
      if (Consume("/")) continue;
      return Status::OK();
    }
  }

  Result<Step> ParseStep() {
    SkipSpace();
    Step step;
    if (Consume("..")) {
      step.axis = Axis::kParent;
      step.test.kind = NodeTestKind::kAnyNode;
      return step;
    }
    if (Peek() == '.' ) {
      ++pos_;
      step.axis = Axis::kSelf;
      step.test.kind = NodeTestKind::kAnyNode;
      return step;
    }
    if (Consume("@")) {
      step.axis = Axis::kAttribute;
    } else {
      // Try an explicit axis specifier.
      bool found = false;
      for (const AxisSpelling& spelling : kAxes) {
        if (input_.substr(pos_).starts_with(spelling.name) &&
            input_.substr(pos_ + spelling.name.size()).starts_with("::")) {
          pos_ += spelling.name.size() + 2;
          step.axis = spelling.axis;
          found = true;
          break;
        }
      }
      if (!found) step.axis = Axis::kChild;  // default axis
    }
    SJ_ASSIGN_OR_RETURN(step.test, ParseNodeTest());
    // Predicates.
    for (;;) {
      SkipSpace();
      if (!Consume("[")) break;
      SkipSpace();
      Predicate pred;
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        uint64_t n = 0;
        while (!AtEnd() &&
               std::isdigit(static_cast<unsigned char>(Peek()))) {
          n = n * 10 + static_cast<uint64_t>(Peek() - '0');
          if (n > 0xFFFFFFFFull) return Error("position out of range");
          ++pos_;
        }
        if (n == 0) return Error("positions are 1-based");
        pred.kind = Predicate::Kind::kPosition;
        pred.position = static_cast<uint32_t>(n);
      } else if (Consume("last()")) {
        pred.kind = Predicate::Kind::kLast;
      } else {
        SJ_ASSIGN_OR_RETURN(LocationPath path, ParsePath());
        if (path.steps.empty() && !path.absolute) {
          return Error("empty predicate");
        }
        pred.kind = Predicate::Kind::kExists;
        pred.path = std::make_unique<LocationPath>(std::move(path));
      }
      SkipSpace();
      if (!Consume("]")) return Error("expected ']'");
      step.predicates.push_back(std::move(pred));
    }
    return step;
  }

  Result<NodeTest> ParseNodeTest() {
    SkipSpace();
    NodeTest test;
    if (Consume("*")) {
      test.kind = NodeTestKind::kAnyName;
      return test;
    }
    if (Consume("node()")) {
      test.kind = NodeTestKind::kAnyNode;
      return test;
    }
    if (Consume("text()")) {
      test.kind = NodeTestKind::kText;
      return test;
    }
    if (Consume("comment()")) {
      test.kind = NodeTestKind::kComment;
      return test;
    }
    if (Consume("processing-instruction(")) {
      test.kind = NodeTestKind::kPi;
      SkipSpace();
      if (Peek() != ')') {
        SJ_ASSIGN_OR_RETURN(test.name, ParseName());
        SkipSpace();
      }
      if (!Consume(")")) return Error("expected ')'");
      return test;
    }
    test.kind = NodeTestKind::kName;
    SJ_ASSIGN_OR_RETURN(test.name, ParseName());
    return test;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<LocationPath> ParseXPath(std::string_view input) {
  Parser parser(input);
  return parser.Parse();
}

Result<UnionExpr> ParseXPathUnion(std::string_view input) {
  Parser parser(input);
  return parser.ParseUnion();
}

}  // namespace sj::xpath
