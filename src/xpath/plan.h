// The compiled form of a query: the parsed AST plus every per-step
// planning decision the evaluator would otherwise re-derive on each run.
//
// Evaluator::Compile walks a UnionExpr exactly the way EvalSteps walks
// it at execution time and freezes the outcome of each decision point:
// twig-run collapse (which step runs start a holistic twig join and
// over which fragment levels), positional-predicate detection, tag
// interning, and the pushdown choice of the cost model. Executing a
// CompiledPlan via Evaluator::Evaluate(plan, context) then takes the
// exact same code paths -- and produces byte-identical EXPLAIN traces --
// as evaluating the raw AST, minus the re-planning work.
//
// A CompiledPlan is immutable after Compile and self-contained (it owns
// a copy of the AST), so one plan is safely shared by any number of
// concurrent sessions: this is the value type of sj::Database's plan
// cache, the piece that lets a hot query skip parse and planning
// entirely.

#ifndef STAIRJOIN_XPATH_PLAN_H_
#define STAIRJOIN_XPATH_PLAN_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/tag_view.h"
#include "core/twig_join.h"
#include "xpath/ast.h"

namespace sj::xpath {

/// The operator the planner chose for one step (frozen into the plan,
/// surfaced structurally through sj::QueryResult::PlanSummary()).
enum class StepOperator : uint8_t {
  kStaircase,     ///< doc-scan staircase join (+ node-test filter)
  kPushdown,      ///< staircase join over the tag fragment
  kAxisCursor,    ///< non-staircase axis kernel (core/axis_impl.h)
  kTwig,          ///< holistic k-way twig join (starts a run)
  kTwigSubsumed,  ///< consumed by the preceding twig run
  kPositional,    ///< set-at-a-time positional rank join
  kPerContext,    ///< naive-engine per-context evaluation
  kEmpty,         ///< statically empty (unknown tag)
};

/// The analyzed form of one location step.
struct PlannedStep {
  /// >0: this step starts a twig run -- `twig_consumed` consecutive
  /// steps collapse into ONE holistic twig join (core/twig_join.h) over
  /// `twig_levels`; the per-step fields below are then unused.
  size_t twig_consumed = 0;
  std::vector<TwigLevel> twig_levels;
  /// Tag names, parallel to `twig_levels` (for EXPLAIN).
  std::vector<std::string> twig_names;

  /// At least one non-existence predicate: the step falls back to
  /// per-context evaluation.
  bool positional = false;
  /// The node test names a tag (kName, or kPi with a target).
  bool needs_tag = false;
  /// The interned tag; nullopt when `needs_tag` but the name was never
  /// interned (the step can only produce the empty sequence).
  std::optional<TagId> tag;
  /// Staircase name-test steps only: evaluate over the tag fragment
  /// (the cost model's call at compile time).
  bool pushdown = false;

  /// The operator the cost model chose (EXPLAIN / PlanSummary token).
  StepOperator op = StepOperator::kStaircase;
  /// The estimator's output-cardinality guess for this step, rounded.
  /// EXPLAIN prints it as "est=N" next to the actual row count.
  uint64_t estimated_rows = 0;
};

/// Planned steps of one union branch, index-parallel to
/// LocationPath::steps. Steps subsumed by a twig run keep a defaulted,
/// never-read slot so the two vectors stay aligned.
struct PlannedPath {
  std::vector<PlannedStep> steps;
};

/// One query's parsed and analyzed plan: the AST plus one PlannedPath
/// per union branch. Immutable after Evaluator::Compile.
struct CompiledPlan {
  UnionExpr expr;
  std::vector<PlannedPath> branches;
};

}  // namespace sj::xpath

#endif  // STAIRJOIN_XPATH_PLAN_H_
