#include "xpath/ast.h"

namespace sj::xpath {

Predicate::Predicate() = default;
Predicate::~Predicate() = default;
Predicate::Predicate(Predicate&&) noexcept = default;
Predicate& Predicate::operator=(Predicate&&) noexcept = default;

Predicate::Predicate(const Predicate& other)
    : kind(other.kind),
      path(other.path ? std::make_unique<LocationPath>(*other.path)
                      : nullptr),
      position(other.position) {}

Predicate& Predicate::operator=(const Predicate& other) {
  if (this != &other) {
    kind = other.kind;
    path = other.path ? std::make_unique<LocationPath>(*other.path) : nullptr;
    position = other.position;
  }
  return *this;
}

std::string ToString(const Predicate& pred) {
  switch (pred.kind) {
    case Predicate::Kind::kExists:
      return "[" + (pred.path ? ToString(*pred.path) : std::string()) + "]";
    case Predicate::Kind::kPosition:
      return "[" + std::to_string(pred.position) + "]";
    case Predicate::Kind::kLast:
      return "[last()]";
  }
  return "[?]";
}

std::string ToString(const Step& step) {
  std::string out(AxisName(step.axis));
  out += "::";
  switch (step.test.kind) {
    case NodeTestKind::kName:
      out += step.test.name;
      break;
    case NodeTestKind::kAnyName:
      out += "*";
      break;
    case NodeTestKind::kAnyNode:
      out += "node()";
      break;
    case NodeTestKind::kText:
      out += "text()";
      break;
    case NodeTestKind::kComment:
      out += "comment()";
      break;
    case NodeTestKind::kPi:
      out += "processing-instruction(";
      out += step.test.name;
      out += ")";
      break;
  }
  for (const Predicate& pred : step.predicates) {
    out += ToString(pred);
  }
  return out;
}

std::string ToString(const LocationPath& path) {
  std::string out;
  if (path.absolute) out += "/";
  for (size_t i = 0; i < path.steps.size(); ++i) {
    if (i > 0) out += "/";
    out += ToString(path.steps[i]);
  }
  return out;
}

std::string ToString(const UnionExpr& expr) {
  std::string out;
  for (size_t i = 0; i < expr.branches.size(); ++i) {
    if (i > 0) out += " | ";
    out += ToString(expr.branches[i]);
  }
  return out;
}

}  // namespace sj::xpath
