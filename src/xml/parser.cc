#include "xml/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "util/result.h"

namespace sj::xml {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Recursive-descent parser; recursion depth equals element nesting depth.
class Cursor {
 public:
  Cursor(std::string_view input, EventHandler* handler, ParseOptions options)
      : input_(input), handler_(handler), options_(options) {}

  Status Run() {
    SJ_RETURN_NOT_OK(handler_->StartDocument());
    SJ_RETURN_NOT_OK(SkipProlog());
    if (AtEnd() || Peek() != '<') return Error("expected document element");
    SJ_RETURN_NOT_OK(ParseElement());
    // Trailing misc: whitespace, comments, processing instructions.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) break;
      if (input_.substr(pos_).starts_with("<!--")) {
        SJ_RETURN_NOT_OK(ParseComment());
      } else if (Peek() == '<' && PeekAt(1) == '?') {
        SJ_RETURN_NOT_OK(ParseProcessingInstruction());
      } else {
        return Error("content after document element");
      }
    }
    return handler_->EndDocument();
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  bool Consume(std::string_view token) {
    if (!input_.substr(pos_).starts_with(token)) return false;
    for (size_t i = 0; i < token.size(); ++i) Advance();
    return true;
  }

  Status Error(std::string msg) const {
    return Status::ParseError(std::to_string(line_) + ":" +
                              std::to_string(column_) + ": " + std::move(msg));
  }

  void SkipWhitespace() {
    while (!AtEnd() && IsSpace(Peek())) Advance();
  }

  /// Skips an optional XML declaration, DOCTYPE, and leading misc content.
  Status SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (Consume("<?xml")) {
        while (!AtEnd() && !Consume("?>")) Advance();
        continue;
      }
      if (input_.substr(pos_).starts_with("<!DOCTYPE")) {
        int bracket_depth = 0;  // internal subsets nest in [ ]
        while (!AtEnd()) {
          char c = Peek();
          Advance();
          if (c == '[') ++bracket_depth;
          if (c == ']') --bracket_depth;
          if (c == '>' && bracket_depth <= 0) break;
        }
        continue;
      }
      if (input_.substr(pos_).starts_with("<!--")) {
        SJ_RETURN_NOT_OK(ParseComment());
        continue;
      }
      if (!AtEnd() && Peek() == '<' && PeekAt(1) == '?') {
        SJ_RETURN_NOT_OK(ParseProcessingInstruction());
        continue;
      }
      return Status::OK();
    }
  }

  Result<std::string_view> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return input_.substr(start, pos_ - start);
  }

  /// Resolves entity and character references in raw character data.
  Status DecodeText(std::string_view raw, std::string* out) {
    out->clear();
    out->reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out->push_back(raw[i]);
        ++i;
        continue;
      }
      size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out->push_back('<');
      } else if (entity == "gt") {
        out->push_back('>');
      } else if (entity == "amp") {
        out->push_back('&');
      } else if (entity == "quot") {
        out->push_back('"');
      } else if (entity == "apos") {
        out->push_back('\'');
      } else if (!entity.empty() && entity[0] == '#') {
        uint32_t code = 0;
        bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
        std::string_view digits = entity.substr(hex ? 2 : 1);
        if (digits.empty()) return Error("empty character reference");
        for (char d : digits) {
          uint32_t v;
          if (d >= '0' && d <= '9') {
            v = static_cast<uint32_t>(d - '0');
          } else if (hex && d >= 'a' && d <= 'f') {
            v = static_cast<uint32_t>(d - 'a' + 10);
          } else if (hex && d >= 'A' && d <= 'F') {
            v = static_cast<uint32_t>(d - 'A' + 10);
          } else {
            return Error("bad character reference &" + std::string(entity) +
                         ";");
          }
          code = code * (hex ? 16u : 10u) + v;
          if (code > 0x10FFFF) return Error("character reference out of range");
        }
        AppendUtf8(code, out);
      } else {
        return Error("unknown entity &" + std::string(entity) + ";");
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseComment() {
    if (!Consume("<!--")) return Error("expected comment");
    size_t start = pos_;
    while (!AtEnd()) {
      if (input_.substr(pos_).starts_with("-->")) {
        std::string_view body = input_.substr(start, pos_ - start);
        Consume("-->");
        return options_.emit_comments ? handler_->Comment(body) : Status::OK();
      }
      Advance();
    }
    return Error("unterminated comment");
  }

  Status ParseProcessingInstruction() {
    if (!Consume("<?")) return Error("expected processing instruction");
    SJ_ASSIGN_OR_RETURN(std::string_view target, ParseName());
    SkipWhitespace();
    size_t start = pos_;
    while (!AtEnd()) {
      if (input_.substr(pos_).starts_with("?>")) {
        std::string_view body = input_.substr(start, pos_ - start);
        Consume("?>");
        return options_.emit_processing_instructions
                   ? handler_->ProcessingInstruction(target, body)
                   : Status::OK();
      }
      Advance();
    }
    return Error("unterminated processing instruction");
  }

  Status ParseCdata() {
    if (!Consume("<![CDATA[")) return Error("expected CDATA section");
    size_t start = pos_;
    while (!AtEnd()) {
      if (input_.substr(pos_).starts_with("]]>")) {
        std::string_view body = input_.substr(start, pos_ - start);
        Consume("]]>");
        return body.empty() ? Status::OK() : handler_->Text(body);
      }
      Advance();
    }
    return Error("unterminated CDATA section");
  }

  Status ParseAttributes() {
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') return Status::OK();
      SJ_ASSIGN_OR_RETURN(std::string_view name, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
      Advance();
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '<') return Error("'<' in attribute value");
        Advance();
      }
      if (AtEnd()) return Error("unterminated attribute value");
      std::string_view raw = input_.substr(start, pos_ - start);
      Advance();  // closing quote
      SJ_RETURN_NOT_OK(DecodeText(raw, &scratch_));
      SJ_RETURN_NOT_OK(handler_->Attribute(name, scratch_));
    }
  }

  /// Parses one element: start tag, attributes, content, end tag.
  Status ParseElement() {
    Advance();  // '<'
    SJ_ASSIGN_OR_RETURN(std::string_view name, ParseName());
    // `name` views into the stable input buffer, so it survives recursion.
    SJ_RETURN_NOT_OK(handler_->StartElement(name));
    SJ_RETURN_NOT_OK(ParseAttributes());
    if (Peek() == '/') {
      Advance();
      if (AtEnd() || Peek() != '>') return Error("expected '>' after '/'");
      Advance();
      return handler_->EndElement(name);
    }
    Advance();  // '>'

    for (;;) {
      if (AtEnd()) {
        return Error("unterminated element <" + std::string(name) + ">");
      }
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          Advance();  // '<'
          Advance();  // '/'
          SJ_ASSIGN_OR_RETURN(std::string_view end_name, ParseName());
          SkipWhitespace();
          if (AtEnd() || Peek() != '>') return Error("expected '>'");
          Advance();
          if (end_name != name) {
            return Error("mismatched end tag </" + std::string(end_name) +
                         ">, expected </" + std::string(name) + ">");
          }
          return handler_->EndElement(name);
        }
        if (input_.substr(pos_).starts_with("<!--")) {
          SJ_RETURN_NOT_OK(ParseComment());
        } else if (input_.substr(pos_).starts_with("<![CDATA[")) {
          SJ_RETURN_NOT_OK(ParseCdata());
        } else if (PeekAt(1) == '?') {
          SJ_RETURN_NOT_OK(ParseProcessingInstruction());
        } else {
          SJ_RETURN_NOT_OK(ParseElement());
        }
        continue;
      }
      // Character data up to the next markup.
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') Advance();
      std::string_view raw = input_.substr(start, pos_ - start);
      SJ_RETURN_NOT_OK(DecodeText(raw, &scratch_));
      if (options_.skip_whitespace_text) {
        bool all_space = true;
        for (char c : scratch_) all_space = all_space && IsSpace(c);
        if (all_space) continue;
      }
      SJ_RETURN_NOT_OK(handler_->Text(scratch_));
    }
  }

  std::string_view input_;
  EventHandler* handler_;
  ParseOptions options_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  std::string scratch_;
};

}  // namespace

Status Parse(std::string_view input, EventHandler* handler,
             const ParseOptions& options) {
  if (handler == nullptr) {
    return Status::InvalidArgument("Parse: handler must not be null");
  }
  Cursor cursor(input, handler, options);
  return cursor.Run();
}

}  // namespace sj::xml
