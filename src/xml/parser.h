// Non-validating XML parser.
//
// Supports the XML subset XMark documents (and typical data-oriented XML)
// use: elements, attributes, character data with the five predefined
// entities plus numeric character references, CDATA sections, comments,
// processing instructions, an optional XML declaration and DOCTYPE (skipped).
// Namespace prefixes are kept as part of the name (no namespace processing),
// matching the paper's setting. Errors are reported with line/column.

#ifndef STAIRJOIN_XML_PARSER_H_
#define STAIRJOIN_XML_PARSER_H_

#include <string_view>

#include "util/status.h"
#include "xml/event_handler.h"

namespace sj::xml {

/// Parser configuration.
struct ParseOptions {
  /// When true, text consisting solely of whitespace between elements is
  /// dropped (data-oriented documents; XMark text is never pure whitespace).
  bool skip_whitespace_text = true;
  /// When false, comments are dropped instead of forwarded.
  bool emit_comments = true;
  /// When false, processing instructions are dropped instead of forwarded.
  bool emit_processing_instructions = true;
};

/// \brief Parses `input` and streams events to `handler`.
///
/// Returns ParseError (with 1-based line:column in the message) on malformed
/// input, or the first non-OK status the handler returns.
Status Parse(std::string_view input, EventHandler* handler,
             const ParseOptions& options = {});

}  // namespace sj::xml

#endif  // STAIRJOIN_XML_PARSER_H_
