// SAX-style event interface shared by the XML parser and the XMark-style
// generator: both drive an EventHandler, so the pre/post encoder can be fed
// either from parsed text or directly from synthesized events (without ever
// materializing multi-hundred-MB documents as strings).

#ifndef STAIRJOIN_XML_EVENT_HANDLER_H_
#define STAIRJOIN_XML_EVENT_HANDLER_H_

#include <string_view>

#include "util/status.h"

namespace sj::xml {

/// \brief Receiver of document structure events in document order.
///
/// Attribute events arrive between StartElement and any child content, in
/// the order the attributes appear. All string_views are only valid for the
/// duration of the call.
class EventHandler {
 public:
  virtual ~EventHandler() = default;

  /// Start of the document, before any node event.
  virtual Status StartDocument() { return Status::OK(); }
  /// End of the document, after all node events.
  virtual Status EndDocument() { return Status::OK(); }

  /// Opening tag `<name ...>` (or the element part of `<name/>`).
  virtual Status StartElement(std::string_view name) = 0;
  /// Matching close of the most recent open element.
  virtual Status EndElement(std::string_view name) = 0;
  /// Attribute `name="value"` of the element just started.
  virtual Status Attribute(std::string_view name, std::string_view value) = 0;
  /// Character data (entities already resolved; may be called repeatedly).
  virtual Status Text(std::string_view data) = 0;
  /// Comment `<!-- data -->`.
  virtual Status Comment(std::string_view data) { return Text(data); }
  /// Processing instruction `<?target data?>`.
  virtual Status ProcessingInstruction(std::string_view target,
                                       std::string_view data) {
    (void)target;
    return Text(data);
  }
};

}  // namespace sj::xml

#endif  // STAIRJOIN_XML_EVENT_HANDLER_H_
