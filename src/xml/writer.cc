#include "xml/writer.h"

namespace sj::xml {

Status TextWriter::StartDocument() { return Status::OK(); }

Status TextWriter::EndDocument() { return Status::OK(); }

void TextWriter::CloseStartTag() {
  if (tag_open_) {
    out_->push_back('>');
    tag_open_ = false;
  }
}

void TextWriter::Escape(std::string_view raw, bool in_attribute,
                        std::string* out) {
  for (char c : raw) {
    switch (c) {
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '&':
        out->append("&amp;");
        break;
      case '"':
        if (in_attribute) {
          out->append("&quot;");
        } else {
          out->push_back(c);
        }
        break;
      default:
        out->push_back(c);
    }
  }
}

Status TextWriter::StartElement(std::string_view name) {
  CloseStartTag();
  out_->push_back('<');
  out_->append(name);
  tag_open_ = true;
  return Status::OK();
}

Status TextWriter::EndElement(std::string_view name) {
  if (tag_open_) {
    out_->append("/>");
    tag_open_ = false;
  } else {
    out_->append("</");
    out_->append(name);
    out_->push_back('>');
  }
  return Status::OK();
}

Status TextWriter::Attribute(std::string_view name, std::string_view value) {
  if (!tag_open_) {
    return Status::InvalidArgument("TextWriter: attribute after content");
  }
  out_->push_back(' ');
  out_->append(name);
  out_->append("=\"");
  Escape(value, /*in_attribute=*/true, out_);
  out_->push_back('"');
  return Status::OK();
}

Status TextWriter::Text(std::string_view data) {
  CloseStartTag();
  Escape(data, /*in_attribute=*/false, out_);
  return Status::OK();
}

Status TextWriter::Comment(std::string_view data) {
  CloseStartTag();
  out_->append("<!--");
  out_->append(data);
  out_->append("-->");
  return Status::OK();
}

Status TextWriter::ProcessingInstruction(std::string_view target,
                                         std::string_view data) {
  CloseStartTag();
  out_->append("<?");
  out_->append(target);
  if (!data.empty()) {
    out_->push_back(' ');
    out_->append(data);
  }
  out_->append("?>");
  return Status::OK();
}

}  // namespace sj::xml
