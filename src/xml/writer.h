// EventHandler that serializes the event stream back to XML text.

#ifndef STAIRJOIN_XML_WRITER_H_
#define STAIRJOIN_XML_WRITER_H_

#include <string>
#include <vector>

#include "xml/event_handler.h"

namespace sj::xml {

/// \brief Streams events into an XML text buffer (with proper escaping).
///
/// Attribute events must arrive before any content of their element; the
/// writer keeps the start tag open until the first child/text/end event.
class TextWriter : public EventHandler {
 public:
  /// Writes into `out` (borrowed; must outlive the writer).
  explicit TextWriter(std::string* out) : out_(out) {}

  Status StartDocument() override;
  Status EndDocument() override;
  Status StartElement(std::string_view name) override;
  Status EndElement(std::string_view name) override;
  Status Attribute(std::string_view name, std::string_view value) override;
  Status Text(std::string_view data) override;
  Status Comment(std::string_view data) override;
  Status ProcessingInstruction(std::string_view target,
                               std::string_view data) override;

 private:
  void CloseStartTag();
  static void Escape(std::string_view raw, bool in_attribute,
                     std::string* out);

  std::string* out_;
  bool tag_open_ = false;
};

}  // namespace sj::xml

#endif  // STAIRJOIN_XML_WRITER_H_
