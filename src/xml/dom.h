// Minimal in-memory DOM.
//
// The DOM is not on the query fast path; it exists so that (a) tests have a
// tree-walking oracle to compare the staircase join evaluator against and
// (b) examples can serialize query results back to XML text.

#ifndef STAIRJOIN_XML_DOM_H_
#define STAIRJOIN_XML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"
#include "xml/event_handler.h"

namespace sj::xml {

/// Node categories (mirrors the XPath data model subset we support).
enum class DomKind : uint8_t {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction,
};

/// \brief A DOM node; children and attributes are owned by their parent.
struct DomNode {
  DomKind kind = DomKind::kElement;
  /// Element tag / attribute name / PI target; empty for text and comments.
  std::string name;
  /// Text content, attribute value, comment body or PI data.
  std::string value;
  DomNode* parent = nullptr;  ///< not owned; null for the document node
  /// Attribute nodes, in document order (elements only).
  std::vector<std::unique_ptr<DomNode>> attributes;
  /// Child nodes (elements, text, comments, PIs), in document order.
  std::vector<std::unique_ptr<DomNode>> children;
};

/// \brief Owns a document tree rooted at a kDocument node.
class DomDocument {
 public:
  DomDocument() : root_(std::make_unique<DomNode>()) {
    root_->kind = DomKind::kDocument;
  }

  /// The virtual document root (its children hold the document element).
  DomNode* root() { return root_.get(); }
  const DomNode* root() const { return root_.get(); }

  /// The document element, or null for an empty document.
  const DomNode* document_element() const {
    for (const auto& c : root_->children) {
      if (c->kind == DomKind::kElement) return c.get();
    }
    return nullptr;
  }

 private:
  std::unique_ptr<DomNode> root_;
};

/// \brief EventHandler that materializes a DomDocument.
class DomBuilder : public EventHandler {
 public:
  DomBuilder();

  Status StartDocument() override;
  Status EndDocument() override;
  Status StartElement(std::string_view name) override;
  Status EndElement(std::string_view name) override;
  Status Attribute(std::string_view name, std::string_view value) override;
  Status Text(std::string_view data) override;
  Status Comment(std::string_view data) override;
  Status ProcessingInstruction(std::string_view target,
                               std::string_view data) override;

  /// Yields the built document (call once, after a successful parse).
  std::unique_ptr<DomDocument> TakeDocument();

 private:
  std::unique_ptr<DomDocument> doc_;
  std::vector<DomNode*> stack_;
};

/// \brief Parses XML text into a DOM.
Result<std::unique_ptr<DomDocument>> ParseToDom(std::string_view input);

/// \brief Serializes a DOM subtree back to XML text (with escaping).
std::string Serialize(const DomNode& node);

/// \brief Serializes the whole document (children of the document node).
std::string Serialize(const DomDocument& doc);

}  // namespace sj::xml

#endif  // STAIRJOIN_XML_DOM_H_
