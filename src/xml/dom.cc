#include "xml/dom.h"

#include <sstream>

#include "xml/parser.h"

namespace sj::xml {

DomBuilder::DomBuilder() = default;

Status DomBuilder::StartDocument() {
  doc_ = std::make_unique<DomDocument>();
  stack_ = {doc_->root()};
  return Status::OK();
}

Status DomBuilder::EndDocument() {
  if (stack_.size() != 1) {
    return Status::Internal("DomBuilder: unbalanced document");
  }
  return Status::OK();
}

Status DomBuilder::StartElement(std::string_view name) {
  auto node = std::make_unique<DomNode>();
  node->kind = DomKind::kElement;
  node->name = std::string(name);
  node->parent = stack_.back();
  DomNode* raw = node.get();
  stack_.back()->children.push_back(std::move(node));
  stack_.push_back(raw);
  return Status::OK();
}

Status DomBuilder::EndElement(std::string_view name) {
  if (stack_.size() <= 1 || stack_.back()->name != name) {
    return Status::Internal("DomBuilder: mismatched EndElement");
  }
  stack_.pop_back();
  return Status::OK();
}

Status DomBuilder::Attribute(std::string_view name, std::string_view value) {
  if (stack_.size() <= 1) {
    return Status::Internal("DomBuilder: attribute outside element");
  }
  auto node = std::make_unique<DomNode>();
  node->kind = DomKind::kAttribute;
  node->name = std::string(name);
  node->value = std::string(value);
  node->parent = stack_.back();
  stack_.back()->attributes.push_back(std::move(node));
  return Status::OK();
}

Status DomBuilder::Text(std::string_view data) {
  auto node = std::make_unique<DomNode>();
  node->kind = DomKind::kText;
  node->value = std::string(data);
  node->parent = stack_.back();
  stack_.back()->children.push_back(std::move(node));
  return Status::OK();
}

Status DomBuilder::Comment(std::string_view data) {
  auto node = std::make_unique<DomNode>();
  node->kind = DomKind::kComment;
  node->value = std::string(data);
  node->parent = stack_.back();
  stack_.back()->children.push_back(std::move(node));
  return Status::OK();
}

Status DomBuilder::ProcessingInstruction(std::string_view target,
                                         std::string_view data) {
  auto node = std::make_unique<DomNode>();
  node->kind = DomKind::kProcessingInstruction;
  node->name = std::string(target);
  node->value = std::string(data);
  node->parent = stack_.back();
  stack_.back()->children.push_back(std::move(node));
  return Status::OK();
}

std::unique_ptr<DomDocument> DomBuilder::TakeDocument() {
  return std::move(doc_);
}

Result<std::unique_ptr<DomDocument>> ParseToDom(std::string_view input) {
  DomBuilder builder;
  Status st = Parse(input, &builder);
  if (!st.ok()) return st;
  return builder.TakeDocument();
}

namespace {

void EscapeInto(std::string_view raw, bool in_attribute, std::string* out) {
  for (char c : raw) {
    switch (c) {
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '&':
        out->append("&amp;");
        break;
      case '"':
        if (in_attribute) {
          out->append("&quot;");
        } else {
          out->push_back(c);
        }
        break;
      default:
        out->push_back(c);
    }
  }
}

void SerializeInto(const DomNode& node, std::string* out) {
  switch (node.kind) {
    case DomKind::kDocument:
      for (const auto& c : node.children) SerializeInto(*c, out);
      break;
    case DomKind::kElement: {
      out->push_back('<');
      out->append(node.name);
      for (const auto& a : node.attributes) {
        out->push_back(' ');
        out->append(a->name);
        out->append("=\"");
        EscapeInto(a->value, /*in_attribute=*/true, out);
        out->push_back('"');
      }
      if (node.children.empty()) {
        out->append("/>");
      } else {
        out->push_back('>');
        for (const auto& c : node.children) SerializeInto(*c, out);
        out->append("</");
        out->append(node.name);
        out->push_back('>');
      }
      break;
    }
    case DomKind::kAttribute:
      // Attributes serialize as part of their element.
      break;
    case DomKind::kText:
      EscapeInto(node.value, /*in_attribute=*/false, out);
      break;
    case DomKind::kComment:
      out->append("<!--");
      out->append(node.value);
      out->append("-->");
      break;
    case DomKind::kProcessingInstruction:
      out->append("<?");
      out->append(node.name);
      if (!node.value.empty()) {
        out->push_back(' ');
        out->append(node.value);
      }
      out->append("?>");
      break;
  }
}

}  // namespace

std::string Serialize(const DomNode& node) {
  std::string out;
  SerializeInto(node, &out);
  return out;
}

std::string Serialize(const DomDocument& doc) { return Serialize(*doc.root()); }

}  // namespace sj::xml
