// Merging cursors: the edited document as a DocAccessor / FragmentCursor.
//
// `DeltaDocAccessor<Base>` and `DeltaFragmentCursor<Base>` present the
// merged (base + overlay) document in dense LOGICAL pre/post ranks while
// satisfying the exact cursor concepts the core kernels are written
// against -- `core/staircase_impl.h`, `axis_impl.h`, `fragment_impl.h`
// and `twig_impl.h` run unmodified over an edited document. Reads that
// resolve to base ranks go through the wrapped backend accessor (and so
// keep charging the BufferPool on paged/compressed backends); reads that
// resolve to inserted nodes are resident array lookups in the Overlay.
//
// The Base cursor is constructed IN PLACE from forwarded constructor
// arguments: paged accessors own non-movable PageGuards, so the wrapper
// can never require moving one.

#ifndef STAIRJOIN_DELTA_DELTA_ACCESSOR_H_
#define STAIRJOIN_DELTA_DELTA_ACCESSOR_H_

#include <algorithm>
#include <cstdint>
#include <utility>

#include "core/doc_accessor.h"
#include "core/fragment_cursor.h"
#include "delta/overlay.h"

namespace sj::delta {

/// \brief DocAccessor over the merged document (see file comment).
///
/// Borrows the overlay (and whatever the base accessor borrows); both
/// must outlive the accessor. Errors surface through the base accessor's
/// sticky status; overlay reads are infallible.
template <typename Base>
class DeltaDocAccessor {
 public:
  template <typename... Args>
  explicit DeltaDocAccessor(const Overlay& overlay, Args&&... args)
      : ov_(&overlay), base_(std::forward<Args>(args)...) {}

  size_t size() const { return ov_->logical_size(); }

  uint32_t Post(uint64_t pre) {
    Location loc = ov_->LocatePre(pre, &pre_hint_);
    if (loc.from_delta) return ov_->DeltaPost(loc.src);
    return static_cast<uint32_t>(ov_->BasePostToLogical(base_.Post(loc.src)));
  }

  uint8_t Kind(uint64_t pre) {
    Location loc = ov_->LocatePre(pre, &pre_hint_);
    return loc.from_delta ? ov_->DeltaKind(loc.src) : base_.Kind(loc.src);
  }

  uint8_t Level(uint64_t pre) {
    Location loc = ov_->LocatePre(pre, &pre_hint_);
    return loc.from_delta ? ov_->DeltaLevel(loc.src) : base_.Level(loc.src);
  }

  NodeId Parent(uint64_t pre) {
    Location loc = ov_->LocatePre(pre, &pre_hint_);
    if (loc.from_delta) return ov_->DeltaParent(loc.src);
    NodeId bp = base_.Parent(loc.src);
    if (bp == kNilNode) return kNilNode;
    // A surviving node's ancestors all survive (deletes take whole
    // subtrees) and base parents are never rewired, so the map is total.
    return static_cast<NodeId>(ov_->BasePreToLogical(bp));
  }

  TagId Tag(uint64_t pre) {
    Location loc = ov_->LocatePre(pre, &pre_hint_);
    // Base TagIds keep their values in the merged dictionary.
    return loc.from_delta ? ov_->DeltaTag(loc.src) : base_.Tag(loc.src);
  }

  void SkipTo(uint64_t pre) {
    if (pre >= ov_->logical_size()) return;
    Location loc = ov_->LocatePre(pre, &pre_hint_);
    if (loc.from_delta) {
      // The jump lands in resident data; announce the next base rank so
      // a paged base can still prefetch where the scan re-enters it.
      base_.SkipTo(ov_->LowerBoundBasePre(pre));
    } else {
      base_.SkipTo(loc.src);
    }
  }

  bool ok() const { return base_.ok(); }
  Status status() const { return base_.status(); }

 private:
  const Overlay* ov_;
  Base base_;
  size_t pre_hint_ = 0;
};

static_assert(DocAccessor<DeltaDocAccessor<MemoryDocAccessor>>);

/// \brief FragmentCursor over the merged per-tag fragment.
///
/// Slot segments splice surviving base slots (read through the wrapped
/// backend cursor) with resident delta entries; each segment carries the
/// logical pre of its first node, so LowerBound stays a resident binary
/// search plus at most one base-cursor LowerBound (fence-key reads).
template <typename Base>
class DeltaFragmentCursor {
 public:
  template <typename... Args>
  explicit DeltaFragmentCursor(const Overlay& overlay, TagId tag,
                               Args&&... args)
      : ov_(&overlay),
        fo_(&overlay.fragment(tag)),
        base_(std::forward<Args>(args)...) {}

  size_t size() const { return fo_->merged_count; }

  NodeId Pre(size_t slot) {
    const SlotSegment& s = Seg(slot);
    size_t src = s.src + (slot - s.lslot);
    if (s.from_delta) return fo_->delta_pre[src];
    return static_cast<NodeId>(ov_->BasePreToLogical(base_.Pre(src)));
  }

  uint32_t Post(size_t slot) {
    const SlotSegment& s = Seg(slot);
    size_t src = s.src + (slot - s.lslot);
    if (s.from_delta) return fo_->delta_post[src];
    return static_cast<uint32_t>(ov_->BasePostToLogical(base_.Post(src)));
  }

  size_t LowerBound(uint64_t pre) {
    const auto& segs = fo_->slots;
    if (segs.empty()) return 0;
    // Last segment whose first node is at or before the target; every
    // earlier slot precedes the target, every later segment follows it.
    auto it = std::upper_bound(
        segs.begin(), segs.end(), pre,
        [](uint64_t v, const SlotSegment& s) { return v < s.first_lpre; });
    if (it == segs.begin()) return 0;
    const SlotSegment& s = *(it - 1);
    if (s.from_delta) {
      const uint32_t* lo = fo_->delta_pre.data() + s.src;
      size_t off = static_cast<size_t>(
          std::lower_bound(lo, lo + s.count, pre) - lo);
      return s.lslot + off;
    }
    // Translate the logical target into base pre space (resident), let
    // the base cursor do its fence-key search, clamp to the segment.
    size_t bslot = base_.LowerBound(ov_->LowerBoundBasePre(pre));
    bslot = std::clamp<size_t>(bslot, s.src, s.src + s.count);
    return s.lslot + (bslot - s.src);
  }

  void SkipTo(size_t slot) {
    if (slot >= fo_->merged_count) return;
    const SlotSegment& s = Seg(slot);
    if (!s.from_delta) base_.SkipTo(s.src + (slot - s.lslot));
  }

  bool ok() const { return base_.ok(); }
  Status status() const { return base_.status(); }

 private:
  const SlotSegment& Seg(size_t slot) {
    const auto& segs = fo_->slots;
    if (hint_ < segs.size() && segs[hint_].lslot <= slot &&
        slot < segs[hint_].lslot + segs[hint_].count) {
      return segs[hint_];
    }
    if (hint_ + 1 < segs.size() && segs[hint_ + 1].lslot <= slot &&
        slot < segs[hint_ + 1].lslot + segs[hint_ + 1].count) {
      return segs[++hint_];
    }
    auto it = std::upper_bound(
        segs.begin(), segs.end(), slot,
        [](size_t v, const SlotSegment& s) { return v < s.lslot; });
    hint_ = static_cast<size_t>(it - segs.begin()) - 1;
    return segs[hint_];
  }

  const Overlay* ov_;
  const FragmentOverlay* fo_;
  Base base_;
  size_t hint_ = 0;
};

static_assert(FragmentCursor<DeltaFragmentCursor<MemoryFragmentCursor>>);

}  // namespace sj::delta

#endif  // STAIRJOIN_DELTA_DELTA_ACCESSOR_H_
