// The resident delta store (the "updatable documents" write path).
//
// The paper's pre/post encoding buys its query speed by freezing the
// document: inserting one node renumbers every following pre rank. The
// delta subsystem absorbs edits WITHOUT touching the immutable column
// images. An `Overlay` describes the edited ("merged") document as a
// sorted list of *segments* over the logical pre and post rank spaces:
// each segment maps a contiguous run of logical ranks either to a run of
// base ranks (read from the unmodified images, still charging the
// BufferPool) or to a run of resident delta nodes (inserted subtrees).
//
// The logical rank space is DENSE: logical pre ranks 0..L-1 are exactly
// the pre ranks a from-scratch rebuild of the edited document would
// assign. That makes "node-identical to a rebuilt Database" a literal
// NodeSequence equality, keeps Eq. (1) of the paper
// (size(v) = post(v) - pre(v) + level(v)) valid in logical coordinates,
// and lets every kernel in core/ (staircase, axis, fragment, twig) run
// unmodified over a merging accessor -- the "gap" of the gapped-rank
// scheme lives in the *base* rank space, where deleted runs leave holes
// and inserted runs are spliced in between base segments.
//
// A commit costs O(edited nodes + #segments); the base columns are never
// rewritten. `Database::Compact()` folds an overlay back into fresh
// images via MaterializeMerged() and resets the delta.
//
// Overlay instances are immutable after OverlayBuilder::Finish() and are
// shared across threads without locking (snapshot isolation: readers pin
// the Overlay alive via shared_ptr).

#ifndef STAIRJOIN_DELTA_OVERLAY_H_
#define STAIRJOIN_DELTA_OVERLAY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/tag_view.h"
#include "encoding/builder.h"
#include "encoding/doc_table.h"
#include "util/result.h"
#include "util/status.h"

namespace sj::delta {

/// One contiguous run of logical ranks (pre or post space) mapped to one
/// source. `src` is a base rank for base segments and an index into the
/// overlay's delta-node arrays for delta segments (unused in post space,
/// where delta nodes are located through their pre-space segment).
struct Segment {
  uint64_t lstart = 0;      ///< first logical rank covered
  uint64_t count = 0;       ///< number of ranks covered
  uint64_t src = 0;         ///< base rank / delta-array index of lstart
  bool from_delta = false;  ///< resident delta nodes vs column images
};

/// Where a logical rank resolves to: a base rank (read through the
/// backend accessor) or a delta-array index (resident).
struct Location {
  bool from_delta = false;
  uint64_t src = 0;
};

/// One run of merged fragment slots for a tag (see FragmentOverlay).
struct SlotSegment {
  uint32_t lslot = 0;       ///< first merged slot covered
  uint32_t count = 0;       ///< number of slots covered
  uint32_t src = 0;         ///< base slot / delta-entry index of lslot
  uint32_t first_lpre = 0;  ///< logical pre of the first node (resident key)
  bool from_delta = false;
};

/// The per-tag fragment (pre/post pairs of elements with one tag) of the
/// merged document, as slot segments over the base TagView plus resident
/// delta entries. Lets the pushdown and twig kernels run their k-way
/// merges over edited documents with base slots still paged in through
/// the BufferPool.
struct FragmentOverlay {
  uint64_t merged_count = 0;
  std::vector<SlotSegment> slots;
  std::vector<uint32_t> delta_pre;   ///< logical pres, sorted ascending
  std::vector<uint32_t> delta_post;  ///< parallel logical posts
};

/// \brief Immutable description of an edited document as segments over
/// the base column images plus resident delta nodes.
///
/// Built by OverlayBuilder, published inside an epoch-stamped snapshot,
/// and read concurrently without locks. All `Delta*` accessors index the
/// resident delta-node arrays; the `Base*ToLogical` maps translate base
/// ranks of *surviving* nodes into logical ranks.
class Overlay {
 public:
  Overlay() = default;

  /// Total node count of the merged document (dense logical pre ranks
  /// 0..logical_size()-1).
  uint64_t logical_size() const { return logical_size_; }

  /// Number of base nodes the overlay was built over.
  uint64_t base_size() const { return base_size_; }

  /// Number of resident delta nodes.
  uint64_t delta_size() const { return kind_.size(); }

  /// True when the overlay changes nothing (no inserts, no deletes).
  bool empty() const { return kind_.empty() && deleted_base_nodes_ == 0; }

  // --- logical-rank resolution -------------------------------------------

  /// Resolves a logical pre rank. `hint` caches the last segment index
  /// for the common sequential-scan pattern; pass a per-caller slot.
  Location LocatePre(uint64_t lpre, size_t* hint) const {
    return Locate(pre_segs_, lpre, hint);
  }

  /// Logical pre rank of a surviving base node (pre rank `bpre`).
  uint64_t BasePreToLogical(uint64_t bpre) const {
    return MapBase(base_pre_to_logical_, bpre);
  }

  /// Logical post rank of a surviving base node's post rank.
  uint64_t BasePostToLogical(uint64_t bpost) const {
    return MapBase(base_post_to_logical_, bpost);
  }

  /// Like BasePreToLogical but returns nullopt for deleted base nodes.
  std::optional<uint64_t> TryBasePreToLogical(uint64_t bpre) const;

  /// Smallest surviving base pre rank whose logical pre is >= `lpre`
  /// (base_size() when no base node follows). This is how a fragment
  /// cursor translates a logical LowerBound target into a base-space
  /// LowerBound the paged fence keys understand.
  uint64_t LowerBoundBasePre(uint64_t lpre) const;

  // --- resident delta-node columns (index = Location::src) ---------------

  uint8_t DeltaKind(uint64_t i) const { return kind_[i]; }
  TagId DeltaTag(uint64_t i) const { return tag_[i]; }
  uint8_t DeltaLevel(uint64_t i) const { return level_[i]; }
  uint32_t DeltaPost(uint64_t i) const { return lpost_[i]; }
  NodeId DeltaParent(uint64_t i) const { return lparent_[i]; }
  const std::string& DeltaValue(uint64_t i) const { return value_[i]; }

  // --- merged tag dictionary ---------------------------------------------
  // Base TagIds keep their values; names first seen in an inserted
  // fragment get ids base_dict_size() + k. The base dictionary itself is
  // never touched (it lives in the immutable images), so lookups take it
  // as a parameter.

  uint32_t base_dict_size() const { return base_dict_size_; }
  uint32_t merged_dict_size() const {
    return base_dict_size_ + static_cast<uint32_t>(extra_names_.size());
  }
  std::optional<TagId> LookupTag(const TagDictionary& base,
                                 std::string_view name) const;
  /// Name of a merged-space TagId (base or overlay-interned).
  const std::string& TagName(const TagDictionary& base, TagId tag) const;

  // --- per-tag fragments --------------------------------------------------

  /// True when fragment overlays were built (requires the resident
  /// TagIndex at Finish() time). When false, pushdown and twig joins are
  /// disabled for this snapshot.
  bool has_fragments() const { return has_fragments_; }
  const FragmentOverlay& fragment(TagId tag) const {
    if (tag == kNoTag || tag >= frags_.size()) return empty_frag_;
    return frags_[tag];
  }
  /// Element count for `tag` in the merged document (pushdown cost model).
  uint64_t tag_count(TagId tag) const { return fragment(tag).merged_count; }

 private:
  friend class OverlayBuilder;

  /// Reverse map entry: base ranks [src, src+count) -> logical
  /// [lstart, lstart+count). Sorted by src (edits never reorder base
  /// nodes, so base order == logical order restricted to base nodes).
  struct RevSeg {
    uint64_t src = 0;
    uint64_t count = 0;
    uint64_t lstart = 0;
  };

  static Location Locate(const std::vector<Segment>& segs, uint64_t lrank,
                         size_t* hint);
  static uint64_t MapBase(const std::vector<RevSeg>& revs, uint64_t brank);

  uint64_t base_size_ = 0;
  uint64_t logical_size_ = 0;
  uint64_t deleted_base_nodes_ = 0;

  // Forward maps: logical rank space -> source, sorted by lstart,
  // covering [0, logical_size_) exactly.
  std::vector<Segment> pre_segs_;
  std::vector<Segment> post_segs_;

  // Reverse maps (derived at Finish): base rank -> logical rank for
  // surviving nodes.
  std::vector<RevSeg> base_pre_to_logical_;
  std::vector<RevSeg> base_post_to_logical_;

  // Deleted base pre ranks as merged, sorted, disjoint [start, start+count)
  // intervals. Carried across commits; consumed by the fragment rebuild.
  std::vector<std::pair<uint64_t, uint64_t>> deleted_base_pre_;

  // Delta-node columns. Append-ordered by commit, NOT by logical pre;
  // every pre-space delta segment covers a contiguous index run. All
  // coordinates are absolute logical ranks, updated as later edits shift
  // the rank space.
  std::vector<uint8_t> kind_;
  std::vector<TagId> tag_;       ///< merged-dictionary space
  std::vector<uint8_t> level_;   ///< absolute depth in the merged tree
  std::vector<uint32_t> lpost_;  ///< logical post rank
  std::vector<NodeId> lparent_;  ///< logical pre of parent (kNilNode: root)
  std::vector<std::string> value_;

  // Overlay-interned tag names (ids base_dict_size_ + k).
  uint32_t base_dict_size_ = 0;
  std::vector<std::string> extra_names_;
  std::unordered_map<std::string, TagId> extra_ids_;

  bool has_fragments_ = false;
  std::vector<FragmentOverlay> frags_;
  FragmentOverlay empty_frag_;
};

/// \brief Applies an edit script against a base document + prior overlay
/// and finalizes a new immutable Overlay.
///
/// Coordinates in the edit API are LOGICAL pre ranks of the working
/// state: ops compose, each seeing the document as left by the previous
/// one (exactly the semantics of editing the serialized XML). The
/// builder touches only resident state -- the base DocTable and TagIndex
/// it reads are the memory-resident images, never the pool-backed ones.
class OverlayBuilder {
 public:
  /// `start` may be null (edit a pristine document). `tag_index` may be
  /// null; fragment overlays (pushdown/twig support) are then skipped.
  OverlayBuilder(const DocTable& base, const TagIndex* tag_index,
                 std::shared_ptr<const Overlay> start);

  /// Parses `fragment_xml` (one element) and appends it as the last
  /// child of `parent` (after existing attributes and children).
  Status InsertLastChild(uint64_t parent, std::string_view fragment_xml);

  /// Removes the subtree rooted at `v` (attributes included). The
  /// document root (logical 0) is not deletable.
  Status DeleteSubtree(uint64_t v);

  /// Replaces the subtree rooted at `v` with a parsed fragment, keeping
  /// its position among siblings. `v` must not be an attribute (an
  /// element fragment cannot sit inside a parent's attribute run).
  Status ReplaceSubtree(uint64_t v, std::string_view fragment_xml);

  /// Node count of the working merged document.
  uint64_t logical_size() const { return ov_.logical_size_; }

  /// Number of edit ops successfully applied.
  uint64_t ops_applied() const { return ops_applied_; }

  /// Derives reverse maps and fragment overlays; returns the immutable
  /// overlay. The builder is spent afterwards.
  Result<std::shared_ptr<const Overlay>> Finish();

 private:
  // Working-state reads (logical coordinates). The reverse maps are
  // stale during building, so base->logical translation scans the
  // forward maps (O(#segments), build-time only).
  uint8_t KindAt(uint64_t lpre) const;
  uint32_t LevelAt(uint64_t lpre) const;
  uint64_t PostAt(uint64_t lpre) const;
  NodeId ParentAt(uint64_t lpre) const;
  uint64_t BasePreToLogicalNow(uint64_t bpre) const;
  uint64_t BasePostToLogicalNow(uint64_t bpost) const;

  TagId InternMergedTag(std::string_view name);
  Result<std::unique_ptr<DocTable>> ParseFragment(
      std::string_view fragment_xml) const;

  /// Splices `frag` in as a new subtree: pre ranks [p, p+S), post ranks
  /// [b, b+S), subtree root at depth `root_level`, parented at `parent`
  /// (logical pre, or kNilNode for a document-level subtree).
  Status ApplyInsert(NodeId parent, uint64_t p, uint64_t b,
                     uint32_t root_level, const DocTable& frag);
  Status ApplyDelete(uint64_t v);
  Status BuildFragmentOverlays();

  const DocTable& base_;
  const TagIndex* tag_index_;
  Overlay ov_;
  uint64_t ops_applied_ = 0;
  bool finished_ = false;
};

/// \brief Rebuilds the merged document as a fresh DocTable whose pre
/// ranks equal the overlay's logical ranks (the compaction fold; also
/// serves the evaluator's per-context naive paths).
///
/// Reads base columns from the resident `base` image and synthesizes the
/// builder event stream (attributes before content, in logical pre
/// order) through encoding/builder -- the one blessed column-image
/// writer outside this subsystem.
Result<std::unique_ptr<DocTable>> MaterializeMerged(const DocTable& base,
                                                    const Overlay& overlay,
                                                    const BuildOptions& options);

}  // namespace sj::delta

#endif  // STAIRJOIN_DELTA_OVERLAY_H_
