#include "delta/overlay.h"

#include <algorithm>
#include <cassert>

#include "encoding/loader.h"

namespace sj::delta {
namespace {

// --- segment-list surgery --------------------------------------------------
// The forward maps are sorted by lstart and cover [0, logical_size)
// exactly. All three helpers keep that invariant.

/// Makes `pos` a segment boundary and returns the index of the first
/// segment with lstart >= pos (segs.size() when pos is the covered end).
size_t SplitAt(std::vector<Segment>& segs, uint64_t pos) {
  if (segs.empty()) return 0;
  const Segment& last = segs.back();
  if (pos >= last.lstart + last.count) return segs.size();
  auto it = std::upper_bound(
      segs.begin(), segs.end(), pos,
      [](uint64_t v, const Segment& s) { return v < s.lstart; });
  size_t i = static_cast<size_t>(it - segs.begin()) - 1;
  if (segs[i].lstart == pos) return i;
  Segment right = segs[i];
  uint64_t off = pos - segs[i].lstart;
  segs[i].count = off;
  right.lstart = pos;
  right.count -= off;
  right.src += off;
  segs.insert(segs.begin() + i + 1, right);
  return i + 1;
}

/// Splices a run of `count` ranks at `pos`; everything at or after `pos`
/// shifts up by `count`.
void InsertRun(std::vector<Segment>& segs, uint64_t pos, uint64_t count,
               uint64_t src, bool from_delta) {
  size_t i = SplitAt(segs, pos);
  for (size_t j = i; j < segs.size(); ++j) segs[j].lstart += count;
  segs.insert(segs.begin() + i,
              Segment{pos, count, src, from_delta});
}

/// Removes ranks [pos, pos+count); everything after shifts down by
/// `count`. Returns the removed pieces with their original sources.
std::vector<Segment> RemoveRun(std::vector<Segment>& segs, uint64_t pos,
                               uint64_t count) {
  size_t i = SplitAt(segs, pos);
  size_t j = SplitAt(segs, pos + count);
  std::vector<Segment> removed(segs.begin() + i, segs.begin() + j);
  segs.erase(segs.begin() + i, segs.begin() + j);
  for (size_t k = i; k < segs.size(); ++k) segs[k].lstart -= count;
  return removed;
}

uint64_t TotalCount(const std::vector<Segment>& segs) {
  uint64_t n = 0;
  for (const Segment& s : segs) n += s.count;
  return n;
}

}  // namespace

// --- Overlay reads ---------------------------------------------------------

Location Overlay::Locate(const std::vector<Segment>& segs, uint64_t lrank,
                         size_t* hint) {
  size_t i;
  // Sequential scans resolve in the hinted or the next segment almost
  // always; fall back to binary search otherwise.
  if (hint != nullptr && *hint < segs.size() &&
      segs[*hint].lstart <= lrank &&
      lrank < segs[*hint].lstart + segs[*hint].count) {
    i = *hint;
  } else if (hint != nullptr && *hint + 1 < segs.size() &&
             segs[*hint + 1].lstart <= lrank &&
             lrank < segs[*hint + 1].lstart + segs[*hint + 1].count) {
    i = *hint + 1;
  } else {
    auto it = std::upper_bound(
        segs.begin(), segs.end(), lrank,
        [](uint64_t v, const Segment& s) { return v < s.lstart; });
    assert(it != segs.begin() && "logical rank below covered range");
    i = static_cast<size_t>(it - segs.begin()) - 1;
  }
  if (hint != nullptr) *hint = i;
  const Segment& s = segs[i];
  assert(lrank < s.lstart + s.count && "logical rank beyond covered range");
  return Location{s.from_delta, s.src + (lrank - s.lstart)};
}

uint64_t Overlay::MapBase(const std::vector<RevSeg>& revs, uint64_t brank) {
  auto it = std::upper_bound(
      revs.begin(), revs.end(), brank,
      [](uint64_t v, const RevSeg& s) { return v < s.src; });
  assert(it != revs.begin() && "base rank not covered by reverse map");
  const RevSeg& s = *(it - 1);
  assert(brank < s.src + s.count && "base rank was deleted");
  return s.lstart + (brank - s.src);
}

std::optional<uint64_t> Overlay::TryBasePreToLogical(uint64_t bpre) const {
  auto it = std::upper_bound(
      base_pre_to_logical_.begin(), base_pre_to_logical_.end(), bpre,
      [](uint64_t v, const RevSeg& s) { return v < s.src; });
  if (it == base_pre_to_logical_.begin()) return std::nullopt;
  const RevSeg& s = *(it - 1);
  if (bpre >= s.src + s.count) return std::nullopt;
  return s.lstart + (bpre - s.src);
}

uint64_t Overlay::LowerBoundBasePre(uint64_t lpre) const {
  // Surviving base nodes keep their relative order, so the reverse map
  // is ascending in both src and lstart: find the first run whose
  // logical range ends beyond lpre.
  auto it = std::upper_bound(
      base_pre_to_logical_.begin(), base_pre_to_logical_.end(), lpre,
      [](uint64_t v, const RevSeg& s) { return v < s.lstart + s.count; });
  if (it == base_pre_to_logical_.end()) return base_size_;
  if (lpre <= it->lstart) return it->src;
  return it->src + (lpre - it->lstart);
}

std::optional<TagId> Overlay::LookupTag(const TagDictionary& base,
                                        std::string_view name) const {
  if (auto id = base.Lookup(name)) return id;
  auto it = extra_ids_.find(std::string(name));
  if (it != extra_ids_.end()) return it->second;
  return std::nullopt;
}

const std::string& Overlay::TagName(const TagDictionary& base,
                                    TagId tag) const {
  if (tag < base_dict_size_) return base.Name(tag);
  return extra_names_[tag - base_dict_size_];
}

// --- OverlayBuilder --------------------------------------------------------

OverlayBuilder::OverlayBuilder(const DocTable& base, const TagIndex* tag_index,
                               std::shared_ptr<const Overlay> start)
    : base_(base), tag_index_(tag_index) {
  if (start != nullptr) {
    ov_ = *start;
    // Derived read-side state is rebuilt at Finish().
    ov_.base_pre_to_logical_.clear();
    ov_.base_post_to_logical_.clear();
    ov_.frags_.clear();
    ov_.has_fragments_ = false;
  } else {
    ov_.base_size_ = base.size();
    ov_.logical_size_ = base.size();
    ov_.base_dict_size_ = static_cast<uint32_t>(base.tags().size());
    if (base.size() > 0) {
      ov_.pre_segs_ = {Segment{0, base.size(), 0, false}};
      ov_.post_segs_ = {Segment{0, base.size(), 0, false}};
    }
  }
  assert(ov_.base_size_ == base.size() && "overlay built over a different base");
}

uint64_t OverlayBuilder::BasePreToLogicalNow(uint64_t bpre) const {
  for (const Segment& s : ov_.pre_segs_) {
    if (!s.from_delta && s.src <= bpre && bpre < s.src + s.count) {
      return s.lstart + (bpre - s.src);
    }
  }
  assert(false && "base pre rank deleted or out of range");
  return 0;
}

uint64_t OverlayBuilder::BasePostToLogicalNow(uint64_t bpost) const {
  for (const Segment& s : ov_.post_segs_) {
    if (!s.from_delta && s.src <= bpost && bpost < s.src + s.count) {
      return s.lstart + (bpost - s.src);
    }
  }
  assert(false && "base post rank deleted or out of range");
  return 0;
}

uint8_t OverlayBuilder::KindAt(uint64_t lpre) const {
  size_t hint = 0;
  Location loc = Overlay::Locate(ov_.pre_segs_, lpre, &hint);
  if (loc.from_delta) return ov_.kind_[loc.src];
  return static_cast<uint8_t>(base_.kind(static_cast<NodeId>(loc.src)));
}

uint32_t OverlayBuilder::LevelAt(uint64_t lpre) const {
  size_t hint = 0;
  Location loc = Overlay::Locate(ov_.pre_segs_, lpre, &hint);
  if (loc.from_delta) return ov_.level_[loc.src];
  return base_.level(static_cast<NodeId>(loc.src));
}

uint64_t OverlayBuilder::PostAt(uint64_t lpre) const {
  size_t hint = 0;
  Location loc = Overlay::Locate(ov_.pre_segs_, lpre, &hint);
  if (loc.from_delta) return ov_.lpost_[loc.src];
  return BasePostToLogicalNow(base_.post(static_cast<NodeId>(loc.src)));
}

NodeId OverlayBuilder::ParentAt(uint64_t lpre) const {
  size_t hint = 0;
  Location loc = Overlay::Locate(ov_.pre_segs_, lpre, &hint);
  if (loc.from_delta) return ov_.lparent_[loc.src];
  NodeId bp = base_.parent(static_cast<NodeId>(loc.src));
  if (bp == kNilNode) return kNilNode;
  return static_cast<NodeId>(BasePreToLogicalNow(bp));
}

TagId OverlayBuilder::InternMergedTag(std::string_view name) {
  if (auto id = ov_.LookupTag(base_.tags(), name)) return *id;
  TagId id = ov_.base_dict_size_ +
             static_cast<TagId>(ov_.extra_names_.size());
  ov_.extra_names_.emplace_back(name);
  ov_.extra_ids_.emplace(std::string(name), id);
  return id;
}

Result<std::unique_ptr<DocTable>> OverlayBuilder::ParseFragment(
    std::string_view fragment_xml) const {
  BuildOptions opts;
  opts.store_values = true;
  SJ_ASSIGN_OR_RETURN(std::unique_ptr<DocTable> frag,
                      LoadDocument(fragment_xml, opts));
  if (frag->empty() || frag->kind(0) != NodeKind::kElement) {
    return Status::InvalidArgument("edit fragment must be a single element");
  }
  return frag;
}

Status OverlayBuilder::ApplyInsert(NodeId parent, uint64_t p, uint64_t b,
                                   uint32_t root_level, const DocTable& frag) {
  const uint64_t S = frag.size();
  if (root_level + frag.height() > 255) {
    return Status::InvalidArgument(
        "edit would exceed the 255-level depth budget");
  }
  if (ov_.logical_size_ + S >= kNilNode) {
    return Status::InvalidArgument("edit would overflow the pre rank space");
  }
  const uint64_t d0 = ov_.kind_.size();

  // Later ranks move up by S; stored delta coordinates are absolute.
  for (uint64_t i = 0; i < d0; ++i) {
    if (ov_.lpost_[i] >= b) ov_.lpost_[i] += static_cast<uint32_t>(S);
    if (ov_.lparent_[i] != kNilNode && ov_.lparent_[i] >= p) {
      ov_.lparent_[i] += static_cast<NodeId>(S);
    }
  }
  InsertRun(ov_.pre_segs_, p, S, d0, /*from_delta=*/true);
  InsertRun(ov_.post_segs_, b, S, 0, /*from_delta=*/true);

  for (uint64_t j = 0; j < S; ++j) {
    NodeId fj = static_cast<NodeId>(j);
    ov_.kind_.push_back(static_cast<uint8_t>(frag.kind(fj)));
    TagId ft = frag.tag(fj);
    ov_.tag_.push_back(ft == kNoTag
                           ? kNoTag
                           : InternMergedTag(frag.tags().Name(ft)));
    ov_.level_.push_back(static_cast<uint8_t>(root_level + frag.level(fj)));
    ov_.lpost_.push_back(static_cast<uint32_t>(b + frag.post(fj)));
    NodeId fp = frag.parent(fj);
    ov_.lparent_.push_back(fp == kNilNode ? parent
                                          : static_cast<NodeId>(p + fp));
    ov_.value_.emplace_back(frag.value(fj));
  }
  ov_.logical_size_ += S;
  return Status::OK();
}

Status OverlayBuilder::ApplyDelete(uint64_t v) {
  const uint32_t l = LevelAt(v);
  const uint64_t post = PostAt(v);
  const uint64_t T = post - v + l + 1;  // Eq. (1): subtree-or-self size
  const uint64_t pmin = v - l;          // min post in subtree-or-self(v)

  std::vector<Segment> removed_pre = RemoveRun(ov_.pre_segs_, v, T);
  std::vector<Segment> removed_post = RemoveRun(ov_.post_segs_, pmin, T);
  assert(TotalCount(removed_pre) == T && TotalCount(removed_post) == T &&
         "subtree delete must cover matching pre and post ranges");
  (void)removed_post;

  std::vector<std::pair<uint64_t, uint64_t>> dropped;  // delta (src, count)
  for (const Segment& s : removed_pre) {
    if (s.from_delta) {
      dropped.emplace_back(s.src, s.count);
    } else {
      ov_.deleted_base_pre_.emplace_back(s.src, s.count);
      ov_.deleted_base_nodes_ += s.count;
    }
  }

  if (!dropped.empty()) {
    std::sort(dropped.begin(), dropped.end());
    for (auto it = dropped.rbegin(); it != dropped.rend(); ++it) {
      auto [s, c] = *it;
      ov_.kind_.erase(ov_.kind_.begin() + s, ov_.kind_.begin() + s + c);
      ov_.tag_.erase(ov_.tag_.begin() + s, ov_.tag_.begin() + s + c);
      ov_.level_.erase(ov_.level_.begin() + s, ov_.level_.begin() + s + c);
      ov_.lpost_.erase(ov_.lpost_.begin() + s, ov_.lpost_.begin() + s + c);
      ov_.lparent_.erase(ov_.lparent_.begin() + s,
                         ov_.lparent_.begin() + s + c);
      ov_.value_.erase(ov_.value_.begin() + s, ov_.value_.begin() + s + c);
    }
    auto removed_below = [&dropped](uint64_t x) {
      uint64_t n = 0;
      for (const auto& [s, c] : dropped) {
        if (s + c <= x) {
          n += c;
        } else {
          break;  // sorted + disjoint from survivors: nothing below x left
        }
      }
      return n;
    };
    for (Segment& s : ov_.pre_segs_) {
      if (s.from_delta) s.src -= removed_below(s.src);
    }
  }

  for (uint64_t i = 0; i < ov_.kind_.size(); ++i) {
    if (ov_.lpost_[i] >= pmin + T) ov_.lpost_[i] -= static_cast<uint32_t>(T);
    if (ov_.lparent_[i] != kNilNode && ov_.lparent_[i] >= v + T) {
      ov_.lparent_[i] -= static_cast<NodeId>(T);
    }
  }
  ov_.logical_size_ -= T;
  return Status::OK();
}

Status OverlayBuilder::InsertLastChild(uint64_t parent,
                                       std::string_view fragment_xml) {
  if (finished_) return Status::Internal("edit after Finish()");
  if (parent >= ov_.logical_size_) {
    return Status::OutOfRange("insert parent outside the document");
  }
  if (KindAt(parent) != static_cast<uint8_t>(NodeKind::kElement)) {
    return Status::InvalidArgument("insert parent is not an element");
  }
  SJ_ASSIGN_OR_RETURN(std::unique_ptr<DocTable> frag,
                      ParseFragment(fragment_xml));
  const uint32_t ql = LevelAt(parent);
  const uint64_t qpost = PostAt(parent);
  const uint64_t T = qpost - parent + ql + 1;
  Status st = ApplyInsert(static_cast<NodeId>(parent), parent + T, qpost,
                          ql + 1, *frag);
  if (st.ok()) ++ops_applied_;
  return st;
}

Status OverlayBuilder::DeleteSubtree(uint64_t v) {
  if (finished_) return Status::Internal("edit after Finish()");
  if (v >= ov_.logical_size_) {
    return Status::OutOfRange("delete target outside the document");
  }
  if (v == 0) {
    return Status::InvalidArgument("the document root is not deletable");
  }
  Status st = ApplyDelete(v);
  if (st.ok()) ++ops_applied_;
  return st;
}

Status OverlayBuilder::ReplaceSubtree(uint64_t v,
                                      std::string_view fragment_xml) {
  if (finished_) return Status::Internal("edit after Finish()");
  if (v >= ov_.logical_size_) {
    return Status::OutOfRange("replace target outside the document");
  }
  if (v == 0) {
    return Status::InvalidArgument("the document root is not replaceable");
  }
  if (KindAt(v) == static_cast<uint8_t>(NodeKind::kAttribute)) {
    return Status::InvalidArgument(
        "cannot replace an attribute with an element fragment");
  }
  SJ_ASSIGN_OR_RETURN(std::unique_ptr<DocTable> frag,
                      ParseFragment(fragment_xml));
  const uint32_t l = LevelAt(v);
  if (l + frag->height() > 255) {
    return Status::InvalidArgument(
        "edit would exceed the 255-level depth budget");
  }
  const NodeId q = ParentAt(v);
  const uint64_t pmin = v - l;
  Status st = ApplyDelete(v);
  if (!st.ok()) return st;
  st = ApplyInsert(q, v, pmin, l, *frag);
  if (st.ok()) ++ops_applied_;
  return st;
}

Result<std::shared_ptr<const Overlay>> OverlayBuilder::Finish() {
  if (finished_) return Status::Internal("OverlayBuilder::Finish called twice");
  finished_ = true;

  // Merge the deleted-base intervals (disjoint by construction: a base
  // node deletes at most once).
  std::sort(ov_.deleted_base_pre_.begin(), ov_.deleted_base_pre_.end());
  std::vector<std::pair<uint64_t, uint64_t>> merged;
  for (const auto& [s, c] : ov_.deleted_base_pre_) {
    if (!merged.empty() && merged.back().first + merged.back().second == s) {
      merged.back().second += c;
    } else {
      merged.emplace_back(s, c);
    }
  }
  ov_.deleted_base_pre_ = std::move(merged);

  // Reverse maps: the base segments of each forward map, keyed by src.
  // Base order is preserved under edits, so they are already ascending.
  auto reverse_of = [](const std::vector<Segment>& segs) {
    std::vector<Overlay::RevSeg> revs;
    for (const Segment& s : segs) {
      if (s.from_delta) continue;
      if (!revs.empty() && revs.back().src + revs.back().count == s.src &&
          revs.back().lstart + revs.back().count == s.lstart) {
        revs.back().count += s.count;
        continue;
      }
      assert((revs.empty() || revs.back().src + revs.back().count <= s.src) &&
             "edits must never reorder base nodes");
      revs.push_back(Overlay::RevSeg{s.src, s.count, s.lstart});
    }
    return revs;
  };
  ov_.base_pre_to_logical_ = reverse_of(ov_.pre_segs_);
  ov_.base_post_to_logical_ = reverse_of(ov_.post_segs_);

  if (tag_index_ != nullptr) {
    Status st = BuildFragmentOverlays();
    if (!st.ok()) return st;
  }

  return std::make_shared<const Overlay>(std::move(ov_));
}

Status OverlayBuilder::BuildFragmentOverlays() {
  // Logical pre of every delta node, from the pre-space segments.
  std::vector<uint32_t> dlpre(ov_.kind_.size(), 0);
  for (const Segment& s : ov_.pre_segs_) {
    if (!s.from_delta) continue;
    for (uint64_t k = 0; k < s.count; ++k) {
      dlpre[s.src + k] = static_cast<uint32_t>(s.lstart + k);
    }
  }

  const uint32_t dict_size = ov_.merged_dict_size();
  ov_.frags_.assign(dict_size, FragmentOverlay{});

  // Per-tag delta element entries, sorted by logical pre. (TagIndex
  // semantics: elements only.)
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_tag(dict_size);
  for (uint64_t i = 0; i < ov_.kind_.size(); ++i) {
    if (ov_.kind_[i] != static_cast<uint8_t>(NodeKind::kElement)) continue;
    if (ov_.tag_[i] == kNoTag) continue;
    per_tag[ov_.tag_[i]].emplace_back(dlpre[i], ov_.lpost_[i]);
  }

  for (uint32_t t = 0; t < dict_size; ++t) {
    FragmentOverlay& fo = ov_.frags_[t];
    std::vector<std::pair<uint32_t, uint32_t>>& entries = per_tag[t];
    std::sort(entries.begin(), entries.end());

    const TagView& view = t < ov_.base_dict_size_
                              ? tag_index_->view(t)
                              : tag_index_->view(kNoTag);  // empty view

    // Surviving base slot runs: the tag view minus deleted pre ranges
    // (each deleted base range is contiguous, so it erases a contiguous
    // slot run -- two binary searches per interval).
    std::vector<std::pair<size_t, size_t>> runs;  // [begin, end) slots
    size_t cur = 0;
    for (const auto& [dstart, dcount] : ov_.deleted_base_pre_) {
      size_t lo = static_cast<size_t>(
          std::lower_bound(view.pre.begin(), view.pre.end(),
                           static_cast<NodeId>(dstart)) -
          view.pre.begin());
      size_t hi = static_cast<size_t>(
          std::lower_bound(view.pre.begin(), view.pre.end(),
                           static_cast<NodeId>(dstart + dcount)) -
          view.pre.begin());
      if (lo > cur) runs.emplace_back(cur, lo);
      if (hi > cur) cur = hi;
    }
    if (cur < view.size()) runs.emplace_back(cur, view.size());

    // bkey[k]: smallest surviving base pre whose logical pre follows
    // entry k -- entry k sits before base slot s iff bkey[k] <= pre[s].
    std::vector<NodeId> bkey(entries.size());
    for (size_t k = 0; k < entries.size(); ++k) {
      bkey[k] = static_cast<NodeId>(ov_.LowerBoundBasePre(entries[k].first));
    }

    fo.delta_pre.reserve(entries.size());
    fo.delta_post.reserve(entries.size());
    uint32_t merged_slot = 0;
    size_t di = 0;
    auto emit_delta_upto = [&](NodeId limit, bool bounded) {
      while (di < entries.size() && (!bounded || bkey[di] <= limit)) {
        size_t start = di;
        while (di < entries.size() && (!bounded || bkey[di] <= limit)) ++di;
        fo.slots.push_back(SlotSegment{
            merged_slot, static_cast<uint32_t>(di - start),
            static_cast<uint32_t>(start), entries[start].first, true});
        for (size_t k = start; k < di; ++k) {
          fo.delta_pre.push_back(entries[k].first);
          fo.delta_post.push_back(entries[k].second);
        }
        merged_slot += static_cast<uint32_t>(di - start);
      }
    };
    for (const auto& [rb, re] : runs) {
      size_t s = rb;
      while (s < re) {
        emit_delta_upto(view.pre[s], /*bounded=*/true);
        size_t send;
        if (di < entries.size()) {
          send = static_cast<size_t>(
              std::lower_bound(view.pre.begin() + s, view.pre.begin() + re,
                               bkey[di]) -
              view.pre.begin());
        } else {
          send = re;
        }
        if (send > s) {
          fo.slots.push_back(SlotSegment{
              merged_slot, static_cast<uint32_t>(send - s),
              static_cast<uint32_t>(s),
              static_cast<uint32_t>(ov_.BasePreToLogical(view.pre[s])),
              false});
          merged_slot += static_cast<uint32_t>(send - s);
          s = send;
        }
      }
    }
    emit_delta_upto(0, /*bounded=*/false);
    fo.merged_count = merged_slot;
  }

  ov_.has_fragments_ = true;
  return Status::OK();
}

// --- compaction / naive-path fold ------------------------------------------

Result<std::unique_ptr<DocTable>> MaterializeMerged(
    const DocTable& base, const Overlay& overlay,
    const BuildOptions& options) {
  BuildOptions opts = options;
  opts.expected_nodes = overlay.logical_size();
  DocTableBuilder builder(opts);
  Status st = builder.StartDocument();
  if (!st.ok()) return st;

  struct Open {
    uint64_t end;  // logical pre one past the subtree
    const std::string* name;
  };
  std::vector<Open> stack;
  size_t hint = 0;
  const uint64_t total = overlay.logical_size();
  for (uint64_t i = 0; i < total; ++i) {
    Location loc = overlay.LocatePre(i, &hint);
    uint8_t kind;
    TagId tag;
    uint32_t level;
    uint64_t post;
    std::string_view value;
    if (loc.from_delta) {
      kind = overlay.DeltaKind(loc.src);
      tag = overlay.DeltaTag(loc.src);
      level = overlay.DeltaLevel(loc.src);
      post = overlay.DeltaPost(loc.src);
      value = overlay.DeltaValue(loc.src);
    } else {
      NodeId b = static_cast<NodeId>(loc.src);
      kind = static_cast<uint8_t>(base.kind(b));
      tag = base.tag(b);
      level = base.level(b);
      post = overlay.BasePostToLogical(base.post(b));
      value = base.value(b);
    }
    while (!stack.empty() && stack.back().end == i) {
      st = builder.EndElement(*stack.back().name);
      if (!st.ok()) return st;
      stack.pop_back();
    }
    switch (static_cast<NodeKind>(kind)) {
      case NodeKind::kElement: {
        const std::string& name = overlay.TagName(base.tags(), tag);
        st = builder.StartElement(name);
        if (!st.ok()) return st;
        stack.push_back(Open{i + (post - i + level + 1), &name});
        break;
      }
      case NodeKind::kAttribute:
        st = builder.Attribute(overlay.TagName(base.tags(), tag), value);
        if (!st.ok()) return st;
        break;
      case NodeKind::kText:
        st = builder.Text(value);
        if (!st.ok()) return st;
        break;
      case NodeKind::kComment:
        st = builder.Comment(value);
        if (!st.ok()) return st;
        break;
      case NodeKind::kProcessingInstruction:
        st = builder.ProcessingInstruction(overlay.TagName(base.tags(), tag),
                                           value);
        if (!st.ok()) return st;
        break;
    }
  }
  while (!stack.empty()) {
    st = builder.EndElement(*stack.back().name);
    if (!st.ok()) return st;
    stack.pop_back();
  }
  st = builder.EndDocument();
  if (!st.ok()) return st;
  return builder.Finish();
}

}  // namespace sj::delta
