// Multi-predicate merge join (MPMGJN, Zhang et al. [17]).
//
// The structural-join comparator of the paper's related-work section: a
// merge join over two pre-sorted node lists with the interval containment
// predicate (pre(a) < pre(d) AND post(d) < post(a)). MPMGJN exploits
// hierarchical interval containment but lacks the staircase join's pruning
// and skipping: nested ancestor candidates re-scan the same descendant
// range, so it touches and tests more nodes (Section 5).

#ifndef STAIRJOIN_BASELINES_MPMGJN_H_
#define STAIRJOIN_BASELINES_MPMGJN_H_

#include <vector>

#include "core/stats.h"
#include "encoding/doc_table.h"
#include "util/result.h"

namespace sj {

/// \brief A join input: nodes sorted by pre rank with their post ranks.
struct JoinList {
  std::vector<NodeId> pre;
  std::vector<uint32_t> post;

  size_t size() const { return pre.size(); }
};

/// Builds a JoinList from a document-order node sequence.
JoinList MakeJoinList(const DocTable& doc, const NodeSequence& nodes);

/// \brief MPMGJN returning the distinct descendant-side matches
/// (the `ancestors/descendant::...` step semantics).
///
/// `height` bounds the pre-rank extent of a subtree via Eq. (1)
/// (pre <= post + h), exactly the containment-interval end the original
/// algorithm derives from its (start, end) encoding. Duplicate matches from
/// nested ancestor candidates are produced first and eliminated by a final
/// sort + unique (counted in stats).
Result<NodeSequence> MpmgjnDescendants(const JoinList& ancestors,
                                       const JoinList& descendants,
                                       uint32_t height,
                                       JoinStats* stats = nullptr);

/// \brief MPMGJN returning the distinct ancestor-side matches
/// (the `descendants/ancestor::...` step semantics).
Result<NodeSequence> MpmgjnAncestors(const JoinList& ancestors,
                                     const JoinList& descendants,
                                     uint32_t height,
                                     JoinStats* stats = nullptr);

}  // namespace sj

#endif  // STAIRJOIN_BASELINES_MPMGJN_H_
