// Naive axis-step evaluation (paper Section 3.1 / Experiment 1).
//
// "The naive way of evaluating an axis step for a context node sequence
// would be to evaluate the step for each context node independently and
// construct the end result from these intermediary results" -- producing
// duplicate nodes that a final sort + unique pass has to remove. This
// oracle also backs the correctness property tests.

#ifndef STAIRJOIN_BASELINES_NAIVE_H_
#define STAIRJOIN_BASELINES_NAIVE_H_

#include "core/axis.h"
#include "core/stats.h"
#include "encoding/doc_table.h"
#include "util/result.h"

namespace sj {

/// \brief Evaluates `axis` independently per context node, concatenates,
/// then sorts and deduplicates (the XPath post-processing the staircase
/// join avoids).
///
/// stats->candidates_produced counts nodes before duplicate elimination,
/// stats->duplicates_removed the nodes the unique operator dropped --
/// the two series of paper Fig. 11(a).
///
/// All staircase axes plus self/parent/child/attribute/siblings are
/// supported; the context must be in document order and duplicate free.
Result<NodeSequence> NaiveAxisStep(const DocTable& doc,
                                   const NodeSequence& context, Axis axis,
                                   JoinStats* stats = nullptr,
                                   bool keep_attributes = false);

/// \brief Per-context result sizes summed analytically in O(|context|)
/// (no materialization): what the naive plan *would* produce. Used by the
/// large-scale duplicates bench; NaiveAxisStep reports the same number in
/// candidates_produced.
uint64_t NaiveCandidateCount(const DocTable& doc, const NodeSequence& context,
                             Axis axis, bool keep_attributes = false);

}  // namespace sj

#endif  // STAIRJOIN_BASELINES_NAIVE_H_
