// The tree-unaware SQL baseline ("IBM DB2"-style plan, paper Fig. 3).
//
// A conventional RDBMS evaluates a region query per context node through a
// B+-tree over concatenated (pre, post, tag) keys: an index range scan
// delimited by pre-rank bounds, with the remaining region predicates (and
// an "early name test") evaluated against the scanned entries. Across a
// context *sequence* the plan produces duplicates and relies on a final
// unique operator. Section 2.1's optional window predicate (Eq. (1):
// pre(v2) <= post(v1) + h) delimits the descendant scan by the actual
// subtree size; without it the scan runs to the end of the document.
//
// The original system is closed source; this module implements the plan
// the paper shows DB2 chose, which preserves the behaviour Experiment 3
// contrasts against (see DESIGN.md, substitutions).

#ifndef STAIRJOIN_BASELINES_SQL_PLAN_H_
#define STAIRJOIN_BASELINES_SQL_PLAN_H_

#include <memory>

#include "btree/bplus_tree.h"
#include "core/axis.h"
#include "core/stats.h"
#include "encoding/doc_table.h"
#include "util/result.h"

namespace sj {

/// Plan configuration.
struct SqlPlanOptions {
  /// Apply the Section 2.1 "line 7" window predicate (descendant scans
  /// delimited to pre <= post(c) + h instead of running to the table end).
  bool window_predicate = true;
};

/// \brief Query evaluator mimicking the Fig. 3 index-scan plan.
class SqlPlanEvaluator {
 public:
  /// Builds the (pre, post, tag) B+-tree over the document's non-attribute
  /// nodes (the paper's doc table keeps attributes out of axis results).
  explicit SqlPlanEvaluator(const DocTable& doc);

  /// \brief One axis step for a context sequence.
  ///
  /// Supported axes: descendant(-or-self), ancestor(-or-self), following,
  /// preceding. `tag` != kNoTag applies the name test inside the index scan
  /// (the "early name test" DB2 performs via the concatenated key).
  /// The per-context scans produce duplicates; a final sort + unique pass
  /// (counted in stats) restores the XPath semantics.
  Result<NodeSequence> AxisStep(const NodeSequence& context, Axis axis,
                                TagId tag, const SqlPlanOptions& options = {},
                                JoinStats* stats = nullptr) const;

  /// \brief Existence-predicate semijoin: keeps the context nodes that have
  /// at least one descendant with `tag` (the manual Q2 rewrite
  /// /descendant::bidder[descendant::increase] needs this).
  Result<NodeSequence> FilterHasDescendant(const NodeSequence& context,
                                           TagId tag,
                                           const SqlPlanOptions& options = {},
                                           JoinStats* stats = nullptr) const;

  /// \brief The actual Fig. 3 DB2 plan shape: the *outer* index scan
  /// enumerates candidate result nodes in pre order (evaluating the early
  /// name test against the concatenated key), and for each candidate the
  /// inner input is probed for a context witness in the axis region (a
  /// left semijoin). No Eq. (1) tree knowledge is used anywhere.
  ///
  /// Supported axes: descendant(-or-self) and ancestor(-or-self).
  /// stats->index_entries_scanned counts the outer scan,
  /// stats->nodes_scanned the inner probe touches.
  Result<NodeSequence> SemijoinStep(const NodeSequence& context, Axis axis,
                                    TagId tag,
                                    JoinStats* stats = nullptr) const;

  /// The underlying index (exposed for tests/benches).
  const btree::BPlusTree& index() const { return index_; }

 private:
  const DocTable& doc_;
  btree::BPlusTree index_;
};

}  // namespace sj

#endif  // STAIRJOIN_BASELINES_SQL_PLAN_H_
