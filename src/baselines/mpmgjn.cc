#include "baselines/mpmgjn.h"

#include <algorithm>

#include "bat/operators.h"

namespace sj {

JoinList MakeJoinList(const DocTable& doc, const NodeSequence& nodes) {
  JoinList list;
  list.pre.reserve(nodes.size());
  list.post.reserve(nodes.size());
  for (NodeId v : nodes) {
    list.pre.push_back(v);
    list.post.push_back(doc.post(v));
  }
  return list;
}

namespace {

Status Validate(const JoinList& list) {
  if (!std::is_sorted(list.pre.begin(), list.pre.end())) {
    return Status::InvalidArgument("MPMGJN input not sorted by pre rank");
  }
  if (list.pre.size() != list.post.size()) {
    return Status::InvalidArgument("MPMGJN input columns differ in length");
  }
  return Status::OK();
}

/// Runs the merge producing (a, d) matches; `emit` receives the list
/// positions. The outer cursor over `descendants` only moves forward, but
/// each ancestor candidate re-scans the descendant entries inside its
/// containment interval -- nested candidates therefore re-test the same
/// entries, which is the tree-unaware behaviour the staircase join removes.
template <typename Emit>
void Merge(const JoinList& ancestors, const JoinList& descendants,
           uint32_t height, JoinStats* stats, Emit emit) {
  size_t start = 0;  // first descendant candidate for the current ancestor
  for (size_t i = 0; i < ancestors.size(); ++i) {
    const uint32_t a_pre = ancestors.pre[i];
    const uint32_t a_post = ancestors.post[i];
    // Ancestor candidates are pre-sorted, so matches for this candidate
    // start at or after `start`.
    while (start < descendants.size() && descendants.pre[start] <= a_pre) {
      ++start;
    }
    const uint64_t interval_end = static_cast<uint64_t>(a_post) + height;
    for (size_t j = start;
         j < descendants.size() && descendants.pre[j] <= interval_end; ++j) {
      if (stats != nullptr) ++stats->nodes_scanned;
      if (descendants.post[j] < a_post) emit(i, j);
    }
  }
}

}  // namespace

Result<NodeSequence> MpmgjnDescendants(const JoinList& ancestors,
                                       const JoinList& descendants,
                                       uint32_t height, JoinStats* stats) {
  SJ_RETURN_NOT_OK(Validate(ancestors));
  SJ_RETURN_NOT_OK(Validate(descendants));
  if (stats != nullptr) {
    *stats = JoinStats{};
    stats->context_size = ancestors.size();
  }
  NodeSequence matches;
  Merge(ancestors, descendants, height, stats,
        [&](size_t, size_t j) { matches.push_back(descendants.pre[j]); });
  uint64_t produced = matches.size();
  NodeSequence result = bat::SortUnique(std::move(matches));
  if (stats != nullptr) {
    stats->candidates_produced = produced;
    stats->duplicates_removed = produced - result.size();
    stats->result_size = result.size();
  }
  return result;
}

Result<NodeSequence> MpmgjnAncestors(const JoinList& ancestors,
                                     const JoinList& descendants,
                                     uint32_t height, JoinStats* stats) {
  SJ_RETURN_NOT_OK(Validate(ancestors));
  SJ_RETURN_NOT_OK(Validate(descendants));
  if (stats != nullptr) {
    *stats = JoinStats{};
    stats->context_size = descendants.size();
  }
  NodeSequence matches;
  Merge(ancestors, descendants, height, stats,
        [&](size_t i, size_t) { matches.push_back(ancestors.pre[i]); });
  uint64_t produced = matches.size();
  NodeSequence result = bat::SortUnique(std::move(matches));
  if (stats != nullptr) {
    stats->candidates_produced = produced;
    stats->duplicates_removed = produced - result.size();
    stats->result_size = result.size();
  }
  return result;
}

}  // namespace sj
