#include "baselines/naive.h"

#include <algorithm>

#include "bat/operators.h"

namespace sj {
namespace {

bool IsAttr(const DocTable& doc, NodeId v) {
  return doc.kind(v) == NodeKind::kAttribute;
}

/// Appends the per-context result of `axis` for node c (duplicates across
/// context nodes intended -- that is the point of this baseline).
void AppendPerContext(const DocTable& doc, NodeId c, Axis axis,
                      bool keep_attributes, NodeSequence* out) {
  const uint64_t n = doc.size();
  auto emit = [&](uint64_t v) {
    if (keep_attributes || !IsAttr(doc, static_cast<NodeId>(v))) {
      out->push_back(static_cast<NodeId>(v));
    }
  };
  switch (axis) {
    case Axis::kSelf:
      out->push_back(c);  // self is never attribute-filtered
      break;
    case Axis::kParent:
      if (doc.parent(c) != kNilNode) out->push_back(doc.parent(c));
      break;
    case Axis::kDescendantOrSelf:
      out->push_back(c);
      [[fallthrough]];
    case Axis::kDescendant: {
      uint64_t end = static_cast<uint64_t>(c) + doc.subtree_size(c);
      for (uint64_t v = static_cast<uint64_t>(c) + 1; v <= end; ++v) emit(v);
      break;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      if (axis == Axis::kAncestorOrSelf) out->push_back(c);
      NodeSequence chain;
      for (NodeId p = doc.parent(c); p != kNilNode; p = doc.parent(p)) {
        chain.push_back(p);
      }
      // Parent-chain walks root-last; results must be in document order.
      std::reverse(chain.begin(), chain.end());
      size_t insert_at = out->size() -
                         (axis == Axis::kAncestorOrSelf ? 1 : 0);
      out->insert(out->begin() + static_cast<ptrdiff_t>(insert_at),
                  chain.begin(), chain.end());
      break;
    }
    case Axis::kFollowing: {
      for (uint64_t v = static_cast<uint64_t>(c) + doc.subtree_size(c) + 1;
           v < n; ++v) {
        emit(v);
      }
      break;
    }
    case Axis::kPreceding: {
      for (uint64_t v = 0; v < c; ++v) {
        if (doc.post(static_cast<NodeId>(v)) < doc.post(c)) emit(v);
      }
      break;
    }
    case Axis::kChild: {
      uint64_t end = static_cast<uint64_t>(c) + doc.subtree_size(c);
      uint64_t v = static_cast<uint64_t>(c) + 1;
      while (v <= end) {
        if (IsAttr(doc, static_cast<NodeId>(v))) {
          ++v;  // attribute nodes are not children in the XPath data model
          continue;
        }
        out->push_back(static_cast<NodeId>(v));
        v += doc.subtree_size(static_cast<NodeId>(v)) + 1;
      }
      break;
    }
    case Axis::kAttribute: {
      for (uint64_t v = static_cast<uint64_t>(c) + 1;
           v < n && IsAttr(doc, static_cast<NodeId>(v)) &&
           doc.parent(static_cast<NodeId>(v)) == c;
           ++v) {
        out->push_back(static_cast<NodeId>(v));
      }
      break;
    }
    case Axis::kFollowingSibling: {
      if (doc.parent(c) == kNilNode || IsAttr(doc, c)) break;
      NodeId p = doc.parent(c);
      uint64_t end = static_cast<uint64_t>(p) + doc.subtree_size(p);
      uint64_t v = static_cast<uint64_t>(c) + doc.subtree_size(c) + 1;
      while (v <= end) {
        out->push_back(static_cast<NodeId>(v));
        v += doc.subtree_size(static_cast<NodeId>(v)) + 1;
      }
      break;
    }
    case Axis::kPrecedingSibling: {
      if (doc.parent(c) == kNilNode || IsAttr(doc, c)) break;
      NodeId p = doc.parent(c);
      uint64_t v = static_cast<uint64_t>(p) + 1;
      while (v < c) {
        if (IsAttr(doc, static_cast<NodeId>(v))) {
          ++v;
          continue;
        }
        out->push_back(static_cast<NodeId>(v));
        v += doc.subtree_size(static_cast<NodeId>(v)) + 1;
      }
      break;
    }
  }
}

}  // namespace

Result<NodeSequence> NaiveAxisStep(const DocTable& doc,
                                   const NodeSequence& context, Axis axis,
                                   JoinStats* stats, bool keep_attributes) {
  if (!context.empty() && context.back() >= doc.size()) {
    return Status::InvalidArgument("context node out of range");
  }
  if (!IsDocumentOrder(context)) {
    return Status::InvalidArgument(
        "context must be duplicate-free and in document order");
  }
  NodeSequence candidates;
  for (NodeId c : context) {
    AppendPerContext(doc, c, axis, keep_attributes, &candidates);
  }
  uint64_t produced = candidates.size();
  NodeSequence result = bat::SortUnique(std::move(candidates));
  if (stats != nullptr) {
    *stats = JoinStats{};
    stats->context_size = context.size();
    stats->candidates_produced = produced;
    stats->duplicates_removed = produced - result.size();
    stats->result_size = result.size();
    stats->nodes_scanned = produced;
  }
  return result;
}

uint64_t NaiveCandidateCount(const DocTable& doc, const NodeSequence& context,
                             Axis axis, bool keep_attributes) {
  // Attribute-aware counting needs the number of attribute nodes in a pre
  // range; one prefix-sum pass provides it.
  std::vector<uint64_t> attr_prefix;
  auto attrs_in = [&](uint64_t lo, uint64_t hi) -> uint64_t {  // [lo, hi)
    if (keep_attributes) return 0;
    if (attr_prefix.empty()) {
      attr_prefix.resize(doc.size() + 1, 0);
      const auto kinds = doc.kinds();
      for (size_t i = 0; i < doc.size(); ++i) {
        attr_prefix[i + 1] =
            attr_prefix[i] +
            (kinds[i] == static_cast<uint8_t>(NodeKind::kAttribute) ? 1 : 0);
      }
    }
    return attr_prefix[hi] - attr_prefix[lo];
  };

  uint64_t total = 0;
  const uint64_t n = doc.size();
  for (NodeId c : context) {
    switch (axis) {
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        uint64_t sub = doc.subtree_size(c);
        total += sub - attrs_in(c + 1, c + sub + 1);
        if (axis == Axis::kDescendantOrSelf) ++total;
        break;
      }
      case Axis::kAncestor:
        total += doc.level(c);
        break;
      case Axis::kAncestorOrSelf:
        total += doc.level(c) + 1;
        break;
      case Axis::kFollowing: {
        uint64_t first = static_cast<uint64_t>(c) + doc.subtree_size(c) + 1;
        total += (n - first) - attrs_in(first, n);
        break;
      }
      case Axis::kPreceding: {
        // preceding(c) = pre(c) - level(c) - attributes among them.
        uint64_t prec_and_anc = c;
        total += prec_and_anc - doc.level(c) - attrs_in(0, c);
        break;
      }
      case Axis::kSelf:
        ++total;
        break;
      case Axis::kParent:
        total += doc.parent(c) != kNilNode ? 1u : 0u;
        break;
      default: {
        // Remaining axes: count by materialization (small results).
        NodeSequence tmp;
        AppendPerContext(doc, c, axis, keep_attributes, &tmp);
        total += tmp.size();
        break;
      }
    }
  }
  return total;
}

}  // namespace sj
