#include "baselines/sql_plan.h"

#include <algorithm>

#include "bat/operators.h"

namespace sj {
namespace {

/// Tag code stored in the index for nodes without a name.
constexpr uint32_t kUntagged = 0xFFFFFFFFu;

}  // namespace

SqlPlanEvaluator::SqlPlanEvaluator(const DocTable& doc) : doc_(doc) {
  std::vector<btree::IndexKey> keys;
  keys.reserve(doc.size());
  const auto kinds = doc.kinds();
  const auto posts = doc.posts();
  const auto tags = doc.tags_column();
  for (size_t i = 0; i < doc.size(); ++i) {
    if (kinds[i] == static_cast<uint8_t>(NodeKind::kAttribute)) continue;
    keys.push_back(btree::IndexKey{static_cast<uint32_t>(i), posts[i],
                                   tags[i] == kNoTag ? kUntagged : tags[i]});
  }
  // Keys arrive pre-sorted (ascending pre ranks).
  Status st = index_.BulkLoad(keys);
  (void)st;  // cannot fail: keys strictly ascending, tree empty
}

Result<NodeSequence> SqlPlanEvaluator::AxisStep(const NodeSequence& context,
                                                Axis axis, TagId tag,
                                                const SqlPlanOptions& options,
                                                JoinStats* stats) const {
  if (!context.empty() && context.back() >= doc_.size()) {
    return Status::InvalidArgument("context node out of range");
  }
  if (!IsDocumentOrder(context)) {
    return Status::InvalidArgument(
        "context must be duplicate-free and in document order");
  }
  const uint64_t n = doc_.size();
  const uint32_t h = doc_.height();
  btree::ScanStats scan_stats;
  NodeSequence candidates;

  auto match_tag = [&](const btree::IndexKey& k) {
    return tag == kNoTag || k.tag == tag;
  };

  for (NodeId c : context) {
    const uint32_t post_c = doc_.post(c);
    switch (axis) {
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        if (axis == Axis::kDescendantOrSelf &&
            doc_.kind(c) != NodeKind::kAttribute &&
            (tag == kNoTag || doc_.tag(c) == tag)) {
          candidates.push_back(c);
        }
        // Index range scan: pre in (pre(c), limit]; predicate post < post(c)
        // (and the early name test) evaluated per scanned entry.
        uint64_t limit =
            options.window_predicate
                ? std::min<uint64_t>(n - 1, static_cast<uint64_t>(post_c) + h)
                : n - 1;
        for (auto it = index_.Seek({c + 1, 0, 0}, &scan_stats);
             it.Valid() && it.key().pre <= limit; it.Next()) {
          if (it.key().post < post_c && match_tag(it.key())) {
            candidates.push_back(it.key().pre);
          }
        }
        break;
      }
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf: {
        // No pre-rank window exists for ancestors without tree knowledge
        // (the root is always a candidate): scan the full prefix.
        for (auto it = index_.Seek({0, 0, 0}, &scan_stats);
             it.Valid() && it.key().pre < c; it.Next()) {
          if (it.key().post > post_c && match_tag(it.key())) {
            candidates.push_back(it.key().pre);
          }
        }
        if (axis == Axis::kAncestorOrSelf &&
            doc_.kind(c) != NodeKind::kAttribute &&
            (tag == kNoTag || doc_.tag(c) == tag)) {
          candidates.push_back(c);
        }
        break;
      }
      case Axis::kFollowing: {
        for (auto it = index_.Seek({c + 1, 0, 0}, &scan_stats); it.Valid();
             it.Next()) {
          if (it.key().post > post_c && match_tag(it.key())) {
            candidates.push_back(it.key().pre);
          }
        }
        break;
      }
      case Axis::kPreceding: {
        for (auto it = index_.Seek({0, 0, 0}, &scan_stats);
             it.Valid() && it.key().pre < c; it.Next()) {
          if (it.key().post < post_c && match_tag(it.key())) {
            candidates.push_back(it.key().pre);
          }
        }
        break;
      }
      default:
        return Status::Unsupported(
            std::string("SQL baseline does not evaluate axis ") +
            std::string(AxisName(axis)));
    }
  }

  uint64_t produced = candidates.size();
  NodeSequence result = bat::SortUnique(std::move(candidates));
  if (stats != nullptr) {
    *stats = JoinStats{};
    stats->context_size = context.size();
    stats->candidates_produced = produced;
    stats->duplicates_removed = produced - result.size();
    stats->result_size = result.size();
    stats->index_entries_scanned = scan_stats.entries_scanned;
    stats->nodes_scanned = scan_stats.entries_scanned;
  }
  return result;
}

Result<NodeSequence> SqlPlanEvaluator::SemijoinStep(
    const NodeSequence& context, Axis axis, TagId tag,
    JoinStats* stats) const {
  if (!context.empty() && context.back() >= doc_.size()) {
    return Status::InvalidArgument("context node out of range");
  }
  if (!IsDocumentOrder(context)) {
    return Status::InvalidArgument(
        "context must be duplicate-free and in document order");
  }
  const bool desc =
      axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf;
  const bool anc = axis == Axis::kAncestor || axis == Axis::kAncestorOrSelf;
  if (!desc && !anc) {
    return Status::Unsupported(
        std::string("SemijoinStep does not evaluate axis ") +
        std::string(AxisName(axis)));
  }
  const bool or_self =
      axis == Axis::kDescendantOrSelf || axis == Axis::kAncestorOrSelf;

  btree::ScanStats scan_stats;
  JoinStats local;
  local.context_size = context.size();
  NodeSequence result;
  // Outer: full index scan in pre order with the early name test evaluated
  // per entry (the concatenated key carries the tag). Inner: ascending
  // probe over the context rows for a region witness, exiting at the first
  // hit -- exactly the left semijoin of Fig. 3, producing its output in
  // pre-sorted order.
  for (auto it = index_.Seek({0, 0, 0}, &scan_stats); it.Valid(); it.Next()) {
    const btree::IndexKey& v2 = it.key();
    if (tag != kNoTag && v2.tag != tag) continue;
    bool witness = false;
    if (desc) {
      // Witness c with pre(c) < pre(v2) and post(c) > post(v2)
      // (plus equality for -or-self).
      for (NodeId c : context) {
        if (c > v2.pre || (!or_self && c == v2.pre)) break;
        ++local.nodes_scanned;
        if (c == v2.pre || doc_.post(c) > v2.post) {
          witness = true;
          break;
        }
      }
    } else {
      // Witness c with pre(c) > pre(v2) and post(c) < post(v2). The range
      // delimiter pre >= pre(v2) is a B-tree seek; without Eq. (1) the
      // probe cannot stop early on a miss.
      size_t lo = static_cast<size_t>(
          std::lower_bound(context.begin(), context.end(), v2.pre) -
          context.begin());
      for (size_t k = lo; k < context.size(); ++k) {
        NodeId c = context[k];
        ++local.nodes_scanned;
        if (c == v2.pre) {
          if (or_self) {
            witness = true;
            break;
          }
          continue;
        }
        if (doc_.post(c) < v2.post) {
          witness = true;
          break;
        }
      }
    }
    if (witness) result.push_back(v2.pre);
  }
  // The final unique operator of the plan; a semijoin leaves nothing to do.
  uint64_t produced = result.size();
  result = bat::UniqueSorted(std::move(result));
  local.candidates_produced = produced;
  local.duplicates_removed = produced - result.size();
  local.result_size = result.size();
  local.index_entries_scanned = scan_stats.entries_scanned;
  if (stats != nullptr) *stats = local;
  return result;
}

Result<NodeSequence> SqlPlanEvaluator::FilterHasDescendant(
    const NodeSequence& context, TagId tag, const SqlPlanOptions& options,
    JoinStats* stats) const {
  if (!context.empty() && context.back() >= doc_.size()) {
    return Status::InvalidArgument("context node out of range");
  }
  const uint64_t n = doc_.size();
  const uint32_t h = doc_.height();
  btree::ScanStats scan_stats;
  NodeSequence result;
  for (NodeId c : context) {
    const uint32_t post_c = doc_.post(c);
    uint64_t limit =
        options.window_predicate
            ? std::min<uint64_t>(n - 1, static_cast<uint64_t>(post_c) + h)
            : n - 1;
    for (auto it = index_.Seek({c + 1, 0, 0}, &scan_stats);
         it.Valid() && it.key().pre <= limit; it.Next()) {
      if (it.key().post < post_c && (tag == kNoTag || it.key().tag == tag)) {
        result.push_back(c);  // existence established: stop scanning
        break;
      }
    }
  }
  if (stats != nullptr) {
    *stats = JoinStats{};
    stats->context_size = context.size();
    stats->result_size = result.size();
    stats->index_entries_scanned = scan_stats.entries_scanned;
    stats->nodes_scanned = scan_stats.entries_scanned;
  }
  return result;
}

}  // namespace sj
