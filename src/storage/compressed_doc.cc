#include "storage/compressed_doc.h"

#include <algorithm>
#include <cstring>

#include "core/axis_impl.h"
#include "core/staircase_impl.h"
#include "storage/compressed_accessor.h"
#include "storage/paged_doc.h"

namespace sj::storage {
namespace {

constexpr uint64_t kFnvBasis = 0xCBF29CE484222325ULL;

/// Packs encoded blocks onto disk pages, first-fit in block order; a
/// block never spans pages. Also folds every encoded byte into the
/// column's image digest, so the digest covers exactly what lands on
/// disk.
class BlockPageWriter {
 public:
  explicit BlockPageWriter(SimulatedDisk* disk, CompressedColumn* column)
      : disk_(disk), column_(column) {
    column_->image_digest = kFnvBasis;
  }

  Status Append(const uint8_t* data, size_t bytes) {
    if (open_ && used_ + bytes > kPageSize) SJ_RETURN_NOT_OK(Flush());
    if (!open_) {
      id_ = disk_->Allocate();
      column_->pages.push_back(id_);
      std::memset(page_.bytes, 0, kPageSize);
      used_ = 0;
      open_ = true;
    }
    std::memcpy(page_.bytes + used_, data, bytes);
    column_->blocks.push_back({id_, static_cast<uint16_t>(used_),
                               static_cast<uint16_t>(bytes)});
    column_->image_digest = FnvMixBytes(column_->image_digest, data, bytes);
    column_->encoded_bytes += bytes;
    used_ += bytes;
    return Status::OK();
  }

  Status Flush() {
    if (!open_) return Status::OK();
    open_ = false;
    return disk_->Write(id_, page_);
  }

 private:
  SimulatedDisk* disk_;
  CompressedColumn* column_;
  Page page_;
  size_t used_ = 0;
  PageId id_ = 0;
  bool open_ = false;
};

/// WriteCompressedColumn for a byte column (kind/level), widened
/// block-wise; FOR packs the handful of distinct kinds/levels into a
/// few bits per value.
Status WriteCompressedByteColumn(SimulatedDisk* disk,
                                 std::span<const uint8_t> values,
                                 CompressedColumn* column) {
  column->values = values.size();
  BlockPageWriter writer(disk, column);
  uint8_t scratch[encoding::MaxEncodedBlockBytes(encoding::kBlockValues)];
  uint32_t widened[encoding::kBlockValues];
  for (size_t start = 0; start < values.size();
       start += encoding::kBlockValues) {
    const size_t count =
        std::min(encoding::kBlockValues, values.size() - start);
    for (size_t i = 0; i < count; ++i) widened[i] = values[start + i];
    const size_t bytes = encoding::EncodeBlock(
        std::span<const uint32_t>(widened, count), scratch);
    SJ_RETURN_NOT_OK(writer.Append(scratch, bytes));
  }
  return writer.Flush();
}

}  // namespace

uint64_t FnvMixBytes(uint64_t h, const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

Status WriteCompressedColumn(SimulatedDisk* disk,
                             std::span<const uint32_t> values,
                             CompressedColumn* column,
                             std::vector<uint32_t>* fence_pre) {
  column->values = values.size();
  BlockPageWriter writer(disk, column);
  uint8_t scratch[encoding::MaxEncodedBlockBytes(encoding::kBlockValues)];
  for (size_t start = 0; start < values.size();
       start += encoding::kBlockValues) {
    const size_t count =
        std::min(encoding::kBlockValues, values.size() - start);
    const size_t bytes =
        encoding::EncodeBlock(values.subspan(start, count), scratch);
    SJ_RETURN_NOT_OK(writer.Append(scratch, bytes));
    if (fence_pre != nullptr) fence_pre->push_back(values[start]);
  }
  return writer.Flush();
}

Status ValidateCompressedColumn(const SimulatedDisk& disk,
                                const CompressedColumn& column,
                                const std::string& what) {
  uint64_t h = kFnvBasis;
  Page page;
  PageId loaded = 0;
  bool have_page = false;
  for (const CompressedBlockRef& ref : column.blocks) {
    if (static_cast<size_t>(ref.offset) + ref.bytes > kPageSize) {
      return Status::InvalidArgument("compressed image: the " + what +
                                     "'s block directory overruns a page");
    }
    if (!have_page || loaded != ref.page) {
      SJ_RETURN_NOT_OK(disk.Read(ref.page, &page));
      loaded = ref.page;
      have_page = true;
    }
    h = FnvMixBytes(h, page.bytes + ref.offset, ref.bytes);
  }
  if (h != column.image_digest) {
    return Status::InvalidArgument(
        "corrupt compressed image: the " + what +
        "'s encoded blocks digest to " + std::to_string(h) +
        " but the directory expects " + std::to_string(column.image_digest) +
        "; a block is corrupt or stale");
  }
  return Status::OK();
}

Result<std::unique_ptr<CompressedDocTable>> CompressedDocTable::Create(
    const DocTable& doc, SimulatedDisk* disk) {
  if (disk == nullptr) {
    return Status::InvalidArgument(
        "CompressedDocTable: disk must not be null");
  }
  auto compressed =
      std::unique_ptr<CompressedDocTable>(new CompressedDocTable());
  compressed->size_ = doc.size();
  compressed->height_ = doc.height();
  compressed->source_digest_ = DocColumnsDigest(doc);

  SJ_RETURN_NOT_OK(
      WriteCompressedColumn(disk, doc.posts(), &compressed->post_));
  SJ_RETURN_NOT_OK(
      WriteCompressedByteColumn(disk, doc.kinds(), &compressed->kind_));
  SJ_RETURN_NOT_OK(
      WriteCompressedByteColumn(disk, doc.levels(), &compressed->level_));
  SJ_RETURN_NOT_OK(
      WriteCompressedColumn(disk, doc.parents(), &compressed->parent_));
  SJ_RETURN_NOT_OK(
      WriteCompressedColumn(disk, doc.tags_column(), &compressed->tag_));
  return compressed;
}

size_t CompressedDocTable::page_count() const {
  return post_.pages.size() + kind_.pages.size() + level_.pages.size() +
         parent_.pages.size() + tag_.pages.size();
}

uint64_t CompressedDocTable::encoded_bytes() const {
  return post_.encoded_bytes + kind_.encoded_bytes + level_.encoded_bytes +
         parent_.encoded_bytes + tag_.encoded_bytes;
}

Status CompressedDocTable::ValidateImage(const SimulatedDisk& disk) const {
  SJ_RETURN_NOT_OK(ValidateCompressedColumn(disk, post_, "post column"));
  SJ_RETURN_NOT_OK(ValidateCompressedColumn(disk, kind_, "kind column"));
  SJ_RETURN_NOT_OK(ValidateCompressedColumn(disk, level_, "level column"));
  SJ_RETURN_NOT_OK(ValidateCompressedColumn(disk, parent_, "parent column"));
  SJ_RETURN_NOT_OK(ValidateCompressedColumn(disk, tag_, "tag column"));
  return Status::OK();
}

Result<NodeSequence> CompressedStaircaseJoin(const CompressedDocTable& doc,
                                             BufferPool* pool,
                                             const NodeSequence& context,
                                             Axis axis,
                                             const StaircaseOptions& options,
                                             JoinStats* stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  CompressedDocAccessor acc(doc, pool);
  return internal::StaircaseJoinOver(acc, context, axis, options, stats);
}

Result<NodeSequence> ParallelCompressedStaircaseJoin(
    const CompressedDocTable& doc, BufferPool* pool,
    const NodeSequence& context, Axis axis, const StaircaseOptions& options,
    unsigned num_threads, JoinStats* stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  const bool desc =
      axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf;
  const bool anc = axis == Axis::kAncestor || axis == Axis::kAncestorOrSelf;
  // Same pin budget as the paged parallel join: the staircase kernels
  // read only post/kind/level, so each worker holds at most three pinned
  // pages, plus one for the driver's pruning accessor.
  unsigned max_workers = static_cast<unsigned>((pool->capacity() - 1) / 3);
  unsigned workers = std::min(num_threads, std::max(1u, max_workers));
  if ((!desc && !anc) || workers < 2 || context.size() < 2) {
    return CompressedStaircaseJoin(doc, pool, context, axis, options, stats);
  }
  return internal::ParallelStaircaseJoinOver(
      [&doc, pool] { return CompressedDocAccessor(doc, pool); }, context,
      axis, options, workers, stats);
}

Result<NodeSequence> CompressedAxisCursorStep(const CompressedDocTable& doc,
                                              BufferPool* pool,
                                              const NodeSequence& context,
                                              Axis axis,
                                              const AxisNodeTest& test,
                                              JoinStats* stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  CompressedDocAccessor acc(doc, pool);
  return internal::AxisStepOver(acc, context, axis, test, stats);
}

Result<NodeSequence> CompressedFilterByTest(const CompressedDocTable& doc,
                                            BufferPool* pool,
                                            const NodeSequence& nodes,
                                            const AxisNodeTest& test) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  CompressedDocAccessor acc(doc, pool);
  NodeSequence out = internal::FilterSequenceOver(acc, nodes, test);
  if (!acc.ok()) return acc.status();
  return out;
}

}  // namespace sj::storage
