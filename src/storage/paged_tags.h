// Paged tag fragments: fragmentation by tag name behind the buffer pool.
//
// PagedTagIndex lays every element tag's pre/post fragment columns
// (core/tag_view.h) out in disk pages behind the shared BufferPool, with
// a per-fragment page directory. PagedFragmentCursor implements the
// FragmentCursor concept (core/fragment_cursor.h) over one such
// fragment, and PagedStaircaseJoinView instantiates the ONE fragment
// join body (core/fragment_impl.h) with it -- the IO-conscious twin of
// StaircaseJoinView. Name-test pushdown (paper Section 4.4) then turns
// "nodes never touched" into fragment pages never read, instead of
// silently bypassing the pool through the memory-resident TagIndex.
//
// Only the page directory and the per-page fence keys (the first pre
// rank on each pre page, for IO-free page location during binary
// search) stay memory-resident -- the same directory-vs-data split
// PagedDocTable uses for its column page tables.

#ifndef STAIRJOIN_STORAGE_PAGED_TAGS_H_
#define STAIRJOIN_STORAGE_PAGED_TAGS_H_

#include <cstring>
#include <memory>
#include <vector>

#include "core/fragment_cursor.h"
#include "core/staircase_join.h"
#include "core/twig_join.h"
#include "encoding/doc_table.h"
#include "storage/buffer_pool.h"
#include "storage/paged_accessor.h"
#include "storage/paged_doc.h"

namespace sj::storage {

/// FNV-1a digest identifying the encoding a PagedTagIndex images:
/// DocColumnsDigest continued over the tag column (fragments depend on
/// tags, which the plain doc digest does not cover -- two documents with
/// identical post/kind/level columns can still fragment differently).
uint64_t FragmentColumnsDigest(const DocTable& doc);

/// Same, seeded with an already-computed DocColumnsDigest(doc) so the
/// post/kind/level columns are not scanned a second time.
uint64_t FragmentColumnsDigest(const DocTable& doc, uint64_t doc_digest);

/// \brief One tag's paged projection: page directory + resident fences.
struct PagedFragment {
  TagId tag = kNoTag;
  /// Number of element nodes carrying the tag (== slots).
  uint32_t size = 0;
  /// Pages of the fragment's pre column (kRanksPerPage slots each).
  std::vector<PageId> pre_pages;
  /// Pages of the fragment's post column, parallel to pre_pages.
  std::vector<PageId> post_pages;
  /// First pre rank on each pre page (resident fence keys, so
  /// LowerBound touches at most one data page).
  std::vector<NodeId> fence_pre;
};

/// \brief Fragmentation by tag name on disk pages: one paged pre/post
/// fragment per element tag, built in a single scan of the document.
class PagedTagIndex {
 public:
  /// Writes every tag fragment of `doc` onto `disk` (borrowed; must
  /// outlive this). Use the same disk as the document's PagedDocTable so
  /// one BufferPool serves both.
  static Result<std::unique_ptr<PagedTagIndex>> Create(const DocTable& doc,
                                                       SimulatedDisk* disk);

  /// The fragment for `tag` (empty fragment for unknown/attribute-only
  /// tags).
  const PagedFragment& fragment(TagId tag) const {
    if (tag == kNoTag || tag >= fragments_.size()) return empty_;
    return fragments_[tag];
  }

  /// Number of element nodes carrying `tag` -- the selectivity statistic
  /// the pushdown cost model uses (resident; reading it faults nothing).
  uint64_t tag_count(TagId tag) const { return fragment(tag).size; }

  /// FragmentColumnsDigest of the source table, captured at Create time.
  uint64_t source_digest() const { return source_digest_; }

  /// Total pages written for all fragments (for the bench report).
  size_t page_count() const { return page_count_; }

  /// Resident bytes of the page directory + fence keys.
  uint64_t directory_bytes() const;

 private:
  PagedTagIndex() = default;

  std::vector<PagedFragment> fragments_;  // indexed by TagId
  PagedFragment empty_;
  uint64_t source_digest_ = 0;
  size_t page_count_ = 0;
};

/// \brief FragmentCursor over one paged fragment behind a buffer pool.
///
/// Borrows the fragment and the pool; both must outlive the cursor. One
/// cursor holds up to two pinned pages (one per column); sequential
/// scans pin each page of their range once. LowerBound locates the page
/// through the resident fence keys and binary-searches inside it, so a
/// whole-fragment search costs at most one page pin. Sticky-error like
/// PagedDocAccessor: reads return 0 (LowerBound: size()) after the
/// first pool failure and the join surfaces status() once.
class PagedFragmentCursor {
 public:
  PagedFragmentCursor(const PagedFragment& frag, BufferPool* pool)
      : frag_(&frag), pool_(pool), pre_guard_(pool), post_guard_(pool) {}

  size_t size() const { return frag_->size; }

  NodeId Pre(size_t slot) {
    if (!status_.ok()) return 0;
    const size_t p = slot / kRanksPerPage;
    pre_guard_.AnnounceSwitch(frag_->pre_pages[p],
                              frag_->pre_pages[PageAhead(p)]);
    const uint8_t* page = pre_guard_.Get(frag_->pre_pages[p], &status_);
    if (page == nullptr) return 0;
    uint32_t value;
    std::memcpy(&value, page + (slot % kRanksPerPage) * sizeof(uint32_t),
                sizeof(uint32_t));
    return value;
  }

  uint32_t Post(size_t slot) {
    if (!status_.ok()) return 0;
    const size_t p = slot / kRanksPerPage;
    post_guard_.AnnounceSwitch(frag_->post_pages[p],
                               frag_->post_pages[PageAhead(p)]);
    const uint8_t* page = post_guard_.Get(frag_->post_pages[p], &status_);
    if (page == nullptr) return 0;
    uint32_t value;
    std::memcpy(&value, page + (slot % kRanksPerPage) * sizeof(uint32_t),
                sizeof(uint32_t));
    return value;
  }

  /// First slot with pre rank >= `pre` (size() if none, or after a pool
  /// failure). Fence keys narrow the search to one pre page.
  size_t LowerBound(uint64_t pre) {
    if (!status_.ok() || frag_->size == 0) return frag_->size;
    const std::vector<NodeId>& fence = frag_->fence_pre;
    if (pre <= fence.front()) return 0;
    // Last page whose first pre rank is < `pre`; the answer lies on it
    // (or right past its end, which is the next page's first slot).
    size_t page = static_cast<size_t>(
                      std::lower_bound(fence.begin(), fence.end(), pre) -
                      fence.begin()) -
                  1;
    // A seek lands here next: the pre page is read immediately below and
    // the join reads the slot's post rank right after, so announce both
    // pages -- plus a one-page readahead window for the forward scan
    // that follows -- as one batched fault instead of synchronous seeks.
    if (pool_->prefetch_enabled()) {
      PageId hints[4];
      size_t count = 0;
      hints[count++] = frag_->pre_pages[page];
      hints[count++] = frag_->post_pages[page];
      if (page + 1 < frag_->pre_pages.size()) {
        hints[count++] = frag_->pre_pages[page + 1];
        hints[count++] = frag_->post_pages[page + 1];
      }
      pool_->Prefetch({hints, count});
    }
    const uint8_t* bytes = pre_guard_.Get(frag_->pre_pages[page], &status_);
    if (bytes == nullptr) return frag_->size;
    size_t begin = page * kRanksPerPage;
    size_t lo = begin;
    size_t hi = std::min<size_t>(begin + kRanksPerPage, frag_->size);
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      uint32_t value;
      std::memcpy(&value, bytes + (mid - begin) * sizeof(uint32_t),
                  sizeof(uint32_t));
      if (value < pre) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// A join jumps to `slot`: drop held pages the jump leaves behind so
  /// the pool can evict them (pages in between are never read), and --
  /// when prefetching is on -- announce the landing pages of the columns
  /// being scanned as one batched fault.
  void SkipTo(size_t slot) {
    if (slot >= frag_->size) {
      pre_guard_.Release();
      post_guard_.Release();
      return;
    }
    if (pool_->prefetch_enabled()) {
      // Landing pages plus a one-page readahead window per column (see
      // PagedDocAccessor::SkipTo): the leapfrog scans forward from the
      // landing slot, so the next page rides the same seek.
      PageId hints[4];
      size_t count = 0;
      const size_t page = slot / kRanksPerPage;
      AddSkipHint(pre_guard_, frag_->pre_pages[page], hints, &count);
      AddSkipHint(post_guard_, frag_->post_pages[page], hints, &count);
      if (page + 1 < frag_->pre_pages.size()) {
        AddSkipHint(pre_guard_, frag_->pre_pages[page + 1], hints, &count);
        AddSkipHint(post_guard_, frag_->post_pages[page + 1], hints, &count);
      }
      if (count > 0) pool_->Prefetch({hints, count});
    }
    pre_guard_.ReleaseUnless(frag_->pre_pages[slot / kRanksPerPage]);
    post_guard_.ReleaseUnless(frag_->post_pages[slot / kRanksPerPage]);
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  /// The page index after `p` (clamped to `p` on the last page, which
  /// degenerates the readahead hint into the landing page itself): the
  /// second half of AnnounceSwitch hints.
  size_t PageAhead(size_t p) const {
    return p + 1 < frag_->pre_pages.size() ? p + 1 : p;
  }

  const PagedFragment* frag_;
  BufferPool* pool_;
  PageGuard pre_guard_;
  PageGuard post_guard_;
  Status status_;
};

static_assert(FragmentCursor<PagedFragmentCursor>);

/// \brief Staircase join over a paged tag fragment: the IO-conscious
/// name-test pushdown path.
///
/// A shim over the backend-generic fragment join (core/fragment_impl.h)
/// instantiated with PagedFragmentCursor + PagedDocAccessor. Semantics
/// identical to StaircaseJoinView; fragment slot reads AND context
/// postorder reads go through `pool` (context nodes are doc rows, as the
/// paper stresses), so PoolStats charges the whole pushed-down step.
/// `doc` and `tags` must be built over the same disk as `pool`.
Result<NodeSequence> PagedStaircaseJoinView(
    const PagedTagIndex& tags, TagId tag, const PagedDocTable& doc,
    BufferPool* pool, const NodeSequence& context, Axis axis,
    const StaircaseOptions& options = {}, JoinStats* stats = nullptr);

/// \brief Holistic twig join over paged tag fragments: the IO-conscious
/// chain-collapse path.
///
/// A shim over the backend-generic twig body (core/twig_impl.h)
/// instantiated with one PagedFragmentCursor per level plus a
/// PagedDocAccessor. Semantics identical to TwigJoin; every fragment
/// slot read AND every context/candidate postorder or level read is
/// charged to `pool`, and leapfrogged slots become fragment pages never
/// faulted. Holds up to 2k + 5 pinned pages at once (two per cursor,
/// five for the accessor) -- the pool must have at least that many
/// frames. `doc` and `tags` must be built over the same disk as `pool`.
Result<NodeSequence> PagedTwigJoin(
    const PagedTagIndex& tags, const PagedDocTable& doc, BufferPool* pool,
    const NodeSequence& context, const std::vector<TwigLevel>& levels,
    const StaircaseOptions& options = {}, JoinStats* stats = nullptr,
    std::vector<TwigLevelStats>* level_stats = nullptr);

}  // namespace sj::storage

#endif  // STAIRJOIN_STORAGE_PAGED_TAGS_H_
