// CompressedDocAccessor: the compressed-column backend of the staircase
// join and the non-staircase axis cursors.
//
// Implements the DocAccessor concept (core/doc_accessor.h) over a
// CompressedDocTable: every post/kind/level/parent/tag read pins the
// page holding the rank's block through the BufferPool and decodes the
// block into a small per-column frame cache. A block is decoded at most
// once per visit -- sequential scans decode each block exactly once, and
// reads within the cached block touch neither the pool nor the codec.
// SkipTo releases the pages a jump leaves behind (block-granular via the
// resident directory), so the paper's "nodes never touched" becomes
// *compressed* pages never read -- strictly fewer of them than the
// uncompressed image at equal page size.
//
// Error model: identical to PagedDocAccessor -- sticky-error; the first
// pool or codec failure is recorded, subsequent reads return 0 without
// touching the pool, and the join driver surfaces status() once.

#ifndef STAIRJOIN_STORAGE_COMPRESSED_ACCESSOR_H_
#define STAIRJOIN_STORAGE_COMPRESSED_ACCESSOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "core/doc_accessor.h"
#include "encoding/block_codec.h"
#include "storage/buffer_pool.h"
#include "storage/compressed_doc.h"
#include "storage/paged_accessor.h"

namespace sj::storage {

/// One column's read cursor: a PageGuard over the block's page plus the
/// decoded block cached in the frame. Holds at most one pinned page;
/// moving to a block on another page unpins the previous one (blocks
/// sharing a page cost a single pin per visit).
class CompressedColumnCursor {
 public:
  CompressedColumnCursor(const CompressedColumn& col, BufferPool* pool)
      : col_(&col), guard_(pool) {}

  /// Decoded value at `index`; 0 after a failure (recorded in *status).
  uint32_t At(uint64_t index, Status* status) {
    const size_t b = static_cast<size_t>(index / encoding::kBlockValues);
    if (b != block_ && !Load(b, status)) return 0;
    return decoded_[index % encoding::kBlockValues];
  }

  /// A kernel jumps to `index`: drop the held page unless the target
  /// block lives on it. The decoded cache stays valid -- it is a copy.
  void SkipTo(uint64_t index) {
    if (index >= col_->values) {
      guard_.Release();
      return;
    }
    guard_.ReleaseUnless(PageFor(index));
  }

  /// The disk page holding `index`'s block (for prefetch hints).
  PageId PageFor(uint64_t index) const {
    return col_->blocks[static_cast<size_t>(index / encoding::kBlockValues)]
        .page;
  }

  /// The guard the hint emission inspects (holding()/held()).
  const PageGuard& guard() const { return guard_; }

 private:
  bool Load(size_t b, Status* status) {
    const CompressedBlockRef& ref = col_->blocks[b];
    // Announce the page switch with the column's NEXT page as the
    // readahead window, so sequential block-boundary crossings batch
    // like SkipTo leaps. Several blocks share a page, so "next page" is
    // the page of the first block past the landing page -- block page
    // ids are non-decreasing (BlockPageWriter appends), hence the
    // binary search. Clamps to the landing page on the last page.
    guard_.AnnounceSwitch(ref.page, NextPageAfter(b, ref.page));
    const uint8_t* page = guard_.Get(ref.page, status);
    if (page == nullptr) return false;
    Status decoded = encoding::DecodeBlock(
        page + ref.offset, ref.bytes, col_->BlockValueCount(b), decoded_);
    if (!decoded.ok()) {
      if (status->ok()) *status = decoded;
      return false;
    }
    block_ = b;
    return true;
  }

  /// Page of the first block past `page`, searching from block `b`;
  /// `page` itself when the column ends there (degenerate hint).
  PageId NextPageAfter(size_t b, PageId page) const {
    auto it = std::upper_bound(
        col_->blocks.begin() + static_cast<ptrdiff_t>(b), col_->blocks.end(),
        page, [](PageId p, const CompressedBlockRef& r) { return p < r.page; });
    return it != col_->blocks.end() ? it->page : page;
  }

  const CompressedColumn* col_;
  PageGuard guard_;
  size_t block_ = static_cast<size_t>(-1);
  uint32_t decoded_[encoding::kBlockValues];
};

/// \brief DocAccessor over compressed columns behind a buffer pool.
///
/// Borrows the table and the pool; both must outlive the accessor. One
/// accessor holds up to five pinned pages (one per column actually
/// read; the staircase kernels touch at most post/kind/level, the axis
/// cursors additionally parent/tag) plus five decoded-block frames.
/// Accessors are not thread-safe, but independent accessors may share
/// one pool -- the parallel compressed join gives each worker its own.
class CompressedDocAccessor {
 public:
  CompressedDocAccessor(const CompressedDocTable& doc, BufferPool* pool)
      : size_(doc.size()),
        pool_(pool),
        post_(doc.post(), pool),
        kind_(doc.kind(), pool),
        level_(doc.level(), pool),
        parent_(doc.parent(), pool),
        tag_(doc.tag(), pool) {}

  size_t size() const { return size_; }

  uint32_t Post(uint64_t pre) {
    if (!status_.ok()) return 0;
    return post_.At(pre, &status_);
  }
  uint8_t Kind(uint64_t pre) {
    if (!status_.ok()) return 0;
    return static_cast<uint8_t>(kind_.At(pre, &status_));
  }
  uint8_t Level(uint64_t pre) {
    if (!status_.ok()) return 0;
    return static_cast<uint8_t>(level_.At(pre, &status_));
  }
  NodeId Parent(uint64_t pre) {
    if (!status_.ok()) return 0;
    return parent_.At(pre, &status_);
  }
  TagId Tag(uint64_t pre) {
    if (!status_.ok()) return 0;
    return tag_.At(pre, &status_);
  }

  /// A kernel jumps to pre rank `pre`: release the pages the jump
  /// leaves behind so the pool can evict them, and -- when prefetching
  /// is on -- announce the landing blocks' pages of the columns being
  /// scanned so the pool faults them in ONE batched read.
  void SkipTo(uint64_t pre) {
    if (pool_->prefetch_enabled() && pre < size_) {
      // Landing block's page per active column, plus a one-block
      // readahead window: a leap is usually followed by a forward scan,
      // so the next block's page rides the same seek (see
      // PagedDocAccessor::SkipTo).
      PageId hints[10];
      size_t count = 0;
      AddSkipHint(post_.guard(), post_.PageFor(pre), hints, &count);
      AddSkipHint(kind_.guard(), kind_.PageFor(pre), hints, &count);
      AddSkipHint(level_.guard(), level_.PageFor(pre), hints, &count);
      AddSkipHint(parent_.guard(), parent_.PageFor(pre), hints, &count);
      AddSkipHint(tag_.guard(), tag_.PageFor(pre), hints, &count);
      if (pre + encoding::kBlockValues < size_) {
        const uint64_t next = pre + encoding::kBlockValues;
        AddSkipHint(post_.guard(), post_.PageFor(next), hints, &count);
        AddSkipHint(kind_.guard(), kind_.PageFor(next), hints, &count);
        AddSkipHint(level_.guard(), level_.PageFor(next), hints, &count);
        AddSkipHint(parent_.guard(), parent_.PageFor(next), hints, &count);
        AddSkipHint(tag_.guard(), tag_.PageFor(next), hints, &count);
      }
      if (count > 0) pool_->Prefetch({hints, count});
    }
    post_.SkipTo(pre);
    kind_.SkipTo(pre);
    level_.SkipTo(pre);
    parent_.SkipTo(pre);
    tag_.SkipTo(pre);
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  size_t size_;
  BufferPool* pool_;
  CompressedColumnCursor post_;
  CompressedColumnCursor kind_;
  CompressedColumnCursor level_;
  CompressedColumnCursor parent_;
  CompressedColumnCursor tag_;
  Status status_;
};

static_assert(DocAccessor<CompressedDocAccessor>);

}  // namespace sj::storage

#endif  // STAIRJOIN_STORAGE_COMPRESSED_ACCESSOR_H_
