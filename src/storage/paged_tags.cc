#include "storage/paged_tags.h"

#include <memory>

#include "core/fragment_impl.h"
#include "core/tag_view.h"
#include "core/twig_impl.h"

namespace sj::storage {

uint64_t FragmentColumnsDigest(const DocTable& doc) {
  return FragmentColumnsDigest(doc, DocColumnsDigest(doc));
}

uint64_t FragmentColumnsDigest(const DocTable& doc, uint64_t doc_digest) {
  uint64_t h = doc_digest;
  for (uint32_t tag : doc.tags_column()) h = FnvMixU32(h, tag);
  return h;
}

Result<std::unique_ptr<PagedTagIndex>> PagedTagIndex::Create(
    const DocTable& doc, SimulatedDisk* disk) {
  if (disk == nullptr) {
    return Status::InvalidArgument("PagedTagIndex: disk must not be null");
  }
  auto paged = std::unique_ptr<PagedTagIndex>(new PagedTagIndex());
  paged->source_digest_ = FragmentColumnsDigest(doc);

  // One scan of the document materializes every projection (transient;
  // only the page images and the directory survive).
  TagIndex index(doc);
  paged->fragments_.resize(doc.tags().size());
  for (size_t t = 0; t < paged->fragments_.size(); ++t) {
    const TagView& view = index.view(static_cast<TagId>(t));
    PagedFragment& frag = paged->fragments_[t];
    frag.tag = static_cast<TagId>(t);
    frag.size = static_cast<uint32_t>(view.size());
    SJ_RETURN_NOT_OK(WriteRankColumn(disk, view.pre, &frag.pre_pages));
    SJ_RETURN_NOT_OK(WriteRankColumn(disk, view.post, &frag.post_pages));
    frag.fence_pre.reserve(frag.pre_pages.size());
    for (size_t start = 0; start < view.size(); start += kRanksPerPage) {
      frag.fence_pre.push_back(view.pre[start]);
    }
    paged->page_count_ += frag.pre_pages.size() + frag.post_pages.size();
  }
  return paged;
}

uint64_t PagedTagIndex::directory_bytes() const {
  uint64_t bytes = 0;
  for (const PagedFragment& frag : fragments_) {
    bytes += sizeof(PagedFragment) +
             (frag.pre_pages.capacity() + frag.post_pages.capacity()) *
                 sizeof(PageId) +
             frag.fence_pre.capacity() * sizeof(NodeId);
  }
  return bytes;
}

Result<NodeSequence> PagedStaircaseJoinView(const PagedTagIndex& tags,
                                            TagId tag,
                                            const PagedDocTable& doc,
                                            BufferPool* pool,
                                            const NodeSequence& context,
                                            Axis axis,
                                            const StaircaseOptions& options,
                                            JoinStats* stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  PagedFragmentCursor frag(tags.fragment(tag), pool);
  PagedDocAccessor acc(doc, pool);
  return internal::FragmentStaircaseJoinOver(frag, acc, context, axis, options,
                                             stats);
}

Result<NodeSequence> PagedTwigJoin(const PagedTagIndex& tags,
                                   const PagedDocTable& doc, BufferPool* pool,
                                   const NodeSequence& context,
                                   const std::vector<TwigLevel>& levels,
                                   const StaircaseOptions& options,
                                   JoinStats* stats,
                                   std::vector<TwigLevelStats>* level_stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  // Cursors hold PageGuards (pinned state, non-movable), so they live
  // behind unique_ptrs and the generic body borrows raw pointers.
  std::vector<std::unique_ptr<PagedFragmentCursor>> owned;
  std::vector<PagedFragmentCursor*> cursors;
  owned.reserve(levels.size());
  cursors.reserve(levels.size());
  for (const TwigLevel& level : levels) {
    owned.push_back(std::make_unique<PagedFragmentCursor>(
        tags.fragment(level.tag), pool));
    cursors.push_back(owned.back().get());
  }
  PagedDocAccessor acc(doc, pool);
  return internal::TwigJoinOver(cursors, acc, context, levels, options, stats,
                                level_stats);
}

}  // namespace sj::storage
