// Paged storage substrate: simulated disk + LRU buffer pool.
//
// The paper's future-work section asks how staircase join behaves in a
// *disk-based* RDBMS. This module provides the substrate to study that on
// a laptop: fixed-size pages on a simulated disk (a RAM image with fault
// accounting -- see DESIGN.md substitutions) behind a pinning LRU buffer
// pool. The paged staircase join (storage/paged_doc.h) runs the Section 3
// algorithms against it; skipping then saves page *faults*, not just CPU.

#ifndef STAIRJOIN_STORAGE_BUFFER_POOL_H_
#define STAIRJOIN_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace sj::storage {

/// Page size in bytes (2048 x 4-byte ranks per page).
inline constexpr size_t kPageSize = 8192;

/// Page identifier on a disk.
using PageId = uint32_t;

/// \brief A fixed-size page image.
struct Page {
  uint8_t bytes[kPageSize];
};

/// \brief Simulated disk: an array of pages with read accounting.
///
/// Reads memcpy the page image (so buffer frames are genuinely distinct
/// from the "disk"), and count as faults in the statistics.
class SimulatedDisk {
 public:
  /// Appends a page; returns its id.
  PageId Allocate();

  /// Number of pages.
  size_t page_count() const { return pages_.size(); }

  /// Copies page `id` into `out`; OutOfRange for bad ids.
  Status Read(PageId id, Page* out) const;

  /// Overwrites page `id`; OutOfRange for bad ids.
  Status Write(PageId id, const Page& in);

  /// Total Read calls served (the "physical I/O" count).
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  // Atomic so that pools on different threads may share one disk.
  mutable std::atomic<uint64_t> reads_{0};
};

/// Buffer pool counters.
struct PoolStats {
  uint64_t pins = 0;       ///< logical page requests
  uint64_t hits = 0;       ///< served from a resident frame
  uint64_t faults = 0;     ///< required a disk read
  uint64_t evictions = 0;  ///< clean frames dropped for replacement
};

/// \brief Pinning LRU buffer pool over a SimulatedDisk.
///
/// Pin returns a stable pointer to the frame holding the page and holds
/// the frame until the matching Unpin; unpinned frames are replaced in
/// least-recently-used order when capacity is exceeded.
///
/// Thread safety: Pin/Unpin/FlushAll/ResetStats are serialized by an
/// internal mutex, so independent cursors (e.g. the workers of the
/// parallel paged staircase join) may share one pool. Frame pointers
/// stay valid while pinned regardless of concurrent evictions. stats()
/// returns a snapshot; read it quiesced for exact counts.
class BufferPool {
 public:
  /// Creates a pool of `capacity_pages` frames over `disk` (borrowed).
  BufferPool(SimulatedDisk* disk, size_t capacity_pages);

  /// Pins page `id` and returns its frame bytes; faults it in if needed.
  /// Fails with Internal when every frame is pinned (pool too small).
  Result<const uint8_t*> Pin(PageId id);

  /// Releases one pin on `id`; InvalidArgument if not pinned.
  Status Unpin(PageId id);

  /// Counters since construction (copied under the lock).
  PoolStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Zeroes the counters (keeps resident pages).
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = PoolStats{};
  }

  /// Drops every unpinned frame (a cold start for experiments).
  void FlushAll();

  /// Number of frames currently holding pages.
  size_t resident_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.size();
  }
  size_t capacity() const { return capacity_; }

 private:
  struct Frame {
    Page page;
    uint32_t pin_count = 0;
    std::list<PageId>::iterator lru_pos;  // valid iff pin_count == 0
    bool in_lru = false;
  };

  Status EvictOne();  // requires mu_ held

  mutable std::mutex mu_;
  SimulatedDisk* disk_;
  size_t capacity_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::list<PageId> lru_;  // front = least recently used
  PoolStats stats_;
};

}  // namespace sj::storage

#endif  // STAIRJOIN_STORAGE_BUFFER_POOL_H_
