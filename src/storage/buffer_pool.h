// Paged storage substrate: simulated disk + sharded LRU buffer pool.
//
// The paper's future-work section asks how staircase join behaves in a
// *disk-based* RDBMS. This module provides the substrate to study that on
// a laptop: fixed-size pages on a simulated disk (a RAM image with fault
// accounting -- see DESIGN.md substitutions) behind a pinning LRU buffer
// pool. The paged staircase join (storage/paged_doc.h) runs the Section 3
// algorithms against it; skipping then saves page *faults*, not just CPU.

#ifndef STAIRJOIN_STORAGE_BUFFER_POOL_H_
#define STAIRJOIN_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sj::storage {

/// Page size in bytes (2048 x 4-byte ranks per page).
inline constexpr size_t kPageSize = 8192;

/// Page identifier on a disk.
using PageId = uint32_t;

/// \brief A fixed-size page image.
struct Page {
  uint8_t bytes[kPageSize];
};

/// Per-page transfer cost of a batched read, as a divisor of the seek
/// latency: page 2..n of one request each cost read_latency_micros /
/// kBatchTransferDivisor. The 10:1 seek-to-transfer ratio is the classic
/// rotating-disk shape; the exact value only matters for the *relative*
/// win of batching, which benches measure in wall-clock.
inline constexpr uint32_t kBatchTransferDivisor = 10;

/// \brief Simulated disk: an array of pages with read accounting.
///
/// Reads memcpy the page image (so buffer frames are genuinely distinct
/// from the "disk"), and count as faults in the statistics.
class SimulatedDisk {
 public:
  /// Appends a page; returns its id.
  PageId Allocate();

  /// Number of pages.
  size_t page_count() const { return pages_.size(); }

  /// Copies page `id` into `out`; OutOfRange for bad ids.
  Status Read(PageId id, Page* out) const;

  /// Copies pages `ids[i]` into `*outs[i]` as ONE device request: the
  /// seek latency is charged once, plus a per-page transfer cost of
  /// read_latency_micros() / kBatchTransferDivisor for each page after
  /// the first (a single-page batch costs exactly what Read costs).
  /// Every page still counts in reads(); the request counts once in
  /// batch_reads(). OutOfRange if any id is bad (no page is read).
  Status ReadBatch(std::span<const PageId> ids,
                   std::span<Page* const> outs) const;

  /// Total batched requests served via ReadBatch.
  uint64_t batch_reads() const {
    return batch_reads_.load(std::memory_order_relaxed);
  }

  /// Overwrites page `id`; OutOfRange for bad ids.
  Status Write(PageId id, const Page& in);

  /// Total Read calls served (the "physical I/O" count).
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }

  /// Simulated per-read latency in microseconds (default 0: RAM-speed).
  /// With a latency, every fault costs wall time like a real device --
  /// the concurrency experiments use this to show that a pool which
  /// faults while holding one global latch serializes every session
  /// behind each disk read, while the sharded latch overlaps them.
  void set_read_latency_micros(uint32_t micros) {
    read_latency_micros_.store(micros, std::memory_order_relaxed);
  }
  uint32_t read_latency_micros() const {
    return read_latency_micros_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  // Atomic so that pools on different threads may share one disk.
  mutable std::atomic<uint64_t> reads_{0};
  mutable std::atomic<uint64_t> batch_reads_{0};
  std::atomic<uint32_t> read_latency_micros_{0};
};

/// Buffer pool counters.
struct PoolStats {
  uint64_t pins = 0;        ///< logical page requests
  uint64_t hits = 0;        ///< served from a resident frame
  uint64_t faults = 0;      ///< required a disk read
  uint64_t evictions = 0;   ///< clean frames dropped for replacement
  uint64_t prefetched = 0;  ///< faults issued by Prefetch (also in faults)

  void MergeFrom(const PoolStats& other) {
    pins += other.pins;
    hits += other.hits;
    faults += other.faults;
    evictions += other.evictions;
    prefetched += other.prefetched;
  }
};

/// \brief Pinning LRU buffer pool over a SimulatedDisk, with a sharded
/// latch for concurrent callers.
///
/// Pin returns a stable pointer to the frame holding the page and holds
/// the frame until the matching Unpin; unpinned frames are replaced in
/// least-recently-used order when capacity is exceeded.
///
/// Thread safety: the page table, LRU list and counters are partitioned
/// into `latch_shards` independently latched shards (pages map to shards
/// round-robin by id, so the interleaved column pages of one document
/// spread evenly). Pin/Unpin on different shards never contend, which is
/// what lets many concurrent sessions share one pool without serializing
/// on a single global mutex. Counters are kept exactly: each shard's
/// PoolStats is updated under its own latch and stats() aggregates the
/// shards; read it quiesced for a consistent cross-shard snapshot. Frame
/// pointers stay valid while pinned regardless of concurrent evictions.
///
/// Sharding trades LRU globality for concurrency: each shard runs LRU
/// over its own slice of the capacity (capacity is split evenly, every
/// shard gets at least one frame). With latch_shards == 1 (the default)
/// the behavior is the classic single-latch global-LRU pool.
class BufferPool {
 public:
  /// Creates a pool of `capacity_pages` frames over `disk` (borrowed),
  /// partitioned into `latch_shards` shards (clamped to [1,
  /// capacity_pages] so every shard owns at least one frame).
  BufferPool(SimulatedDisk* disk, size_t capacity_pages,
             size_t latch_shards = 1);

  /// Pins page `id` and returns its frame bytes; faults it in if needed.
  /// Fails with Internal when every frame of the page's shard is pinned
  /// (pool too small for the concurrent pin set).
  Result<const uint8_t*> Pin(PageId id);

  /// Releases one pin on `id`; InvalidArgument if not pinned.
  Status Unpin(PageId id);

  /// Prefetch hint: faults the absent pages among `ids` in ONE batched
  /// disk request (SimulatedDisk::ReadBatch -- one seek, per-page
  /// transfer) and parks them unpinned at the LRU tail, so the pins the
  /// cursor issues right after a SkipTo leap land as hits.
  ///
  /// Strictly best-effort and never an error: a no-op unless
  /// set_prefetch_enabled(true); out-of-range ids, duplicate ids,
  /// already-resident pages and shards whose frames are all pinned are
  /// silently skipped. A wrong or stale hint therefore costs at most the
  /// absent pages it named -- it can never evict a pinned frame, replace
  /// a resident page, or surface a wrong result. Prefetched pages count
  /// in both `faults` (they are disk reads) and `prefetched`.
  ///
  /// Hints that boil down to fewer than two absent pages are dropped: a
  /// batch of one amortizes no seek, so it could only match the cost of
  /// the on-demand fault while risking a wasted read.
  void Prefetch(std::span<const PageId> ids);

  /// Prefetch hints are dropped unless enabled (default off, so exact
  /// fault accounting of existing experiments is untouched).
  void set_prefetch_enabled(bool enabled) {
    prefetch_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool prefetch_enabled() const {
    return prefetch_enabled_.load(std::memory_order_relaxed);
  }

  /// Counters since construction (aggregated over the shards; each shard
  /// is copied under its latch).
  PoolStats stats() const;

  /// Zeroes the counters (keeps resident pages).
  void ResetStats();

  /// Drops every unpinned frame (a cold start for experiments).
  void FlushAll();

  /// Number of frames currently holding pages.
  size_t resident_pages() const;

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Frame {
    Page page;
    uint32_t pin_count = 0;
    std::list<PageId>::iterator lru_pos;  // valid iff pin_count == 0
    bool in_lru = false;
  };

  /// One independently latched slice of the pool. The frame table, LRU
  /// list and counters are all guarded by the shard latch -- enforced at
  /// compile time by Clang Thread Safety Analysis (-DSJ_THREAD_SAFETY=ON).
  struct Shard {
    mutable Mutex mu;
    /// Set once in the BufferPool constructor, before the pool is shared;
    /// immutable afterwards, hence not guarded.
    size_t capacity = 0;
    std::unordered_map<PageId, std::unique_ptr<Frame>> frames
        SJ_GUARDED_BY(mu);
    std::list<PageId> lru SJ_GUARDED_BY(mu);  // front = least recently used
    PoolStats stats SJ_GUARDED_BY(mu);
  };

  Shard& ShardFor(PageId id) { return shards_[id % shards_.size()]; }

  static Status EvictOne(Shard* shard) SJ_REQUIRES(shard->mu);

  SimulatedDisk* disk_;
  size_t capacity_;
  std::atomic<bool> prefetch_enabled_{false};
  std::vector<Shard> shards_;
};

}  // namespace sj::storage

#endif  // STAIRJOIN_STORAGE_BUFFER_POOL_H_
