// Compressed document columns and the compressed staircase/axis shims.
//
// CompressedDocTable lays the doc encoding's post/kind/level/parent/tag
// columns out as block-wise FOR/delta images (encoding/block_codec.h) on
// disk pages behind a BufferPool: the third DocAccessor backend the
// cursor abstractions were built for. The join algorithms themselves
// live ONCE in core/ (core/staircase_impl.h, core/axis_impl.h), generic
// over the DocAccessor concept; the shims below instantiate those
// kernels with CompressedDocAccessor (storage/compressed_accessor.h).
// Because a compressed column occupies a fraction of the pages of its
// uncompressed image, the same staircase scan faults strictly fewer
// pages at equal page size -- skipping saves *compressed* pages never
// read, the Leapfrog-style "touch less data per seek" payoff.
//
// Only the block directory (page id + offset + encoded size per block)
// stays memory-resident, the same directory-vs-data split the paged
// backend uses. Integrity: every column carries an FNV-1a digest over
// its *encoded* page bytes, captured at Create time; ValidateImage
// re-reads the disk image and rejects corrupt or stale blocks with a
// Status naming the column -- Database::Finish calls it at open time.

#ifndef STAIRJOIN_STORAGE_COMPRESSED_DOC_H_
#define STAIRJOIN_STORAGE_COMPRESSED_DOC_H_

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/axis_step.h"
#include "core/staircase_join.h"
#include "encoding/block_codec.h"
#include "encoding/doc_table.h"
#include "storage/buffer_pool.h"

namespace sj::storage {

/// One encoded block's location in the disk image. Blocks never span
/// pages; several blocks share a page.
struct CompressedBlockRef {
  PageId page = 0;
  uint16_t offset = 0;  ///< byte offset of the block inside its page
  uint16_t bytes = 0;   ///< encoded size, header included
};

/// \brief One column's compressed image: resident block directory plus
/// the digest of the encoded bytes.
struct CompressedColumn {
  /// Total decoded values (block b holds values
  /// [b * kBlockValues, ...), the last block possibly short).
  uint64_t values = 0;
  std::vector<CompressedBlockRef> blocks;
  /// Pages of this column's image, in allocation order.
  std::vector<PageId> pages;
  /// FNV-1a over the encoded block bytes, in block order.
  uint64_t image_digest = 0;
  /// Total encoded bytes (for compression-ratio reporting).
  uint64_t encoded_bytes = 0;

  /// Number of values decoded from block `b`.
  size_t BlockValueCount(size_t b) const {
    const uint64_t start = static_cast<uint64_t>(b) * encoding::kBlockValues;
    return static_cast<size_t>(
        std::min<uint64_t>(encoding::kBlockValues, values - start));
  }
};

/// Continues an FNV-1a digest over raw bytes (the compressed images are
/// digested byte-wise; FnvMixU32 in storage/paged_doc.h is the uint32
/// flavor of the same mixing step).
uint64_t FnvMixBytes(uint64_t h, const uint8_t* data, size_t n);

/// Encodes one uint32 column block-wise onto `disk`: blocks are packed
/// first-fit onto fresh pages (never spanning one), the directory and
/// the image digest land in `column`. When `fence_pre` is non-null the
/// first value of every block is appended to it -- the resident fence
/// keys of a fragment pre column. The shared encoding path of
/// CompressedDocTable and CompressedTagIndex.
Status WriteCompressedColumn(SimulatedDisk* disk,
                             std::span<const uint32_t> values,
                             CompressedColumn* column,
                             std::vector<uint32_t>* fence_pre = nullptr);

/// Recomputes `column`'s image digest from the disk image and compares
/// it with the captured one; a mismatch (or a directory entry that
/// overruns its page) fails with InvalidArgument naming `what`.
Status ValidateCompressedColumn(const SimulatedDisk& disk,
                                const CompressedColumn& column,
                                const std::string& what);

/// \brief Block-compressed image of a DocTable's five columns.
class CompressedDocTable {
 public:
  /// Encodes `doc`'s columns onto `disk` (borrowed; must outlive this).
  static Result<std::unique_ptr<CompressedDocTable>> Create(
      const DocTable& doc, SimulatedDisk* disk);

  /// Number of encoded nodes.
  size_t size() const { return size_; }
  /// Document height (Eq. (1) bound), copied from the source table.
  uint32_t height() const { return height_; }

  const CompressedColumn& post() const { return post_; }
  const CompressedColumn& kind() const { return kind_; }
  const CompressedColumn& level() const { return level_; }
  const CompressedColumn& parent() const { return parent_; }
  const CompressedColumn& tag() const { return tag_; }

  /// DocColumnsDigest of the source table, captured at Create time (the
  /// coherence check against the resident document; image_digest covers
  /// the encoded bytes themselves).
  uint64_t source_digest() const { return source_digest_; }

  /// Total pages of the compressed image.
  size_t page_count() const;
  /// Total encoded bytes over all five columns.
  uint64_t encoded_bytes() const;

  /// Re-reads every column's blocks from `disk` and verifies them
  /// against the captured image digests. A corrupt or stale block fails
  /// with InvalidArgument naming the column. Called by Database::Finish
  /// at open time, so damage never surfaces lazily mid-query.
  Status ValidateImage(const SimulatedDisk& disk) const;

 private:
  CompressedDocTable() = default;

  size_t size_ = 0;
  uint32_t height_ = 0;
  uint64_t source_digest_ = 0;
  CompressedColumn post_;
  CompressedColumn kind_;
  CompressedColumn level_;
  CompressedColumn parent_;
  CompressedColumn tag_;
};

/// \brief Staircase join over compressed columns.
///
/// A shim over the backend-generic staircase join (core/staircase_impl.h)
/// instantiated with CompressedDocAccessor. Semantics identical to
/// StaircaseJoin / PagedStaircaseJoin for every staircase axis; `stats`
/// counts touched nodes as usual while the pool's PoolStats counts
/// compressed-page pins/faults.
Result<NodeSequence> CompressedStaircaseJoin(
    const CompressedDocTable& doc, BufferPool* pool,
    const NodeSequence& context, Axis axis,
    const StaircaseOptions& options = {}, JoinStats* stats = nullptr);

/// \brief Partitioned parallel staircase join over compressed columns
/// (descendant/ancestor axes; other cases delegate to the serial join).
Result<NodeSequence> ParallelCompressedStaircaseJoin(
    const CompressedDocTable& doc, BufferPool* pool,
    const NodeSequence& context, Axis axis,
    const StaircaseOptions& options = {}, unsigned num_threads = 1,
    JoinStats* stats = nullptr);

/// \brief Set-at-a-time non-staircase axis step over compressed columns
/// (the compressed twin of AxisCursorStep / PagedAxisCursorStep).
Result<NodeSequence> CompressedAxisCursorStep(
    const CompressedDocTable& doc, BufferPool* pool,
    const NodeSequence& context, Axis axis, const AxisNodeTest& test = {},
    JoinStats* stats = nullptr);

/// \brief Node-test filter over compressed columns: keeps the nodes of a
/// document-order sequence that satisfy `test`, reading kind/tag through
/// `pool`.
Result<NodeSequence> CompressedFilterByTest(const CompressedDocTable& doc,
                                            BufferPool* pool,
                                            const NodeSequence& nodes,
                                            const AxisNodeTest& test);

}  // namespace sj::storage

#endif  // STAIRJOIN_STORAGE_COMPRESSED_DOC_H_
