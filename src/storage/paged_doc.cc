#include "storage/paged_doc.h"

#include <algorithm>
#include <cstring>

#include "core/axis_impl.h"
#include "core/staircase_impl.h"
#include "storage/paged_accessor.h"

namespace sj::storage {
namespace {

/// Writes one byte-addressed column (kind/level) onto `disk`.
Status WriteByteColumn(SimulatedDisk* disk, std::span<const uint8_t> column,
                       std::vector<PageId>* pages) {
  for (size_t start = 0; start < column.size(); start += kPageSize) {
    PageId id = disk->Allocate();
    Page page;
    std::memset(page.bytes, 0, kPageSize);
    size_t count = std::min<size_t>(kPageSize, column.size() - start);
    std::memcpy(page.bytes, column.data() + start, count);
    SJ_RETURN_NOT_OK(disk->Write(id, page));
    pages->push_back(id);
  }
  return Status::OK();
}

}  // namespace

uint64_t FnvMixU32(uint64_t h, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    h ^= (value >> shift) & 0xFF;
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

uint64_t DocColumnsDigest(const DocTable& doc) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (uint32_t post : doc.posts()) h = FnvMixU32(h, post);
  for (uint8_t kind : doc.kinds()) {
    h ^= kind;
    h *= 0x100000001B3ULL;
  }
  for (uint8_t level : doc.levels()) {
    h ^= level;
    h *= 0x100000001B3ULL;
  }
  // The axis cursors read parent and tag through the pool as well, so a
  // stale parent/tag page image must fail the digest check too.
  for (uint32_t parent : doc.parents()) h = FnvMixU32(h, parent);
  for (uint32_t tag : doc.tags_column()) h = FnvMixU32(h, tag);
  return h;
}

Status WriteRankColumn(SimulatedDisk* disk, std::span<const uint32_t> column,
                       std::vector<PageId>* pages) {
  for (size_t start = 0; start < column.size(); start += kRanksPerPage) {
    PageId id = disk->Allocate();
    Page page;
    std::memset(page.bytes, 0, kPageSize);
    size_t count = std::min<size_t>(kRanksPerPage, column.size() - start);
    std::memcpy(page.bytes, column.data() + start, count * sizeof(uint32_t));
    SJ_RETURN_NOT_OK(disk->Write(id, page));
    pages->push_back(id);
  }
  return Status::OK();
}

Result<std::unique_ptr<PagedDocTable>> PagedDocTable::Create(
    const DocTable& doc, SimulatedDisk* disk) {
  if (disk == nullptr) {
    return Status::InvalidArgument("PagedDocTable: disk must not be null");
  }
  auto paged = std::unique_ptr<PagedDocTable>(new PagedDocTable());
  paged->size_ = doc.size();
  paged->height_ = doc.height();
  paged->source_digest_ = DocColumnsDigest(doc);

  SJ_RETURN_NOT_OK(WriteRankColumn(disk, doc.posts(), &paged->post_pages_));
  SJ_RETURN_NOT_OK(WriteByteColumn(disk, doc.kinds(), &paged->kind_pages_));
  SJ_RETURN_NOT_OK(WriteByteColumn(disk, doc.levels(), &paged->level_pages_));
  SJ_RETURN_NOT_OK(
      WriteRankColumn(disk, doc.parents(), &paged->parent_pages_));
  SJ_RETURN_NOT_OK(
      WriteRankColumn(disk, doc.tags_column(), &paged->tag_pages_));
  return paged;
}

Result<uint32_t> PagedDocTable::PostAt(BufferPool* pool, NodeId v) const {
  if (v >= size_) return Status::OutOfRange("node id out of range");
  SJ_ASSIGN_OR_RETURN(const uint8_t* page, pool->Pin(PostPage(v)));
  uint32_t value;
  std::memcpy(&value, page + (v % kRanksPerPage) * sizeof(uint32_t),
              sizeof(uint32_t));
  SJ_RETURN_NOT_OK(pool->Unpin(PostPage(v)));
  return value;
}

Result<NodeSequence> PagedStaircaseJoin(const PagedDocTable& doc,
                                        BufferPool* pool,
                                        const NodeSequence& context, Axis axis,
                                        const StaircaseOptions& options,
                                        JoinStats* stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  PagedDocAccessor acc(doc, pool);
  return internal::StaircaseJoinOver(acc, context, axis, options, stats);
}

Result<NodeSequence> ParallelPagedStaircaseJoin(const PagedDocTable& doc,
                                                BufferPool* pool,
                                                const NodeSequence& context,
                                                Axis axis,
                                                const StaircaseOptions& options,
                                                unsigned num_threads,
                                                JoinStats* stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  const bool desc =
      axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf;
  const bool anc = axis == Axis::kAncestor || axis == Axis::kAncestorOrSelf;
  // Each worker holds up to three pinned pages (the staircase kernels
  // read only the post/kind/level columns, never parent/tag), and the
  // driver's own accessor holds one more during pruning; leave room so
  // no worker starves the pool.
  unsigned max_workers = static_cast<unsigned>((pool->capacity() - 1) / 3);
  unsigned workers = std::min(num_threads, std::max(1u, max_workers));
  if ((!desc && !anc) || workers < 2 || context.size() < 2) {
    return PagedStaircaseJoin(doc, pool, context, axis, options, stats);
  }
  return internal::ParallelStaircaseJoinOver(
      [&doc, pool] { return PagedDocAccessor(doc, pool); }, context, axis,
      options, workers, stats);
}

Result<NodeSequence> PagedAxisCursorStep(const PagedDocTable& doc,
                                         BufferPool* pool,
                                         const NodeSequence& context, Axis axis,
                                         const AxisNodeTest& test,
                                         JoinStats* stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  PagedDocAccessor acc(doc, pool);
  return internal::AxisStepOver(acc, context, axis, test, stats);
}

Result<NodeSequence> PagedFilterByTest(const PagedDocTable& doc,
                                       BufferPool* pool,
                                       const NodeSequence& nodes,
                                       const AxisNodeTest& test) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  PagedDocAccessor acc(doc, pool);
  NodeSequence out = internal::FilterSequenceOver(acc, nodes, test);
  if (!acc.ok()) return acc.status();
  return out;
}

}  // namespace sj::storage
