#include "storage/paged_doc.h"

#include <algorithm>
#include <cstring>
#include <iterator>

namespace sj::storage {
namespace {

/// Keeps at most one page pinned; switching to another page unpins the
/// previous one. Sequential scans touch each page of their range once.
class PageGuard {
 public:
  explicit PageGuard(BufferPool* pool) : pool_(pool) {}
  ~PageGuard() { Release(); }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  Result<const uint8_t*> Get(PageId id) {
    if (holding_ && id == held_) return data_;
    Release();
    SJ_ASSIGN_OR_RETURN(data_, pool_->Pin(id));
    held_ = id;
    holding_ = true;
    return data_;
  }

  void Release() {
    if (holding_) {
      (void)pool_->Unpin(held_);
      holding_ = false;
    }
  }

 private:
  BufferPool* pool_;
  PageId held_ = 0;
  bool holding_ = false;
  const uint8_t* data_ = nullptr;
};

constexpr uint8_t kAttrKind = static_cast<uint8_t>(NodeKind::kAttribute);

/// Column access state shared by the paged kernels.
struct PagedScan {
  const PagedDocTable* doc;
  PageGuard post_guard;
  PageGuard kind_guard;
  bool filter_attributes;
  NodeSequence* result;
  JoinStats stats;

  PagedScan(const PagedDocTable* d, BufferPool* pool, bool filter,
            NodeSequence* out)
      : doc(d),
        post_guard(pool),
        kind_guard(pool),
        filter_attributes(filter),
        result(out) {}

  Result<uint32_t> Post(uint64_t pre) {
    SJ_ASSIGN_OR_RETURN(
        const uint8_t* page,
        post_guard.Get(doc->PostPage(static_cast<NodeId>(pre))));
    uint32_t value;
    std::memcpy(&value, page + (pre % kRanksPerPage) * sizeof(uint32_t),
                sizeof(uint32_t));
    return value;
  }

  Result<uint8_t> Kind(uint64_t pre) {
    SJ_ASSIGN_OR_RETURN(
        const uint8_t* page,
        kind_guard.Get(doc->KindPage(static_cast<NodeId>(pre))));
    return page[pre % kPageSize];
  }

  Status Append(uint64_t pre) {
    if (filter_attributes) {
      SJ_ASSIGN_OR_RETURN(uint8_t kind, Kind(pre));
      if (kind == kAttrKind) return Status::OK();
    }
    result->push_back(static_cast<NodeId>(pre));
    return Status::OK();
  }
};

Status ScanPartitionDescPaged(PagedScan& s, SkipMode mode, uint64_t pre1,
                              uint64_t pre2, uint32_t bound) {
  if (pre1 > pre2) return Status::OK();
  uint64_t i = pre1;
  if (mode == SkipMode::kEstimated) {
    // Copy phase: guaranteed descendants need no postorder page at all --
    // on paged storage the estimation saves physical reads, not just
    // comparisons.
    uint64_t estimate = std::min<uint64_t>(pre2, bound);
    for (; i <= estimate; ++i) {
      ++s.stats.nodes_copied;
      SJ_RETURN_NOT_OK(s.Append(i));
    }
  }
  for (; i <= pre2; ++i) {
    ++s.stats.nodes_scanned;
    SJ_ASSIGN_OR_RETURN(uint32_t post, s.Post(i));
    if (post < bound) {
      SJ_RETURN_NOT_OK(s.Append(i));
    } else if (mode != SkipMode::kNone) {
      s.stats.nodes_skipped += pre2 - i;
      return Status::OK();  // pages beyond i are never pinned
    }
  }
  return Status::OK();
}

Status ScanPartitionAncPaged(PagedScan& s, SkipMode mode, uint64_t pre1,
                             uint64_t pre2, uint32_t bound) {
  if (pre1 > pre2) return Status::OK();
  uint64_t i = pre1;
  while (i <= pre2) {
    ++s.stats.nodes_scanned;
    SJ_ASSIGN_OR_RETURN(uint32_t post, s.Post(i));
    if (post > bound) {
      s.result->push_back(static_cast<NodeId>(i));
      ++i;
    } else if (mode == SkipMode::kNone) {
      ++i;
    } else {
      uint64_t subtree = post >= i ? post - i : 0;
      uint64_t next = std::min(i + subtree + 1, pre2 + 1);
      s.stats.nodes_skipped += next - i - 1;
      i = next;  // may leap whole pages
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<PagedDocTable>> PagedDocTable::Create(
    const DocTable& doc, SimulatedDisk* disk) {
  if (disk == nullptr) {
    return Status::InvalidArgument("PagedDocTable: disk must not be null");
  }
  auto paged = std::unique_ptr<PagedDocTable>(new PagedDocTable());
  paged->size_ = doc.size();
  paged->height_ = doc.height();

  const auto posts = doc.posts();
  for (size_t start = 0; start < doc.size(); start += kRanksPerPage) {
    PageId id = disk->Allocate();
    Page page;
    std::memset(page.bytes, 0, kPageSize);
    size_t count = std::min<size_t>(kRanksPerPage, doc.size() - start);
    std::memcpy(page.bytes, posts.data() + start, count * sizeof(uint32_t));
    SJ_RETURN_NOT_OK(disk->Write(id, page));
    paged->post_pages_.push_back(id);
  }
  const auto kinds = doc.kinds();
  for (size_t start = 0; start < doc.size(); start += kPageSize) {
    PageId id = disk->Allocate();
    Page page;
    std::memset(page.bytes, 0, kPageSize);
    size_t count = std::min<size_t>(kPageSize, doc.size() - start);
    std::memcpy(page.bytes, kinds.data() + start, count);
    SJ_RETURN_NOT_OK(disk->Write(id, page));
    paged->kind_pages_.push_back(id);
  }
  return paged;
}

Result<uint32_t> PagedDocTable::PostAt(BufferPool* pool, NodeId v) const {
  if (v >= size_) return Status::OutOfRange("node id out of range");
  SJ_ASSIGN_OR_RETURN(const uint8_t* page, pool->Pin(PostPage(v)));
  uint32_t value;
  std::memcpy(&value, page + (v % kRanksPerPage) * sizeof(uint32_t),
              sizeof(uint32_t));
  SJ_RETURN_NOT_OK(pool->Unpin(PostPage(v)));
  return value;
}

Result<NodeSequence> PagedStaircaseJoin(const PagedDocTable& doc,
                                        BufferPool* pool,
                                        const NodeSequence& context, Axis axis,
                                        const StaircaseOptions& options,
                                        JoinStats* stats) {
  const bool desc =
      axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf;
  const bool anc = axis == Axis::kAncestor || axis == Axis::kAncestorOrSelf;
  if (!desc && !anc) {
    return Status::Unsupported("paged staircase join supports the "
                               "descendant/ancestor axes");
  }
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  if (!context.empty() && context.back() >= doc.size()) {
    return Status::InvalidArgument("context node out of range");
  }
  if (!IsDocumentOrder(context)) {
    return Status::InvalidArgument(
        "context must be duplicate-free and in document order");
  }
  const bool or_self =
      axis == Axis::kDescendantOrSelf || axis == Axis::kAncestorOrSelf;

  NodeSequence result;
  PagedScan s(&doc, pool, !options.keep_attributes, &result);
  s.stats.context_size = context.size();
  if (context.empty() || doc.size() == 0) {
    if (stats != nullptr) *stats = s.stats;
    return result;
  }

  if (desc) {
    NodeId pending = context.front();
    SJ_ASSIGN_OR_RETURN(uint32_t pending_post, s.Post(pending));
    ++s.stats.pruned_context_size;
    for (size_t k = 1; k < context.size(); ++k) {
      NodeId c = context[k];
      SJ_ASSIGN_OR_RETURN(uint32_t c_post, s.Post(c));
      if (c_post < pending_post) continue;  // pruned on the fly
      ++s.stats.pruned_context_size;
      if (or_self) s.result->push_back(pending);
      SJ_RETURN_NOT_OK(ScanPartitionDescPaged(
          s, options.skip_mode, static_cast<uint64_t>(pending) + 1, c - 1,
          pending_post));
      pending = c;
      pending_post = c_post;
    }
    if (or_self) s.result->push_back(pending);
    SJ_RETURN_NOT_OK(ScanPartitionDescPaged(
        s, options.skip_mode, static_cast<uint64_t>(pending) + 1,
        doc.size() - 1, pending_post));
  } else {
    uint64_t window_start = 0;
    NodeId pending = context.front();
    SJ_ASSIGN_OR_RETURN(uint32_t pending_post, s.Post(pending));
    for (size_t k = 1; k < context.size(); ++k) {
      NodeId c = context[k];
      SJ_ASSIGN_OR_RETURN(uint32_t c_post, s.Post(c));
      if (pending_post > c_post) {  // pending is an ancestor of c: pruned
        pending = c;
        pending_post = c_post;
        continue;
      }
      ++s.stats.pruned_context_size;
      if (pending > 0) {
        SJ_RETURN_NOT_OK(ScanPartitionAncPaged(s, options.skip_mode,
                                               window_start, pending - 1,
                                               pending_post));
      }
      if (or_self) s.result->push_back(pending);
      window_start = static_cast<uint64_t>(pending) + 1;
      pending = c;
      pending_post = c_post;
    }
    ++s.stats.pruned_context_size;
    if (pending > 0) {
      SJ_RETURN_NOT_OK(ScanPartitionAncPaged(
          s, options.skip_mode, window_start, pending - 1, pending_post));
    }
    if (or_self) s.result->push_back(pending);
  }

  // Same post-pass as the in-memory join: pruned attribute context nodes
  // of a descendant-or-self step re-enter as selves.
  if (axis == Axis::kDescendantOrSelf && !options.keep_attributes) {
    NodeSequence lost;
    for (NodeId c : context) {
      SJ_ASSIGN_OR_RETURN(uint8_t kind, s.Kind(c));
      if (kind == kAttrKind &&
          !std::binary_search(result.begin(), result.end(), c)) {
        lost.push_back(c);
      }
    }
    if (!lost.empty()) {
      NodeSequence merged;
      merged.reserve(result.size() + lost.size());
      std::merge(result.begin(), result.end(), lost.begin(), lost.end(),
                 std::back_inserter(merged));
      result = std::move(merged);
    }
  }

  s.stats.result_size = result.size();
  if (stats != nullptr) *stats = s.stats;
  return result;
}

}  // namespace sj::storage
