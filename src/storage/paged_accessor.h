// PagedDocAccessor: the buffer-pool backend of the staircase join and
// the non-staircase axis cursors.
//
// Implements the DocAccessor concept (core/doc_accessor.h) over a
// PagedDocTable: every post/kind/level/parent/tag read pins the page
// holding the rank through the BufferPool, and sequential scans hold
// exactly one page per column so each page of a partition is pinned
// once. SkipTo releases the held pages when a kernel jumps over an empty
// region, which is how the paper's "nodes never touched" becomes disk
// pages never read.
//
// Error model: Pin can fail (e.g. every frame pinned in an undersized
// pool). The accessor is sticky-error -- the first failure is recorded,
// subsequent reads return 0 without touching the pool, and the join
// driver surfaces status() once at the end (kernel loops stay branch-lean
// and remain bounded because reads of 0 still advance the scans).

#ifndef STAIRJOIN_STORAGE_PAGED_ACCESSOR_H_
#define STAIRJOIN_STORAGE_PAGED_ACCESSOR_H_

#include <cstring>

#include "core/doc_accessor.h"
#include "storage/buffer_pool.h"
#include "storage/paged_doc.h"

namespace sj::storage {

/// Keeps at most one page pinned; switching to another page unpins the
/// previous one. Sequential scans touch each page of their range once.
class PageGuard {
 public:
  explicit PageGuard(BufferPool* pool) : pool_(pool) {}
  ~PageGuard() { Release(); }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  /// The bytes of page `id`, pinning it if needed; nullptr on pool
  /// failure (the error lands in `status` if it is still OK).
  const uint8_t* Get(PageId id, Status* status) {
    if (holding_ && id == held_) return data_;
    Release();
    Result<const uint8_t*> pinned = pool_->Pin(id);
    if (!pinned.ok()) {
      if (status->ok()) *status = pinned.status();
      return nullptr;
    }
    data_ = pinned.value();
    held_ = id;
    holding_ = true;
    return data_;
  }

  /// Unpins the held page unless it is page `id`.
  void ReleaseUnless(PageId id) {
    if (holding_ && held_ != id) Release();
  }

  void Release() {
    if (holding_) {
      (void)pool_->Unpin(held_);
      holding_ = false;
    }
  }

 private:
  BufferPool* pool_;
  PageId held_ = 0;
  bool holding_ = false;
  const uint8_t* data_ = nullptr;
};

/// \brief DocAccessor over paged columns behind a buffer pool.
///
/// Borrows the table and the pool; both must outlive the accessor. One
/// accessor holds up to five pinned pages (one per column actually
/// read; the staircase kernels touch at most post/kind/level, the axis
/// cursors additionally parent/tag). Accessors are not thread-safe, but
/// independent accessors may share one pool (BufferPool is internally
/// synchronized) -- the parallel paged join gives each worker its own
/// accessor.
class PagedDocAccessor {
 public:
  PagedDocAccessor(const PagedDocTable& doc, BufferPool* pool)
      : doc_(&doc),
        post_guard_(pool),
        kind_guard_(pool),
        level_guard_(pool),
        parent_guard_(pool),
        tag_guard_(pool) {}

  size_t size() const { return doc_->size(); }

  uint32_t Post(uint64_t pre) {
    if (!status_.ok()) return 0;
    const uint8_t* page =
        post_guard_.Get(doc_->PostPage(static_cast<NodeId>(pre)), &status_);
    if (page == nullptr) return 0;
    uint32_t value;
    std::memcpy(&value, page + (pre % kRanksPerPage) * sizeof(uint32_t),
                sizeof(uint32_t));
    return value;
  }

  uint8_t Kind(uint64_t pre) {
    if (!status_.ok()) return 0;
    const uint8_t* page =
        kind_guard_.Get(doc_->KindPage(static_cast<NodeId>(pre)), &status_);
    return page == nullptr ? 0 : page[pre % kPageSize];
  }

  uint8_t Level(uint64_t pre) {
    if (!status_.ok()) return 0;
    const uint8_t* page =
        level_guard_.Get(doc_->LevelPage(static_cast<NodeId>(pre)), &status_);
    return page == nullptr ? 0 : page[pre % kPageSize];
  }

  NodeId Parent(uint64_t pre) {
    if (!status_.ok()) return 0;
    const uint8_t* page =
        parent_guard_.Get(doc_->ParentPage(static_cast<NodeId>(pre)),
                          &status_);
    if (page == nullptr) return 0;
    uint32_t value;
    std::memcpy(&value, page + (pre % kRanksPerPage) * sizeof(uint32_t),
                sizeof(uint32_t));
    return value;
  }

  TagId Tag(uint64_t pre) {
    if (!status_.ok()) return 0;
    const uint8_t* page =
        tag_guard_.Get(doc_->TagPage(static_cast<NodeId>(pre)), &status_);
    if (page == nullptr) return 0;
    uint32_t value;
    std::memcpy(&value, page + (pre % kRanksPerPage) * sizeof(uint32_t),
                sizeof(uint32_t));
    return value;
  }

  /// A kernel jumps to pre rank `pre`: drop held pages the jump leaves
  /// behind so the pool can evict them (pages in between are never read).
  void SkipTo(uint64_t pre) {
    if (pre >= doc_->size()) {
      post_guard_.Release();
      kind_guard_.Release();
      level_guard_.Release();
      parent_guard_.Release();
      tag_guard_.Release();
      return;
    }
    post_guard_.ReleaseUnless(doc_->PostPage(static_cast<NodeId>(pre)));
    kind_guard_.ReleaseUnless(doc_->KindPage(static_cast<NodeId>(pre)));
    level_guard_.ReleaseUnless(doc_->LevelPage(static_cast<NodeId>(pre)));
    parent_guard_.ReleaseUnless(doc_->ParentPage(static_cast<NodeId>(pre)));
    tag_guard_.ReleaseUnless(doc_->TagPage(static_cast<NodeId>(pre)));
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  const PagedDocTable* doc_;
  PageGuard post_guard_;
  PageGuard kind_guard_;
  PageGuard level_guard_;
  PageGuard parent_guard_;
  PageGuard tag_guard_;
  Status status_;
};

static_assert(DocAccessor<PagedDocAccessor>);

}  // namespace sj::storage

#endif  // STAIRJOIN_STORAGE_PAGED_ACCESSOR_H_
