// PagedDocAccessor: the buffer-pool backend of the staircase join and
// the non-staircase axis cursors.
//
// Implements the DocAccessor concept (core/doc_accessor.h) over a
// PagedDocTable: every post/kind/level/parent/tag read pins the page
// holding the rank through the BufferPool, and sequential scans hold
// exactly one page per column so each page of a partition is pinned
// once. SkipTo releases the held pages when a kernel jumps over an empty
// region, which is how the paper's "nodes never touched" becomes disk
// pages never read.
//
// Error model: Pin can fail (e.g. every frame pinned in an undersized
// pool). The accessor is sticky-error -- the first failure is recorded,
// subsequent reads return 0 without touching the pool, and the join
// driver surfaces status() once at the end (kernel loops stay branch-lean
// and remain bounded because reads of 0 still advance the scans).

#ifndef STAIRJOIN_STORAGE_PAGED_ACCESSOR_H_
#define STAIRJOIN_STORAGE_PAGED_ACCESSOR_H_

#include <cstring>

#include "core/doc_accessor.h"
#include "storage/buffer_pool.h"
#include "storage/paged_doc.h"

namespace sj::storage {

/// Keeps at most one page pinned; switching to another page unpins the
/// previous one. Sequential scans touch each page of their range once.
class PageGuard {
 public:
  explicit PageGuard(BufferPool* pool) : pool_(pool) {}
  ~PageGuard() { Release(); }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  /// The bytes of page `id`, pinning it if needed; nullptr on pool
  /// failure (the error lands in `status` if it is still OK).
  const uint8_t* Get(PageId id, Status* status) {
    if (holding_ && id == held_) return data_;
    Release();
    Result<const uint8_t*> pinned = pool_->Pin(id);
    if (!pinned.ok()) {
      if (status->ok()) *status = pinned.status();
      return nullptr;
    }
    data_ = pinned.value();
    held_ = id;
    holding_ = true;
    return data_;
  }

  /// Unpins the held page unless it is page `id`.
  void ReleaseUnless(PageId id) {
    if (holding_ && held_ != id) Release();
  }

  void Release() {
    if (holding_) {
      (void)pool_->Unpin(held_);
      holding_ = false;
    }
  }

  /// True while a page is pinned (i.e. the column is actively scanning).
  bool holding() const { return holding_; }

  /// The pinned page id (meaningful only while holding()).
  PageId held() const { return held_; }

  /// Announces that the next read moves this guard to `page`, with
  /// `next` as the column's following page (the readahead window): when
  /// the column is actively scanning elsewhere and prefetching is on,
  /// both pages are handed to BufferPool::Prefetch as one batched
  /// fault. Cursors call this right before Get on every page switch, so
  /// sequential boundary crossings batch exactly like SkipTo leaps --
  /// and since a scan that crossed into `page` usually keeps going,
  /// `next` rides the same seek for the cheap per-page transfer cost
  /// instead of its own synchronous fault. Pass `next == page` at
  /// end-of-column (the duplicate is dropped, leaving a degenerate
  /// single-page hint that Prefetch ignores). No-op when not scanning,
  /// not switching, or prefetch is off.
  void AnnounceSwitch(PageId page, PageId next) {
    if (!holding_ || held_ == page || !pool_->prefetch_enabled()) return;
    const PageId hints[2] = {page, next};
    pool_->Prefetch(hints);
  }

 private:
  BufferPool* pool_;
  PageId held_ = 0;
  bool holding_ = false;
  const uint8_t* data_ = nullptr;
};

/// Appends `target` to the hint list `out` iff `guard` is actively
/// scanning (holding a page) and the jump moves it to a different page
/// -- the two signals that the kernel reads this column and that the
/// read will fault without help. Shared by the SkipTo hint emission of
/// every pool-backed accessor.
inline void AddSkipHint(const PageGuard& guard, PageId target, PageId* out,
                        size_t* count) {
  if (guard.holding() && guard.held() != target) out[(*count)++] = target;
}

/// \brief DocAccessor over paged columns behind a buffer pool.
///
/// Borrows the table and the pool; both must outlive the accessor. One
/// accessor holds up to five pinned pages (one per column actually
/// read; the staircase kernels touch at most post/kind/level, the axis
/// cursors additionally parent/tag). Accessors are not thread-safe, but
/// independent accessors may share one pool (BufferPool is internally
/// synchronized) -- the parallel paged join gives each worker its own
/// accessor.
class PagedDocAccessor {
 public:
  PagedDocAccessor(const PagedDocTable& doc, BufferPool* pool)
      : doc_(&doc),
        pool_(pool),
        post_guard_(pool),
        kind_guard_(pool),
        level_guard_(pool),
        parent_guard_(pool),
        tag_guard_(pool) {}

  size_t size() const { return doc_->size(); }

  uint32_t Post(uint64_t pre) {
    if (!status_.ok()) return 0;
    const NodeId v = static_cast<NodeId>(pre);
    post_guard_.AnnounceSwitch(doc_->PostPage(v),
                               doc_->PostPage(RankAhead(pre, kRanksPerPage)));
    const uint8_t* page = post_guard_.Get(doc_->PostPage(v), &status_);
    if (page == nullptr) return 0;
    uint32_t value;
    std::memcpy(&value, page + (pre % kRanksPerPage) * sizeof(uint32_t),
                sizeof(uint32_t));
    return value;
  }

  uint8_t Kind(uint64_t pre) {
    if (!status_.ok()) return 0;
    const NodeId v = static_cast<NodeId>(pre);
    kind_guard_.AnnounceSwitch(doc_->KindPage(v),
                               doc_->KindPage(RankAhead(pre, kPageSize)));
    const uint8_t* page = kind_guard_.Get(doc_->KindPage(v), &status_);
    return page == nullptr ? 0 : page[pre % kPageSize];
  }

  uint8_t Level(uint64_t pre) {
    if (!status_.ok()) return 0;
    const NodeId v = static_cast<NodeId>(pre);
    level_guard_.AnnounceSwitch(doc_->LevelPage(v),
                                doc_->LevelPage(RankAhead(pre, kPageSize)));
    const uint8_t* page = level_guard_.Get(doc_->LevelPage(v), &status_);
    return page == nullptr ? 0 : page[pre % kPageSize];
  }

  NodeId Parent(uint64_t pre) {
    if (!status_.ok()) return 0;
    const NodeId v = static_cast<NodeId>(pre);
    parent_guard_.AnnounceSwitch(
        doc_->ParentPage(v), doc_->ParentPage(RankAhead(pre, kRanksPerPage)));
    const uint8_t* page = parent_guard_.Get(doc_->ParentPage(v), &status_);
    if (page == nullptr) return 0;
    uint32_t value;
    std::memcpy(&value, page + (pre % kRanksPerPage) * sizeof(uint32_t),
                sizeof(uint32_t));
    return value;
  }

  TagId Tag(uint64_t pre) {
    if (!status_.ok()) return 0;
    const NodeId v = static_cast<NodeId>(pre);
    tag_guard_.AnnounceSwitch(doc_->TagPage(v),
                              doc_->TagPage(RankAhead(pre, kRanksPerPage)));
    const uint8_t* page = tag_guard_.Get(doc_->TagPage(v), &status_);
    if (page == nullptr) return 0;
    uint32_t value;
    std::memcpy(&value, page + (pre % kRanksPerPage) * sizeof(uint32_t),
                sizeof(uint32_t));
    return value;
  }

  /// A kernel jumps to pre rank `pre`: drop held pages the jump leaves
  /// behind so the pool can evict them (pages in between are never read),
  /// and -- when prefetching is on -- announce the landing pages of the
  /// columns being scanned so the pool faults them in ONE batched read
  /// instead of one synchronous seek per column.
  void SkipTo(uint64_t pre) {
    if (pre >= doc_->size()) {
      post_guard_.Release();
      kind_guard_.Release();
      level_guard_.Release();
      parent_guard_.Release();
      tag_guard_.Release();
      return;
    }
    const NodeId target = static_cast<NodeId>(pre);
    if (pool_->prefetch_enabled()) {
      // Landing page of every column being scanned, plus a one-page
      // readahead window per column: a leap is usually followed by a
      // forward scan, so the next page rides the same seek for a
      // kBatchTransferDivisor-times cheaper transfer instead of its own
      // synchronous fault at the page boundary.
      PageId hints[10];
      size_t count = 0;
      AddSkipHint(post_guard_, doc_->PostPage(target), hints, &count);
      AddSkipHint(kind_guard_, doc_->KindPage(target), hints, &count);
      AddSkipHint(level_guard_, doc_->LevelPage(target), hints, &count);
      AddSkipHint(parent_guard_, doc_->ParentPage(target), hints, &count);
      AddSkipHint(tag_guard_, doc_->TagPage(target), hints, &count);
      if (pre + kRanksPerPage < doc_->size()) {
        const NodeId next = static_cast<NodeId>(pre + kRanksPerPage);
        AddSkipHint(post_guard_, doc_->PostPage(next), hints, &count);
        AddSkipHint(parent_guard_, doc_->ParentPage(next), hints, &count);
        AddSkipHint(tag_guard_, doc_->TagPage(next), hints, &count);
      }
      if (pre + kPageSize < doc_->size()) {
        const NodeId next = static_cast<NodeId>(pre + kPageSize);
        AddSkipHint(kind_guard_, doc_->KindPage(next), hints, &count);
        AddSkipHint(level_guard_, doc_->LevelPage(next), hints, &count);
      }
      if (count > 0) pool_->Prefetch({hints, count});
    }
    post_guard_.ReleaseUnless(doc_->PostPage(target));
    kind_guard_.ReleaseUnless(doc_->KindPage(target));
    level_guard_.ReleaseUnless(doc_->LevelPage(target));
    parent_guard_.ReleaseUnless(doc_->ParentPage(target));
    tag_guard_.ReleaseUnless(doc_->TagPage(target));
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  /// The rank one column page past `pre` (clamped to `pre` at
  /// end-of-column, which degenerates the readahead hint into the
  /// landing page itself): the second half of AnnounceSwitch hints.
  /// `per_page` is the column's values-per-page (kRanksPerPage for the
  /// uint32 columns, kPageSize for the byte columns).
  NodeId RankAhead(uint64_t pre, uint64_t per_page) const {
    const uint64_t ahead = pre + per_page;
    return static_cast<NodeId>(ahead < doc_->size() ? ahead : pre);
  }

  const PagedDocTable* doc_;
  BufferPool* pool_;
  PageGuard post_guard_;
  PageGuard kind_guard_;
  PageGuard level_guard_;
  PageGuard parent_guard_;
  PageGuard tag_guard_;
  Status status_;
};

static_assert(DocAccessor<PagedDocAccessor>);

}  // namespace sj::storage

#endif  // STAIRJOIN_STORAGE_PAGED_ACCESSOR_H_
