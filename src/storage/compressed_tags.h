// Compressed tag fragments: fragmentation by tag name, FOR/delta
// encoded, behind the buffer pool.
//
// CompressedTagIndex lays every element tag's pre/post fragment columns
// (core/tag_view.h) out as block-compressed images
// (encoding/block_codec.h) behind the shared BufferPool; a fragment's
// strictly monotone pre list is the codec's best case (small positive
// deltas). CompressedFragmentCursor implements the FragmentCursor
// concept (core/fragment_cursor.h) over one such fragment, and
// CompressedStaircaseJoinView instantiates the ONE fragment join body
// (core/fragment_impl.h) with it -- the compressed twin of
// StaircaseJoinView / PagedStaircaseJoinView. Name-test pushdown then
// faults compressed fragment pages: strictly fewer of them than the
// paged fragments at equal page size.
//
// Only the block directories and the per-block fence keys (the first
// pre rank in each pre block, for IO-free block location during binary
// search) stay memory-resident. Integrity mirrors CompressedDocTable:
// per-column digests over the encoded bytes, re-checked by
// ValidateImage at Database open time.

#ifndef STAIRJOIN_STORAGE_COMPRESSED_TAGS_H_
#define STAIRJOIN_STORAGE_COMPRESSED_TAGS_H_

#include <memory>
#include <vector>

#include "core/fragment_cursor.h"
#include "core/staircase_join.h"
#include "core/twig_join.h"
#include "encoding/doc_table.h"
#include "storage/buffer_pool.h"
#include "storage/compressed_accessor.h"
#include "storage/compressed_doc.h"

namespace sj::storage {

/// \brief One tag's compressed projection: block directories + resident
/// fences.
struct CompressedFragment {
  TagId tag = kNoTag;
  /// Number of element nodes carrying the tag (== slots).
  uint32_t size = 0;
  /// Compressed image of the fragment's pre column.
  CompressedColumn pre;
  /// Compressed image of the fragment's post column.
  CompressedColumn post;
  /// First pre rank in each pre block (resident fence keys, so
  /// LowerBound decodes at most one block).
  std::vector<NodeId> fence_pre;
};

/// \brief Fragmentation by tag name, block-compressed: one image per
/// element tag, built in a single scan of the document.
class CompressedTagIndex {
 public:
  /// Encodes every tag fragment of `doc` onto `disk` (borrowed; must
  /// outlive this). Use the same disk as the document's images so one
  /// BufferPool serves everything. Materializes a transient TagIndex;
  /// callers that already hold one should pass it to the overload below
  /// and skip the second projection scan.
  static Result<std::unique_ptr<CompressedTagIndex>> Create(
      const DocTable& doc, SimulatedDisk* disk);

  /// Same, reusing an already-built `index` over `doc` instead of
  /// materializing the projections a second time (Database::Finish
  /// passes its resident TagIndex here).
  static Result<std::unique_ptr<CompressedTagIndex>> Create(
      const DocTable& doc, const TagIndex& index, SimulatedDisk* disk);

  /// The fragment for `tag` (empty fragment for unknown/attribute-only
  /// tags).
  const CompressedFragment& fragment(TagId tag) const {
    if (tag == kNoTag || tag >= fragments_.size()) return empty_;
    return fragments_[tag];
  }

  /// Number of element nodes carrying `tag` -- the selectivity statistic
  /// the pushdown cost model uses (resident; reading it faults nothing).
  uint64_t tag_count(TagId tag) const { return fragment(tag).size; }

  /// FragmentColumnsDigest of the source table, captured at Create time.
  uint64_t source_digest() const { return source_digest_; }

  /// Total pages written for all fragments (for the bench report).
  size_t page_count() const { return page_count_; }

  /// Re-reads every fragment's blocks from `disk` and verifies them
  /// against the captured image digests; a corrupt or stale block fails
  /// with InvalidArgument naming the fragment column.
  Status ValidateImage(const SimulatedDisk& disk) const;

 private:
  CompressedTagIndex() = default;

  std::vector<CompressedFragment> fragments_;  // indexed by TagId
  CompressedFragment empty_;
  uint64_t source_digest_ = 0;
  size_t page_count_ = 0;
};

/// \brief FragmentCursor over one compressed fragment behind a buffer
/// pool.
///
/// Borrows the fragment and the pool; both must outlive the cursor. One
/// cursor holds up to two pinned pages (one per column) plus two
/// decoded-block frames. LowerBound locates the block through the
/// resident fence keys and binary-searches inside the decoded frame, so
/// a whole-fragment search costs at most one page pin and one decode.
/// Sticky-error like CompressedDocAccessor.
class CompressedFragmentCursor {
 public:
  CompressedFragmentCursor(const CompressedFragment& frag, BufferPool* pool)
      : frag_(&frag),
        pool_(pool),
        pre_(frag.pre, pool),
        post_(frag.post, pool) {}

  size_t size() const { return frag_->size; }

  NodeId Pre(size_t slot) {
    if (!status_.ok()) return 0;
    return pre_.At(slot, &status_);
  }

  uint32_t Post(size_t slot) {
    if (!status_.ok()) return 0;
    return post_.At(slot, &status_);
  }

  /// First slot with pre rank >= `pre` (size() if none, or after a
  /// failure). Fence keys narrow the search to one decoded block.
  size_t LowerBound(uint64_t pre) {
    if (!status_.ok() || frag_->size == 0) return frag_->size;
    const std::vector<NodeId>& fence = frag_->fence_pre;
    if (pre <= fence.front()) return 0;
    // Last block whose first pre rank is < `pre`; the answer lies in it
    // (or right past its end, which is the next block's first slot).
    size_t block = static_cast<size_t>(
                       std::lower_bound(fence.begin(), fence.end(), pre) -
                       fence.begin()) -
                   1;
    size_t lo = block * encoding::kBlockValues;
    size_t hi = std::min<size_t>(lo + frag_->pre.BlockValueCount(block),
                                 frag_->size);
    // A seek lands here next: the pre block is decoded immediately below
    // and the join reads the slot's post rank right after, so announce
    // both blocks' pages -- plus a one-block readahead window for the
    // forward scan that follows -- as one batched fault.
    if (pool_->prefetch_enabled()) {
      PageId hints[4];
      size_t count = 0;
      hints[count++] = pre_.PageFor(lo);
      hints[count++] = post_.PageFor(lo);
      if (lo + encoding::kBlockValues < frag_->size) {
        hints[count++] = pre_.PageFor(lo + encoding::kBlockValues);
        hints[count++] = post_.PageFor(lo + encoding::kBlockValues);
      }
      pool_->Prefetch({hints, count});
    }
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (pre_.At(mid, &status_) < pre) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (!status_.ok()) return frag_->size;
    return lo;
  }

  /// A join jumps to `slot`: drop held pages the jump leaves behind so
  /// the pool can evict them, and -- when prefetching is on -- announce
  /// the landing blocks' pages as one batched fault.
  void SkipTo(size_t slot) {
    if (pool_->prefetch_enabled() && slot < frag_->size) {
      // Landing blocks' pages plus a one-block readahead window per
      // column: the leapfrog scans forward from the landing slot, so
      // the next block's page rides the same seek.
      PageId hints[4];
      size_t count = 0;
      AddSkipHint(pre_.guard(), pre_.PageFor(slot), hints, &count);
      AddSkipHint(post_.guard(), post_.PageFor(slot), hints, &count);
      if (slot + encoding::kBlockValues < frag_->size) {
        const size_t next = slot + encoding::kBlockValues;
        AddSkipHint(pre_.guard(), pre_.PageFor(next), hints, &count);
        AddSkipHint(post_.guard(), post_.PageFor(next), hints, &count);
      }
      if (count > 0) pool_->Prefetch({hints, count});
    }
    pre_.SkipTo(slot);
    post_.SkipTo(slot);
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  const CompressedFragment* frag_;
  BufferPool* pool_;
  CompressedColumnCursor pre_;
  CompressedColumnCursor post_;
  Status status_;
};

static_assert(FragmentCursor<CompressedFragmentCursor>);

/// \brief Staircase join over a compressed tag fragment: the compressed
/// name-test pushdown path.
///
/// A shim over the backend-generic fragment join (core/fragment_impl.h)
/// instantiated with CompressedFragmentCursor + CompressedDocAccessor.
/// Semantics identical to StaircaseJoinView / PagedStaircaseJoinView;
/// fragment slot reads AND context postorder reads go through `pool`.
/// `doc` and `tags` must be built over the same disk as `pool`.
Result<NodeSequence> CompressedStaircaseJoinView(
    const CompressedTagIndex& tags, TagId tag, const CompressedDocTable& doc,
    BufferPool* pool, const NodeSequence& context, Axis axis,
    const StaircaseOptions& options = {}, JoinStats* stats = nullptr);

/// \brief Holistic twig join over compressed tag fragments.
///
/// A shim over the backend-generic twig body (core/twig_impl.h)
/// instantiated with one CompressedFragmentCursor per level plus a
/// CompressedDocAccessor. Semantics identical to TwigJoin /
/// PagedTwigJoin; the same merge faults compressed fragment blocks --
/// strictly fewer pages than the paged fragments at equal page size.
/// `doc` and `tags` must be built over the same disk as `pool`.
Result<NodeSequence> CompressedTwigJoin(
    const CompressedTagIndex& tags, const CompressedDocTable& doc,
    BufferPool* pool, const NodeSequence& context,
    const std::vector<TwigLevel>& levels, const StaircaseOptions& options = {},
    JoinStats* stats = nullptr,
    std::vector<TwigLevelStats>* level_stats = nullptr);

}  // namespace sj::storage

#endif  // STAIRJOIN_STORAGE_COMPRESSED_TAGS_H_
