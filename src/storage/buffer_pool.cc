#include "storage/buffer_pool.h"

#include <cstring>

namespace sj::storage {

PageId SimulatedDisk::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  std::memset(pages_.back()->bytes, 0, kPageSize);
  return static_cast<PageId>(pages_.size() - 1);
}

Status SimulatedDisk::Read(PageId id, Page* out) const {
  if (id >= pages_.size()) {
    return Status::OutOfRange("disk read past end: page " +
                              std::to_string(id));
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  std::memcpy(out->bytes, pages_[id]->bytes, kPageSize);
  return Status::OK();
}

Status SimulatedDisk::Write(PageId id, const Page& in) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("disk write past end: page " +
                              std::to_string(id));
  }
  std::memcpy(pages_[id]->bytes, in.bytes, kPageSize);
  return Status::OK();
}

BufferPool::BufferPool(SimulatedDisk* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages > 0 ? capacity_pages : 1) {}

Status BufferPool::EvictOne() {
  if (lru_.empty()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  PageId victim = lru_.front();
  lru_.pop_front();
  ++stats_.evictions;
  frames_.erase(victim);
  return Status::OK();
}

Result<const uint8_t*> BufferPool::Pin(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.pins;
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.hits;
    Frame* frame = it->second.get();
    if (frame->pin_count == 0 && frame->in_lru) {
      lru_.erase(frame->lru_pos);
      frame->in_lru = false;
    }
    ++frame->pin_count;
    return static_cast<const uint8_t*>(frame->page.bytes);
  }

  ++stats_.faults;
  while (frames_.size() >= capacity_) {
    SJ_RETURN_NOT_OK(EvictOne());
  }
  auto frame = std::make_unique<Frame>();
  SJ_RETURN_NOT_OK(disk_->Read(id, &frame->page));
  frame->pin_count = 1;
  const uint8_t* bytes = frame->page.bytes;
  frames_.emplace(id, std::move(frame));
  return bytes;
}

Status BufferPool::Unpin(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end() || it->second->pin_count == 0) {
    return Status::InvalidArgument("Unpin of page that is not pinned");
  }
  Frame* frame = it->second.get();
  --frame->pin_count;
  if (frame->pin_count == 0) {
    frame->lru_pos = lru_.insert(lru_.end(), id);
    frame->in_lru = true;
  }
  return Status::OK();
}

void BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (PageId id : lru_) frames_.erase(id);
  lru_.clear();
}

}  // namespace sj::storage
