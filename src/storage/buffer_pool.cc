#include "storage/buffer_pool.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace sj::storage {

PageId SimulatedDisk::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  std::memset(pages_.back()->bytes, 0, kPageSize);
  return static_cast<PageId>(pages_.size() - 1);
}

Status SimulatedDisk::Read(PageId id, Page* out) const {
  if (id >= pages_.size()) {
    return Status::OutOfRange("disk read past end: page " +
                              std::to_string(id));
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  uint32_t latency = read_latency_micros_.load(std::memory_order_relaxed);
  if (latency > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency));
  }
  std::memcpy(out->bytes, pages_[id]->bytes, kPageSize);
  return Status::OK();
}

Status SimulatedDisk::ReadBatch(std::span<const PageId> ids,
                                std::span<Page* const> outs) const {
  if (ids.size() != outs.size()) {
    return Status::InvalidArgument("ReadBatch: ids/outs size mismatch");
  }
  if (ids.empty()) return Status::OK();
  for (PageId id : ids) {
    if (id >= pages_.size()) {
      return Status::OutOfRange("disk batch read past end: page " +
                                std::to_string(id));
    }
  }
  reads_.fetch_add(ids.size(), std::memory_order_relaxed);
  batch_reads_.fetch_add(1, std::memory_order_relaxed);
  uint32_t latency = read_latency_micros_.load(std::memory_order_relaxed);
  if (latency > 0) {
    // One seek for the request, then a transfer cost per extra page --
    // this is exactly why prefetching N pages beats N cold Pin calls.
    uint64_t micros =
        latency + (ids.size() - 1) *
                      static_cast<uint64_t>(latency / kBatchTransferDivisor);
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    std::memcpy(outs[i]->bytes, pages_[ids[i]]->bytes, kPageSize);
  }
  return Status::OK();
}

Status SimulatedDisk::Write(PageId id, const Page& in) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("disk write past end: page " +
                              std::to_string(id));
  }
  std::memcpy(pages_[id]->bytes, in.bytes, kPageSize);
  return Status::OK();
}

BufferPool::BufferPool(SimulatedDisk* disk, size_t capacity_pages,
                       size_t latch_shards)
    : disk_(disk), capacity_(capacity_pages > 0 ? capacity_pages : 1) {
  size_t shards = latch_shards > 0 ? latch_shards : 1;
  if (shards > capacity_) shards = capacity_;
  shards_ = std::vector<Shard>(shards);
  // Split the capacity evenly; the first capacity_ % shards shards absorb
  // the remainder so the total is exact.
  for (size_t i = 0; i < shards; ++i) {
    shards_[i].capacity = capacity_ / shards + (i < capacity_ % shards ? 1 : 0);
  }
}

Status BufferPool::EvictOne(Shard* shard) {
  if (shard->lru.empty()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  PageId victim = shard->lru.front();
  shard->lru.pop_front();
  ++shard->stats.evictions;
  shard->frames.erase(victim);
  return Status::OK();
}

Result<const uint8_t*> BufferPool::Pin(PageId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  ++shard.stats.pins;
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    ++shard.stats.hits;
    Frame* frame = it->second.get();
    if (frame->pin_count == 0 && frame->in_lru) {
      shard.lru.erase(frame->lru_pos);
      frame->in_lru = false;
    }
    ++frame->pin_count;
    return static_cast<const uint8_t*>(frame->page.bytes);
  }

  ++shard.stats.faults;
  while (shard.frames.size() >= shard.capacity) {
    SJ_RETURN_NOT_OK(EvictOne(&shard));
  }
  auto frame = std::make_unique<Frame>();
  SJ_RETURN_NOT_OK(disk_->Read(id, &frame->page));
  frame->pin_count = 1;
  const uint8_t* bytes = frame->page.bytes;
  shard.frames.emplace(id, std::move(frame));
  return bytes;
}

Status BufferPool::Unpin(PageId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end() || it->second->pin_count == 0) {
    return Status::InvalidArgument("Unpin of page that is not pinned");
  }
  Frame* frame = it->second.get();
  --frame->pin_count;
  if (frame->pin_count == 0) {
    frame->lru_pos = shard.lru.insert(shard.lru.end(), id);
    frame->in_lru = true;
  }
  return Status::OK();
}

void BufferPool::Prefetch(std::span<const PageId> ids) {
  if (ids.empty() || !prefetch_enabled()) return;

  // Filter the hint down to pages actually worth a disk read: in-range,
  // not a duplicate within this batch, not already resident. Hint lists
  // are tiny (one page per active column), so linear dedup is fine.
  std::vector<PageId> needed;
  needed.reserve(ids.size());
  for (PageId id : ids) {
    if (static_cast<size_t>(id) >= disk_->page_count()) continue;
    if (std::find(needed.begin(), needed.end(), id) != needed.end()) continue;
    Shard& shard = ShardFor(id);
    MutexLock lock(shard.mu);
    if (shard.frames.find(id) != shard.frames.end()) continue;
    needed.push_back(id);
  }
  // A batch of one has no seek to amortize -- it costs exactly what the
  // on-demand fault would, plus the risk of being wasted if the cursor
  // never reads the page. Let degenerate hints fault on demand instead.
  if (needed.size() < 2) return;

  std::vector<std::unique_ptr<Frame>> frames;
  std::vector<Page*> pages;
  frames.reserve(needed.size());
  pages.reserve(needed.size());
  for (size_t i = 0; i < needed.size(); ++i) {
    frames.push_back(std::make_unique<Frame>());
    pages.push_back(&frames.back()->page);
  }
  // The ids were validated above, so a failure here cannot happen; if it
  // somehow did, dropping the hint is the correct (best-effort) response.
  if (!disk_->ReadBatch(needed, pages).ok()) return;

  for (size_t i = 0; i < needed.size(); ++i) {
    PageId id = needed[i];
    Shard& shard = ShardFor(id);
    MutexLock lock(shard.mu);
    // Another session may have faulted the page in while we were reading
    // off-latch; their frame may already be pinned, so ours is dropped.
    if (shard.frames.find(id) != shard.frames.end()) continue;
    while (shard.frames.size() >= shard.capacity) {
      if (!EvictOne(&shard).ok()) break;
    }
    if (shard.frames.size() >= shard.capacity) continue;  // all pinned
    Frame* frame = frames[i].get();
    frame->pin_count = 0;
    frame->lru_pos = shard.lru.insert(shard.lru.end(), id);
    frame->in_lru = true;
    ++shard.stats.faults;
    ++shard.stats.prefetched;
    shard.frames.emplace(id, std::move(frames[i]));
  }
}

PoolStats BufferPool::stats() const {
  PoolStats total;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total.MergeFrom(shard.stats);
  }
  return total;
}

void BufferPool::ResetStats() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.stats = PoolStats{};
  }
}

void BufferPool::FlushAll() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (PageId id : shard.lru) shard.frames.erase(id);
    shard.lru.clear();
  }
}

size_t BufferPool::resident_pages() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.frames.size();
  }
  return total;
}

}  // namespace sj::storage
