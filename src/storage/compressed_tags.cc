#include "storage/compressed_tags.h"

#include <memory>
#include <string>

#include "core/fragment_impl.h"
#include "core/tag_view.h"
#include "core/twig_impl.h"
#include "storage/paged_tags.h"

namespace sj::storage {

Result<std::unique_ptr<CompressedTagIndex>> CompressedTagIndex::Create(
    const DocTable& doc, SimulatedDisk* disk) {
  // One scan of the document materializes every projection (transient;
  // only the encoded images and the directories survive).
  TagIndex index(doc);
  return Create(doc, index, disk);
}

Result<std::unique_ptr<CompressedTagIndex>> CompressedTagIndex::Create(
    const DocTable& doc, const TagIndex& index, SimulatedDisk* disk) {
  if (disk == nullptr) {
    return Status::InvalidArgument(
        "CompressedTagIndex: disk must not be null");
  }
  auto compressed =
      std::unique_ptr<CompressedTagIndex>(new CompressedTagIndex());
  compressed->source_digest_ = FragmentColumnsDigest(doc);
  compressed->fragments_.resize(doc.tags().size());
  for (size_t t = 0; t < compressed->fragments_.size(); ++t) {
    const TagView& view = index.view(static_cast<TagId>(t));
    CompressedFragment& frag = compressed->fragments_[t];
    frag.tag = static_cast<TagId>(t);
    frag.size = static_cast<uint32_t>(view.size());
    SJ_RETURN_NOT_OK(
        WriteCompressedColumn(disk, view.pre, &frag.pre, &frag.fence_pre));
    SJ_RETURN_NOT_OK(WriteCompressedColumn(disk, view.post, &frag.post));
    compressed->page_count_ += frag.pre.pages.size() + frag.post.pages.size();
  }
  return compressed;
}

Status CompressedTagIndex::ValidateImage(const SimulatedDisk& disk) const {
  for (const CompressedFragment& frag : fragments_) {
    const std::string tag = std::to_string(frag.tag);
    SJ_RETURN_NOT_OK(ValidateCompressedColumn(
        disk, frag.pre, "fragment pre column of tag " + tag));
    SJ_RETURN_NOT_OK(ValidateCompressedColumn(
        disk, frag.post, "fragment post column of tag " + tag));
  }
  return Status::OK();
}

Result<NodeSequence> CompressedStaircaseJoinView(
    const CompressedTagIndex& tags, TagId tag, const CompressedDocTable& doc,
    BufferPool* pool, const NodeSequence& context, Axis axis,
    const StaircaseOptions& options, JoinStats* stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  CompressedFragmentCursor frag(tags.fragment(tag), pool);
  CompressedDocAccessor acc(doc, pool);
  return internal::FragmentStaircaseJoinOver(frag, acc, context, axis,
                                             options, stats);
}

Result<NodeSequence> CompressedTwigJoin(
    const CompressedTagIndex& tags, const CompressedDocTable& doc,
    BufferPool* pool, const NodeSequence& context,
    const std::vector<TwigLevel>& levels, const StaircaseOptions& options,
    JoinStats* stats, std::vector<TwigLevelStats>* level_stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("pool must not be null");
  }
  // Cursors hold pinned pages and decoded-block frames (non-movable),
  // so they live behind unique_ptrs and the generic body borrows raw
  // pointers.
  std::vector<std::unique_ptr<CompressedFragmentCursor>> owned;
  std::vector<CompressedFragmentCursor*> cursors;
  owned.reserve(levels.size());
  cursors.reserve(levels.size());
  for (const TwigLevel& level : levels) {
    owned.push_back(std::make_unique<CompressedFragmentCursor>(
        tags.fragment(level.tag), pool));
    cursors.push_back(owned.back().get());
  }
  CompressedDocAccessor acc(doc, pool);
  return internal::TwigJoinOver(cursors, acc, context, levels, options, stats,
                                level_stats);
}

}  // namespace sj::storage
