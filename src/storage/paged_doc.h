// Paged document columns and the paged staircase join.
//
// PagedDocTable lays the doc encoding's post/kind columns out in disk
// pages (column-wise, 2048 post ranks or 8192 kind bytes per page) behind
// a BufferPool. PagedStaircaseJoin then runs the Section 3 algorithms over
// pinned pages: a partition scan pins each page of its pre-rank range
// once, and skipping jumps over whole pages -- turning the paper's
// "nodes never touched" directly into disk pages never read.

#ifndef STAIRJOIN_STORAGE_PAGED_DOC_H_
#define STAIRJOIN_STORAGE_PAGED_DOC_H_

#include <memory>

#include "core/staircase_join.h"
#include "encoding/doc_table.h"
#include "storage/buffer_pool.h"

namespace sj::storage {

/// Post ranks per page.
inline constexpr uint32_t kRanksPerPage =
    static_cast<uint32_t>(kPageSize / sizeof(uint32_t));

/// \brief Column-wise paged image of a DocTable (post + kind columns).
class PagedDocTable {
 public:
  /// Writes `doc`'s columns onto `disk` (borrowed; must outlive this).
  static Result<std::unique_ptr<PagedDocTable>> Create(const DocTable& doc,
                                                       SimulatedDisk* disk);

  /// Number of encoded nodes.
  size_t size() const { return size_; }
  /// Document height (Eq. (1) bound), copied from the source table.
  uint32_t height() const { return height_; }

  /// Page holding post(v).
  PageId PostPage(NodeId v) const {
    return post_pages_[v / kRanksPerPage];
  }
  /// Page holding kind(v).
  PageId KindPage(NodeId v) const { return kind_pages_[v / kPageSize]; }

  /// Total pages used by the post column.
  size_t post_page_count() const { return post_pages_.size(); }

  /// Reads post(v) through the pool (pins and unpins one page).
  Result<uint32_t> PostAt(BufferPool* pool, NodeId v) const;

 private:
  PagedDocTable() = default;

  friend Result<NodeSequence> PagedStaircaseJoin(const PagedDocTable&,
                                                 BufferPool*,
                                                 const NodeSequence&, Axis,
                                                 const StaircaseOptions&,
                                                 JoinStats*);

  size_t size_ = 0;
  uint32_t height_ = 0;
  std::vector<PageId> post_pages_;
  std::vector<PageId> kind_pages_;
};

/// \brief Staircase join over paged columns.
///
/// Semantics identical to StaircaseJoin for kDescendant/kAncestor (+
/// -or-self); `stats` counts touched nodes as usual while the pool's
/// PoolStats counts page pins/faults. Context node ranks are read through
/// the pool as well (they are doc rows, as the paper stresses).
Result<NodeSequence> PagedStaircaseJoin(const PagedDocTable& doc,
                                        BufferPool* pool,
                                        const NodeSequence& context, Axis axis,
                                        const StaircaseOptions& options = {},
                                        JoinStats* stats = nullptr);

}  // namespace sj::storage

#endif  // STAIRJOIN_STORAGE_PAGED_DOC_H_
