// Paged document columns and the paged staircase/axis join shims.
//
// PagedDocTable lays the doc encoding's post/kind/level/parent/tag
// columns out in disk pages (column-wise, 2048 ranks or 8192 kind/level
// bytes per page) behind a BufferPool. The join algorithms themselves
// live ONCE in core/ (core/staircase_impl.h for the staircase axes,
// core/axis_impl.h for the remaining axes), generic over the
// DocAccessor cursor concept; PagedStaircaseJoin,
// ParallelPagedStaircaseJoin and PagedAxisCursorStep below are thin
// shims that instantiate those kernels with the PagedDocAccessor
// backend (storage/paged_accessor.h). Skipping then turns the paper's
// "nodes never touched" directly into disk pages never read.

#ifndef STAIRJOIN_STORAGE_PAGED_DOC_H_
#define STAIRJOIN_STORAGE_PAGED_DOC_H_

#include <memory>

#include "core/axis_step.h"
#include "core/staircase_join.h"
#include "encoding/doc_table.h"
#include "storage/buffer_pool.h"

namespace sj::storage {

/// Post ranks per page.
inline constexpr uint32_t kRanksPerPage =
    static_cast<uint32_t>(kPageSize / sizeof(uint32_t));

/// FNV-1a digest over the post/kind/level/parent/tag columns. Identifies
/// the encoding a PagedDocTable images, so consumers holding both a
/// DocTable and a PagedDocTable can detect mismatched pairs (two
/// different documents can share a node count, and two documents with
/// identical structure can still differ in the tag column).
uint64_t DocColumnsDigest(const DocTable& doc);

/// Continues an FNV-1a digest over one little-endian uint32 value. The
/// shared mixing step of DocColumnsDigest and FragmentColumnsDigest --
/// the latter is defined as a continuation of the former, so both must
/// mix identically.
uint64_t FnvMixU32(uint64_t h, uint32_t value);

/// Lays one uint32 rank column out on `disk` (kRanksPerPage values per
/// page, zero-padded) and appends the page ids to `pages`. The shared
/// page format of the document post column and the fragment pre/post
/// columns -- they live behind the same BufferPool.
Status WriteRankColumn(SimulatedDisk* disk, std::span<const uint32_t> column,
                       std::vector<PageId>* pages);

/// \brief Column-wise paged image of a DocTable (post/kind/level columns).
class PagedDocTable {
 public:
  /// Writes `doc`'s columns onto `disk` (borrowed; must outlive this).
  static Result<std::unique_ptr<PagedDocTable>> Create(const DocTable& doc,
                                                       SimulatedDisk* disk);

  /// Number of encoded nodes.
  size_t size() const { return size_; }
  /// Document height (Eq. (1) bound), copied from the source table.
  uint32_t height() const { return height_; }

  /// Page holding post(v).
  PageId PostPage(NodeId v) const {
    return post_pages_[v / kRanksPerPage];
  }
  /// Page holding kind(v).
  PageId KindPage(NodeId v) const { return kind_pages_[v / kPageSize]; }
  /// Page holding level(v).
  PageId LevelPage(NodeId v) const { return level_pages_[v / kPageSize]; }
  /// Page holding parent(v).
  PageId ParentPage(NodeId v) const {
    return parent_pages_[v / kRanksPerPage];
  }
  /// Page holding tag(v).
  PageId TagPage(NodeId v) const { return tag_pages_[v / kRanksPerPage]; }

  /// Total pages used by the post column.
  size_t post_page_count() const { return post_pages_.size(); }

  /// DocColumnsDigest of the source table, captured at Create time.
  uint64_t source_digest() const { return source_digest_; }

  /// Reads post(v) through the pool (pins and unpins one page).
  Result<uint32_t> PostAt(BufferPool* pool, NodeId v) const;

 private:
  PagedDocTable() = default;

  size_t size_ = 0;
  uint32_t height_ = 0;
  uint64_t source_digest_ = 0;
  std::vector<PageId> post_pages_;
  std::vector<PageId> kind_pages_;
  std::vector<PageId> level_pages_;
  std::vector<PageId> parent_pages_;
  std::vector<PageId> tag_pages_;
};

/// \brief Staircase join over paged columns.
///
/// A shim over the backend-generic staircase join (core/staircase_impl.h)
/// instantiated with PagedDocAccessor. Semantics identical to
/// StaircaseJoin for every staircase axis; `stats` counts touched nodes
/// as usual while the pool's PoolStats counts page pins/faults. Context
/// node ranks are read through the pool as well (they are doc rows, as
/// the paper stresses).
Result<NodeSequence> PagedStaircaseJoin(const PagedDocTable& doc,
                                        BufferPool* pool,
                                        const NodeSequence& context, Axis axis,
                                        const StaircaseOptions& options = {},
                                        JoinStats* stats = nullptr);

/// \brief Partitioned parallel staircase join over paged columns.
///
/// Each worker runs the shared partition kernels through its own
/// PagedDocAccessor over the (thread-safe) pool. The worker count is
/// capped so every worker can hold its column pages pinned concurrently
/// (three pages per worker); descendant/ancestor axes only, other
/// staircase axes and num_threads < 2 delegate to PagedStaircaseJoin.
Result<NodeSequence> ParallelPagedStaircaseJoin(
    const PagedDocTable& doc, BufferPool* pool, const NodeSequence& context,
    Axis axis, const StaircaseOptions& options = {}, unsigned num_threads = 1,
    JoinStats* stats = nullptr);

/// \brief Set-at-a-time non-staircase axis step over paged columns.
///
/// A shim over the backend-generic axis kernels (core/axis_impl.h)
/// instantiated with PagedDocAccessor: the IO-conscious twin of
/// AxisCursorStep (core/axis_step.h). Every post/kind/level/parent/tag
/// read -- including the folded node test -- is charged to `pool`.
Result<NodeSequence> PagedAxisCursorStep(const PagedDocTable& doc,
                                         BufferPool* pool,
                                         const NodeSequence& context, Axis axis,
                                         const AxisNodeTest& test = {},
                                         JoinStats* stats = nullptr);

/// \brief Node-test filter over paged columns: keeps the nodes of a
/// document-order sequence that satisfy `test`, reading kind/tag through
/// `pool` (the IO-conscious twin of FilterByTest's per-node reads).
Result<NodeSequence> PagedFilterByTest(const PagedDocTable& doc,
                                       BufferPool* pool,
                                       const NodeSequence& nodes,
                                       const AxisNodeTest& test);

}  // namespace sj::storage

#endif  // STAIRJOIN_STORAGE_PAGED_DOC_H_
