// Convenience entry points: XML text (or file) -> DocTable.

#ifndef STAIRJOIN_ENCODING_LOADER_H_
#define STAIRJOIN_ENCODING_LOADER_H_

#include <memory>
#include <string_view>

#include "encoding/builder.h"
#include "encoding/doc_table.h"
#include "util/result.h"

namespace sj {

/// \brief Parses XML text and encodes it as a DocTable.
Result<std::unique_ptr<DocTable>> LoadDocument(std::string_view xml_text,
                                               BuildOptions options = {});

/// \brief Reads a file and encodes its contents as a DocTable.
Result<std::unique_ptr<DocTable>> LoadDocumentFile(const std::string& path,
                                                   BuildOptions options = {});

}  // namespace sj

#endif  // STAIRJOIN_ENCODING_LOADER_H_
