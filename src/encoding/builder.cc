#include "encoding/builder.h"

#include <algorithm>

namespace sj {

DocTableBuilder::DocTableBuilder(BuildOptions options)
    : options_(options), table_(std::make_unique<DocTable>()) {
  if (options_.expected_nodes > 0) {
    table_->post_.Reserve(options_.expected_nodes);
    table_->level_.Reserve(options_.expected_nodes);
    table_->kind_.Reserve(options_.expected_nodes);
    table_->tag_.Reserve(options_.expected_nodes);
    table_->parent_.Reserve(options_.expected_nodes);
    if (options_.store_values) {
      table_->value_offset_.reserve(options_.expected_nodes);
      table_->value_length_.reserve(options_.expected_nodes);
    }
  }
}

DocTableBuilder::~DocTableBuilder() = default;

Status DocTableBuilder::StartDocument() { return Status::OK(); }

Status DocTableBuilder::EndDocument() { return Status::OK(); }

NodeId DocTableBuilder::AddNode(NodeKind kind, TagId tag,
                                std::string_view value) {
  NodeId pre = static_cast<NodeId>(table_->post_.size());
  NodeId parent = stack_.empty() ? kNilNode : stack_.back();
  uint32_t level =
      stack_.empty() ? 0 : table_->level_.AtOid(parent) + 1;
  table_->height_ = std::max(table_->height_, level);
  // post is patched when the node closes; leaves close immediately.
  table_->post_.Append(0);
  table_->level_.Append(static_cast<uint8_t>(level));
  table_->kind_.Append(static_cast<uint8_t>(kind));
  table_->tag_.Append(tag);
  table_->parent_.Append(parent);
  if (options_.store_values) {
    table_->value_offset_.push_back(
        static_cast<uint32_t>(table_->heap_.size()));
    table_->value_length_.push_back(static_cast<uint32_t>(value.size()));
    table_->heap_.append(value);
  }
  if (kind != NodeKind::kElement) {
    // Leaf in the traversal: closes now.
    table_->post_.AtOid(pre) = next_post_++;
  }
  return pre;
}

Status DocTableBuilder::StartElement(std::string_view name) {
  if (stack_.empty() && !table_->post_.empty()) {
    return Status::ParseError("multiple document elements");
  }
  if (stack_.size() >= 255) {
    return Status::Unsupported("document deeper than 255 levels");
  }
  NodeId pre = AddNode(NodeKind::kElement, table_->dict_.Intern(name), {});
  stack_.push_back(pre);
  return Status::OK();
}

Status DocTableBuilder::EndElement(std::string_view name) {
  (void)name;  // the parser has already verified tag balance
  if (stack_.empty()) {
    return Status::Internal("DocTableBuilder: unbalanced EndElement");
  }
  table_->post_.AtOid(stack_.back()) = next_post_++;
  stack_.pop_back();
  return Status::OK();
}

Status DocTableBuilder::Attribute(std::string_view name,
                                  std::string_view value) {
  if (stack_.empty()) {
    return Status::Internal("DocTableBuilder: attribute outside element");
  }
  ++table_->attribute_count_;
  AddNode(NodeKind::kAttribute, table_->dict_.Intern(name), value);
  return Status::OK();
}

Status DocTableBuilder::Text(std::string_view data) {
  if (stack_.empty()) {
    return Status::Internal("DocTableBuilder: text outside element");
  }
  AddNode(NodeKind::kText, kNoTag, data);
  return Status::OK();
}

Status DocTableBuilder::Comment(std::string_view data) {
  if (stack_.empty()) {
    // Comments outside the document element are not encoded (the paper's
    // doc table holds one rooted tree).
    return Status::OK();
  }
  AddNode(NodeKind::kComment, kNoTag, data);
  return Status::OK();
}

Status DocTableBuilder::ProcessingInstruction(std::string_view target,
                                              std::string_view data) {
  if (stack_.empty()) return Status::OK();
  AddNode(NodeKind::kProcessingInstruction, table_->dict_.Intern(target),
          data);
  return Status::OK();
}

Result<std::unique_ptr<DocTable>> DocTableBuilder::Finish() {
  if (finished_) {
    return Status::Internal("DocTableBuilder::Finish called twice");
  }
  if (!stack_.empty()) {
    return Status::InvalidArgument("Finish with unclosed elements");
  }
  if (table_->post_.empty()) {
    return Status::InvalidArgument("empty document");
  }
  finished_ = true;
  return std::move(table_);
}

}  // namespace sj
