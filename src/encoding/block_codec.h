// Block-wise FOR/delta codec for the compressed column backend.
//
// The pre/post plane columns are ideal light-weight-compression targets:
// fragment pre lists are strictly monotone, postorder ranks move in
// short runs, level/kind fit in a handful of bits, and parent links
// point a bounded distance backwards. Each block of up to kBlockValues
// uint32 values is encoded independently with whichever of two
// encodings is smaller:
//
//   * FOR   -- circular frame of reference: the base sits just past the
//              largest circular gap of the block's value set (for a
//              plain block that is min(block); for a block mixing tiny
//              ranks with 0xFFFFFFFF sentinels like kNoTag/kNilNode it
//              wraps around them), every value stored as
//              (value - base) mod 2^32 in `width` bits;
//   * DELTA -- base = first value, the remaining values stored as
//              zig-zag deltas to their predecessor in `width` bits
//              (monotone runs with small steps pack near-optimally;
//              non-monotone columns like parent still work because the
//              deltas are signed).
//
// Blocks are self-describing (an 8-byte header carries mode, bit width,
// value count and base) and never span storage pages, so a reader can
// decode any block after one page read. The codec is deliberately
// checksum-free: whole-image integrity is the job of the column digests
// (storage/compressed_doc.h), which cover the encoded bytes.

#ifndef STAIRJOIN_ENCODING_BLOCK_CODEC_H_
#define STAIRJOIN_ENCODING_BLOCK_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/result.h"
#include "util/status.h"

namespace sj::encoding {

/// Maximum values per encoded block. 1024 ranks keep the worst-case
/// encoded block (incompressible 32-bit data) within one 8 KiB page
/// including the header, so a block never has to span pages.
inline constexpr size_t kBlockValues = 1024;

/// Encoded block header size in bytes:
///   [0] mode (0 = FOR, 1 = DELTA)
///   [1] bit width (0..32; 0 encodes a constant/strict-run block)
///   [2..3] value count, little-endian uint16
///   [4..7] base value, little-endian uint32
inline constexpr size_t kBlockHeaderBytes = 8;

/// Upper bound on the encoded size of a block of `count` values (the
/// scratch-buffer size an encoder must provide).
constexpr size_t MaxEncodedBlockBytes(size_t count) {
  return kBlockHeaderBytes + count * sizeof(uint32_t);
}

/// Encodes `values` (at most kBlockValues of them) into `out`, which
/// must hold MaxEncodedBlockBytes(values.size()). Picks the smaller of
/// the FOR and DELTA encodings. Returns the encoded size in bytes.
size_t EncodeBlock(std::span<const uint32_t> values, uint8_t* out);

/// Parses the header at `data` and returns the total encoded size of
/// the block (header + payload). Fails with InvalidArgument when the
/// header is malformed or the block would overrun `available` bytes.
Result<size_t> EncodedBlockSize(const uint8_t* data, size_t available);

/// Decodes the block at `data` into `out`, which must hold
/// `expected_count` values. Fails with InvalidArgument when the header
/// is malformed, the count disagrees with `expected_count`, or the
/// payload overruns `available` bytes.
Status DecodeBlock(const uint8_t* data, size_t available,
                   size_t expected_count, uint32_t* out);

}  // namespace sj::encoding

#endif  // STAIRJOIN_ENCODING_BLOCK_CODEC_H_
