// Builds the pre/post DocTable from SAX-style events, in one pass.
//
// Preorder ranks are assigned in event arrival order (elements on
// StartElement, attributes on Attribute — directly after their owner, text/
// comment/PI nodes on their events). Postorder ranks are assigned in node
// *closing* order: leaves close immediately, elements close at EndElement.
// One counter each suffices; no second pass over the document is needed.

#ifndef STAIRJOIN_ENCODING_BUILDER_H_
#define STAIRJOIN_ENCODING_BUILDER_H_

#include <memory>
#include <vector>

#include "encoding/doc_table.h"
#include "xml/event_handler.h"

namespace sj {

/// DocTable construction options.
struct BuildOptions {
  /// Retain text/attribute/comment/PI values in a string heap. Costs ~8
  /// bytes per node plus the text itself; the join benches switch it off.
  bool store_values = true;
  /// Reserve capacity for this many nodes up front (0 = grow on demand).
  size_t expected_nodes = 0;
};

/// \brief xml::EventHandler that produces an immutable DocTable.
class DocTableBuilder : public xml::EventHandler {
 public:
  explicit DocTableBuilder(BuildOptions options = {});
  ~DocTableBuilder() override;

  Status StartDocument() override;
  Status EndDocument() override;
  Status StartElement(std::string_view name) override;
  Status EndElement(std::string_view name) override;
  Status Attribute(std::string_view name, std::string_view value) override;
  Status Text(std::string_view data) override;
  Status Comment(std::string_view data) override;
  Status ProcessingInstruction(std::string_view target,
                               std::string_view data) override;

  /// Yields the finished table; call once, after a successful event stream.
  Result<std::unique_ptr<DocTable>> Finish();

 private:
  NodeId AddNode(NodeKind kind, TagId tag, std::string_view value);

  BuildOptions options_;
  std::unique_ptr<DocTable> table_;
  std::vector<NodeId> stack_;  // open elements (pre ranks)
  uint32_t next_post_ = 0;
  bool finished_ = false;
};

}  // namespace sj

#endif  // STAIRJOIN_ENCODING_BUILDER_H_
