#include "encoding/collection.h"

#include <algorithm>

#include "xml/parser.h"

namespace sj {

/// Forwards node events into the shared builder, absorbing the nested
/// document's Start/EndDocument and recording its document element.
class CollectionBuilder::Absorber : public xml::EventHandler {
 public:
  Absorber(DocTableBuilder* builder, NodeSequence* roots, size_t* node_count)
      : builder_(builder), roots_(roots), node_count_(node_count) {}

  Status StartDocument() override { return Status::OK(); }
  Status EndDocument() override { return Status::OK(); }

  Status StartElement(std::string_view name) override {
    if (depth_++ == 0) {
      roots_->push_back(static_cast<NodeId>(*node_count_));
    }
    ++*node_count_;
    return builder_->StartElement(name);
  }
  Status EndElement(std::string_view name) override {
    --depth_;
    return builder_->EndElement(name);
  }
  Status Attribute(std::string_view name, std::string_view value) override {
    ++*node_count_;
    return builder_->Attribute(name, value);
  }
  Status Text(std::string_view data) override {
    ++*node_count_;
    return builder_->Text(data);
  }
  Status Comment(std::string_view data) override {
    ++*node_count_;
    return builder_->Comment(data);
  }
  Status ProcessingInstruction(std::string_view target,
                               std::string_view data) override {
    ++*node_count_;
    return builder_->ProcessingInstruction(target, data);
  }

 private:
  DocTableBuilder* builder_;
  NodeSequence* roots_;
  size_t* node_count_;
  int depth_ = 0;
};

CollectionBuilder::CollectionBuilder(BuildOptions options,
                                     std::string root_tag)
    : root_tag_(std::move(root_tag)), builder_(options) {}

Status CollectionBuilder::EnsureOpen() {
  if (finished_) {
    return Status::InvalidArgument("collection already finished");
  }
  if (!open_) {
    SJ_RETURN_NOT_OK(builder_.StartDocument());
    SJ_RETURN_NOT_OK(builder_.StartElement(root_tag_));
    node_count_ = 1;
    open_ = true;
  }
  return Status::OK();
}

Status CollectionBuilder::AddDocumentText(std::string_view xml) {
  return AddDocumentEvents([xml](xml::EventHandler* handler) {
    return xml::Parse(xml, handler);
  });
}

Status CollectionBuilder::AddDocumentEvents(
    const std::function<Status(xml::EventHandler*)>& emit) {
  SJ_RETURN_NOT_OK(EnsureOpen());
  Absorber absorber(&builder_, &roots_, &node_count_);
  return emit(&absorber);
}

Result<std::unique_ptr<DocTable>> CollectionBuilder::Finish() {
  if (finished_) return Status::InvalidArgument("Finish called twice");
  if (roots_.empty()) {
    return Status::InvalidArgument("collection without documents");
  }
  SJ_RETURN_NOT_OK(builder_.EndElement(root_tag_));
  SJ_RETURN_NOT_OK(builder_.EndDocument());
  finished_ = true;
  return builder_.Finish();
}

size_t DocumentOf(const NodeSequence& document_roots, const DocTable& doc,
                  NodeId v) {
  // The owning document root is the last root r with r <= v and
  // v inside r's subtree.
  auto it = std::upper_bound(document_roots.begin(), document_roots.end(), v);
  if (it == document_roots.begin()) return document_roots.size();
  NodeId r = *(it - 1);
  if (v == r || doc.IsDescendant(v, r)) {
    return static_cast<size_t>(it - document_roots.begin()) - 1;
  }
  return document_roots.size();
}

}  // namespace sj
