// Multi-document databases (paper footnote 1): "... by introduction of
// document identifiers or a new virtual root node under which several
// documents may be gathered."
//
// CollectionBuilder gathers documents under a synthetic root element; the
// result is an ordinary DocTable, so every join/baseline/query works on it
// unchanged. Document boundaries (the pre ranks of the gathered document
// elements) are retained so results can be attributed to their source.

#ifndef STAIRJOIN_ENCODING_COLLECTION_H_
#define STAIRJOIN_ENCODING_COLLECTION_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "encoding/builder.h"
#include "encoding/doc_table.h"
#include "util/result.h"

namespace sj {

/// \brief Encodes several documents under one virtual root.
class CollectionBuilder {
 public:
  /// `root_tag` names the virtual root element.
  explicit CollectionBuilder(BuildOptions options = {},
                             std::string root_tag = "collection");

  /// Parses and appends one XML document.
  Status AddDocumentText(std::string_view xml);

  /// Appends a document produced by an event source (e.g. the XMark
  /// generator): `emit` must stream exactly one document into the handler
  /// it receives; its Start/EndDocument events are absorbed.
  Status AddDocumentEvents(
      const std::function<Status(xml::EventHandler*)>& emit);

  /// Number of documents added so far.
  size_t document_count() const { return roots_.size(); }

  /// Finishes the encoding; fails if no document was added.
  Result<std::unique_ptr<DocTable>> Finish();

  /// Pre ranks of the gathered document elements (valid after Finish).
  const NodeSequence& document_roots() const { return roots_; }

 private:
  class Absorber;

  Status EnsureOpen();

  std::string root_tag_;
  DocTableBuilder builder_;
  NodeSequence roots_;
  size_t node_count_ = 0;  ///< nodes encoded so far (next pre rank)
  bool open_ = false;
  bool finished_ = false;
};

/// \brief Index of the document containing `v`, given the collection's
/// document_roots(). The virtual root itself belongs to no document
/// (returns documents.size()).
size_t DocumentOf(const NodeSequence& document_roots, const DocTable& doc,
                  NodeId v);

}  // namespace sj

#endif  // STAIRJOIN_ENCODING_COLLECTION_H_
