#include "encoding/loader.h"

#include <fstream>
#include <sstream>

#include "xml/parser.h"

namespace sj {

Result<std::unique_ptr<DocTable>> LoadDocument(std::string_view xml_text,
                                               BuildOptions options) {
  DocTableBuilder builder(options);
  Status st = xml::Parse(xml_text, &builder);
  if (!st.ok()) return st;
  return builder.Finish();
}

Result<std::unique_ptr<DocTable>> LoadDocumentFile(const std::string& path,
                                                   BuildOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return Status::IoError("cannot read " + path);
  return LoadDocument(buffer.str(), options);
}

}  // namespace sj
