// Re-serializing encoded nodes back to XML text.
//
// Completes the pipeline text -> DocTable -> query -> text: a result node's
// subtree is emitted straight from the columnar encoding (pre-order walk
// over the contiguous pre range, closing elements by postorder rank).
// Requires a table built with BuildOptions::store_values.

#ifndef STAIRJOIN_ENCODING_SERIALIZE_H_
#define STAIRJOIN_ENCODING_SERIALIZE_H_

#include <string>

#include "encoding/doc_table.h"
#include "util/result.h"
#include "xml/event_handler.h"

namespace sj {

/// \brief Streams the subtree rooted at `v` (attributes included) as
/// events into `handler`, without Start/EndDocument framing.
Status EmitSubtree(const DocTable& doc, NodeId v, xml::EventHandler* handler);

/// \brief Serializes the subtree rooted at `v` to XML text.
///
/// Errors: OutOfRange for bad ids; InvalidArgument when the table was
/// built without values (text content would be lost silently otherwise)
/// or when `v` is an attribute node (attributes have no XML serialization
/// of their own; the value is returned for text nodes).
Result<std::string> SerializeSubtree(const DocTable& doc, NodeId v);

/// \brief Serializes a whole result sequence: each node's subtree
/// concatenated in document order (nested results are emitted once per
/// occurrence, like an XQuery serializer would).
Result<std::string> SerializeSequence(const DocTable& doc,
                                      const NodeSequence& nodes);

}  // namespace sj

#endif  // STAIRJOIN_ENCODING_SERIALIZE_H_
