#include "encoding/doc_table.h"

#include <algorithm>

namespace sj {

TagId TagDictionary::Intern(std::string_view name) {
  auto it = codes_.find(std::string(name));
  if (it != codes_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  codes_.emplace(names_.back(), id);
  return id;
}

std::optional<TagId> TagDictionary::Lookup(std::string_view name) const {
  auto it = codes_.find(std::string(name));
  if (it == codes_.end()) return std::nullopt;
  return it->second;
}

bool IsDocumentOrder(const NodeSequence& seq) {
  for (size_t i = 1; i < seq.size(); ++i) {
    if (seq[i - 1] >= seq[i]) return false;
  }
  return true;
}

std::string_view DocTable::value(NodeId v) const {
  if (value_offset_.empty() || v >= value_offset_.size()) return {};
  return std::string_view(heap_).substr(value_offset_[v], value_length_[v]);
}

std::string DocTable::DebugString(NodeId v) const {
  std::string out = "<pre=" + std::to_string(v) +
                    ", post=" + std::to_string(post(v)) +
                    ", level=" + std::to_string(level(v)) + ", ";
  switch (kind(v)) {
    case NodeKind::kElement:
      out += "element " + dict_.Name(tag(v));
      break;
    case NodeKind::kAttribute:
      out += "attribute @" + dict_.Name(tag(v));
      break;
    case NodeKind::kText:
      out += "text";
      break;
    case NodeKind::kComment:
      out += "comment";
      break;
    case NodeKind::kProcessingInstruction:
      out += "pi " + dict_.Name(tag(v));
      break;
  }
  out += ">";
  return out;
}

}  // namespace sj
