#include "encoding/block_codec.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace sj::encoding {
namespace {

constexpr uint8_t kModeFor = 0;
constexpr uint8_t kModeDelta = 1;

/// Bits needed to store `v` (0 for v == 0).
uint32_t BitsFor(uint64_t v) {
  return v == 0 ? 0 : 64 - static_cast<uint32_t>(std::countl_zero(v));
}

/// Zig-zag maps a signed delta onto an unsigned code so small negative
/// steps stay small: 0, -1, 1, -2, 2, ... -> 0, 1, 2, 3, 4, ...
uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Appends `count` `width`-bit values to a little-endian bit stream.
void PackBits(const uint64_t* values, size_t count, uint32_t width,
              uint8_t* out) {
  uint64_t acc = 0;
  uint32_t filled = 0;
  size_t pos = 0;
  for (size_t i = 0; i < count; ++i) {
    acc |= values[i] << filled;
    filled += width;
    while (filled >= 8) {
      out[pos++] = static_cast<uint8_t>(acc & 0xFF);
      acc >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) out[pos++] = static_cast<uint8_t>(acc & 0xFF);
}

/// Reads `count` `width`-bit values from a little-endian bit stream.
void UnpackBits(const uint8_t* in, size_t count, uint32_t width,
                uint64_t* out) {
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  uint64_t acc = 0;
  uint32_t filled = 0;
  size_t pos = 0;
  for (size_t i = 0; i < count; ++i) {
    while (filled < width) {
      acc |= static_cast<uint64_t>(in[pos++]) << filled;
      filled += 8;
    }
    out[i] = acc & mask;
    acc >>= width;
    filled -= width;
  }
}

/// Payload bytes of `packed_count` values at `width` bits.
constexpr size_t PayloadBytes(size_t packed_count, uint32_t width) {
  return (packed_count * width + 7) / 8;
}

void WriteHeader(uint8_t* out, uint8_t mode, uint32_t width, size_t count,
                 uint32_t base) {
  out[0] = mode;
  out[1] = static_cast<uint8_t>(width);
  out[2] = static_cast<uint8_t>(count & 0xFF);
  out[3] = static_cast<uint8_t>((count >> 8) & 0xFF);
  std::memcpy(out + 4, &base, sizeof(uint32_t));
}

}  // namespace

size_t EncodeBlock(std::span<const uint32_t> values, uint8_t* out) {
  const size_t n = values.size();
  if (n == 0) {
    WriteHeader(out, kModeFor, 0, 0, 0);
    return kBlockHeaderBytes;
  }

  // Circular FOR: the classic frame [min, max] is blown up by
  // wrap-around sentinels (kNoTag / kNilNode = 0xFFFFFFFF sitting next
  // to tiny ranks in the tag and parent columns). Choosing the frame
  // base just past the largest *circular* gap in the sorted block
  // shrinks the width back: the sentinels become base + small offsets
  // mod 2^32. Decoding is the plain FOR decode -- base + offset already
  // wraps -- so this is purely an encoder-side choice.
  uint32_t sorted[kBlockValues];
  std::copy(values.begin(), values.end(), sorted);
  std::sort(sorted, sorted + n);
  size_t base_idx = 0;  // start of the frame in sorted order
  uint64_t best_gap = sorted[0] + (uint64_t{1} << 32) - sorted[n - 1];
  for (size_t i = 1; i < n; ++i) {
    const uint64_t gap = uint64_t{sorted[i]} - sorted[i - 1];
    if (gap > best_gap) {
      best_gap = gap;
      base_idx = i;
    }
  }
  const uint32_t base = sorted[base_idx];
  // The farthest frame member is the value just before the gap
  // (circularly); uint32 subtraction is the mod-2^32 offset.
  const uint32_t span =
      sorted[base_idx == 0 ? n - 1 : base_idx - 1] - base;
  const uint32_t for_width = BitsFor(span);
  const size_t for_bytes = PayloadBytes(n, for_width);

  // DELTA: base = first value, zig-zag deltas for the rest. A width
  // above 32 bits (pathological alternation between the extremes of the
  // uint32 range) cannot beat FOR, which is capped at 32.
  uint32_t delta_width = 0;
  for (size_t i = 1; i < n; ++i) {
    int64_t d = static_cast<int64_t>(values[i]) -
                static_cast<int64_t>(values[i - 1]);
    delta_width = std::max(delta_width, BitsFor(ZigZag(d)));
  }
  const size_t delta_bytes = PayloadBytes(n - 1, delta_width);

  uint64_t scratch[kBlockValues];
  if (delta_width <= 32 && delta_bytes < for_bytes) {
    WriteHeader(out, kModeDelta, delta_width, n, values[0]);
    for (size_t i = 1; i < n; ++i) {
      scratch[i - 1] = ZigZag(static_cast<int64_t>(values[i]) -
                              static_cast<int64_t>(values[i - 1]));
    }
    PackBits(scratch, n - 1, delta_width, out + kBlockHeaderBytes);
    return kBlockHeaderBytes + delta_bytes;
  }
  WriteHeader(out, kModeFor, for_width, n, base);
  for (size_t i = 0; i < n; ++i) scratch[i] = values[i] - base;
  PackBits(scratch, n, for_width, out + kBlockHeaderBytes);
  return kBlockHeaderBytes + for_bytes;
}

Result<size_t> EncodedBlockSize(const uint8_t* data, size_t available) {
  if (available < kBlockHeaderBytes) {
    return Status::InvalidArgument("compressed block: truncated header");
  }
  const uint8_t mode = data[0];
  const uint32_t width = data[1];
  const size_t count = static_cast<size_t>(data[2]) |
                       (static_cast<size_t>(data[3]) << 8);
  if (mode > kModeDelta || width > 32 || count > kBlockValues) {
    return Status::InvalidArgument("compressed block: malformed header");
  }
  const size_t packed = mode == kModeDelta && count > 0 ? count - 1 : count;
  const size_t total = kBlockHeaderBytes + PayloadBytes(packed, width);
  if (total > available) {
    return Status::InvalidArgument("compressed block: truncated payload");
  }
  return total;
}

Status DecodeBlock(const uint8_t* data, size_t available,
                   size_t expected_count, uint32_t* out) {
  SJ_ASSIGN_OR_RETURN(size_t total, EncodedBlockSize(data, available));
  (void)total;
  const uint8_t mode = data[0];
  const uint32_t width = data[1];
  const size_t count = static_cast<size_t>(data[2]) |
                       (static_cast<size_t>(data[3]) << 8);
  if (count != expected_count) {
    return Status::InvalidArgument("compressed block: count mismatch");
  }
  if (count == 0) return Status::OK();
  uint32_t base;
  std::memcpy(&base, data + 4, sizeof(uint32_t));

  uint64_t scratch[kBlockValues];
  if (mode == kModeDelta) {
    UnpackBits(data + kBlockHeaderBytes, count - 1, width, scratch);
    out[0] = base;
    for (size_t i = 1; i < count; ++i) {
      out[i] = static_cast<uint32_t>(static_cast<int64_t>(out[i - 1]) +
                                     UnZigZag(scratch[i - 1]));
    }
    return Status::OK();
  }
  UnpackBits(data + kBlockHeaderBytes, count, width, scratch);
  for (size_t i = 0; i < count; ++i) {
    out[i] = base + static_cast<uint32_t>(scratch[i]);
  }
  return Status::OK();
}

}  // namespace sj::encoding
