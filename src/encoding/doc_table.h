// The XPath accelerator document encoding (Grust, SIGMOD 2002).
//
// Each document node v is mapped to its preorder and postorder traversal
// ranks <pre(v), post(v)>. The relation
//
//     pre/post plane region        axis from context node c
//     ------------------------     -------------------------
//     pre > pre(c), post < post(c)  descendant
//     pre < pre(c), post > post(c)  ancestor
//     pre > pre(c), post > post(c)  following
//     pre < pre(c), post < post(c)  preceding
//
// partitions the document into the four regions of paper Fig. 1/2. The
// DocTable stores the encoding column-wise in BATs: `pre` is the void head
// (only positions), `post`/`level`/`kind`/`tag`/`parent` are dense tails.
// Attribute nodes participate in the traversal (ranked directly after their
// owner element) and carry kind = kAttribute so axis steps can filter them,
// reproducing the paper's "special encoding ... filtered out if needed".

#ifndef STAIRJOIN_ENCODING_DOC_TABLE_H_
#define STAIRJOIN_ENCODING_DOC_TABLE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bat/bat.h"
#include "util/result.h"
#include "util/status.h"

namespace sj {

/// A node is identified by its preorder rank (the void head oid).
using NodeId = uint32_t;

/// Invalid / nil node id (parent of the root).
inline constexpr NodeId kNilNode = bat::kNilOid;

/// Dictionary code of an element/attribute name or PI target.
using TagId = uint32_t;

/// Tag code carried by nodes without a name (text, comments). This is a
/// *legitimate* value of the tag column, not an "absent" marker --
/// TagDictionary::Lookup reports never-interned names as std::nullopt
/// precisely so the two cases cannot be conflated.
inline constexpr TagId kNoTag = 0xFFFFFFFFu;

/// XPath data-model node categories stored in the `kind` column.
enum class NodeKind : uint8_t {
  kElement = 0,
  kAttribute = 1,
  kText = 2,
  kComment = 3,
  kProcessingInstruction = 4,
};

/// \brief Interns tag names; code order is first-occurrence order.
class TagDictionary {
 public:
  /// Returns the code for `name`, interning it on first use.
  TagId Intern(std::string_view name);

  /// Returns the code for `name`, or std::nullopt when never interned
  /// (distinct from kNoTag, which is the tag column value of unnamed
  /// nodes and could otherwise be confused with "unknown name").
  std::optional<TagId> Lookup(std::string_view name) const;

  /// Returns the name for a valid code.
  const std::string& Name(TagId id) const { return names_[id]; }

  /// Number of distinct tags.
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, TagId> codes_;
  std::vector<std::string> names_;
};

/// A context/result node sequence: pre ranks, normally in document order.
using NodeSequence = std::vector<NodeId>;

/// True iff `seq` is strictly increasing (document order, duplicate free).
bool IsDocumentOrder(const NodeSequence& seq);

/// \brief The encoded document: the relational `doc` table of the paper.
///
/// Nodes are addressed by pre rank. The table is immutable once built
/// (documents are loaded, then queried); DocTableBuilder produces it.
class DocTable {
 public:
  /// Number of encoded nodes (attributes included).
  size_t size() const { return post_.size(); }
  bool empty() const { return post_.empty(); }

  /// The document element (smallest pre rank).
  NodeId root() const { return 0; }

  /// Postorder rank of node v.
  uint32_t post(NodeId v) const { return post_.AtOid(v); }
  /// Depth of v; the root has level 0.
  uint32_t level(NodeId v) const { return level_.AtOid(v); }
  /// Node category of v.
  NodeKind kind(NodeId v) const {
    return static_cast<NodeKind>(kind_.AtOid(v));
  }
  /// Tag code of v (kNoTag for text/comment nodes).
  TagId tag(NodeId v) const { return tag_.AtOid(v); }
  /// Parent of v (kNilNode for the root).
  NodeId parent(NodeId v) const { return parent_.AtOid(v); }

  /// Exact subtree size: number of descendants of v, attributes included.
  /// Satisfies Eq. (1) with the exact level: size = post - pre + level.
  uint32_t subtree_size(NodeId v) const {
    return post(v) - v + level(v);
  }

  /// Height h of the document (maximum level); Eq. (1)'s bound.
  uint32_t height() const { return height_; }

  /// Raw post column for the sequential scan kernels.
  std::span<const uint32_t> posts() const { return post_.tail(); }
  /// Raw kind column (uint8_t-encoded NodeKind).
  std::span<const uint8_t> kinds() const { return kind_.tail(); }
  /// Raw level column.
  std::span<const uint8_t> levels() const { return level_.tail(); }
  /// Raw parent column.
  std::span<const uint32_t> parents() const { return parent_.tail(); }
  /// Raw tag column.
  std::span<const uint32_t> tags_column() const { return tag_.tail(); }

  /// The tag dictionary.
  const TagDictionary& tags() const { return dict_; }

  /// Text / attribute / comment / PI value of v ("" when values were not
  /// stored at build time or v is an element).
  std::string_view value(NodeId v) const;

  /// True iff node values were retained at build time.
  bool has_values() const { return !value_offset_.empty(); }

  /// Number of attribute nodes.
  uint64_t attribute_count() const { return attribute_count_; }

  // --- Region predicates (paper Fig. 1/2) -------------------------------

  /// v is in the descendant region of c.
  bool IsDescendant(NodeId v, NodeId c) const {
    return v > c && post(v) < post(c);
  }
  /// v is in the ancestor region of c.
  bool IsAncestor(NodeId v, NodeId c) const {
    return v < c && post(v) > post(c);
  }
  /// v is in the following region of c.
  bool IsFollowing(NodeId v, NodeId c) const {
    return v > c && post(v) > post(c);
  }
  /// v is in the preceding region of c.
  bool IsPreceding(NodeId v, NodeId c) const {
    return v < c && post(v) < post(c);
  }

  /// Validates a node id.
  Status CheckNode(NodeId v) const {
    if (v < size()) return Status::OK();
    return Status::OutOfRange("node id " + std::to_string(v) +
                              " outside document of " +
                              std::to_string(size()) + " nodes");
  }

  /// Human-readable one-line description of a node (for examples/tooling).
  std::string DebugString(NodeId v) const;

 private:
  friend class DocTableBuilder;

  bat::Bat<uint32_t> post_;
  bat::Bat<uint8_t> level_;
  bat::Bat<uint8_t> kind_;
  bat::Bat<uint32_t> tag_;
  bat::Bat<uint32_t> parent_;
  // Optional value storage: per-node [offset, offset+length) into heap_.
  std::vector<uint32_t> value_offset_;
  std::vector<uint32_t> value_length_;
  std::string heap_;
  TagDictionary dict_;
  uint32_t height_ = 0;
  uint64_t attribute_count_ = 0;
};

}  // namespace sj

#endif  // STAIRJOIN_ENCODING_DOC_TABLE_H_
