#include "encoding/serialize.h"

#include <vector>

#include "xml/writer.h"

namespace sj {

Status EmitSubtree(const DocTable& doc, NodeId v,
                   xml::EventHandler* handler) {
  SJ_RETURN_NOT_OK(doc.CheckNode(v));
  if (handler == nullptr) {
    return Status::InvalidArgument("EmitSubtree: handler must not be null");
  }
  // The subtree occupies the contiguous pre range [v, v + size]; elements
  // close when the walk reaches a node outside their descendant region,
  // tracked by a stack of (pre, post) frames.
  const uint64_t end = static_cast<uint64_t>(v) + doc.subtree_size(v);
  std::vector<NodeId> open;  // element stack
  auto close_until = [&](uint64_t next_pre) -> Status {
    while (!open.empty()) {
      NodeId top = open.back();
      // top stays open while the next node is its descendant.
      if (next_pre <= end && next_pre < doc.size() &&
          doc.IsDescendant(static_cast<NodeId>(next_pre), top)) {
        break;
      }
      SJ_RETURN_NOT_OK(
          handler->EndElement(doc.tags().Name(doc.tag(top))));
      open.pop_back();
    }
    return Status::OK();
  };

  for (uint64_t i = v; i <= end; ++i) {
    NodeId node = static_cast<NodeId>(i);
    switch (doc.kind(node)) {
      case NodeKind::kElement:
        SJ_RETURN_NOT_OK(
            handler->StartElement(doc.tags().Name(doc.tag(node))));
        open.push_back(node);
        break;
      case NodeKind::kAttribute:
        SJ_RETURN_NOT_OK(handler->Attribute(doc.tags().Name(doc.tag(node)),
                                            doc.value(node)));
        break;
      case NodeKind::kText:
        SJ_RETURN_NOT_OK(handler->Text(doc.value(node)));
        break;
      case NodeKind::kComment:
        SJ_RETURN_NOT_OK(handler->Comment(doc.value(node)));
        break;
      case NodeKind::kProcessingInstruction:
        SJ_RETURN_NOT_OK(handler->ProcessingInstruction(
            doc.tags().Name(doc.tag(node)), doc.value(node)));
        break;
    }
    SJ_RETURN_NOT_OK(close_until(i + 1));
  }
  return Status::OK();
}

Result<std::string> SerializeSubtree(const DocTable& doc, NodeId v) {
  SJ_RETURN_NOT_OK(doc.CheckNode(v));
  if (!doc.has_values()) {
    return Status::InvalidArgument(
        "SerializeSubtree: table built without store_values");
  }
  if (doc.kind(v) == NodeKind::kAttribute) {
    return Status::InvalidArgument(
        "SerializeSubtree: attribute nodes serialize within their element");
  }
  std::string out;
  xml::TextWriter writer(&out);
  SJ_RETURN_NOT_OK(EmitSubtree(doc, v, &writer));
  return out;
}

Result<std::string> SerializeSequence(const DocTable& doc,
                                      const NodeSequence& nodes) {
  std::string out;
  xml::TextWriter writer(&out);
  for (NodeId v : nodes) {
    SJ_RETURN_NOT_OK(doc.CheckNode(v));
    if (!doc.has_values()) {
      return Status::InvalidArgument(
          "SerializeSequence: table built without store_values");
    }
    if (doc.kind(v) == NodeKind::kAttribute) {
      // Attributes in a sequence serialize as their value, the closest
      // analogue of the XQuery serialization rules.
      SJ_RETURN_NOT_OK(writer.Text(doc.value(v)));
      continue;
    }
    SJ_RETURN_NOT_OK(EmitSubtree(doc, v, &writer));
  }
  return out;
}

}  // namespace sj
