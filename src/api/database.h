// Database: the coherent, immutable, thread-safe set of backend images
// for one document (or collection), opened once and shared by any number
// of Sessions.
//
// Opening a database builds (or adopts) the resident DocTable, the
// resident tag fragments (TagIndex), and -- unless disabled -- the paged
// image (SimulatedDisk + PagedDocTable + PagedTagIndex) behind one
// sharded BufferPool. The column/fragment digests are validated HERE, at
// open time: a stale or mismatched paged image is rejected with a Status
// naming the failing column set, instead of surfacing lazily on some
// thread's first paged query. After construction the database is
// immutable (the buffer pool is internally synchronized), so sessions on
// different threads share it freely.

#ifndef STAIRJOIN_API_DATABASE_H_
#define STAIRJOIN_API_DATABASE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "api/plan_cache.h"
#include "api/session.h"
#include "core/tag_view.h"
#include "encoding/builder.h"
#include "encoding/doc_table.h"
#include "storage/buffer_pool.h"
#include "storage/compressed_doc.h"
#include "storage/compressed_tags.h"
#include "storage/paged_doc.h"
#include "storage/paged_tags.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "xmlgen/xmark.h"

namespace sj {

/// \brief Open-time configuration: which backend images to build.
struct DatabaseOptions {
  /// Encoding options for the documents (value storage etc.).
  BuildOptions build;
  /// Build the resident tag fragments (name-test pushdown on the memory
  /// backend; also the selectivity statistics of kAuto pushdown).
  bool build_tag_index = true;
  /// Build the paged image: disk + paged doc columns + paged tag
  /// fragments + shared buffer pool. Off saves the page-out for purely
  /// in-memory use; sessions then cannot choose StorageBackend::kPaged.
  bool build_paged = true;
  /// Build the compressed image: block-wise FOR/delta doc columns +
  /// compressed tag fragments on the same disk, behind the same shared
  /// pool. Off saves the encode pass; sessions then cannot choose
  /// StorageBackend::kCompressed.
  bool build_compressed = true;
  /// Capacity of the shared buffer pool, in pages.
  size_t pool_pages = 256;
  /// Latch shards of the shared pool; 0 picks one per hardware thread
  /// (capped at 16). 1 degenerates to a single global latch.
  size_t pool_shards = 0;
  /// Capacity of the plan cache (entries); 0 disables it and every query
  /// parses and plans afresh.
  size_t plan_cache_entries = 64;
  /// Turn SkipTo/LowerBound prefetch hints into batched pool reads
  /// (BufferPool::Prefetch) on the shared pool AND every session's
  /// private pool. Off by default: fault counts then stay exactly the
  /// numbers the paper experiments (and the committed baselines) count.
  bool prefetch = false;
};

/// \brief Lifetime counters of one Database: how many sessions were
/// created and what they ran. A consistent cross-session snapshot (the
/// counters are updated under one mutex), the seed of the ROADMAP's
/// query-serving layer (hit rates, admission control need exactly these).
struct DatabaseStats {
  uint64_t sessions_created = 0;  ///< successful CreateSession calls
  uint64_t queries_run = 0;       ///< successful Session::Run calls
  uint64_t queries_failed = 0;    ///< Run calls that returned a Status
  uint64_t result_nodes = 0;      ///< result cardinality, summed
  uint64_t plan_cache_hits = 0;       ///< queries served a cached plan
  uint64_t plan_cache_misses = 0;     ///< queries that parsed + planned
  uint64_t plan_cache_evictions = 0;  ///< plans displaced by capacity
};

/// \brief An immutable, thread-safe set of backend images over one
/// document; the factory for Sessions.
class Database {
 public:
  /// Parses XML text and opens a database over it.
  static Result<std::unique_ptr<Database>> FromXml(
      std::string_view xml, DatabaseOptions options = {});

  /// Generates an XMark-style instance and opens a database over it.
  static Result<std::unique_ptr<Database>> FromXmark(
      const xmlgen::XMarkOptions& gen, DatabaseOptions options = {});

  /// Opens a database over an XML file, or -- when `path` is a directory
  /// -- over every `*.xml` file in it (sorted by name), gathered under a
  /// virtual root as a collection (paper footnote 1); document_roots()
  /// then maps results back to their source documents.
  static Result<std::unique_ptr<Database>> Open(
      const std::string& path, DatabaseOptions options = {});

  /// Opens a database over an already-encoded table (takes ownership).
  static Result<std::unique_ptr<Database>> FromTable(
      std::unique_ptr<DocTable> doc, DatabaseOptions options = {});

  /// Adopts externally built backend images instead of paging `doc` out
  /// afresh. This is where image coherence is enforced: the paged doc
  /// columns and paged tag fragments are digest-checked against `doc`
  /// and a mismatch is rejected with a Status naming the failing column
  /// set -- at open time, not on the first paged query. `tag_index`,
  /// `paged_doc` and `paged_tags` may be null (the corresponding
  /// features are then unavailable); `paged_doc` requires `disk`.
  /// `options.build`/`build_*`/pool sizing apply to the pool only.
  static Result<std::unique_ptr<Database>> FromParts(
      std::unique_ptr<DocTable> doc, std::unique_ptr<TagIndex> tag_index,
      std::unique_ptr<storage::SimulatedDisk> disk,
      std::unique_ptr<storage::PagedDocTable> paged_doc,
      std::unique_ptr<storage::PagedTagIndex> paged_tags,
      DatabaseOptions options = {});

  /// Same, additionally adopting compressed images. The compressed doc
  /// columns and fragments are digest-checked against `doc` AND their
  /// on-disk encoded blocks are re-read and verified against the image
  /// digests, so a corrupt (bit-flipped) or stale compressed block is
  /// rejected here with a Status naming the column -- never served to a
  /// query. `compressed_doc` requires `disk`.
  static Result<std::unique_ptr<Database>> FromParts(
      std::unique_ptr<DocTable> doc, std::unique_ptr<TagIndex> tag_index,
      std::unique_ptr<storage::SimulatedDisk> disk,
      std::unique_ptr<storage::PagedDocTable> paged_doc,
      std::unique_ptr<storage::PagedTagIndex> paged_tags,
      std::unique_ptr<storage::CompressedDocTable> compressed_doc,
      std::unique_ptr<storage::CompressedTagIndex> compressed_tags,
      DatabaseOptions options);

  /// Creates a query session. Cheap (no digest passes, no allocation
  /// beyond the evaluator); fails when the options name a backend the
  /// database was not opened with.
  Result<Session> CreateSession(SessionOptions options = {}) const;

  /// The encoded document (collection).
  const DocTable& doc() const { return *doc_; }

  /// True when sessions may choose StorageBackend::kPaged.
  bool has_paged_backend() const { return paged_doc_ != nullptr; }
  /// True when sessions may choose StorageBackend::kCompressed.
  bool has_compressed_backend() const { return compressed_doc_ != nullptr; }

  /// Resident tag fragments; null when disabled at open time.
  const TagIndex* tag_index() const { return tag_index_.get(); }
  /// Paged doc columns; null without a paged image.
  const storage::PagedDocTable* paged_doc() const { return paged_doc_.get(); }
  /// Paged tag fragments; null without a paged image.
  const storage::PagedTagIndex* paged_tags() const {
    return paged_tags_.get();
  }
  /// Compressed doc columns; null without a compressed image.
  const storage::CompressedDocTable* compressed_doc() const {
    return compressed_doc_.get();
  }
  /// Compressed tag fragments; null without a compressed image.
  const storage::CompressedTagIndex* compressed_tags() const {
    return compressed_tags_.get();
  }
  /// The shared buffer pool (internally synchronized); null without a
  /// paged image. Exposed for experiment control (cold starts, fault
  /// accounting).
  storage::BufferPool* buffer_pool() const { return pool_.get(); }
  /// The disk image behind the paged backend; null without one.
  storage::SimulatedDisk* disk() const { return disk_.get(); }

  /// DocColumnsDigest of doc(), captured once at open time; absent on a
  /// database opened without any pool-backed image (nothing to validate
  /// -- the resident columns ARE the document).
  std::optional<uint64_t> doc_digest() const { return doc_digest_; }

  /// Pre ranks of the gathered document elements when the database was
  /// opened over a directory; empty otherwise.
  const NodeSequence& document_roots() const { return document_roots_; }

  /// A consistent snapshot of the lifetime counters (taken under the
  /// stats mutex; safe to call concurrently with running sessions). The
  /// plan-cache counters are folded in from the cache's own latch.
  DatabaseStats TotalStats() const SJ_EXCLUDES(stats_mu_);

  /// The plan cache; null when disabled (plan_cache_entries == 0).
  /// Exposed for tests (entry counts); sessions go through Run.
  PlanCache* plan_cache() const { return plan_cache_.get(); }

  /// Whether this database turns cursor prefetch hints into batched
  /// pool reads (DatabaseOptions::prefetch).
  bool prefetch_enabled() const { return prefetch_; }

 private:
  friend class Session;  // reports query completion into stats_

  Database() = default;

  /// Called by Session::Run on completion (any thread).
  void RecordQuery(bool ok, uint64_t result_nodes) const
      SJ_EXCLUDES(stats_mu_);

  /// Builds the missing images per `options`, digest-validates whatever
  /// paged images are present, and opens the pool.
  static Result<std::unique_ptr<Database>> Finish(
      std::unique_ptr<Database> db, const DatabaseOptions& options,
      bool build_missing);

  std::unique_ptr<DocTable> doc_;
  std::unique_ptr<TagIndex> tag_index_;
  std::unique_ptr<storage::SimulatedDisk> disk_;
  std::unique_ptr<storage::PagedDocTable> paged_doc_;
  std::unique_ptr<storage::PagedTagIndex> paged_tags_;
  std::unique_ptr<storage::CompressedDocTable> compressed_doc_;
  std::unique_ptr<storage::CompressedTagIndex> compressed_tags_;
  std::unique_ptr<storage::BufferPool> pool_;
  /// Internally synchronized, like the pool; null when disabled.
  std::unique_ptr<PlanCache> plan_cache_;
  bool prefetch_ = false;
  std::optional<uint64_t> doc_digest_;
  std::optional<uint64_t> frag_digest_;
  NodeSequence document_roots_;

  /// The one mutable part of an open Database. Everything above is
  /// immutable after open (or internally synchronized, like the pool);
  /// these counters are written by every session's Run, so they take the
  /// stats latch -- compile-time enforced, like the BufferPool shards.
  mutable Mutex stats_mu_;
  mutable DatabaseStats stats_ SJ_GUARDED_BY(stats_mu_);
};

}  // namespace sj

#endif  // STAIRJOIN_API_DATABASE_H_
