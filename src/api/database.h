// Database: the coherent, thread-safe set of backend images for one
// document (or collection), opened once and shared by any number of
// Sessions.
//
// Opening a database builds (or adopts) the resident DocTable, the
// resident tag fragments (TagIndex), and -- unless disabled -- the paged
// image (SimulatedDisk + PagedDocTable + PagedTagIndex) behind one
// sharded BufferPool. The column/fragment digests are validated HERE, at
// open time: a stale or mismatched paged image is rejected with a Status
// naming the failing column set, instead of surfacing lazily on some
// thread's first paged query.
//
// The images themselves stay immutable forever; what varies is WHICH
// images-plus-overlay a query sees. The database publishes epoch-stamped
// DatabaseSnapshots (api/snapshot.h): BeginEdit() opens a transaction
// against the current snapshot, its Commit() publishes the same images
// with a grown delta overlay as epoch+1, and Compact() folds the overlay
// into freshly rebuilt (and re-digested) images. Sessions pin a snapshot
// per Run, so readers on other threads are never blocked or invalidated
// by writers (snapshot isolation; see api/snapshot.h).

#ifndef STAIRJOIN_API_DATABASE_H_
#define STAIRJOIN_API_DATABASE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "api/plan_cache.h"
#include "api/session.h"
#include "api/snapshot.h"
#include "core/tag_view.h"
#include "delta/overlay.h"
#include "encoding/builder.h"
#include "encoding/doc_table.h"
#include "storage/buffer_pool.h"
#include "storage/compressed_doc.h"
#include "storage/compressed_tags.h"
#include "storage/paged_doc.h"
#include "storage/paged_tags.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "xmlgen/xmark.h"

namespace sj {

class Database;

/// \brief Open-time configuration: which backend images to build.
struct DatabaseOptions {
  /// Encoding options for the documents (value storage etc.).
  BuildOptions build;
  /// Build the resident tag fragments (name-test pushdown on the memory
  /// backend; also the selectivity statistics of kAuto pushdown).
  bool build_tag_index = true;
  /// Build the paged image: disk + paged doc columns + paged tag
  /// fragments + shared buffer pool. Off saves the page-out for purely
  /// in-memory use; sessions then cannot choose StorageBackend::kPaged.
  bool build_paged = true;
  /// Build the compressed image: block-wise FOR/delta doc columns +
  /// compressed tag fragments on the same disk, behind the same shared
  /// pool. Off saves the encode pass; sessions then cannot choose
  /// StorageBackend::kCompressed.
  bool build_compressed = true;
  /// Capacity of the shared buffer pool, in pages.
  size_t pool_pages = 256;
  /// Latch shards of the shared pool; 0 picks one per hardware thread
  /// (capped at 16). 1 degenerates to a single global latch.
  size_t pool_shards = 0;
  /// Capacity of the plan cache (entries); 0 disables it and every query
  /// parses and plans afresh.
  size_t plan_cache_entries = 64;
  /// Turn SkipTo/LowerBound prefetch hints into batched pool reads
  /// (BufferPool::Prefetch) on the shared pool AND every session's
  /// private pool. Off by default: fault counts then stay exactly the
  /// numbers the paper experiments (and the committed baselines) count.
  bool prefetch = false;
};

/// \brief Lifetime counters of one Database: how many sessions were
/// created and what they ran. A consistent cross-session snapshot (the
/// counters are updated under one mutex), the seed of the ROADMAP's
/// query-serving layer (hit rates, admission control need exactly these).
struct DatabaseStats {
  uint64_t sessions_created = 0;  ///< successful CreateSession calls
  uint64_t queries_run = 0;       ///< successful Session::Run calls
  uint64_t queries_failed = 0;    ///< Run calls that returned a Status
  uint64_t result_nodes = 0;      ///< result cardinality, summed
  uint64_t plan_cache_hits = 0;       ///< queries served a cached plan
  uint64_t plan_cache_misses = 0;     ///< queries that parsed + planned
  uint64_t plan_cache_evictions = 0;  ///< plans displaced by capacity
  uint64_t edits_committed = 0;   ///< EditTxn::Commit calls that published
  uint64_t delta_nodes = 0;       ///< resident delta nodes, current snapshot
  uint64_t compactions = 0;       ///< Compact calls that folded a delta
  uint64_t snapshots_pinned = 0;  ///< session snapshot binds + rebinds
};

/// \brief One edit transaction against a pinned snapshot.
///
/// Created by Database::BeginEdit(); single-threaded, like a Session.
/// Edit coordinates are LOGICAL pre ranks of the transaction's working
/// state: ops compose, each seeing the document as left by the previous
/// one. Nothing is visible to queries until Commit() publishes the new
/// snapshot; dropping the transaction uncommitted discards it. The
/// transaction holds no lock while open -- concurrency control is
/// optimistic: Commit fails (and the transaction stays discardable) when
/// another edit published since BeginEdit, so retrying means re-running
/// the edit script against a fresh BeginEdit.
class EditTxn {
 public:
  EditTxn(EditTxn&&) = default;
  EditTxn& operator=(EditTxn&&) = default;
  EditTxn(const EditTxn&) = delete;
  EditTxn& operator=(const EditTxn&) = delete;

  /// Parses `fragment_xml` (one element) and appends it as the last
  /// child of element `parent` (after its attributes and children).
  Status InsertLastChild(NodeId parent, std::string_view fragment_xml);

  /// Removes the subtree rooted at `v` (attributes included). The
  /// document root (logical 0) is not deletable.
  Status DeleteSubtree(NodeId v);

  /// Replaces the subtree rooted at `v` with a parsed fragment, keeping
  /// its position among siblings. `v` must not be an attribute.
  Status ReplaceSubtree(NodeId v, std::string_view fragment_xml);

  /// Node count of the transaction's working document.
  uint64_t logical_size() const;

  /// Edit ops successfully applied so far.
  uint64_t ops_applied() const;

  /// Publishes the edits as the next snapshot epoch. A transaction with
  /// no applied ops commits as a no-op (no epoch bump). Fails with
  /// kInvalidArgument when another transaction committed since
  /// BeginEdit (optimistic conflict: epochs only grow, so the only
  /// continuation is to begin a fresh edit and re-apply the script).
  /// Success spends the transaction.
  Status Commit();

 private:
  friend class Database;

  EditTxn(Database* db, std::shared_ptr<const DatabaseSnapshot> snap);

  Database* db_;
  std::shared_ptr<const DatabaseSnapshot> snap_;
  std::unique_ptr<delta::OverlayBuilder> builder_;
};

/// \brief A thread-safe set of backend images + snapshots over one
/// document; the factory for Sessions.
class Database {
 public:
  /// Parses XML text and opens a database over it.
  static Result<std::unique_ptr<Database>> FromXml(
      std::string_view xml, DatabaseOptions options = {});

  /// Generates an XMark-style instance and opens a database over it.
  static Result<std::unique_ptr<Database>> FromXmark(
      const xmlgen::XMarkOptions& gen, DatabaseOptions options = {});

  /// Opens a database over an XML file, or -- when `path` is a directory
  /// -- over every `*.xml` file in it (sorted by name), gathered under a
  /// virtual root as a collection (paper footnote 1); document_roots()
  /// then maps results back to their source documents.
  static Result<std::unique_ptr<Database>> Open(
      const std::string& path, DatabaseOptions options = {});

  /// Opens a database over an already-encoded table (takes ownership).
  static Result<std::unique_ptr<Database>> FromTable(
      std::unique_ptr<DocTable> doc, DatabaseOptions options = {});

  /// Adopts externally built backend images instead of paging `doc` out
  /// afresh. This is where image coherence is enforced: the paged doc
  /// columns and paged tag fragments are digest-checked against `doc`
  /// and a mismatch is rejected with a Status naming the failing column
  /// set -- at open time, not on the first paged query. `tag_index`,
  /// `paged_doc` and `paged_tags` may be null (the corresponding
  /// features are then unavailable); `paged_doc` requires `disk`.
  /// `options.build`/`build_*`/pool sizing apply to the pool only.
  static Result<std::unique_ptr<Database>> FromParts(
      std::unique_ptr<DocTable> doc, std::unique_ptr<TagIndex> tag_index,
      std::unique_ptr<storage::SimulatedDisk> disk,
      std::unique_ptr<storage::PagedDocTable> paged_doc,
      std::unique_ptr<storage::PagedTagIndex> paged_tags,
      DatabaseOptions options = {});

  /// Same, additionally adopting compressed images. The compressed doc
  /// columns and fragments are digest-checked against `doc` AND their
  /// on-disk encoded blocks are re-read and verified against the image
  /// digests, so a corrupt (bit-flipped) or stale compressed block is
  /// rejected here with a Status naming the column -- never served to a
  /// query. `compressed_doc` requires `disk`.
  static Result<std::unique_ptr<Database>> FromParts(
      std::unique_ptr<DocTable> doc, std::unique_ptr<TagIndex> tag_index,
      std::unique_ptr<storage::SimulatedDisk> disk,
      std::unique_ptr<storage::PagedDocTable> paged_doc,
      std::unique_ptr<storage::PagedTagIndex> paged_tags,
      std::unique_ptr<storage::CompressedDocTable> compressed_doc,
      std::unique_ptr<storage::CompressedTagIndex> compressed_tags,
      DatabaseOptions options);

  /// Creates a query session. Cheap (no digest passes, no allocation
  /// beyond the evaluator); fails when the options name a backend the
  /// database was not opened with. The session binds the current
  /// snapshot and follows later commits/compactions on its next Run.
  Result<Session> CreateSession(SessionOptions options = {}) const;

  /// Opens an edit transaction against the current snapshot (see
  /// EditTxn). Any number may be open concurrently; the first to Commit
  /// wins, later ones fail their optimistic check.
  EditTxn BeginEdit();

  /// Folds the current snapshot's delta overlay into freshly rebuilt
  /// paged + compressed images (same DatabaseOptions as the open) and
  /// publishes them as the next epoch with no overlay. A no-op (OK,
  /// no epoch bump, no counter) when the current snapshot carries no
  /// edits. Queries over the compacted snapshot are node-identical to
  /// the overlay they replaced; sessions pinning older epochs keep
  /// their images alive and drain on their own schedule.
  Status Compact() SJ_EXCLUDES(edit_mu_);

  /// The current snapshot (pinned; never null). The cheap, always-safe
  /// way to hold a consistent view across edits and compactions.
  std::shared_ptr<const DatabaseSnapshot> CurrentSnapshot() const
      SJ_EXCLUDES(snapshot_mu_);

  /// The encoded document (collection) of the CURRENT snapshot -- the
  /// base table under any uncompacted edits. Borrowed: stable until a
  /// Compact replaces the images; hold CurrentSnapshot() across
  /// compactions instead.
  const DocTable& doc() const { return *CurrentSnapshot()->images().doc; }

  /// True when sessions may choose StorageBackend::kPaged.
  bool has_paged_backend() const {
    return CurrentSnapshot()->images().paged_doc != nullptr;
  }
  /// True when sessions may choose StorageBackend::kCompressed.
  bool has_compressed_backend() const {
    return CurrentSnapshot()->images().compressed_doc != nullptr;
  }

  /// Resident tag fragments; null when disabled at open time. Borrowed
  /// from the current snapshot, like doc().
  const TagIndex* tag_index() const {
    return CurrentSnapshot()->images().tag_index.get();
  }
  /// Paged doc columns; null without a paged image.
  const storage::PagedDocTable* paged_doc() const {
    return CurrentSnapshot()->images().paged_doc.get();
  }
  /// Paged tag fragments; null without a paged image.
  const storage::PagedTagIndex* paged_tags() const {
    return CurrentSnapshot()->images().paged_tags.get();
  }
  /// Compressed doc columns; null without a compressed image.
  const storage::CompressedDocTable* compressed_doc() const {
    return CurrentSnapshot()->images().compressed_doc.get();
  }
  /// Compressed tag fragments; null without a compressed image.
  const storage::CompressedTagIndex* compressed_tags() const {
    return CurrentSnapshot()->images().compressed_tags.get();
  }
  /// The shared buffer pool (internally synchronized); null without a
  /// paged image. Exposed for experiment control (cold starts, fault
  /// accounting).
  storage::BufferPool* buffer_pool() const {
    return CurrentSnapshot()->images().pool.get();
  }
  /// The disk image behind the paged backend; null without one.
  storage::SimulatedDisk* disk() const {
    return CurrentSnapshot()->images().disk.get();
  }

  /// DocColumnsDigest of doc(), captured once per image build; absent on
  /// a database opened without any pool-backed image (nothing to
  /// validate -- the resident columns ARE the document).
  std::optional<uint64_t> doc_digest() const {
    return CurrentSnapshot()->images().doc_digest;
  }

  /// Logical pre ranks of the gathered document elements when the
  /// database was opened over a directory; empty otherwise. Tracks
  /// deletes across epochs.
  const NodeSequence& document_roots() const {
    return CurrentSnapshot()->document_roots();
  }

  /// A consistent snapshot of the lifetime counters (taken under the
  /// stats mutex; safe to call concurrently with running sessions). The
  /// plan-cache counters are folded in from the cache's own latch.
  DatabaseStats TotalStats() const SJ_EXCLUDES(stats_mu_);

  /// Planner statistics of the CURRENT snapshot's base document: size,
  /// level histogram, per-tag fragment counts and level spreads --
  /// exactly what feeds the cost model (xpath/cost_model.h). Borrowed
  /// from the current snapshot (rebuilt by compaction); never null.
  /// Describes the BASE images: uncompacted edits are layered on top by
  /// the planner through the snapshot's merged tag dictionary.
  const DocStatistics& Statistics() const {
    return *CurrentSnapshot()->images().doc_stats;
  }

  /// The plan cache; null when disabled (plan_cache_entries == 0).
  /// Exposed for tests (entry counts); sessions go through Run.
  PlanCache* plan_cache() const { return plan_cache_.get(); }

  /// Whether this database turns cursor prefetch hints into batched
  /// pool reads (DatabaseOptions::prefetch).
  bool prefetch_enabled() const { return prefetch_; }

 private:
  friend class Session;  // reports query completion into stats_
  friend class EditTxn;  // publishes snapshots under edit_mu_

  Database() = default;

  /// Called by Session::Run on completion (any thread).
  void RecordQuery(bool ok, uint64_t result_nodes) const
      SJ_EXCLUDES(stats_mu_);

  /// Called per session snapshot bind/rebind.
  void RecordSnapshotPinned() const SJ_EXCLUDES(stats_mu_);

  /// Session wiring against one pinned snapshot: evaluator options (and
  /// the private pool, when requested) resolved from the snapshot's
  /// images + overlay. Shared by CreateSession and Session's rebind.
  Result<xpath::EvalOptions> MakeEvalOptions(
      const std::shared_ptr<const DatabaseSnapshot>& snap,
      const SessionOptions& options,
      std::unique_ptr<storage::BufferPool>* private_pool) const;

  /// Builds the missing images per `options`, digest-validates whatever
  /// pool-backed images are present, and opens the pool. The shared
  /// image factory of open and Compact.
  static Result<std::shared_ptr<const DatabaseImages>> BuildImages(
      std::unique_ptr<DatabaseImages> images, const DatabaseOptions& options,
      bool build_missing);

  /// BuildImages + database assembly: publishes epoch 0.
  static Result<std::unique_ptr<Database>> Finish(
      std::unique_ptr<DatabaseImages> images, DatabaseOptions options,
      bool build_missing, NodeSequence document_roots);

  /// Swaps in the next snapshot and updates the edit counters.
  /// `compaction` picks which counter the publish increments.
  void PublishSnapshot(std::shared_ptr<const DatabaseSnapshot> next,
                       bool compaction)
      SJ_EXCLUDES(snapshot_mu_, stats_mu_);

  /// Open-time configuration, kept for Compact's image rebuild and the
  /// sessions' private pools.
  DatabaseOptions options_;
  /// Internally synchronized, like the pool; null when disabled.
  std::unique_ptr<PlanCache> plan_cache_;
  bool prefetch_ = false;

  /// Serializes Commit and Compact (writers); never held while queries
  /// run. Ordered before snapshot_mu_ and stats_mu_.
  Mutex edit_mu_;

  /// The published snapshot chain's head. Readers copy the shared_ptr
  /// under the latch and go; writers swap under edit_mu_ + this.
  mutable Mutex snapshot_mu_;
  std::shared_ptr<const DatabaseSnapshot> snapshot_
      SJ_GUARDED_BY(snapshot_mu_);

  /// Lifetime counters, written by every session's Run (any thread).
  mutable Mutex stats_mu_;
  mutable DatabaseStats stats_ SJ_GUARDED_BY(stats_mu_);
};

}  // namespace sj

#endif  // STAIRJOIN_API_DATABASE_H_
