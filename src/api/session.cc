#include "api/session.h"

#include <algorithm>
#include <utility>

#include "api/database.h"
#include "util/timer.h"
#include "xpath/parser.h"

namespace sj {

Session::Session(const Database* db, SessionOptions options,
                 std::unique_ptr<storage::BufferPool> private_pool,
                 const xpath::EvalOptions& eval_options)
    : db_(db),
      options_(std::move(options)),
      private_pool_(std::move(private_pool)),
      eval_options_(eval_options),
      engine_(std::make_unique<xpath::Evaluator>(db->doc(), eval_options)) {}

Result<QueryResult> Session::Run(std::string_view xpath) {
  const DocTable& doc = db_->doc();
  return Run(xpath, doc.empty() ? NodeSequence{} : NodeSequence{doc.root()});
}

Result<QueryResult> Session::Run(std::string_view xpath,
                                 const NodeSequence& context) {
  Timer timer;
  SJ_ASSIGN_OR_RETURN(xpath::UnionExpr expr, xpath::ParseXPathUnion(xpath));
  SJ_ASSIGN_OR_RETURN(NodeSequence nodes, engine_->Evaluate(expr, context));
  QueryResult result;
  result.nodes = std::move(nodes);
  result.trace = engine_->last_trace();
  for (const StepTrace& step : result.trace) {
    result.totals.MergeFrom(step.stats);
    result.totals.workers = std::max(result.totals.workers,
                                     step.stats.workers);
  }
  result.totals.result_size = result.nodes.size();
  result.millis = timer.ElapsedMillis();
  return result;
}

}  // namespace sj
