#include "api/session.h"

#include <algorithm>
#include <utility>

#include "api/database.h"
#include "util/timer.h"
#include "xpath/parser.h"

namespace sj {

Session::Session(const Database* db, SessionOptions options,
                 std::unique_ptr<storage::BufferPool> private_pool,
                 const xpath::EvalOptions& eval_options)
    : db_(db),
      options_(std::move(options)),
      private_pool_(std::move(private_pool)),
      eval_options_(eval_options),
      engine_(std::make_unique<xpath::Evaluator>(db->doc(), eval_options)) {}

Result<QueryResult> Session::Run(std::string_view xpath) {
  const DocTable& doc = db_->doc();
  return Run(xpath, doc.empty() ? NodeSequence{} : NodeSequence{doc.root()});
}

Result<QueryResult> Session::Run(std::string_view xpath,
                                 const NodeSequence& context) {
  Timer timer;
  auto parsed = xpath::ParseXPathUnion(xpath);
  if (!parsed.ok()) {
    db_->RecordQuery(/*ok=*/false, 0);
    return parsed.status();
  }
  auto evaluated = engine_->Evaluate(parsed.value(), context);
  if (!evaluated.ok()) {
    db_->RecordQuery(/*ok=*/false, 0);
    return evaluated.status();
  }
  NodeSequence nodes = std::move(evaluated).value();
  db_->RecordQuery(/*ok=*/true, nodes.size());
  QueryResult result;
  result.nodes = std::move(nodes);
  result.trace = engine_->last_trace();
  for (const StepTrace& step : result.trace) {
    result.totals.MergeFrom(step.stats);
    result.totals.workers = std::max(result.totals.workers,
                                     step.stats.workers);
  }
  result.totals.result_size = result.nodes.size();
  result.millis = timer.ElapsedMillis();
  return result;
}

}  // namespace sj
