#include "api/session.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "api/database.h"
#include "util/timer.h"
#include "xpath/explain_strings.h"
#include "xpath/parser.h"

namespace sj {

std::string QueryResult::Explain() const {
  std::string out;
  if (snapshot_epoch > 0) {
    out += xpath::explain::kSnapshotOpen;
    out += std::to_string(snapshot_epoch);
    out += xpath::explain::kSnapshotDeltaOpen;
    out += std::to_string(snapshot_delta_nodes);
    out += xpath::explain::kSnapshotDeltaClose;
    out += "\n";
  }
  if (plan_cached) {
    out += xpath::explain::kPlanCachedOpen;
    out += std::to_string(plan_cache_hits);
    out += xpath::explain::kCloseParen;
    out += "\n";
  }
  out += xpath::ExplainTrace(trace);
  return out;
}

namespace {

/// The PlanStepSummary::op token of a StepOperator. Deliberately not in
/// explain_strings.h: these are structural API tokens, not EXPLAIN text.
const char* StepOperatorToken(xpath::StepOperator op) {
  switch (op) {
    case xpath::StepOperator::kStaircase:
      return "staircase";
    case xpath::StepOperator::kPushdown:
      return "pushdown";
    case xpath::StepOperator::kAxisCursor:
      return "axis-cursor";
    case xpath::StepOperator::kTwig:
      return "twig";
    case xpath::StepOperator::kTwigSubsumed:
      return "twig-subsumed";
    case xpath::StepOperator::kPositional:
      return "positional";
    case xpath::StepOperator::kPerContext:
      return "per-context";
    case xpath::StepOperator::kEmpty:
      return "empty";
  }
  return "unknown";
}

}  // namespace

std::vector<PlanStepSummary> QueryResult::PlanSummary() const {
  std::vector<PlanStepSummary> rows;
  rows.reserve(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    const StepTrace& step = trace[i];
    PlanStepSummary row;
    row.step = i + 1;
    row.op = StepOperatorToken(step.op);
    row.estimated_rows = step.estimated_rows;
    row.actual_rows = step.stats.result_size;
    row.faults = step.pool_faults;
    rows.push_back(std::move(row));
  }
  return rows;
}

Session::Session(const Database* db, SessionOptions options,
                 std::shared_ptr<const DatabaseSnapshot> snap,
                 std::unique_ptr<storage::BufferPool> private_pool,
                 const xpath::EvalOptions& eval_options)
    : db_(db),
      options_(std::move(options)),
      snap_(std::move(snap)),
      private_pool_(std::move(private_pool)),
      eval_options_(eval_options),
      engine_(std::make_unique<xpath::Evaluator>(*snap_->images().doc,
                                                 eval_options)) {}

Status Session::EnsureCurrentSnapshot() {
  std::shared_ptr<const DatabaseSnapshot> current = db_->CurrentSnapshot();
  if (current.get() == snap_.get()) return Status::OK();
  std::unique_ptr<storage::BufferPool> private_pool;
  SJ_ASSIGN_OR_RETURN(xpath::EvalOptions eval,
                      db_->MakeEvalOptions(current, options_, &private_pool));
  engine_ = std::make_unique<xpath::Evaluator>(*current->images().doc, eval);
  eval_options_ = std::move(eval);
  private_pool_ = std::move(private_pool);
  snap_ = std::move(current);
  // The memo's keys carry the superseded epoch; entries can never be
  // served again (PlanKey changed), so drop them wholesale.
  plan_memo_.clear();
  db_->RecordSnapshotPinned();
  return Status::OK();
}

std::string Session::PlanKey(std::string_view xpath) const {
  // '\x1f' (unit separator) cannot appear in a parseable query, so the
  // key is unambiguous. The selectivity threshold is a double: print a
  // round-trippable form, not a truncated one.
  char selectivity[32];
  std::snprintf(selectivity, sizeof(selectivity), "%.17g",
                options_.hints.pushdown_selectivity);
  std::string key(xpath);
  key += '\x1f';
  key += std::to_string(static_cast<int>(options_.hints.engine));
  key += '\x1f';
  key += std::to_string(static_cast<int>(options_.backend));
  key += '\x1f';
  key += std::to_string(static_cast<int>(options_.hints.pushdown));
  key += '\x1f';
  key += std::to_string(static_cast<int>(options_.hints.twig));
  key += '\x1f';
  key += selectivity;
  // The cost-model mode participates too: a kAuto plan's estimate-driven
  // operator choices must never be served to a kOff session (or vice
  // versa) even when every hint matches.
  key += '\x1f';
  key += std::to_string(static_cast<int>(options_.hints.cost_model));
  // The snapshot epoch: planning reads the merged tag dictionary and
  // fragment counts, which change per published edit. Keying on the
  // epoch retires every stale plan at once -- a commit between two runs
  // of the same query recompiles instead of serving the old epoch's tag
  // ids against the new snapshot.
  key += '\x1f';
  key += std::to_string(snap_->epoch());
  return key;
}

void Session::Memoize(const std::string& key,
                      std::shared_ptr<const xpath::CompiledPlan> plan,
                      uint64_t serves) {
  // Bounded by the shared cache's capacity; clearing wholesale on
  // overflow is crude but rare, and refilling costs one shared lookup
  // per key.
  if (plan_memo_.size() >= db_->plan_cache()->capacity()) plan_memo_.clear();
  plan_memo_.emplace(key, PlanMemoEntry{std::move(plan), serves});
}

Result<QueryResult> Session::Run(std::string_view xpath) {
  const DocTable& doc = db_->doc();
  return Run(xpath, doc.empty() ? NodeSequence{} : NodeSequence{doc.root()});
}

Result<QueryResult> Session::Run(std::string_view xpath,
                                 const NodeSequence& context) {
  Timer timer;
  // Pin the snapshot FIRST: everything below -- the plan key's epoch,
  // the planner's tag interning, the overlay the joins read -- must
  // agree on one snapshot for the whole run.
  SJ_RETURN_NOT_OK(EnsureCurrentSnapshot());
  // The serving hot path: a hot query's parse + planning collapses into
  // one cache lookup. The compiled plan is shared (shared_ptr) so an
  // eviction mid-query cannot pull it out from under us, and it is keyed
  // by the semantic options (PlanKey), so a plan compiled under one
  // backend never drives another.
  PlanCache* cache = db_->plan_cache();
  std::shared_ptr<const xpath::CompiledPlan> plan;
  bool plan_cached = false;
  uint64_t plan_cache_hits = 0;
  std::string key;
  if (cache != nullptr) {
    key = PlanKey(xpath);
    // Hot path: the session-local memo serves repeat queries without
    // touching the shared cache latch (sessions are single-threaded).
    if (auto memo = plan_memo_.find(key); memo != plan_memo_.end()) {
      plan = memo->second.plan;
      plan_cached = true;
      plan_cache_hits = ++memo->second.serves;
    } else if (std::optional<PlanCache::Hit> hit = cache->Lookup(key)) {
      plan = hit->plan;
      plan_cached = true;
      plan_cache_hits = hit->hits;
      Memoize(key, std::move(hit->plan), hit->hits);
    }
  }
  if (plan == nullptr) {
    auto parsed = xpath::ParseXPathUnion(xpath);
    if (!parsed.ok()) {
      // A failed parse caches nothing: the miss was already counted, and
      // an entry for garbage text would only displace real plans.
      db_->RecordQuery(/*ok=*/false, 0);
      return parsed.status();
    }
    auto compiled = std::make_shared<xpath::CompiledPlan>(
        engine_->Compile(std::move(parsed).value()));
    if (cache != nullptr) {
      cache->Insert(key, compiled);
      Memoize(key, compiled, 0);
    }
    plan = std::move(compiled);
  }
  auto evaluated = engine_->Evaluate(*plan, context);
  if (!evaluated.ok()) {
    db_->RecordQuery(/*ok=*/false, 0);
    return evaluated.status();
  }
  NodeSequence nodes = std::move(evaluated).value();
  db_->RecordQuery(/*ok=*/true, nodes.size());
  QueryResult result;
  result.nodes = std::move(nodes);
  result.trace = engine_->last_trace();
  result.plan_cached = plan_cached;
  result.plan_cache_hits = plan_cache_hits;
  result.snapshot_epoch = snap_->epoch();
  result.snapshot_delta_nodes = snap_->delta_nodes();
  for (const StepTrace& step : result.trace) {
    result.totals.MergeFrom(step.stats);
    result.totals.workers = std::max(result.totals.workers,
                                     step.stats.workers);
  }
  result.totals.result_size = result.nodes.size();
  result.millis = timer.ElapsedMillis();
  return result;
}

}  // namespace sj
