// PlanCache: the Database's LRU cache of compiled query plans.
//
// Parsing and planning a query -- twig-run collapse, positional
// detection, tag interning, the pushdown cost model -- is pure CPU work
// repeated verbatim for every run of a hot query. The Database therefore
// keeps one bounded LRU map from (query string + the SEMANTIC session
// options: engine, backend, pushdown, twig, pushdown_selectivity) to the
// immutable xpath::CompiledPlan those options produce. Sessions whose
// semantic options differ never share an entry (a kPaged plan's pushdown
// decision is meaningless for kCompressed); options that only shape
// execution (staircase skips, num_threads, private pools) are NOT part
// of the key, so sessions differing only in those serve each other's
// plans. See Session::PlanKey for the key encoding.
//
// Entries hold shared_ptr<const CompiledPlan>: a hit hands the caller a
// reference that stays valid even if the entry is evicted mid-query.
// All methods are internally synchronized (one mutex -- the cache is
// touched once per query, not once per page).

#ifndef STAIRJOIN_API_PLAN_CACHE_H_
#define STAIRJOIN_API_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/thread_annotations.h"
#include "xpath/plan.h"

namespace sj {

/// \brief Bounded, thread-safe LRU map from plan key to compiled plan.
class PlanCache {
 public:
  /// Lifetime counters (mirrored into DatabaseStats by TotalStats).
  struct Stats {
    uint64_t hits = 0;       ///< Lookup found an entry
    uint64_t misses = 0;     ///< Lookup found nothing
    uint64_t evictions = 0;  ///< entries displaced by capacity
  };

  /// A successful lookup: the shared plan plus how often this entry has
  /// been served (including this time) -- the number EXPLAIN reports.
  struct Hit {
    std::shared_ptr<const xpath::CompiledPlan> plan;
    uint64_t hits = 0;
  };

  /// `capacity` is the maximum entry count; 0 disables the cache
  /// (Lookup always misses, Insert drops the plan).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Finds `key`, marking the entry most-recently-used.
  std::optional<Hit> Lookup(const std::string& key) SJ_EXCLUDES(mu_);

  /// Caches `plan` under `key` as most-recently-used, displacing the
  /// least-recently-used entries while over capacity. Re-inserting an
  /// existing key replaces its plan (and resets its hit count) without
  /// counting an eviction.
  void Insert(const std::string& key,
              std::shared_ptr<const xpath::CompiledPlan> plan)
      SJ_EXCLUDES(mu_);

  /// A consistent snapshot of the lifetime counters.
  Stats stats() const SJ_EXCLUDES(mu_);

  /// Current entry count (for tests).
  size_t size() const SJ_EXCLUDES(mu_);

  /// Maximum entry count (also the bound sessions use for their local
  /// plan memos).
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const xpath::CompiledPlan> plan;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_pos;
    uint64_t hits = 0;
  };

  const size_t capacity_;
  mutable Mutex mu_;
  /// Keys in recency order, front = most recently used.
  std::list<std::string> lru_ SJ_GUARDED_BY(mu_);
  std::unordered_map<std::string, Entry> entries_ SJ_GUARDED_BY(mu_);
  Stats stats_ SJ_GUARDED_BY(mu_);
};

}  // namespace sj

#endif  // STAIRJOIN_API_PLAN_CACHE_H_
