// DatabaseImages + DatabaseSnapshot: the MVCC spine of updatable
// documents.
//
// A DatabaseImages is one coherent, immutable set of backend images for
// one encoded document -- the resident DocTable, the tag fragments and
// the pool-backed paged/compressed images, exactly what an unedited
// Database used to own directly. A DatabaseSnapshot stamps a set of
// images with an epoch and (after edits) a delta overlay: epoch 0 is the
// pristine open, each EditTxn::Commit publishes epoch+1 over the SAME
// images with a larger overlay, and Database::Compact() publishes
// epoch+1 over freshly rebuilt images with no overlay.
//
// Snapshots are immutable and shared: every Session::Run pins the
// current snapshot (shared_ptr), so a commit or compaction concurrent
// with a running query can never pull images or overlay out from under
// it -- readers drain on their own schedule, writers never wait for
// them (snapshot isolation).

#ifndef STAIRJOIN_API_SNAPSHOT_H_
#define STAIRJOIN_API_SNAPSHOT_H_

#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "core/tag_view.h"
#include "delta/overlay.h"
#include "encoding/builder.h"
#include "encoding/doc_table.h"
#include "storage/buffer_pool.h"
#include "storage/compressed_doc.h"
#include "storage/compressed_tags.h"
#include "storage/paged_doc.h"
#include "storage/paged_tags.h"
#include "util/result.h"
#include "xpath/cost_model.h"

namespace sj {

/// \brief One coherent, immutable set of backend images over one encoded
/// document (see file comment). Members may be null per the open-time
/// DatabaseOptions, with the same contracts as the Database accessors.
struct DatabaseImages {
  std::unique_ptr<DocTable> doc;
  std::unique_ptr<TagIndex> tag_index;
  std::unique_ptr<storage::SimulatedDisk> disk;
  std::unique_ptr<storage::PagedDocTable> paged_doc;
  std::unique_ptr<storage::PagedTagIndex> paged_tags;
  std::unique_ptr<storage::CompressedDocTable> compressed_doc;
  std::unique_ptr<storage::CompressedTagIndex> compressed_tags;
  /// Internally synchronized; shared by every session on these images.
  std::unique_ptr<storage::BufferPool> pool;
  std::optional<uint64_t> doc_digest;
  std::optional<uint64_t> frag_digest;
  /// Planner statistics of `doc` (level histogram, per-tag counts and
  /// level spreads), collected in one O(doc) pass at image-build time.
  /// Shared read-only by every session; rebuilt by compaction together
  /// with the images, so it always describes `doc` exactly.
  std::unique_ptr<xpath::DocStatistics> doc_stats;
  /// Pre ranks (in `doc`) of the gathered document elements when the
  /// images encode a directory collection; empty otherwise.
  NodeSequence base_document_roots;
};

/// \brief An epoch-stamped, immutable view of the database: images plus
/// (possibly) a delta overlay describing edits not yet compacted.
class DatabaseSnapshot {
 public:
  DatabaseSnapshot(uint64_t epoch,
                   std::shared_ptr<const DatabaseImages> images,
                   std::shared_ptr<const delta::Overlay> overlay,
                   NodeSequence document_roots, BuildOptions build)
      : epoch_(epoch),
        images_(std::move(images)),
        overlay_(std::move(overlay)),
        document_roots_(std::move(document_roots)),
        build_(std::move(build)) {}

  /// 0 = pristine open; +1 per published commit or compaction.
  uint64_t epoch() const { return epoch_; }

  const DatabaseImages& images() const { return *images_; }
  /// The images, pinnable (a commit republishes the same set).
  const std::shared_ptr<const DatabaseImages>& images_ptr() const {
    return images_;
  }

  /// The delta overlay; null on pristine/compacted snapshots. May be
  /// non-null but empty when edits cancelled out -- use edited() to ask
  /// "does this snapshot differ from its base images".
  const delta::Overlay* overlay() const { return overlay_.get(); }
  const std::shared_ptr<const delta::Overlay>& overlay_ptr() const {
    return overlay_;
  }
  bool edited() const { return overlay_ != nullptr && !overlay_->empty(); }
  /// Resident delta nodes carried by this snapshot (0 when pristine).
  uint64_t delta_nodes() const {
    return overlay_ != nullptr ? overlay_->delta_size() : 0;
  }

  /// Node count of the (merged) document this snapshot presents.
  uint64_t logical_size() const {
    return edited() ? overlay_->logical_size() : images_->doc->size();
  }

  /// Logical pre ranks of the document elements (collections); tracks
  /// deletes/compaction across epochs.
  const NodeSequence& document_roots() const { return document_roots_; }

  /// The merged document as a resident DocTable in logical pre ranks:
  /// the base table itself when the snapshot is unedited, otherwise a
  /// lazily materialized (once, thread-safe) fold of base + overlay.
  /// Serves the evaluator's per-context paths (EvalOptions::overlay_doc);
  /// borrowed, valid while the snapshot lives.
  Result<const DocTable*> MergedDoc() const;

 private:
  uint64_t epoch_ = 0;
  std::shared_ptr<const DatabaseImages> images_;
  std::shared_ptr<const delta::Overlay> overlay_;
  NodeSequence document_roots_;
  /// Encoding options of the database, for the materialization fold.
  BuildOptions build_;
  mutable std::once_flag merged_once_;
  mutable std::unique_ptr<DocTable> merged_;
  mutable Status merged_status_;
};

}  // namespace sj

#endif  // STAIRJOIN_API_SNAPSHOT_H_
