#include "api/plan_cache.h"

#include <utility>

namespace sj {

std::optional<PlanCache::Hit> PlanCache::Lookup(const std::string& key) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = it->second;
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  ++entry.hits;
  ++stats_.hits;
  return Hit{entry.plan, entry.hits};
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const xpath::CompiledPlan> plan) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Replacement, not displacement: two sessions racing the same miss
    // both insert; the loser must not charge an eviction.
    Entry& entry = it->second;
    entry.plan = std::move(plan);
    entry.hits = 0;
    lru_.splice(lru_.begin(), lru_, entry.lru_pos);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(plan), lru_.begin(), 0});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace sj
