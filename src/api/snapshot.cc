#include "api/snapshot.h"

namespace sj {

Result<const DocTable*> DatabaseSnapshot::MergedDoc() const {
  if (!edited()) return images_->doc.get();
  std::call_once(merged_once_, [this]() {
    auto merged = delta::MaterializeMerged(*images_->doc, *overlay_, build_);
    if (merged.ok()) {
      merged_ = std::move(merged).value();
    } else {
      merged_status_ = merged.status();
    }
  });
  if (!merged_status_.ok()) return merged_status_;
  return merged_.get();
}

}  // namespace sj
