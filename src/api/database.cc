#include "api/database.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "encoding/collection.h"
#include "encoding/loader.h"
#include "xpath/backend_dispatch.h"

namespace sj {
namespace {

/// Default latch shards of the shared pool: one per hardware thread,
/// floored at 4 (I/O-bound sessions outnumber cores, and a faulting
/// session sleeps holding its shard's latch) and capped at 16 (more
/// shards only fragment the LRU).
size_t DefaultPoolShards() {
  unsigned hw = std::thread::hardware_concurrency();
  return std::min<size_t>(std::max<size_t>(hw, 4), 16);
}

Result<std::string> ReadFileText(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("cannot read " + path.string());
  }
  return std::move(buffer).str();
}

}  // namespace

Result<std::shared_ptr<const DatabaseImages>> Database::BuildImages(
    std::unique_ptr<DatabaseImages> img, const DatabaseOptions& options,
    bool build_missing) {
  const DocTable& doc = *img->doc;
  if (build_missing && options.build_tag_index && img->tag_index == nullptr) {
    img->tag_index = std::make_unique<TagIndex>(doc);
  }
  if (build_missing && options.build_paged && img->paged_doc == nullptr) {
    if (img->disk == nullptr) {
      img->disk = std::make_unique<storage::SimulatedDisk>();
    }
    SJ_ASSIGN_OR_RETURN(img->paged_doc,
                        storage::PagedDocTable::Create(doc, img->disk.get()));
    SJ_ASSIGN_OR_RETURN(img->paged_tags,
                        storage::PagedTagIndex::Create(doc, img->disk.get()));
    // Create captured both digests from this very document: adopt them
    // (coherent by construction) instead of paying a second O(doc)
    // digest pass only to compare guaranteed-equal values.
    img->doc_digest = img->paged_doc->source_digest();
    img->frag_digest = img->paged_tags->source_digest();
  }
  bool compressed_built_here = false;
  if (build_missing && options.build_compressed &&
      img->compressed_doc == nullptr) {
    // The compressed image shares the paged image's disk (one pool
    // serves every pool-backed backend); a compressed-only database
    // still needs a disk of its own.
    if (img->disk == nullptr) {
      img->disk = std::make_unique<storage::SimulatedDisk>();
    }
    SJ_ASSIGN_OR_RETURN(
        img->compressed_doc,
        storage::CompressedDocTable::Create(doc, img->disk.get()));
    // Reuse the resident TagIndex when it exists; encoding should not
    // pay a second projection scan of the whole document.
    if (img->tag_index != nullptr) {
      SJ_ASSIGN_OR_RETURN(img->compressed_tags,
                          storage::CompressedTagIndex::Create(
                              doc, *img->tag_index, img->disk.get()));
    } else {
      SJ_ASSIGN_OR_RETURN(
          img->compressed_tags,
          storage::CompressedTagIndex::Create(doc, img->disk.get()));
    }
    if (!img->doc_digest.has_value()) {
      img->doc_digest = img->compressed_doc->source_digest();
    }
    if (!img->frag_digest.has_value()) {
      img->frag_digest = img->compressed_tags->source_digest();
    }
    compressed_built_here = true;
  }

  // Open-time coherence validation for *adopted* images: every paged
  // image must carry the digest of THIS document's columns. A stale
  // image (rebuilt document, image of a different document) is rejected
  // here with the failing column set named -- not lazily on the first
  // paged query. The digests are computed exactly once per image set
  // and travel to every session (EvalOptions::doc_digest), so neither
  // session creation nor the first query repeats the pass.
  if (img->paged_doc != nullptr) {
    if (img->disk == nullptr) {
      return Status::InvalidArgument(
          "paged document image adopted without its disk");
    }
    if (!img->doc_digest.has_value()) {
      img->doc_digest = storage::DocColumnsDigest(doc);
    }
    if (img->paged_doc->size() != doc.size() ||
        img->paged_doc->source_digest() != *img->doc_digest) {
      return Status::InvalidArgument(
          "stale paged image: the document column set "
          "(post/kind/level/parent/tag) has digest " +
          std::to_string(img->paged_doc->source_digest()) +
          " but this document's columns digest to " +
          std::to_string(*img->doc_digest) +
          "; the paged table does not image this document");
    }
  }
  if (img->paged_tags != nullptr) {
    if (img->paged_doc == nullptr) {
      return Status::InvalidArgument(
          "paged tag fragments adopted without a paged document image");
    }
    if (!img->frag_digest.has_value()) {
      img->frag_digest =
          storage::FragmentColumnsDigest(doc, *img->doc_digest);
    }
    if (img->paged_tags->source_digest() != *img->frag_digest) {
      return Status::InvalidArgument(
          "stale paged image: the tag fragment column set (per-tag "
          "pre/post) has digest " +
          std::to_string(img->paged_tags->source_digest()) +
          " but this document's fragments digest to " +
          std::to_string(*img->frag_digest) +
          "; the paged tag index does not image this document");
    }
  }

  // Open-time validation of the compressed images: coherence with THIS
  // document via the source digests (like the paged images above), plus
  // integrity of the encoded blocks themselves -- ValidateImage re-reads
  // the disk image and rejects a corrupt or stale block with a Status
  // naming the column, so bit rot never surfaces as silent wrong query
  // results. Images built in this very call are coherent by
  // construction (the digests were captured from the bytes Create just
  // wrote), so only ADOPTED images pay the re-read pass.
  if (img->compressed_doc != nullptr) {
    if (img->disk == nullptr) {
      return Status::InvalidArgument(
          "compressed document image adopted without its disk");
    }
    if (!img->doc_digest.has_value()) {
      img->doc_digest = storage::DocColumnsDigest(doc);
    }
    if (img->compressed_doc->size() != doc.size() ||
        img->compressed_doc->source_digest() != *img->doc_digest) {
      return Status::InvalidArgument(
          "stale compressed image: the document column set "
          "(post/kind/level/parent/tag) has digest " +
          std::to_string(img->compressed_doc->source_digest()) +
          " but this document's columns digest to " +
          std::to_string(*img->doc_digest) +
          "; the compressed table does not image this document");
    }
    if (!compressed_built_here) {
      SJ_RETURN_NOT_OK(img->compressed_doc->ValidateImage(*img->disk));
    }
  }
  if (img->compressed_tags != nullptr) {
    if (img->compressed_doc == nullptr) {
      return Status::InvalidArgument(
          "compressed tag fragments adopted without a compressed document "
          "image");
    }
    if (!img->frag_digest.has_value()) {
      img->frag_digest =
          storage::FragmentColumnsDigest(doc, *img->doc_digest);
    }
    if (img->compressed_tags->source_digest() != *img->frag_digest) {
      return Status::InvalidArgument(
          "stale compressed image: the tag fragment column set (per-tag "
          "pre/post) has digest " +
          std::to_string(img->compressed_tags->source_digest()) +
          " but this document's fragments digest to " +
          std::to_string(*img->frag_digest) +
          "; the compressed tag index does not image this document");
    }
    if (!compressed_built_here) {
      SJ_RETURN_NOT_OK(img->compressed_tags->ValidateImage(*img->disk));
    }
  }

  if (img->paged_doc != nullptr || img->compressed_doc != nullptr) {
    size_t shards = options.pool_shards > 0 ? options.pool_shards
                                            : DefaultPoolShards();
    img->pool = std::make_unique<storage::BufferPool>(
        img->disk.get(), options.pool_pages, shards);
    img->pool->set_prefetch_enabled(options.prefetch);
  }
  // Planner statistics: one O(doc) pass at image-build time (open and
  // every compaction), shared read-only by all sessions on these images.
  img->doc_stats = std::make_unique<xpath::DocStatistics>(
      xpath::DocStatistics::Collect(doc));
  return std::shared_ptr<const DatabaseImages>(std::move(img));
}

Result<std::unique_ptr<Database>> Database::Finish(
    std::unique_ptr<DatabaseImages> images, DatabaseOptions options,
    bool build_missing, NodeSequence document_roots) {
  images->base_document_roots = document_roots;
  SJ_ASSIGN_OR_RETURN(std::shared_ptr<const DatabaseImages> built,
                      BuildImages(std::move(images), options, build_missing));
  std::unique_ptr<Database> db(new Database());
  db->prefetch_ = options.prefetch;
  if (options.plan_cache_entries > 0) {
    db->plan_cache_ = std::make_unique<PlanCache>(options.plan_cache_entries);
  }
  {
    MutexLock lock(db->snapshot_mu_);
    db->snapshot_ = std::make_shared<DatabaseSnapshot>(
        /*epoch=*/0, std::move(built), /*overlay=*/nullptr,
        std::move(document_roots), options.build);
  }
  db->options_ = std::move(options);
  return db;
}

Result<std::unique_ptr<Database>> Database::FromXml(std::string_view xml,
                                                    DatabaseOptions options) {
  SJ_ASSIGN_OR_RETURN(std::unique_ptr<DocTable> doc,
                      LoadDocument(xml, options.build));
  return FromTable(std::move(doc), std::move(options));
}

Result<std::unique_ptr<Database>> Database::FromXmark(
    const xmlgen::XMarkOptions& gen, DatabaseOptions options) {
  SJ_ASSIGN_OR_RETURN(std::unique_ptr<DocTable> doc,
                      xmlgen::GenerateXMarkDocument(gen, options.build));
  return FromTable(std::move(doc), std::move(options));
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                 DatabaseOptions options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<fs::path> files;
    // Non-throwing iteration: a directory that turns unreadable
    // mid-listing must surface as a Status, not an exception (on error,
    // increment(ec) parks the iterator at end and the check below fires).
    for (fs::directory_iterator it(path, ec), end; !ec && it != end;
         it.increment(ec)) {
      std::error_code entry_ec;
      if (it->is_regular_file(entry_ec) &&
          it->path().extension() == ".xml") {
        files.push_back(it->path());
      }
    }
    if (ec) {
      return Status::IoError("cannot list " + path + ": " + ec.message());
    }
    if (files.empty()) {
      return Status::NotFound("no .xml files in " + path);
    }
    std::sort(files.begin(), files.end());
    CollectionBuilder collection(options.build);
    for (const fs::path& file : files) {
      SJ_ASSIGN_OR_RETURN(std::string text, ReadFileText(file));
      SJ_RETURN_NOT_OK(collection.AddDocumentText(text));
    }
    SJ_ASSIGN_OR_RETURN(std::unique_ptr<DocTable> doc, collection.Finish());
    auto images = std::make_unique<DatabaseImages>();
    images->doc = std::move(doc);
    return Finish(std::move(images), std::move(options),
                  /*build_missing=*/true, collection.document_roots());
  }
  SJ_ASSIGN_OR_RETURN(std::unique_ptr<DocTable> doc,
                      LoadDocumentFile(path, options.build));
  return FromTable(std::move(doc), std::move(options));
}

Result<std::unique_ptr<Database>> Database::FromTable(
    std::unique_ptr<DocTable> doc, DatabaseOptions options) {
  if (doc == nullptr) {
    return Status::InvalidArgument("Database::FromTable: null table");
  }
  auto images = std::make_unique<DatabaseImages>();
  images->doc = std::move(doc);
  return Finish(std::move(images), std::move(options),
                /*build_missing=*/true, {});
}

Result<std::unique_ptr<Database>> Database::FromParts(
    std::unique_ptr<DocTable> doc, std::unique_ptr<TagIndex> tag_index,
    std::unique_ptr<storage::SimulatedDisk> disk,
    std::unique_ptr<storage::PagedDocTable> paged_doc,
    std::unique_ptr<storage::PagedTagIndex> paged_tags,
    DatabaseOptions options) {
  return FromParts(std::move(doc), std::move(tag_index), std::move(disk),
                   std::move(paged_doc), std::move(paged_tags),
                   /*compressed_doc=*/nullptr, /*compressed_tags=*/nullptr,
                   std::move(options));
}

Result<std::unique_ptr<Database>> Database::FromParts(
    std::unique_ptr<DocTable> doc, std::unique_ptr<TagIndex> tag_index,
    std::unique_ptr<storage::SimulatedDisk> disk,
    std::unique_ptr<storage::PagedDocTable> paged_doc,
    std::unique_ptr<storage::PagedTagIndex> paged_tags,
    std::unique_ptr<storage::CompressedDocTable> compressed_doc,
    std::unique_ptr<storage::CompressedTagIndex> compressed_tags,
    DatabaseOptions options) {
  if (doc == nullptr) {
    return Status::InvalidArgument("Database::FromParts: null table");
  }
  auto images = std::make_unique<DatabaseImages>();
  images->doc = std::move(doc);
  images->tag_index = std::move(tag_index);
  images->disk = std::move(disk);
  images->paged_doc = std::move(paged_doc);
  images->paged_tags = std::move(paged_tags);
  images->compressed_doc = std::move(compressed_doc);
  images->compressed_tags = std::move(compressed_tags);
  return Finish(std::move(images), std::move(options),
                /*build_missing=*/false, {});
}

std::shared_ptr<const DatabaseSnapshot> Database::CurrentSnapshot() const {
  MutexLock lock(snapshot_mu_);
  return snapshot_;
}

Result<xpath::EvalOptions> Database::MakeEvalOptions(
    const std::shared_ptr<const DatabaseSnapshot>& snap,
    const SessionOptions& options,
    std::unique_ptr<storage::BufferPool>* private_pool) const {
  const DatabaseImages& img = snap->images();
  xpath::EvalOptions eval;
  eval.engine = options.hints.engine;
  eval.staircase = options.staircase;
  eval.pushdown = options.hints.pushdown;
  eval.twig = options.hints.twig;
  eval.pushdown_selectivity = options.hints.pushdown_selectivity;
  eval.cost_model = options.hints.cost_model;
  eval.num_threads = options.num_threads;
  eval.backend = options.backend;
  eval.tag_index = img.tag_index.get();
  eval.doc_digest = img.doc_digest;
  // Planner statistics describe the BASE document; under an overlay the
  // estimator layers merged per-tag counts on top (see MakeEstimator).
  eval.doc_stats = img.doc_stats.get();

  std::unique_ptr<storage::BufferPool> pool;
  if (xpath::BackendDispatch::UsesPool(options.backend)) {
    SJ_RETURN_NOT_OK(xpath::BackendDispatch::WireBackend(
        &eval, img.paged_doc.get(), img.paged_tags.get(),
        img.compressed_doc.get(), img.compressed_tags.get()));
    eval.frag_digest = img.frag_digest;
    if (options.private_pool_pages > 0) {
      pool = std::make_unique<storage::BufferPool>(
          img.disk.get(), options.private_pool_pages);
      pool->set_prefetch_enabled(prefetch_);
      eval.pool = pool.get();
    } else {
      eval.pool = img.pool.get();
    }
  }
  eval.snapshot_epoch = snap->epoch();
  if (snap->edited()) {
    eval.overlay = snap->overlay();
    // The lambda pins the snapshot: the materialized merged table stays
    // valid for as long as any evaluator still holds these options.
    eval.overlay_doc = [snap]() { return snap->MergedDoc(); };
  }
  *private_pool = std::move(pool);
  return eval;
}

Result<Session> Database::CreateSession(SessionOptions options) const {
  std::shared_ptr<const DatabaseSnapshot> snap = CurrentSnapshot();
  std::unique_ptr<storage::BufferPool> private_pool;
  SJ_ASSIGN_OR_RETURN(xpath::EvalOptions eval,
                      MakeEvalOptions(snap, options, &private_pool));
  {
    MutexLock lock(stats_mu_);
    ++stats_.sessions_created;
    ++stats_.snapshots_pinned;
  }
  return Session(this, std::move(options), std::move(snap),
                 std::move(private_pool), eval);
}

EditTxn Database::BeginEdit() {
  return EditTxn(this, CurrentSnapshot());
}

Status Database::Compact() {
  MutexLock edit_lock(edit_mu_);
  std::shared_ptr<const DatabaseSnapshot> cur = CurrentSnapshot();
  if (!cur->edited()) return Status::OK();
  SJ_ASSIGN_OR_RETURN(
      std::unique_ptr<DocTable> merged,
      delta::MaterializeMerged(*cur->images().doc, *cur->overlay(),
                               options_.build));
  auto images = std::make_unique<DatabaseImages>();
  images->doc = std::move(merged);
  // The merged table's pre ranks ARE the old snapshot's logical ranks,
  // so the logical document roots carry over verbatim as base roots.
  images->base_document_roots = cur->document_roots();
  SJ_ASSIGN_OR_RETURN(
      std::shared_ptr<const DatabaseImages> built,
      BuildImages(std::move(images), options_, /*build_missing=*/true));
  PublishSnapshot(std::make_shared<DatabaseSnapshot>(
                      cur->epoch() + 1, std::move(built), /*overlay=*/nullptr,
                      cur->document_roots(), options_.build),
                  /*compaction=*/true);
  return Status::OK();
}

void Database::PublishSnapshot(std::shared_ptr<const DatabaseSnapshot> next,
                               bool compaction) {
  const uint64_t delta_nodes = next->delta_nodes();
  {
    MutexLock lock(snapshot_mu_);
    snapshot_ = std::move(next);
  }
  MutexLock lock(stats_mu_);
  if (compaction) {
    ++stats_.compactions;
  } else {
    ++stats_.edits_committed;
  }
  stats_.delta_nodes = delta_nodes;
}

EditTxn::EditTxn(Database* db, std::shared_ptr<const DatabaseSnapshot> snap)
    : db_(db),
      snap_(std::move(snap)),
      builder_(std::make_unique<delta::OverlayBuilder>(
          *snap_->images().doc, snap_->images().tag_index.get(),
          snap_->overlay_ptr())) {}

Status EditTxn::InsertLastChild(NodeId parent, std::string_view fragment_xml) {
  if (builder_ == nullptr) {
    return Status::InvalidArgument("edit on a committed transaction");
  }
  return builder_->InsertLastChild(parent, fragment_xml);
}

Status EditTxn::DeleteSubtree(NodeId v) {
  if (builder_ == nullptr) {
    return Status::InvalidArgument("edit on a committed transaction");
  }
  return builder_->DeleteSubtree(v);
}

Status EditTxn::ReplaceSubtree(NodeId v, std::string_view fragment_xml) {
  if (builder_ == nullptr) {
    return Status::InvalidArgument("edit on a committed transaction");
  }
  return builder_->ReplaceSubtree(v, fragment_xml);
}

uint64_t EditTxn::logical_size() const {
  return builder_ != nullptr ? builder_->logical_size()
                             : snap_->logical_size();
}

uint64_t EditTxn::ops_applied() const {
  return builder_ != nullptr ? builder_->ops_applied() : 0;
}

Status EditTxn::Commit() {
  if (builder_ == nullptr) {
    return Status::InvalidArgument("commit on a committed transaction");
  }
  if (builder_->ops_applied() == 0) {
    // Nothing to publish; spend the transaction without an epoch bump.
    builder_.reset();
    return Status::OK();
  }
  MutexLock edit_lock(db_->edit_mu_);
  std::shared_ptr<const DatabaseSnapshot> cur = db_->CurrentSnapshot();
  if (cur->epoch() != snap_->epoch()) {
    // Optimistic conflict: the transaction applied its edits against a
    // snapshot that is no longer current. (There is no first-updater
    // block to wait out -- the winner already committed -- so the only
    // correct continuation is to re-apply the script on a fresh edit.)
    return Status::InvalidArgument(
        "snapshot conflict: another edit committed epoch " +
        std::to_string(cur->epoch()) + " after this transaction began at " +
        std::to_string(snap_->epoch()) + "; begin a fresh edit and retry");
  }
  SJ_ASSIGN_OR_RETURN(std::shared_ptr<const delta::Overlay> overlay,
                      builder_->Finish());
  builder_.reset();
  // Surviving document roots, remapped into the new logical rank space
  // (a deleted document vanishes from the collection's root list).
  NodeSequence roots;
  roots.reserve(snap_->images().base_document_roots.size());
  for (NodeId r : snap_->images().base_document_roots) {
    if (std::optional<uint64_t> l = overlay->TryBasePreToLogical(r)) {
      roots.push_back(static_cast<NodeId>(*l));
    }
  }
  db_->PublishSnapshot(
      std::make_shared<DatabaseSnapshot>(cur->epoch() + 1,
                                         snap_->images_ptr(),
                                         std::move(overlay), std::move(roots),
                                         db_->options_.build),
      /*compaction=*/false);
  return Status::OK();
}

DatabaseStats Database::TotalStats() const {
  DatabaseStats snapshot;
  {
    MutexLock lock(stats_mu_);
    snapshot = stats_;
  }
  if (plan_cache_ != nullptr) {
    const PlanCache::Stats cache = plan_cache_->stats();
    snapshot.plan_cache_hits = cache.hits;
    snapshot.plan_cache_misses = cache.misses;
    snapshot.plan_cache_evictions = cache.evictions;
  }
  return snapshot;
}

void Database::RecordQuery(bool ok, uint64_t result_nodes) const {
  MutexLock lock(stats_mu_);
  if (ok) {
    ++stats_.queries_run;
    stats_.result_nodes += result_nodes;
  } else {
    ++stats_.queries_failed;
  }
}

void Database::RecordSnapshotPinned() const {
  MutexLock lock(stats_mu_);
  ++stats_.snapshots_pinned;
}

}  // namespace sj
