#include "api/database.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "encoding/collection.h"
#include "encoding/loader.h"
#include "xpath/backend_dispatch.h"

namespace sj {
namespace {

/// Default latch shards of the shared pool: one per hardware thread,
/// floored at 4 (I/O-bound sessions outnumber cores, and a faulting
/// session sleeps holding its shard's latch) and capped at 16 (more
/// shards only fragment the LRU).
size_t DefaultPoolShards() {
  unsigned hw = std::thread::hardware_concurrency();
  return std::min<size_t>(std::max<size_t>(hw, 4), 16);
}

Result<std::string> ReadFileText(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("cannot read " + path.string());
  }
  return std::move(buffer).str();
}

}  // namespace

Result<std::unique_ptr<Database>> Database::Finish(
    std::unique_ptr<Database> db, const DatabaseOptions& options,
    bool build_missing) {
  const DocTable& doc = *db->doc_;
  if (build_missing && options.build_tag_index && db->tag_index_ == nullptr) {
    db->tag_index_ = std::make_unique<TagIndex>(doc);
  }
  if (build_missing && options.build_paged && db->paged_doc_ == nullptr) {
    if (db->disk_ == nullptr) {
      db->disk_ = std::make_unique<storage::SimulatedDisk>();
    }
    SJ_ASSIGN_OR_RETURN(db->paged_doc_,
                        storage::PagedDocTable::Create(doc, db->disk_.get()));
    SJ_ASSIGN_OR_RETURN(db->paged_tags_,
                        storage::PagedTagIndex::Create(doc, db->disk_.get()));
    // Create captured both digests from this very document: adopt them
    // (coherent by construction) instead of paying a second O(doc)
    // digest pass only to compare guaranteed-equal values.
    db->doc_digest_ = db->paged_doc_->source_digest();
    db->frag_digest_ = db->paged_tags_->source_digest();
  }
  bool compressed_built_here = false;
  if (build_missing && options.build_compressed &&
      db->compressed_doc_ == nullptr) {
    // The compressed image shares the paged image's disk (one pool
    // serves every pool-backed backend); a compressed-only database
    // still needs a disk of its own.
    if (db->disk_ == nullptr) {
      db->disk_ = std::make_unique<storage::SimulatedDisk>();
    }
    SJ_ASSIGN_OR_RETURN(
        db->compressed_doc_,
        storage::CompressedDocTable::Create(doc, db->disk_.get()));
    // Reuse the resident TagIndex when it exists; encoding should not
    // pay a second projection scan of the whole document.
    if (db->tag_index_ != nullptr) {
      SJ_ASSIGN_OR_RETURN(db->compressed_tags_,
                          storage::CompressedTagIndex::Create(
                              doc, *db->tag_index_, db->disk_.get()));
    } else {
      SJ_ASSIGN_OR_RETURN(
          db->compressed_tags_,
          storage::CompressedTagIndex::Create(doc, db->disk_.get()));
    }
    if (!db->doc_digest_.has_value()) {
      db->doc_digest_ = db->compressed_doc_->source_digest();
    }
    if (!db->frag_digest_.has_value()) {
      db->frag_digest_ = db->compressed_tags_->source_digest();
    }
    compressed_built_here = true;
  }

  // Open-time coherence validation for *adopted* images: every paged
  // image must carry the digest of THIS document's columns. A stale
  // image (rebuilt document, image of a different document) is rejected
  // here with the failing column set named -- not lazily on the first
  // paged query. The digests are computed exactly once per database and
  // travel to every session (EvalOptions::doc_digest), so neither
  // session creation nor the first query repeats the pass.
  if (db->paged_doc_ != nullptr) {
    if (db->disk_ == nullptr) {
      return Status::InvalidArgument(
          "paged document image adopted without its disk");
    }
    if (!db->doc_digest_.has_value()) {
      db->doc_digest_ = storage::DocColumnsDigest(doc);
    }
    if (db->paged_doc_->size() != doc.size() ||
        db->paged_doc_->source_digest() != *db->doc_digest_) {
      return Status::InvalidArgument(
          "stale paged image: the document column set "
          "(post/kind/level/parent/tag) has digest " +
          std::to_string(db->paged_doc_->source_digest()) +
          " but this document's columns digest to " +
          std::to_string(*db->doc_digest_) +
          "; the paged table does not image this document");
    }
  }
  if (db->paged_tags_ != nullptr) {
    if (db->paged_doc_ == nullptr) {
      return Status::InvalidArgument(
          "paged tag fragments adopted without a paged document image");
    }
    if (!db->frag_digest_.has_value()) {
      db->frag_digest_ =
          storage::FragmentColumnsDigest(doc, *db->doc_digest_);
    }
    if (db->paged_tags_->source_digest() != *db->frag_digest_) {
      return Status::InvalidArgument(
          "stale paged image: the tag fragment column set (per-tag "
          "pre/post) has digest " +
          std::to_string(db->paged_tags_->source_digest()) +
          " but this document's fragments digest to " +
          std::to_string(*db->frag_digest_) +
          "; the paged tag index does not image this document");
    }
  }

  // Open-time validation of the compressed images: coherence with THIS
  // document via the source digests (like the paged images above), plus
  // integrity of the encoded blocks themselves -- ValidateImage re-reads
  // the disk image and rejects a corrupt or stale block with a Status
  // naming the column, so bit rot never surfaces as silent wrong query
  // results. Images built in this very call are coherent by
  // construction (the digests were captured from the bytes Create just
  // wrote), so only ADOPTED images pay the re-read pass.
  if (db->compressed_doc_ != nullptr) {
    if (db->disk_ == nullptr) {
      return Status::InvalidArgument(
          "compressed document image adopted without its disk");
    }
    if (!db->doc_digest_.has_value()) {
      db->doc_digest_ = storage::DocColumnsDigest(doc);
    }
    if (db->compressed_doc_->size() != doc.size() ||
        db->compressed_doc_->source_digest() != *db->doc_digest_) {
      return Status::InvalidArgument(
          "stale compressed image: the document column set "
          "(post/kind/level/parent/tag) has digest " +
          std::to_string(db->compressed_doc_->source_digest()) +
          " but this document's columns digest to " +
          std::to_string(*db->doc_digest_) +
          "; the compressed table does not image this document");
    }
    if (!compressed_built_here) {
      SJ_RETURN_NOT_OK(db->compressed_doc_->ValidateImage(*db->disk_));
    }
  }
  if (db->compressed_tags_ != nullptr) {
    if (db->compressed_doc_ == nullptr) {
      return Status::InvalidArgument(
          "compressed tag fragments adopted without a compressed document "
          "image");
    }
    if (!db->frag_digest_.has_value()) {
      db->frag_digest_ =
          storage::FragmentColumnsDigest(doc, *db->doc_digest_);
    }
    if (db->compressed_tags_->source_digest() != *db->frag_digest_) {
      return Status::InvalidArgument(
          "stale compressed image: the tag fragment column set (per-tag "
          "pre/post) has digest " +
          std::to_string(db->compressed_tags_->source_digest()) +
          " but this document's fragments digest to " +
          std::to_string(*db->frag_digest_) +
          "; the compressed tag index does not image this document");
    }
    if (!compressed_built_here) {
      SJ_RETURN_NOT_OK(db->compressed_tags_->ValidateImage(*db->disk_));
    }
  }

  if (db->paged_doc_ != nullptr || db->compressed_doc_ != nullptr) {
    size_t shards = options.pool_shards > 0 ? options.pool_shards
                                            : DefaultPoolShards();
    db->pool_ = std::make_unique<storage::BufferPool>(
        db->disk_.get(), options.pool_pages, shards);
    db->pool_->set_prefetch_enabled(options.prefetch);
  }
  db->prefetch_ = options.prefetch;
  if (options.plan_cache_entries > 0) {
    db->plan_cache_ = std::make_unique<PlanCache>(options.plan_cache_entries);
  }
  return db;
}

Result<std::unique_ptr<Database>> Database::FromXml(std::string_view xml,
                                                    DatabaseOptions options) {
  SJ_ASSIGN_OR_RETURN(std::unique_ptr<DocTable> doc,
                      LoadDocument(xml, options.build));
  return FromTable(std::move(doc), std::move(options));
}

Result<std::unique_ptr<Database>> Database::FromXmark(
    const xmlgen::XMarkOptions& gen, DatabaseOptions options) {
  SJ_ASSIGN_OR_RETURN(std::unique_ptr<DocTable> doc,
                      xmlgen::GenerateXMarkDocument(gen, options.build));
  return FromTable(std::move(doc), std::move(options));
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                 DatabaseOptions options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<fs::path> files;
    // Non-throwing iteration: a directory that turns unreadable
    // mid-listing must surface as a Status, not an exception (on error,
    // increment(ec) parks the iterator at end and the check below fires).
    for (fs::directory_iterator it(path, ec), end; !ec && it != end;
         it.increment(ec)) {
      std::error_code entry_ec;
      if (it->is_regular_file(entry_ec) &&
          it->path().extension() == ".xml") {
        files.push_back(it->path());
      }
    }
    if (ec) {
      return Status::IoError("cannot list " + path + ": " + ec.message());
    }
    if (files.empty()) {
      return Status::NotFound("no .xml files in " + path);
    }
    std::sort(files.begin(), files.end());
    CollectionBuilder collection(options.build);
    for (const fs::path& file : files) {
      SJ_ASSIGN_OR_RETURN(std::string text, ReadFileText(file));
      SJ_RETURN_NOT_OK(collection.AddDocumentText(text));
    }
    SJ_ASSIGN_OR_RETURN(std::unique_ptr<DocTable> doc, collection.Finish());
    NodeSequence roots = collection.document_roots();
    SJ_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                        FromTable(std::move(doc), std::move(options)));
    db->document_roots_ = std::move(roots);
    return db;
  }
  SJ_ASSIGN_OR_RETURN(std::unique_ptr<DocTable> doc,
                      LoadDocumentFile(path, options.build));
  return FromTable(std::move(doc), std::move(options));
}

Result<std::unique_ptr<Database>> Database::FromTable(
    std::unique_ptr<DocTable> doc, DatabaseOptions options) {
  if (doc == nullptr) {
    return Status::InvalidArgument("Database::FromTable: null table");
  }
  std::unique_ptr<Database> db(new Database());
  db->doc_ = std::move(doc);
  return Finish(std::move(db), options, /*build_missing=*/true);
}

Result<std::unique_ptr<Database>> Database::FromParts(
    std::unique_ptr<DocTable> doc, std::unique_ptr<TagIndex> tag_index,
    std::unique_ptr<storage::SimulatedDisk> disk,
    std::unique_ptr<storage::PagedDocTable> paged_doc,
    std::unique_ptr<storage::PagedTagIndex> paged_tags,
    DatabaseOptions options) {
  return FromParts(std::move(doc), std::move(tag_index), std::move(disk),
                   std::move(paged_doc), std::move(paged_tags),
                   /*compressed_doc=*/nullptr, /*compressed_tags=*/nullptr,
                   std::move(options));
}

Result<std::unique_ptr<Database>> Database::FromParts(
    std::unique_ptr<DocTable> doc, std::unique_ptr<TagIndex> tag_index,
    std::unique_ptr<storage::SimulatedDisk> disk,
    std::unique_ptr<storage::PagedDocTable> paged_doc,
    std::unique_ptr<storage::PagedTagIndex> paged_tags,
    std::unique_ptr<storage::CompressedDocTable> compressed_doc,
    std::unique_ptr<storage::CompressedTagIndex> compressed_tags,
    DatabaseOptions options) {
  if (doc == nullptr) {
    return Status::InvalidArgument("Database::FromParts: null table");
  }
  std::unique_ptr<Database> db(new Database());
  db->doc_ = std::move(doc);
  db->tag_index_ = std::move(tag_index);
  db->disk_ = std::move(disk);
  db->paged_doc_ = std::move(paged_doc);
  db->paged_tags_ = std::move(paged_tags);
  db->compressed_doc_ = std::move(compressed_doc);
  db->compressed_tags_ = std::move(compressed_tags);
  return Finish(std::move(db), options, /*build_missing=*/false);
}

Result<Session> Database::CreateSession(SessionOptions options) const {
  xpath::EvalOptions eval;
  eval.engine = options.engine;
  eval.staircase = options.staircase;
  eval.pushdown = options.pushdown;
  eval.twig = options.twig;
  eval.pushdown_selectivity = options.pushdown_selectivity;
  eval.num_threads = options.num_threads;
  eval.backend = options.backend;
  eval.tag_index = tag_index_.get();
  eval.doc_digest = doc_digest_;

  std::unique_ptr<storage::BufferPool> private_pool;
  if (xpath::BackendDispatch::UsesPool(options.backend)) {
    SJ_RETURN_NOT_OK(xpath::BackendDispatch::WireBackend(
        &eval, paged_doc_.get(), paged_tags_.get(), compressed_doc_.get(),
        compressed_tags_.get()));
    eval.frag_digest = frag_digest_;
    if (options.private_pool_pages > 0) {
      private_pool = std::make_unique<storage::BufferPool>(
          disk_.get(), options.private_pool_pages);
      private_pool->set_prefetch_enabled(prefetch_);
      eval.pool = private_pool.get();
    } else {
      eval.pool = pool_.get();
    }
  }
  {
    MutexLock lock(stats_mu_);
    ++stats_.sessions_created;
  }
  return Session(this, std::move(options), std::move(private_pool), eval);
}

DatabaseStats Database::TotalStats() const {
  DatabaseStats snapshot;
  {
    MutexLock lock(stats_mu_);
    snapshot = stats_;
  }
  if (plan_cache_ != nullptr) {
    const PlanCache::Stats cache = plan_cache_->stats();
    snapshot.plan_cache_hits = cache.hits;
    snapshot.plan_cache_misses = cache.misses;
    snapshot.plan_cache_evictions = cache.evictions;
  }
  return snapshot;
}

void Database::RecordQuery(bool ok, uint64_t result_nodes) const {
  MutexLock lock(stats_mu_);
  if (ok) {
    ++stats_.queries_run;
    stats_.result_nodes += result_nodes;
  } else {
    ++stats_.queries_failed;
  }
}

}  // namespace sj
