// Session: a cheap per-thread query handle onto an open Database.
//
// The public query API of this library is two types (paper Section 6's
// "teach a relational DBMS": the engine hides behind a narrow waist the
// way a production system would embed it):
//
//   auto db = sj::Database::FromXml(xml).value();      // open once
//   auto session = db->CreateSession().value();        // one per thread
//   auto r = session.Run("/descendant::bidder").value();
//   //  r.nodes, r.trace, r.totals, r.Explain()
//
// A Session owns all per-query mutable state (the internal evaluator and
// its EXPLAIN trace), so any number of sessions may run concurrently over
// one shared Database; Run returns a self-contained QueryResult instead
// of mutating shared evaluator state. Sessions are cheap to create --
// backend wiring and digest validation happened once at Database open
// time -- and movable but not copyable; one session must not be driven
// from two threads at once.

#ifndef STAIRJOIN_API_SESSION_H_
#define STAIRJOIN_API_SESSION_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/snapshot.h"
#include "core/stats.h"
#include "storage/buffer_pool.h"
#include "util/result.h"
#include "xpath/evaluator.h"

namespace sj {

class Database;

// The semantic query knobs, re-exported so facade callers need not spell
// the internal engine namespace.
using xpath::CostModelMode;
using xpath::DocStatistics;
using xpath::EngineMode;
using xpath::PushdownMode;
using xpath::StepOperator;
using xpath::StepTrace;
using xpath::StorageBackend;
using xpath::TwigMode;

/// \brief Planner hints: the *semantic intent* knobs that pin or free
/// the planner's operator choices. All defaults mean "let the cost
/// model decide"; a pinned hint always wins over the estimates.
///
/// Plans are shared (database plan cache) only between sessions whose
/// PlanHints -- and cost_model mode -- are identical: a hint-pinned
/// session never serves or receives a kAuto session's plan.
struct PlanHints {
  /// Which join engine evaluates the staircase axes.
  EngineMode engine = EngineMode::kStaircase;
  /// Whether name tests are pushed down onto tag fragments. kAuto
  /// defers to the cost model (or, under cost_model kOff, the static
  /// pushdown_selectivity threshold); kAlways/kNever pin the choice.
  PushdownMode pushdown = PushdownMode::kAuto;
  /// Whether runs of consecutive predicate-free name-test
  /// child/descendant steps collapse into the holistic twig join
  /// (core/twig_join.h). kNever forces step-at-a-time evaluation (the
  /// Fig. 11-style comparison baseline).
  TwigMode twig = TwigMode::kAuto;
  /// kAuto pushdown threshold (fragment size / document size) -- only
  /// consulted when cost_model is kOff.
  double pushdown_selectivity = 0.125;
  /// Estimate-driven operator choice (statistics-fed page-cost
  /// comparison, xpath/cost_model.h). kOff restores the static
  /// threshold planner. Either way EXPLAIN prints est=N act=M.
  CostModelMode cost_model = CostModelMode::kAuto;
};

/// \brief Per-session configuration: execution knobs plus PlanHints.
///
/// Backend *wiring* (which tables, pools and fragment images serve a
/// query) is resolved by the Database; a session merely chooses between
/// the backends the database was opened with. Adding a storage backend is
/// therefore an internal change -- no caller wires pointers.
struct SessionOptions {
  /// Planner hints (semantic intent); default = fully planner-decided.
  PlanHints hints;
  /// Skip mode / attribute handling of the staircase join itself.
  StaircaseOptions staircase;
  /// >1 runs the partitioned parallel staircase join with this many
  /// workers (per query -- independent of how many sessions exist).
  unsigned num_threads = 1;
  /// Storage backend: kMemory (resident BATs), kPaged (buffer pool over
  /// the database's disk image; requires DatabaseOptions::build_paged)
  /// or kCompressed (FOR/delta block-compressed columns behind the same
  /// pool; requires DatabaseOptions::build_compressed).
  StorageBackend backend = StorageBackend::kMemory;
  /// Pool-backed backends only: 0 shares the database's pool with every
  /// other session (the production configuration); >0 gives this session
  /// a private pool of that many pages over the same disk image, for
  /// cold-cache / pool-size experiments that must not disturb or be
  /// disturbed by other sessions.
  size_t private_pool_pages = 0;
};

/// \brief One row of QueryResult::PlanSummary(): the planner's choice
/// and its estimate vs what actually happened, per step.
struct PlanStepSummary {
  /// 1-based step number, matching EXPLAIN's "step N:" lines.
  size_t step = 0;
  /// Operator token: "staircase", "pushdown", "axis-cursor", "twig",
  /// "twig-subsumed", "positional", "per-context" or "empty".
  std::string op;
  /// The cost model's output-cardinality estimate (EXPLAIN "est=N").
  uint64_t estimated_rows = 0;
  /// Rows the step actually produced (EXPLAIN "act=M").
  uint64_t actual_rows = 0;
  /// Buffer-pool faults charged while the step ran (0 on the memory
  /// backend; approximate under a shared pool -- see StepTrace).
  uint64_t faults = 0;
};

/// \brief One query's complete, self-contained answer.
struct QueryResult {
  /// Result nodes, duplicate-free, in document order.
  NodeSequence nodes;
  /// Per-step EXPLAIN of the executed plan (one entry per step; union
  /// branches contribute their steps in branch order).
  std::vector<StepTrace> trace;
  /// Step counters summed over the plan (workers = the widest step).
  JoinStats totals;
  /// Wall time of parse + evaluation, milliseconds.
  double millis = 0.0;
  /// True when the query was served a compiled plan from the database's
  /// plan cache (parse + planning skipped).
  bool plan_cached = false;
  /// How often the cached plan has been served, this run included;
  /// 0 when the query compiled its plan afresh.
  uint64_t plan_cache_hits = 0;
  /// Epoch of the snapshot this query ran over (0: the pristine open).
  uint64_t snapshot_epoch = 0;
  /// Resident delta nodes of that snapshot (0 when pristine/compacted).
  uint64_t snapshot_delta_nodes = 0;

  /// Renders the trace as a readable multi-line EXPLAIN. A query over an
  /// edited database leads with one "snapshot: epoch N (delta: M nodes)"
  /// line (epoch 0 emits none -- pristine reports stay byte-identical);
  /// a cache-served query leads with one "plan: cached (hits=N)" line;
  /// everything after them is byte-identical to the uncached run's
  /// report.
  std::string Explain() const;

  /// The executed plan, structurally: one row per step with the chosen
  /// operator, estimated vs actual rows, and per-step pool faults --
  /// the same numbers EXPLAIN renders as text, for programmatic plan
  /// inspection (regression gates, dashboards).
  std::vector<PlanStepSummary> PlanSummary() const;
};

/// \brief A per-thread query handle over a shared Database.
class Session {
 public:
  Session(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and evaluates an XPath expression (unions included) from the
  /// document root.
  Result<QueryResult> Run(std::string_view xpath);

  /// Same, with an explicit context sequence (document order, duplicate
  /// free). Absolute paths ignore `context`, as in the paper's root(doc).
  Result<QueryResult> Run(std::string_view xpath, const NodeSequence& context);

  /// The database this session queries.
  const Database& database() const { return *db_; }

  /// The options the session was created with.
  const SessionOptions& options() const { return options_; }

  /// The buffer pool this session's paged reads go through: the
  /// database's shared pool, the session's private pool
  /// (SessionOptions::private_pool_pages), or nullptr on the memory
  /// backend. Exposed for experiment control (cold starts, fault
  /// accounting) -- queries never need it.
  storage::BufferPool* pool() const { return eval_options_.pool; }

 private:
  friend class Database;

  Session(const Database* db, SessionOptions options,
          std::shared_ptr<const DatabaseSnapshot> snap,
          std::unique_ptr<storage::BufferPool> private_pool,
          const xpath::EvalOptions& eval_options);

  /// Pins the database's current snapshot: when the epoch moved since
  /// the last Run (a commit or compaction published), the evaluator,
  /// wiring and private pool are rebuilt against the new snapshot and
  /// the session-local plan memo is dropped (its keys carry the old
  /// epoch). Sessions thus follow the snapshot chain one Run at a time;
  /// a Run in flight keeps its pinned snapshot to the end.
  Status EnsureCurrentSnapshot();

  /// The plan-cache key of `xpath` under this session's PlanHints --
  /// exactly the fields Evaluator::Compile's decisions depend on
  /// (engine, backend, pushdown, twig, pushdown_selectivity,
  /// cost_model), PLUS the pinned snapshot's epoch: a plan compiled
  /// over one epoch's merged dictionary and fragment counts must never
  /// drive another epoch, and a hint-pinned session never shares a
  /// cached plan with a kAuto session.
  std::string PlanKey(std::string_view xpath) const;

  /// Records a plan in the session-local memo (see plan_memo_), with
  /// `serves` as the starting serve count EXPLAIN continues from.
  void Memoize(const std::string& key,
               std::shared_ptr<const xpath::CompiledPlan> plan,
               uint64_t serves);

  /// One entry of the session-local plan memo (see plan_memo_).
  struct PlanMemoEntry {
    std::shared_ptr<const xpath::CompiledPlan> plan;
    /// Serves of this plan as seen by this session: the shared cache's
    /// hit count when the plan was fetched, plus one per local serve --
    /// the monotone count EXPLAIN's "plan: cached (hits=N)" reports.
    uint64_t serves = 0;
  };

  const Database* db_;
  SessionOptions options_;
  /// The snapshot this session is bound to (never null); refreshed by
  /// EnsureCurrentSnapshot at the top of every Run.
  std::shared_ptr<const DatabaseSnapshot> snap_;
  /// Plans this session already obtained from the database's shared
  /// PlanCache (or compiled and inserted itself), served on repeat runs
  /// without touching the shared latch: sessions are single-threaded,
  /// so the memo makes a hot session's serve path lock-free while the
  /// shared cache stays the authoritative LRU (sharing across sessions,
  /// hit/miss/eviction accounting, capacity). Entries pin their plan via
  /// shared_ptr, so a concurrent eviction or replacement in the shared
  /// cache never invalidates them -- plans are immutable and keyed by
  /// the same semantic options. Bounded by the shared cache's capacity
  /// (cleared wholesale when full; refilling costs one shared lookup
  /// per key).
  std::unordered_map<std::string, PlanMemoEntry> plan_memo_;
  /// Non-null iff private_pool_pages was set; eval_options_.pool then
  /// points here (heap-allocated, so moving the session keeps it valid).
  std::unique_ptr<storage::BufferPool> private_pool_;
  xpath::EvalOptions eval_options_;
  /// The internal engine; owns the per-session EXPLAIN state.
  std::unique_ptr<xpath::Evaluator> engine_;
};

}  // namespace sj

#endif  // STAIRJOIN_API_SESSION_H_
