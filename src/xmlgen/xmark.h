// XMark-style auction document generator (substitute for XMLgen [15]).
//
// The paper evaluates on documents produced by the XMark benchmark's XMLgen
// for a fixed DTD, sizes 1 MB .. 1 GB, height 11. We do not have that C
// program, so this module synthesizes documents with the same DTD shape
// (site / regions / categories / catgraph / people / open_auctions /
// closed_auctions) calibrated against the published Table 1 statistics:
//
//   * ~45.8k encoded nodes per MB (paper: 50,844,982 nodes / 1111 MB),
//   * document height exactly 11,
//   * `level(increase) = 4`, exactly one increase per bidder, ~5.5 bidders
//     per open_auction (drives Experiment 1's ~75% duplicate ratio),
//   * ~115 profile elements per MB, ~50% of them with an education child,
//     ~14.5 non-attribute descendants per profile (drives Table 1's Q1),
//   * ~7-9% of nodes are attributes.
//
// Generation is deterministic for a given (seed, size) and streams events,
// so gigabyte-scale documents never need to exist as text.

#ifndef STAIRJOIN_XMLGEN_XMARK_H_
#define STAIRJOIN_XMLGEN_XMARK_H_

#include <memory>
#include <string>

#include "encoding/builder.h"
#include "encoding/doc_table.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "xml/event_handler.h"

namespace sj::xmlgen {

/// Generator parameters.
struct XMarkOptions {
  /// Target document size in MB-equivalents (the paper's x-axis unit).
  double size_mb = 1.1;
  /// PRNG seed; identical options generate identical documents.
  uint64_t seed = 42;
  /// Emit text content. Off saves time/memory for pure join benches whose
  /// kernels only look at pre/post/kind/tag; node *counts* stay identical
  /// because text nodes are still emitted (with a fixed short payload).
  bool rich_text = true;
};

/// \brief Streams an XMark-style document to `handler`.
Status GenerateXMark(const XMarkOptions& options, xml::EventHandler* handler);

/// \brief Generates and serializes to XML text (small documents, examples).
Result<std::string> GenerateXMarkText(const XMarkOptions& options);

/// \brief Generates and encodes directly into a DocTable (no text detour).
Result<std::unique_ptr<DocTable>> GenerateXMarkDocument(
    const XMarkOptions& options, BuildOptions build_options = {});

/// The two paper queries (Section 4.4).
inline constexpr const char* kQ1 = "/descendant::profile/descendant::education";
inline constexpr const char* kQ2 = "/descendant::increase/ancestor::bidder";

/// The paper's manual DB2 rewrite of Q2 (Section 4.4, Experiment 3).
inline constexpr const char* kQ2Rewrite =
    "/descendant::bidder[descendant::increase]";

}  // namespace sj::xmlgen

#endif  // STAIRJOIN_XMLGEN_XMARK_H_
